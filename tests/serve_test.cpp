//===- tests/serve_test.cpp - QueryEngine semantics ------------------------===//
//
// Part of the poce project.
//
//===----------------------------------------------------------------------===//
//
// Behavioral tests for serve/QueryEngine: query semantics over a solved
// system, LRU cache and fingerprint-invalidation counters, and the
// incremental path — feeding additions through the warm online closure
// (directly and through a snapshot round trip) must be provably
// equivalent to solving the extended system from scratch.
//
//===----------------------------------------------------------------------===//

#include "serve/GraphSnapshot.h"
#include "serve/QueryEngine.h"
#include "serve/Telemetry.h"

#include "support/Metrics.h"
#include "support/PRNG.h"

#include "gtest/gtest.h"

#include <fstream>
#include <map>
#include <sstream>

#ifndef POCE_SOURCE_DIR
#define POCE_SOURCE_DIR "."
#endif

using namespace poce;
using namespace poce::serve;

namespace {

/// A solver bundle built by parsing constraint-file text; hand it to a
/// QueryEngine with take().
struct TextSystem {
  SolverBundle Bundle;
  std::string Error;

  TextSystem(const std::string &Text, SolverOptions Options) {
    Bundle.Constructors = std::make_unique<ConstructorTable>();
    Bundle.Terms = std::make_unique<TermTable>(*Bundle.Constructors);
    Bundle.Solver = std::make_unique<ConstraintSolver>(*Bundle.Terms, Options);
    ConstraintSystemFile System;
    Status Parsed = System.parse(Text);
    if (!Parsed) {
      Error = Parsed.toString();
      return;
    }
    System.emit(*Bundle.Solver);
  }

  ConstraintSolver &solver() { return *Bundle.Solver; }
  SolverBundle take() { return std::move(Bundle); }
};

std::string readCorpusFile(const char *Name) {
  std::ifstream In(std::string(POCE_SOURCE_DIR) + "/examples/data/" + Name);
  EXPECT_TRUE(In.good()) << Name;
  std::stringstream Buffer;
  Buffer << In.rdbuf();
  return Buffer.str();
}

TEST(QueryEngineTest, SwapSemantics) {
  TextSystem Sys(readCorpusFile("swap.scs"),
                 makeConfig(GraphForm::Inductive, CycleElim::Online));
  ASSERT_TRUE(Sys.Error.empty()) << Sys.Error;
  QueryEngine Engine(Sys.take());
  ASSERT_TRUE(Engine.valid()) << Engine.initError();

  VarId P = Engine.varOf("P"), Q = Engine.varOf("Q");
  VarId X = Engine.varOf("X"), Y = Engine.varOf("Y");
  ASSERT_NE(P, QueryEngine::NotFound);
  ASSERT_NE(Q, QueryEngine::NotFound);
  EXPECT_EQ(Engine.varOf("no_such_var"), QueryEngine::NotFound);

  // The T/P/Q cycle collapses, so both pointers see both locations.
  EXPECT_EQ(Engine.pts(P), (std::vector<std::string>{"nx", "ny"}));
  EXPECT_EQ(Engine.pts(Q), (std::vector<std::string>{"nx", "ny"}));
  EXPECT_EQ(Engine.ls(P).size(), 2u);
  EXPECT_NE(Engine.ls(P)[0].find("ref("), std::string::npos);

  EXPECT_TRUE(Engine.alias(P, Q));
  EXPECT_TRUE(Engine.alias(P, P));
  EXPECT_FALSE(Engine.alias(X, Y));
}

TEST(QueryEngineTest, CacheCountersAndInvalidation) {
  const char *Text = "cons a\n"
                     "cons b\n"
                     "var X Y\n"
                     "a <= X\n"
                     "b <= Y\n";
  TextSystem Sys(Text, makeConfig(GraphForm::Inductive, CycleElim::Online));
  ASSERT_TRUE(Sys.Error.empty()) << Sys.Error;
  QueryEngine Engine(Sys.take());
  ASSERT_TRUE(Engine.valid()) << Engine.initError();
  VarId X = Engine.varOf("X"), Y = Engine.varOf("Y");

  EXPECT_EQ(Engine.pts(X), std::vector<std::string>{"a"});
  EXPECT_EQ(Engine.pts(Y), std::vector<std::string>{"b"});
  EXPECT_EQ(Engine.counters().CacheMisses, 2u);
  EXPECT_EQ(Engine.pts(X), std::vector<std::string>{"a"});
  EXPECT_EQ(Engine.counters().CacheHits, 1u);
  EXPECT_EQ(Engine.counters().StaleRebuilds, 0u);

  // Growing X must invalidate only X's view: Y keeps serving from cache.
  Status Added = Engine.addConstraint("b <= X");
  ASSERT_TRUE(Added.ok()) << Added;
  EXPECT_EQ(Engine.counters().Additions, 1u);
  EXPECT_EQ(Engine.journal().size(), 1u);
  EXPECT_EQ(Engine.pts(Y), std::vector<std::string>{"b"});
  EXPECT_EQ(Engine.counters().CacheHits, 2u);
  EXPECT_EQ(Engine.counters().StaleRebuilds, 0u);
  EXPECT_EQ(Engine.pts(X), (std::vector<std::string>{"a", "b"}));
  EXPECT_EQ(Engine.counters().StaleRebuilds, 1u);

  // Declarations work through the same incremental door.
  ASSERT_TRUE(Engine.addConstraint("var Z").ok());
  ASSERT_TRUE(Engine.addConstraint("cons c").ok());
  ASSERT_TRUE(Engine.addConstraint("c <= Z").ok());
  VarId Z = Engine.varOf("Z");
  ASSERT_NE(Z, QueryEngine::NotFound);
  EXPECT_EQ(Engine.pts(Z), std::vector<std::string>{"c"});

  // Malformed and unresolvable lines are rejected without state damage,
  // with the error taxonomy distinguishing parse from precondition.
  Status Bad = Engine.addConstraint("nope <= X");
  EXPECT_FALSE(Bad.ok());
  EXPECT_EQ(Bad.code(), ErrorCode::ParseError);
  Status Dup = Engine.addConstraint("var Z"); // duplicate name
  EXPECT_FALSE(Dup.ok());
  EXPECT_EQ(Engine.pts(Z), std::vector<std::string>{"c"});
  EXPECT_EQ(Engine.journal().size(), 4u); // rejected lines not journaled
}

TEST(QueryEngineTest, LruEvictionIsBounded) {
  const char *Text = "cons a\n"
                     "cons b\n"
                     "cons c\n"
                     "var X Y Z\n"
                     "a <= X\n"
                     "b <= Y\n"
                     "c <= Z\n";
  TextSystem Sys(Text, makeConfig(GraphForm::Standard, CycleElim::None));
  ASSERT_TRUE(Sys.Error.empty()) << Sys.Error;
  QueryEngine Engine(Sys.take(), /*CacheCapacity=*/2);
  ASSERT_TRUE(Engine.valid());

  VarId X = Engine.varOf("X"), Y = Engine.varOf("Y"), Z = Engine.varOf("Z");
  (void)Engine.pts(X);
  (void)Engine.pts(Y);
  EXPECT_EQ(Engine.cacheEvictions(), 0u);
  (void)Engine.pts(Z); // evicts X, the least recently used
  EXPECT_EQ(Engine.cacheEvictions(), 1u);
  EXPECT_EQ(Engine.cacheSize(), 2u);
  (void)Engine.pts(Y); // still resident
  EXPECT_EQ(Engine.counters().CacheHits, 1u);
  EXPECT_EQ(Engine.pts(X), std::vector<std::string>{"a"}); // rebuilt
  EXPECT_EQ(Engine.counters().CacheMisses, 4u);
}

//===----------------------------------------------------------------------===//
// Incremental-vs-fresh equivalence
//===----------------------------------------------------------------------===//

/// Random base system + random additions in the constraint-file format.
/// Lines only reference variables and constructors already declared by
/// the time they execute, so the same text works parsed whole (fresh
/// solve) or split at the base/additions boundary (incremental).
struct RandomScript {
  std::string Base;
  std::vector<std::string> Additions;
};

RandomScript makeRandomScript(uint64_t Seed) {
  PRNG Rng(Seed);
  const uint32_t NumVars = 30, NumSources = 6;
  std::ostringstream Base;
  for (uint32_t S = 0; S != NumSources; ++S)
    Base << "cons src" << S << "\n";
  Base << "var";
  for (uint32_t V = 0; V != NumVars; ++V)
    Base << " x" << V;
  Base << "\n";
  // Seed every source into the base so the solver's constructor table
  // (the namespace additions resolve against) knows all of them.
  for (uint32_t S = 0; S != NumSources; ++S)
    Base << "src" << S << " <= x" << S << "\n";
  auto ConstraintLine = [&](uint32_t MaxVar) {
    std::ostringstream Line;
    if (Rng.nextU32() % 3 == 0)
      Line << "src" << Rng.nextU32() % NumSources << " <= x"
           << Rng.nextU32() % MaxVar;
    else
      Line << "x" << Rng.nextU32() % MaxVar << " <= x"
           << Rng.nextU32() % MaxVar;
    return Line.str();
  };
  for (int I = 0; I != 50; ++I)
    Base << ConstraintLine(NumVars) << "\n";

  RandomScript Script;
  Script.Base = Base.str();
  // Additions: constraints over old variables, two new variables wired
  // into the graph (so fresh-var order assignment is exercised), and a
  // back edge likely to close new cycles through the warm graph.
  for (int I = 0; I != 10; ++I)
    Script.Additions.push_back(ConstraintLine(NumVars));
  Script.Additions.push_back("var y0 y1");
  Script.Additions.push_back("x0 <= y0");
  Script.Additions.push_back("y0 <= y1");
  Script.Additions.push_back("y1 <= x0");
  Script.Additions.push_back("src0 <= y0");
  for (int I = 0; I != 5; ++I)
    Script.Additions.push_back(ConstraintLine(NumVars));
  return Script;
}

void expectSolversMatch(ConstraintSolver &Fresh, ConstraintSolver &Inc,
                        const std::string &Context) {
  ASSERT_EQ(Fresh.numVars(), Inc.numVars()) << Context;
  EXPECT_EQ(Fresh.referenceLeastSolutions(), Inc.referenceLeastSolutions())
      << Context;
  EXPECT_EQ(Fresh.dumpGraph(), Inc.dumpGraph()) << Context;
  EXPECT_EQ(Fresh.countFinalEdges(), Inc.countFinalEdges()) << Context;
  // Collapsed-cycle witnesses must agree variable by variable.
  for (uint32_t C = 0; C != Fresh.numCreations(); ++C)
    EXPECT_EQ(Fresh.rep(Fresh.varOfCreation(C)),
              Inc.rep(Inc.varOfCreation(C)))
        << Context << " creation " << C;
  const SolverStats &A = Fresh.stats(), &B = Inc.stats();
  EXPECT_EQ(A.Work, B.Work) << Context;
  EXPECT_EQ(A.InitialEdges, B.InitialEdges) << Context;
  EXPECT_EQ(A.RedundantAdds, B.RedundantAdds) << Context;
  EXPECT_EQ(A.VarsEliminated, B.VarsEliminated) << Context;
  EXPECT_EQ(A.CyclesCollapsed, B.CyclesCollapsed) << Context;
  EXPECT_EQ(A.CycleSearchSteps, B.CycleSearchSteps) << Context;
  EXPECT_EQ(A.ConstraintsProcessed, B.ConstraintsProcessed) << Context;
  EXPECT_EQ(A.Mismatches, B.Mismatches) << Context;
  // LSUnionWords is excluded: it accumulates per finalize() and the
  // incremental path finalizes once mid-stream for the snapshot.
}

void runEquivalence(const SolverOptions &Options, uint64_t ScriptSeed,
                    const std::string &Context) {
  RandomScript Script = makeRandomScript(ScriptSeed);
  std::string FullText = Script.Base;
  for (const std::string &Line : Script.Additions)
    FullText += Line + "\n";

  // Fresh solve of the extended system.
  TextSystem Fresh(FullText, Options);
  ASSERT_TRUE(Fresh.Error.empty()) << Context << ": " << Fresh.Error;

  // Incremental: solve the base, snapshot it, reload, then feed the
  // additions through the warm closure via the query engine.
  TextSystem BaseSys(Script.Base, Options);
  ASSERT_TRUE(BaseSys.Error.empty()) << Context << ": " << BaseSys.Error;
  BaseSys.solver().finalize();
  std::vector<uint8_t> Bytes;
  Status Serialized = GraphSnapshot::serialize(BaseSys.solver(), Bytes);
  ASSERT_TRUE(Serialized.ok()) << Context << ": " << Serialized;
  SolverBundle Bundle;
  Status Loaded = GraphSnapshot::deserialize(Bytes.data(), Bytes.size(),
                                             Bundle);
  ASSERT_TRUE(Loaded.ok()) << Context << ": " << Loaded;

  QueryEngine Engine(std::move(Bundle));
  ASSERT_TRUE(Engine.valid()) << Context << ": " << Engine.initError();
  for (const std::string &Line : Script.Additions) {
    Status Added = Engine.addConstraint(Line);
    ASSERT_TRUE(Added.ok()) << Context << ": '" << Line << "': " << Added;
  }

  expectSolversMatch(Fresh.solver(), Engine.solver(),
                     Context + " (snapshot)");

  // Same additions against the original in-memory solver (no snapshot in
  // between) — the snapshot must not be what makes them equivalent.
  QueryEngine Direct(BaseSys.take());
  ASSERT_TRUE(Direct.valid()) << Context;
  for (const std::string &Line : Script.Additions) {
    Status Added = Direct.addConstraint(Line);
    ASSERT_TRUE(Added.ok()) << Context << ": '" << Line << "': " << Added;
  }
  expectSolversMatch(Fresh.solver(), Direct.solver(), Context + " (direct)");

  // Query answers agree too.
  QueryEngine FreshEngine(Fresh.take());
  ASSERT_TRUE(FreshEngine.valid()) << Context;
  for (const char *Name : {"x0", "x7", "x29", "y0", "y1"}) {
    VarId F = FreshEngine.varOf(Name), I = Engine.varOf(Name);
    ASSERT_NE(F, QueryEngine::NotFound) << Context << " " << Name;
    ASSERT_NE(I, QueryEngine::NotFound) << Context << " " << Name;
    EXPECT_EQ(FreshEngine.pts(F), Engine.pts(I)) << Context << " " << Name;
    EXPECT_EQ(FreshEngine.ls(F), Engine.ls(I)) << Context << " " << Name;
  }
}

TEST(QueryEngineTest, IncrementalMatchesFreshSolve) {
  uint64_t ScriptSeed = 0x100;
  for (GraphForm Form : {GraphForm::Standard, GraphForm::Inductive})
    for (CycleElim Elim : {CycleElim::None, CycleElim::Online})
      for (bool DiffProp : {false, true}) {
        SolverOptions Options = makeConfig(Form, Elim);
        Options.DiffProp = DiffProp;
        runEquivalence(Options, ScriptSeed++,
                       Options.configName() +
                           (DiffProp ? "+diffprop" : "-diffprop"));
      }
}

//===----------------------------------------------------------------------===//
// Telemetry replies (the scserved stats / counters / metrics verbs)
//===----------------------------------------------------------------------===//

/// Parses "key=value" tokens of a one-line reply into a map.
std::map<std::string, std::string> parseKv(const std::string &Reply) {
  std::map<std::string, std::string> Out;
  std::istringstream In(Reply);
  std::string Token;
  while (In >> Token) {
    size_t Eq = Token.find('=');
    if (Eq != std::string::npos)
      Out[Token.substr(0, Eq)] = Token.substr(Eq + 1);
  }
  return Out;
}

QueryEngine makeTelemetryEngine() {
  const char *Text = "cons a\n"
                     "cons b\n"
                     "var X Y Z\n"
                     "a <= X\n"
                     "b <= Y\n"
                     "X <= Z\n";
  TextSystem Sys(Text, makeConfig(GraphForm::Inductive, CycleElim::Online));
  EXPECT_TRUE(Sys.Error.empty()) << Sys.Error;
  return QueryEngine(Sys.take());
}

TEST(TelemetryTest, StatsReplyFieldsAndMonotonicity) {
  QueryEngine Engine = makeTelemetryEngine();
  ASSERT_TRUE(Engine.valid()) << Engine.initError();
  telemetry::ServerCounters Server;
  Server.WalReplayed = 3;
  Server.Checkpoints = 2;

  std::string Reply = telemetry::buildStatsReply(Engine, Server);
  ASSERT_EQ(Reply.rfind("ok ", 0), 0u) << Reply;
  auto Kv = parseKv(Reply);
  for (const char *Key :
       {"config", "vars", "live", "work", "cycles_collapsed",
        "vars_eliminated", "offline_vars", "hvn_labels", "budget_aborts",
        "rollbacks", "retractions", "cone_vars", "collapses_split",
        "wal_replayed", "checkpoints", "wal_records", "wal_bytes"})
    EXPECT_TRUE(Kv.count(Key)) << "missing " << Key << " in: " << Reply;
  EXPECT_EQ(Kv["config"], "IF-Online");
  EXPECT_EQ(Kv["wal_replayed"], "3");
  EXPECT_EQ(Kv["budget_aborts"], "0");

  // Work is monotone under additions; the reply must track it.
  uint64_t WorkBefore = std::stoull(Kv["work"]);
  ASSERT_TRUE(Engine.addConstraint("b <= X").ok());
  auto After = parseKv(telemetry::buildStatsReply(Engine, Server));
  EXPECT_GT(std::stoull(After["work"]), WorkBefore);
}

TEST(TelemetryTest, CountersReplyReadsTheHistogram) {
  QueryEngine Engine = makeTelemetryEngine();
  ASSERT_TRUE(Engine.valid()) << Engine.initError();
  VarId X = Engine.varOf("X");
  ASSERT_NE(X, QueryEngine::NotFound);
  (void)Engine.ls(X);
  (void)Engine.ls(X);

  Histogram Latency;
  for (uint64_t V : {10, 20, 30, 40, 1000})
    Latency.record(V);
  std::string Reply = telemetry::buildCountersReply(Engine, Latency);
  ASSERT_EQ(Reply.rfind("ok ", 0), 0u) << Reply;
  auto Kv = parseKv(Reply);
  for (const char *Key : {"queries", "hits", "misses", "stale",
                          "additions", "evictions", "p50_us", "p99_us"})
    EXPECT_TRUE(Kv.count(Key)) << "missing " << Key << " in: " << Reply;
  EXPECT_EQ(Kv["queries"], "2");
  EXPECT_EQ(Kv["hits"], "1");
  EXPECT_EQ(Kv["misses"], "1");

  // Percentile parity with the exact ceil-rank percentile: the log-bucket
  // estimate q satisfies exact <= q < 2 * exact.
  std::vector<uint64_t> Sorted{10, 20, 30, 40, 1000};
  uint64_t P50 = std::stoull(Kv["p50_us"]);
  uint64_t P99 = std::stoull(Kv["p99_us"]);
  EXPECT_GE(P50, exactPercentile(Sorted, 0.50));
  EXPECT_LT(P50, 2 * exactPercentile(Sorted, 0.50));
  EXPECT_GE(P99, exactPercentile(Sorted, 0.99));
  EXPECT_LT(P99, 2 * exactPercentile(Sorted, 0.99));
}

TEST(TelemetryTest, MetricsReplyIsFramedLintedPrometheus) {
  QueryEngine Engine = makeTelemetryEngine();
  ASSERT_TRUE(Engine.valid()) << Engine.initError();
  VarId X = Engine.varOf("X");
  ASSERT_NE(X, QueryEngine::NotFound);
  (void)Engine.pts(X);
  telemetry::queryLatencyHistogram().record(25);

  telemetry::ServerCounters Server;
  Server.WalRecords = 4;
  std::string Reply = telemetry::buildMetricsReply(MetricsRegistry::global(),
                                                   Engine, Server);

  // Framing: header line, payload, "# EOF" terminator.
  ASSERT_EQ(Reply.rfind("ok metrics\n", 0), 0u);
  ASSERT_GE(Reply.size(), 5u);
  EXPECT_EQ(Reply.substr(Reply.size() - 5), "# EOF");

  // Every layer's series is present: solver, cache, WAL, latency.
  for (const char *Series :
       {"poce_solver_work", "poce_solver_cycles_collapsed",
        "poce_query_requests_total", "poce_query_cache_misses_total",
        "poce_serve_wal_records", "poce_query_latency_us_bucket",
        "poce_query_latency_us_count"})
    EXPECT_NE(Reply.find(Series), std::string::npos)
        << "missing series " << Series;

  // Structural lint of the payload: every series line is `name value`
  // with a numeric value, histogram buckets are cumulative and end at
  // +Inf == _count.
  std::istringstream In(Reply.substr(std::string("ok metrics\n").size()));
  std::string Line;
  uint64_t Cumulative = 0;
  std::string BucketSeries;
  while (std::getline(In, Line)) {
    if (Line == "# EOF")
      break;
    ASSERT_FALSE(Line.empty());
    if (Line[0] == '#') {
      EXPECT_TRUE(Line.rfind("# HELP ", 0) == 0 ||
                  Line.rfind("# TYPE ", 0) == 0)
          << Line;
      continue;
    }
    size_t Space = Line.find_last_of(' ');
    ASSERT_NE(Space, std::string::npos) << Line;
    std::string Value = Line.substr(Space + 1);
    for (char C : Value)
      EXPECT_TRUE(C >= '0' && C <= '9') << Line;
    size_t Brace = Line.find("_bucket{");
    if (Brace != std::string::npos) {
      std::string Series = Line.substr(0, Brace);
      if (Series != BucketSeries) {
        BucketSeries = Series;
        Cumulative = 0;
      }
      uint64_t Count = std::stoull(Value);
      EXPECT_GE(Count, Cumulative) << "non-cumulative bucket: " << Line;
      Cumulative = Count;
    }
  }
  EXPECT_EQ(Line, "# EOF") << "payload not terminated";
}

TEST(QueryEngineTest, RetractionInvalidatesCacheDespiteEqualPopcount) {
  // Regression for the popcount cache fingerprint: retract {a} then add
  // {b} and the solution bitmap returns to population count 1 with a
  // different member. The old fingerprint scheme would have served the
  // stale "{ a }" view from cache; the mutation-epoch key must not.
  const char *Text = "cons a\n"
                     "cons b\n"
                     "var X\n"
                     "a <= X\n";
  for (GraphForm Form : {GraphForm::Standard, GraphForm::Inductive}) {
    TextSystem Sys(Text, makeConfig(Form, CycleElim::Online));
    ASSERT_TRUE(Sys.Error.empty()) << Sys.Error;
    QueryEngine Engine(Sys.take());
    ASSERT_TRUE(Engine.valid()) << Engine.initError();
    VarId X = Engine.varOf("X");

    EXPECT_EQ(Engine.pts(X), std::vector<std::string>{"a"}); // Cached.
    ASSERT_TRUE(Engine.retractConstraint("a <= X").ok());
    ASSERT_TRUE(Engine.addConstraint("b <= X").ok());
    EXPECT_EQ(Engine.pts(X), std::vector<std::string>{"b"});
    EXPECT_EQ(Engine.counters().StaleRebuilds, 1u);
    EXPECT_EQ(Engine.counters().Retractions, 1u);

    // The journal carries the retraction as a WAL v3 record payload.
    ASSERT_EQ(Engine.journal().size(), 2u);
    EXPECT_EQ(Engine.journal()[0], "!retract a <= X");
    EXPECT_EQ(Engine.journal()[1], "b <= X");
  }
}

TEST(QueryEngineTest, RetractErrorsAndCanonicalization) {
  const char *Text = "cons a\n"
                     "var X Y\n"
                     "a <= X\n";
  TextSystem Sys(Text, makeConfig(GraphForm::Inductive, CycleElim::Online));
  ASSERT_TRUE(Sys.Error.empty()) << Sys.Error;
  QueryEngine Engine(Sys.take());
  ASSERT_TRUE(Engine.valid()) << Engine.initError();

  // Whitespace-insensitive: the line canonicalizes before matching.
  EXPECT_TRUE(Engine.checkRetract("  a   <=   X  # comment").ok());
  // Not a live constraint.
  EXPECT_EQ(Engine.checkRetract("X <= Y").code(), ErrorCode::NotFound);
  EXPECT_EQ(Engine.retractConstraint("X <= Y").code(), ErrorCode::NotFound);
  // Not a constraint line at all.
  EXPECT_EQ(Engine.checkRetract("var Z").code(), ErrorCode::InvalidArgument);
  // Unknown names surface as parse errors from canonicalization.
  EXPECT_FALSE(Engine.checkRetract("nope <= X").ok());

  ASSERT_TRUE(Engine.retractConstraint("a <= X \t").ok());
  VarId X = Engine.varOf("X");
  EXPECT_EQ(Engine.pts(X), std::vector<std::string>{});
  // Retracting twice: the constraint is gone.
  EXPECT_EQ(Engine.retractConstraint("a <= X").code(), ErrorCode::NotFound);
}

TEST(QueryEngineTest, RollbackReplaysJournaledRetractions) {
  // A budget breach after a mix of adds and retractions must restore
  // exactly the pre-breach state — including the deletions.
  std::string Text = "cons s\nvar A B\ns <= A\n";
  TextSystem Sys(Text, makeConfig(GraphForm::Inductive, CycleElim::Online));
  ASSERT_TRUE(Sys.Error.empty()) << Sys.Error;
  QueryEngine Engine(Sys.take());
  ASSERT_TRUE(Engine.valid()) << Engine.initError();
  ASSERT_TRUE(Engine.rollbackArmed());

  ASSERT_TRUE(Engine.addConstraint("A <= B").ok());
  ASSERT_TRUE(Engine.retractConstraint("s <= A").ok());
  VarId A = Engine.varOf("A"), B = Engine.varOf("B");
  EXPECT_EQ(Engine.pts(A), std::vector<std::string>{});
  EXPECT_EQ(Engine.pts(B), std::vector<std::string>{});

  // A chain whose flooding exceeds a minimal per-batch work budget.
  ASSERT_TRUE(Engine.addConstraint("var C0").ok());
  for (int I = 1; I != 40; ++I) {
    ASSERT_TRUE(Engine.addConstraint("var C" + std::to_string(I)).ok());
    ASSERT_TRUE(Engine
                    .addConstraint("C" + std::to_string(I - 1) + " <= C" +
                                   std::to_string(I))
                    .ok());
  }
  Engine.solver().setBudgets(0, /*MaxEdgeBudget=*/1, 0);
  Status Breach = Engine.addConstraint("s <= C0");
  ASSERT_FALSE(Breach.ok());
  EXPECT_EQ(Breach.code(), ErrorCode::BudgetExceeded);
  EXPECT_EQ(Engine.counters().Rollbacks, 1u);

  // The rollback replayed the journal — adds AND the retraction.
  A = Engine.varOf("A");
  B = Engine.varOf("B");
  EXPECT_EQ(Engine.pts(A), std::vector<std::string>{});
  EXPECT_EQ(Engine.pts(B), std::vector<std::string>{});
  EXPECT_FALSE(Engine.solver().hasRootTag("s <= A"));
  EXPECT_TRUE(Engine.solver().hasRootTag("A <= B"));
}

TEST(QueryEngineTest, SnapshotRoundTripPreservesProvenance) {
  // checkpointBase absorbs journaled retractions because the v3
  // snapshot carries the base-root provenance: a reloaded engine can
  // still retract constraints added before the checkpoint.
  std::string Text = "cons a\ncons b\nvar X\na <= X\nb <= X\n";
  TextSystem Sys(Text, makeConfig(GraphForm::Inductive, CycleElim::Online));
  ASSERT_TRUE(Sys.Error.empty()) << Sys.Error;
  QueryEngine Engine(Sys.take());
  ASSERT_TRUE(Engine.valid()) << Engine.initError();

  std::vector<uint8_t> Bytes;
  ASSERT_TRUE(GraphSnapshot::serialize(Engine.solver(), Bytes).ok());
  SolverBundle Reloaded;
  ASSERT_TRUE(
      GraphSnapshot::deserialize(Bytes.data(), Bytes.size(), Reloaded).ok());
  QueryEngine Warm(std::move(Reloaded));
  ASSERT_TRUE(Warm.valid()) << Warm.initError();

  // The reloaded solver still knows both tags and can retract one.
  EXPECT_TRUE(Warm.solver().hasRootTag("a <= X"));
  ASSERT_TRUE(Warm.retractConstraint("a <= X").ok());
  VarId X = Warm.varOf("X");
  EXPECT_EQ(Warm.pts(X), std::vector<std::string>{"b"});
}

} // namespace
