file(REMOVE_RECURSE
  "CMakeFiles/baseline_steensgaard.dir/baseline_steensgaard.cpp.o"
  "CMakeFiles/baseline_steensgaard.dir/baseline_steensgaard.cpp.o.d"
  "baseline_steensgaard"
  "baseline_steensgaard.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/baseline_steensgaard.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
