//===- net/Client.cpp - Blocking line-protocol client ---------------------===//
//
// Part of the poce project.
//
//===----------------------------------------------------------------------===//

#include "net/Client.h"

#include "net/Socket.h"

#include <cerrno>
#include <cstring>
#include <unistd.h>

using namespace poce;
using namespace poce::net;

Status LineClient::connectTcp(const std::string &HostPort) {
  close();
  Expected<int> Connected = net::connectTcp(HostPort);
  if (!Connected.ok())
    return Connected.status();
  Fd = *Connected;
  return Status();
}

Status LineClient::connectUnix(const std::string &Path) {
  close();
  Expected<int> Connected = net::connectUnix(Path);
  if (!Connected.ok())
    return Connected.status();
  Fd = *Connected;
  return Status();
}

Status LineClient::sendLine(const std::string &Line) {
  if (Fd < 0)
    return Status::error(ErrorCode::FailedPrecondition, "not connected");
  std::string Wire = Line + "\n";
  size_t Sent = 0;
  while (Sent < Wire.size()) {
    ssize_t N = ::write(Fd, Wire.data() + Sent, Wire.size() - Sent);
    if (N < 0) {
      if (errno == EINTR)
        continue;
      return Status::error(ErrorCode::IoError,
                           std::string("write: ") + std::strerror(errno));
    }
    Sent += static_cast<size_t>(N);
  }
  return Status();
}

Status LineClient::recvLine(std::string &Out) {
  if (Fd < 0)
    return Status::error(ErrorCode::FailedPrecondition, "not connected");
  for (;;) {
    size_t Nl = Pending.find('\n');
    if (Nl != std::string::npos) {
      Out.assign(Pending, 0, Nl);
      Pending.erase(0, Nl + 1);
      return Status();
    }
    char Buf[4096];
    ssize_t N = ::read(Fd, Buf, sizeof(Buf));
    if (N < 0) {
      if (errno == EINTR)
        continue;
      return Status::error(ErrorCode::IoError,
                           std::string("read: ") + std::strerror(errno));
    }
    if (N == 0)
      return Status::error(ErrorCode::NotFound,
                           "connection closed by server");
    Pending.append(Buf, static_cast<size_t>(N));
  }
}

Status LineClient::request(const std::string &Line, std::string &Reply) {
  Status Sent = sendLine(Line);
  if (!Sent)
    return Sent;
  Status Got = recvLine(Reply);
  if (!Got)
    return Got;
  // The metrics payload is the one multi-line reply; everything else is
  // strictly one line per request.
  if (Reply.rfind("ok metrics", 0) == 0) {
    std::string More;
    while (More != "# EOF") {
      Status Next = recvLine(More);
      if (!Next)
        return Next;
      Reply += "\n" + More;
    }
  }
  return Status();
}

void LineClient::close() {
  closeFd(Fd);
  Fd = -1;
  Pending.clear();
}
