//===- driver/scserved.cpp - Long-running constraint query server ---------===//
//
// Part of the poce project.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// scserved: solver-as-a-service over stdin/stdout. Loads a warm solved
/// graph (from a GraphSnapshot, or by solving a .scs file once at
/// startup) and then answers a newline-delimited request/response
/// protocol — one request line in, exactly one `ok ...` or
/// `err <code> <detail>` line out — so sessions are fully scriptable
/// without sockets:
///
///   scserved --snapshot=graph.snap --wal=graph.wal
///   scserved --config=if-online system.scs
///
/// Fault tolerance (see INTERNALS.md for the recovery invariant):
///   - With --wal, every accepted `add` line is validated (dry-run parse)
///     and then appended (and fsynced) to the write-ahead log *before* it
///     is applied, so `ok added` implies the line is durable and will
///     replay cleanly. On restart the server replays the WAL on top of
///     the snapshot, which reconstructs exactly the acknowledged state; a
///     torn tail from a crash mid-append is detected by checksum and
///     truncated, and a WAL whose base id does not match the snapshot
///     (a checkpoint interrupted between the snapshot rename and the WAL
///     reset) is recognized as stale and skipped — its records are
///     already contained in the snapshot.
///   - --deadline-ms / --edge-budget / --max-mem-mb bound each `add`'s
///     closure. A breach aborts the batch, rolls the graph back to the
///     pre-line state, and answers `err budget_exceeded ...`; the server
///     keeps serving.
///   - `checkpoint` (or --checkpoint-every=N) atomically rewrites the
///     snapshot and resets the WAL, bounding recovery time.
///   - POCE_FAILPOINTS arms fault injection (see support/FailPoint.h).
///
/// Protocol (see README.md for a copy-pasteable session):
///   ls X          least solution of X
///   pts X         points-to location tags of X
///   alias X Y     may X and Y alias?
///   add LINE      feed one constraint-file line through the online closure
///   save PATH     snapshot the current graph (atomic write)
///   checkpoint [PATH]  snapshot + reset the WAL (default: --snapshot path)
///   stats         solver statistics + fault-tolerance counters
///   counters      query latency percentiles and cache counters
///   metrics       Prometheus text exposition (multi-line, ends "# EOF")
///   help | quit
///
/// Observability: query latencies land in an O(1)-insert log-bucket
/// histogram (support/Metrics.h) instead of a sorted ring, the `metrics`
/// verb exposes every registered series in Prometheus text format, and
/// --metrics-out=FILE dumps the registry as JSON every --metrics-every=N
/// handled requests (and at exit). POCE_TRACE=FILE additionally records
/// Chrome trace-event spans of the solver/WAL/checkpoint phases.
///
//===----------------------------------------------------------------------===//

#include "serve/GraphSnapshot.h"
#include "serve/QueryEngine.h"
#include "serve/Telemetry.h"
#include "serve/Wal.h"
#include "support/ByteStream.h"
#include "support/CommandLine.h"
#include "support/FailPoint.h"
#include "support/Metrics.h"
#include "support/Status.h"
#include "support/Trace.h"

#include <cstdio>
#include <fstream>
#include <iostream>
#include <sstream>
#include <string>
#include <vector>

using namespace poce;
using namespace poce::serve;

namespace {

bool parseConfig(const std::string &Name, SolverOptions &Options) {
  if (Name == "sf-plain")
    Options = makeConfig(GraphForm::Standard, CycleElim::None);
  else if (Name == "if-plain")
    Options = makeConfig(GraphForm::Inductive, CycleElim::None);
  else if (Name == "sf-online")
    Options = makeConfig(GraphForm::Standard, CycleElim::Online);
  else if (Name == "if-online")
    Options = makeConfig(GraphForm::Inductive, CycleElim::Online);
  else
    return false;
  return true;
}

/// Splits a request line on spaces (the constraint payload of `add` keeps
/// its spacing via the Rest capture).
struct Request {
  std::string Verb, Arg1, Arg2, Rest;
};

Request parseRequest(const std::string &Line) {
  Request Req;
  std::istringstream In(Line);
  In >> Req.Verb >> Req.Arg1 >> Req.Arg2;
  size_t VerbEnd = Line.find(Req.Verb);
  if (VerbEnd != std::string::npos) {
    size_t RestAt = VerbEnd + Req.Verb.size();
    while (RestAt < Line.size() && Line[RestAt] == ' ')
      ++RestAt;
    Req.Rest = Line.substr(RestAt);
  }
  return Req;
}

std::string joinSet(const std::vector<std::string> &Items) {
  std::string Out = "{";
  for (size_t I = 0; I != Items.size(); ++I)
    Out += (I ? ", " : " ") + Items[I];
  Out += Items.empty() ? "}" : " }";
  return Out;
}

/// --dump-wal=FILE: print every intact line of a WAL (one per line) and
/// exit. This is the recovery harness's oracle input: snapshot + these
/// lines must equal the recovered server's state.
int dumpWal(const std::string &Path) {
  Expected<WalContents> Contents = WriteAheadLog::replay(Path);
  if (!Contents.ok()) {
    std::fprintf(stderr, "scserved: %s\n",
                 Contents.status().toString().c_str());
    return 1;
  }
  for (const std::string &Line : Contents->Lines)
    std::printf("%s\n", Line.c_str());
  if (!Contents->HeaderIntact)
    std::fprintf(stderr, "scserved: note: torn WAL header (crash during "
                         "creation); the log is empty\n");
  else if (Contents->TornBytes)
    std::fprintf(stderr, "scserved: note: %llu torn trailing bytes ignored\n",
                 static_cast<unsigned long long>(Contents->TornBytes));
  return 0;
}

} // namespace

int main(int Argc, char **Argv) {
  FailPoint::armFromEnv();

  CommandLine Cmd("scserved",
                  "long-running inclusion-constraint query server "
                  "(newline protocol on stdin/stdout)");
  std::string Snapshot;
  std::string WalPath;
  std::string DumpWal;
  std::string Config = "if-online";
  std::string Closure = "worklist";
  std::string Preprocess = "none";
  int64_t Seed = 0x706f6365;
  int64_t Threads = 1;
  int64_t CacheCapacity = 256;
  int64_t DeadlineMs = 0;
  int64_t EdgeBudget = 0;
  int64_t MaxMemMb = 0;
  int64_t MaxRequest = 64 * 1024;
  int64_t CheckpointEvery = 0;
  std::string MetricsOut;
  int64_t MetricsEvery = 64;
  Cmd.addString("snapshot", &Snapshot, "load this snapshot instead of "
                                       "solving a .scs file");
  Cmd.addString("wal", &WalPath,
                "write-ahead log: accepted adds are fsynced here before "
                "application, and replayed on top of the snapshot at "
                "startup");
  Cmd.addString("dump-wal", &DumpWal,
                "print the intact lines of this WAL and exit");
  Cmd.addString("config", &Config, "{sf,if}-{plain,online} for .scs input");
  Cmd.addString("closure", &Closure,
                "closure schedule for adds: worklist (eager) or wave "
                "(topo-ordered delta sweeps); responses are identical. "
                "Applies to snapshot and .scs bases alike (the schedule "
                "is not serialized)");
  Cmd.addString("preprocess", &Preprocess,
                "pre-solve pass for .scs input: none or offline (HVN + "
                "Nuutila SCC variable substitution before the first "
                "closure); responses are identical. Snapshot bases load "
                "already closed, so there the option is only recorded");
  Cmd.addInt("seed", &Seed, "variable-order seed for .scs input");
  Cmd.addInt("threads", &Threads,
             "lanes for least-solution materialization on load "
             "(0 = hardware); results identical for any value");
  Cmd.addInt("cache", &CacheCapacity, "materialized-view LRU capacity");
  Cmd.addInt("deadline-ms", &DeadlineMs,
             "per-add closure deadline in ms (0 = unlimited)");
  Cmd.addInt("edge-budget", &EdgeBudget,
             "per-add closure work budget in edges (0 = unlimited)");
  Cmd.addInt("max-mem-mb", &MaxMemMb,
             "abort an add when process RSS exceeds this (0 = unlimited)");
  Cmd.addInt("max-request", &MaxRequest,
             "longest accepted request line in bytes");
  Cmd.addInt("checkpoint-every", &CheckpointEvery,
             "auto-checkpoint after this many accepted adds "
             "(requires --snapshot and --wal; 0 = never)");
  Cmd.addString("metrics-out", &MetricsOut,
                "dump the metrics registry to this file as JSON every "
                "--metrics-every requests and at exit");
  Cmd.addInt("metrics-every", &MetricsEvery,
             "requests between --metrics-out dumps (default 64)");
  if (!Cmd.parse(Argc, Argv))
    return 1;

  // The server always wants per-phase timings: its request loop is I/O
  // bound, so the clock reads are noise, and the histograms are what the
  // `metrics` verb serves.
  MetricsRegistry::setTimingEnabled(true);

  if (!DumpWal.empty())
    return dumpWal(DumpWal);

  if (Closure != "worklist" && Closure != "wave") {
    std::fprintf(stderr, "scserved: unknown closure schedule '%s'\n",
                 Closure.c_str());
    return 1;
  }

  if (Preprocess != "none" && Preprocess != "offline") {
    std::fprintf(stderr, "scserved: unknown preprocess mode '%s'\n",
                 Preprocess.c_str());
    return 1;
  }

  if (CheckpointEvery > 0 && (Snapshot.empty() || WalPath.empty())) {
    std::fprintf(stderr,
                 "scserved: --checkpoint-every requires --snapshot and "
                 "--wal\n");
    return 1;
  }

  SolverBundle Bundle;
  // The WAL's base id: the loaded snapshot's payload checksum, or 0 when
  // the base is a fresh .scs solve. A WAL stamped with a different id
  // does not extend this base (see serve/Wal.h).
  uint64_t SnapBase = 0;
  if (!Snapshot.empty()) {
    if (!Cmd.positionals().empty()) {
      std::fprintf(stderr,
                   "scserved: --snapshot and a .scs file are exclusive\n");
      return 1;
    }
    Status Loaded = GraphSnapshot::load(Snapshot, Bundle, &SnapBase);
    if (!Loaded) {
      std::fprintf(stderr, "scserved: %s\n", Loaded.toString().c_str());
      return 1;
    }
  } else {
    if (Cmd.positionals().size() != 1) {
      std::fprintf(stderr, "scserved: expected --snapshot=PATH or exactly "
                           "one .scs file; try --help\n");
      return 1;
    }
    std::ifstream In(Cmd.positionals()[0]);
    if (!In) {
      std::fprintf(stderr, "scserved: cannot open '%s'\n",
                   Cmd.positionals()[0].c_str());
      return 1;
    }
    std::stringstream Buffer;
    Buffer << In.rdbuf();
    ConstraintSystemFile System;
    Status Parsed = System.parse(Buffer.str());
    if (!Parsed) {
      std::fprintf(stderr, "scserved: %s: %s\n",
                   Cmd.positionals()[0].c_str(),
                   Parsed.toString().c_str());
      return 1;
    }
    SolverOptions Options;
    if (!parseConfig(Config, Options)) {
      std::fprintf(stderr, "scserved: unknown configuration '%s' (oracle "
                           "and periodic solvers cannot serve)\n",
                   Config.c_str());
      return 1;
    }
    Options.Seed = static_cast<uint64_t>(Seed);
    // Armed pre-construction so the .scs bulk load defers into the pass.
    if (Preprocess == "offline")
      Options.Preprocess = PreprocessMode::Offline;
    Bundle.Constructors = std::make_unique<ConstructorTable>();
    Bundle.Terms = std::make_unique<TermTable>(*Bundle.Constructors);
    Bundle.Solver = std::make_unique<ConstraintSolver>(*Bundle.Terms, Options);
    System.emit(*Bundle.Solver);
  }

  Bundle.Solver->setThreads(static_cast<unsigned>(Threads));
  // Snapshots never carry the closure schedule (the loaded graph is
  // already closed); re-arm it here so subsequent adds use it.
  if (Closure == "wave")
    Bundle.Solver->setClosure(ClosureMode::Wave);
  // Snapshots never carry the preprocess option either; re-arm it so the
  // recorded configuration matches the flags (on a warm base the pass
  // itself never re-runs — incremental adds stay online).
  if (Preprocess == "offline")
    Bundle.Solver->setPreprocess(PreprocessMode::Offline);
  Bundle.Solver->materializeAllViews();

  QueryEngine Engine(std::move(Bundle),
                     static_cast<size_t>(CacheCapacity));
  if (!Engine.valid()) {
    std::fprintf(stderr, "scserved: %s\n", Engine.initError().c_str());
    return 1;
  }
  // NOTE: never cache a ConstraintSolver reference across requests — a
  // budget rollback replaces the engine's bundle, freeing the old solver.

  // Warm recovery: replay the WAL's intact lines on top of the loaded
  // graph, budgets off (each line fit its budget when first accepted, and
  // a snapshot saved with budgets armed must not re-abort here). open()
  // afterwards truncates any torn tail so appends resume cleanly.
  WriteAheadLog Wal;
  const bool WalArmed = !WalPath.empty();
  uint64_t WalReplayed = 0;
  uint64_t WalSkipped = 0;
  if (WalArmed) {
    Expected<WalContents> Recovered = WriteAheadLog::replay(WalPath);
    if (!Recovered.ok()) {
      std::fprintf(stderr, "scserved: %s\n",
                   Recovered.status().toString().c_str());
      return 1;
    }
    if (!Recovered->HeaderIntact) {
      std::fprintf(stderr,
                   "scserved: note: WAL '%s' has a torn header (crash "
                   "during creation); no record was acknowledged, "
                   "starting it over\n",
                   WalPath.c_str());
    } else if (Recovered->BaseId != SnapBase &&
               !Recovered->Lines.empty()) {
      // A checkpoint crashed between the snapshot rename and the WAL
      // reset: every record in the log is already contained in the
      // renamed snapshot. Replaying them would double-apply (and fail on
      // re-declarations), so skip the log and re-stamp it below.
      WalSkipped = Recovered->Lines.size();
      std::fprintf(stderr,
                   "scserved: note: WAL '%s' is stale (base id %llx does "
                   "not match the snapshot's %llx; an interrupted "
                   "checkpoint left it behind); skipping %llu line(s) "
                   "already contained in the snapshot\n",
                   WalPath.c_str(),
                   static_cast<unsigned long long>(Recovered->BaseId),
                   static_cast<unsigned long long>(SnapBase),
                   static_cast<unsigned long long>(WalSkipped));
    } else {
      Engine.solver().setBudgets(0, 0, 0);
      for (const std::string &ReplayLine : Recovered->Lines) {
        Status Applied = Engine.addConstraint(ReplayLine);
        if (!Applied) {
          std::fprintf(stderr,
                       "scserved: WAL replay failed (log does not extend "
                       "this snapshot?): %s\n",
                       Applied.toString().c_str());
          return 1;
        }
        ++WalReplayed;
      }
    }
    Status Opened = Wal.open(WalPath, SnapBase);
    if (!Opened) {
      std::fprintf(stderr, "scserved: %s\n", Opened.toString().c_str());
      return 1;
    }
  }
  Engine.solver().setBudgets(static_cast<uint64_t>(DeadlineMs),
                    static_cast<uint64_t>(EdgeBudget),
                    static_cast<uint64_t>(MaxMemMb) * 1024 * 1024);
  // Budgets configured after recovery apply to every subsequent add; the
  // rollback base must reflect the recovered (not the loaded) graph.
  if (WalReplayed) {
    Status Checkpointed = Engine.checkpointBase();
    if (!Checkpointed) {
      std::fprintf(stderr, "scserved: %s\n",
                   Checkpointed.toString().c_str());
      return 1;
    }
  }

  std::printf("ok ready config=%s vars=%u live=%u wal_replayed=%llu "
              "wal_skipped=%llu\n",
              Engine.solver().options().configName().c_str(), Engine.solver().numVars(),
              Engine.solver().numLiveVars(),
              static_cast<unsigned long long>(WalReplayed),
              static_cast<unsigned long long>(WalSkipped));
  std::fflush(stdout);

  uint64_t Checkpoints = 0;
  uint64_t AddsSinceCheckpoint = 0;
  uint64_t RequestsHandled = 0;
  auto ServerNow = [&]() {
    telemetry::ServerCounters S;
    S.WalReplayed = WalReplayed;
    S.WalSkipped = WalSkipped;
    S.Checkpoints = Checkpoints;
    S.WalRecords = Wal.records();
    S.WalBytes = Wal.sizeBytes();
    return S;
  };
  // --metrics-out: the registry as one JSON object, rewritten atomically
  // so a scraper never reads a half-written dump.
  auto DumpMetrics = [&]() {
    if (MetricsOut.empty())
      return;
    MetricsRegistry &R = MetricsRegistry::global();
    Engine.solver().stats().exportTo(R);
    telemetry::exportServeMetrics(R, Engine, ServerNow());
    std::string Json = R.renderJson() + "\n";
    std::vector<uint8_t> Bytes(Json.begin(), Json.end());
    Status Written = writeFileAtomic(MetricsOut, Bytes);
    if (!Written)
      std::fprintf(stderr, "scserved: metrics dump failed: %s\n",
                   Written.toString().c_str());
  };
  auto Reply = [](const std::string &Line) {
    std::fputs(Line.c_str(), stdout);
    std::fputc('\n', stdout);
    std::fflush(stdout);
  };
  auto ReplyErr = [&Reply](const Status &St) { Reply("err " + St.wire()); };
  auto ResolveVar = [&](const std::string &Name, VarId &Out) {
    uint32_t Var = Engine.varOf(Name);
    if (Var == QueryEngine::NotFound)
      return false;
    Out = Var;
    return true;
  };

  // Atomic snapshot write shared by `save` and `checkpoint`; returns the
  // byte count and the serialized payload checksum (the would-be WAL
  // base id; set as soon as serialization succeeds, even if the write
  // then fails) through the out-params.
  auto SaveSnapshot = [&](const std::string &Path, size_t &SizeOut,
                          uint64_t &ChecksumOut) -> Status {
    if (FailPoint::hit("snapshot.save") != FailPoint::Mode::Off)
      return FailPoint::injectedError("snapshot.save");
    std::vector<uint8_t> Bytes;
    Status Serialized = GraphSnapshot::serialize(Engine.solver(), Bytes);
    if (!Serialized)
      return Serialized;
    SizeOut = Bytes.size();
    ChecksumOut = GraphSnapshot::payloadChecksum(Bytes.data(), Bytes.size());
    return writeFileAtomic(Path, Bytes);
  };

  // Once a checkpoint has renamed a new snapshot into place, the open
  // WAL is stale: its records are contained in the snapshot, and its
  // base id no longer matches. Recovery handles that (the mismatch makes
  // it skip the log), but a RUNNING server must not keep acknowledging
  // into a log that restart will discard — so any post-rename checkpoint
  // failure disables the WAL and `add`/`checkpoint` refuse until
  // restart, while queries keep serving. WalArmed && !Wal.isOpen() is
  // the degraded state.
  auto DisableWal = [&](const std::string &Why) {
    if (!Wal.isOpen())
      return;
    std::fprintf(stderr,
                 "scserved: disabling WAL '%s' (%s); add/checkpoint are "
                 "refused until restart, which recovers cleanly\n",
                 WalPath.c_str(), Why.c_str());
    Wal.close();
  };

  // The snapshot's on-disk payload checksum, or 0 if unreadable.
  auto SnapshotFileChecksum = [](const std::string &Path) -> uint64_t {
    std::vector<uint8_t> Bytes;
    std::string Error;
    if (!readFileBytes(Path, Bytes, &Error))
      return 0;
    return GraphSnapshot::payloadChecksum(Bytes.data(), Bytes.size());
  };

  auto Checkpoint = [&](const std::string &Path) -> Status {
    if (WalArmed && !Wal.isOpen())
      return Status::error(ErrorCode::FailedPrecondition,
                           "WAL is disabled after a failed checkpoint; "
                           "restart to recover");
    const uint64_t StartUs = trace::nowMicros();
    size_t Bytes = 0;
    uint64_t NewBase = 0;
    Status Saved = SaveSnapshot(Path, Bytes, NewBase);
    if (!Saved) {
      // writeFileAtomic can fail after the rename (directory fsync): if
      // the new snapshot actually landed, the WAL no longer extends the
      // base under our feet.
      if (NewBase != 0 && SnapshotFileChecksum(Path) == NewBase)
        DisableWal("the new snapshot was renamed into place but the "
                   "checkpoint failed");
      return Saved.withContext("checkpoint");
    }
    // The new snapshot is durable; the crash window between here and the
    // WAL reset is covered by the base id (recovery sees the mismatch
    // and skips the stale log), and the failpoint lets the harness land
    // exactly inside it.
    Status St;
    if (FailPoint::hit("checkpoint.before_wal_reset") != FailPoint::Mode::Off)
      St = FailPoint::injectedError("checkpoint.before_wal_reset");
    if (St.ok() && Wal.isOpen())
      St = Wal.reset(NewBase);
    if (!St.ok()) {
      DisableWal("the snapshot was checkpointed but the WAL reset "
                 "failed: " + St.message());
      return St.withContext("checkpoint");
    }
    // A checkpointBase failure is benign for durability: the engine just
    // keeps its older rollback base plus the full journal, which still
    // restores the current state; the WAL stays live.
    Status Based = Engine.checkpointBase();
    if (!Based)
      return Based.withContext("checkpoint");
    ++Checkpoints;
    AddsSinceCheckpoint = 0;
    telemetry::checkpointHistogram().record(trace::nowMicros() - StartUs);
    trace::complete("serve.checkpoint", StartUs);
    return Status();
  };

  std::string Line;
  while (std::getline(std::cin, Line)) {
    if (Line.size() > static_cast<size_t>(MaxRequest)) {
      ReplyErr(Status::error(ErrorCode::TooLarge,
                             "request is " + std::to_string(Line.size()) +
                                 " bytes; limit is " +
                                 std::to_string(MaxRequest)));
      continue;
    }
    Request Req = parseRequest(Line);
    if (Req.Verb.empty() || Req.Verb[0] == '#')
      continue;

    ++RequestsHandled;
    if (MetricsEvery > 0 &&
        RequestsHandled % static_cast<uint64_t>(MetricsEvery) == 0)
      DumpMetrics();

    if (Req.Verb == "quit" || Req.Verb == "exit") {
      Reply("ok bye");
      break;
    }
    if (Req.Verb == "help") {
      Reply("ok commands: ls X | pts X | alias X Y | add LINE | "
            "save PATH | checkpoint [PATH] | stats | counters | metrics | "
            "help | quit");
      continue;
    }
    if (Req.Verb == "stats") {
      Reply(telemetry::buildStatsReply(Engine, ServerNow()));
      continue;
    }
    if (Req.Verb == "counters") {
      Reply(telemetry::buildCountersReply(
          Engine, telemetry::queryLatencyHistogram()));
      continue;
    }
    if (Req.Verb == "metrics") {
      Reply(telemetry::buildMetricsReply(MetricsRegistry::global(), Engine,
                                         ServerNow()));
      continue;
    }
    if (Req.Verb == "save") {
      if (Req.Arg1.empty()) {
        ReplyErr(Status::error(ErrorCode::InvalidArgument,
                               "save needs a path"));
        continue;
      }
      size_t Bytes = 0;
      uint64_t Checksum = 0;
      Status Saved = SaveSnapshot(Req.Arg1, Bytes, Checksum);
      if (!Saved) {
        ReplyErr(Saved);
        continue;
      }
      // Saving over the startup snapshot (under whatever spelling of its
      // path) makes the open WAL stale: every record is contained in the
      // file just written. Promote the save to a checkpoint so restart
      // and the live server agree on what the WAL extends.
      if (Wal.isOpen() && !Snapshot.empty() &&
          SnapshotFileChecksum(Snapshot) == Checksum) {
        Status Reset = Wal.reset(Checksum);
        if (!Reset) {
          DisableWal("the save replaced the startup snapshot but the "
                     "WAL reset failed: " + Reset.message());
          ReplyErr(Reset.withContext("save"));
          continue;
        }
        Status Based = Engine.checkpointBase();
        if (!Based) {
          ReplyErr(Based.withContext("save"));
          continue;
        }
        ++Checkpoints;
        AddsSinceCheckpoint = 0;
      }
      Reply("ok saved " + Req.Arg1 + " (" + std::to_string(Bytes) +
            " bytes)");
      continue;
    }
    if (Req.Verb == "checkpoint") {
      std::string Path = Req.Arg1.empty() ? Snapshot : Req.Arg1;
      if (Path.empty()) {
        ReplyErr(Status::error(ErrorCode::InvalidArgument,
                               "checkpoint needs a path (no --snapshot)"));
        continue;
      }
      Status Done = Checkpoint(Path);
      if (!Done) {
        ReplyErr(Done);
        continue;
      }
      Reply("ok checkpoint " + Path);
      continue;
    }
    if (Req.Verb == "add") {
      if (Req.Rest.empty()) {
        ReplyErr(Status::error(ErrorCode::InvalidArgument,
                               "add needs a constraint-file line"));
        continue;
      }
      if (WalArmed && !Wal.isOpen()) {
        ReplyErr(Status::error(ErrorCode::FailedPrecondition,
                               "WAL is disabled after a failed "
                               "checkpoint; restart to recover"));
        continue;
      }
      // Validation before durability, durability before application: a
      // line reaches the WAL only after a dry-run parse proves it would
      // apply cleanly (so a crash right after the fsync can never leave
      // an unreplayable line durable), and once the append returns, a
      // crash at any later point leaves the line in the WAL, so
      // `ok added` implies it survives recovery. The only post-append
      // rejection left is a budget breach, whose line is erased again so
      // the log only ever contains accepted lines.
      Status Checked = Engine.checkConstraint(Req.Rest);
      if (!Checked) {
        ReplyErr(Checked);
        continue;
      }
      uint64_t WalMark = Wal.sizeBytes();
      if (Wal.isOpen()) {
        Status Logged = Wal.append(Req.Rest);
        if (!Logged) {
          ReplyErr(Logged);
          continue;
        }
      }
      Status Added = Engine.addConstraint(Req.Rest);
      if (!Added) {
        if (Wal.isOpen()) {
          Status Undone = Wal.truncateTo(WalMark);
          if (!Undone) {
            ReplyErr(Undone.withContext("unlogging rejected add"));
            continue;
          }
        }
        ReplyErr(Added);
        continue;
      }
      ++AddsSinceCheckpoint;
      if (CheckpointEvery > 0 &&
          AddsSinceCheckpoint >= static_cast<uint64_t>(CheckpointEvery)) {
        Status Done = Checkpoint(Snapshot);
        if (!Done)
          // The add itself succeeded and is durable; surface the
          // checkpoint failure without un-acking it.
          std::fprintf(stderr, "scserved: auto-checkpoint failed: %s\n",
                       Done.toString().c_str());
      }
      Reply("ok added");
      continue;
    }

    if (Req.Verb == "ls" || Req.Verb == "pts" || Req.Verb == "alias") {
      const uint64_t StartUs = trace::nowMicros();
      std::string Response;
      VarId X = 0, Y = 0;
      if (!ResolveVar(Req.Arg1, X)) {
        ReplyErr(Status::error(ErrorCode::NotFound,
                               "unknown variable '" + Req.Arg1 + "'"));
        continue;
      }
      if (Req.Verb == "alias") {
        if (!ResolveVar(Req.Arg2, Y)) {
          ReplyErr(Status::error(ErrorCode::NotFound,
                                 "unknown variable '" + Req.Arg2 + "'"));
          continue;
        }
        Response = Engine.alias(X, Y) ? "ok true" : "ok false";
      } else if (Req.Verb == "ls") {
        Response = "ok " + joinSet(Engine.ls(X));
      } else {
        Response = "ok " + joinSet(Engine.pts(X));
      }
      telemetry::queryLatencyHistogram().record(trace::nowMicros() -
                                                StartUs);
      trace::complete("serve.query", StartUs);
      Reply(Response);
      continue;
    }

    ReplyErr(Status::error(ErrorCode::InvalidArgument,
                           "unknown verb '" + Req.Verb + "'; try help"));
  }
  DumpMetrics();
  return 0;
}
