//===- tests/support_test.cpp - Support library unit tests -----------------===//
//
// Part of the poce project.
//
//===----------------------------------------------------------------------===//

#include "support/Arena.h"
#include "support/ByteStream.h"
#include "support/CommandLine.h"
#include "support/DenseU64Map.h"
#include "support/DenseU64Set.h"
#include "support/FailPoint.h"
#include "support/Format.h"
#include "support/LruCache.h"
#include "support/PRNG.h"
#include "support/SmallVector.h"
#include "support/Statistic.h"
#include "support/Status.h"
#include "support/StringInterner.h"
#include "support/Timer.h"
#include "support/UnionFind.h"

#include <gtest/gtest.h>

#include <algorithm>
#include <cstdint>
#include <cstdio>
#include <cstring>
#include <fstream>
#include <set>
#include <unordered_set>

using namespace poce;

//===----------------------------------------------------------------------===//
// SmallVector
//===----------------------------------------------------------------------===//

TEST(SmallVectorTest, StaysInlineUntilCapacity) {
  SmallVector<int, 4> V;
  EXPECT_TRUE(V.empty());
  for (int I = 0; I != 4; ++I)
    V.push_back(I);
  EXPECT_EQ(V.size(), 4u);
  EXPECT_EQ(V.capacity(), 4u);
  V.push_back(4); // Forces heap allocation.
  EXPECT_GT(V.capacity(), 4u);
  for (int I = 0; I != 5; ++I)
    EXPECT_EQ(V[I], I);
}

TEST(SmallVectorTest, GrowPreservesElements) {
  SmallVector<int, 2> V;
  for (int I = 0; I != 1000; ++I)
    V.push_back(I * 7);
  ASSERT_EQ(V.size(), 1000u);
  for (int I = 0; I != 1000; ++I)
    EXPECT_EQ(V[I], I * 7);
}

TEST(SmallVectorTest, PopBackAndBack) {
  SmallVector<int, 4> V = {1, 2, 3};
  EXPECT_EQ(V.back(), 3);
  EXPECT_EQ(V.pop_back_val(), 3);
  EXPECT_EQ(V.size(), 2u);
  V.pop_back();
  EXPECT_EQ(V.back(), 1);
}

TEST(SmallVectorTest, EraseSingleAndRange) {
  SmallVector<int, 4> V = {0, 1, 2, 3, 4, 5};
  V.erase(V.begin() + 1);
  EXPECT_EQ(V.size(), 5u);
  EXPECT_EQ(V[1], 2);
  V.erase(V.begin() + 1, V.begin() + 3);
  ASSERT_EQ(V.size(), 3u);
  EXPECT_EQ(V[0], 0);
  EXPECT_EQ(V[1], 4);
  EXPECT_EQ(V[2], 5);
}

TEST(SmallVectorTest, InsertShiftsElements) {
  SmallVector<int, 2> V = {1, 3};
  V.insert(V.begin() + 1, 2);
  ASSERT_EQ(V.size(), 3u);
  EXPECT_EQ(V[0], 1);
  EXPECT_EQ(V[1], 2);
  EXPECT_EQ(V[2], 3);
}

TEST(SmallVectorTest, ResizeDefaultAndValue) {
  SmallVector<int, 2> V;
  V.resize(5, 9);
  EXPECT_EQ(V.size(), 5u);
  EXPECT_EQ(V[4], 9);
  V.resize(2);
  EXPECT_EQ(V.size(), 2u);
}

namespace {
struct Tracked {
  static int Live;
  int Value = 0;
  Tracked() { ++Live; }
  explicit Tracked(int Value) : Value(Value) { ++Live; }
  Tracked(const Tracked &RHS) : Value(RHS.Value) { ++Live; }
  Tracked(Tracked &&RHS) noexcept : Value(RHS.Value) { ++Live; }
  Tracked &operator=(const Tracked &) = default;
  Tracked &operator=(Tracked &&) = default;
  ~Tracked() { --Live; }
};
int Tracked::Live = 0;
} // namespace

TEST(SmallVectorTest, NonTrivialTypeDestructorsBalance) {
  {
    SmallVector<Tracked, 2> V;
    for (int I = 0; I != 20; ++I)
      V.emplace_back(I);
    EXPECT_EQ(Tracked::Live, 20);
    V.pop_back();
    EXPECT_EQ(Tracked::Live, 19);
    V.clear();
    EXPECT_EQ(Tracked::Live, 0);
    for (int I = 0; I != 5; ++I)
      V.emplace_back(I);
  }
  EXPECT_EQ(Tracked::Live, 0);
}

TEST(SmallVectorTest, CopyAndMove) {
  SmallVector<int, 2> A = {1, 2, 3, 4};
  SmallVector<int, 2> B(A);
  EXPECT_EQ(A, B);
  SmallVector<int, 2> C(std::move(B));
  EXPECT_EQ(A, C);
  EXPECT_TRUE(B.empty());
  SmallVector<int, 2> D;
  D = A;
  EXPECT_EQ(A, D);
}

TEST(SmallVectorTest, AppendAndAssign) {
  SmallVector<int, 2> V;
  int Data[] = {5, 6, 7};
  V.append(std::begin(Data), std::end(Data));
  EXPECT_EQ(V.size(), 3u);
  V.assign(4, 1);
  ASSERT_EQ(V.size(), 4u);
  EXPECT_EQ(V[3], 1);
}

//===----------------------------------------------------------------------===//
// DenseU64Set / DenseU64Map
//===----------------------------------------------------------------------===//

TEST(DenseU64SetTest, InsertContains) {
  DenseU64Set Set;
  EXPECT_FALSE(Set.contains(42));
  EXPECT_TRUE(Set.insert(42));
  EXPECT_FALSE(Set.insert(42));
  EXPECT_TRUE(Set.contains(42));
  EXPECT_EQ(Set.size(), 1u);
}

TEST(DenseU64SetTest, ZeroKeyIsValid) {
  DenseU64Set Set;
  EXPECT_TRUE(Set.insert(0));
  EXPECT_TRUE(Set.contains(0));
}

TEST(DenseU64SetTest, MatchesReferenceUnderRandomWorkload) {
  DenseU64Set Set;
  std::unordered_set<uint64_t> Reference;
  PRNG Rng(7);
  for (int I = 0; I != 20000; ++I) {
    uint64_t Key = Rng.nextBelow(5000);
    EXPECT_EQ(Set.insert(Key), Reference.insert(Key).second);
  }
  EXPECT_EQ(Set.size(), Reference.size());
  for (uint64_t Key = 0; Key != 5000; ++Key)
    EXPECT_EQ(Set.contains(Key), Reference.count(Key) != 0);
  uint64_t Visited = 0;
  Set.forEach([&](uint64_t Key) {
    ++Visited;
    EXPECT_TRUE(Reference.count(Key));
  });
  EXPECT_EQ(Visited, Reference.size());
}

TEST(DenseU64SetTest, ClearAndCopy) {
  DenseU64Set Set;
  for (uint64_t I = 0; I != 100; ++I)
    Set.insert(I);
  DenseU64Set Copy(Set);
  Set.clear();
  EXPECT_TRUE(Set.empty());
  EXPECT_EQ(Copy.size(), 100u);
  EXPECT_TRUE(Copy.contains(99));
  DenseU64Set Moved(std::move(Copy));
  EXPECT_TRUE(Moved.contains(50));
}

TEST(DenseU64MapTest, InsertLookupBracket) {
  DenseU64Map<uint32_t> Map;
  EXPECT_EQ(Map.lookup(1), nullptr);
  EXPECT_TRUE(Map.insert(1, 100));
  EXPECT_FALSE(Map.insert(1, 200)); // Does not overwrite.
  ASSERT_NE(Map.lookup(1), nullptr);
  EXPECT_EQ(*Map.lookup(1), 100u);
  Map[2] = 5;
  Map[2] += 1;
  EXPECT_EQ(*Map.lookup(2), 6u);
  EXPECT_EQ(Map.size(), 2u);
}

TEST(DenseU64MapTest, GrowKeepsAssociations) {
  DenseU64Map<uint64_t> Map;
  for (uint64_t I = 0; I != 3000; ++I)
    Map.insert(I * 3 + 1, I);
  for (uint64_t I = 0; I != 3000; ++I) {
    ASSERT_NE(Map.lookup(I * 3 + 1), nullptr);
    EXPECT_EQ(*Map.lookup(I * 3 + 1), I);
  }
  EXPECT_FALSE(Map.contains(2));
}

//===----------------------------------------------------------------------===//
// UnionFind
//===----------------------------------------------------------------------===//

TEST(UnionFindTest, SingletonsAreTheirOwnReps) {
  UnionFind UF;
  EXPECT_EQ(UF.makeSet(), 0u);
  EXPECT_EQ(UF.makeSet(), 1u);
  EXPECT_EQ(UF.find(0), 0u);
  EXPECT_TRUE(UF.isRepresentative(1));
}

TEST(UnionFindTest, UniteChoosesParentSide) {
  UnionFind UF;
  UF.growTo(4);
  EXPECT_TRUE(UF.unite(/*Child=*/0, /*Parent=*/1));
  EXPECT_EQ(UF.find(0), 1u);
  EXPECT_FALSE(UF.isRepresentative(0));
  // Parent argument resolved through its representative.
  EXPECT_TRUE(UF.unite(2, 0));
  EXPECT_EQ(UF.find(2), 1u);
  EXPECT_FALSE(UF.unite(2, 1));
}

TEST(UnionFindTest, TransitiveClosureProperty) {
  UnionFind UF;
  const uint32_t N = 200;
  UF.growTo(N);
  PRNG Rng(3);
  std::vector<std::pair<uint32_t, uint32_t>> Merges;
  for (int I = 0; I != 150; ++I) {
    uint32_t A = static_cast<uint32_t>(Rng.nextBelow(N));
    uint32_t B = static_cast<uint32_t>(Rng.nextBelow(N));
    UF.unite(A, B);
    Merges.push_back({A, B});
  }
  // Reference: naive labels.
  std::vector<uint32_t> Label(N);
  for (uint32_t I = 0; I != N; ++I)
    Label[I] = I;
  bool Changed = true;
  while (Changed) {
    Changed = false;
    for (auto [A, B] : Merges) {
      uint32_t Merged = std::min(Label[A], Label[B]);
      for (uint32_t I = 0; I != N; ++I)
        if (Label[I] == Label[A] || Label[I] == Label[B])
          if (Label[I] != Merged) {
            Label[I] = Merged;
            Changed = true;
          }
    }
  }
  for (uint32_t A = 0; A != N; ++A)
    for (uint32_t B = A + 1; B != N; ++B)
      EXPECT_EQ(UF.findConst(A) == UF.findConst(B), Label[A] == Label[B]);
}

//===----------------------------------------------------------------------===//
// PRNG
//===----------------------------------------------------------------------===//

TEST(PRNGTest, DeterministicForSeed) {
  PRNG A(123), B(123);
  for (int I = 0; I != 100; ++I)
    EXPECT_EQ(A.nextU64(), B.nextU64());
  PRNG C(124);
  EXPECT_NE(A.nextU64(), C.nextU64());
}

TEST(PRNGTest, NextBelowInRange) {
  PRNG Rng(5);
  for (int I = 0; I != 10000; ++I)
    EXPECT_LT(Rng.nextBelow(17), 17u);
  for (int I = 0; I != 100; ++I)
    EXPECT_EQ(Rng.nextBelow(1), 0u);
}

TEST(PRNGTest, NextBelowRoughlyUniform) {
  PRNG Rng(11);
  const int Buckets = 10, Samples = 100000;
  int Counts[Buckets] = {};
  for (int I = 0; I != Samples; ++I)
    ++Counts[Rng.nextBelow(Buckets)];
  for (int Count : Counts) {
    EXPECT_GT(Count, Samples / Buckets * 0.9);
    EXPECT_LT(Count, Samples / Buckets * 1.1);
  }
}

TEST(PRNGTest, ShuffleIsPermutation) {
  PRNG Rng(9);
  std::vector<int> V(50);
  for (int I = 0; I != 50; ++I)
    V[I] = I;
  Rng.shuffle(V.begin(), V.end());
  std::vector<int> Sorted = V;
  std::sort(Sorted.begin(), Sorted.end());
  for (int I = 0; I != 50; ++I)
    EXPECT_EQ(Sorted[I], I);
}

TEST(PRNGTest, NextDoubleInUnitInterval) {
  PRNG Rng(13);
  for (int I = 0; I != 1000; ++I) {
    double X = Rng.nextDouble();
    EXPECT_GE(X, 0.0);
    EXPECT_LT(X, 1.0);
  }
}

TEST(PRNGTest, NextRangeInclusive) {
  PRNG Rng(17);
  bool SawLo = false, SawHi = false;
  for (int I = 0; I != 1000; ++I) {
    int64_t X = Rng.nextRange(-3, 3);
    EXPECT_GE(X, -3);
    EXPECT_LE(X, 3);
    SawLo |= X == -3;
    SawHi |= X == 3;
  }
  EXPECT_TRUE(SawLo);
  EXPECT_TRUE(SawHi);
}

//===----------------------------------------------------------------------===//
// StringInterner
//===----------------------------------------------------------------------===//

TEST(StringInternerTest, StableIdsInFirstSeenOrder) {
  StringInterner Interner;
  EXPECT_EQ(Interner.intern("alpha"), 0u);
  EXPECT_EQ(Interner.intern("beta"), 1u);
  EXPECT_EQ(Interner.intern("alpha"), 0u);
  EXPECT_EQ(Interner.str(1), "beta");
  EXPECT_EQ(Interner.lookup("gamma"), StringInterner::NotFound);
  EXPECT_EQ(Interner.lookup("beta"), 1u);
  EXPECT_EQ(Interner.size(), 2u);
}

//===----------------------------------------------------------------------===//
// Timer, Statistic, Format, CommandLine
//===----------------------------------------------------------------------===//

TEST(TimerTest, MeasuresElapsedTime) {
  Timer T;
  volatile double Sink = 0;
  for (int I = 0; I != 100000; ++I)
    Sink = Sink + I;
  EXPECT_GE(T.seconds(), 0.0);
  double First = T.seconds();
  EXPECT_GE(T.seconds(), First);
}

TEST(TimerTest, BestOfNReturnsMinimum) {
  int Runs = 0;
  double Best = bestOfN(3, [&] { ++Runs; });
  EXPECT_EQ(Runs, 3);
  EXPECT_GE(Best, 0.0);
}

TEST(TimerTest, BestOfZeroRepeatsIsZeroNotSentinel) {
  int Runs = 0;
  double Best = bestOfN(0, [&] { ++Runs; });
  EXPECT_EQ(Runs, 0);
  EXPECT_EQ(Best, 0.0); // Not the internal -1.0 "no sample yet" marker.
}

TEST(StatisticTest, CountsAndResets) {
  static Statistic Counter("test", "A test counter");
  Counter.reset();
  ++Counter;
  Counter += 4;
  EXPECT_EQ(Counter.value(), 5u);
  resetAllStatistics();
  EXPECT_EQ(Counter.value(), 0u);
}

TEST(FormatTest, GroupedNumbers) {
  EXPECT_EQ(formatGrouped(0), "0");
  EXPECT_EQ(formatGrouped(999), "999");
  EXPECT_EQ(formatGrouped(1000), "1,000");
  EXPECT_EQ(formatGrouped(1234567), "1,234,567");
}

TEST(FormatTest, FormatDouble) {
  EXPECT_EQ(formatDouble(3.14159, 2), "3.14");
  EXPECT_EQ(formatDouble(2.0, 0), "2");
}

TEST(FormatTest, TextTableAligns) {
  TextTable Table({"Name", "Value"});
  Table.addRow({"short", "1"});
  Table.addRow({"muchlongername", "12345"});
  testing::internal::CaptureStdout();
  Table.print(stdout);
  std::string Out = testing::internal::GetCapturedStdout();
  EXPECT_NE(Out.find("Name"), std::string::npos);
  EXPECT_NE(Out.find("muchlongername"), std::string::npos);
  EXPECT_NE(Out.find("-----"), std::string::npos);
}

TEST(CommandLineTest, ParsesAllOptionKinds) {
  CommandLine Cmd("tool", "overview");
  bool Flag = false;
  std::string Str;
  int64_t Int = 0;
  double Dbl = 0;
  Cmd.addFlag("flag", &Flag, "a flag");
  Cmd.addString("str", &Str, "a string");
  Cmd.addInt("int", &Int, "an int");
  Cmd.addDouble("dbl", &Dbl, "a double");
  const char *Argv[] = {"tool", "--flag", "--str=hello", "--int", "42",
                        "--dbl=2.5", "positional"};
  EXPECT_TRUE(Cmd.parse(7, Argv));
  EXPECT_TRUE(Flag);
  EXPECT_EQ(Str, "hello");
  EXPECT_EQ(Int, 42);
  EXPECT_DOUBLE_EQ(Dbl, 2.5);
  ASSERT_EQ(Cmd.positionals().size(), 1u);
  EXPECT_EQ(Cmd.positionals()[0], "positional");
}

TEST(CommandLineTest, RejectsUnknownOptionAndBadValues) {
  CommandLine Cmd("tool", "overview");
  int64_t Int = 0;
  Cmd.addInt("int", &Int, "an int");
  const char *Unknown[] = {"tool", "--nope"};
  EXPECT_FALSE(Cmd.parse(2, Unknown));
  CommandLine Cmd2("tool", "overview");
  Cmd2.addInt("int", &Int, "an int");
  const char *Bad[] = {"tool", "--int=xyz"};
  EXPECT_FALSE(Cmd2.parse(2, Bad));
}

//===----------------------------------------------------------------------===//
// ArrayRef
//===----------------------------------------------------------------------===//

#include "support/ArrayRef.h"

TEST(ArrayRefTest, ConstructionFromEverySource) {
  int CArray[] = {1, 2, 3};
  std::vector<int> Vec = {4, 5};
  SmallVector<int, 4> Small = {6, 7, 8};
  int Single = 9;

  ArrayRef<int> FromC(CArray);
  EXPECT_EQ(FromC.size(), 3u);
  EXPECT_EQ(FromC[2], 3);

  ArrayRef<int> FromVec(Vec);
  EXPECT_EQ(FromVec.size(), 2u);
  EXPECT_EQ(FromVec.front(), 4);

  ArrayRef<int> FromSmall(Small);
  EXPECT_EQ(FromSmall.back(), 8);

  ArrayRef<int> FromSingle(Single);
  EXPECT_EQ(FromSingle.size(), 1u);
  EXPECT_EQ(FromSingle[0], 9);

  ArrayRef<int> Empty;
  EXPECT_TRUE(Empty.empty());
}

TEST(ArrayRefTest, SliceDropAndEquality) {
  int Data[] = {0, 1, 2, 3, 4, 5};
  ArrayRef<int> Ref(Data);
  ArrayRef<int> Middle = Ref.slice(1, 3);
  ASSERT_EQ(Middle.size(), 3u);
  EXPECT_EQ(Middle[0], 1);
  EXPECT_EQ(Middle[2], 3);
  // Count clamps to the end.
  EXPECT_EQ(Ref.slice(4, 100).size(), 2u);
  EXPECT_EQ(Ref.dropFront(2).front(), 2);
  EXPECT_EQ(Ref.dropBack(2).back(), 3);
  EXPECT_EQ(Ref.dropFront(6).size(), 0u);

  int Same[] = {1, 2, 3};
  int Different[] = {1, 2, 4};
  EXPECT_TRUE(ArrayRef<int>(Same) == Ref.slice(1, 3));
  EXPECT_TRUE(ArrayRef<int>(Different) != Ref.slice(1, 3));
}

TEST(ArrayRefTest, IterationAndVec) {
  std::vector<int> Source = {10, 20, 30};
  ArrayRef<int> Ref = makeArrayRef(Source);
  int Sum = 0;
  for (int Value : Ref)
    Sum += Value;
  EXPECT_EQ(Sum, 60);
  std::vector<int> Copy = Ref.vec();
  EXPECT_EQ(Copy, Source);
}

//===----------------------------------------------------------------------===//
// LruCache
//===----------------------------------------------------------------------===//

TEST(LruCacheTest, EvictsLeastRecentlyUsed) {
  LruCache<int, std::string> Cache(2);
  Cache.put(1, "one");
  Cache.put(2, "two");
  ASSERT_NE(Cache.get(1), nullptr); // 1 becomes most recent
  Cache.put(3, "three");            // evicts 2
  EXPECT_EQ(Cache.get(2), nullptr);
  ASSERT_NE(Cache.get(1), nullptr);
  EXPECT_EQ(*Cache.get(1), "one");
  ASSERT_NE(Cache.get(3), nullptr);
  EXPECT_EQ(Cache.size(), 2u);
  EXPECT_EQ(Cache.evictions(), 1u);
}

TEST(LruCacheTest, PutOverwritesInPlace) {
  LruCache<int, int> Cache(2);
  Cache.put(1, 10);
  Cache.put(2, 20);
  Cache.put(1, 11); // overwrite, no eviction
  EXPECT_EQ(Cache.evictions(), 0u);
  EXPECT_EQ(*Cache.get(1), 11);
  Cache.put(3, 30); // now 2 is the victim (1 was refreshed by put)
  EXPECT_EQ(Cache.get(2), nullptr);
  EXPECT_EQ(*Cache.get(1), 11);
}

TEST(LruCacheTest, EraseAndClear) {
  LruCache<int, int> Cache(4);
  for (int I = 0; I != 4; ++I)
    Cache.put(I, I * I);
  Cache.erase(2);
  EXPECT_EQ(Cache.get(2), nullptr);
  EXPECT_EQ(Cache.size(), 3u);
  Cache.clear();
  EXPECT_EQ(Cache.size(), 0u);
  EXPECT_EQ(Cache.get(0), nullptr);
  Cache.put(9, 81); // usable after clear
  EXPECT_EQ(*Cache.get(9), 81);
}

TEST(LruCacheTest, MinimumCapacityIsOne) {
  LruCache<int, int> Cache(0); // clamped to 1
  EXPECT_EQ(Cache.capacity(), 1u);
  Cache.put(1, 10);
  Cache.put(2, 20);
  EXPECT_EQ(Cache.get(1), nullptr);
  EXPECT_EQ(*Cache.get(2), 20);
  EXPECT_EQ(Cache.evictions(), 1u);
}

TEST(LruCacheTest, CapacityOneFullLifecycle) {
  LruCache<int, int> Cache(1);
  EXPECT_EQ(Cache.capacity(), 1u);
  EXPECT_EQ(Cache.get(1), nullptr); // miss on empty
  Cache.put(1, 10);
  EXPECT_EQ(*Cache.get(1), 10);
  Cache.put(1, 11); // overwrite in place, no eviction
  EXPECT_EQ(*Cache.get(1), 11);
  EXPECT_EQ(Cache.evictions(), 0u);
  Cache.put(2, 20); // evicts the sole entry
  EXPECT_EQ(Cache.get(1), nullptr);
  EXPECT_EQ(*Cache.get(2), 20);
  EXPECT_EQ(Cache.evictions(), 1u);
  EXPECT_EQ(Cache.size(), 1u);
  Cache.erase(2);
  EXPECT_EQ(Cache.size(), 0u);
  Cache.put(3, 30); // usable after erase
  EXPECT_EQ(*Cache.get(3), 30);
}

//===----------------------------------------------------------------------===//
// ByteStream
//===----------------------------------------------------------------------===//

TEST(ByteStreamTest, RoundTripsScalarsAndStrings) {
  ByteWriter Writer;
  Writer.u8(0xab);
  Writer.u32(0xdeadbeef);
  Writer.u64(0x0123456789abcdefULL);
  Writer.str("hello");
  Writer.str("");

  ByteReader Reader(Writer.buffer().data(), Writer.size());
  uint8_t Byte = 0;
  uint32_t Word = 0;
  uint64_t Wide = 0;
  std::string Text;
  EXPECT_TRUE(Reader.u8(Byte));
  EXPECT_EQ(Byte, 0xab);
  EXPECT_TRUE(Reader.u32(Word));
  EXPECT_EQ(Word, 0xdeadbeefu);
  EXPECT_TRUE(Reader.u64(Wide));
  EXPECT_EQ(Wide, 0x0123456789abcdefULL);
  EXPECT_TRUE(Reader.str(Text));
  EXPECT_EQ(Text, "hello");
  EXPECT_TRUE(Reader.str(Text));
  EXPECT_EQ(Text, "");
  EXPECT_FALSE(Reader.failed());
  EXPECT_EQ(Reader.remaining(), 0u);
}

TEST(ByteStreamTest, TruncationFailsStickyWithOffset) {
  ByteWriter Writer;
  Writer.u32(7);
  ByteReader Reader(Writer.buffer().data(), 2);
  uint32_t Word = 99;
  EXPECT_FALSE(Reader.u32(Word));
  EXPECT_EQ(Word, 99u); // output untouched on failure
  EXPECT_TRUE(Reader.failed());
  EXPECT_NE(Reader.error().find("truncated"), std::string::npos);
  // Sticky: further reads keep failing.
  uint64_t Wide = 0;
  EXPECT_FALSE(Reader.u64(Wide));
  EXPECT_TRUE(Reader.failed());
}

TEST(ByteStreamTest, PatchU64RewritesInPlace) {
  ByteWriter Writer;
  Writer.u64(0); // placeholder
  Writer.u8(0x77);
  Writer.patchU64(0, 0x1122334455667788ULL);
  ByteReader Reader(Writer.buffer().data(), Writer.size());
  uint64_t Wide = 0;
  uint8_t Byte = 0;
  EXPECT_TRUE(Reader.u64(Wide));
  EXPECT_EQ(Wide, 0x1122334455667788ULL);
  EXPECT_TRUE(Reader.u8(Byte));
  EXPECT_EQ(Byte, 0x77);
}

TEST(ByteStreamTest, Fnv1aIsStableAndSensitive) {
  const uint8_t Data[] = {1, 2, 3, 4};
  uint64_t Sum = fnv1a64(Data, sizeof(Data));
  EXPECT_EQ(Sum, fnv1a64(Data, sizeof(Data)));
  const uint8_t Flipped[] = {1, 2, 3, 5};
  EXPECT_NE(Sum, fnv1a64(Flipped, sizeof(Flipped)));
  EXPECT_NE(fnv1a64(Data, 3), Sum);
}

namespace {

/// Disarms every failpoint on scope exit so a failing ASSERT cannot leak
/// an armed fault into later tests.
struct FailPointGuard {
  ~FailPointGuard() { FailPoint::disarmAll(); }
};

std::string supportTempPath(const std::string &Name) {
  std::string Path = testing::TempDir() + "poce_support_" + Name;
  std::remove(Path.c_str());
  return Path;
}

std::vector<uint8_t> somePayload(size_t Size) {
  std::vector<uint8_t> Buffer(Size);
  for (size_t I = 0; I != Size; ++I)
    Buffer[I] = static_cast<uint8_t>(I * 7 + 1);
  return Buffer;
}

} // namespace

TEST(ByteStreamFileTest, WriteReadRoundTrip) {
  std::string Path = supportTempPath("roundtrip.bin");
  std::vector<uint8_t> Payload = somePayload(1000);
  std::string Error;
  ASSERT_TRUE(writeFileBytes(Path, Payload, &Error)) << Error;
  std::vector<uint8_t> Back;
  ASSERT_TRUE(readFileBytes(Path, Back, &Error)) << Error;
  EXPECT_EQ(Back, Payload);
  std::remove(Path.c_str());
}

TEST(ByteStreamFileTest, ReadMissingFileFails) {
  std::vector<uint8_t> Buffer;
  std::string Error;
  EXPECT_FALSE(
      readFileBytes(supportTempPath("never_written.bin"), Buffer, &Error));
  EXPECT_NE(Error.find("cannot open"), std::string::npos);
}

TEST(ByteStreamFileTest, ShortWriteLeavesTruncatedFile) {
  // writeFileBytes is the NOT-crash-safe primitive: a short write leaves
  // a truncated file in place — the hazard writeFileAtomic exists for.
  FailPointGuard Guard;
  std::string Path = supportTempPath("short.bin");
  std::vector<uint8_t> Payload = somePayload(1000);
  ASSERT_TRUE(FailPoint::armSpec("bytestream.write=short").ok());
  std::string Error;
  EXPECT_FALSE(writeFileBytes(Path, Payload, &Error));
  EXPECT_NE(Error.find("short write"), std::string::npos);
  std::vector<uint8_t> Back;
  ASSERT_TRUE(readFileBytes(Path, Back, &Error)) << Error;
  EXPECT_EQ(Back.size(), Payload.size() / 2);

  // Error mode fails before the file is even opened.
  ASSERT_TRUE(FailPoint::armSpec("bytestream.write=error").ok());
  EXPECT_FALSE(writeFileBytes(Path, Payload, &Error));
  EXPECT_NE(Error.find("bytestream.write"), std::string::npos);
  std::remove(Path.c_str());
}

TEST(ByteStreamFileTest, AtomicWriteReplacesOrPreservesNeverTears) {
  FailPointGuard Guard;
  std::string Path = supportTempPath("atomic.bin");
  std::vector<uint8_t> Old = somePayload(100);
  ASSERT_TRUE(writeFileAtomic(Path, Old).ok());
  std::vector<uint8_t> Back;
  std::string Error;
  ASSERT_TRUE(readFileBytes(Path, Back, &Error)) << Error;
  EXPECT_EQ(Back, Old);

  // Any injected fault leaves the previous contents intact and cleans up
  // the temp file.
  std::vector<uint8_t> New = somePayload(300);
  for (const char *Spec :
       {"atomic.write=error", "atomic.write=short",
        "atomic.before_fsync=error", "atomic.before_rename=error"}) {
    ASSERT_TRUE(FailPoint::armSpec(Spec).ok()) << Spec;
    Status St = writeFileAtomic(Path, New);
    EXPECT_FALSE(St.ok()) << Spec;
    EXPECT_EQ(St.code(), ErrorCode::IoError) << Spec;
    ASSERT_TRUE(readFileBytes(Path, Back, &Error)) << Error;
    EXPECT_EQ(Back, Old) << Spec;
    std::ifstream Tmp(Path + ".tmp");
    EXPECT_FALSE(Tmp.good()) << Spec << " left a stray temp file";
  }

  // With faults disarmed the replacement goes through whole.
  ASSERT_TRUE(writeFileAtomic(Path, New).ok());
  ASSERT_TRUE(readFileBytes(Path, Back, &Error)) << Error;
  EXPECT_EQ(Back, New);
  std::remove(Path.c_str());
}

//===----------------------------------------------------------------------===//
// Status / Expected
//===----------------------------------------------------------------------===//

TEST(StatusTest, DefaultIsOk) {
  Status St;
  EXPECT_TRUE(St.ok());
  EXPECT_TRUE(static_cast<bool>(St));
  EXPECT_EQ(St.code(), ErrorCode::Ok);
  EXPECT_EQ(St.toString(), "ok");
  EXPECT_EQ(St.wire(), "ok");
  EXPECT_TRUE(Status().ok());
}

TEST(StatusTest, ErrorCarriesCodeAndMessage) {
  Status St = Status::error(ErrorCode::NotFound, "no such thing");
  EXPECT_FALSE(St.ok());
  EXPECT_FALSE(static_cast<bool>(St));
  EXPECT_EQ(St.code(), ErrorCode::NotFound);
  EXPECT_EQ(St.message(), "no such thing");
  EXPECT_EQ(St.toString(), "not_found: no such thing");
  EXPECT_EQ(St.wire(), "not_found no such thing");
}

TEST(StatusTest, WireCodesAreStableSnakeCase) {
  // These strings are the serve protocol's error codes; renaming one is a
  // wire-format break.
  EXPECT_STREQ(errorCodeName(ErrorCode::Ok), "ok");
  EXPECT_STREQ(errorCodeName(ErrorCode::InvalidArgument), "invalid_argument");
  EXPECT_STREQ(errorCodeName(ErrorCode::ParseError), "parse_error");
  EXPECT_STREQ(errorCodeName(ErrorCode::IoError), "io_error");
  EXPECT_STREQ(errorCodeName(ErrorCode::Corruption), "corruption");
  EXPECT_STREQ(errorCodeName(ErrorCode::VersionSkew), "version_skew");
  EXPECT_STREQ(errorCodeName(ErrorCode::NotFound), "not_found");
  EXPECT_STREQ(errorCodeName(ErrorCode::TooLarge), "too_large");
  EXPECT_STREQ(errorCodeName(ErrorCode::BudgetExceeded), "budget_exceeded");
  EXPECT_STREQ(errorCodeName(ErrorCode::FailedPrecondition),
               "failed_precondition");
  EXPECT_STREQ(errorCodeName(ErrorCode::Internal), "internal");
}

TEST(StatusTest, WithContextPrependsAndKeepsCode) {
  Status St = Status::error(ErrorCode::IoError, "fsync failed")
                  .withContext("saving snapshot")
                  .withContext("checkpoint");
  EXPECT_EQ(St.code(), ErrorCode::IoError);
  EXPECT_EQ(St.message(), "checkpoint: saving snapshot: fsync failed");
  // No-op on success.
  EXPECT_TRUE(Status().withContext("ignored").ok());
}

TEST(StatusTest, ErrorWithOkCodeCoercesToInternal) {
  // error() must never manufacture a "successful failure".
  Status St = Status::error(ErrorCode::Ok, "mislabelled");
  EXPECT_FALSE(St.ok());
  EXPECT_EQ(St.code(), ErrorCode::Internal);
}

TEST(ExpectedTest, HoldsValueOrStatus) {
  Expected<int> Good(42);
  ASSERT_TRUE(Good.ok());
  EXPECT_EQ(Good.value(), 42);
  EXPECT_EQ(*Good, 42);
  EXPECT_TRUE(Good.status().ok());

  Expected<int> Bad(Status::error(ErrorCode::ParseError, "nope"));
  ASSERT_FALSE(Bad.ok());
  EXPECT_EQ(Bad.status().code(), ErrorCode::ParseError);

  Expected<std::string> Str(std::string("hello"));
  EXPECT_EQ(Str->size(), 5u);
}

//===----------------------------------------------------------------------===//
// FailPoint
//===----------------------------------------------------------------------===//

TEST(FailPointTest, OffByDefault) {
  EXPECT_EQ(FailPoint::armedCount(), 0u);
  EXPECT_EQ(FailPoint::hit("some.site"), FailPoint::Mode::Off);
}

TEST(FailPointTest, ArmedOneShotFiresOnceThenDisarms) {
  FailPointGuard Guard;
  ASSERT_TRUE(FailPoint::armSpec("site.a=error").ok());
  EXPECT_EQ(FailPoint::armedCount(), 1u);
  EXPECT_EQ(FailPoint::hit("site.other"), FailPoint::Mode::Off);
  EXPECT_EQ(FailPoint::hit("site.a"), FailPoint::Mode::Error);
  // Fired and disarmed: subsequent hits pass.
  EXPECT_EQ(FailPoint::hit("site.a"), FailPoint::Mode::Off);
  EXPECT_EQ(FailPoint::armedCount(), 0u);
}

TEST(FailPointTest, NthHitCounting) {
  FailPointGuard Guard;
  ASSERT_TRUE(FailPoint::armSpec("site.n=short@3").ok());
  EXPECT_EQ(FailPoint::hit("site.n"), FailPoint::Mode::Off);
  EXPECT_EQ(FailPoint::hit("site.n"), FailPoint::Mode::Off);
  EXPECT_EQ(FailPoint::hit("site.n"), FailPoint::Mode::Short);
  EXPECT_EQ(FailPoint::hit("site.n"), FailPoint::Mode::Off);
}

TEST(FailPointTest, MultipleEntriesAndDisarmAll) {
  FailPointGuard Guard;
  ASSERT_TRUE(FailPoint::armSpec("site.a=error,site.b=short@2").ok());
  EXPECT_EQ(FailPoint::armedCount(), 2u);
  FailPoint::disarmAll();
  EXPECT_EQ(FailPoint::armedCount(), 0u);
  EXPECT_EQ(FailPoint::hit("site.a"), FailPoint::Mode::Off);
}

TEST(FailPointTest, MalformedSpecsArmNothing) {
  FailPointGuard Guard;
  for (const char *Bad : {"nosuchmode", "site.a=frobnicate", "site.a=",
                          "=error", "site.a=error@", "site.a=error@zero",
                          "site.a=error@0"}) {
    Status St = FailPoint::armSpec(Bad);
    EXPECT_FALSE(St.ok()) << Bad;
    EXPECT_EQ(St.code(), ErrorCode::InvalidArgument) << Bad;
    EXPECT_EQ(FailPoint::armedCount(), 0u) << Bad;
  }
}

TEST(FailPointTest, InjectedErrorNamesTheSite) {
  Status St = FailPoint::injectedError("wal.append.pre");
  EXPECT_EQ(St.code(), ErrorCode::IoError);
  EXPECT_NE(St.message().find("wal.append.pre"), std::string::npos);
}

//===----------------------------------------------------------------------===//
// Arena
//===----------------------------------------------------------------------===//

TEST(ArenaTest, BumpAllocationIsAlignedAndDisjoint) {
  Arena A(64);
  std::vector<std::pair<char *, size_t>> Blocks;
  for (size_t Size : {1u, 7u, 16u, 33u, 64u, 200u, 3u}) {
    void *P = A.allocate(Size, 8);
    EXPECT_EQ(reinterpret_cast<uintptr_t>(P) % 8, 0u);
    std::memset(P, 0xAB, Size);
    Blocks.push_back({static_cast<char *>(P), Size});
  }
  // No block overlaps another, and every byte survived later allocations.
  for (size_t I = 0; I != Blocks.size(); ++I) {
    for (size_t J = I + 1; J != Blocks.size(); ++J) {
      char *AStart = Blocks[I].first, *AEnd = AStart + Blocks[I].second;
      char *BStart = Blocks[J].first, *BEnd = BStart + Blocks[J].second;
      EXPECT_TRUE(AEnd <= BStart || BEnd <= AStart);
    }
    for (size_t B = 0; B != Blocks[I].second; ++B)
      EXPECT_EQ(static_cast<unsigned char>(Blocks[I].first[B]), 0xABu);
  }
  EXPECT_EQ(A.bytesAllocated(), 1u + 7 + 16 + 33 + 64 + 200 + 3);
}

TEST(ArenaTest, CreateAndAllocateArray) {
  Arena A;
  struct Point {
    int X, Y;
  };
  Point *P = A.create<Point>(Point{3, 4});
  EXPECT_EQ(P->X, 3);
  EXPECT_EQ(P->Y, 4);
  uint64_t *Row = A.allocateArray<uint64_t>(100);
  for (size_t I = 0; I != 100; ++I)
    Row[I] = I * I;
  EXPECT_EQ(Row[99], 99u * 99);
  EXPECT_EQ(reinterpret_cast<uintptr_t>(Row) % alignof(uint64_t), 0u);
}

TEST(ArenaTest, SlabsDoubleAndOversizeGetsDedicatedSlab) {
  Arena A(32);
  A.allocate(24);
  size_t After1 = A.numSlabs();
  A.allocate(24); // spills into a second, larger slab
  EXPECT_GT(A.numSlabs(), After1);
  size_t ReservedBefore = A.bytesReserved();
  void *Big = A.allocate(1 << 21); // larger than the 1 MiB doubling cap
  EXPECT_NE(Big, nullptr);
  EXPECT_GE(A.bytesReserved(), ReservedBefore + (size_t(1) << 21));
}

TEST(ArenaTest, ResetRetainsSlabsAndReusesThem) {
  Arena A(128);
  for (int I = 0; I != 50; ++I)
    A.allocate(64);
  size_t Reserved = A.bytesReserved();
  size_t Slabs = A.numSlabs();
  A.reset();
  EXPECT_EQ(A.bytesAllocated(), 0u);
  EXPECT_EQ(A.bytesReserved(), Reserved);
  // The same volume again must fit entirely in retained memory.
  for (int I = 0; I != 50; ++I)
    A.allocate(64);
  EXPECT_EQ(A.numSlabs(), Slabs);
  EXPECT_EQ(A.bytesReserved(), Reserved);
}

TEST(ArenaTest, ResetOnEmptyArenaIsANoOp) {
  Arena A;
  A.reset();
  EXPECT_EQ(A.bytesAllocated(), 0u);
  EXPECT_EQ(A.numSlabs(), 0u);
  EXPECT_NE(A.allocate(16), nullptr);
}

TEST(ArenaTest, UndersizedRetainedSlabsAreSkippedButKept) {
  Arena A(32);
  A.allocate(24);      // slab 0: 32 bytes
  A.allocate(1000);    // slab 1: oversize for the doubling schedule
  size_t Slabs = A.numSlabs();
  A.reset();
  // A first allocation too big for slab 0 must skip it, land in slab 1,
  // and keep slab 0 owned for future resets.
  void *P = A.allocate(500);
  EXPECT_NE(P, nullptr);
  EXPECT_EQ(A.numSlabs(), Slabs);
  A.reset();
  A.allocate(8); // fits slab 0 again
  EXPECT_EQ(A.numSlabs(), Slabs);
}
