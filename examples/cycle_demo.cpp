//===- examples/cycle_demo.cpp - Watching online cycle elimination ---------===//
//
// Part of the poce project.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Demonstrates the paper's central mechanism on a synthetic benchmark:
/// how partial online cycle elimination changes the constraint graph. The
/// example generates a mid-sized pointer-heavy program, analyzes it with
/// and without elimination, reports the cycle statistics (detection rate
/// against the oracle ground truth), and writes before/after DOT renderings
/// of the variable constraint graph for a small program.
///
/// Build & run:  ./build/examples/cycle_demo
///
//===----------------------------------------------------------------------===//

#include "andersen/Andersen.h"
#include "graph/DotWriter.h"
#include "graph/TarjanSCC.h"
#include "setcon/Oracle.h"
#include "support/Format.h"
#include "workload/Suite.h"

#include <cstdio>

using namespace poce;

int main() {
  //===------------------------------------------------------------------===//
  // Part 1: detection statistics on a mid-sized synthetic benchmark.
  //===------------------------------------------------------------------===//
  workload::ProgramSpec Spec;
  Spec.Name = "cycle-demo";
  Spec.TargetAstNodes = 8000;
  Spec.Seed = 7;
  auto Program = workload::prepareProgram(Spec);
  if (!Program->Ok) {
    std::fprintf(stderr, "internal error: generated program failed to parse\n");
    return 1;
  }
  std::printf("synthetic benchmark: %llu AST nodes, %u lines\n",
              (unsigned long long)Program->AstNodes, Program->Lines);

  ConstructorTable Constructors;
  SolverOptions Base = makeConfig(GraphForm::Inductive, CycleElim::Online);
  Oracle O = buildOracle(andersen::makeGenerator(Program->Unit), Constructors,
                         Base);
  std::printf("ground truth: %u variables in %u non-trivial SCCs "
              "(largest %u); a perfect eliminator removes %u\n\n",
              O.varsInNontrivialClasses(), O.numNontrivialClasses(),
              O.maxClassSize(), O.eliminableVars());

  TextTable Table({"Config", "Work", "Eliminated", "Detection", "Time(ms)"});
  for (GraphForm Form : {GraphForm::Standard, GraphForm::Inductive}) {
    for (CycleElim Elim : {CycleElim::None, CycleElim::Online}) {
      SolverOptions Options = makeConfig(Form, Elim);
      andersen::AnalysisResult Result =
          andersen::runAnalysis(Program->Unit, Constructors, Options, nullptr,
                                /*ExtractPointsTo=*/false);
      double Rate =
          O.eliminableVars()
              ? 100.0 * Result.Stats.VarsEliminated / O.eliminableVars()
              : 0.0;
      Table.addRow({Options.configName(), formatGrouped(Result.Stats.Work),
                    formatGrouped(Result.Stats.VarsEliminated),
                    formatDouble(Rate, 1) + "%",
                    formatDouble(Result.AnalysisSeconds * 1e3, 2)});
    }
  }
  Table.print();

  //===------------------------------------------------------------------===//
  // Part 2: before/after constraint graphs of a tiny cyclic program.
  //===------------------------------------------------------------------===//
  const char *Tiny = "int x;\n"
                     "int *a, *b, *c, *d;\n"
                     "int main(void) {\n"
                     "  a = &x;\n"
                     "  b = a; c = b; a = c;\n"
                     "  d = c;\n"
                     "  return 0;\n"
                     "}\n";
  minic::TranslationUnit Unit;
  if (!andersen::parseSource(Tiny, Unit))
    return 1;

  for (CycleElim Elim : {CycleElim::None, CycleElim::Online}) {
    SolverOptions Options = makeConfig(GraphForm::Inductive, Elim);
    TermTable Terms(Constructors);
    ConstraintSolver Solver(Terms, Options);
    andersen::ConstraintGenerator Generator(Solver);
    Generator.run(Unit);
    Solver.finalize();

    Digraph G = Solver.varVarDigraph();
    SCCResult SCCs = computeSCCs(G);
    const char *FileName = Elim == CycleElim::None ? "cycle_before.dot"
                                                   : "cycle_after.dot";
    DotOptions DotOpts;
    DotOpts.GraphName = FileName;
    DotOpts.ColorSCCs = true;
    DotOpts.Label = [&](uint32_t Var) {
      return Solver.isLive(Var) ? Solver.varName(Var) : std::string();
    };
    std::FILE *Out = std::fopen(FileName, "w");
    if (Out) {
      std::fputs(writeDot(G, DotOpts).c_str(), Out);
      std::fclose(Out);
    }
    std::printf("\n%s: %u live variables, largest variable SCC %u -> wrote "
                "%s\n",
                Options.configName().c_str(), Solver.numLiveVars(),
                SCCs.maxComponentSize(), FileName);
  }
  std::printf("\nrender with: dot -Tpng cycle_before.dot -o before.png\n");
  return 0;
}
