//===- tests/golden_counters_test.cpp - Seed counter goldens ---------------===//
//
// Part of the poce project.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Locks the paper-defined measurements (Work, Edges, VarsEliminated, and
/// supporting counters) to the values the seed implementation produced on
/// the examples/data corpus, for every configuration of Table 4 plus
/// Periodic. The element-wise path (SolverOptions::DiffProp = false) must
/// reproduce the seed bit for bit everywhere. The batched
/// difference-propagation path must match it on every configuration except
/// SF-Online on collapse-heavy inputs, where work accounting is
/// interleaving-sensitive (collapses re-add edges whose pairing order
/// differs between the schemes); the one corpus input in that regime
/// (events.c) is pinned to its own golden so drift is still caught.
/// Points-to results must agree between the two paths unconditionally.
///
//===----------------------------------------------------------------------===//

#include "andersen/Andersen.h"
#include "setcon/Oracle.h"

#include <gtest/gtest.h>

#include <fstream>
#include <sstream>

using namespace poce;
using namespace poce::andersen;

#ifndef POCE_SOURCE_DIR
#define POCE_SOURCE_DIR "."
#endif

namespace {

struct Golden {
  const char *Config;
  uint64_t Work, Edges, VarsElim, Redundant, Initial, Collapsed;
};

struct FileGoldens {
  const char *File;
  Golden Rows[8];
};

// Recorded from the seed implementation (commit with vector-backed sets)
// by running each corpus file under every configuration.
const FileGoldens SeedGoldens[] = {
    {"list.c",
     {{"SF-Plain", 270, 202, 0, 68, 48, 0},
      {"SF-Online", 270, 202, 0, 68, 48, 0},
      {"SF-Oracle", 144, 124, 0, 20, 42, 0},
      {"SF-Periodic", 270, 202, 0, 68, 48, 0},
      {"IF-Plain", 308, 214, 0, 94, 48, 0},
      {"IF-Online", 194, 128, 7, 28, 48, 6},
      {"IF-Oracle", 119, 101, 0, 18, 42, 0},
      {"IF-Periodic", 308, 214, 0, 94, 48, 0}}},
    {"events.c",
     {{"SF-Plain", 724, 293, 0, 431, 39, 0},
      {"SF-Online", 486, 164, 8, 238, 39, 8},
      {"SF-Oracle", 148, 129, 0, 19, 36, 0},
      {"SF-Periodic", 724, 293, 0, 431, 39, 0},
      {"IF-Plain", 1015, 310, 0, 705, 39, 0},
      {"IF-Online", 264, 92, 9, 87, 39, 9},
      {"IF-Oracle", 96, 73, 0, 23, 36, 0},
      {"IF-Periodic", 1015, 310, 0, 705, 39, 0}}},
    {"calc.c",
     {{"SF-Plain", 243, 215, 0, 28, 72, 0},
      {"SF-Online", 227, 198, 3, 20, 71, 2},
      {"SF-Oracle", 193, 179, 0, 14, 68, 0},
      {"SF-Periodic", 243, 215, 0, 28, 72, 0},
      {"IF-Plain", 481, 383, 0, 98, 72, 0},
      {"IF-Online", 382, 281, 6, 76, 71, 5},
      {"IF-Oracle", 340, 287, 0, 53, 68, 0},
      {"IF-Periodic", 481, 383, 0, 98, 72, 0}}},
    {"strings.c",
     {{"SF-Plain", 118, 100, 0, 18, 29, 0},
      {"SF-Online", 118, 100, 0, 18, 29, 0},
      {"SF-Oracle", 80, 73, 0, 7, 27, 0},
      {"SF-Periodic", 118, 100, 0, 18, 29, 0},
      {"IF-Plain", 78, 73, 0, 5, 29, 0},
      {"IF-Online", 77, 52, 6, 6, 28, 4},
      {"IF-Oracle", 58, 54, 0, 4, 27, 0},
      {"IF-Periodic", 78, 73, 0, 5, 29, 0}}},
};

// The one order-sensitive (file, config) pair: SF-Online with difference
// propagation detects one extra cycle on events.c and ends up slightly
// ahead of the seed interleaving.
const Golden EventsSFOnlineDiffProp = {"SF-Online", 478, 152, 9, 226, 39, 9};

bool parseCorpusFile(const char *File, minic::TranslationUnit &Unit) {
  std::string Path =
      std::string(POCE_SOURCE_DIR) + "/examples/data/" + File;
  std::ifstream In(Path);
  if (!In.good())
    return false;
  std::stringstream Buffer;
  Buffer << In.rdbuf();
  std::vector<std::string> Errors;
  return parseSource(Buffer.str(), Unit, &Errors, File);
}

SolverOptions configFor(const char *Name) {
  GraphForm Form = Name[0] == 'S' ? GraphForm::Standard
                                  : GraphForm::Inductive;
  std::string Elim = std::string(Name).substr(3);
  CycleElim E = Elim == "Plain"    ? CycleElim::None
                : Elim == "Online" ? CycleElim::Online
                : Elim == "Oracle" ? CycleElim::Oracle
                                   : CycleElim::Periodic;
  return makeConfig(Form, E);
}

void expectGolden(const Golden &G, const AnalysisResult &R,
                  const char *File, const char *Mode) {
  EXPECT_EQ(R.Stats.Work, G.Work) << File << " " << G.Config << " " << Mode;
  EXPECT_EQ(R.FinalEdges, G.Edges) << File << " " << G.Config << " " << Mode;
  EXPECT_EQ(R.Stats.VarsEliminated, G.VarsElim)
      << File << " " << G.Config << " " << Mode;
  EXPECT_EQ(R.Stats.RedundantAdds, G.Redundant)
      << File << " " << G.Config << " " << Mode;
  EXPECT_EQ(R.Stats.InitialEdges, G.Initial)
      << File << " " << G.Config << " " << Mode;
  EXPECT_EQ(R.Stats.CyclesCollapsed, G.Collapsed)
      << File << " " << G.Config << " " << Mode;
}

} // namespace

class GoldenCountersTest : public testing::TestWithParam<FileGoldens> {};

TEST_P(GoldenCountersTest, CountersMatchSeedAndPathsAgree) {
  const FileGoldens &Goldens = GetParam();
  minic::TranslationUnit Unit;
  ASSERT_TRUE(parseCorpusFile(Goldens.File, Unit));

  ConstructorTable Constructors;
  SolverOptions Base = makeConfig(GraphForm::Inductive, CycleElim::Online);
  Oracle O = buildOracle(makeGenerator(Unit), Constructors, Base);

  for (const Golden &G : Goldens.Rows) {
    SolverOptions Options = configFor(G.Config);
    const Oracle *WO = Options.Elim == CycleElim::Oracle ? &O : nullptr;

    Options.DiffProp = false;
    AnalysisResult Elementwise =
        runAnalysis(Unit, Constructors, Options, WO);
    expectGolden(G, Elementwise, Goldens.File, "elementwise");

    Options.DiffProp = true;
    AnalysisResult Batched = runAnalysis(Unit, Constructors, Options, WO);
    bool OrderSensitive =
        std::string(Goldens.File) == "events.c" &&
        std::string(G.Config) == "SF-Online";
    expectGolden(OrderSensitive ? EventsSFOnlineDiffProp : G, Batched,
                 Goldens.File, "batched");

    // Whatever the interleaving, the analysis result is identical.
    EXPECT_EQ(Batched.PointsTo, Elementwise.PointsTo)
        << Goldens.File << " " << G.Config;
  }
}

INSTANTIATE_TEST_SUITE_P(Corpus, GoldenCountersTest,
                         testing::ValuesIn(SeedGoldens),
                         [](const auto &Info) {
                           std::string Name = Info.param.File;
                           return Name.substr(0, Name.find('.'));
                         });
