file(REMOVE_RECURSE
  "libpoce_graph.a"
)
