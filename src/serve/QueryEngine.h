//===- serve/QueryEngine.h - Queries over a warm solver ---------*- C++ -*-===//
//
// Part of the poce project.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Query layer over a solved ConstraintSolver (typically loaded from a
/// GraphSnapshot): `ls(x)` renders the least solution, `pts(x)` projects
/// it to points-to location tags, `alias(x,y)` intersects solution
/// bitmaps, and `addConstraint(line)` feeds new text constraints through
/// the solver's fully online closure — cycle elimination keeps running on
/// the warm graph, exactly as it would have during the original solve.
///
/// Rendered views are kept in a bounded LRU cache keyed by (query kind,
/// representative). Invalidation piggybacks on monotonicity: constraint
/// addition only ever grows a least solution, so a cached view is valid
/// iff the live bitmap still has the cached population count — views
/// whose solutions were untouched by an addition keep serving from cache,
/// and stale ones are detected (and rebuilt) lazily on their next hit.
/// Collapses are handled by keying on the current representative: a
/// variable swallowed by a cycle simply resolves to its witness's view.
///
//===----------------------------------------------------------------------===//

#ifndef POCE_SERVE_QUERYENGINE_H
#define POCE_SERVE_QUERYENGINE_H

#include "setcon/ConstraintFile.h"
#include "setcon/ConstraintSolver.h"
#include "support/LruCache.h"

#include <cstdint>
#include <string>
#include <vector>

namespace poce {
namespace serve {

class QueryEngine {
public:
  /// Query-layer counters (the solver's own stats stay separate and are
  /// exposed through solver().stats()).
  struct Counters {
    uint64_t Queries = 0;       ///< ls/pts/alias calls answered.
    uint64_t CacheHits = 0;     ///< Served from a still-valid cached view.
    uint64_t CacheMisses = 0;   ///< View built fresh (first touch).
    uint64_t StaleRebuilds = 0; ///< Cached view outgrown by additions.
    uint64_t Additions = 0;     ///< addConstraint lines accepted.
  };

  /// Wraps \p Solver, adopting its declarations so textual queries and
  /// constraints can reference every existing variable and constructor.
  /// Check valid() (adoption fails on duplicate variable names).
  explicit QueryEngine(ConstraintSolver &Solver, size_t CacheCapacity = 256);

  bool valid() const { return Valid; }
  const std::string &initError() const { return InitError; }

  /// Resolves a variable name to its VarId, or NotFound.
  uint32_t varOf(const std::string &Name) const;
  static constexpr uint32_t NotFound = ~0U;

  /// The least solution of \p Var rendered as term strings (cached).
  const std::vector<std::string> &ls(VarId Var);

  /// The points-to projection of \p Var's least solution (cached): each
  /// term contributes its location tag — a nullary constructor's name, or
  /// the name of a nullary first argument (the ref(l, get, set) shape
  /// Andersen's analysis uses), or the full rendering otherwise.
  const std::vector<std::string> &pts(VarId Var);

  /// True if \p X and \p Y may alias: same representative after
  /// collapses, or intersecting least solutions.
  bool alias(VarId X, VarId Y);

  /// Feeds one line of the constraint-file format (declaration or
  /// constraint) through the online closure. Affected cached views are
  /// invalidated by the fingerprint check on their next access.
  bool addConstraint(const std::string &Line, std::string *ErrorOut);

  const Counters &counters() const { return Stats; }
  uint64_t cacheEvictions() const { return Cache.evictions(); }
  size_t cacheSize() const { return Cache.size(); }

  ConstraintSolver &solver() { return Solver; }
  const ConstraintSystemFile &system() const { return System; }

private:
  enum class ViewKind : uint8_t { Ls, Pts };

  struct View {
    size_t Fingerprint; ///< leastSolutionBits().count() at build time.
    std::vector<std::string> Items;
  };

  const std::vector<std::string> &view(ViewKind Kind, VarId Var);
  std::string locationTag(ExprId Term) const;

  ConstraintSolver &Solver;
  ConstraintSystemFile System;
  LruCache<uint64_t, View> Cache;
  Counters Stats;
  bool Valid = false;
  std::string InitError;
};

} // namespace serve
} // namespace poce

#endif // POCE_SERVE_QUERYENGINE_H
