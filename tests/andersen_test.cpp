//===- tests/andersen_test.cpp - Points-to analysis unit tests -------------===//
//
// Part of the poce project.
//
//===----------------------------------------------------------------------===//

#include "andersen/Andersen.h"

#include <gtest/gtest.h>

#include <set>

using namespace poce;
using namespace poce::andersen;

namespace {

/// Runs the analysis (IF-Online by default) and exposes points-to sets.
struct Analyzed {
  minic::TranslationUnit Unit;
  ConstructorTable Constructors;
  AnalysisResult Result;
  bool Ok = false;

  std::set<std::string> pts(const std::string &Name) const {
    auto Targets = Result.pointsTo(Name);
    return std::set<std::string>(Targets.begin(), Targets.end());
  }
  bool pointsToItselfOnly(const std::string &Name) const {
    return pts(Name) == std::set<std::string>{Name};
  }
};

std::unique_ptr<Analyzed>
analyze(const std::string &Source,
        SolverOptions Options = makeConfig(GraphForm::Inductive,
                                           CycleElim::Online)) {
  auto A = std::make_unique<Analyzed>();
  std::vector<std::string> Errors;
  A->Ok = parseSource(Source, A->Unit, &Errors);
  EXPECT_TRUE(A->Ok) << (Errors.empty() ? "?" : Errors[0]);
  if (A->Ok)
    A->Result = runAnalysis(A->Unit, A->Constructors, Options);
  return A;
}

using Set = std::set<std::string>;

} // namespace

//===----------------------------------------------------------------------===//
// Core assignment forms
//===----------------------------------------------------------------------===//

TEST(AndersenTest, AddressOfAndCopy) {
  auto A = analyze("int x, y;\n"
                   "int *p, *q;\n"
                   "int main(void) { p = &x; q = p; p = &y; return 0; }");
  EXPECT_EQ(A->pts("p"), (Set{"x", "y"}));
  // Flow-insensitive: q sees everything p ever holds.
  EXPECT_EQ(A->pts("q"), (Set{"x", "y"}));
  EXPECT_TRUE(A->pts("x").empty());
}

TEST(AndersenTest, StoreThroughPointer) {
  auto A = analyze("int x; int *p; int **pp;\n"
                   "int main(void) { pp = &p; *pp = &x; return 0; }");
  EXPECT_EQ(A->pts("pp"), (Set{"p"}));
  EXPECT_EQ(A->pts("p"), (Set{"x"}));
}

TEST(AndersenTest, LoadThroughPointer) {
  auto A = analyze("int x; int *p, *q; int **pp;\n"
                   "int main(void) { p = &x; pp = &p; q = *pp; return 0; }");
  EXPECT_EQ(A->pts("q"), (Set{"x"}));
}

TEST(AndersenTest, PaperFigure5Example) {
  // Figure 5 of the paper: a = &b; a = &c; b = &d; with b,c,d locations.
  auto A = analyze("int d; int *b, *c; int **a;\n"
                   "int main(void) { a = &b; a = &c; b = &d; return 0; }");
  EXPECT_EQ(A->pts("a"), (Set{"b", "c"}));
  EXPECT_EQ(A->pts("b"), (Set{"d"}));
  EXPECT_TRUE(A->pts("c").empty());
}

TEST(AndersenTest, DerefOnLeftAffectsAllTargets) {
  auto A = analyze("int x, y, z; int *p; int **pp;\n"
                   "int main(void) { pp = &p; p = &x; p = &y;\n"
                   "  *pp = &z; return 0; }");
  // *pp writes into p.
  EXPECT_EQ(A->pts("p"), (Set{"x", "y", "z"}));
}

TEST(AndersenTest, CompoundAndChainedAssignment) {
  auto A = analyze("int x; int *p, *q, *r;\n"
                   "int main(void) { p = &x; q = r = p; return 0; }");
  EXPECT_EQ(A->pts("q"), (Set{"x"}));
  EXPECT_EQ(A->pts("r"), (Set{"x"}));
}

TEST(AndersenTest, ConditionalExpressionMergesBothArms) {
  auto A = analyze("int x, y, c; int *p;\n"
                   "int main(void) { p = c ? &x : &y; return 0; }");
  EXPECT_EQ(A->pts("p"), (Set{"x", "y"}));
}

TEST(AndersenTest, CastsArePassThrough) {
  auto A = analyze("int x; char *p; int *q;\n"
                   "int main(void) { p = (char *)&x; q = (int *)p; "
                   "return 0; }");
  EXPECT_EQ(A->pts("q"), (Set{"x"}));
}

TEST(AndersenTest, PointerArithmeticPreservesTargets) {
  auto A = analyze("int a[10]; int *p, *q;\n"
                   "int main(void) { p = a; q = p + 3; return 0; }");
  EXPECT_EQ(A->pts("q"), (Set{"a"}));
}

//===----------------------------------------------------------------------===//
// Locals, scopes, parameters
//===----------------------------------------------------------------------===//

TEST(AndersenTest, LocalsAreQualifiedByFunction) {
  auto A = analyze("int *f(void) { int local; return &local; }\n"
                   "int *g(void) { int local; return &local; }\n"
                   "int *p, *q;\n"
                   "int main(void) { p = f(); q = g(); return 0; }");
  EXPECT_EQ(A->pts("p"), (Set{"f.local"}));
  EXPECT_EQ(A->pts("q"), (Set{"g.local"}));
}

TEST(AndersenTest, BlockScopeShadowing) {
  auto A = analyze("int x;\n"
                   "int *p, *q;\n"
                   "int main(void) {\n"
                   "  int y;\n"
                   "  p = &y;\n"
                   "  { int y; q = &y; }\n"
                   "  return 0;\n"
                   "}");
  Set P = A->pts("p"), Q = A->pts("q");
  ASSERT_EQ(P.size(), 1u);
  ASSERT_EQ(Q.size(), 1u);
  EXPECT_NE(*P.begin(), *Q.begin()); // Distinct shadowed locations.
}

TEST(AndersenTest, ParametersReceiveArguments) {
  auto A = analyze("int x, y;\n"
                   "void f(int *p) { }\n"
                   "int main(void) { f(&x); f(&y); return 0; }");
  EXPECT_EQ(A->pts("f.p"), (Set{"x", "y"}));
}

TEST(AndersenTest, ReturnValuesFlowToCallers) {
  auto A = analyze("int x;\n"
                   "int *id(int *p) { return p; }\n"
                   "int *q;\n"
                   "int main(void) { q = id(&x); return 0; }");
  EXPECT_EQ(A->pts("q"), (Set{"x"}));
}

TEST(AndersenTest, SwapThroughDoublePointers) {
  auto A = analyze(
      "int x, y; int *p, *q;\n"
      "void swap(int **a, int **b) { int *t = *a; *a = *b; *b = t; }\n"
      "int main(void) { p = &x; q = &y; swap(&p, &q); return 0; }");
  EXPECT_EQ(A->pts("p"), (Set{"x", "y"}));
  EXPECT_EQ(A->pts("q"), (Set{"x", "y"}));
}

TEST(AndersenTest, RecursionThroughParameters) {
  auto A = analyze("int x, y;\n"
                   "int *walk(int *p, int *d) {\n"
                   "  if (x) { return walk(d, p); }\n"
                   "  return p;\n"
                   "}\n"
                   "int *r;\n"
                   "int main(void) { r = walk(&x, &y); return 0; }");
  EXPECT_EQ(A->pts("r"), (Set{"x", "y"}));
}

//===----------------------------------------------------------------------===//
// Function pointers
//===----------------------------------------------------------------------===//

TEST(AndersenTest, FunctionPointerAssignmentAndCall) {
  auto A = analyze("int x;\n"
                   "int *f(int *p) { return p; }\n"
                   "int *(*fp)(int *);\n"
                   "int *r;\n"
                   "int main(void) { fp = f; r = fp(&x); return 0; }");
  EXPECT_EQ(A->pts("fp"), (Set{"f"}));
  EXPECT_EQ(A->pts("r"), (Set{"x"}));
  EXPECT_EQ(A->pts("f.p"), (Set{"x"}));
}

TEST(AndersenTest, CallThroughExplicitDeref) {
  auto A = analyze("int x;\n"
                   "int *f(int *p) { return p; }\n"
                   "int *(*fp)(int *);\n"
                   "int *r;\n"
                   "int main(void) { fp = &f; r = (*fp)(&x); return 0; }");
  EXPECT_EQ(A->pts("r"), (Set{"x"}));
}

TEST(AndersenTest, DispatchOverFunctionTable) {
  auto A = analyze("int x, y;\n"
                   "int *fa(int *p) { return p; }\n"
                   "int *fb(int *p) { return &y; }\n"
                   "int *(*table[2])(int *);\n"
                   "int *r;\n"
                   "int main(void) {\n"
                   "  table[0] = fa; table[1] = fb;\n"
                   "  r = table[x](&x);\n"
                   "  return 0;\n"
                   "}");
  EXPECT_EQ(A->pts("r"), (Set{"x", "y"}));
  EXPECT_EQ(A->pts("fa.p"), (Set{"x"}));
}

TEST(AndersenTest, ArityMismatchedCallIsIgnoredNotCrashing) {
  auto A = analyze("int x;\n"
                   "int *f(int *p) { return p; }\n"
                   "int *(*fp)(int *);\n"
                   "int *r;\n"
                   "int main(void) { fp = f; r = fp(&x, &x); return 0; }");
  // Wrong arity: the call binds nothing (ill-typed C); no crash, and the
  // mismatch is counted.
  EXPECT_TRUE(A->pts("r").empty());
  EXPECT_GT(A->Result.Stats.Mismatches, 0u);
}

TEST(AndersenTest, CallingExternalUnknownFunctionIsSafe) {
  auto A = analyze("int x; int *p;\n"
                   "int main(void) { unknownfn(&x); p = &x; return 0; }");
  EXPECT_EQ(A->pts("p"), (Set{"x"}));
}

//===----------------------------------------------------------------------===//
// Heap, arrays, strings, structs
//===----------------------------------------------------------------------===//

TEST(AndersenTest, MallocSitesAreDistinct) {
  auto A = analyze("extern void *malloc(unsigned long);\n"
                   "int *p, *q;\n"
                   "int main(void) {\n"
                   "  p = (int *)malloc(4);\n"
                   "  q = (int *)malloc(4);\n"
                   "  return 0;\n"
                   "}");
  ASSERT_EQ(A->pts("p").size(), 1u);
  ASSERT_EQ(A->pts("q").size(), 1u);
  EXPECT_NE(*A->pts("p").begin(), *A->pts("q").begin());
  EXPECT_EQ(A->pts("p").begin()->rfind("heap@", 0), 0u);
}

TEST(AndersenTest, ArrayDecayAndIndexing) {
  auto A = analyze("int a[8]; int *p; int x;\n"
                   "int main(void) { p = a; a[0] = x; p[1] = x; "
                   "return 0; }");
  Set P = A->pts("p");
  EXPECT_TRUE(P.count("a"));
}

TEST(AndersenTest, PointerStoredInArray) {
  auto A = analyze("int x; int *a[4]; int *q;\n"
                   "int main(void) { a[0] = &x; q = a[1]; return 0; }");
  // Field-insensitive array: any element read sees any element written.
  EXPECT_TRUE(A->pts("q").count("x"));
}

TEST(AndersenTest, StringLiteralsAreLocations) {
  auto A = analyze("char *s, *t;\n"
                   "int main(void) { s = \"hello\"; t = s; return 0; }");
  ASSERT_EQ(A->pts("s").size(), 1u);
  EXPECT_EQ(A->pts("s").begin()->rfind("str@", 0), 0u);
  EXPECT_EQ(A->pts("t"), A->pts("s"));
}

TEST(AndersenTest, StructFieldInsensitive) {
  auto A = analyze("struct pair { int *a; int *b; };\n"
                   "int x; struct pair g; int *q;\n"
                   "int main(void) { g.a = &x; q = g.b; return 0; }");
  // Field-insensitive: reading .b sees what was written to .a.
  EXPECT_EQ(A->pts("q"), (Set{"x"}));
}

TEST(AndersenTest, LinkedListThroughArrow) {
  auto A = analyze(
      "extern void *malloc(unsigned long);\n"
      "struct node { struct node *next; int *data; };\n"
      "int x;\n"
      "struct node *head;\n"
      "int *r;\n"
      "int main(void) {\n"
      "  struct node *n = (struct node *)malloc(16);\n"
      "  n->data = &x;\n"
      "  n->next = head;\n"
      "  head = n;\n"
      "  r = head->data;\n"
      "  return 0;\n"
      "}");
  EXPECT_TRUE(A->pts("r").count("x"));
  EXPECT_FALSE(A->pts("head").empty());
}

TEST(AndersenTest, GlobalInitializers) {
  auto A = analyze("int x, y;\n"
                   "int *p = &x;\n"
                   "int *arr[2] = {&x, &y};\n"
                   "int *q;\n"
                   "int main(void) { q = arr[0]; return 0; }");
  EXPECT_EQ(A->pts("p"), (Set{"x"}));
  // Field-insensitive arrays conflate the array's decay value with its
  // contents, so the (sound) result may include the array itself.
  EXPECT_TRUE(A->pts("q").count("x"));
  EXPECT_TRUE(A->pts("q").count("y"));
}

//===----------------------------------------------------------------------===//
// Statistics and modes
//===----------------------------------------------------------------------===//

TEST(AndersenTest, StatsArePopulated) {
  auto A = analyze("int x; int *p; int main(void) { p = &x; return 0; }");
  EXPECT_GT(A->Result.Stats.VarsCreated, 0u);
  EXPECT_GT(A->Result.Stats.Work, 0u);
  EXPECT_GT(A->Result.FinalEdges, 0u);
  EXPECT_GT(A->Result.NumLocations, 2u);
  EXPECT_GE(A->Result.AnalysisSeconds, 0.0);
}

TEST(AndersenTest, CyclicCopyChainCollapsesUnderIFOnline) {
  auto A = analyze("int x; int *a, *b, *c;\n"
                   "int main(void) { a = &x; b = a; c = b; a = c; "
                   "return 0; }");
  EXPECT_GE(A->Result.Stats.VarsEliminated, 1u);
  EXPECT_EQ(A->pts("a"), (Set{"x"}));
  EXPECT_EQ(A->pts("b"), (Set{"x"}));
  EXPECT_EQ(A->pts("c"), (Set{"x"}));
}

TEST(AndersenTest, SameResultsWithoutExtraction) {
  minic::TranslationUnit Unit;
  ASSERT_TRUE(parseSource("int x; int *p;\n"
                          "int main(void) { p = &x; return 0; }",
                          Unit));
  ConstructorTable Constructors;
  AnalysisResult R =
      runAnalysis(Unit, Constructors,
                  makeConfig(GraphForm::Inductive, CycleElim::Online),
                  nullptr, /*ExtractPointsTo=*/false);
  EXPECT_TRUE(R.PointsTo.empty());
  EXPECT_GT(R.Stats.Work, 0u);
}

//===----------------------------------------------------------------------===//
// Expression corner cases (exercising the copy short-circuits)
//===----------------------------------------------------------------------===//

TEST(AndersenTest, DoubleDereference) {
  auto A = analyze("int x; int *p; int **pp; int ***ppp; int *r;\n"
                   "int main(void) { p = &x; pp = &p; ppp = &pp;\n"
                   "  r = **ppp; return 0; }");
  EXPECT_EQ(A->pts("r"), (Set{"x"}));
}

TEST(AndersenTest, AddressOfArrayElement) {
  auto A = analyze("int a[4]; int *p;\n"
                   "int main(void) { p = &a[2]; return 0; }");
  EXPECT_TRUE(A->pts("p").count("a"));
}

TEST(AndersenTest, CompoundAssignmentKeepsPointees) {
  auto A = analyze("int a[8]; int *p;\n"
                   "int main(void) { p = a; p += 3; p -= 1; return 0; }");
  EXPECT_TRUE(A->pts("p").count("a"));
}

TEST(AndersenTest, CommaOperatorYieldsRightOperand) {
  auto A = analyze("int x, y; int *p;\n"
                   "int main(void) { p = (x, &y) ; return 0; }");
  EXPECT_EQ(A->pts("p"), (Set{"y"}));
}

TEST(AndersenTest, ConditionalOfCalls) {
  auto A = analyze("int x, y;\n"
                   "int *fx(void) { return &x; }\n"
                   "int *fy(void) { return &y; }\n"
                   "int *p;\n"
                   "int main(void) { p = x ? fx() : fy(); return 0; }");
  EXPECT_EQ(A->pts("p"), (Set{"x", "y"}));
}

TEST(AndersenTest, FunctionReturningFunctionPointer) {
  auto A = analyze("int x;\n"
                   "int *id(int *p) { return p; }\n"
                   "int *(*get(void))(int *) { return id; }\n"
                   "int *r;\n"
                   "int main(void) { r = (get())(&x); return 0; }");
  EXPECT_EQ(A->pts("r"), (Set{"x"}));
}

TEST(AndersenTest, CallbackStoredInStruct) {
  auto A = analyze(
      "extern void *malloc(unsigned long);\n"
      "typedef void (*cb_t)(int *);\n"
      "struct widget { cb_t on_event; int *state; };\n"
      "int hits;\n"
      "void bump(int *s) { *s = *s + 1; }\n"
      "int main(void) {\n"
      "  struct widget *w = (struct widget *)malloc(16);\n"
      "  w->on_event = bump;\n"
      "  w->state = &hits;\n"
      "  w->on_event(w->state);\n"
      "  return 0;\n"
      "}");
  // The field-insensitive struct still routes the callback: bump's
  // parameter sees &hits.
  EXPECT_TRUE(A->pts("bump.s").count("hits"));
}

TEST(AndersenTest, ForScopeIsSeparate) {
  auto A = analyze("int *p, *q;\n"
                   "int main(void) {\n"
                   "  for (int i = 0; i < 1; i++) { p = (int *)&i; }\n"
                   "  for (int i = 0; i < 1; i++) { q = (int *)&i; }\n"
                   "  return 0;\n"
                   "}");
  Set P = A->pts("p"), Q = A->pts("q");
  ASSERT_EQ(P.size(), 1u);
  ASSERT_EQ(Q.size(), 1u);
  EXPECT_NE(*P.begin(), *Q.begin()); // Distinct loop-scoped locations.
}

TEST(AndersenTest, NestedBraceInitializers) {
  auto A = analyze("int x, y;\n"
                   "struct pair { int *a; int *b; };\n"
                   "struct pair g[2] = {{&x, 0}, {0, &y}};\n"
                   "int *r;\n"
                   "int main(void) { r = g[0].a; return 0; }");
  EXPECT_TRUE(A->pts("r").count("x"));
  EXPECT_TRUE(A->pts("r").count("y")); // Field- and index-insensitive.
}

TEST(AndersenTest, ImplicitIntFunction) {
  auto A = analyze("int x; int *p;\n"
                   "static setp(int *v) { p = v; }\n"
                   "int main(void) { setp(&x); return 0; }");
  EXPECT_EQ(A->pts("p"), (Set{"x"}));
}

TEST(AndersenTest, AssignmentResultIsAssignable) {
  // x = (p = &a) reads the assignment's value (the L-value set of p).
  auto A = analyze("int a; int *p, *q;\n"
                   "int main(void) { q = (p = &a); return 0; }");
  EXPECT_EQ(A->pts("p"), (Set{"a"}));
  EXPECT_EQ(A->pts("q"), (Set{"a"}));
}

TEST(AndersenTest, StringLiteralArgument) {
  auto A = analyze("char *keep(char *s) { return s; }\n"
                   "char *r;\n"
                   "int main(void) { r = keep(\"lit\"); return 0; }");
  ASSERT_EQ(A->pts("r").size(), 1u);
  EXPECT_EQ(A->pts("r").begin()->rfind("str@", 0), 0u);
}

TEST(AndersenTest, SelfAssignmentIsHarmless) {
  auto A = analyze("int x; int *p;\n"
                   "int main(void) { p = &x; p = p; return 0; }");
  EXPECT_EQ(A->pts("p"), (Set{"x"}));
}

TEST(AndersenTest, TakingAddressOfFunctionParameter) {
  auto A = analyze("int **out;\n"
                   "void capture(int *p) { out = &p; }\n"
                   "int x;\n"
                   "int main(void) { capture(&x); return 0; }");
  EXPECT_EQ(A->pts("out"), (Set{"capture.p"}));
  EXPECT_EQ(A->pts("capture.p"), (Set{"x"}));
}
