//===- net/Server.h - epoll front end for the serve protocol ----*- C++ -*-===//
//
// Part of the poce project.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The multi-client network front end: an edge-triggered epoll event
/// loop accepting TCP and/or Unix-domain connections that speak the same
/// newline verb protocol as scserved's stdin mode, with reads and writes
/// split across threads so queries never block on adds:
///
///   - The *event-loop thread* owns every socket: accept, non-blocking
///     framed reads (net/Framing.h), reply flushing with EPOLLOUT
///     re-arm backpressure, idle timeouts, and graceful drain.
///   - *Read lanes* (a support/ThreadPool wave per loop iteration)
///     execute ls/pts/alias batches against the immutable published
///     ReadView epoch (net/ReadView.h), recording latencies into
///     cache-line-padded per-lane accumulators (net/LaneStats.h) that
///     the loop thread merges after the wave barrier.
///   - A single *writer thread* owns the ServerCore — WAL append + apply,
///     save/checkpoint, stats/counters/metrics — and republishes a fresh
///     ReadView after every batch that mutated the graph, *before*
///     acknowledging it (ack-after-publish), so a client that saw
///     `ok added` observes its constraint in every subsequent query:
///     read-your-writes without ever taking a lock on the read path.
///
/// Ordering: per-connection FIFO (a connection's requests are answered
/// in the order sent — a read behind a pending write waits for it via
/// head-of-line blocking on that connection only); cross-connection
/// reads never wait on writes.
///
//===----------------------------------------------------------------------===//

#ifndef POCE_NET_SERVER_H
#define POCE_NET_SERVER_H

#include "net/Framing.h"
#include "net/LaneStats.h"
#include "net/ReadView.h"
#include "serve/ServerCore.h"
#include "support/Status.h"
#include "support/ThreadPool.h"

#include <atomic>
#include <condition_variable>
#include <cstdint>
#include <deque>
#include <functional>
#include <map>
#include <memory>
#include <mutex>
#include <string>
#include <thread>
#include <utility>
#include <vector>

namespace poce {
namespace net {

struct NetServerOptions {
  std::string TcpSpec;  ///< "host:port" listener ("" = no TCP).
  std::string UnixPath; ///< Unix-socket listener path ("" = none).
  unsigned Lanes = 1;   ///< Read lanes (0 = one per hardware thread).
  size_t MaxRequest = 64 * 1024; ///< Longest accepted request line.
  uint64_t IdleTimeoutMs = 0;    ///< Close idle connections (0 = never).
  std::string MetricsOut;        ///< JSON registry dump path ("" = off).
  uint64_t MetricsEvery = 64;    ///< Writer ops between dumps.
  /// Start as a read-only follower: add/save/checkpoint answer
  /// `err read_only` until a `promote` verb flips the server writable.
  bool ReadOnly = false;
  /// Cadence of `hb <seq>` heartbeats to registered replica
  /// connections (0 = no heartbeats).
  uint64_t HeartbeatMs = 500;
  /// Invoked (on the writer thread) when a `promote` verb succeeds, so
  /// the driver can stop its replication client.
  std::function<void()> OnPromote;
};

/// One serving process front end. Lifecycle: construct, init() (binds
/// listeners, publishes the startup view, starts the writer thread),
/// run() (blocks until `shutdown` or requestStop()), destruct.
///
/// Replication rides the same machinery. On a primary, a `replicate
/// <base> <seq>` handshake (writer lane) answers with a snapshot or a
/// record tail and flags the connection as a long-lived replica; the
/// core's ReplicationSink then turns every subsequent WAL append into an
/// `r <seq> <line>` event and every base re-stamp into a `rebase <base>`
/// event, staged in the same writer-ordered completion queue so a
/// replica never misses or double-sees a record, with `hb <seq>`
/// heartbeats from the loop thread in between. On a follower (ReadOnly),
/// the driver's ReplicationClient feeds the shipped stream back in
/// through applyReplicatedRecords/applyReplicaRebase/
/// applyReplicaBootstrap — internal writer jobs, so the single-writer
/// discipline and ack-after-publish hold for replicated applies too.
class NetServer {
public:
  NetServer(serve::ServerCore &Core, NetServerOptions Opts);
  ~NetServer();
  NetServer(const NetServer &) = delete;
  NetServer &operator=(const NetServer &) = delete;

  /// Binds listeners, creates the epoll/eventfd plumbing, builds and
  /// publishes the startup ReadView, and starts the writer thread.
  Status init();

  /// The TCP port actually bound (resolves an ephemeral ":0" request);
  /// 0 when no TCP listener was configured.
  uint16_t tcpPort() const { return TcpPort; }

  /// Event loop; returns the process exit code (0 on graceful drain).
  int run();

  /// Async-signal-safe drain request (the SIGTERM handler calls this):
  /// the loop stops accepting, finishes in-flight requests, flushes
  /// replies, closes the WAL, and run() returns 0.
  static void requestStop();

  /// \name Follower-side entry points (ReplicationClient thread)
  /// Synchronous: each enqueues an internal writer job and blocks until
  /// the writer lane has processed it (and republished the read view, so
  /// an acked apply is visible to every subsequent query). Refused once
  /// the server is promoted or stopping.
  /// @{
  Status applyReplicatedRecords(
      std::vector<std::pair<uint64_t, std::string>> Records);
  Status applyReplicaRebase(uint64_t NewBase);
  Status applyReplicaBootstrap(std::vector<uint8_t> Bytes, uint64_t Base);
  /// @}

  /// True until a `promote` verb flips a ReadOnly server writable
  /// (always false for primaries).
  bool readOnly() const { return ReadOnlyNow.load(std::memory_order_acquire); }

private:
  struct Conn {
    int Fd = -1;
    uint64_t Gen = 0; ///< Guards completions against fd reuse.
    LineBuffer In;
    /// Parsed requests not yet dispatched: (oversized, text).
    std::deque<std::pair<bool, std::string>> Lines;
    std::string Out;          ///< Reply bytes not yet written.
    bool AwaitingWriter = false; ///< Head-of-line: a writer op is out.
    bool WantWrite = false;      ///< EPOLLOUT is armed.
    bool PeerClosed = false;     ///< Read side saw EOF.
    bool CloseAfterFlush = false;
    /// Exempt from the idle sweep: a quiet tailing follower is healthy,
    /// not abandoned.
    bool LongLived = false;
    bool IsReplica = false; ///< Receives r/rebase/hb stream events.
    uint64_t NextSeq = 0;   ///< Next record index this replica expects.
    uint64_t LastHbMs = 0;  ///< Last heartbeat (or registration) time.
    uint64_t LastActiveMs = 0;

    explicit Conn(size_t MaxLine) : In(MaxLine) {}
  };

  /// One entry of a read wave: either a query to execute against the
  /// published view, or a reply precomputed by the loop thread (help,
  /// quit, errors) riding in the batch to keep per-connection order.
  struct ReadTask {
    int Fd = 0;
    uint64_t Gen = 0;
    bool IsQuery = false;
    bool CloseConn = false;
    std::string Line;  ///< Request text (queries).
    std::string Reply; ///< Filled by the wave (or precomputed).
    bool Errored = false;
  };

  /// Completion latch for the synchronous follower-side entry points.
  struct InternalWait {
    std::mutex M;
    std::condition_variable Cv;
    bool Done = false;
    Status Result;
  };

  struct WriterJob {
    enum class Kind : uint8_t {
      Client,        ///< A verb line from a connection.
      ReplApply,     ///< Records: apply shipped (seq, line) records.
      ReplRebase,    ///< Base: mirror a primary checkpoint.
      ReplBootstrap, ///< Bytes+Base: replace state with a snapshot.
    };
    Kind Kind = Kind::Client;
    int Fd = 0;
    uint64_t Gen = 0;
    std::string Line;
    std::vector<std::pair<uint64_t, std::string>> Records;
    std::vector<uint8_t> Bytes;
    uint64_t Base = 0;
    std::shared_ptr<InternalWait> Wait; ///< Set for non-Client kinds.
  };

  struct Completion {
    enum class Kind : uint8_t {
      Reply,      ///< A verb reply for one connection.
      ReplRecord, ///< Broadcast `r <Seq> <Line>` to replicas.
      ReplRebase, ///< Broadcast `rebase <Base>` to replicas.
    };
    Kind Kind = Kind::Reply;
    int Fd = 0;
    uint64_t Gen = 0;
    std::string Reply;
    bool Shutdown = false; ///< The job was a handled `shutdown` verb.
    /// Reply to a successful `replicate` handshake: flag the connection
    /// as a long-lived replica expecting record ReplicaNextSeq next.
    bool MakeReplica = false;
    uint64_t ReplicaNextSeq = 0;
    uint64_t Seq = 0;  ///< ReplRecord: record index.
    uint64_t Base = 0; ///< ReplRebase: the re-stamped base id.
    std::string Line;  ///< ReplRecord: the record payload.
  };

  // Event-loop internals (loop thread only).
  Status addListener(int Fd);
  void acceptAll(int ListenFd);
  void readConn(Conn &C);
  void flushConn(Conn &C);
  void closeConn(int Fd);
  void dispatch();
  void runReadWave(std::vector<ReadTask> &Batch);
  void mergeLaneStats();
  void applyCompletions();
  void sweepIdle();
  void heartbeatReplicas();
  bool quiescent() const;
  void beginDrain();
  uint64_t nowMs() const;

  // Writer thread.
  void writerLoop();
  void republish();
  void handleClientJob(WriterJob &Job, Completion &Comp, bool &Mutated);
  Status runInternalJob(WriterJob &Job, bool &Mutated);
  Status submitInternal(WriterJob Job);

  serve::ServerCore &Core;
  NetServerOptions Opts;

  int EpollFd = -1;
  int WakeFd = -1; ///< eventfd: writer completions + stop requests.
  std::vector<int> ListenFds;
  uint16_t TcpPort = 0;
  std::map<int, Conn> Conns;
  uint64_t NextGen = 1;
  bool Draining = false;
  size_t ReplicaCount = 0;   ///< Registered replica connections.
  uint64_t ReplKnownSeq = 0; ///< Live record count advertised in `hb`.
  std::atomic<bool> ReadOnlyNow{false};

  ViewPublisher Publisher;
  ThreadPool Pool;
  LaneAccumSlots LaneSlots;

  // Writer queue (mutex-guarded handoff; WakeFd signals completions
  // back). Mutable so quiescent() can stay const.
  mutable std::mutex WriterMutex;
  std::condition_variable WriterCv;
  std::deque<WriterJob> Jobs;
  std::deque<Completion> Done;
  bool WriterStop = false;
  bool WriterBusy = false; ///< A writer batch is being processed.
  std::thread Writer;
  uint64_t WriterOps = 0;   ///< Writer-thread-local dump cadence count.
  uint64_t ViewEpoch = 0;   ///< Writer-thread-local epoch counter.
  /// Writer-thread-local staging for the in-flight batch: verb replies
  /// and the replication events the core's sink emits between them, in
  /// one generation-ordered sequence (a replica registered mid-batch
  /// sees exactly the events after its handshake).
  std::vector<Completion> WriterOut;

  // Metrics (registered in init; references are process-stable).
  Histogram *LatencyHist = nullptr;
  Histogram *PublishHist = nullptr;
  Counter *QueriesTotal = nullptr;
  Counter *ErrorsTotal = nullptr;
  Counter *ConnsTotal = nullptr;
  Counter *OversizedTotal = nullptr;
  Counter *IdleClosedTotal = nullptr;
  Counter *ReadsDuringWrite = nullptr;
  Counter *PublishesTotal = nullptr;
  Gauge *ConnsOpen = nullptr;
  Gauge *P50 = nullptr;
  Gauge *P99 = nullptr;
  Gauge *P999 = nullptr;
  Gauge *EpochGauge = nullptr;
  Gauge *FollowersGauge = nullptr;
  Counter *RecordsShipped = nullptr;
  Counter *SnapshotsShipped = nullptr;
  std::vector<Counter *> LaneQueryCounters;
};

} // namespace net
} // namespace poce

#endif // POCE_NET_SERVER_H
