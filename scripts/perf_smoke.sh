#!/usr/bin/env bash
# Wave-closure perf smoke test: generate the cascade shape (a long
# variable chain laid down before any source arrives — the worst case for
# eager singleton-delta propagation), solve it under both closure
# schedules, and assert
#   (1) the printed least solutions are byte-identical, and
#   (2) the wave schedule performs no more delta propagations than the
#       worklist schedule (on this shape it should do far fewer: one
#       level-ordered sweep instead of one chain walk per source).
#
# Usage: scripts/perf_smoke.sh [build-dir]   (default: build)
set -euo pipefail
cd "$(dirname "$0")/.."

BUILD_DIR=${1:-build}
SCSOLVE="$BUILD_DIR/src/driver/scsolve"
if [ ! -x "$SCSOLVE" ]; then
  cmake -B "$BUILD_DIR" -S .
  cmake --build "$BUILD_DIR" -j --target scsolve
fi

WORK=$(mktemp -d)
trap 'rm -rf "$WORK"' EXIT
SCS="$WORK/cascade.scs"

# C0 <= C1 <= ... <= C199 first, then 40 sources into C0: every source
# must traverse the finished chain.
CHAIN=200
SOURCES=40
awk -v chain="$CHAIN" -v sources="$SOURCES" 'BEGIN {
  for (i = 0; i < sources; ++i) printf "cons s%d\n", i;
  printf "var";
  for (i = 0; i < chain; ++i) printf " C%d", i;
  printf "\n";
  for (i = 0; i + 1 < chain; ++i) printf "C%d <= C%d\n", i, i + 1;
  for (i = 0; i < sources; ++i) printf "s%d() <= C0\n", i;
}' > "$SCS"

run() { # run <closure> <solutions-out> <stats-out>
  "$SCSOLVE" --config=sf-plain --closure="$1" "$SCS" > "$2"
  "$SCSOLVE" --config=sf-plain --closure="$1" --stats "$SCS" > "$3"
}

run worklist "$WORK/worklist.out" "$WORK/worklist.stats"
run wave "$WORK/wave.out" "$WORK/wave.stats"

if ! cmp -s "$WORK/worklist.out" "$WORK/wave.out"; then
  echo "FAIL: wave least solutions differ from worklist solutions" >&2
  diff "$WORK/worklist.out" "$WORK/wave.out" >&2 | head -20
  exit 1
fi

props() { # props <stats-file>
  grep '^delta props:' "$1" | tr -d ' ,' | cut -d: -f2
}
WL_PROPS=$(props "$WORK/worklist.stats")
WAVE_PROPS=$(props "$WORK/wave.stats")
WAVE_PASSES=$(grep '^wave passes:' "$WORK/wave.stats" | tr -d ' ,' \
  | cut -d: -f2)

if [ -z "$WL_PROPS" ] || [ -z "$WAVE_PROPS" ]; then
  echo "FAIL: could not read delta-propagation counts from --stats" >&2
  exit 1
fi
if [ "$WAVE_PASSES" -lt 1 ]; then
  echo "FAIL: wave run reports no wave passes (closure flag not wired?)" >&2
  exit 1
fi
if [ "$WAVE_PROPS" -gt "$WL_PROPS" ]; then
  echo "FAIL: wave closure propagated more deltas than the worklist" \
       "($WAVE_PROPS > $WL_PROPS) on the cascade shape" >&2
  exit 1
fi

echo "perf smoke OK: solutions identical;" \
     "delta props worklist=$WL_PROPS wave=$WAVE_PROPS" \
     "(passes=$WAVE_PASSES)"
