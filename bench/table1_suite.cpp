//===- bench/table1_suite.cpp - Reproduction of Table 1 --------------------===//
//
// Part of the poce project.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Regenerates the paper's Table 1: per-benchmark data common to all
/// experiments — AST nodes, preprocessed lines, set variables, total graph
/// nodes, initial edges, and the variables/max-size of strongly connected
/// components in the initial and final constraint graphs.
///
/// Initial SCCs are computed over the variable-variable constraints of the
/// unprocessed input; final SCCs are the oracle's ground-truth equality
/// classes of the closed system. The paper's observation that "less than
/// 20% of the variables in SCCs in the final graph also appear in SCCs in
/// the initial graph" can be read directly off the two column groups.
///
//===----------------------------------------------------------------------===//

#include "BenchCommon.h"

#include "graph/TarjanSCC.h"

using namespace poce;
using namespace poce::bench;

int main() {
  BenchEnv Env = BenchEnv::fromEnv();
  std::printf("=== Table 1: benchmark data common to all experiments ===\n");
  Env.print();

  TextTable Table({"Benchmark", "AST", "Lines", "Vars", "Nodes", "InitEdges",
                   "iSCCvars", "iMax", "fSCCvars", "fMax"});

  for (auto &Entry : prepareSuite(Env)) {
    // A recording IF-Online run provides variable counts, node counts,
    // initial edges, and the initial variable-variable relation.
    SolverOptions Options = makeConfig(GraphForm::Inductive,
                                       CycleElim::Online);
    Options.RecordVarVar = true;
    TermTable Terms(Entry->Constructors);
    ConstraintSolver Solver(Terms, Options);
    andersen::ConstraintGenerator Generator(Solver);
    Generator.run(Entry->Program->Unit);
    Solver.finalize();
    const SolverStats &Stats = Solver.stats();

    Digraph Initial(Solver.numCreations());
    for (auto [From, To] : Solver.recordedInitialVarVar())
      Initial.addEdge(From, To);
    SCCResult InitialSCCs = computeSCCs(Initial);

    const Oracle &O = Entry->oracle();

    uint64_t TotalNodes =
        Stats.VarsCreated + Stats.DistinctSources + Stats.DistinctSinks;
    Table.addRow({Entry->Program->Spec.Name,
                  formatGrouped(Entry->Program->AstNodes),
                  formatGrouped(Entry->Program->Lines),
                  formatGrouped(Stats.VarsCreated),
                  formatGrouped(TotalNodes),
                  formatGrouped(Stats.InitialEdges),
                  formatGrouped(InitialSCCs.numNodesInNontrivialSCCs()),
                  formatGrouped(InitialSCCs.maxComponentSize() > 1
                                    ? InitialSCCs.maxComponentSize()
                                    : 0),
                  formatGrouped(O.varsInNontrivialClasses()),
                  formatGrouped(O.maxClassSize())});
  }
  Table.print();
  std::printf("\niSCC*/fSCC*: variables inside non-trivial SCCs and the "
              "largest SCC, in the initial/final graph.\n");
  return 0;
}
