//===- examples/closure_analysis.cpp - 0CFA on a functional program --------===//
//
// Part of the poce project.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The paper's future-work direction, working: monovariant closure
/// analysis (0CFA) for a small functional language, built on the same
/// inclusion constraint solver. Parses a higher-order program with
/// recursion, reports which lambdas reach each application site, and shows
/// that recursive bindings create constraint cycles that online
/// elimination collapses here just as in the points-to case study.
///
/// Build & run:  ./build/examples/closure_analysis
///
//===----------------------------------------------------------------------===//

#include "cfa/ClosureAnalysis.h"
#include "support/Format.h"

#include <cstdio>

using namespace poce;
using namespace poce::cfa;

static const char *const SampleProgram = R"(
-- A higher-order program with self-application and recursion.
let id = \x. x in
let compose = \f. \g. \x. f (g x) in
let twice = \f. \x. f (f x) in
let rec iterate = \f. if0 f 0 then f else iterate (compose f id) in
(twice (iterate id)) 42
)";

int main() {
  std::printf("program:\n%s\n", SampleProgram);

  LambdaProgram Program;
  std::string Error;
  if (!Program.parse(SampleProgram, &Error)) {
    std::fprintf(stderr, "parse error: %s\n", Error.c_str());
    return 1;
  }
  std::printf("%u terms, %u lambdas (L0..L%u), %u application sites\n\n",
              Program.numTerms(), Program.numLambdas(),
              Program.numLambdas() - 1, Program.numAppSites());

  ConstructorTable Constructors;
  CFAResult Result = runClosureAnalysis(
      Program, Constructors,
      makeConfig(GraphForm::Inductive, CycleElim::Online));

  std::printf("call targets (application site -> lambda labels):\n");
  for (const auto &[Site, Targets] : Result.CallTargets) {
    std::printf("  site %-2u -> {", Site);
    for (size_t I = 0; I != Targets.size(); ++I)
      std::printf("%s L%u", I ? "," : "", Targets[I]);
    std::printf(" }\n");
  }

  std::printf("\ncycle statistics on a larger synthetic workload "
              "(recursive combinator chains):\n");
  std::string Big = generateLambdaProgram(/*NumGroups=*/120, /*Seed=*/3);
  LambdaProgram BigProgram;
  if (!BigProgram.parse(Big, &Error)) {
    std::fprintf(stderr, "internal error: %s\n", Error.c_str());
    return 1;
  }
  TextTable Table({"Config", "Work", "Eliminated", "Time(ms)"});
  for (CycleElim Elim : {CycleElim::None, CycleElim::Online}) {
    for (GraphForm Form : {GraphForm::Standard, GraphForm::Inductive}) {
      CFAResult R = runClosureAnalysis(BigProgram, Constructors,
                                       makeConfig(Form, Elim));
      Table.addRow({makeConfig(Form, Elim).configName(),
                    formatGrouped(R.Stats.Work),
                    formatGrouped(R.Stats.VarsEliminated),
                    formatDouble(R.AnalysisSeconds * 1e3, 2)});
    }
  }
  Table.print();
  std::printf("\nRecursion makes cyclic constraints; online elimination "
              "pays off for closure analysis too.\n");
  return 0;
}
