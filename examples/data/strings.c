/* String buffer manipulation: arrays, pointer arithmetic, string
   literals, and handwritten copy loops. */

extern void *malloc(unsigned long n);

char scratch[64];
char *cursor;

char *sb_copy(char *dst, char *src) {
  char *out = dst;
  while (*src) {
    *dst = *src;
    dst++;
    src++;
  }
  *dst = 0;
  return out;
}

char *sb_dup(char *src) {
  char *buf = (char *)malloc(64);
  return sb_copy(buf, src);
}

char *sb_skip_spaces(char *p) {
  while (*p == ' ')
    p = p + 1;
  return p;
}

int main(void) {
  cursor = sb_copy(scratch, "  hello world");
  cursor = sb_skip_spaces(cursor);
  char *owned = sb_dup(cursor);
  cursor = owned;
  return cursor[0];
}
