//===- serve/Wal.cpp - Write-ahead log of accepted constraints ------------===//
//
// Part of the poce project.
//
//===----------------------------------------------------------------------===//

#include "serve/Wal.h"

#include "support/ByteStream.h"
#include "support/FailPoint.h"
#include "support/Metrics.h"
#include "support/Trace.h"

#include <cerrno>
#include <cstring>

#include <fcntl.h>
#include <sys/stat.h>
#include <unistd.h>

namespace poce {
namespace serve {

constexpr char WriteAheadLog::Magic[8];

namespace {

Status posixError(const std::string &What) {
  return Status::error(ErrorCode::IoError,
                       What + ": " + std::strerror(errno));
}

Status writeAll(int Fd, const uint8_t *Data, size_t Size,
                const std::string &Path) {
  size_t Done = 0;
  while (Done < Size) {
    ssize_t N = ::write(Fd, Data + Done, Size - Done);
    if (N < 0) {
      if (errno == EINTR)
        continue;
      return posixError("write to WAL '" + Path + "' failed");
    }
    Done += static_cast<size_t>(N);
  }
  return Status();
}

Status fsyncParentDir(const std::string &Path) {
  size_t Slash = Path.find_last_of('/');
  std::string Dir = Slash == std::string::npos ? "." : Path.substr(0, Slash);
  if (Dir.empty())
    Dir = "/";
  int DirFd = ::open(Dir.c_str(), O_RDONLY | O_DIRECTORY);
  if (DirFd < 0)
    return posixError("cannot open directory '" + Dir + "' for fsync");
  Status St;
  if (::fsync(DirFd) != 0)
    St = posixError("fsync directory '" + Dir + "'");
  ::close(DirFd);
  return St;
}

uint32_t decodeU32(const uint8_t *Data) {
  uint32_t Value = 0;
  for (int Shift = 0; Shift != 32; Shift += 8)
    Value |= static_cast<uint32_t>(*Data++) << Shift;
  return Value;
}

uint64_t decodeU64(const uint8_t *Data) {
  uint64_t Value = 0;
  for (int Shift = 0; Shift != 64; Shift += 8)
    Value |= static_cast<uint64_t>(*Data++) << Shift;
  return Value;
}

/// One record's on-disk bytes: u32 length | u64 checksum | payload.
std::vector<uint8_t> encodeRecord(const std::string &Line) {
  ByteWriter Writer;
  Writer.u32(static_cast<uint32_t>(Line.size()));
  Writer.u64(fnv1a64(reinterpret_cast<const uint8_t *>(Line.data()),
                     Line.size()));
  Writer.bytes(Line.data(), Line.size());
  return Writer.take();
}

std::vector<uint8_t> encodeHeader(uint64_t BaseId) {
  ByteWriter Writer;
  Writer.bytes(WriteAheadLog::Magic, sizeof(WriteAheadLog::Magic));
  Writer.u32(WriteAheadLog::Version);
  Writer.u64(BaseId);
  return Writer.take();
}

constexpr size_t RecordPrefixSize = 4 + 8; // length + checksum
constexpr size_t VersionOffset = sizeof(WriteAheadLog::Magic);
constexpr size_t BaseIdOffset = sizeof(WriteAheadLog::Magic) + 4;

/// Appends are fsync-bound (~ms), so the histogram record is free by
/// comparison and is taken unconditionally — no timing gate here.
Histogram &appendHistogram() {
  static Histogram &H = MetricsRegistry::global().histogram(
      "poce_wal_append_us",
      "Microseconds per acknowledged WAL append (write + fsync)");
  return H;
}

Histogram &replayHistogram() {
  static Histogram &H = MetricsRegistry::global().histogram(
      "poce_wal_replay_us", "Microseconds per WAL replay scan");
  return H;
}

Counter &replayedLinesCounter() {
  static Counter &C = MetricsRegistry::global().counter(
      "poce_wal_replayed_lines_total",
      "Intact records recovered across WAL replays");
  return C;
}

} // namespace

Expected<WalContents> WriteAheadLog::replay(const std::string &Path) {
  const uint64_t StartUs = trace::nowMicros();
  WalContents Contents;
  if (FailPoint::hit("wal.replay") == FailPoint::Mode::Error)
    return FailPoint::injectedError("wal.replay");
  {
    struct stat StatBuf;
    if (::stat(Path.c_str(), &StatBuf) != 0 && errno == ENOENT)
      return Contents; // No WAL yet: nothing to replay.
  }
  std::vector<uint8_t> Bytes;
  std::string Error;
  if (!readFileBytes(Path, Bytes, &Error))
    return Status::error(ErrorCode::IoError, Error);

  // Shorter than the header means a crash during creation: the header is
  // written and fsynced before appends are possible, so no record can
  // have been acknowledged. Empty-with-torn-header, not corruption.
  if (Bytes.size() < HeaderSize) {
    Contents.HeaderIntact = false;
    Contents.TornBytes = Bytes.size();
    return Contents;
  }
  if (std::memcmp(Bytes.data(), Magic, sizeof(Magic)) != 0)
    return Status::error(ErrorCode::Corruption,
                         "WAL '" + Path + "' has a bad magic");
  uint32_t FileVersion = decodeU32(Bytes.data() + sizeof(Magic));
  if (FileVersion != 2 && FileVersion != Version)
    return Status::error(ErrorCode::WalVersion,
                         "WAL '" + Path + "' has unsupported version " +
                             std::to_string(FileVersion) +
                             " (this binary understands versions 2-" +
                             std::to_string(Version) + ")");
  Contents.FileVersion = FileVersion;
  Contents.BaseId = decodeU64(Bytes.data() + BaseIdOffset);

  // A record that does not fit in the remaining bytes, or whose payload
  // fails its checksum, is a torn tail — a crash mid-append. Everything
  // before it is intact by construction (appends are sequential and
  // fsynced in order).
  size_t Pos = HeaderSize;
  while (Pos < Bytes.size()) {
    if (Bytes.size() - Pos < RecordPrefixSize)
      break;
    uint32_t Length = decodeU32(Bytes.data() + Pos);
    uint64_t Sum = decodeU64(Bytes.data() + Pos + 4);
    if (Bytes.size() - Pos - RecordPrefixSize < Length)
      break;
    const uint8_t *Payload = Bytes.data() + Pos + RecordPrefixSize;
    if (fnv1a64(Payload, Length) != Sum)
      break;
    Contents.Lines.emplace_back(reinterpret_cast<const char *>(Payload),
                                Length);
    // Only a version-3 writer emits retraction records: one inside a
    // version-2 file means the header was downgraded or tampered with,
    // and replaying it as a constraint line would corrupt the recovered
    // state. Refuse rather than guess.
    if (FileVersion < 3 &&
        Contents.Lines.back().compare(0, sizeof(WalRetractPrefix) - 1,
                                      WalRetractPrefix) == 0)
      return Status::error(ErrorCode::WalVersion,
                           "WAL '" + Path +
                               "' claims version 2 but contains a "
                               "retraction record");
    Pos += RecordPrefixSize + Length;
  }
  Contents.ValidBytes = Pos;
  Contents.TornBytes = Bytes.size() - Pos;
  replayHistogram().record(trace::nowMicros() - StartUs);
  replayedLinesCounter().inc(Contents.Lines.size());
  trace::complete("wal.replay", StartUs);
  return Contents;
}

Status WriteAheadLog::open(const std::string &OpenPath, uint64_t OpenBaseId) {
  if (isOpen())
    return Status::error(ErrorCode::FailedPrecondition,
                         "WAL is already open on '" + Path + "'");

  Expected<WalContents> Recovered = replay(OpenPath);
  if (!Recovered.ok())
    return Recovered.status().withContext("opening WAL");
  bool Existed = false;
  {
    struct stat StatBuf;
    Existed = ::stat(OpenPath.c_str(), &StatBuf) == 0;
  }

  int NewFd = ::open(OpenPath.c_str(), O_WRONLY | O_CREAT, 0644);
  if (NewFd < 0)
    return posixError("cannot open WAL '" + OpenPath + "'");

  // A torn header (crash at creation) or a base-id mismatch (stale log
  // whose records the caller's snapshot already contains) both mean no
  // byte of the file extends this base: start it over.
  bool StartOver = !Existed || !Recovered->HeaderIntact ||
                   Recovered->BaseId != OpenBaseId;
  Status St;
  if (StartOver) {
    if (Existed && ::ftruncate(NewFd, 0) != 0)
      St = posixError("truncate stale WAL '" + OpenPath + "'");
    std::vector<uint8_t> Header = encodeHeader(OpenBaseId);
    if (St.ok())
      St = writeAll(NewFd, Header.data(), Header.size(), OpenPath);
    if (St.ok() && ::fsync(NewFd) != 0)
      St = posixError("fsync WAL '" + OpenPath + "'");
    if (St.ok() && !Existed)
      St = fsyncParentDir(OpenPath);
  } else {
    // Drop the torn tail (unacknowledged bytes) so appends extend the
    // intact prefix.
    if (Recovered->TornBytes &&
        ::ftruncate(NewFd, static_cast<off_t>(Recovered->ValidBytes)) != 0)
      St = posixError("truncate torn tail of WAL '" + OpenPath + "'");
    // A kept version-2 log gets its header version bumped in place: the
    // next append may be a retraction record, which a version-2 header
    // would claim cannot exist. Upgrade before the first append can
    // land, and fsync so a crash never leaves a retraction record
    // behind an old header.
    if (St.ok() && Recovered->FileVersion != Version) {
      uint8_t Encoded[4];
      for (int I = 0; I != 4; ++I)
        Encoded[I] = static_cast<uint8_t>(Version >> (8 * I));
      if (::pwrite(NewFd, Encoded, sizeof(Encoded),
                   static_cast<off_t>(VersionOffset)) !=
          static_cast<ssize_t>(sizeof(Encoded)))
        St = posixError("upgrade header version of WAL '" + OpenPath + "'");
      else if (::fsync(NewFd) != 0)
        St = posixError("fsync WAL '" + OpenPath + "'");
    }
    if (St.ok() &&
        ::lseek(NewFd, static_cast<off_t>(Recovered->ValidBytes), SEEK_SET) <
            0)
      St = posixError("seek WAL '" + OpenPath + "'");
  }
  if (!St.ok()) {
    ::close(NewFd);
    return St;
  }

  Fd = NewFd;
  Path = OpenPath;
  Size = StartOver ? HeaderSize : Recovered->ValidBytes;
  BaseId = OpenBaseId;
  RecordOffsets.clear();
  if (!StartOver) {
    uint64_t Offset = HeaderSize;
    for (const std::string &Line : Recovered->Lines) {
      RecordOffsets.push_back(Offset);
      Offset += RecordPrefixSize + Line.size();
    }
  }
  return Status();
}

Status WriteAheadLog::append(const std::string &Line) {
  if (!isOpen())
    return Status::error(ErrorCode::FailedPrecondition, "WAL is not open");

  if (FailPoint::hit("wal.append.pre") != FailPoint::Mode::Off)
    return FailPoint::injectedError("wal.append.pre");

  const uint64_t StartUs = trace::nowMicros();

  // The record goes out in two halves with the `wal.append.mid`
  // failpoint between them: a crash armed there dies with exactly the
  // torn tail a real mid-append SIGKILL would leave. Records are tens of
  // bytes, so the extra write syscall is noise next to the fsync.
  std::vector<uint8_t> Record = encodeRecord(Line);
  size_t Half = Record.size() / 2;
  Status St = writeAll(Fd, Record.data(), Half, Path);
  if (St.ok() && FailPoint::hit("wal.append.mid") != FailPoint::Mode::Off)
    St = FailPoint::injectedError("wal.append.mid");
  if (St.ok())
    St = writeAll(Fd, Record.data() + Half, Record.size() - Half, Path);
  if (St.ok() && ::fsync(Fd) != 0)
    St = posixError("fsync WAL '" + Path + "'");
  if (!St.ok()) {
    // Roll the file back to the last record boundary; if even that
    // fails, the torn record is handled like a crash at next open.
    (void)::ftruncate(Fd, static_cast<off_t>(Size));
    (void)::lseek(Fd, static_cast<off_t>(Size), SEEK_SET);
    return St;
  }
  RecordOffsets.push_back(Size);
  Size += Record.size();
  appendHistogram().record(trace::nowMicros() - StartUs);
  trace::complete("wal.append", StartUs);
  return Status();
}

Status WriteAheadLog::truncateTo(uint64_t Bytes) {
  if (!isOpen())
    return Status::error(ErrorCode::FailedPrecondition, "WAL is not open");
  if (Bytes < HeaderSize || Bytes > Size)
    return Status::error(ErrorCode::InvalidArgument,
                         "WAL truncation target " + std::to_string(Bytes) +
                             " is not within the log");
  if (::ftruncate(Fd, static_cast<off_t>(Bytes)) != 0)
    return posixError("truncate WAL '" + Path + "'");
  if (::lseek(Fd, static_cast<off_t>(Bytes), SEEK_SET) < 0)
    return posixError("seek WAL '" + Path + "'");
  if (::fsync(Fd) != 0)
    return posixError("fsync WAL '" + Path + "'");
  Size = Bytes;
  while (!RecordOffsets.empty() && RecordOffsets.back() >= Bytes)
    RecordOffsets.pop_back();
  return Status();
}

Status WriteAheadLog::reset(uint64_t NewBaseId) {
  // Truncate first, stamp second: a crash in between leaves an empty
  // log with the old base id — recognized as stale and re-stamped at
  // the next open — never old records paired with the new id.
  Status St = truncateTo(HeaderSize);
  if (!St.ok())
    return St;
  if (NewBaseId != BaseId) {
    uint8_t Encoded[8];
    for (int I = 0; I != 8; ++I)
      Encoded[I] = static_cast<uint8_t>(NewBaseId >> (8 * I));
    ssize_t N = ::pwrite(Fd, Encoded, sizeof(Encoded),
                         static_cast<off_t>(BaseIdOffset));
    if (N != static_cast<ssize_t>(sizeof(Encoded)))
      return posixError("stamp base id of WAL '" + Path + "'");
    if (::fsync(Fd) != 0)
      return posixError("fsync WAL '" + Path + "'");
    BaseId = NewBaseId;
  }
  return Status();
}

void WriteAheadLog::close() {
  if (Fd >= 0)
    ::close(Fd);
  Fd = -1;
  Path.clear();
  Size = 0;
  BaseId = 0;
  RecordOffsets.clear();
}

} // namespace serve
} // namespace poce
