file(REMOVE_RECURSE
  "libpoce_model.a"
)
