
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/support/CommandLine.cpp" "src/support/CMakeFiles/poce_support.dir/CommandLine.cpp.o" "gcc" "src/support/CMakeFiles/poce_support.dir/CommandLine.cpp.o.d"
  "/root/repo/src/support/Debug.cpp" "src/support/CMakeFiles/poce_support.dir/Debug.cpp.o" "gcc" "src/support/CMakeFiles/poce_support.dir/Debug.cpp.o.d"
  "/root/repo/src/support/ErrorHandling.cpp" "src/support/CMakeFiles/poce_support.dir/ErrorHandling.cpp.o" "gcc" "src/support/CMakeFiles/poce_support.dir/ErrorHandling.cpp.o.d"
  "/root/repo/src/support/Format.cpp" "src/support/CMakeFiles/poce_support.dir/Format.cpp.o" "gcc" "src/support/CMakeFiles/poce_support.dir/Format.cpp.o.d"
  "/root/repo/src/support/Statistic.cpp" "src/support/CMakeFiles/poce_support.dir/Statistic.cpp.o" "gcc" "src/support/CMakeFiles/poce_support.dir/Statistic.cpp.o.d"
  "/root/repo/src/support/StringInterner.cpp" "src/support/CMakeFiles/poce_support.dir/StringInterner.cpp.o" "gcc" "src/support/CMakeFiles/poce_support.dir/StringInterner.cpp.o.d"
  "/root/repo/src/support/Timer.cpp" "src/support/CMakeFiles/poce_support.dir/Timer.cpp.o" "gcc" "src/support/CMakeFiles/poce_support.dir/Timer.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
