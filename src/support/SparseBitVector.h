//===- support/SparseBitVector.h - Sparse bitmap over uint32 ids -*- C++ -*-===//
//
// Part of the poce project.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// A sparse bitvector over dense 32-bit ids, in the style of LLVM's
/// SparseBitVector: the id space is chopped into 128-bit elements and only
/// non-empty elements are stored, sorted by element index, with a cached
/// cursor so that clustered access patterns (the common case for the
/// solver's term ids) hit without a binary search. Unlike the LLVM linked
/// list, elements live in one contiguous vector, which makes the word-level
/// merge loops of unionWith() cache-friendly.
///
/// The constraint solver uses this as the representation of source/sink
/// term sets and least solutions: membership is a word probe, set union is
/// a word-level merge that reports whether anything changed (the signal
/// difference propagation is built on), and iteration yields ids in
/// ascending order — which for hash-consed ExprIds is exactly the sorted
/// order the least-solution API promises.
///
//===----------------------------------------------------------------------===//

#ifndef POCE_SUPPORT_SPARSEBITVECTOR_H
#define POCE_SUPPORT_SPARSEBITVECTOR_H

#include <cassert>
#include <cstddef>
#include <cstdint>
#include <utility>
#include <vector>

namespace poce {

/// Sparse set of uint32 ids stored as 128-bit bitmap elements.
class SparseBitVector {
public:
  static constexpr uint32_t WordBits = 64;
  static constexpr uint32_t ElementWords = 2;
  static constexpr uint32_t ElementBits = WordBits * ElementWords;

private:
  /// One 128-bit chunk of the id space: ids
  /// [Index * ElementBits, (Index + 1) * ElementBits).
  struct Element {
    uint32_t Index;
    uint64_t Words[ElementWords];

    explicit Element(uint32_t Index) : Index(Index), Words{0, 0} {}
    bool emptyElement() const { return !(Words[0] | Words[1]); }
  };

  std::vector<Element> Elems;     ///< Sorted by Element::Index.
  size_t NumBits = 0;             ///< Total set bits (maintained eagerly).
  mutable size_t Cursor = 0;      ///< Last accessed position (hint).

  static uint32_t elementIndex(uint32_t Id) { return Id / ElementBits; }
  static uint32_t wordIndex(uint32_t Id) { return (Id % ElementBits) / WordBits; }
  static uint64_t bitMask(uint32_t Id) { return 1ULL << (Id % WordBits); }

  static unsigned popcount(uint64_t Word) {
    return static_cast<unsigned>(__builtin_popcountll(Word));
  }

  /// Position of the element with index \p EltIdx, or the position where it
  /// would be inserted. Checks the cursor neighborhood before searching.
  size_t lowerBound(uint32_t EltIdx) const {
    size_t N = Elems.size();
    if (Cursor < N) {
      uint32_t AtCursor = Elems[Cursor].Index;
      if (AtCursor == EltIdx)
        return Cursor;
      if (AtCursor < EltIdx) {
        if (Cursor + 1 == N || Elems[Cursor + 1].Index >= EltIdx)
          return Cursor + 1;
      } else if (Cursor == 0 || Elems[Cursor - 1].Index < EltIdx) {
        return Cursor;
      }
    }
    // Binary search over the sorted element vector.
    size_t Lo = 0, Hi = N;
    while (Lo != Hi) {
      size_t Mid = Lo + (Hi - Lo) / 2;
      if (Elems[Mid].Index < EltIdx)
        Lo = Mid + 1;
      else
        Hi = Mid;
    }
    return Lo;
  }

  template <typename Fn>
  static void forEachBitInWord(uint64_t Word, uint32_t Base, Fn &&F) {
    while (Word) {
      uint32_t Bit = static_cast<uint32_t>(__builtin_ctzll(Word));
      F(Base + Bit);
      Word &= Word - 1;
    }
  }

public:
  SparseBitVector() = default;

  size_t count() const { return NumBits; }
  bool empty() const { return NumBits == 0; }

  void clear() {
    Elems.clear();
    NumBits = 0;
    Cursor = 0;
  }

  bool test(uint32_t Id) const {
    size_t Pos = lowerBound(elementIndex(Id));
    if (Pos == Elems.size() || Elems[Pos].Index != elementIndex(Id))
      return false;
    Cursor = Pos;
    return (Elems[Pos].Words[wordIndex(Id)] & bitMask(Id)) != 0;
  }

  /// Sets \p Id; returns true if the bit was newly set.
  bool testAndSet(uint32_t Id) {
    uint32_t EltIdx = elementIndex(Id);
    size_t Pos = lowerBound(EltIdx);
    if (Pos == Elems.size() || Elems[Pos].Index != EltIdx)
      Elems.insert(Elems.begin() + Pos, Element(EltIdx));
    Cursor = Pos;
    uint64_t &Word = Elems[Pos].Words[wordIndex(Id)];
    uint64_t Mask = bitMask(Id);
    if (Word & Mask)
      return false;
    Word |= Mask;
    ++NumBits;
    return true;
  }

  void set(uint32_t Id) { (void)testAndSet(Id); }

  /// Clears \p Id; returns true if the bit was previously set. Empty
  /// elements are erased so that equality stays structural.
  bool reset(uint32_t Id) {
    uint32_t EltIdx = elementIndex(Id);
    size_t Pos = lowerBound(EltIdx);
    if (Pos == Elems.size() || Elems[Pos].Index != EltIdx)
      return false;
    uint64_t &Word = Elems[Pos].Words[wordIndex(Id)];
    uint64_t Mask = bitMask(Id);
    if (!(Word & Mask))
      return false;
    Word &= ~Mask;
    --NumBits;
    if (Elems[Pos].emptyElement())
      Elems.erase(Elems.begin() + Pos);
    Cursor = 0;
    return true;
  }

  /// Unions \p RHS into this set with word-level ORs. Returns true if any
  /// bit was added. When \p WordsVisited is non-null it is incremented by
  /// the number of 64-bit words the merge touched (the solver's
  /// LSUnionWords counter).
  bool unionWith(const SparseBitVector &RHS,
                 uint64_t *WordsVisited = nullptr) {
    return unionWithVisitor(RHS, [](uint32_t) {}, WordsVisited,
                            /*VisitNewBits=*/false) != 0;
  }

  /// Unions \p RHS into this set, invoking \p OnNewBit(id) for every bit
  /// that was not previously present, in ascending id order. Returns the
  /// number of newly added bits.
  template <typename Fn>
  size_t unionWithVisitor(const SparseBitVector &RHS, Fn &&OnNewBit,
                          uint64_t *WordsVisited = nullptr,
                          bool VisitNewBits = true) {
    if (RHS.Elems.empty() || this == &RHS)
      return 0;
    size_t Added = 0;
    uint64_t Words = 0;

    // First pass: detect whether RHS contains element indices missing here;
    // if so, rebuild into a merged vector (one allocation), else OR in
    // place.
    bool NeedsMerge = false;
    {
      size_t I = 0;
      for (const Element &R : RHS.Elems) {
        while (I != Elems.size() && Elems[I].Index < R.Index)
          ++I;
        if (I == Elems.size() || Elems[I].Index != R.Index) {
          NeedsMerge = true;
          break;
        }
      }
    }

    auto orInto = [&](Element &L, const Element &R) {
      for (uint32_t W = 0; W != ElementWords; ++W) {
        uint64_t New = R.Words[W] & ~L.Words[W];
        Words += 1;
        if (!New)
          continue;
        L.Words[W] |= New;
        Added += popcount(New);
        if (VisitNewBits)
          forEachBitInWord(New, R.Index * ElementBits + W * WordBits,
                           OnNewBit);
      }
    };

    if (!NeedsMerge) {
      // Every RHS element has a counterpart here (checked above). The hot
      // shape is long runs of consecutive elements on both sides (clustered
      // term ids), so OR two elements — four 64-bit words — per iteration
      // whenever the next pair is already aligned, skipping the per-element
      // catch-up scan.
      size_t I = 0, J = 0;
      const size_t NumR = RHS.Elems.size();
      while (J + 1 < NumR) {
        const Element &R0 = RHS.Elems[J];
        while (Elems[I].Index < R0.Index)
          ++I;
        const Element &R1 = RHS.Elems[J + 1];
        if (I + 1 != Elems.size() && Elems[I + 1].Index == R1.Index) {
          orInto(Elems[I], R0);
          orInto(Elems[I + 1], R1);
          I += 2;
          J += 2;
        } else {
          orInto(Elems[I], R0);
          ++I;
          ++J;
        }
      }
      if (J != NumR) {
        const Element &R = RHS.Elems[J];
        while (Elems[I].Index < R.Index)
          ++I;
        orInto(Elems[I], R);
      }
    } else {
      std::vector<Element> Merged;
      Merged.reserve(Elems.size() + RHS.Elems.size());
      size_t I = 0, J = 0;
      while (I != Elems.size() || J != RHS.Elems.size()) {
        if (J == RHS.Elems.size() ||
            (I != Elems.size() && Elems[I].Index < RHS.Elems[J].Index)) {
          Merged.push_back(Elems[I++]);
        } else if (I == Elems.size() ||
                   Elems[I].Index > RHS.Elems[J].Index) {
          const Element &R = RHS.Elems[J++];
          Merged.push_back(Element(R.Index));
          orInto(Merged.back(), R);
        } else {
          Merged.push_back(Elems[I++]);
          orInto(Merged.back(), RHS.Elems[J++]);
        }
      }
      Elems = std::move(Merged);
    }
    NumBits += Added;
    Cursor = 0;
    if (WordsVisited)
      *WordsVisited += Words;
    return Added;
  }

  /// Replaces this set with \p A minus \p B using word-level operations.
  /// \p A and \p B must be distinct objects from \p *this.
  void assignDifference(const SparseBitVector &A, const SparseBitVector &B) {
    assert(this != &A && this != &B && "aliasing assignDifference");
    Elems.clear();
    NumBits = 0;
    Cursor = 0;
    Elems.reserve(A.Elems.size());
    size_t J = 0;
    for (const Element &L : A.Elems) {
      while (J != B.Elems.size() && B.Elems[J].Index < L.Index)
        ++J;
      const Element *E =
          (J != B.Elems.size() && B.Elems[J].Index == L.Index) ? &B.Elems[J]
                                                               : nullptr;
      Element Out(L.Index);
      size_t Bits = 0;
      for (uint32_t W = 0; W != ElementWords; ++W) {
        Out.Words[W] = L.Words[W] & (E ? ~E->Words[W] : ~0ULL);
        Bits += popcount(Out.Words[W]);
      }
      if (Bits) {
        Elems.push_back(Out);
        NumBits += Bits;
      }
    }
  }

  /// True if every bit of this set is also in \p RHS.
  bool isSubsetOf(const SparseBitVector &RHS) const {
    size_t J = 0;
    for (const Element &L : Elems) {
      while (J != RHS.Elems.size() && RHS.Elems[J].Index < L.Index)
        ++J;
      if (J == RHS.Elems.size() || RHS.Elems[J].Index != L.Index)
        return (L.Words[0] | L.Words[1]) == 0;
      for (uint32_t W = 0; W != ElementWords; ++W)
        if (L.Words[W] & ~RHS.Elems[J].Words[W])
          return false;
    }
    return true;
  }

  /// Visits ids in \p *this that are not in \p Exclude, ascending.
  template <typename Fn>
  void forEachDifference(const SparseBitVector &Exclude, Fn &&F) const {
    size_t J = 0;
    for (const Element &L : Elems) {
      while (J != Exclude.Elems.size() && Exclude.Elems[J].Index < L.Index)
        ++J;
      const Element *E = (J != Exclude.Elems.size() &&
                          Exclude.Elems[J].Index == L.Index)
                             ? &Exclude.Elems[J]
                             : nullptr;
      for (uint32_t W = 0; W != ElementWords; ++W) {
        uint64_t Word = L.Words[W] & (E ? ~E->Words[W] : ~0ULL);
        forEachBitInWord(Word, L.Index * ElementBits + W * WordBits, F);
      }
    }
  }

  /// Visits every set id in ascending order.
  template <typename Fn> void forEach(Fn &&F) const {
    for (const Element &L : Elems)
      for (uint32_t W = 0; W != ElementWords; ++W)
        forEachBitInWord(L.Words[W], L.Index * ElementBits + W * WordBits,
                         F);
  }

  bool operator==(const SparseBitVector &RHS) const {
    if (NumBits != RHS.NumBits || Elems.size() != RHS.Elems.size())
      return false;
    for (size_t I = 0; I != Elems.size(); ++I) {
      if (Elems[I].Index != RHS.Elems[I].Index)
        return false;
      for (uint32_t W = 0; W != ElementWords; ++W)
        if (Elems[I].Words[W] != RHS.Elems[I].Words[W])
          return false;
    }
    return true;
  }
  bool operator!=(const SparseBitVector &RHS) const { return !(*this == RHS); }

  /// Materializes the set as a sorted vector of ids.
  template <typename OutT = uint32_t>
  std::vector<OutT> toVector() const {
    std::vector<OutT> Out;
    Out.reserve(NumBits);
    forEach([&](uint32_t Id) { Out.push_back(static_cast<OutT>(Id)); });
    return Out;
  }

  /// Number of 64-bit words currently stored (capacity accounting).
  size_t numWords() const { return Elems.size() * ElementWords; }

  /// Number of stored (non-empty) 128-bit elements.
  size_t numElements() const { return Elems.size(); }

  /// Visits each stored element as (Index, Words[ElementWords]) in
  /// ascending index order. Exposes the physical layout so a snapshot can
  /// serialize the set word-for-word.
  template <typename Fn> void forEachElement(Fn &&F) const {
    for (const Element &L : Elems)
      F(L.Index, L.Words);
  }

  /// Appends one element with the given raw words. Elements must arrive
  /// in strictly ascending index order and must be non-empty (the
  /// invariants a well-formed set maintains); returns false when the
  /// input violates them, leaving the set unchanged. The inverse of
  /// forEachElement(), used to reconstruct a set bit-identically from a
  /// snapshot.
  bool appendElement(uint32_t Index, const uint64_t W[ElementWords]) {
    if (!Elems.empty() && Elems.back().Index >= Index)
      return false;
    uint64_t Any = 0;
    for (uint32_t I = 0; I != ElementWords; ++I)
      Any |= W[I];
    if (!Any)
      return false;
    Element E(Index);
    for (uint32_t I = 0; I != ElementWords; ++I) {
      E.Words[I] = W[I];
      NumBits += popcount(W[I]);
    }
    Elems.push_back(E);
    return true;
  }

  /// True if this set and \p RHS share at least one bit.
  bool intersects(const SparseBitVector &RHS) const {
    size_t J = 0;
    for (const Element &L : Elems) {
      while (J != RHS.Elems.size() && RHS.Elems[J].Index < L.Index)
        ++J;
      if (J == RHS.Elems.size())
        return false;
      if (RHS.Elems[J].Index != L.Index)
        continue;
      for (uint32_t W = 0; W != ElementWords; ++W)
        if (L.Words[W] & RHS.Elems[J].Words[W])
          return true;
    }
    return false;
  }
};

} // namespace poce

#endif // POCE_SUPPORT_SPARSEBITVECTOR_H
