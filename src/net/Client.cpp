//===- net/Client.cpp - Blocking line-protocol client ---------------------===//
//
// Part of the poce project.
//
//===----------------------------------------------------------------------===//

#include "net/Client.h"

#include "net/Socket.h"

#include <cerrno>
#include <chrono>
#include <cstring>
#include <random>
#include <sys/socket.h>
#include <thread>
#include <unistd.h>

using namespace poce;
using namespace poce::net;

namespace {

/// Jittered exponential backoff shared by the connect retries:
/// 25 ms * 2^attempt (capped at 1 s), scaled by a uniform ±50% jitter so
/// a fleet of reconnecting followers does not thundering-herd a
/// restarted primary.
uint64_t backoffDelayMs(unsigned Attempt, std::minstd_rand &Rng) {
  uint64_t Base = 25u << (Attempt < 6 ? Attempt : 6);
  if (Base > 1000)
    Base = 1000;
  uint64_t Jitter = Base / 2 + Rng() % (Base + 1); // [base/2, 3*base/2]
  return Jitter;
}

uint64_t steadyNowMs() {
  return static_cast<uint64_t>(
      std::chrono::duration_cast<std::chrono::milliseconds>(
          std::chrono::steady_clock::now().time_since_epoch())
          .count());
}

template <typename ConnectFn>
Status connectWithBackoff(ConnectFn Connect, uint64_t DeadlineMs,
                          uint64_t JitterSeed) {
  std::minstd_rand Rng(JitterSeed ? static_cast<unsigned>(JitterSeed)
                                  : std::random_device{}());
  const uint64_t Start = steadyNowMs();
  unsigned Attempt = 0;
  for (;;) {
    Status Connected = Connect();
    if (Connected.ok())
      return Connected;
    uint64_t Delay = backoffDelayMs(Attempt++, Rng);
    uint64_t Elapsed = steadyNowMs() - Start;
    if (Elapsed + Delay > DeadlineMs)
      return Connected.withContext("connect retries exhausted after " +
                                   std::to_string(Elapsed) + " ms");
    std::this_thread::sleep_for(std::chrono::milliseconds(Delay));
  }
}

} // namespace

Status LineClient::connectTcp(const std::string &HostPort) {
  close();
  Expected<int> Connected = net::connectTcp(HostPort);
  if (!Connected.ok())
    return Connected.status();
  Fd = *Connected;
  return Status();
}

Status LineClient::connectUnix(const std::string &Path) {
  close();
  Expected<int> Connected = net::connectUnix(Path);
  if (!Connected.ok())
    return Connected.status();
  Fd = *Connected;
  return Status();
}

Status LineClient::connectTcpWithBackoff(const std::string &HostPort,
                                         uint64_t DeadlineMs,
                                         uint64_t JitterSeed) {
  return connectWithBackoff([&] { return connectTcp(HostPort); }, DeadlineMs,
                            JitterSeed);
}

Status LineClient::connectUnixWithBackoff(const std::string &Path,
                                          uint64_t DeadlineMs,
                                          uint64_t JitterSeed) {
  return connectWithBackoff([&] { return connectUnix(Path); }, DeadlineMs,
                            JitterSeed);
}

Status LineClient::setRecvTimeoutMs(uint64_t Ms) {
  if (Fd < 0)
    return Status::error(ErrorCode::FailedPrecondition, "not connected");
  timeval Tv{};
  Tv.tv_sec = static_cast<time_t>(Ms / 1000);
  Tv.tv_usec = static_cast<suseconds_t>((Ms % 1000) * 1000);
  if (::setsockopt(Fd, SOL_SOCKET, SO_RCVTIMEO, &Tv, sizeof(Tv)) < 0)
    return Status::error(ErrorCode::IoError,
                         std::string("setsockopt(SO_RCVTIMEO): ") +
                             std::strerror(errno));
  return Status();
}

Status LineClient::sendLine(const std::string &Line) {
  if (Fd < 0)
    return Status::error(ErrorCode::FailedPrecondition, "not connected");
  std::string Wire = Line + "\n";
  size_t Sent = 0;
  while (Sent < Wire.size()) {
    ssize_t N = ::write(Fd, Wire.data() + Sent, Wire.size() - Sent);
    if (N < 0) {
      if (errno == EINTR)
        continue;
      return Status::error(ErrorCode::IoError,
                           std::string("write: ") + std::strerror(errno));
    }
    Sent += static_cast<size_t>(N);
  }
  return Status();
}

Status LineClient::recvLine(std::string &Out) {
  if (Fd < 0)
    return Status::error(ErrorCode::FailedPrecondition, "not connected");
  for (;;) {
    size_t Nl = Pending.find('\n');
    if (Nl != std::string::npos) {
      Out.assign(Pending, 0, Nl);
      Pending.erase(0, Nl + 1);
      return Status();
    }
    char Buf[4096];
    ssize_t N = ::read(Fd, Buf, sizeof(Buf));
    if (N < 0) {
      if (errno == EINTR)
        continue;
      if (errno == EAGAIN || errno == EWOULDBLOCK)
        return Status::error(ErrorCode::Timeout, "receive timeout");
      return Status::error(ErrorCode::IoError,
                           std::string("read: ") + std::strerror(errno));
    }
    if (N == 0)
      return Status::error(ErrorCode::NotFound,
                           "connection closed by server");
    Pending.append(Buf, static_cast<size_t>(N));
  }
}

bool LineClient::tryRecvLine(std::string &Out) {
  if (Fd < 0)
    return false;
  size_t Nl = Pending.find('\n');
  if (Nl == std::string::npos) {
    char Buf[4096];
    ssize_t N = ::recv(Fd, Buf, sizeof(Buf), MSG_DONTWAIT);
    if (N > 0)
      Pending.append(Buf, static_cast<size_t>(N));
    Nl = Pending.find('\n');
    if (Nl == std::string::npos)
      return false;
  }
  Out.assign(Pending, 0, Nl);
  Pending.erase(0, Nl + 1);
  return true;
}

Status LineClient::recvBytes(size_t Count, std::vector<uint8_t> &Out) {
  if (Fd < 0)
    return Status::error(ErrorCode::FailedPrecondition, "not connected");
  Out.clear();
  Out.reserve(Count);
  size_t FromPending = Pending.size() < Count ? Pending.size() : Count;
  Out.insert(Out.end(), Pending.begin(),
             Pending.begin() + static_cast<ptrdiff_t>(FromPending));
  Pending.erase(0, FromPending);
  while (Out.size() < Count) {
    uint8_t Buf[16384];
    size_t Want = Count - Out.size();
    ssize_t N = ::read(Fd, Buf, Want < sizeof(Buf) ? Want : sizeof(Buf));
    if (N < 0) {
      if (errno == EINTR)
        continue;
      if (errno == EAGAIN || errno == EWOULDBLOCK)
        return Status::error(ErrorCode::Timeout, "receive timeout");
      return Status::error(ErrorCode::IoError,
                           std::string("read: ") + std::strerror(errno));
    }
    if (N == 0)
      return Status::error(ErrorCode::NotFound,
                           "connection closed by server mid-payload");
    Out.insert(Out.end(), Buf, Buf + N);
  }
  return Status();
}

Status LineClient::request(const std::string &Line, std::string &Reply) {
  Status Sent = sendLine(Line);
  if (!Sent)
    return Sent;
  Status Got = recvLine(Reply);
  if (!Got)
    return Got;
  // The metrics payload is the one multi-line reply; everything else is
  // strictly one line per request.
  if (Reply.rfind("ok metrics", 0) == 0) {
    std::string More;
    while (More != "# EOF") {
      Status Next = recvLine(More);
      if (!Next)
        return Next;
      Reply += "\n" + More;
    }
  }
  return Status();
}

void LineClient::close() {
  closeFd(Fd);
  Fd = -1;
  Pending.clear();
}
