//===- workload/ProgramGenerator.h - Synthetic MiniC programs ---*- C++ -*-===//
//
// Part of the poce project.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Deterministic generator of pointer-intensive MiniC programs. The paper
/// evaluates on 1990s C programs we cannot redistribute; this generator is
/// the documented substitution (see DESIGN.md): it emits the idioms that
/// drive Andersen's analysis — pointer chains, swap kernels through
/// double pointers, linked structures, function-pointer dispatch, mutual
/// recursion, heap allocation, and cross-module pointer assignments — at
/// calibrated sizes, producing initial constraint graphs of density
/// comparable to the paper's (p ~ 1/n) whose closures form large strongly
/// connected components.
///
//===----------------------------------------------------------------------===//

#ifndef POCE_WORKLOAD_PROGRAMGENERATOR_H
#define POCE_WORKLOAD_PROGRAMGENERATOR_H

#include <cstdint>
#include <string>

namespace poce {
namespace workload {

/// Parameters of one synthetic program.
struct ProgramSpec {
  std::string Name;
  /// Approximate AST size to aim for (the paper's size metric).
  uint32_t TargetAstNodes = 2000;
  uint64_t Seed = 1;
};

/// Generates the MiniC source of \p Spec. Deterministic in (Name, Target,
/// Seed).
std::string generateProgram(const ProgramSpec &Spec);

} // namespace workload
} // namespace poce

#endif // POCE_WORKLOAD_PROGRAMGENERATOR_H
