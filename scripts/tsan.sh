#!/usr/bin/env bash
# Builds the parallel and network tests under ThreadSanitizer and runs
# them.
#
# The parallel least-solution pass and the batch-solve API are designed to
# be TSan-clean (all cross-thread visibility goes through the pool's wave
# mutex), and so is the whole socket serving stack — event loop, writer
# lane, read-wave pool, and RCU view publishing, exercised end to end over
# loopback by net_tests; this script is the check. Uses a dedicated build
# directory so the instrumented build never mixes with the normal one.
#
# Usage: scripts/tsan.sh [extra ctest args...]
set -euo pipefail
cd "$(dirname "$0")/.."

BUILD_DIR=build-tsan
cmake -B "$BUILD_DIR" -S . -DPOCE_SANITIZE=thread
cmake --build "$BUILD_DIR" -j --target parallel_tests core_tests net_tests
cd "$BUILD_DIR"
# HistogramTest.ConcurrentRecordsAllLand checks the registry's lock-free
# increments are TSan-clean alongside the pool's wave protocol; the Net
# suites drive concurrent socket clients against the epoll server.
ctest --output-on-failure \
  -R '(ThreadPool|Determinism|BatchSolve|Histogram|MetricsRegistry|Net)' "$@"
