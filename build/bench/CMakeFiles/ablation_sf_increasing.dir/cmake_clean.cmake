file(REMOVE_RECURSE
  "CMakeFiles/ablation_sf_increasing.dir/ablation_sf_increasing.cpp.o"
  "CMakeFiles/ablation_sf_increasing.dir/ablation_sf_increasing.cpp.o.d"
  "ablation_sf_increasing"
  "ablation_sf_increasing.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ablation_sf_increasing.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
