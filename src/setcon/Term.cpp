//===- setcon/Term.cpp - Hash-consed set expressions ----------------------===//
//
// Part of the poce project.
//
//===----------------------------------------------------------------------===//

#include "setcon/Term.h"

#include "support/DenseU64Set.h"
#include "support/ErrorHandling.h"

#include <cassert>

using namespace poce;

TermTable::TermTable(ConstructorTable &Constructors)
    : Constructors(Constructors) {
  // Ids 0 and 1 are the constants Zero and One.
  ExprId ZeroId = allocate(ExprKind::Zero, 0, 0, 0);
  ExprId OneId = allocate(ExprKind::One, 0, 0, 0);
  assert(ZeroId == 0 && OneId == 1 && "constant ids out of place!");
  (void)ZeroId;
  (void)OneId;
}

ExprId TermTable::allocate(ExprKind Kind, uint32_t Payload, uint32_t ArgsBegin,
                           uint32_t NumArgs) {
  ExprId Id = static_cast<ExprId>(Kinds.size());
  Kinds.push_back(Kind);
  Payloads.push_back(Payload);
  ArgSlices.push_back({ArgsBegin, NumArgs});
  return Id;
}

ExprId TermTable::var(VarId Var) {
  if (Var < VarExprs.size() && VarExprs[Var] != 0)
    return VarExprs[Var];
  if (Var >= VarExprs.size())
    VarExprs.resize(Var + 1, 0);
  ExprId Id = allocate(ExprKind::Var, Var, 0, 0);
  VarExprs[Var] = Id;
  return Id;
}

ExprId TermTable::cons(ConsId Cons, const SmallVectorImpl<ExprId> &Args) {
  assert(Args.size() == Constructors.signature(Cons).arity() &&
         "constructor applied with wrong arity!");

  uint64_t Hash = denseU64Hash(0x636f6e73ULL ^ Cons);
  for (ExprId Arg : Args)
    Hash = denseU64Hash(Hash ^ Arg);

  SmallVector<ExprId, 2> &Candidates = ConsIndex[Hash];
  for (ExprId Candidate : Candidates) {
    if (consOf(Candidate) != Cons || numArgs(Candidate) != Args.size())
      continue;
    const ExprId *CandidateArgs = argsOf(Candidate);
    bool Same = true;
    for (size_t I = 0; I != Args.size(); ++I) {
      if (CandidateArgs[I] != Args[I]) {
        Same = false;
        break;
      }
    }
    if (Same)
      return Candidate;
  }

  uint32_t Begin = static_cast<uint32_t>(ArgPool.size());
  for (ExprId Arg : Args)
    ArgPool.push_back(Arg);
  ExprId Id =
      allocate(ExprKind::Cons, Cons, Begin, static_cast<uint32_t>(Args.size()));
  Candidates.push_back(Id);
  return Id;
}

ExprId TermTable::cons(ConsId Cons, std::initializer_list<ExprId> Args) {
  SmallVector<ExprId, 4> ArgVec;
  ArgVec.append(Args.begin(), Args.end());
  return cons(Cons, ArgVec);
}

VarId TermTable::varOf(ExprId Id) const {
  assert(kind(Id) == ExprKind::Var && "varOf() on non-variable expression!");
  return Payloads[Id];
}

ConsId TermTable::consOf(ExprId Id) const {
  assert(kind(Id) == ExprKind::Cons && "consOf() on non-constructed term!");
  return Payloads[Id];
}

const ExprId *TermTable::argsOf(ExprId Id) const {
  assert(kind(Id) == ExprKind::Cons && "argsOf() on non-constructed term!");
  return ArgPool.data() + ArgSlices[Id].first;
}

unsigned TermTable::numArgs(ExprId Id) const {
  assert(kind(Id) == ExprKind::Cons && "numArgs() on non-constructed term!");
  return ArgSlices[Id].second;
}

std::string
TermTable::str(ExprId Id,
               const std::function<std::string(VarId)> &VarName) const {
  switch (kind(Id)) {
  case ExprKind::Zero:
    return "0";
  case ExprKind::One:
    return "1";
  case ExprKind::Var:
    return VarName ? VarName(varOf(Id)) : "X" + std::to_string(varOf(Id));
  case ExprKind::Cons: {
    const ConstructorSignature &Sig = Constructors.signature(consOf(Id));
    std::string Out = Sig.Name;
    if (!Sig.arity())
      return Out;
    Out += "(";
    const ExprId *Args = argsOf(Id);
    for (unsigned I = 0; I != numArgs(Id); ++I) {
      if (I)
        Out += ", ";
      if (Sig.ArgVariance[I] == Variance::Contravariant)
        Out += "~";
      Out += str(Args[I], VarName);
    }
    Out += ")";
    return Out;
  }
  }
  poce_unreachable("invalid expression kind");
}
