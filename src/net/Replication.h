//===- net/Replication.h - Follower-side WAL tailing client -----*- C++ -*-===//
//
// Part of the poce project.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The follower half of WAL-shipping replication: a background thread
/// that keeps one connection to the primary, speaks the `replicate
/// <base> <seq>` handshake, and feeds the shipped stream back into the
/// local NetServer's writer lane.
///
/// The protocol it consumes (all lines from the primary):
///
///   ok tail <base> <seq>       resume: records [seq, N) follow
///   ok snapshot <base> <n>     bootstrap: n raw snapshot bytes follow,
///                              then records [0, N)
///   r <seq> <line>             one WAL record
///   rebase <base>              the primary checkpointed; mirror it
///   hb <seq>                   heartbeat with the primary's live count
///
/// Robustness is the point: reconnects use jittered exponential backoff
/// with a resumable (base, seq) cursor, heartbeats feed the
/// poce_repl_lag_* staleness gauges, and any divergence — a record that
/// fails to apply, a rebase whose locally computed base id disagrees
/// with the primary's — resets the cursor to (0, 0) so the next
/// handshake re-bootstraps from the primary's snapshot instead of
/// serving wrong answers.
///
/// All graph mutations go through NetServer::applyReplicated* — internal
/// writer-lane jobs — so the single-writer discipline and view
/// republication are untouched; this thread never touches the core.
///
//===----------------------------------------------------------------------===//

#ifndef POCE_NET_REPLICATION_H
#define POCE_NET_REPLICATION_H

#include "net/Client.h"
#include "net/Server.h"
#include "support/Metrics.h"
#include "support/Status.h"

#include <atomic>
#include <cstdint>
#include <mutex>
#include <string>
#include <thread>
#include <vector>

namespace poce {
namespace net {

/// Strict unsigned parsers for wire cursor fields (base ids, sequence
/// numbers). Bare std::strtoull accepts leading whitespace and a minus
/// sign — "-1" wraps to ULLONG_MAX with errno still 0 — so a malformed
/// `replicate -1 -1` handshake would silently seed a garbage cursor
/// instead of being refused. These require the first character to be a
/// digit of the base, the whole string to be consumed, and no overflow.
bool parseHexU64(const std::string &S, uint64_t &Out);
bool parseDecU64(const std::string &S, uint64_t &Out);

class ReplicationClient {
public:
  struct Options {
    std::string TcpSpec;  ///< Primary "host:port" ("" = use UnixPath).
    std::string UnixPath; ///< Primary Unix-socket path ("" = use TCP).
    uint64_t InitialBase = 0; ///< WAL base id after local recovery.
    uint64_t InitialSeq = 0;  ///< WAL record count after local recovery.
    uint64_t TickMs = 250;    ///< Receive timeout = lag-gauge cadence.
    uint64_t JitterSeed = 0;  ///< Backoff jitter seed (0 = random).
  };

  /// Binds to \p Server (which must outlive this client). Construct
  /// before Server.run() so the initial cursor is read while the core is
  /// still single-threaded; nothing runs until start().
  ReplicationClient(NetServer &Server, Options Opts);
  ~ReplicationClient() { stop(); }
  ReplicationClient(const ReplicationClient &) = delete;
  ReplicationClient &operator=(const ReplicationClient &) = delete;

  /// Starts the tailing thread.
  void start();

  /// Signals the thread to stop and unblocks a blocked receive by
  /// shutting down the live socket. Does NOT join — safe to call from
  /// the server's writer lane (the promote path), where joining could
  /// deadlock against a queued internal job.
  void requestStop();

  /// requestStop() + join. Idempotent.
  void stop();

  /// One-shot cold bootstrap, used before the follower's engine exists:
  /// connects (with backoff, up to \p DeadlineMs), performs a
  /// `replicate 0 0` handshake, verifies the shipped snapshot's payload
  /// checksum against the advertised base id, and atomically writes it
  /// to \p SnapshotPath. The follower then loads it through the normal
  /// startup + warm-recovery path.
  static Status coldBootstrap(const std::string &TcpSpec,
                              const std::string &UnixPath,
                              const std::string &SnapshotPath,
                              uint64_t DeadlineMs);

private:
  enum class Action : uint8_t { Continue, Reconnect, Stopped };

  void run();
  Status connect(LineClient &Client);
  Action handshake(LineClient &Client);
  Action handleLine(LineClient &Client, const std::string &Line);
  Action applyRecords(
      std::vector<std::pair<uint64_t, std::string>> Records);
  void noteDivergence(const std::string &Why);
  void sleepBackoff(unsigned Attempt);

  NetServer &Server;
  Options Opts;
  uint64_t Base;       ///< Cursor: WAL base id ((0,0) forces bootstrap).
  uint64_t Seq;        ///< Cursor: next record index expected.
  uint64_t PrimarySeq = 0; ///< Last heartbeat's live record count.
  uint64_t LastMsgMs = 0;  ///< Receive time of the last stream line.
  std::atomic<bool> Stop{false};
  std::thread Thread;
  std::mutex FdMutex;
  int ActiveFd = -1; ///< Live socket requestStop() may shut down.
  uint64_t RngState; ///< Backoff jitter LCG state.

  Gauge *Connected = nullptr;
  Gauge *LagMs = nullptr;
  Gauge *LagRecords = nullptr;
  Counter *Applied = nullptr;
  Counter *Reconnects = nullptr;
  Counter *Bootstraps = nullptr;
  Counter *Divergences = nullptr;
};

} // namespace net
} // namespace poce

#endif // POCE_NET_REPLICATION_H
