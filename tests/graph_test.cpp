//===- tests/graph_test.cpp - Graph library unit tests ---------------------===//
//
// Part of the poce project.
//
//===----------------------------------------------------------------------===//

#include "graph/Digraph.h"
#include "graph/DotWriter.h"
#include "graph/NuutilaSCC.h"
#include "graph/RandomGraph.h"
#include "graph/TarjanSCC.h"

#include <gtest/gtest.h>

#include <algorithm>
#include <set>

using namespace poce;

//===----------------------------------------------------------------------===//
// Digraph
//===----------------------------------------------------------------------===//

TEST(DigraphTest, AddAndDedupeEdges) {
  Digraph G(3);
  EXPECT_TRUE(G.addEdge(0, 1));
  EXPECT_FALSE(G.addEdge(0, 1));
  EXPECT_TRUE(G.addEdge(1, 2));
  EXPECT_EQ(G.numEdges(), 2u);
  EXPECT_TRUE(G.hasEdge(0, 1));
  EXPECT_FALSE(G.hasEdge(1, 0));
}

TEST(DigraphTest, ReachableFrom) {
  Digraph G(5);
  G.addEdge(0, 1);
  G.addEdge(1, 2);
  G.addEdge(3, 4);
  auto Reach = G.reachableFrom(0);
  std::set<uint32_t> Set(Reach.begin(), Reach.end());
  EXPECT_EQ(Set, (std::set<uint32_t>{0, 1, 2}));
}

TEST(DigraphTest, TopologicalOrderOnDag) {
  Digraph G(4);
  G.addEdge(0, 1);
  G.addEdge(0, 2);
  G.addEdge(1, 3);
  G.addEdge(2, 3);
  auto Order = G.topologicalOrder();
  ASSERT_EQ(Order.size(), 4u);
  std::vector<uint32_t> Position(4);
  for (uint32_t I = 0; I != 4; ++I)
    Position[Order[I]] = I;
  EXPECT_LT(Position[0], Position[1]);
  EXPECT_LT(Position[1], Position[3]);
  EXPECT_LT(Position[2], Position[3]);
  EXPECT_TRUE(G.isAcyclic());
}

TEST(DigraphTest, TopologicalOrderDetectsCycle) {
  Digraph G(3);
  G.addEdge(0, 1);
  G.addEdge(1, 2);
  G.addEdge(2, 0);
  EXPECT_TRUE(G.topologicalOrder().empty());
  EXPECT_FALSE(G.isAcyclic());
}

TEST(DigraphTest, GrowTo) {
  Digraph G;
  G.growTo(10);
  EXPECT_EQ(G.numNodes(), 10u);
  EXPECT_EQ(G.addNode(), 10u);
}

//===----------------------------------------------------------------------===//
// Tarjan SCC
//===----------------------------------------------------------------------===//

TEST(TarjanTest, SingleCycle) {
  Digraph G(4);
  G.addEdge(0, 1);
  G.addEdge(1, 2);
  G.addEdge(2, 0);
  G.addEdge(2, 3);
  SCCResult SCCs = computeSCCs(G);
  EXPECT_EQ(SCCs.numComponents(), 2u);
  EXPECT_EQ(SCCs.ComponentOf[0], SCCs.ComponentOf[1]);
  EXPECT_EQ(SCCs.ComponentOf[1], SCCs.ComponentOf[2]);
  EXPECT_NE(SCCs.ComponentOf[0], SCCs.ComponentOf[3]);
  EXPECT_EQ(SCCs.numNodesInNontrivialSCCs(), 3u);
  EXPECT_EQ(SCCs.maxComponentSize(), 3u);
  EXPECT_EQ(SCCs.numNontrivialSCCs(), 1u);
}

TEST(TarjanTest, DagIsAllSingletons) {
  Digraph G(5);
  G.addEdge(0, 1);
  G.addEdge(1, 2);
  G.addEdge(2, 3);
  G.addEdge(3, 4);
  SCCResult SCCs = computeSCCs(G);
  EXPECT_EQ(SCCs.numComponents(), 5u);
  EXPECT_EQ(SCCs.numNodesInNontrivialSCCs(), 0u);
}

TEST(TarjanTest, SelfLoopIsTrivialComponent) {
  // A self loop forms a component of size 1 (the solver never stores
  // self edges, but the ground-truth SCC analysis must not count them as
  // collapsible).
  Digraph G(2);
  G.addEdge(0, 0);
  G.addEdge(0, 1);
  SCCResult SCCs = computeSCCs(G);
  EXPECT_EQ(SCCs.numComponents(), 2u);
  EXPECT_EQ(SCCs.numNodesInNontrivialSCCs(), 0u);
}

TEST(TarjanTest, TwoSCCsWithBridge) {
  Digraph G(6);
  // SCC {0,1,2} -> SCC {3,4} -> 5.
  G.addEdge(0, 1);
  G.addEdge(1, 2);
  G.addEdge(2, 0);
  G.addEdge(2, 3);
  G.addEdge(3, 4);
  G.addEdge(4, 3);
  G.addEdge(4, 5);
  SCCResult SCCs = computeSCCs(G);
  EXPECT_EQ(SCCs.numComponents(), 3u);
  EXPECT_EQ(SCCs.numNontrivialSCCs(), 2u);
  Digraph Condensed = condense(G, SCCs);
  EXPECT_TRUE(Condensed.isAcyclic());
  EXPECT_EQ(Condensed.numNodes(), 3u);
  EXPECT_EQ(Condensed.numEdges(), 2u);
}

// Brute-force SCC: nodes are equivalent iff mutually reachable.
static std::vector<uint32_t> bruteForceSCC(const Digraph &G) {
  uint32_t N = G.numNodes();
  std::vector<std::vector<bool>> Reach(N, std::vector<bool>(N, false));
  for (uint32_t I = 0; I != N; ++I)
    for (uint32_t Node : G.reachableFrom(I))
      Reach[I][Node] = true;
  std::vector<uint32_t> Label(N, ~0U);
  uint32_t Next = 0;
  for (uint32_t I = 0; I != N; ++I) {
    if (Label[I] != ~0U)
      continue;
    Label[I] = Next;
    for (uint32_t J = I + 1; J != N; ++J)
      if (Reach[I][J] && Reach[J][I])
        Label[J] = Next;
    ++Next;
  }
  return Label;
}

class TarjanRandomTest : public testing::TestWithParam<uint64_t> {};

TEST_P(TarjanRandomTest, AgreesWithBruteForce) {
  PRNG Rng(GetParam());
  uint32_t N = 5 + static_cast<uint32_t>(Rng.nextBelow(40));
  double P = 0.02 + Rng.nextDouble() * 0.2;
  Digraph G = randomDigraph(N, P, Rng);
  SCCResult SCCs = computeSCCs(G);
  std::vector<uint32_t> Reference = bruteForceSCC(G);
  for (uint32_t A = 0; A != N; ++A)
    for (uint32_t B = 0; B != N; ++B)
      EXPECT_EQ(SCCs.ComponentOf[A] == SCCs.ComponentOf[B],
                Reference[A] == Reference[B])
          << "nodes " << A << " and " << B;
  EXPECT_TRUE(condense(G, SCCs).isAcyclic());
}

INSTANTIATE_TEST_SUITE_P(Seeds, TarjanRandomTest,
                         testing::Range<uint64_t>(1, 26));

TEST(TarjanTest, LargeCycleDoesNotOverflowStack) {
  // Iterative Tarjan must handle very long chains/cycles.
  const uint32_t N = 300000;
  Digraph G(N);
  for (uint32_t I = 0; I + 1 != N; ++I)
    G.addEdge(I, I + 1);
  G.addEdge(N - 1, 0);
  SCCResult SCCs = computeSCCs(G);
  EXPECT_EQ(SCCs.numComponents(), 1u);
  EXPECT_EQ(SCCs.maxComponentSize(), N);
}

//===----------------------------------------------------------------------===//
// Nuutila SCC
//===----------------------------------------------------------------------===//

// Both algorithms number the finalized roots in the same DFS order, so
// not just the partition but the ComponentOf values themselves must be
// exactly equal — the interchangeability contract NuutilaSCC.h promises.
static void expectSameSCCs(const Digraph &G) {
  SCCResult Tarjan = computeSCCs(G);
  SCCResult Nuutila = computeSCCsNuutila(G);
  EXPECT_EQ(Nuutila.ComponentOf, Tarjan.ComponentOf);
  EXPECT_EQ(Nuutila.numComponents(), Tarjan.numComponents());
  ASSERT_EQ(Nuutila.Components.size(), Tarjan.Components.size());
  for (size_t I = 0; I != Nuutila.Components.size(); ++I) {
    std::vector<uint32_t> A = Nuutila.Components[I];
    std::vector<uint32_t> B = Tarjan.Components[I];
    std::sort(A.begin(), A.end());
    std::sort(B.begin(), B.end());
    EXPECT_EQ(A, B) << "component " << I;
  }
}

TEST(NuutilaTest, MatchesTarjanOnFixedGraphs) {
  {
    Digraph G(4);
    G.addEdge(0, 1);
    G.addEdge(1, 2);
    G.addEdge(2, 0);
    G.addEdge(2, 3);
    expectSameSCCs(G);
  }
  {
    Digraph G(6);
    G.addEdge(0, 1);
    G.addEdge(1, 2);
    G.addEdge(2, 0);
    G.addEdge(2, 3);
    G.addEdge(3, 4);
    G.addEdge(4, 3);
    G.addEdge(4, 5);
    expectSameSCCs(G);
  }
  {
    // Self loops stay trivial.
    Digraph G(2);
    G.addEdge(0, 0);
    G.addEdge(0, 1);
    SCCResult SCCs = computeSCCsNuutila(G);
    EXPECT_EQ(SCCs.numComponents(), 2u);
    EXPECT_EQ(SCCs.numNodesInNontrivialSCCs(), 0u);
    expectSameSCCs(G);
  }
  {
    Digraph Empty(0);
    EXPECT_EQ(computeSCCsNuutila(Empty).numComponents(), 0u);
  }
}

TEST(NuutilaTest, ReverseTopologicalNumbering) {
  // Component ids must number targets before sources (every edge of the
  // condensation goes from a higher id to a lower one) — the property
  // the offline preprocessing pass orders its labeling sweep by.
  Digraph G(6);
  G.addEdge(0, 1);
  G.addEdge(1, 2);
  G.addEdge(2, 0);
  G.addEdge(2, 3);
  G.addEdge(3, 4);
  G.addEdge(4, 3);
  G.addEdge(4, 5);
  SCCResult SCCs = computeSCCsNuutila(G);
  for (uint32_t Node = 0; Node != G.numNodes(); ++Node)
    for (uint32_t Succ : G.successors(Node))
      EXPECT_GE(SCCs.ComponentOf[Node], SCCs.ComponentOf[Succ]);
  EXPECT_TRUE(condense(G, SCCs).isAcyclic());
}

class NuutilaRandomTest : public testing::TestWithParam<uint64_t> {};

TEST_P(NuutilaRandomTest, MatchesTarjanOnRandomGraphs) {
  PRNG Rng(GetParam());
  uint32_t N = 5 + static_cast<uint32_t>(Rng.nextBelow(60));
  double P = 0.02 + Rng.nextDouble() * 0.2;
  Digraph G = randomDigraph(N, P, Rng);
  expectSameSCCs(G);
}

INSTANTIATE_TEST_SUITE_P(Seeds, NuutilaRandomTest,
                         testing::Range<uint64_t>(1, 26));

TEST(NuutilaTest, LargeCycleDoesNotOverflowStack) {
  const uint32_t N = 300000;
  Digraph G(N);
  for (uint32_t I = 0; I + 1 != N; ++I)
    G.addEdge(I, I + 1);
  G.addEdge(N - 1, 0);
  SCCResult SCCs = computeSCCsNuutila(G);
  EXPECT_EQ(SCCs.numComponents(), 1u);
  EXPECT_EQ(SCCs.maxComponentSize(), N);
}

//===----------------------------------------------------------------------===//
// Random graphs
//===----------------------------------------------------------------------===//

TEST(RandomGraphTest, EdgeCountNearExpectation) {
  PRNG Rng(21);
  const uint32_t N = 300;
  const double P = 0.05;
  Digraph G = randomDigraph(N, P, Rng);
  double Expected = static_cast<double>(N) * (N - 1) * P;
  EXPECT_GT(G.numEdges(), Expected * 0.85);
  EXPECT_LT(G.numEdges(), Expected * 1.15);
}

TEST(RandomGraphTest, ZeroAndOneProbability) {
  PRNG Rng(22);
  EXPECT_EQ(randomDigraph(20, 0.0, Rng).numEdges(), 0u);
  EXPECT_EQ(randomDigraph(20, 1.0, Rng).numEdges(), 20u * 19u);
}

TEST(RandomGraphTest, ConstraintShapeCounts) {
  PRNG Rng(23);
  RandomConstraintShape Shape = randomConstraintShape(100, 60, 0.05, Rng);
  EXPECT_EQ(Shape.NumVars, 100u);
  EXPECT_EQ(Shape.NumSources + Shape.NumSinks, 60u);
  double ExpectedVarVar = 100.0 * 100.0 * 0.05;
  EXPECT_GT(Shape.VarVar.size(), ExpectedVarVar * 0.7);
  EXPECT_LT(Shape.VarVar.size(), ExpectedVarVar * 1.3);
  for (auto [From, To] : Shape.VarVar) {
    EXPECT_LT(From, 100u);
    EXPECT_LT(To, 100u);
    EXPECT_NE(From, To);
  }
  for (auto [Source, Var] : Shape.SourceVar) {
    EXPECT_LT(Source, Shape.NumSources);
    EXPECT_LT(Var, 100u);
  }
  for (auto [Var, Sink] : Shape.VarSink) {
    EXPECT_LT(Var, 100u);
    EXPECT_LT(Sink, Shape.NumSinks);
  }
}

TEST(RandomGraphTest, DeterministicForSeed) {
  PRNG A(5), B(5);
  RandomConstraintShape SA = randomConstraintShape(50, 30, 0.1, A);
  RandomConstraintShape SB = randomConstraintShape(50, 30, 0.1, B);
  EXPECT_EQ(SA.VarVar, SB.VarVar);
  EXPECT_EQ(SA.SourceVar, SB.SourceVar);
  EXPECT_EQ(SA.VarSink, SB.VarSink);
}

//===----------------------------------------------------------------------===//
// DOT output
//===----------------------------------------------------------------------===//

TEST(DotWriterTest, ContainsNodesAndEdges) {
  Digraph G(3);
  G.addEdge(0, 1);
  G.addEdge(1, 2);
  G.addEdge(2, 1);
  DotOptions Options;
  Options.GraphName = "test";
  Options.ColorSCCs = true;
  Options.Label = [](uint32_t Node) { return "N" + std::to_string(Node); };
  std::string Dot = writeDot(G, Options);
  EXPECT_NE(Dot.find("digraph \"test\""), std::string::npos);
  EXPECT_NE(Dot.find("n0 -> n1"), std::string::npos);
  EXPECT_NE(Dot.find("label=\"N2\""), std::string::npos);
  // Nodes 1 and 2 form an SCC and should be colored.
  EXPECT_NE(Dot.find("fillcolor"), std::string::npos);
}
