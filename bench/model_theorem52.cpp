//===- bench/model_theorem52.cpp - Theorem 5.2 validation ------------------===//
//
// Part of the poce project.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Validates Theorem 5.2 — the expected number of variables reachable
/// through predecessor chains is small (< 2.2 at density p = 2/n), which
/// is why online detection costs constant time per edge:
///   1. analytic series vs the closed form (e^k - 1 - k)/k;
///   2. Monte-Carlo measurement on small random graphs;
///   3. measured mean chain length on the real constraint graphs of the
///      benchmark suite after an IF-Online solve, plus the solver's own
///      per-search step counter.
///
//===----------------------------------------------------------------------===//

#include "BenchCommon.h"

#include "model/Model.h"
#include "support/PRNG.h"

using namespace poce;
using namespace poce::bench;

int main() {
  std::printf("=== Theorem 5.2: expected chain-reachable variables ===\n\n");

  std::printf("(1) analytic series vs closed form:\n");
  TextTable Analytic({"k", "series (n=1e5)", "(e^k-1-k)/k"});
  for (double K : {0.5, 1.0, 2.0, 3.0, 4.0}) {
    Analytic.addRow(
        {formatDouble(K, 1),
         formatDouble(model::expectedReachable(100000, K / 100000.0), 3),
         formatDouble(model::reachableClosedForm(K), 3)});
  }
  Analytic.print();

  std::printf("\n(2) Monte-Carlo on random graphs (n=9, 3000 trials):\n");
  TextTable MC({"k", "simulated", "series"});
  PRNG Rng(0x52);
  for (double K : {1.0, 2.0, 3.0}) {
    model::SimulationResult Sim =
        model::simulateModel(9, 6, K / 9.0, 3000, Rng);
    MC.addRow({formatDouble(K, 1), formatDouble(Sim.Reachable, 3),
               formatDouble(model::expectedReachable(9, K / 9.0), 3)});
  }
  MC.print();

  std::printf("\n(3) measured on benchmark constraint graphs "
              "(IF-Online):\n");
  BenchEnv Env = BenchEnv::fromEnv();
  Env.print();
  TextTable Measured({"Benchmark", "LiveVars", "MeanReach",
                      "Steps/Search"});
  for (auto &Entry : prepareSuite(Env)) {
    SolverOptions Options =
        makeConfig(GraphForm::Inductive, CycleElim::Online);
    TermTable Terms(Entry->Constructors);
    ConstraintSolver Solver(Terms, Options);
    andersen::ConstraintGenerator Generator(Solver);
    Generator.run(Entry->Program->Unit);
    Solver.finalize();

    uint64_t Total = 0;
    uint32_t Live = 0;
    for (VarId Var = 0; Var != Solver.numVars(); ++Var) {
      if (!Solver.isLive(Var))
        continue;
      ++Live;
      Total += Solver.countPredChainReachable(Var);
    }
    double StepsPerSearch =
        Solver.stats().CycleSearches
            ? double(Solver.stats().CycleSearchSteps) /
                  double(Solver.stats().CycleSearches)
            : 0.0;
    Measured.addRow({Entry->Program->Spec.Name, formatGrouped(Live),
                     formatDouble(Live ? double(Total) / Live : 0.0, 2),
                     formatDouble(StepsPerSearch, 2)});
  }
  Measured.print();
  std::printf("\npaper: the bound at k = 2 is ~2.2, and it observed the "
              "reachable count \"close to two\" in practice.\n");
  return 0;
}
