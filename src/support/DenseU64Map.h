//===- support/DenseU64Map.h - Open-addressing uint64 map ------*- C++ -*-===//
//
// Part of the poce project.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// A fast open-addressing hash map from 64-bit integer keys to a trivially
/// copyable value type. The key 0xFFFFFFFFFFFFFFFF is reserved as the empty
/// marker. Used on the solver's hot paths (term hash-consing, oracle
/// witness lookup) where std::unordered_map's per-node allocations would
/// dominate.
///
//===----------------------------------------------------------------------===//

#ifndef POCE_SUPPORT_DENSEU64MAP_H
#define POCE_SUPPORT_DENSEU64MAP_H

#include "support/DenseU64Set.h"

#include <cassert>
#include <cstdint>
#include <cstdlib>
#include <cstring>
#include <type_traits>

namespace poce {

/// Open-addressing (linear probing) map from uint64 keys to trivially
/// copyable values.
template <typename ValueT> class DenseU64Map {
  static_assert(std::is_trivially_copyable_v<ValueT>,
                "DenseU64Map requires a trivially copyable value type");

public:
  static constexpr uint64_t EmptyKey = ~0ULL;

  DenseU64Map() = default;
  DenseU64Map(const DenseU64Map &RHS) { copyFrom(RHS); }
  DenseU64Map &operator=(const DenseU64Map &RHS) {
    if (this == &RHS)
      return *this;
    freeBuckets();
    copyFrom(RHS);
    return *this;
  }
  DenseU64Map(DenseU64Map &&RHS) noexcept
      : Keys(RHS.Keys), Values(RHS.Values), NumBuckets(RHS.NumBuckets),
        Size(RHS.Size) {
    RHS.Keys = nullptr;
    RHS.Values = nullptr;
    RHS.NumBuckets = 0;
    RHS.Size = 0;
  }
  DenseU64Map &operator=(DenseU64Map &&RHS) noexcept {
    if (this == &RHS)
      return *this;
    freeBuckets();
    Keys = RHS.Keys;
    Values = RHS.Values;
    NumBuckets = RHS.NumBuckets;
    Size = RHS.Size;
    RHS.Keys = nullptr;
    RHS.Values = nullptr;
    RHS.NumBuckets = 0;
    RHS.Size = 0;
    return *this;
  }
  ~DenseU64Map() { freeBuckets(); }

  size_t size() const { return Size; }
  bool empty() const { return Size == 0; }

  /// Inserts (Key, Value) if Key is absent; returns true on insertion.
  bool insert(uint64_t Key, ValueT Value) {
    assert(Key != EmptyKey && "reserved key inserted into DenseU64Map!");
    if ((Size + 1) * 4 >= NumBuckets * 3)
      grow();
    size_t Idx = findBucket(Key);
    if (Keys[Idx] == Key)
      return false;
    Keys[Idx] = Key;
    Values[Idx] = Value;
    ++Size;
    return true;
  }

  /// Returns a pointer to the value for \p Key, or null if absent. The
  /// pointer is invalidated by any insertion.
  ValueT *lookup(uint64_t Key) {
    assert(Key != EmptyKey && "reserved key queried in DenseU64Map!");
    if (!NumBuckets)
      return nullptr;
    size_t Idx = findBucket(Key);
    return Keys[Idx] == Key ? Values + Idx : nullptr;
  }

  const ValueT *lookup(uint64_t Key) const {
    return const_cast<DenseU64Map *>(this)->lookup(Key);
  }

  /// Returns a reference to the value for \p Key, default-inserting it if
  /// absent.
  ValueT &operator[](uint64_t Key) {
    assert(Key != EmptyKey && "reserved key inserted into DenseU64Map!");
    if ((Size + 1) * 4 >= NumBuckets * 3)
      grow();
    size_t Idx = findBucket(Key);
    if (Keys[Idx] != Key) {
      Keys[Idx] = Key;
      Values[Idx] = ValueT();
      ++Size;
    }
    return Values[Idx];
  }

  bool contains(uint64_t Key) const { return lookup(Key) != nullptr; }

  void clear() {
    if (Keys)
      std::memset(Keys, 0xFF, NumBuckets * sizeof(uint64_t));
    Size = 0;
  }

  /// Visits each (key, value) pair; \p F takes (uint64_t, ValueT).
  template <typename Fn> void forEach(Fn F) const {
    for (size_t I = 0; I != NumBuckets; ++I)
      if (Keys[I] != EmptyKey)
        F(Keys[I], Values[I]);
  }

private:
  size_t findBucket(uint64_t Key) const {
    size_t Mask = NumBuckets - 1;
    size_t Idx = static_cast<size_t>(denseU64Hash(Key)) & Mask;
    while (true) {
      if (Keys[Idx] == Key || Keys[Idx] == EmptyKey)
        return Idx;
      Idx = (Idx + 1) & Mask;
    }
  }

  void grow() {
    size_t NewNumBuckets = NumBuckets ? NumBuckets * 2 : 16;
    uint64_t *OldKeys = Keys;
    ValueT *OldValues = Values;
    size_t OldNumBuckets = NumBuckets;
    Keys =
        static_cast<uint64_t *>(std::malloc(NewNumBuckets * sizeof(uint64_t)));
    Values = static_cast<ValueT *>(std::malloc(NewNumBuckets * sizeof(ValueT)));
    if (!Keys || !Values)
      std::abort();
    std::memset(Keys, 0xFF, NewNumBuckets * sizeof(uint64_t));
    NumBuckets = NewNumBuckets;
    for (size_t I = 0; I != OldNumBuckets; ++I) {
      if (OldKeys[I] == EmptyKey)
        continue;
      size_t Idx = findBucket(OldKeys[I]);
      Keys[Idx] = OldKeys[I];
      Values[Idx] = OldValues[I];
    }
    std::free(OldKeys);
    std::free(OldValues);
  }

  void copyFrom(const DenseU64Map &RHS) {
    if (!RHS.NumBuckets)
      return;
    Keys = static_cast<uint64_t *>(
        std::malloc(RHS.NumBuckets * sizeof(uint64_t)));
    Values =
        static_cast<ValueT *>(std::malloc(RHS.NumBuckets * sizeof(ValueT)));
    if (!Keys || !Values)
      std::abort();
    std::memcpy(Keys, RHS.Keys, RHS.NumBuckets * sizeof(uint64_t));
    std::memcpy(Values, RHS.Values, RHS.NumBuckets * sizeof(ValueT));
    NumBuckets = RHS.NumBuckets;
    Size = RHS.Size;
  }

  void freeBuckets() {
    std::free(Keys);
    std::free(Values);
    Keys = nullptr;
    Values = nullptr;
    NumBuckets = 0;
    Size = 0;
  }

  uint64_t *Keys = nullptr;
  ValueT *Values = nullptr;
  size_t NumBuckets = 0;
  size_t Size = 0;
};

} // namespace poce

#endif // POCE_SUPPORT_DENSEU64MAP_H
