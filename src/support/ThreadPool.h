//===- support/ThreadPool.h - Work-stealing thread pool ---------*- C++ -*-===//
//
// Part of the poce project.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// A fixed-size thread pool built for the solver's wave-structured
/// parallelism: the caller submits one *wave* of independent chunks
/// (a parallelFor), helps execute it, and blocks until every chunk has
/// finished — a barrier the wavefront least-solution pass and the batch
/// suite solver rely on for their happens-before edges.
///
/// Execution lanes: a pool with N lanes runs N-1 background workers plus
/// the calling thread (lane 0), so `ThreadPool(1)` degenerates to an
/// inline sequential loop with no synchronization at all. Each lane owns a
/// deque of chunks; a lane pops work from the back of its own deque and,
/// when empty, steals from the front of another lane's — skewed waves
/// rebalance without a central queue. Every chunk callback receives its
/// lane index so callers can keep per-lane accumulators (e.g. SolverStats
/// deltas) and merge them after the wave; since the chunk decomposition is
/// deterministic and the merged quantities are sums, the merged totals are
/// identical for any lane count and any steal schedule.
///
/// Exceptions thrown by chunk callbacks are captured (first one wins),
/// the wave still runs to completion, and the exception is rethrown on
/// the calling thread — the pool stays usable for subsequent waves.
///
//===----------------------------------------------------------------------===//

#ifndef POCE_SUPPORT_THREADPOOL_H
#define POCE_SUPPORT_THREADPOOL_H

#include <atomic>
#include <condition_variable>
#include <cstddef>
#include <cstdint>
#include <deque>
#include <functional>
#include <memory>
#include <mutex>
#include <thread>
#include <vector>

namespace poce {

/// Fixed-size pool executing one wave of chunks at a time.
class ThreadPool {
public:
  /// Creates a pool with \p Lanes execution lanes (0 means one lane per
  /// hardware thread). Lane 0 is the thread that calls parallelFor; the
  /// pool spawns Lanes - 1 background workers.
  explicit ThreadPool(unsigned Lanes = 0);
  ~ThreadPool();

  ThreadPool(const ThreadPool &) = delete;
  ThreadPool &operator=(const ThreadPool &) = delete;

  unsigned numLanes() const { return NumLanes; }

  /// Runs \p Fn(Index, Lane) for every Index in [0, N), distributed over
  /// the lanes in chunks of \p Grain consecutive indices (0 picks a grain
  /// of about 8 chunks per lane). Blocks until all N calls have completed;
  /// rethrows the first callback exception.
  void parallelFor(size_t N, const std::function<void(size_t, unsigned)> &Fn,
                   size_t Grain = 0);

  /// Chunked variant: \p Fn(Begin, End, Lane) over half-open index ranges.
  void parallelForChunks(size_t N,
                         const std::function<void(size_t, size_t, unsigned)> &Fn,
                         size_t Grain = 0);

  /// Runs \p Fn(Item, Lane) over each level of \p Levels in order, with a
  /// full barrier between levels: every callback of level k has completed
  /// (and is visible to) every callback of level k+1 — the schedule the
  /// acyclic least-solution recurrence needs.
  template <typename T, typename Fn>
  void parallelForLevels(const std::vector<std::vector<T>> &Levels, Fn F,
                         size_t Grain = 0) {
    for (const std::vector<T> &Level : Levels) {
      // Degenerate levels are common in long dependency chains; run them
      // inline on lane 0 without building the wave std::function or
      // touching the barrier machinery. Identical semantics: a singleton
      // level would execute inline on lane 0 anyway (N <= Grain), with
      // exceptions propagating directly.
      if (Level.empty())
        continue;
      if (Level.size() == 1) {
        F(Level[0], 0);
        continue;
      }
      parallelFor(
          Level.size(),
          [&](size_t I, unsigned Lane) { F(Level[I], Lane); }, Grain);
    }
  }

  /// Chunks executed by a lane other than the one they were assigned to —
  /// observability for the stealing tests; monotone over the pool's life.
  uint64_t numSteals() const;

  /// Resolves a user-facing thread-count request: 0 means one lane per
  /// hardware thread (at least 1).
  static unsigned resolveThreads(unsigned Requested);

private:
  struct Chunk {
    size_t Begin, End;
  };
  struct Lane {
    std::mutex Mutex;
    std::deque<Chunk> Deque;
  };

  /// Pops a chunk for \p LaneIdx: back of its own deque first, then the
  /// front of the other lanes'. Returns false when no work is available.
  bool grabChunk(unsigned LaneIdx, Chunk &Out);
  /// Executes chunks as lane \p LaneIdx until none can be grabbed.
  void drainAsLane(unsigned LaneIdx);
  void workerLoop(unsigned LaneIdx);

  unsigned NumLanes;
  std::vector<std::unique_ptr<Lane>> Lanes;
  std::vector<std::thread> Workers;

  // Wave state, guarded by WaveMutex. WaveFn is set for the duration of
  // one parallelFor call; ChunksRemaining counts chunks not yet finished.
  std::mutex WaveMutex;
  std::condition_variable WaveStart; ///< Workers wait here between waves.
  std::condition_variable WaveDone;  ///< The caller waits here for the barrier.
  const std::function<void(size_t, size_t, unsigned)> *WaveFn = nullptr;
  uint64_t WaveGeneration = 0;
  size_t ChunksRemaining = 0;
  bool Stopping = false;

  std::mutex ErrorMutex;
  std::exception_ptr FirstError; ///< First callback exception of the wave.

  std::atomic<uint64_t> Steals{0};
};

} // namespace poce

#endif // POCE_SUPPORT_THREADPOOL_H
