//===- support/CommandLine.cpp - Minimal flag parsing ---------------------===//
//
// Part of the poce project.
//
//===----------------------------------------------------------------------===//

#include "support/CommandLine.h"

#include <cstdio>
#include <cstdlib>

using namespace poce;

void CommandLine::addFlag(const std::string &Name, bool *Storage,
                          const std::string &Help) {
  Options.push_back({Name, OptionKind::Flag, Storage, Help});
}

void CommandLine::addString(const std::string &Name, std::string *Storage,
                            const std::string &Help) {
  Options.push_back({Name, OptionKind::String, Storage, Help});
}

void CommandLine::addInt(const std::string &Name, int64_t *Storage,
                         const std::string &Help) {
  Options.push_back({Name, OptionKind::Int, Storage, Help});
}

void CommandLine::addDouble(const std::string &Name, double *Storage,
                            const std::string &Help) {
  Options.push_back({Name, OptionKind::Double, Storage, Help});
}

const CommandLine::Option *
CommandLine::findOption(const std::string &Name) const {
  for (const Option &Opt : Options)
    if (Opt.Name == Name)
      return &Opt;
  return nullptr;
}

bool CommandLine::applyValue(const Option &Opt, const std::string &Value) {
  char *End = nullptr;
  switch (Opt.Kind) {
  case OptionKind::Flag:
    *static_cast<bool *>(Opt.Storage) =
        Value != "false" && Value != "0" && Value != "no";
    return true;
  case OptionKind::String:
    *static_cast<std::string *>(Opt.Storage) = Value;
    return true;
  case OptionKind::Int: {
    long long Parsed = std::strtoll(Value.c_str(), &End, 0);
    if (!End || *End != '\0') {
      std::fprintf(stderr, "%s: invalid integer '%s' for --%s\n",
                   ToolName.c_str(), Value.c_str(), Opt.Name.c_str());
      return false;
    }
    *static_cast<int64_t *>(Opt.Storage) = Parsed;
    return true;
  }
  case OptionKind::Double: {
    double Parsed = std::strtod(Value.c_str(), &End);
    if (!End || *End != '\0') {
      std::fprintf(stderr, "%s: invalid number '%s' for --%s\n",
                   ToolName.c_str(), Value.c_str(), Opt.Name.c_str());
      return false;
    }
    *static_cast<double *>(Opt.Storage) = Parsed;
    return true;
  }
  }
  return false;
}

bool CommandLine::parse(int Argc, const char *const *Argv) {
  for (int I = 1; I < Argc; ++I) {
    std::string Arg = Argv[I];
    if (Arg == "--help" || Arg == "-h") {
      printHelp();
      return false;
    }
    if (Arg.rfind("--", 0) != 0) {
      Positionals.push_back(Arg);
      continue;
    }
    std::string Name = Arg.substr(2);
    std::string Value;
    bool HasValue = false;
    size_t Eq = Name.find('=');
    if (Eq != std::string::npos) {
      Value = Name.substr(Eq + 1);
      Name = Name.substr(0, Eq);
      HasValue = true;
    }
    const Option *Opt = findOption(Name);
    if (!Opt) {
      std::fprintf(stderr, "%s: unknown option '--%s' (try --help)\n",
                   ToolName.c_str(), Name.c_str());
      return false;
    }
    if (!HasValue) {
      if (Opt->Kind == OptionKind::Flag) {
        Value = "true";
      } else if (I + 1 < Argc) {
        Value = Argv[++I];
      } else {
        std::fprintf(stderr, "%s: option '--%s' requires a value\n",
                     ToolName.c_str(), Name.c_str());
        return false;
      }
    }
    if (!applyValue(*Opt, Value))
      return false;
  }
  return true;
}

void CommandLine::printHelp() const {
  std::printf("%s - %s\n\nOptions:\n", ToolName.c_str(), Overview.c_str());
  for (const Option &Opt : Options) {
    const char *Placeholder = "";
    switch (Opt.Kind) {
    case OptionKind::Flag:
      break;
    case OptionKind::String:
      Placeholder = "=<string>";
      break;
    case OptionKind::Int:
      Placeholder = "=<int>";
      break;
    case OptionKind::Double:
      Placeholder = "=<float>";
      break;
    }
    std::printf("  --%s%-12s %s\n", Opt.Name.c_str(), Placeholder,
                Opt.Help.c_str());
  }
}
