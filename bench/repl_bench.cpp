//===- bench/repl_bench.cpp - Replication catch-up trajectory bench -------===//
//
// Part of the poce project.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Measures the replication catch-up path end to end: an in-process
/// primary (net/Server.h over a Unix socket, snapshot + WAL armed) takes
/// a stream of acknowledged adds with one mid-stream checkpoint, then a
/// follower cold-bootstraps over the `replicate` handshake — snapshot
/// ship for the checkpointed prefix, WAL-record tail for the rest — and
/// the bench clocks the wall time from first byte to checksum-verified
/// convergence (`verify` replies equal on both sockets).
///
/// The baseline is the alternative a failed-over deployment actually
/// faces: a fresh from-scratch solve of the same base system plus the
/// same add lines. Correctness is cross-checked, not assumed — a sample
/// of `ls` answers served by the caught-up follower must checksum-equal
/// the fresh solve's local answers, or the run fails (exit 1).
///
///   repl_bench                       print the summary table
///   repl_bench --emit_trajectory     also append a timestamped run to
///                                    BENCH_repl.json (or
///                                    --emit_trajectory=PATH)
///
/// Environment: POCE_BENCH_SCALE scales the workload. Trajectory entries
/// carry a single-CPU caveat: on a one-core container the primary's
/// lanes, the follower's lanes, and the replication tail all time-share
/// one core, so the catch-up time includes scheduler queueing that a
/// two-host deployment would not see.
///
//===----------------------------------------------------------------------===//

#include "BenchCommon.h"
#include "net/Client.h"
#include "net/Replication.h"
#include "net/Server.h"
#include "serve/GraphSnapshot.h"
#include "serve/QueryEngine.h"
#include "serve/ServerCore.h"
#include "setcon/ConstraintFile.h"
#include "support/Metrics.h"
#include "support/PRNG.h"

#include <chrono>
#include <cstdio>
#include <cstring>
#include <memory>
#include <string>
#include <sys/stat.h>
#include <thread>
#include <unistd.h>
#include <vector>

using namespace poce;

namespace {

uint64_t nowUs() {
  return static_cast<uint64_t>(
      std::chrono::duration_cast<std::chrono::microseconds>(
          std::chrono::steady_clock::now().time_since_epoch())
          .count());
}

/// Same shape as serve_bench's base system: Vars copy-connected with
/// address-of edges through ref() so replayed adds and queries both have
/// real propagation work. Deterministic in Seed.
std::string makeBaseSystem(uint32_t Vars, uint32_t Cons, uint64_t Seed) {
  PRNG Rng(Seed);
  uint32_t Locs = std::max<uint32_t>(4, Vars / 4);
  std::string Text = "cons ref + + -\n";
  for (uint32_t L = 0; L != Locs; ++L)
    Text += "cons l" + std::to_string(L) + "\n";
  for (uint32_t V = 0; V != Vars; ++V)
    Text += "var v" + std::to_string(V) + "\n";
  for (uint32_t C = 0; C != Cons; ++C) {
    uint32_t A = static_cast<uint32_t>(Rng.nextBelow(Vars));
    uint32_t B = static_cast<uint32_t>(Rng.nextBelow(Vars));
    if (Rng.nextBelow(3) == 0) {
      uint32_t L = static_cast<uint32_t>(Rng.nextBelow(Locs));
      Text += "ref(l" + std::to_string(L) + ", v" + std::to_string(A) +
              ", v" + std::to_string(A) + ") <= v" + std::to_string(B) +
              "\n";
    } else {
      Text += "v" + std::to_string(A) + " <= v" + std::to_string(B) + "\n";
    }
  }
  return Text;
}

serve::SolverBundle buildBundle(const std::string &Text,
                                std::string &Error) {
  serve::SolverBundle Bundle;
  Bundle.Constructors = std::make_unique<ConstructorTable>();
  Bundle.Terms = std::make_unique<TermTable>(*Bundle.Constructors);
  Bundle.Solver = std::make_unique<ConstraintSolver>(
      *Bundle.Terms, makeConfig(GraphForm::Inductive, CycleElim::Online));
  ConstraintSystemFile System;
  Status Parsed = System.parse(Text);
  if (!Parsed) {
    Error = Parsed.toString();
    return Bundle;
  }
  System.emit(*Bundle.Solver);
  Bundle.Solver->materializeAllViews();
  return Bundle;
}

std::string mustAsk(net::LineClient &Client, const std::string &Line) {
  std::string Reply;
  Status Got = Client.request(Line, Reply);
  if (!Got.ok()) {
    std::fprintf(stderr, "repl_bench: '%s': %s\n", Line.c_str(),
                 Got.toString().c_str());
    std::exit(1);
  }
  return Reply;
}

uint64_t fnv1a(uint64_t Hash, const std::string &Text) {
  for (unsigned char C : Text) {
    Hash ^= C;
    Hash *= 1099511628211ULL;
  }
  return Hash;
}

uint64_t fileSize(const std::string &Path) {
  struct stat St;
  return ::stat(Path.c_str(), &St) == 0 ? static_cast<uint64_t>(St.st_size)
                                        : 0;
}

} // namespace

int main(int Argc, char **Argv) {
  std::string TrajectoryPath;
  for (int I = 1; I != Argc; ++I) {
    if (std::strcmp(Argv[I], "--emit_trajectory") == 0)
      TrajectoryPath = "BENCH_repl.json";
    else if (std::strncmp(Argv[I], "--emit_trajectory=", 18) == 0)
      TrajectoryPath = Argv[I] + 18;
    else {
      std::fprintf(stderr, "usage: repl_bench [--emit_trajectory[=PATH]]\n");
      return 1;
    }
  }

  double Scale = 1.0;
  if (const char *Env = std::getenv("POCE_BENCH_SCALE"))
    Scale = std::atof(Env);
  if (Scale <= 0)
    Scale = 1.0;

  const uint32_t Vars = std::max<uint32_t>(16, uint32_t(1200 * Scale));
  const uint32_t Cons = std::max<uint32_t>(8, uint32_t(900 * Scale));
  const uint32_t Records = std::max<uint32_t>(8, uint32_t(600 * Scale));
  const uint64_t Seed = 0x706f6365u;

  const char *Tmp = std::getenv("TMPDIR");
  std::string Work = std::string(Tmp ? Tmp : "/tmp") + "/poce_repl_bench." +
                     std::to_string(::getpid());
  std::string PrimSnap = Work + ".prim.snap";
  std::string PrimWal = Work + ".prim.wal";
  std::string PrimSock = Work + ".prim.sock";
  std::string FolSnap = Work + ".fol.snap";
  std::string FolWal = Work + ".fol.wal";
  std::string FolSock = Work + ".fol.sock";
  for (const std::string &P : {PrimSnap, PrimWal, FolSnap, FolWal})
    ::unlink(P.c_str());

  std::string BaseText = makeBaseSystem(Vars, Cons, Seed);
  std::string Error;
  serve::SolverBundle PrimBundle = buildBundle(BaseText, Error);
  if (!Error.empty()) {
    std::fprintf(stderr, "repl_bench: workload: %s\n", Error.c_str());
    return 1;
  }

  serve::ServerCoreConfig PrimConfig;
  PrimConfig.SnapshotPath = PrimSnap;
  PrimConfig.WalPath = PrimWal;
  serve::ServerCore Prim(std::move(PrimBundle), /*CacheCapacity=*/512,
                         PrimConfig);
  if (!Prim.valid()) {
    std::fprintf(stderr, "repl_bench: %s\n", Prim.initError().c_str());
    return 1;
  }
  Status Recovered = Prim.recover(0);
  if (!Recovered.ok()) {
    std::fprintf(stderr, "repl_bench: %s\n", Recovered.toString().c_str());
    return 1;
  }

  net::NetServerOptions PrimOpts;
  PrimOpts.UnixPath = PrimSock;
  PrimOpts.Lanes = 1;
  net::NetServer PrimServer(Prim, PrimOpts);
  Status Ready = PrimServer.init();
  if (!Ready.ok()) {
    std::fprintf(stderr, "repl_bench: %s\n", Ready.toString().c_str());
    return 1;
  }
  int PrimExit = -1;
  std::thread PrimLoop([&] { PrimExit = PrimServer.run(); });

  std::printf("# repl_bench: vars=%u base_cons=%u records=%u scale=%.2f\n",
              Vars, Cons, Records, Scale);

  // Feed phase: Records acknowledged adds over the socket, with one
  // explicit checkpoint half way through so the follower's bootstrap
  // exercises both halves of the catch-up path — snapshot bytes for the
  // checkpointed prefix, replayed WAL records for the tail.
  std::vector<std::string> AddedLines;
  AddedLines.reserve(Records);
  {
    net::LineClient Writer;
    if (!Writer.connectUnix(PrimSock).ok()) {
      std::fprintf(stderr, "repl_bench: writer connect failed\n");
      return 1;
    }
    PRNG Rng(Seed + 1);
    for (uint32_t K = 0; K != Records; ++K) {
      std::string Line;
      if (K % 2 == 0) {
        Line = "cons a" + std::to_string(K);
      } else if (K % 8 == 3) {
        Line = "v" + std::to_string(Rng.nextBelow(Vars)) + " <= v" +
               std::to_string(Rng.nextBelow(Vars));
      } else {
        Line = "a" + std::to_string(K - 1) + " <= v" +
               std::to_string(Rng.nextBelow(Vars));
      }
      if (mustAsk(Writer, "add " + Line) != "ok added") {
        std::fprintf(stderr, "repl_bench: add '%s' refused\n",
                     Line.c_str());
        return 1;
      }
      AddedLines.push_back(Line);
      if (K == Records / 2 &&
          mustAsk(Writer, "checkpoint").rfind("ok ", 0) != 0) {
        std::fprintf(stderr, "repl_bench: mid-stream checkpoint failed\n");
        return 1;
      }
    }
  }

  // Baseline: the from-scratch alternative — parse and solve the base
  // system plus every streamed line in one pass.
  std::string FullText = BaseText;
  for (const std::string &Line : AddedLines)
    FullText += Line + "\n";
  uint64_t FreshStart = nowUs();
  serve::SolverBundle FreshBundle = buildBundle(FullText, Error);
  uint64_t FreshUs = nowUs() - FreshStart;
  if (!Error.empty()) {
    std::fprintf(stderr, "repl_bench: fresh solve: %s\n", Error.c_str());
    return 1;
  }
  serve::QueryEngine Fresh(std::move(FreshBundle));
  if (!Fresh.valid()) {
    std::fprintf(stderr, "repl_bench: cross-check engine: %s\n",
                 Fresh.initError().c_str());
    return 1;
  }

  // Timed catch-up: cold bootstrap over the socket, recover from the
  // shipped snapshot, then tail WAL records until `verify` agrees.
  uint64_t CatchupStart = nowUs();
  Status Boot = net::ReplicationClient::coldBootstrap(
      /*TcpSpec=*/"", PrimSock, FolSnap, /*DeadlineMs=*/30000);
  if (!Boot.ok()) {
    std::fprintf(stderr, "repl_bench: bootstrap: %s\n",
                 Boot.toString().c_str());
    return 1;
  }

  serve::SolverBundle FolBundle;
  uint64_t FolBase = 0;
  Status Loaded = serve::GraphSnapshot::load(FolSnap, FolBundle, &FolBase);
  if (!Loaded.ok()) {
    std::fprintf(stderr, "repl_bench: %s\n", Loaded.toString().c_str());
    return 1;
  }
  FolBundle.Solver->materializeAllViews();
  serve::ServerCoreConfig FolConfig;
  FolConfig.SnapshotPath = FolSnap;
  FolConfig.WalPath = FolWal;
  serve::ServerCore Fol(std::move(FolBundle), /*CacheCapacity=*/512,
                        FolConfig);
  if (!Fol.valid()) {
    std::fprintf(stderr, "repl_bench: %s\n", Fol.initError().c_str());
    return 1;
  }
  Status FolRecovered = Fol.recover(FolBase);
  if (!FolRecovered.ok()) {
    std::fprintf(stderr, "repl_bench: %s\n",
                 FolRecovered.toString().c_str());
    return 1;
  }

  net::NetServerOptions FolOpts;
  FolOpts.UnixPath = FolSock;
  FolOpts.Lanes = 1;
  FolOpts.ReadOnly = true;
  net::NetServer FolServer(Fol, FolOpts);
  net::ReplicationClient::Options ReplOpts;
  ReplOpts.UnixPath = PrimSock;
  ReplOpts.InitialBase = Fol.walBaseId();
  ReplOpts.InitialSeq = Fol.walRecords();
  ReplOpts.TickMs = 50;
  ReplOpts.JitterSeed = 17;
  net::ReplicationClient Repl(FolServer, ReplOpts);
  Ready = FolServer.init();
  if (!Ready.ok()) {
    std::fprintf(stderr, "repl_bench: follower: %s\n",
                 Ready.toString().c_str());
    return 1;
  }
  int FolExit = -1;
  std::thread FolLoop([&] { FolExit = FolServer.run(); });
  Repl.start();

  net::LineClient PrimCheck, FolCheck;
  if (!PrimCheck.connectUnix(PrimSock).ok() ||
      !FolCheck.connectUnix(FolSock).ok()) {
    std::fprintf(stderr, "repl_bench: verify connect failed\n");
    return 1;
  }
  bool Converged = false;
  uint64_t ConvergeDeadline = nowUs() + 120 * 1000 * 1000ULL;
  while (nowUs() < ConvergeDeadline) {
    std::string PrimSum = mustAsk(PrimCheck, "verify");
    std::string FolSum = mustAsk(FolCheck, "verify");
    if (PrimSum == FolSum) {
      Converged = true;
      break;
    }
    if (std::getenv("POCE_REPL_BENCH_DEBUG"))
      std::fprintf(stderr, "debug: prim '%s' fol '%s' applied=%llu\n",
                   PrimSum.c_str(), FolSum.c_str(),
                   (unsigned long long)MetricsRegistry::global()
                       .counter("poce_repl_records_applied_total")
                       .value());
    std::this_thread::sleep_for(std::chrono::milliseconds(2));
  }
  uint64_t CatchupUs = nowUs() - CatchupStart;
  if (!Converged) {
    std::fprintf(stderr, "repl_bench: follower never converged\n");
    return 1;
  }

  // Correctness: the caught-up follower's served answers must match the
  // fresh solve, variable for variable.
  uint64_t ServedSum = 14695981039346656037ULL;
  uint64_t FreshSum = 14695981039346656037ULL;
  uint32_t SampleStep = std::max<uint32_t>(1, Vars / 256);
  for (uint32_t V = 0; V < Vars; V += SampleStep) {
    std::string Name = "v" + std::to_string(V);
    std::string Served = mustAsk(FolCheck, "ls " + Name);
    uint32_t Var = Fresh.varOf(Name);
    std::string Local =
        Var == serve::QueryEngine::NotFound
            ? std::string("err")
            : "ok " + serve::render::renderSet(Fresh.ls(Var));
    ServedSum = fnv1a(ServedSum, Served);
    FreshSum = fnv1a(FreshSum, Local);
  }
  bool ChecksumMatch = ServedSum == FreshSum;

  MetricsRegistry &Registry = MetricsRegistry::global();
  uint64_t Applied =
      Registry.counter("poce_repl_records_applied_total").value();
  uint64_t SnapBytes = fileSize(FolSnap);

  Repl.stop();
  std::string Bye = mustAsk(FolCheck, "shutdown");
  FolLoop.join();
  if (Bye != "ok shutting_down" || FolExit != 0) {
    std::fprintf(stderr,
                 "repl_bench: follower shutdown failed (reply '%s', "
                 "exit %d)\n",
                 Bye.c_str(), FolExit);
    return 1;
  }
  Bye = mustAsk(PrimCheck, "shutdown");
  PrimLoop.join();
  if (Bye != "ok shutting_down" || PrimExit != 0) {
    std::fprintf(stderr,
                 "repl_bench: primary shutdown failed (reply '%s', "
                 "exit %d)\n",
                 Bye.c_str(), PrimExit);
    return 1;
  }

  double CatchupS = double(CatchupUs) / 1e6;
  double FreshS = double(FreshUs) / 1e6;
  double Speedup = CatchupUs > 0 ? FreshS / CatchupS : 0;
  std::printf("catch-up:     %.3fs to converged `verify` "
              "(bootstrap %llu snapshot bytes, %llu records applied)\n",
              CatchupS, (unsigned long long)SnapBytes,
              (unsigned long long)Applied);
  std::printf("fresh solve:  %.3fs for the same base + %u streamed "
              "lines\n",
              FreshS, Records);
  std::printf("catch-up vs fresh solve: %.2fx\n", Speedup);
  std::printf("answers vs fresh solve: %s\n",
              ChecksumMatch ? "checksums match" : "MISMATCH");

  for (const std::string &P : {PrimSnap, PrimWal, FolSnap, FolWal})
    ::unlink(P.c_str());
  if (!ChecksumMatch)
    return 1;

  if (!TrajectoryPath.empty()) {
    std::string Prior = bench::readPriorRuns(TrajectoryPath);
    std::FILE *File = std::fopen(TrajectoryPath.c_str(), "w");
    if (!File) {
      std::fprintf(stderr, "repl_bench: cannot open '%s'\n",
                   TrajectoryPath.c_str());
      return 1;
    }
    std::fprintf(File, "{\n  \"bench\": \"repl\",\n  \"runs\": [\n");
    if (!Prior.empty())
      std::fprintf(File, "%s,\n", Prior.c_str());
    std::fprintf(
        File,
        "  {\"timestamp\": \"%s\", \"mode\": \"repl_bench\",\n"
        "   \"scale\": %.2f,\n"
        "   \"note\": \"single-CPU container: primary, follower, and "
        "the replication tail time-share one core, so catch-up time "
        "includes scheduler queueing a two-host deployment would not "
        "see\",\n"
        "   \"entries\": [\n"
        "    {\"name\": \"repl_catchup\", \"vars\": %u, \"base_cons\": "
        "%u,\n"
        "     \"records\": %u, \"snapshot_bytes\": %llu,\n"
        "     \"records_applied\": %llu, \"catchup_s\": %.6f,\n"
        "     \"fresh_solve_s\": %.6f, \"speedup_vs_fresh\": %.3f,\n"
        "     \"answers_checksum_match\": %s}\n"
        "   ]}\n  ]\n}\n",
        bench::utcTimestamp().c_str(), Scale, Vars, Cons, Records,
        (unsigned long long)SnapBytes, (unsigned long long)Applied,
        CatchupS, FreshS, Speedup, ChecksumMatch ? "true" : "false");
    std::fclose(File);
    std::printf("# appended repl_bench run to %s\n",
                TrajectoryPath.c_str());
  }
  return 0;
}
