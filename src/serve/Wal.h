//===- serve/Wal.h - Write-ahead log of accepted constraints ----*- C++ -*-===//
//
// Part of the poce project.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// A write-ahead log of incremental constraint lines. The serving
/// durability invariant is
///
///     acknowledged  =>  durable  =>  replayed
///
/// scserved appends every `add` line to the WAL (record + fsync) BEFORE
/// applying it to the solver, and only acknowledges after both
/// succeeded. Warm recovery is: load the last good snapshot, then replay
/// the WAL's lines through the engine — which reproduces the crashed
/// process's state exactly (a solve is a deterministic function of the
/// constraint sequence). A checkpoint (atomic snapshot save) resets the
/// WAL to empty, bounding replay time.
///
/// File layout (little-endian):
///
///   header:  "POCEWAL\0" (8)  |  u32 format version
///   record:  u32 payload length  |  u64 fnv1a64(payload)  |  payload
///
/// A crash mid-append leaves a torn final record; replay() detects it
/// (length overruns the file, or checksum mismatch) and reports the
/// prefix of intact records, which open() truncates away. Torn tails are
/// expected states, not corruption: they hold only unacknowledged lines.
///
//===----------------------------------------------------------------------===//

#ifndef POCE_SERVE_WAL_H
#define POCE_SERVE_WAL_H

#include "support/Status.h"

#include <cstdint>
#include <string>
#include <vector>

namespace poce {
namespace serve {

/// What replay() recovered from a WAL file.
struct WalContents {
  /// Intact records, oldest first.
  std::vector<std::string> Lines;
  /// Byte length of the intact prefix (header + whole records).
  uint64_t ValidBytes = 0;
  /// Bytes of torn/corrupt tail past the intact prefix (0 = clean file).
  uint64_t TornBytes = 0;
};

/// Append-only log handle. Not thread-safe; scserved is single-threaded
/// at the protocol layer.
class WriteAheadLog {
public:
  WriteAheadLog() = default;
  ~WriteAheadLog() { close(); }
  WriteAheadLog(const WriteAheadLog &) = delete;
  WriteAheadLog &operator=(const WriteAheadLog &) = delete;

  /// Parses \p Path without opening it for writing. A missing file is ok
  /// (empty contents); a bad header or a file that is all tail is an
  /// error. Torn tails are reported, not failed.
  static Expected<WalContents> replay(const std::string &Path);

  /// Opens \p Path for appending: creates it (with header, fsynced along
  /// with its directory) if missing, otherwise validates the header and
  /// truncates any torn tail. Fails if already open.
  Status open(const std::string &Path);

  /// Appends one record and fsyncs. On any failure the file is truncated
  /// back to its pre-append length, so the log never accumulates torn
  /// records from failed appends (a crash can still tear the tail).
  /// Failpoints: `wal.append.pre` (before any bytes: crash here = record
  /// absent), `wal.append.mid` (after half the record: crash here = torn
  /// tail), either in error mode injects a failure.
  Status append(const std::string &Line);

  /// Truncates the log back to exactly \p Bytes (a value previously read
  /// from sizeBytes(), i.e. a record boundary). Used to drop a
  /// just-appended record whose application was rejected, keeping WAL
  /// contents == accepted lines.
  Status truncateTo(uint64_t Bytes);

  /// Empties the log back to just the header (after a checkpoint made
  /// the records redundant).
  Status reset();

  bool isOpen() const { return Fd >= 0; }
  uint64_t sizeBytes() const { return Size; }
  uint64_t records() const { return RecordOffsets.size(); }
  const std::string &path() const { return Path; }

  void close();

  static constexpr char Magic[8] = {'P', 'O', 'C', 'E', 'W', 'A', 'L', '\0'};
  static constexpr uint32_t Version = 1;
  static constexpr size_t HeaderSize = 12;

private:
  int Fd = -1;
  std::string Path;
  uint64_t Size = 0;
  /// Start offset of every record, so truncateTo can keep records() exact.
  std::vector<uint64_t> RecordOffsets;
};

} // namespace serve
} // namespace poce

#endif // POCE_SERVE_WAL_H
