file(REMOVE_RECURSE
  "CMakeFiles/poce_minic.dir/AST.cpp.o"
  "CMakeFiles/poce_minic.dir/AST.cpp.o.d"
  "CMakeFiles/poce_minic.dir/Diagnostics.cpp.o"
  "CMakeFiles/poce_minic.dir/Diagnostics.cpp.o.d"
  "CMakeFiles/poce_minic.dir/Lexer.cpp.o"
  "CMakeFiles/poce_minic.dir/Lexer.cpp.o.d"
  "CMakeFiles/poce_minic.dir/Parser.cpp.o"
  "CMakeFiles/poce_minic.dir/Parser.cpp.o.d"
  "CMakeFiles/poce_minic.dir/PrettyPrinter.cpp.o"
  "CMakeFiles/poce_minic.dir/PrettyPrinter.cpp.o.d"
  "libpoce_minic.a"
  "libpoce_minic.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/poce_minic.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
