//===- bench/fig10_if_vs_sf.cpp - Reproduction of Figure 10 ----------------===//
//
// Part of the poce project.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Regenerates the paper's Figure 10: the performance benefit of inductive
/// over standard form under online elimination, as the ratio of SF-Online
/// to IF-Online analysis time against program size. Expected shape:
/// IF-Online is consistently faster for medium and large programs (the
/// paper reports up to 3.8x for the largest), while tiny programs may go
/// either way.
///
//===----------------------------------------------------------------------===//

#include "BenchCommon.h"

using namespace poce;
using namespace poce::bench;

int main() {
  BenchEnv Env = BenchEnv::fromEnv();
  std::printf("=== Figure 10: SF-Online time / IF-Online time ===\n");
  Env.print();

  TextTable Table({"Benchmark", "AST", "SF-Online(s)", "IF-Online(s)",
                   "SF/IF"});
  for (auto &Entry : prepareSuite(Env)) {
    MeasuredRun SF =
        runConfig(*Entry, GraphForm::Standard, CycleElim::Online, Env);
    MeasuredRun IF =
        runConfig(*Entry, GraphForm::Inductive, CycleElim::Online, Env);
    Table.addRow({Entry->Program->Spec.Name,
                  formatGrouped(Entry->Program->AstNodes),
                  formatDouble(SF.BestSeconds, 3),
                  formatDouble(IF.BestSeconds, 3),
                  formatDouble(SF.BestSeconds /
                                   std::max(IF.BestSeconds, 1e-9),
                               2)});
  }
  Table.print();
  std::printf("\nRatios above 1 mean inductive form wins.\n");
  return 0;
}
