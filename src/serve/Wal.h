//===- serve/Wal.h - Write-ahead log of accepted constraints ----*- C++ -*-===//
//
// Part of the poce project.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// A write-ahead log of incremental constraint lines. The serving
/// durability invariant is
///
///     acknowledged  =>  durable  =>  replayed
///
/// scserved appends every `add` line to the WAL (record + fsync) BEFORE
/// applying it to the solver, and only acknowledges after both
/// succeeded. Warm recovery is: load the last good snapshot, then replay
/// the WAL's lines through the engine — which reproduces the crashed
/// process's state exactly (a solve is a deterministic function of the
/// constraint sequence). A checkpoint (atomic snapshot save) resets the
/// WAL to empty, bounding replay time.
///
/// File layout (little-endian):
///
///   header:  "POCEWAL\0" (8)  |  u32 format version
///            |  u64 base id (payload checksum of the snapshot this log
///               extends; 0 when the base is a fresh .scs solve)
///   record:  u32 payload length  |  u64 fnv1a64(payload)  |  payload
///
/// The base id makes the checkpoint protocol crash-atomic even though
/// the snapshot rename and the WAL reset are two separate durable
/// steps: a checkpoint renames the new snapshot into place first, then
/// reset()s the WAL stamping the new snapshot's checksum. A crash in
/// between leaves a WAL whose base id no longer matches the snapshot —
/// every one of its records is already contained in the renamed
/// snapshot, so recovery recognizes the log as stale by the mismatch
/// and skips it instead of re-applying (or dying on) its lines.
///
/// A crash mid-append leaves a torn final record; replay() detects it
/// (length overruns the file, or checksum mismatch) and reports the
/// prefix of intact records, which open() truncates away. A file
/// shorter than the header is a crash at creation time: the header is
/// fsynced before the first append can happen, so no record can have
/// been acknowledged — replay() reports it as empty with a torn header
/// and open() rewrites the header. Torn tails and torn headers are
/// expected states, not corruption: they hold only unacknowledged
/// bytes.
///
//===----------------------------------------------------------------------===//

#ifndef POCE_SERVE_WAL_H
#define POCE_SERVE_WAL_H

#include "support/Status.h"

#include <cstdint>
#include <string>
#include <vector>

namespace poce {
namespace serve {

/// Record payload prefix marking a retraction: `!retract <line>` undoes
/// the earlier record whose payload is exactly `<line>`. The `!` cannot
/// start an accepted constraint line, so add records and retraction
/// records share one payload namespace unambiguously — and retractions
/// ride the replication stream (`r <seq> !retract <line>`) unchanged.
inline constexpr char WalRetractPrefix[] = "!retract ";

/// What replay() recovered from a WAL file.
struct WalContents {
  /// Intact records, oldest first.
  std::vector<std::string> Lines;
  /// Payload checksum of the snapshot this log extends (header field).
  uint64_t BaseId = 0;
  /// Byte length of the intact prefix (header + whole records).
  uint64_t ValidBytes = 0;
  /// Bytes of torn/corrupt tail past the intact prefix (0 = clean file).
  uint64_t TornBytes = 0;
  /// False when the file is shorter than the header (a crash during WAL
  /// creation): Lines is empty, BaseId is 0, and every byte is torn.
  bool HeaderIntact = true;
  /// The header's format version (2 or 3). open() upgrades a version-2
  /// header to the current version in place so live logs are always
  /// current-version.
  uint32_t FileVersion = 0;
};

/// Append-only log handle. Not thread-safe; scserved is single-threaded
/// at the protocol layer.
class WriteAheadLog {
public:
  WriteAheadLog() = default;
  ~WriteAheadLog() { close(); }
  WriteAheadLog(const WriteAheadLog &) = delete;
  WriteAheadLog &operator=(const WriteAheadLog &) = delete;

  /// Parses \p Path without opening it for writing. A missing file is ok
  /// (empty contents), and so is a file shorter than the header
  /// (HeaderIntact=false — see above); a bad magic is Corruption, and a
  /// version outside {2, 3} is WalVersion (the clear "this binary is too
  /// old for this log" refusal — never silently misread). Version-2
  /// files are accepted for compatibility, but a version-2 file carrying
  /// a retraction record is also WalVersion: only a version-3 writer
  /// emits those, so the header must have been tampered with or
  /// downgraded. Torn tails are reported, not failed.
  static Expected<WalContents> replay(const std::string &Path);

  /// Opens \p Path for appending against the base snapshot identified
  /// by \p BaseId: creates the file (header fsynced along with its
  /// directory) if missing, rewrites the header if torn, validates it
  /// and truncates any torn tail otherwise. A file whose base id
  /// differs from \p BaseId does not extend the caller's snapshot; its
  /// records are DISCARDED and the header re-stamped — callers must
  /// replay() first and decide (with a warning) that the mismatch is a
  /// stale log, not a misconfiguration, before opening. A valid
  /// version-2 file kept intact has its header version upgraded to the
  /// current version in place (4-byte pwrite + fsync), so a log that is
  /// open for appending is always current-version. Fails if already
  /// open.
  Status open(const std::string &Path, uint64_t BaseId = 0);

  /// Appends one record and fsyncs. On any failure the file is truncated
  /// back to its pre-append length, so the log never accumulates torn
  /// records from failed appends (a crash can still tear the tail).
  /// Failpoints: `wal.append.pre` (before any bytes: crash here = record
  /// absent), `wal.append.mid` (after half the record: crash here = torn
  /// tail), either in error mode injects a failure.
  Status append(const std::string &Line);

  /// Truncates the log back to exactly \p Bytes (a value previously read
  /// from sizeBytes(), i.e. a record boundary). Used to drop a
  /// just-appended record whose application was rejected, keeping WAL
  /// contents == accepted lines.
  Status truncateTo(uint64_t Bytes);

  /// Empties the log back to just the header and stamps \p NewBaseId
  /// (the checksum of the snapshot that made the records redundant).
  /// Truncates before stamping: a crash in between leaves an empty log
  /// with the old base id, which the next open() recognizes as stale
  /// and re-stamps — never old records paired with the new id.
  Status reset(uint64_t NewBaseId);

  /// reset() keeping the current base id (the records became redundant
  /// without the base snapshot changing).
  Status reset() { return reset(BaseId); }

  bool isOpen() const { return Fd >= 0; }
  uint64_t sizeBytes() const { return Size; }
  uint64_t records() const { return RecordOffsets.size(); }
  uint64_t baseId() const { return BaseId; }
  const std::string &path() const { return Path; }

  void close();

  static constexpr char Magic[8] = {'P', 'O', 'C', 'E', 'W', 'A', 'L', '\0'};
  /// Version 2 added the base id to the header; version 3 added
  /// retraction records (`!retract <line>` payloads). Version-2 files
  /// are still readable — the record encoding is unchanged — but a
  /// version-2 reader must refuse version-3 logs, since skipping a
  /// retraction record would silently replay retracted constraints.
  static constexpr uint32_t Version = 3;
  static constexpr size_t HeaderSize = 20;

private:
  int Fd = -1;
  std::string Path;
  uint64_t Size = 0;
  uint64_t BaseId = 0;
  /// Start offset of every record, so truncateTo can keep records() exact.
  std::vector<uint64_t> RecordOffsets;
};

} // namespace serve
} // namespace poce

#endif // POCE_SERVE_WAL_H
