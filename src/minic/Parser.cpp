//===- minic/Parser.cpp - MiniC recursive-descent parser -------------------===//
//
// Part of the poce project.
//
//===----------------------------------------------------------------------===//

#include "minic/Parser.h"

#include <cstdlib>

using namespace poce;
using namespace poce::minic;

Parser::Parser(std::vector<Token> Tokens, Diagnostics &Diags,
               TranslationUnit &Unit)
    : Tokens(std::move(Tokens)), Diags(Diags), Unit(Unit) {
  assert(!this->Tokens.empty() &&
         this->Tokens.back().is(TokenKind::EndOfFile) &&
         "token stream must end with EndOfFile!");
}

//===----------------------------------------------------------------------===//
// Token stream
//===----------------------------------------------------------------------===//

const Token &Parser::peek(unsigned Ahead) const {
  size_t Index = Pos + Ahead;
  if (Index >= Tokens.size())
    Index = Tokens.size() - 1; // EndOfFile.
  return Tokens[Index];
}

Token Parser::consume() {
  Token Tok = Tokens[Pos];
  if (Pos + 1 < Tokens.size())
    ++Pos;
  return Tok;
}

bool Parser::match(TokenKind Kind) {
  if (!current().is(Kind))
    return false;
  consume();
  return true;
}

bool Parser::expect(TokenKind Kind, const char *Context) {
  if (match(Kind))
    return true;
  Diags.error(current().Loc, std::string("expected ") + tokenKindName(Kind) +
                                 " " + Context + ", found " +
                                 tokenKindName(current().Kind));
  return false;
}

void Parser::synchronizeToDeclBoundary() {
  while (!current().is(TokenKind::EndOfFile)) {
    if (match(TokenKind::Semi))
      return;
    if (current().is(TokenKind::RBrace)) {
      consume();
      return;
    }
    consume();
  }
}

void Parser::synchronizeToStmtBoundary() {
  while (!current().is(TokenKind::EndOfFile)) {
    if (match(TokenKind::Semi))
      return;
    if (current().is(TokenKind::RBrace))
      return; // Let the enclosing block consume it.
    consume();
  }
}

//===----------------------------------------------------------------------===//
// Declaration specifiers
//===----------------------------------------------------------------------===//

static bool isBuiltinTypeKeyword(TokenKind Kind) {
  switch (Kind) {
  case TokenKind::KwVoid:
  case TokenKind::KwChar:
  case TokenKind::KwInt:
  case TokenKind::KwFloat:
  case TokenKind::KwDouble:
  case TokenKind::KwLong:
  case TokenKind::KwShort:
  case TokenKind::KwSigned:
  case TokenKind::KwUnsigned:
    return true;
  default:
    return false;
  }
}

static bool isQualifierKeyword(TokenKind Kind) {
  switch (Kind) {
  case TokenKind::KwConst:
  case TokenKind::KwStatic:
  case TokenKind::KwExtern:
    return true;
  default:
    return false;
  }
}

bool Parser::startsDeclSpecifiers() const {
  const Token &Tok = current();
  if (isBuiltinTypeKeyword(Tok.Kind) || isQualifierKeyword(Tok.Kind))
    return true;
  switch (Tok.Kind) {
  case TokenKind::KwStruct:
  case TokenKind::KwUnion:
  case TokenKind::KwEnum:
  case TokenKind::KwTypedef:
    return true;
  case TokenKind::Identifier:
    return TypedefNames.count(Tok.Text) != 0;
  default:
    return false;
  }
}

bool Parser::parseDeclSpecifiers(DeclSpec &Spec) {
  bool Any = false;
  bool HasType = false;

  auto appendText = [&](const std::string &Text) {
    if (!Spec.Text.empty())
      Spec.Text += " ";
    Spec.Text += Text;
  };

  while (true) {
    const Token &Tok = current();
    if (isQualifierKeyword(Tok.Kind)) {
      consume();
      Any = true;
      continue;
    }
    if (Tok.is(TokenKind::KwTypedef)) {
      consume();
      Spec.IsTypedef = true;
      Any = true;
      continue;
    }
    if (isBuiltinTypeKeyword(Tok.Kind)) {
      // Strip the quotes from the keyword spelling ("'int'" -> "int").
      std::string Name = tokenKindName(Tok.Kind);
      appendText(Name.substr(1, Name.size() - 2));
      consume();
      Any = true;
      HasType = true;
      continue;
    }
    if (Tok.is(TokenKind::KwStruct) || Tok.is(TokenKind::KwUnion)) {
      bool IsUnion = Tok.is(TokenKind::KwUnion);
      SourceLocation Loc = Tok.Loc;
      consume();
      std::string Tag;
      if (current().is(TokenKind::Identifier))
        Tag = consume().Text;
      if (current().is(TokenKind::LBrace))
        parseRecordBody(Loc, Tag, IsUnion);
      appendText((IsUnion ? "union " : "struct ") + Tag);
      Any = true;
      HasType = true;
      continue;
    }
    if (Tok.is(TokenKind::KwEnum)) {
      SourceLocation Loc = Tok.Loc;
      consume();
      std::string Tag;
      if (current().is(TokenKind::Identifier))
        Tag = consume().Text;
      if (current().is(TokenKind::LBrace))
        parseEnumBody(Loc, Tag);
      appendText("enum " + Tag);
      Any = true;
      HasType = true;
      continue;
    }
    if (Tok.is(TokenKind::Identifier) && !HasType &&
        TypedefNames.count(Tok.Text)) {
      appendText(Tok.Text);
      consume();
      Any = true;
      HasType = true;
      continue;
    }
    break;
  }
  return Any;
}

RecordDecl *Parser::parseRecordBody(SourceLocation Loc, std::string Tag,
                                    bool IsUnion) {
  expect(TokenKind::LBrace, "to begin struct body");
  std::vector<VarDecl *> Fields;
  while (!current().is(TokenKind::RBrace) &&
         !current().is(TokenKind::EndOfFile)) {
    DeclSpec Spec;
    if (!parseDeclSpecifiers(Spec)) {
      Diags.error(current().Loc, "expected field declaration");
      synchronizeToStmtBoundary();
      continue;
    }
    // Field declarator list.
    while (true) {
      Declarator D;
      if (!parseDeclarator(D)) {
        synchronizeToStmtBoundary();
        break;
      }
      // Bit-fields: "int x : 3".
      if (match(TokenKind::Colon))
        parseConditionalExpr();
      Fields.push_back(Unit.create<VarDecl>(D.Loc, D.Name,
                                            Spec.Text + D.Text,
                                            /*Init=*/nullptr));
      if (match(TokenKind::Comma))
        continue;
      expect(TokenKind::Semi, "after field declaration");
      break;
    }
  }
  expect(TokenKind::RBrace, "to end struct body");
  RecordDecl *Record =
      Unit.create<RecordDecl>(Loc, std::move(Tag), IsUnion, std::move(Fields));
  Unit.Decls.push_back(Record);
  return Record;
}

EnumDecl *Parser::parseEnumBody(SourceLocation Loc, std::string Tag) {
  expect(TokenKind::LBrace, "to begin enum body");
  std::vector<std::string> Enumerators;
  while (current().is(TokenKind::Identifier)) {
    Enumerators.push_back(consume().Text);
    if (match(TokenKind::Equal))
      parseConditionalExpr();
    if (!match(TokenKind::Comma))
      break;
  }
  expect(TokenKind::RBrace, "to end enum body");
  EnumDecl *Enum =
      Unit.create<EnumDecl>(Loc, std::move(Tag), std::move(Enumerators));
  Unit.Decls.push_back(Enum);
  return Enum;
}

//===----------------------------------------------------------------------===//
// Declarators
//===----------------------------------------------------------------------===//

bool Parser::parseDeclarator(Declarator &D) {
  while (match(TokenKind::Star)) {
    D.Text += "*";
    while (match(TokenKind::KwConst)) {
    }
  }
  return parseDirectDeclarator(D, /*SawPointer=*/!D.Text.empty());
}

bool Parser::parseDirectDeclarator(Declarator &D, bool SawPointer) {
  bool Grouped = false;
  if (current().is(TokenKind::Identifier)) {
    Token Tok = consume();
    D.Name = Tok.Text;
    D.Loc = Tok.Loc;
  } else if (current().is(TokenKind::LParen) &&
             !peek(1).is(TokenKind::RParen) && !lparenStartsTypeName()) {
    // Grouping parentheses: "(*fp)(int)", "(*tab[4])(void)".
    consume();
    Declarator Inner;
    if (!parseDeclarator(Inner))
      return false;
    expect(TokenKind::RParen, "to close declarator group");
    D.Name = Inner.Name;
    D.Loc = Inner.Loc;
    D.Text += "(" + Inner.Text + ")";
    // A function declarator inside the group ("(*get(void))(int *)")
    // makes the whole declaration a function; the group's own suffixes
    // describe the returned pointer type.
    D.IsDirectFunction = Inner.IsDirectFunction;
    D.Params = std::move(Inner.Params);
    D.Variadic = Inner.Variadic;
    Grouped = true;
  } else {
    // Abstract declarator (unnamed parameter or type name).
    D.Loc = current().Loc;
  }

  bool FirstSuffix = true;
  while (true) {
    if (current().is(TokenKind::LParen)) {
      consume();
      if (FirstSuffix && !Grouped && !D.Name.empty()) {
        // A function declarator: the name is directly suffixed by the
        // parameter list (possibly under pointers, i.e. a function
        // returning a pointer).
        D.IsDirectFunction = true;
        if (!parseParameterList(D))
          return false;
      } else {
        // Function type applied to a grouped declarator (pointer to
        // function) or an abstract declarator; parameters are parsed and
        // discarded — they do not declare analyzable objects.
        Declarator Discard;
        if (!parseParameterList(Discard))
          return false;
        D.Text += "(fn)";
      }
      FirstSuffix = false;
      continue;
    }
    if (current().is(TokenKind::LBracket)) {
      consume();
      if (!current().is(TokenKind::RBracket))
        parseConditionalExpr(); // Array size; value irrelevant here.
      expect(TokenKind::RBracket, "to close array declarator");
      D.Text += "[]";
      FirstSuffix = false;
      continue;
    }
    return true;
  }
}

bool Parser::parseParameterList(Declarator &D) {
  if (match(TokenKind::RParen))
    return true; // "f()".
  if (current().is(TokenKind::KwVoid) && peek(1).is(TokenKind::RParen)) {
    consume();
    consume();
    return true; // "f(void)".
  }
  while (true) {
    if (match(TokenKind::Ellipsis)) {
      D.Variadic = true;
      break;
    }
    DeclSpec Spec;
    if (!parseDeclSpecifiers(Spec)) {
      Diags.error(current().Loc, "expected parameter declaration");
      // Recover to ',' or ')'.
      while (!current().is(TokenKind::Comma) &&
             !current().is(TokenKind::RParen) &&
             !current().is(TokenKind::EndOfFile))
        consume();
    } else {
      Declarator Param;
      if (!parseDeclarator(Param))
        return false;
      D.Params.push_back(Unit.create<VarDecl>(
          Param.Name.empty() ? current().Loc : Param.Loc, Param.Name,
          Spec.Text + Param.Text, /*Init=*/nullptr));
    }
    if (match(TokenKind::Comma))
      continue;
    break;
  }
  return expect(TokenKind::RParen, "to close parameter list");
}

//===----------------------------------------------------------------------===//
// Top-level declarations
//===----------------------------------------------------------------------===//

bool Parser::parseTranslationUnit() {
  while (!current().is(TokenKind::EndOfFile)) {
    size_t Before = Pos;
    parseTopLevelDecl();
    if (Pos == Before)
      consume(); // Guarantee progress even on malformed input.
  }
  return !Diags.hasErrors();
}

void Parser::parseTopLevelDecl() {
  if (match(TokenKind::Semi))
    return; // Stray semicolon.

  DeclSpec Spec;
  if (!parseDeclSpecifiers(Spec)) {
    Diags.error(current().Loc, "expected declaration");
    synchronizeToDeclBoundary();
    return;
  }
  if (match(TokenKind::Semi))
    return; // "struct S { ... };" or "enum E { ... };".

  Declarator D;
  if (!parseDeclarator(D)) {
    synchronizeToDeclBoundary();
    return;
  }

  if (D.IsDirectFunction && current().is(TokenKind::LBrace) &&
      !Spec.IsTypedef) {
    CompoundStmt *Body = parseCompoundStmt();
    Unit.Decls.push_back(Unit.create<FunctionDecl>(
        D.Loc, D.Name, Spec.Text + D.Text, std::move(D.Params), D.Variadic,
        Body));
    return;
  }
  parseInitDeclarators(Spec, std::move(D), /*LocalOut=*/nullptr);
}

void Parser::parseInitDeclarators(const DeclSpec &Spec, Declarator First,
                                  std::vector<VarDecl *> *LocalOut) {
  Declarator D = std::move(First);
  while (true) {
    if (Spec.IsTypedef) {
      if (D.Name.empty())
        Diags.error(current().Loc, "typedef declarator requires a name");
      else
        TypedefNames.insert(D.Name);
      Unit.Decls.push_back(
          Unit.create<TypedefDecl>(D.Loc, D.Name, Spec.Text + D.Text));
    } else if (D.IsDirectFunction) {
      Unit.Decls.push_back(Unit.create<FunctionDecl>(
          D.Loc, D.Name, Spec.Text + D.Text, std::move(D.Params), D.Variadic,
          /*Body=*/nullptr));
    } else {
      Expr *Init = nullptr;
      if (match(TokenKind::Equal))
        Init = parseInitializer();
      VarDecl *Var =
          Unit.create<VarDecl>(D.Loc, D.Name, Spec.Text + D.Text, Init);
      if (LocalOut)
        LocalOut->push_back(Var);
      else
        Unit.Decls.push_back(Var);
    }
    if (match(TokenKind::Comma)) {
      Declarator Next;
      if (!parseDeclarator(Next)) {
        synchronizeToStmtBoundary();
        return;
      }
      D = std::move(Next);
      continue;
    }
    expect(TokenKind::Semi, "after declaration");
    return;
  }
}

Expr *Parser::parseInitializer() {
  if (current().is(TokenKind::LBrace)) {
    SourceLocation Loc = consume().Loc;
    std::vector<Expr *> Inits;
    while (!current().is(TokenKind::RBrace) &&
           !current().is(TokenKind::EndOfFile)) {
      Inits.push_back(parseInitializer());
      if (!match(TokenKind::Comma))
        break;
    }
    expect(TokenKind::RBrace, "to close initializer list");
    return Unit.create<InitListExpr>(Loc, std::move(Inits));
  }
  return parseAssignExpr();
}

//===----------------------------------------------------------------------===//
// Statements
//===----------------------------------------------------------------------===//

CompoundStmt *Parser::parseCompoundStmt() {
  SourceLocation Loc = current().Loc;
  expect(TokenKind::LBrace, "to begin block");
  std::vector<Stmt *> Body;
  while (!current().is(TokenKind::RBrace) &&
         !current().is(TokenKind::EndOfFile)) {
    size_t Before = Pos;
    Body.push_back(parseStmt());
    if (Pos == Before)
      consume(); // Guarantee progress.
  }
  expect(TokenKind::RBrace, "to end block");
  return Unit.create<CompoundStmt>(Loc, std::move(Body));
}

Stmt *Parser::parseDeclStmt() {
  SourceLocation Loc = current().Loc;
  DeclSpec Spec;
  parseDeclSpecifiers(Spec);
  std::vector<VarDecl *> Locals;
  if (!match(TokenKind::Semi)) {
    Declarator D;
    if (!parseDeclarator(D)) {
      synchronizeToStmtBoundary();
      return Unit.create<NullStmt>(Loc);
    }
    parseInitDeclarators(Spec, std::move(D), &Locals);
  }
  return Unit.create<DeclStmt>(Loc, std::move(Locals));
}

Stmt *Parser::parseStmt() {
  SourceLocation Loc = current().Loc;
  switch (current().Kind) {
  case TokenKind::LBrace:
    return parseCompoundStmt();
  case TokenKind::Semi:
    consume();
    return Unit.create<NullStmt>(Loc);
  case TokenKind::KwIf: {
    consume();
    expect(TokenKind::LParen, "after 'if'");
    Expr *Cond = parseExpr();
    expect(TokenKind::RParen, "after if condition");
    Stmt *Then = parseStmt();
    Stmt *Else = nullptr;
    if (match(TokenKind::KwElse))
      Else = parseStmt();
    return Unit.create<IfStmt>(Loc, Cond, Then, Else);
  }
  case TokenKind::KwWhile: {
    consume();
    expect(TokenKind::LParen, "after 'while'");
    Expr *Cond = parseExpr();
    expect(TokenKind::RParen, "after while condition");
    return Unit.create<WhileStmt>(Loc, Cond, parseStmt());
  }
  case TokenKind::KwDo: {
    consume();
    Stmt *Body = parseStmt();
    expect(TokenKind::KwWhile, "after do body");
    expect(TokenKind::LParen, "after 'while'");
    Expr *Cond = parseExpr();
    expect(TokenKind::RParen, "after do-while condition");
    expect(TokenKind::Semi, "after do-while");
    return Unit.create<DoStmt>(Loc, Body, Cond);
  }
  case TokenKind::KwFor: {
    consume();
    expect(TokenKind::LParen, "after 'for'");
    Stmt *Init = nullptr;
    if (!match(TokenKind::Semi)) {
      if (startsDeclSpecifiers()) {
        Init = parseDeclStmt();
      } else {
        Expr *E = parseExpr();
        Init = Unit.create<ExprStmt>(E->loc(), E);
        expect(TokenKind::Semi, "after for initializer");
      }
    }
    Expr *Cond = nullptr;
    if (!current().is(TokenKind::Semi))
      Cond = parseExpr();
    expect(TokenKind::Semi, "after for condition");
    Expr *Inc = nullptr;
    if (!current().is(TokenKind::RParen))
      Inc = parseExpr();
    expect(TokenKind::RParen, "after for clauses");
    return Unit.create<ForStmt>(Loc, Init, Cond, Inc, parseStmt());
  }
  case TokenKind::KwReturn: {
    consume();
    Expr *Value = nullptr;
    if (!current().is(TokenKind::Semi))
      Value = parseExpr();
    expect(TokenKind::Semi, "after return");
    return Unit.create<ReturnStmt>(Loc, Value);
  }
  case TokenKind::KwBreak:
    consume();
    expect(TokenKind::Semi, "after 'break'");
    return Unit.create<BreakStmt>(Loc);
  case TokenKind::KwContinue:
    consume();
    expect(TokenKind::Semi, "after 'continue'");
    return Unit.create<ContinueStmt>(Loc);
  case TokenKind::KwSwitch: {
    consume();
    expect(TokenKind::LParen, "after 'switch'");
    Expr *Cond = parseExpr();
    expect(TokenKind::RParen, "after switch condition");
    return Unit.create<SwitchStmt>(Loc, Cond, parseStmt());
  }
  case TokenKind::KwCase: {
    consume();
    Expr *Value = parseConditionalExpr();
    expect(TokenKind::Colon, "after case value");
    return Unit.create<CaseStmt>(Loc, Value, parseStmt());
  }
  case TokenKind::KwDefault:
    consume();
    expect(TokenKind::Colon, "after 'default'");
    return Unit.create<CaseStmt>(Loc, /*Value=*/nullptr, parseStmt());
  default:
    break;
  }

  if (startsDeclSpecifiers())
    return parseDeclStmt();

  Expr *E = parseExpr();
  if (!expect(TokenKind::Semi, "after expression"))
    synchronizeToStmtBoundary();
  return Unit.create<ExprStmt>(Loc, E);
}

//===----------------------------------------------------------------------===//
// Expressions
//===----------------------------------------------------------------------===//

Expr *Parser::errorExpr(SourceLocation Loc) {
  return Unit.create<IntLiteralExpr>(Loc, 0);
}

Expr *Parser::parseExpr() {
  Expr *Lhs = parseAssignExpr();
  while (current().is(TokenKind::Comma)) {
    SourceLocation Loc = consume().Loc;
    Expr *Rhs = parseAssignExpr();
    Lhs = Unit.create<CommaExpr>(Loc, Lhs, Rhs);
  }
  return Lhs;
}

static bool tokenToAssignOp(TokenKind Kind, AssignOp &Op) {
  switch (Kind) {
  case TokenKind::Equal:
    Op = AssignOp::Assign;
    return true;
  case TokenKind::PlusEqual:
    Op = AssignOp::AddAssign;
    return true;
  case TokenKind::MinusEqual:
    Op = AssignOp::SubAssign;
    return true;
  case TokenKind::StarEqual:
    Op = AssignOp::MulAssign;
    return true;
  case TokenKind::SlashEqual:
    Op = AssignOp::DivAssign;
    return true;
  case TokenKind::PercentEqual:
    Op = AssignOp::RemAssign;
    return true;
  case TokenKind::AmpEqual:
    Op = AssignOp::AndAssign;
    return true;
  case TokenKind::PipeEqual:
    Op = AssignOp::OrAssign;
    return true;
  case TokenKind::CaretEqual:
    Op = AssignOp::XorAssign;
    return true;
  case TokenKind::LessLessEqual:
    Op = AssignOp::ShlAssign;
    return true;
  case TokenKind::GreaterGreaterEqual:
    Op = AssignOp::ShrAssign;
    return true;
  default:
    return false;
  }
}

Expr *Parser::parseAssignExpr() {
  Expr *Lhs = parseConditionalExpr();
  AssignOp Op = AssignOp::Assign;
  if (!tokenToAssignOp(current().Kind, Op))
    return Lhs;
  SourceLocation Loc = consume().Loc;
  Expr *Rhs = parseAssignExpr(); // Right associative.
  return Unit.create<AssignExpr>(Loc, Op, Lhs, Rhs);
}

Expr *Parser::parseConditionalExpr() {
  Expr *Cond = parseBinaryExpr(/*MinPrecedence=*/1);
  if (!current().is(TokenKind::Question))
    return Cond;
  SourceLocation Loc = consume().Loc;
  Expr *TrueExpr = parseExpr();
  expect(TokenKind::Colon, "in conditional expression");
  Expr *FalseExpr = parseConditionalExpr();
  return Unit.create<ConditionalExpr>(Loc, Cond, TrueExpr, FalseExpr);
}

// Returns the precedence of a binary operator token (higher binds
// tighter), or 0 if the token is not a binary operator.
static int binaryPrecedence(TokenKind Kind, BinaryOp &Op) {
  switch (Kind) {
  case TokenKind::PipePipe:
    Op = BinaryOp::LogicalOr;
    return 1;
  case TokenKind::AmpAmp:
    Op = BinaryOp::LogicalAnd;
    return 2;
  case TokenKind::Pipe:
    Op = BinaryOp::Or;
    return 3;
  case TokenKind::Caret:
    Op = BinaryOp::Xor;
    return 4;
  case TokenKind::Amp:
    Op = BinaryOp::And;
    return 5;
  case TokenKind::EqualEqual:
    Op = BinaryOp::Eq;
    return 6;
  case TokenKind::ExclaimEqual:
    Op = BinaryOp::Ne;
    return 6;
  case TokenKind::Less:
    Op = BinaryOp::Lt;
    return 7;
  case TokenKind::Greater:
    Op = BinaryOp::Gt;
    return 7;
  case TokenKind::LessEqual:
    Op = BinaryOp::Le;
    return 7;
  case TokenKind::GreaterEqual:
    Op = BinaryOp::Ge;
    return 7;
  case TokenKind::LessLess:
    Op = BinaryOp::Shl;
    return 8;
  case TokenKind::GreaterGreater:
    Op = BinaryOp::Shr;
    return 8;
  case TokenKind::Plus:
    Op = BinaryOp::Add;
    return 9;
  case TokenKind::Minus:
    Op = BinaryOp::Sub;
    return 9;
  case TokenKind::Star:
    Op = BinaryOp::Mul;
    return 10;
  case TokenKind::Slash:
    Op = BinaryOp::Div;
    return 10;
  case TokenKind::Percent:
    Op = BinaryOp::Rem;
    return 10;
  default:
    return 0;
  }
}

Expr *Parser::parseBinaryExpr(int MinPrecedence) {
  Expr *Lhs = parseCastExpr();
  while (true) {
    BinaryOp Op = BinaryOp::Add;
    int Precedence = binaryPrecedence(current().Kind, Op);
    if (Precedence < MinPrecedence)
      return Lhs;
    SourceLocation Loc = consume().Loc;
    Expr *Rhs = parseBinaryExpr(Precedence + 1);
    Lhs = Unit.create<BinaryExpr>(Loc, Op, Lhs, Rhs);
  }
}

bool Parser::lparenStartsTypeName() const {
  if (!current().is(TokenKind::LParen))
    return false;
  const Token &Next = peek(1);
  if (isBuiltinTypeKeyword(Next.Kind) || isQualifierKeyword(Next.Kind))
    return true;
  switch (Next.Kind) {
  case TokenKind::KwStruct:
  case TokenKind::KwUnion:
  case TokenKind::KwEnum:
    return true;
  case TokenKind::Identifier:
    return TypedefNames.count(Next.Text) != 0;
  default:
    return false;
  }
}

std::string Parser::parseTypeName() {
  DeclSpec Spec;
  parseDeclSpecifiers(Spec);
  Declarator Abstract;
  parseDeclarator(Abstract);
  if (!Abstract.Name.empty())
    Diags.error(Abstract.Loc, "type name cannot declare '" + Abstract.Name +
                                  "'");
  return Spec.Text + Abstract.Text;
}

Expr *Parser::parseCastExpr() {
  if (lparenStartsTypeName()) {
    SourceLocation Loc = consume().Loc; // '('.
    std::string TypeText = parseTypeName();
    expect(TokenKind::RParen, "to close cast");
    Expr *Sub = parseCastExpr();
    return Unit.create<CastExpr>(Loc, std::move(TypeText), Sub);
  }
  return parseUnaryExpr();
}

Expr *Parser::parseUnaryExpr() {
  SourceLocation Loc = current().Loc;
  switch (current().Kind) {
  case TokenKind::Amp:
    consume();
    return Unit.create<UnaryExpr>(Loc, UnaryOp::AddressOf, parseCastExpr());
  case TokenKind::Star:
    consume();
    return Unit.create<UnaryExpr>(Loc, UnaryOp::Deref, parseCastExpr());
  case TokenKind::Plus:
    consume();
    return Unit.create<UnaryExpr>(Loc, UnaryOp::Plus, parseCastExpr());
  case TokenKind::Minus:
    consume();
    return Unit.create<UnaryExpr>(Loc, UnaryOp::Minus, parseCastExpr());
  case TokenKind::Tilde:
    consume();
    return Unit.create<UnaryExpr>(Loc, UnaryOp::Not, parseCastExpr());
  case TokenKind::Exclaim:
    consume();
    return Unit.create<UnaryExpr>(Loc, UnaryOp::LogicalNot, parseCastExpr());
  case TokenKind::PlusPlus:
    consume();
    return Unit.create<UnaryExpr>(Loc, UnaryOp::PreInc, parseUnaryExpr());
  case TokenKind::MinusMinus:
    consume();
    return Unit.create<UnaryExpr>(Loc, UnaryOp::PreDec, parseUnaryExpr());
  case TokenKind::KwSizeof: {
    consume();
    if (lparenStartsTypeName()) {
      consume(); // '('.
      std::string TypeText = parseTypeName();
      expect(TokenKind::RParen, "to close sizeof");
      return Unit.create<SizeofExpr>(Loc, /*Sub=*/nullptr,
                                     std::move(TypeText));
    }
    return Unit.create<SizeofExpr>(Loc, parseUnaryExpr(), std::string());
  }
  default:
    return parsePostfixExpr();
  }
}

Expr *Parser::parsePostfixExpr() {
  Expr *E = parsePrimaryExpr();
  while (true) {
    SourceLocation Loc = current().Loc;
    switch (current().Kind) {
    case TokenKind::LParen: {
      consume();
      std::vector<Expr *> Args;
      if (!current().is(TokenKind::RParen)) {
        while (true) {
          Args.push_back(parseAssignExpr());
          if (!match(TokenKind::Comma))
            break;
        }
      }
      expect(TokenKind::RParen, "to close call");
      E = Unit.create<CallExpr>(Loc, E, std::move(Args));
      continue;
    }
    case TokenKind::LBracket: {
      consume();
      Expr *Index = parseExpr();
      expect(TokenKind::RBracket, "to close index");
      E = Unit.create<IndexExpr>(Loc, E, Index);
      continue;
    }
    case TokenKind::Dot: {
      consume();
      std::string Member;
      if (current().is(TokenKind::Identifier))
        Member = consume().Text;
      else
        Diags.error(current().Loc, "expected member name after '.'");
      E = Unit.create<MemberExpr>(Loc, E, std::move(Member),
                                  /*IsArrow=*/false);
      continue;
    }
    case TokenKind::Arrow: {
      consume();
      std::string Member;
      if (current().is(TokenKind::Identifier))
        Member = consume().Text;
      else
        Diags.error(current().Loc, "expected member name after '->'");
      E = Unit.create<MemberExpr>(Loc, E, std::move(Member),
                                  /*IsArrow=*/true);
      continue;
    }
    case TokenKind::PlusPlus:
      consume();
      E = Unit.create<UnaryExpr>(Loc, UnaryOp::PostInc, E);
      continue;
    case TokenKind::MinusMinus:
      consume();
      E = Unit.create<UnaryExpr>(Loc, UnaryOp::PostDec, E);
      continue;
    default:
      return E;
    }
  }
}

Expr *Parser::parsePrimaryExpr() {
  SourceLocation Loc = current().Loc;
  switch (current().Kind) {
  case TokenKind::Identifier:
    return Unit.create<IdentExpr>(Loc, consume().Text);
  case TokenKind::IntLiteral: {
    Token Tok = consume();
    long long Value = std::strtoll(Tok.Text.c_str(), nullptr, 0);
    return Unit.create<IntLiteralExpr>(Loc, Value);
  }
  case TokenKind::FloatLiteral: {
    Token Tok = consume();
    return Unit.create<FloatLiteralExpr>(Loc,
                                         std::strtod(Tok.Text.c_str(),
                                                     nullptr));
  }
  case TokenKind::CharLiteral:
    return Unit.create<CharLiteralExpr>(Loc, consume().Text);
  case TokenKind::StringLiteral: {
    std::string Value = consume().Text;
    // Adjacent string literals concatenate.
    while (current().is(TokenKind::StringLiteral))
      Value += consume().Text;
    return Unit.create<StringLiteralExpr>(Loc, std::move(Value),
                                          NextStringLiteralId++);
  }
  case TokenKind::LParen: {
    consume();
    Expr *E = parseExpr();
    expect(TokenKind::RParen, "to close parenthesized expression");
    return E;
  }
  default:
    Diags.error(Loc, std::string("expected expression, found ") +
                         tokenKindName(current().Kind));
    consume();
    return errorExpr(Loc);
  }
}
