//===- support/ErrorHandling.cpp - Fatal error reporting ------------------===//
//
// Part of the poce project.
//
//===----------------------------------------------------------------------===//

#include "support/ErrorHandling.h"

#include <cstdio>
#include <cstdlib>

using namespace poce;

void poce::reportFatalError(const std::string &Reason) {
  std::fprintf(stderr, "poce fatal error: %s\n", Reason.c_str());
  std::fflush(stderr);
  std::exit(1);
}

void poce::unreachableInternal(const char *Msg, const char *File,
                               unsigned Line) {
  std::fprintf(stderr, "unreachable executed at %s:%u: %s\n", File, Line,
               Msg ? Msg : "");
  std::fflush(stderr);
  std::abort();
}
