//===- tests/stress_test.cpp - Scale and edge-case stress tests ------------===//
//
// Part of the poce project.
//
//===----------------------------------------------------------------------===//

#include "setcon/ConstraintFile.h"
#include "setcon/ConstraintSolver.h"
#include "setcon/Oracle.h"
#include "support/PRNG.h"

#include <gtest/gtest.h>

#include <fstream>
#include <sstream>

using namespace poce;

namespace {

struct SolverHarness {
  ConstructorTable Constructors;
  TermTable Terms;
  ConstraintSolver Solver;

  explicit SolverHarness(SolverOptions Options)
      : Terms(Constructors), Solver(Terms, Options) {}

  VarId var(const std::string &Name) { return Solver.freshVar(Name); }
  ExprId v(VarId Var) { return Terms.var(Var); }
  ExprId source(const std::string &Name) {
    return Terms.cons(Constructors.getOrCreate(Name, {}), {});
  }
};

} // namespace

//===----------------------------------------------------------------------===//
// Deep structures: everything must be iterative or depth-bounded
//===----------------------------------------------------------------------===//

TEST(StressTest, VeryLongChainBothForms) {
  const uint32_t N = 100000;
  for (GraphForm Form : {GraphForm::Standard, GraphForm::Inductive}) {
    SolverHarness H(makeConfig(Form, CycleElim::Online));
    ExprId S = H.source("s");
    VarId First = H.var("v0");
    H.Solver.addConstraint(S, H.v(First));
    VarId Prev = First;
    for (uint32_t I = 1; I != N; ++I) {
      VarId Next = H.var("v" + std::to_string(I));
      H.Solver.addConstraint(H.v(Prev), H.v(Next));
      Prev = Next;
    }
    // The least solution pass over a 100k-deep pred chain must not
    // recurse.
    EXPECT_EQ(H.Solver.leastSolution(Prev), std::vector<ExprId>{S});
  }
}

TEST(StressTest, VeryLongCycleCollapses) {
  // A single 50k-cycle: online detection collapses progressively as the
  // ring closes; the result is one live variable... or at least a heavily
  // collapsed class with correct solutions.
  const uint32_t N = 50000;
  SolverHarness H(makeConfig(GraphForm::Inductive, CycleElim::Online));
  std::vector<VarId> Vars;
  for (uint32_t I = 0; I != N; ++I)
    Vars.push_back(H.var("r" + std::to_string(I)));
  ExprId S = H.source("s");
  H.Solver.addConstraint(S, H.v(Vars[0]));
  for (uint32_t I = 0; I != N; ++I)
    H.Solver.addConstraint(H.v(Vars[I]), H.v(Vars[(I + 1) % N]));
  H.Solver.finalize();
  // Every ring member sees the source.
  EXPECT_EQ(H.Solver.leastSolution(Vars[N / 2]), std::vector<ExprId>{S});
  EXPECT_EQ(H.Solver.leastSolution(Vars[N - 1]), std::vector<ExprId>{S});
}

TEST(StressTest, WideFanoutNode) {
  // One variable with tens of thousands of predecessors and successors;
  // pairing is quadratic in principle but bounded by distinct sources
  // here.
  const uint32_t Width = 20000;
  SolverHarness H(makeConfig(GraphForm::Standard, CycleElim::None));
  VarId Hub = H.var("hub");
  ExprId S = H.source("s");
  H.Solver.addConstraint(S, H.v(Hub));
  std::vector<VarId> Outs;
  for (uint32_t I = 0; I != Width; ++I) {
    VarId Out = H.var("o" + std::to_string(I));
    H.Solver.addConstraint(H.v(Hub), H.v(Out));
    Outs.push_back(Out);
  }
  H.Solver.finalize();
  EXPECT_EQ(H.Solver.leastSolution(Outs[Width - 1]),
            std::vector<ExprId>{S});
  EXPECT_EQ(H.Solver.stats().RedundantAdds, 0u);
}

TEST(StressTest, DeepTermNesting) {
  // Decomposition recursion is bounded by term depth; make sure a
  // several-hundred-deep term works.
  SolverHarness H(makeConfig(GraphForm::Inductive, CycleElim::None));
  ConsId C = H.Constructors.getOrCreate("c", {Variance::Covariant});
  VarId X = H.var("X"), Y = H.var("Y");
  ExprId S = H.source("s");
  H.Solver.addConstraint(S, H.v(X));
  ExprId Lhs = H.v(X), Rhs = H.v(Y);
  for (int I = 0; I != 500; ++I) {
    Lhs = H.Terms.cons(C, {Lhs});
    Rhs = H.Terms.cons(C, {Rhs});
  }
  H.Solver.addConstraint(Lhs, Rhs);
  EXPECT_EQ(H.Solver.leastSolution(Y), std::vector<ExprId>{S});
}

//===----------------------------------------------------------------------===//
// Abort-state behavior
//===----------------------------------------------------------------------===//

TEST(StressTest, AbortedSolverStaysUsable) {
  SolverOptions Options = makeConfig(GraphForm::Standard, CycleElim::None);
  Options.MaxWork = 50;
  SolverHarness H(Options);
  std::vector<VarId> Vars;
  for (int I = 0; I != 30; ++I)
    Vars.push_back(H.var("v" + std::to_string(I)));
  for (int I = 0; I != 10; ++I)
    H.Solver.addConstraint(H.source("s" + std::to_string(I)),
                           H.v(Vars[0]));
  for (int I = 0; I + 1 != 30; ++I)
    H.Solver.addConstraint(H.v(Vars[I]), H.v(Vars[I + 1]));
  ASSERT_TRUE(H.Solver.stats().Aborted);
  // Queries on an aborted solver return partial but well-formed data.
  H.Solver.finalize();
  EXPECT_NO_FATAL_FAILURE(H.Solver.leastSolution(Vars[29]));
  EXPECT_NO_FATAL_FAILURE(H.Solver.countFinalEdges());
  EXPECT_NO_FATAL_FAILURE(H.Solver.varVarDigraph());
}

//===----------------------------------------------------------------------===//
// Randomized invariants at moderate scale
//===----------------------------------------------------------------------===//

class RandomStressTest : public testing::TestWithParam<uint64_t> {};

TEST_P(RandomStressTest, MixedConstraintSoup) {
  // Random mixture of all three constraint kinds, decompositions, and
  // both 0/1 constants; solutions must agree between SF-Plain and
  // IF-Online (the strongest pairing: different form AND elimination).
  uint64_t Seed = GetParam();
  auto Run = [&](SolverOptions Options) {
    SolverHarness H(Options);
    PRNG Rng(Seed * 1009);
    ConsId Ref = H.Constructors.getOrCreate(
        "ref", {Variance::Covariant, Variance::Contravariant});
    const uint32_t N = 60;
    std::vector<VarId> Vars;
    for (uint32_t I = 0; I != N; ++I)
      Vars.push_back(H.var("v" + std::to_string(I)));
    std::vector<ExprId> Sources;
    for (int I = 0; I != 10; ++I)
      Sources.push_back(H.source("s" + std::to_string(I)));

    for (int I = 0; I != 300; ++I) {
      switch (Rng.nextBelow(6)) {
      case 0:
        H.Solver.addConstraint(H.v(Vars[Rng.nextBelow(N)]),
                               H.v(Vars[Rng.nextBelow(N)]));
        break;
      case 1:
        H.Solver.addConstraint(Sources[Rng.nextBelow(10)],
                               H.v(Vars[Rng.nextBelow(N)]));
        break;
      case 2: // ref term as source.
        H.Solver.addConstraint(
            H.Terms.cons(Ref, {H.v(Vars[Rng.nextBelow(N)]),
                               H.v(Vars[Rng.nextBelow(N)])}),
            H.v(Vars[Rng.nextBelow(N)]));
        break;
      case 3: // Read sink.
        H.Solver.addConstraint(
            H.v(Vars[Rng.nextBelow(N)]),
            H.Terms.cons(Ref, {H.v(Vars[Rng.nextBelow(N)]),
                               H.Terms.zero()}));
        break;
      case 4: // Write sink.
        H.Solver.addConstraint(
            H.v(Vars[Rng.nextBelow(N)]),
            H.Terms.cons(Ref, {H.Terms.one(),
                               H.v(Vars[Rng.nextBelow(N)])}));
        break;
      case 5:
        H.Solver.addConstraint(H.Terms.zero(), H.v(Vars[Rng.nextBelow(N)]));
        break;
      }
    }
    H.Solver.finalize();
    std::vector<std::vector<std::string>> Solutions;
    for (VarId Var : Vars) {
      std::vector<std::string> Names;
      for (ExprId Term : H.Solver.leastSolution(Var)) {
        if (H.Terms.kind(Term) == ExprKind::Cons &&
            H.Constructors.signature(H.Terms.consOf(Term)).arity() == 0)
          Names.push_back(
              H.Constructors.signature(H.Terms.consOf(Term)).Name);
        else
          Names.push_back(H.Solver.exprStr(Term));
      }
      std::sort(Names.begin(), Names.end());
      Solutions.push_back(std::move(Names));
    }
    return Solutions;
  };

  auto SFPlain = Run(makeConfig(GraphForm::Standard, CycleElim::None, Seed));
  auto IFOnline =
      Run(makeConfig(GraphForm::Inductive, CycleElim::Online, Seed));
  EXPECT_EQ(SFPlain, IFOnline);
}

INSTANTIATE_TEST_SUITE_P(Seeds, RandomStressTest,
                         testing::Range<uint64_t>(1, 16));

//===----------------------------------------------------------------------===//
// Randomized add/retract interleaving under the parallel wave scheduler
//===----------------------------------------------------------------------===//

namespace {

/// Tagged-line solver pair, the path retraction runs through in the serve
/// layer (ConstraintSystemFile stamps each constraint with its canonical
/// line text as the provenance tag).
struct LineHarness {
  ConstructorTable Constructors;
  TermTable Terms;
  ConstraintSolver Solver;
  ConstraintSystemFile System;

  explicit LineHarness(SolverOptions Options)
      : Terms(Constructors), Solver(Terms, Options) {}

  void add(const std::string &Line) {
    Status St = System.addLine(Line, Solver);
    ASSERT_TRUE(St.ok()) << "line '" << Line << "': " << St.toString();
  }

  bool retract(const std::string &Line) {
    std::string Canon;
    Status St = System.canonicalizeConstraint(Line, Solver, Canon);
    EXPECT_TRUE(St.ok()) << St.toString();
    bool Removed = Solver.retract(Canon);
    if (Removed)
      EXPECT_TRUE(System.removeConstraint(Canon));
    return Removed;
  }

  /// Rendered least solutions per creation order, sorted by text so that
  /// incremental and fresh solvers compare despite differing ExprIds.
  std::vector<std::vector<std::string>> solutions() {
    std::vector<std::vector<std::string>> Out;
    for (uint32_t I = 0; I != Solver.numCreations(); ++I) {
      std::vector<std::string> Rendered;
      for (ExprId Term : Solver.leastSolution(Solver.varOfCreation(I)))
        Rendered.push_back(Solver.exprStr(Term));
      std::sort(Rendered.begin(), Rendered.end());
      Out.push_back(std::move(Rendered));
    }
    return Out;
  }
};

struct LineCorpus {
  std::vector<std::string> Decls;
  std::vector<std::string> Constraints;
};

/// Splits an .scs text into declaration lines and constraint lines.
LineCorpus splitSystem(const std::string &Text) {
  LineCorpus Out;
  std::istringstream In(Text);
  std::string Line;
  while (std::getline(In, Line)) {
    size_t First = Line.find_first_not_of(" \t");
    if (First == std::string::npos || Line[First] == '#')
      continue;
    std::string Word = Line.substr(First, Line.find(' ', First) - First);
    if (Word == "cons" || Word == "var")
      Out.Decls.push_back(Line);
    else
      Out.Constraints.push_back(Line);
  }
  return Out;
}

LineCorpus swapCorpus() {
  std::ifstream In(std::string(POCE_SOURCE_DIR) +
                   "/examples/data/swap.scs");
  EXPECT_TRUE(In.good());
  std::stringstream Buffer;
  Buffer << In.rdbuf();
  return splitSystem(Buffer.str());
}

/// Random tagged-line system: plain var-var edges, nullary sources, and
/// ref() cells so retraction unwinds decomposition too.
LineCorpus randomCorpus(uint64_t Seed) {
  LineCorpus Out;
  PRNG Rng(Seed * 7919);
  const uint32_t Vars = 14, Cons = 4, Lines = 36;
  Out.Decls.push_back("cons ref + -");
  std::string VarLine = "var";
  for (uint32_t V = 0; V != Vars; ++V)
    VarLine += " v" + std::to_string(V);
  Out.Decls.push_back(VarLine);
  for (uint32_t C = 0; C != Cons; ++C)
    Out.Decls.push_back("cons s" + std::to_string(C));
  auto Var = [&] { return "v" + std::to_string(Rng.nextBelow(Vars)); };
  for (uint32_t I = 0; I != Lines; ++I) {
    std::string Line;
    switch (Rng.nextBelow(4)) {
    case 0:
      Line = Var() + " <= " + Var();
      break;
    case 1:
      Line = "s" + std::to_string(Rng.nextBelow(Cons)) + " <= " + Var();
      break;
    case 2:
      Line = "ref(" + Var() + ", " + Var() + ") <= " + Var();
      break;
    case 3:
      Line = Var() + " <= ref(" + Var() + ", " + Var() + ")";
      break;
    }
    if (std::find(Out.Constraints.begin(), Out.Constraints.end(), Line) ==
        Out.Constraints.end())
      Out.Constraints.push_back(Line);
  }
  return Out;
}

std::vector<std::vector<std::string>>
freshLineSolutions(SolverOptions Options, const LineCorpus &Corpus,
                   const std::vector<std::string> &Live) {
  LineHarness Fresh(Options);
  for (const std::string &Line : Corpus.Decls)
    Fresh.add(Line);
  for (const std::string &Line : Live)
    Fresh.add(Line);
  return Fresh.solutions();
}

/// Drives a random add/retract interleaving and asserts the oracle after
/// every retract: the incremental solver's rendered least solutions are
/// bit-identical to a fresh solve of the surviving lines.
void runInterleaving(SolverOptions Options, const LineCorpus &Corpus,
                     uint64_t Seed) {
  LineHarness H(Options);
  for (const std::string &Line : Corpus.Decls)
    H.add(Line);

  PRNG Rng(Seed ^ 0x9e3779b97f4a7c15ull);
  std::vector<std::string> Live, Pending = Corpus.Constraints;
  // Seed with roughly half the lines, then interleave.
  for (size_t I = 0; I * 2 < Corpus.Constraints.size(); ++I) {
    Live.push_back(Pending.back());
    Pending.pop_back();
    H.add(Live.back());
  }
  for (int Op = 0; Op != 48; ++Op) {
    bool DoAdd = Live.empty() || (!Pending.empty() && Rng.nextBelow(5) < 3);
    if (DoAdd) {
      size_t Pick = Rng.nextBelow(Pending.size());
      std::swap(Pending[Pick], Pending.back());
      Live.push_back(Pending.back());
      Pending.pop_back();
      H.add(Live.back());
      continue;
    }
    size_t Pick = Rng.nextBelow(Live.size());
    std::swap(Live[Pick], Live.back());
    ASSERT_TRUE(H.retract(Live.back())) << Live.back();
    Pending.push_back(Live.back());
    Live.pop_back();
    ASSERT_EQ(H.solutions(), freshLineSolutions(Options, Corpus, Live))
        << Options.configName() << " after retracting '" << Pending.back()
        << "'";
    ASSERT_TRUE(H.Solver.verifyGraphInvariants());
  }
  EXPECT_GT(H.Solver.stats().Retractions, 0u);
}

} // namespace

class RetractInterleaveStressTest : public testing::TestWithParam<unsigned> {
};

TEST_P(RetractInterleaveStressTest, CorpusAndRandomSystems) {
  unsigned Threads = GetParam();
  for (GraphForm Form : {GraphForm::Standard, GraphForm::Inductive}) {
    SolverOptions Options = makeConfig(Form, CycleElim::Online);
    Options.Closure = ClosureMode::Wave;
    Options.Threads = Threads;
    runInterleaving(Options, swapCorpus(), /*Seed=*/Threads * 11u + 1);
    runInterleaving(Options, randomCorpus(Threads + 1),
                    /*Seed=*/Threads * 13u + 5);
  }
}

INSTANTIATE_TEST_SUITE_P(Threads, RetractInterleaveStressTest,
                         testing::Values(1u, 2u, 8u));
