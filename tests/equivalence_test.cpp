//===- tests/equivalence_test.cpp - Cross-configuration equivalence --------===//
//
// Part of the poce project.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The central correctness property of the paper's design space: standard
/// and inductive form, with or without (partial or perfect) cycle
/// elimination, all compute the same least solution. These parameterized
/// suites check it on random constraint systems and on generated MiniC
/// programs through the full Andersen pipeline.
///
//===----------------------------------------------------------------------===//

#include "andersen/Andersen.h"
#include "setcon/ConstraintSolver.h"
#include "setcon/Oracle.h"
#include "workload/RandomConstraints.h"
#include "workload/Suite.h"

#include <gtest/gtest.h>

#include <map>
#include <set>

using namespace poce;

namespace {

/// All six configurations of the paper's Table 4.
std::vector<SolverOptions> allConfigs(uint64_t Seed) {
  return {
      makeConfig(GraphForm::Standard, CycleElim::None, Seed),
      makeConfig(GraphForm::Inductive, CycleElim::None, Seed),
      makeConfig(GraphForm::Standard, CycleElim::Oracle, Seed),
      makeConfig(GraphForm::Inductive, CycleElim::Oracle, Seed),
      makeConfig(GraphForm::Standard, CycleElim::Online, Seed),
      makeConfig(GraphForm::Inductive, CycleElim::Online, Seed),
  };
}

/// Least solutions keyed by variable creation index, with sources
/// identified by constructor name (stable across configurations even when
/// oracle substitution changes variable and term identities).
using Signature = std::map<uint32_t, std::set<std::string>>;

Signature lsSignature(ConstraintSolver &Solver) {
  Signature Result;
  const TermTable &Terms = Solver.terms();
  for (uint32_t Creation = 0; Creation != Solver.numCreations(); ++Creation) {
    VarId Var = Solver.varOfCreation(Creation);
    std::set<std::string> Names;
    for (ExprId Term : Solver.leastSolution(Var)) {
      if (Terms.kind(Term) == ExprKind::Cons)
        Names.insert(
            Terms.constructors().signature(Terms.consOf(Term)).Name);
      else
        Names.insert("1");
    }
    Result[Creation] = std::move(Names);
  }
  return Result;
}

} // namespace

//===----------------------------------------------------------------------===//
// Random constraint systems
//===----------------------------------------------------------------------===//

struct RandomCase {
  uint64_t Seed;
  uint32_t NumVars;
  uint32_t NumCons;
  double Density; ///< Edge probability as a multiple of 1/n.
};

class RandomEquivalenceTest : public testing::TestWithParam<RandomCase> {};

TEST_P(RandomEquivalenceTest, AllSixConfigsAgree) {
  const RandomCase &Case = GetParam();
  PRNG Rng(Case.Seed);
  RandomConstraintShape Shape = randomConstraintShape(
      Case.NumVars, Case.NumCons, Case.Density / Case.NumVars, Rng);

  ConstructorTable Constructors;
  SolverOptions Base =
      makeConfig(GraphForm::Inductive, CycleElim::Online, Case.Seed);
  Oracle O =
      buildOracle(workload::makeRandomGenerator(Shape), Constructors, Base);

  Signature Reference;
  bool HaveReference = false;
  for (const SolverOptions &Options : allConfigs(Case.Seed)) {
    TermTable Terms(Constructors);
    ConstraintSolver Solver(
        Terms, Options, Options.Elim == CycleElim::Oracle ? &O : nullptr);
    workload::emitRandomConstraints(Shape, Solver);
    Solver.finalize();
    Signature Sig = lsSignature(Solver);
    if (!HaveReference) {
      Reference = std::move(Sig);
      HaveReference = true;
    } else {
      EXPECT_EQ(Sig, Reference) << "configuration "
                                << Options.configName();
    }
  }
}

INSTANTIATE_TEST_SUITE_P(
    Shapes, RandomEquivalenceTest,
    testing::Values(RandomCase{1, 10, 6, 1.0}, RandomCase{2, 30, 20, 1.0},
                    RandomCase{3, 30, 20, 2.0}, RandomCase{4, 60, 40, 1.5},
                    RandomCase{5, 60, 40, 3.0}, RandomCase{6, 100, 66, 1.0},
                    RandomCase{7, 100, 66, 2.0}, RandomCase{8, 150, 100, 1.2},
                    RandomCase{9, 40, 0, 2.0}, RandomCase{10, 80, 54, 0.5},
                    RandomCase{11, 25, 16, 4.0},
                    RandomCase{12, 200, 130, 1.0}),
    [](const auto &Info) {
      return "seed" + std::to_string(Info.param.Seed) + "_n" +
             std::to_string(Info.param.NumVars);
    });

//===----------------------------------------------------------------------===//
// Order-choice invariance of solutions
//===----------------------------------------------------------------------===//

TEST(OrderEquivalenceTest, SolutionsIndependentOfVariableOrder) {
  PRNG Rng(99);
  RandomConstraintShape Shape = randomConstraintShape(50, 34, 2.0 / 50, Rng);
  Signature Reference;
  bool HaveReference = false;
  for (OrderKind Order : {OrderKind::Random, OrderKind::Creation,
                          OrderKind::ReverseCreation}) {
    for (uint64_t Seed : {1ULL, 2ULL, 3ULL}) {
      ConstructorTable Constructors;
      TermTable Terms(Constructors);
      SolverOptions Options =
          makeConfig(GraphForm::Inductive, CycleElim::Online, Seed);
      Options.Order = Order;
      ConstraintSolver Solver(Terms, Options);
      workload::emitRandomConstraints(Shape, Solver);
      Solver.finalize();
      Signature Sig = lsSignature(Solver);
      if (!HaveReference) {
        Reference = std::move(Sig);
        HaveReference = true;
      } else {
        EXPECT_EQ(Sig, Reference);
      }
    }
  }
}

//===----------------------------------------------------------------------===//
// Full Andersen pipeline on generated programs
//===----------------------------------------------------------------------===//

class ProgramEquivalenceTest : public testing::TestWithParam<uint32_t> {};

TEST_P(ProgramEquivalenceTest, PointsToSetsAgreeAcrossConfigs) {
  workload::ProgramSpec Spec;
  Spec.Name = "equiv";
  Spec.TargetAstNodes = GetParam();
  Spec.Seed = GetParam() * 1234567ULL;
  auto Program = workload::prepareProgram(Spec);
  ASSERT_TRUE(Program->Ok) << "generated program failed to parse";

  ConstructorTable Constructors;
  SolverOptions Base = makeConfig(GraphForm::Inductive, CycleElim::Online);
  Oracle O = buildOracle(andersen::makeGenerator(Program->Unit),
                         Constructors, Base);

  std::map<std::string, std::vector<std::string>> Reference;
  bool HaveReference = false;
  for (const SolverOptions &Options : allConfigs(Base.Seed)) {
    andersen::AnalysisResult Result = andersen::runAnalysis(
        Program->Unit, Constructors, Options,
        Options.Elim == CycleElim::Oracle ? &O : nullptr,
        /*ExtractPointsTo=*/true);
    EXPECT_FALSE(Result.Stats.Aborted);
    if (!HaveReference) {
      Reference = std::move(Result.PointsTo);
      HaveReference = true;
    } else {
      EXPECT_EQ(Result.PointsTo, Reference)
          << "configuration " << Options.configName();
    }
  }
  EXPECT_FALSE(Reference.empty());
}

INSTANTIATE_TEST_SUITE_P(Sizes, ProgramEquivalenceTest,
                         testing::Values(400u, 900u, 2000u, 4000u),
                         [](const auto &Info) {
                           return "ast" + std::to_string(Info.param);
                         });
