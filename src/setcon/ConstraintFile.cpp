//===- setcon/ConstraintFile.cpp - Textual constraint systems --------------===//
//
// Part of the poce project.
//
//===----------------------------------------------------------------------===//

#include "setcon/ConstraintFile.h"

#include <cassert>
#include <cctype>
#include <functional>
#include <sstream>

using namespace poce;

namespace {

/// Character-level cursor over one line.
struct LineCursor {
  const std::string &Line;
  size_t Pos = 0;

  void skipSpace() {
    while (Pos < Line.size() &&
           std::isspace(static_cast<unsigned char>(Line[Pos])))
      ++Pos;
  }

  bool atEnd() {
    skipSpace();
    return Pos >= Line.size() || Line[Pos] == '#';
  }

  bool eat(char C) {
    skipSpace();
    if (Pos < Line.size() && Line[Pos] == C) {
      ++Pos;
      return true;
    }
    return false;
  }

  bool eatArrowLE() {
    skipSpace();
    if (Pos + 1 < Line.size() && Line[Pos] == '<' && Line[Pos + 1] == '=') {
      Pos += 2;
      return true;
    }
    return false;
  }

  std::string word() {
    skipSpace();
    std::string Out;
    while (Pos < Line.size() &&
           (std::isalnum(static_cast<unsigned char>(Line[Pos])) ||
            Line[Pos] == '_' || Line[Pos] == '@' || Line[Pos] == '$' ||
            Line[Pos] == '.'))
      Out.push_back(Line[Pos++]);
    return Out;
  }
};

} // namespace

uint32_t ConstraintSystemFile::varIndex(const std::string &Name) const {
  auto It = VarIndexOf.find(Name);
  return It == VarIndexOf.end() ? NotFound : It->second;
}

Status ConstraintSystemFile::parse(const std::string &Text) {
  VarNames.clear();
  VarIndexOf.clear();
  ConsDecls.clear();
  ConsIndexOf.clear();
  Constraints.clear();

  auto Fail = [&](unsigned LineNo, const std::string &Message) {
    return Status::error(ErrorCode::ParseError,
                         "line " + std::to_string(LineNo) + ": " + Message);
  };

  std::istringstream In(Text);
  std::string Line;
  unsigned LineNo = 0;
  while (std::getline(In, Line)) {
    ++LineNo;
    LineCursor Cursor{Line};
    if (Cursor.atEnd())
      continue;

    size_t Mark = Cursor.Pos;
    std::string First = Cursor.word();
    if (First == "var") {
      while (!Cursor.atEnd()) {
        std::string Name = Cursor.word();
        if (Name.empty())
          return Fail(LineNo, "expected variable name");
        if (VarIndexOf.count(Name) || ConsIndexOf.count(Name) ||
            Name == "0" || Name == "1")
          return Fail(LineNo, "name '" + Name + "' already in use");
        VarIndexOf[Name] = static_cast<uint32_t>(VarNames.size());
        VarNames.push_back(Name);
      }
      continue;
    }
    if (First == "cons") {
      std::string Name = Cursor.word();
      if (Name.empty())
        return Fail(LineNo, "expected constructor name");
      if (VarIndexOf.count(Name) || ConsIndexOf.count(Name) ||
          Name == "0" || Name == "1")
        return Fail(LineNo, "name '" + Name + "' already in use");
      ConsDecl Decl;
      Decl.Name = Name;
      while (!Cursor.atEnd()) {
        if (Cursor.eat('+')) {
          Decl.ArgVariance.push_back(Variance::Covariant);
        } else if (Cursor.eat('-')) {
          Decl.ArgVariance.push_back(Variance::Contravariant);
        } else {
          return Fail(LineNo, "expected '+' or '-' variance marker");
        }
      }
      ConsIndexOf[Name] = static_cast<uint32_t>(ConsDecls.size());
      ConsDecls.push_back(std::move(Decl));
      continue;
    }

    // A constraint line: expr <= expr.
    Cursor.Pos = Mark;
    FileExpr Lhs, Rhs;
    std::string Error;
    if (!parseExprAt(Line, Cursor.Pos, Lhs, Error))
      return Fail(LineNo, Error);
    if (!Cursor.eatArrowLE())
      return Fail(LineNo, "expected '<=' between expressions");
    if (!parseExprAt(Line, Cursor.Pos, Rhs, Error))
      return Fail(LineNo, Error);
    if (!Cursor.atEnd())
      return Fail(LineNo, "unexpected trailing input");
    Constraints.push_back({std::move(Lhs), std::move(Rhs)});
  }
  return Status();
}

bool ConstraintSystemFile::parseExprAt(const std::string &Line, size_t &Pos,
                                       FileExpr &Out,
                                       std::string &Error) const {
  LineCursor Cursor{Line, Pos};
  Cursor.skipSpace();
  std::string Name = Cursor.word();
  Pos = Cursor.Pos;
  if (Name.empty()) {
    Error = "expected expression";
    return false;
  }
  if (Name == "0") {
    Out.K = FileExpr::Kind::Zero;
    return true;
  }
  if (Name == "1") {
    Out.K = FileExpr::Kind::One;
    return true;
  }
  auto Var = VarIndexOf.find(Name);
  if (Var != VarIndexOf.end()) {
    Out.K = FileExpr::Kind::Var;
    Out.VarIndex = Var->second;
    return true;
  }
  auto Cons = ConsIndexOf.find(Name);
  if (Cons == ConsIndexOf.end()) {
    Error = "undeclared name '" + Name + "'";
    return false;
  }
  Out.K = FileExpr::Kind::Apply;
  Out.ConsIndex = Cons->second;
  unsigned Arity =
      static_cast<unsigned>(ConsDecls[Cons->second].ArgVariance.size());
  if (Arity == 0) {
    // Optional empty parens on nullary constructors.
    if (Cursor.eat('(') && !Cursor.eat(')')) {
      Pos = Cursor.Pos;
      Error = "nullary constructor '" + Name + "' applied to arguments";
      return false;
    }
    Pos = Cursor.Pos;
    return true;
  }
  if (!Cursor.eat('(')) {
    Pos = Cursor.Pos;
    Error = "constructor '" + Name + "' needs " + std::to_string(Arity) +
            " argument(s)";
    return false;
  }
  for (unsigned I = 0; I != Arity; ++I) {
    if (I && !Cursor.eat(',')) {
      Pos = Cursor.Pos;
      Error = "expected ',' in arguments of '" + Name + "'";
      return false;
    }
    Pos = Cursor.Pos;
    FileExpr Arg;
    if (!parseExprAt(Line, Pos, Arg, Error))
      return false;
    Cursor.Pos = Pos;
    Out.Args.push_back(std::move(Arg));
  }
  bool Closed = Cursor.eat(')');
  Pos = Cursor.Pos;
  if (!Closed) {
    Error = "expected ')' after arguments of '" + Name + "'";
    return false;
  }
  return true;
}

Status ConstraintSystemFile::parseLine(const std::string &Line,
                                       const ConstraintSolver &Solver,
                                       ParsedLine &Out) const {
  auto Fail = [&](const std::string &Message) {
    return Status::error(ErrorCode::ParseError, Message);
  };
  Out = ParsedLine();

  LineCursor Cursor{Line};
  if (Cursor.atEnd())
    return Status(); // Blank or comment line.

  size_t Mark = Cursor.Pos;
  std::string First = Cursor.word();

  if (First == "var") {
    Out.K = ParsedLine::Kind::Vars;
    // Declaration order must stay aligned with solver creation order so
    // that declaration indices keep mapping through varOfCreation().
    if (VarNames.size() != Solver.numCreations())
      return Status::error(ErrorCode::FailedPrecondition,
                           "system/solver variable counts differ (" +
                               std::to_string(VarNames.size()) + " vs " +
                               std::to_string(Solver.numCreations()) +
                               "); adoptDeclarations() first");
    // Validate every name up front: a rejected line must leave no fresh
    // variables behind when applied.
    while (!Cursor.atEnd()) {
      std::string Name = Cursor.word();
      if (Name.empty())
        return Fail("expected variable name");
      if (VarIndexOf.count(Name) || ConsIndexOf.count(Name) ||
          Name == "0" || Name == "1")
        return Fail("name '" + Name + "' already in use");
      for (const std::string &Prior : Out.Names)
        if (Prior == Name)
          return Fail("name '" + Name + "' repeated in declaration");
      Out.Names.push_back(std::move(Name));
    }
    return Status();
  }

  if (First == "cons") {
    Out.K = ParsedLine::Kind::Cons;
    std::string Name = Cursor.word();
    if (Name.empty())
      return Fail("expected constructor name");
    if (VarIndexOf.count(Name) || ConsIndexOf.count(Name) || Name == "0" ||
        Name == "1")
      return Fail("name '" + Name + "' already in use");
    Out.Decl.Name = Name;
    while (!Cursor.atEnd()) {
      if (Cursor.eat('+')) {
        Out.Decl.ArgVariance.push_back(Variance::Covariant);
      } else if (Cursor.eat('-')) {
        Out.Decl.ArgVariance.push_back(Variance::Contravariant);
      } else {
        return Fail("expected '+' or '-' variance marker");
      }
    }
    // The solver may already know this constructor (e.g. from a loaded
    // snapshot); a mismatched redeclaration must fail here rather than
    // trip the fatal signature check inside getOrCreate() later.
    const ConstructorTable &Table = Solver.terms().constructors();
    ConsId Existing = Table.lookup(Name);
    if (Existing != ConstructorTable::NotFound) {
      const ConstructorSignature &Sig = Table.signature(Existing);
      bool Same = Sig.ArgVariance.size() == Out.Decl.ArgVariance.size();
      for (size_t I = 0; Same && I != Out.Decl.ArgVariance.size(); ++I)
        Same = Sig.ArgVariance[I] == Out.Decl.ArgVariance[I];
      if (!Same)
        return Fail("constructor '" + Name +
                    "' redeclared with a different signature");
    }
    return Status();
  }

  // A constraint line: expr <= expr.
  Out.K = ParsedLine::Kind::Constraint;
  Cursor.Pos = Mark;
  std::string Error;
  if (!parseExprAt(Line, Cursor.Pos, Out.Lhs, Error))
    return Fail(Error);
  if (!Cursor.eatArrowLE())
    return Fail("expected '<=' between expressions");
  if (!parseExprAt(Line, Cursor.Pos, Out.Rhs, Error))
    return Fail(Error);
  if (!Cursor.atEnd())
    return Fail("unexpected trailing input");
  if (VarNames.size() > Solver.numCreations())
    return Status::error(
        ErrorCode::FailedPrecondition,
        "system declares variables the solver does not have");
  return Status();
}

Status ConstraintSystemFile::checkLine(const std::string &Line,
                                       const ConstraintSolver &Solver) const {
  ParsedLine Parsed;
  return parseLine(Line, Solver, Parsed);
}

Status ConstraintSystemFile::addLine(const std::string &Line,
                                     ConstraintSolver &Solver) {
  ParsedLine Parsed;
  Status St = parseLine(Line, Solver, Parsed);
  if (!St.ok())
    return St;

  switch (Parsed.K) {
  case ParsedLine::Kind::Blank:
    return Status();

  case ParsedLine::Kind::Vars:
    for (std::string &Name : Parsed.Names) {
      VarIndexOf[Name] = static_cast<uint32_t>(VarNames.size());
      Solver.freshVar(Name);
      VarNames.push_back(std::move(Name));
    }
    return Status();

  case ParsedLine::Kind::Cons: {
    // Register in the solver's table immediately (see emit()): the
    // declaration must survive a snapshot taken before its first use.
    SmallVector<Variance, 4> Variances;
    Variances.append(Parsed.Decl.ArgVariance.begin(),
                     Parsed.Decl.ArgVariance.end());
    Solver.terms().mutableConstructors().getOrCreate(Parsed.Decl.Name,
                                                     Variances);
    ConsIndexOf[Parsed.Decl.Name] =
        static_cast<uint32_t>(ConsDecls.size());
    ConsDecls.push_back(std::move(Parsed.Decl));
    return Status();
  }

  case ParsedLine::Kind::Constraint: {
    // Map declaration indices to solver variables through creation
    // indices (collapses and oracle substitution can alias several to
    // one VarId).
    std::vector<VarId> Vars;
    Vars.reserve(VarNames.size());
    for (uint32_t I = 0; I != VarNames.size(); ++I)
      Vars.push_back(Solver.varOfCreation(I));
    ExprId L = build(Parsed.Lhs, Solver, Vars);
    ExprId R = build(Parsed.Rhs, Solver, Vars);
    // The canonical rendered text is the retraction tag: whitespace and
    // comments are normalized away, so `retract` matches any spelling of
    // the same constraint.
    std::string Tag = exprToText(Parsed.Lhs) + " <= " + exprToText(Parsed.Rhs);
    Constraints.push_back({std::move(Parsed.Lhs), std::move(Parsed.Rhs)});
    Solver.addConstraint(L, R, std::move(Tag));
    return Status();
  }
  }
  assert(false && "invalid parsed line kind");
  return Status();
}

Status ConstraintSystemFile::adoptDeclarations(
    const ConstraintSolver &Solver) {
  auto Fail = [&](const std::string &Message) {
    return Status::error(ErrorCode::FailedPrecondition, Message);
  };

  std::vector<std::string> NewVarNames;
  std::map<std::string, uint32_t> NewVarIndexOf;
  for (uint32_t I = 0; I != Solver.numCreations(); ++I) {
    const std::string &Name = Solver.varName(Solver.varOfCreation(I));
    if (Name == "0" || Name == "1")
      return Fail("solver variable named '" + Name +
                  "' collides with a constant");
    if (!NewVarIndexOf.emplace(Name, I).second)
      return Fail("duplicate variable name '" + Name +
                  "'; the textual format needs unique names");
    NewVarNames.push_back(Name);
  }

  std::vector<ConsDecl> NewConsDecls;
  std::map<std::string, uint32_t> NewConsIndexOf;
  const ConstructorTable &Table = Solver.terms().constructors();
  for (ConsId Id = 0; Id != Table.size(); ++Id) {
    const ConstructorSignature &Sig = Table.signature(Id);
    if (NewVarIndexOf.count(Sig.Name) || Sig.Name == "0" || Sig.Name == "1")
      return Fail("constructor name '" + Sig.Name +
                  "' collides with a variable or constant");
    ConsDecl Decl;
    Decl.Name = Sig.Name;
    Decl.ArgVariance.assign(Sig.ArgVariance.begin(), Sig.ArgVariance.end());
    NewConsIndexOf[Sig.Name] = static_cast<uint32_t>(NewConsDecls.size());
    NewConsDecls.push_back(std::move(Decl));
  }

  VarNames = std::move(NewVarNames);
  VarIndexOf = std::move(NewVarIndexOf);
  ConsDecls = std::move(NewConsDecls);
  ConsIndexOf = std::move(NewConsIndexOf);
  Constraints.clear();
  return Status();
}

ExprId ConstraintSystemFile::build(const FileExpr &E,
                                   ConstraintSolver &Solver,
                                   const std::vector<VarId> &Vars) const {
  TermTable &Terms = Solver.terms();
  switch (E.K) {
  case FileExpr::Kind::Zero:
    return Terms.zero();
  case FileExpr::Kind::One:
    return Terms.one();
  case FileExpr::Kind::Var:
    return Terms.var(Vars[E.VarIndex]);
  case FileExpr::Kind::Apply: {
    const ConsDecl &Decl = ConsDecls[E.ConsIndex];
    SmallVector<Variance, 4> Variances;
    Variances.append(Decl.ArgVariance.begin(), Decl.ArgVariance.end());
    ConsId Cons =
        Terms.mutableConstructors().getOrCreate(Decl.Name, Variances);
    SmallVector<ExprId, 4> Args;
    for (const FileExpr &Arg : E.Args)
      Args.push_back(build(Arg, Solver, Vars));
    return Terms.cons(Cons, Args);
  }
  }
  assert(false && "invalid file expression kind");
  return Terms.zero();
}

void ConstraintSystemFile::emit(ConstraintSolver &Solver) const {
  // Register every declared constructor eagerly, including ones no base
  // constraint uses yet: declarations must survive into snapshots and
  // adoptDeclarations(), or an incremental constraint naming them later
  // would be rejected as undeclared.
  for (const ConsDecl &Decl : ConsDecls) {
    SmallVector<Variance, 4> Variances;
    Variances.append(Decl.ArgVariance.begin(), Decl.ArgVariance.end());
    Solver.terms().mutableConstructors().getOrCreate(Decl.Name, Variances);
  }
  std::vector<VarId> Vars;
  Vars.reserve(VarNames.size());
  for (const std::string &Name : VarNames)
    Vars.push_back(Solver.freshVar(Name));
  for (const auto &[Lhs, Rhs] : Constraints)
    Solver.addConstraint(build(Lhs, Solver, Vars), build(Rhs, Solver, Vars),
                         exprToText(Lhs) + " <= " + exprToText(Rhs));
}

Status ConstraintSystemFile::canonicalizeConstraint(const std::string &Line,
                                                    const ConstraintSolver &Solver,
                                                    std::string &Canon) const {
  ParsedLine Parsed;
  Status St = parseLine(Line, Solver, Parsed);
  if (!St.ok())
    return St;
  if (Parsed.K != ParsedLine::Kind::Constraint)
    return Status::error(ErrorCode::InvalidArgument,
                         "not a constraint line (only constraints can be "
                         "retracted)");
  Canon = exprToText(Parsed.Lhs) + " <= " + exprToText(Parsed.Rhs);
  return Status();
}

bool ConstraintSystemFile::removeConstraint(const std::string &Canon) {
  for (size_t I = 0; I != Constraints.size(); ++I)
    if (exprToText(Constraints[I].first) + " <= " +
            exprToText(Constraints[I].second) ==
        Canon) {
      Constraints.erase(Constraints.begin() + I);
      return true;
    }
  return false;
}

GeneratorFn ConstraintSystemFile::generator() const {
  return [this](ConstraintSolver &Solver) { emit(Solver); };
}

std::string ConstraintSystemFile::exprToText(const FileExpr &E) const {
  switch (E.K) {
  case FileExpr::Kind::Zero:
    return "0";
  case FileExpr::Kind::One:
    return "1";
  case FileExpr::Kind::Var:
    return VarNames[E.VarIndex];
  case FileExpr::Kind::Apply: {
    std::string Out = ConsDecls[E.ConsIndex].Name;
    if (E.Args.empty())
      return Out;
    Out += "(";
    for (size_t I = 0; I != E.Args.size(); ++I) {
      if (I)
        Out += ", ";
      Out += exprToText(E.Args[I]);
    }
    return Out + ")";
  }
  }
  assert(false && "invalid file expression kind");
  return std::string();
}

std::string ConstraintSystemFile::str() const {
  std::string Out;
  if (!VarNames.empty()) {
    Out += "var";
    for (const std::string &Name : VarNames)
      Out += " " + Name;
    Out += "\n";
  }
  for (const ConsDecl &Decl : ConsDecls) {
    Out += "cons " + Decl.Name;
    for (Variance V : Decl.ArgVariance)
      Out += V == Variance::Covariant ? " +" : " -";
    Out += "\n";
  }
  for (const auto &[Lhs, Rhs] : Constraints)
    Out += exprToText(Lhs) + " <= " + exprToText(Rhs) + "\n";
  return Out;
}
