//===- setcon/Constructor.cpp - Constructor signatures --------------------===//
//
// Part of the poce project.
//
//===----------------------------------------------------------------------===//

#include "setcon/Constructor.h"

#include "support/ErrorHandling.h"

#include <cassert>

using namespace poce;

ConsId ConstructorTable::getOrCreate(
    std::string_view Name, const SmallVectorImpl<Variance> &ArgVariance) {
  uint32_t NameId = Names.intern(Name);
  if (NameId < Signatures.size()) {
    const ConstructorSignature &Existing = Signatures[NameId];
    if (Existing.ArgVariance != ArgVariance)
      reportFatalError("constructor '" + std::string(Name) +
                       "' re-registered with a different signature");
    return NameId;
  }
  assert(NameId == Signatures.size() &&
         "interner and signature table out of sync!");
  ConstructorSignature Sig;
  Sig.Name = std::string(Name);
  Sig.ArgVariance = ArgVariance;
  Signatures.push_back(std::move(Sig));
  return NameId;
}

ConsId ConstructorTable::getOrCreate(
    std::string_view Name, std::initializer_list<Variance> ArgVariance) {
  SmallVector<Variance, 4> Variances;
  Variances.append(ArgVariance.begin(), ArgVariance.end());
  return getOrCreate(Name, Variances);
}

ConsId ConstructorTable::lookup(std::string_view Name) const {
  uint32_t NameId = Names.lookup(Name);
  return NameId == StringInterner::NotFound ? NotFound : NameId;
}

const ConstructorSignature &ConstructorTable::signature(ConsId Id) const {
  assert(Id < Signatures.size() && "constructor id out of range!");
  return Signatures[Id];
}
