//===- support/DenseU64Set.h - Open-addressing uint64 set ------*- C++ -*-===//
//
// Part of the poce project.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// A fast open-addressing hash set for 64-bit integer keys. One key value
/// (all bits set) is reserved as the empty bucket marker and cannot be
/// inserted. The constraint solver packs (edge kind, node id) pairs into
/// uint64 keys, so membership tests on adjacency lists are a single probe
/// sequence with no indirection.
///
//===----------------------------------------------------------------------===//

#ifndef POCE_SUPPORT_DENSEU64SET_H
#define POCE_SUPPORT_DENSEU64SET_H

#include <cassert>
#include <cstdint>
#include <cstdlib>
#include <cstring>

namespace poce {

/// Mixes the bits of \p X; used as the hash for integer-keyed dense
/// containers (finalizer of SplitMix64).
inline uint64_t denseU64Hash(uint64_t X) {
  X ^= X >> 30;
  X *= 0xbf58476d1ce4e5b9ULL;
  X ^= X >> 27;
  X *= 0x94d049bb133111ebULL;
  X ^= X >> 31;
  return X;
}

/// Open-addressing (linear probing) set of uint64 keys. The key
/// 0xFFFFFFFFFFFFFFFF is reserved.
class DenseU64Set {
public:
  static constexpr uint64_t EmptyKey = ~0ULL;

  DenseU64Set() = default;

  DenseU64Set(const DenseU64Set &RHS) { copyFrom(RHS); }

  DenseU64Set(DenseU64Set &&RHS) noexcept
      : Buckets(RHS.Buckets), NumBuckets(RHS.NumBuckets), Size(RHS.Size) {
    RHS.Buckets = nullptr;
    RHS.NumBuckets = 0;
    RHS.Size = 0;
  }

  DenseU64Set &operator=(const DenseU64Set &RHS) {
    if (this == &RHS)
      return *this;
    std::free(Buckets);
    Buckets = nullptr;
    NumBuckets = 0;
    Size = 0;
    copyFrom(RHS);
    return *this;
  }

  DenseU64Set &operator=(DenseU64Set &&RHS) noexcept {
    if (this == &RHS)
      return *this;
    std::free(Buckets);
    Buckets = RHS.Buckets;
    NumBuckets = RHS.NumBuckets;
    Size = RHS.Size;
    RHS.Buckets = nullptr;
    RHS.NumBuckets = 0;
    RHS.Size = 0;
    return *this;
  }

  ~DenseU64Set() { std::free(Buckets); }

  size_t size() const { return Size; }
  bool empty() const { return Size == 0; }

  /// Inserts \p Key; returns true if the key was newly inserted, false if
  /// it was already present.
  bool insert(uint64_t Key) {
    assert(Key != EmptyKey && "reserved key inserted into DenseU64Set!");
    if ((Size + 1) * 4 >= NumBuckets * 3)
      grow();
    uint64_t *Bucket = findBucket(Key);
    if (*Bucket == Key)
      return false;
    *Bucket = Key;
    ++Size;
    return true;
  }

  bool contains(uint64_t Key) const {
    assert(Key != EmptyKey && "reserved key queried in DenseU64Set!");
    if (!NumBuckets)
      return false;
    return *findBucket(Key) == Key;
  }

  void clear() {
    if (Buckets)
      std::memset(Buckets, 0xFF, NumBuckets * sizeof(uint64_t));
    Size = 0;
  }

  /// Visits each stored key; \p F takes a uint64_t.
  template <typename Fn> void forEach(Fn F) const {
    for (size_t I = 0; I != NumBuckets; ++I)
      if (Buckets[I] != EmptyKey)
        F(Buckets[I]);
  }

private:
  uint64_t *findBucket(uint64_t Key) const {
    size_t Mask = NumBuckets - 1;
    size_t Idx = static_cast<size_t>(denseU64Hash(Key)) & Mask;
    while (true) {
      if (Buckets[Idx] == Key || Buckets[Idx] == EmptyKey)
        return Buckets + Idx;
      Idx = (Idx + 1) & Mask;
    }
  }

  void grow() {
    size_t NewNumBuckets = NumBuckets ? NumBuckets * 2 : 16;
    uint64_t *OldBuckets = Buckets;
    size_t OldNumBuckets = NumBuckets;
    Buckets =
        static_cast<uint64_t *>(std::malloc(NewNumBuckets * sizeof(uint64_t)));
    if (!Buckets)
      std::abort();
    std::memset(Buckets, 0xFF, NewNumBuckets * sizeof(uint64_t));
    NumBuckets = NewNumBuckets;
    for (size_t I = 0; I != OldNumBuckets; ++I)
      if (OldBuckets[I] != EmptyKey)
        *findBucket(OldBuckets[I]) = OldBuckets[I];
    std::free(OldBuckets);
  }

  void copyFrom(const DenseU64Set &RHS) {
    if (!RHS.NumBuckets)
      return;
    Buckets = static_cast<uint64_t *>(
        std::malloc(RHS.NumBuckets * sizeof(uint64_t)));
    if (!Buckets)
      std::abort();
    std::memcpy(Buckets, RHS.Buckets, RHS.NumBuckets * sizeof(uint64_t));
    NumBuckets = RHS.NumBuckets;
    Size = RHS.Size;
  }

  uint64_t *Buckets = nullptr;
  size_t NumBuckets = 0;
  size_t Size = 0;
};

} // namespace poce

#endif // POCE_SUPPORT_DENSEU64SET_H
