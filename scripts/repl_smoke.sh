#!/usr/bin/env bash
# End-to-end smoke of WAL-shipping replication and failover: a primary
# scserved on a Unix socket, a follower bootstrapping from its snapshot
# (cold, over the `replicate` handshake), catch-up under live writes with
# checksum-verified convergence (`verify`), follower kill -9 + restart
# resuming the tail from its local WAL cursor, and finally primary
# kill -9 + `promote` — where the acid test is that the promoted
# follower's state checksum equals what an oracle recovers from the dead
# primary's own snapshot + WAL: zero acknowledged-but-lost lines across
# the failover.
#
# Usage: scripts/repl_smoke.sh [build-dir]   (default: build)
set -euo pipefail
cd "$(dirname "$0")/.."

BUILD_DIR=${1:-build}
SCSERVED="$BUILD_DIR/src/driver/scserved"
SCNETCAT="$BUILD_DIR/src/driver/scnetcat"
if [ ! -x "$SCSERVED" ] || [ ! -x "$SCNETCAT" ]; then
  cmake -B "$BUILD_DIR" -S .
  cmake --build "$BUILD_DIR" -j --target scserved scnetcat
fi

WORK=$(mktemp -d)
PRIM=""
FOL=""
cleanup() {
  [ -n "$PRIM" ] && kill -9 "$PRIM" 2> /dev/null || true
  [ -n "$FOL" ] && kill -9 "$FOL" 2> /dev/null || true
  rm -rf "$WORK"
}
trap cleanup EXIT

fail() {
  echo "FAIL: $*" >&2
  exit 1
}

PSOCK="$WORK/prim.sock" FSOCK="$WORK/fol.sock"
# Connect with backoff instead of racing startup with sleeps.
ncp() { "$SCNETCAT" --unix "$PSOCK" --retry-ms=10000; }
ncf() { "$SCNETCAT" --unix "$FSOCK" --retry-ms=10000; }

# Extracts the checksum=... token of a `verify` reply on stdin.
vsum() { grep -o 'checksum=[0-9a-f]*' || true; }

# Polls until primary and follower `verify` replies agree (checksum,
# base id, and record count all equal); echoes the shared checksum.
converge() {
  for _ in $(seq 400); do
    pv=$(printf 'verify\n' | ncp)
    fv=$(printf 'verify\n' | ncf)
    if [ -n "$pv" ] && [ "$pv" = "$fv" ]; then
      echo "$pv" | vsum
      return 0
    fi
    sleep 0.05
  done
  fail "primary and follower did not converge (primary: $pv follower: $fv)"
}

# Base snapshot: the solved swap system (via stdin mode).
BASE="$WORK/base.snap"
"$SCSERVED" --config=if-online examples/data/swap.scs > "$WORK/base.out" << EOF
save $BASE
quit
EOF
grep -q "ok saved $BASE" "$WORK/base.out" || fail "could not create base snapshot"

#--- Bootstrap and catch-up under live writes -----------------------------

PSNAP="$WORK/prim.snap" PWAL="$WORK/prim.wal"
FSNAP="$WORK/fol.snap" FWAL="$WORK/fol.wal"
cp "$BASE" "$PSNAP"
# checkpoint-every=5 makes the primary re-stamp its base mid-stream, so
# the follower's tail also exercises live `rebase` events.
"$SCSERVED" --snapshot="$PSNAP" --wal="$PWAL" --unix="$PSOCK" \
  --checkpoint-every=5 > "$WORK/prim.out" 2> "$WORK/prim.err" &
PRIM=$!

# The follower's snapshot does not exist: it must cold-bootstrap over the
# socket before serving.
"$SCSERVED" --snapshot="$FSNAP" --wal="$FWAL" --unix="$FSOCK" \
  --follow="$PSOCK" > "$WORK/fol.out" 2> "$WORK/fol.err" &
FOL=$!

printf 'pts P\n' | ncf > "$WORK/boot.q.out"
grep -q '^ok { nx, ny }$' "$WORK/boot.q.out" ||
  fail "bootstrap: follower does not serve the primary's base state"
grep -q 'replication: bootstrapped from the primary' "$WORK/fol.err" ||
  fail "bootstrap: follower did not report the snapshot bootstrap"
grep -q '^ok listening.*role=follower' "$WORK/fol.out" ||
  fail "bootstrap: follower did not announce its role"

# Writes on the follower are refused with a pointer at the primary.
printf 'add cons nope\n' | ncf > "$WORK/ro.out"
grep -q '^err read_only ' "$WORK/ro.out" ||
  fail "follower accepted a write (or refused it with the wrong code)"

# Live writes stream to the primary while a reader hammers the follower.
{
  while :; do printf 'pts P\n'; sleep 0.01; done |
    ncf > "$WORK/reader.out" 2> /dev/null || true
} &
READER=$!
{
  for k in $(seq 0 24); do
    printf 'add cons w%s\nadd w%s <= P\n' "$k" "$k"
  done
} | ncp > "$WORK/writer.out"
[ "$(grep -c '^ok added$' "$WORK/writer.out")" -eq 50 ] ||
  fail "catch-up: primary did not acknowledge all live writes"

SUM1=$(converge)
kill "$READER" 2> /dev/null || true
wait "$READER" 2> /dev/null || true
grep -q '^err' "$WORK/reader.out" &&
  fail "catch-up: a follower read errored during live writes"
grep -q '^ok { nx, ny }$' "$WORK/reader.out" ||
  fail "catch-up: the follower reader never got an answer"
printf 'pts P\n' | ncf | grep -q 'w24' ||
  fail "catch-up: follower is missing the last streamed add"
echo "repl_smoke: bootstrap + catch-up OK ($SUM1)"

#--- Follower kill -9, restart, tail resume -------------------------------

{ kill -9 "$FOL" && wait "$FOL"; } 2> /dev/null || true
FOL=""
# More writes land while the follower is down.
printf 'add cons down0\nadd down0 <= P\n' | ncp > "$WORK/down.w.out"
[ "$(grep -c '^ok added$' "$WORK/down.w.out")" -eq 2 ] ||
  fail "follower-restart: primary refused writes while the follower was down"

"$SCSERVED" --snapshot="$FSNAP" --wal="$FWAL" --unix="$FSOCK" \
  --follow="$PSOCK" > "$WORK/fol2.out" 2> "$WORK/fol2.err" &
FOL=$!
SUM2=$(converge)
# The restart recovered from its own snapshot + WAL and resumed the tail
# from its cursor — no snapshot re-ship.
grep -q 'replication: tailing from base=' "$WORK/fol2.err" ||
  fail "follower-restart: follower did not resume the tail from its cursor"
grep -q 'replication: bootstrapped' "$WORK/fol2.err" &&
  fail "follower-restart: follower re-bootstrapped instead of resuming"
printf 'pts P\n' | ncf | grep -q 'down0' ||
  fail "follower-restart: follower is missing the writes it slept through"
echo "repl_smoke: follower kill -9 + tail resume OK ($SUM2)"

#--- Primary kill -9, failover promotion ----------------------------------

# Converged first, so the surviving follower's checksum must equal what
# the dead primary's own disk pair recovers to.
SUM3=$(converge)
{ kill -9 "$PRIM" && wait "$PRIM"; } 2> /dev/null || true
PRIM=""

# The follower keeps serving reads through the outage...
printf 'pts P\n' | ncf | grep -q 'down0' ||
  fail "failover: follower stopped serving after the primary died"
# ...and promotion flips it writable with a re-stamped WAL lineage.
printf 'promote\n' | ncf > "$WORK/promote.out"
grep -q '^ok promoted base=' "$WORK/promote.out" ||
  fail "failover: promote was not acknowledged"
printf 'add cons post\nadd post <= P\npts P\n' | ncf > "$WORK/post.out"
[ "$(grep -c '^ok added$' "$WORK/post.out")" -eq 2 ] ||
  fail "failover: promoted follower refused writes"
grep -q 'post' "$WORK/post.out" ||
  fail "failover: promoted follower lost its own write"

# Zero acked-but-lost: an oracle recovering from the dead primary's
# snapshot + WAL must reach exactly the converged pre-failover state.
printf 'verify\nquit\n' | \
  "$SCSERVED" --snapshot="$PSNAP" --wal="$PWAL" > "$WORK/oracle.out"
OSUM=$(vsum < "$WORK/oracle.out")
[ -n "$OSUM" ] || fail "failover: oracle recovery produced no checksum"
[ "$OSUM" = "$SUM3" ] ||
  fail "failover: oracle state ($OSUM) differs from the converged follower ($SUM3) — an acknowledged line was lost"
echo "repl_smoke: primary kill -9 + promote OK ($SUM3, zero lost lines)"

# Graceful drain of the promoted server.
printf 'shutdown\n' | ncf > "$WORK/shutdown.out"
grep -q '^ok shutting_down$' "$WORK/shutdown.out" ||
  fail "shutdown: promoted follower did not acknowledge"
wait "$FOL" && code=0 || code=$?
FOL=""
[ "$code" -eq 0 ] || fail "shutdown: promoted follower exit $code, want 0"

echo "repl_smoke: OK"
