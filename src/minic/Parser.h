//===- minic/Parser.h - MiniC recursive-descent parser ----------*- C++ -*-===//
//
// Part of the poce project.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Recursive-descent parser for MiniC: declarations with full C declarator
/// syntax (pointers, arrays, function pointers, grouping parentheses),
/// struct/union/enum/typedef declarations, the complete statement grammar,
/// and all C expression forms with standard precedence. Typedef names are
/// tracked to disambiguate declarations from expressions and casts from
/// parenthesized expressions.
///
//===----------------------------------------------------------------------===//

#ifndef POCE_MINIC_PARSER_H
#define POCE_MINIC_PARSER_H

#include "minic/AST.h"
#include "minic/Diagnostics.h"
#include "minic/Token.h"

#include <set>
#include <string>
#include <vector>

namespace poce {
namespace minic {

/// Parses a token stream into \p Unit. Errors are reported to the
/// Diagnostics engine and parsing synchronizes at statement/declaration
/// boundaries, so one run surfaces multiple errors.
class Parser {
public:
  Parser(std::vector<Token> Tokens, Diagnostics &Diags,
         TranslationUnit &Unit);

  /// Parses the whole translation unit; returns true if no errors were
  /// reported.
  bool parseTranslationUnit();

private:
  //===--------------------------------------------------------------------===
  // Token stream
  //===--------------------------------------------------------------------===
  const Token &peek(unsigned Ahead = 0) const;
  const Token &current() const { return peek(0); }
  Token consume();
  bool match(TokenKind Kind);
  bool expect(TokenKind Kind, const char *Context);
  void synchronizeToDeclBoundary();
  void synchronizeToStmtBoundary();

  //===--------------------------------------------------------------------===
  // Declarations
  //===--------------------------------------------------------------------===

  /// True if the upcoming token begins declaration specifiers (includes
  /// tracked typedef names).
  bool startsDeclSpecifiers() const;

  /// Parsed declaration specifiers: the rendered base type plus any
  /// record/enum declarations encountered inline.
  struct DeclSpec {
    std::string Text;
    bool IsTypedef = false;
  };

  /// Parses declaration specifiers; returns false without consuming
  /// anything definite on failure.
  bool parseDeclSpecifiers(DeclSpec &Spec);

  /// Parsed declarator: the declared name plus shape information needed to
  /// classify the entity.
  struct Declarator {
    std::string Name;
    SourceLocation Loc;
    std::string Text; ///< Rendered pointer/array decoration.
    /// True when the identifier is directly suffixed by a parameter list
    /// (a function declarator, e.g. "f(int)"), as opposed to a
    /// pointer-to-function variable "(*fp)(int)".
    bool IsDirectFunction = false;
    std::vector<VarDecl *> Params;
    bool Variadic = false;
  };

  bool parseDeclarator(Declarator &D);
  bool parseDirectDeclarator(Declarator &D, bool SawPointer);
  bool parseParameterList(Declarator &D);

  /// Parses one top-level declaration (function definition, prototype,
  /// global variables, struct/enum/typedef).
  void parseTopLevelDecl();

  /// Parses the init-declarator list following \p Spec and the already
  /// parsed first declarator, emitting VarDecls/prototypes into \p Out.
  void parseInitDeclarators(const DeclSpec &Spec, Declarator First,
                            std::vector<VarDecl *> *LocalOut);

  RecordDecl *parseRecordBody(SourceLocation Loc, std::string Tag,
                              bool IsUnion);
  EnumDecl *parseEnumBody(SourceLocation Loc, std::string Tag);

  Expr *parseInitializer();

  //===--------------------------------------------------------------------===
  // Statements
  //===--------------------------------------------------------------------===
  Stmt *parseStmt();
  CompoundStmt *parseCompoundStmt();
  Stmt *parseDeclStmt();

  //===--------------------------------------------------------------------===
  // Expressions
  //===--------------------------------------------------------------------===
  Expr *parseExpr(); // Comma expression.
  Expr *parseAssignExpr();
  Expr *parseConditionalExpr();
  Expr *parseBinaryExpr(int MinPrecedence);
  Expr *parseCastExpr();
  Expr *parseUnaryExpr();
  Expr *parsePostfixExpr();
  Expr *parsePrimaryExpr();

  /// True if '(' at the current position starts a type name (cast or
  /// sizeof(type)).
  bool lparenStartsTypeName() const;

  /// Consumes a type name (specifiers + abstract declarator) and returns
  /// its rendered text.
  std::string parseTypeName();

  Expr *errorExpr(SourceLocation Loc);

  std::vector<Token> Tokens;
  size_t Pos = 0;
  Diagnostics &Diags;
  TranslationUnit &Unit;
  std::set<std::string> TypedefNames;
  uint32_t NextStringLiteralId = 0;
};

} // namespace minic
} // namespace poce

#endif // POCE_MINIC_PARSER_H
