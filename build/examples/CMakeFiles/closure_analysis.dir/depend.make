# Empty dependencies file for closure_analysis.
# This may be replaced when dependencies are built.
