//===- workload/RandomConstraints.cpp - Random constraint systems ---------===//
//
// Part of the poce project.
//
//===----------------------------------------------------------------------===//

#include "workload/RandomConstraints.h"

using namespace poce;
using namespace poce::workload;

void poce::workload::emitRandomConstraints(const RandomConstraintShape &Shape,
                                           ConstraintSolver &Solver) {
  TermTable &Terms = Solver.terms();
  ConstructorTable &Constructors = Terms.mutableConstructors();

  std::vector<ExprId> Vars;
  Vars.reserve(Shape.NumVars);
  for (uint32_t I = 0; I != Shape.NumVars; ++I)
    Vars.push_back(Terms.var(Solver.freshVar("X" + std::to_string(I))));

  std::vector<ExprId> Sources;
  Sources.reserve(Shape.NumSources);
  for (uint32_t I = 0; I != Shape.NumSources; ++I)
    Sources.push_back(
        Terms.cons(Constructors.getOrCreate("src" + std::to_string(I), {}),
                   {}));
  std::vector<ExprId> Sinks;
  Sinks.reserve(Shape.NumSinks);
  for (uint32_t I = 0; I != Shape.NumSinks; ++I)
    Sinks.push_back(
        Terms.cons(Constructors.getOrCreate("snk" + std::to_string(I), {}),
                   {}));

  for (const auto &[From, To] : Shape.VarVar)
    Solver.addConstraint(Vars[From], Vars[To]);
  for (const auto &[Source, Var] : Shape.SourceVar)
    Solver.addConstraint(Sources[Source], Vars[Var]);
  for (const auto &[Var, Sink] : Shape.VarSink)
    Solver.addConstraint(Vars[Var], Sinks[Sink]);
}

GeneratorFn
poce::workload::makeRandomGenerator(const RandomConstraintShape &Shape) {
  return [&Shape](ConstraintSolver &Solver) {
    emitRandomConstraints(Shape, Solver);
  };
}
