//===- tests/corpus_test.cpp - Hand-written C corpus tests -----------------===//
//
// Part of the poce project.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Analyzes the realistic C programs under examples/data/ end to end:
/// parse, run both points-to analyses under every configuration, and
/// spot-check facts a correct analysis must find (callback resolution,
/// heap threading, escape through returns).
///
//===----------------------------------------------------------------------===//

#include "andersen/Andersen.h"
#include "andersen/Steensgaard.h"
#include "setcon/Oracle.h"

#include <gtest/gtest.h>

#include <fstream>
#include <set>
#include <sstream>

using namespace poce;
using namespace poce::andersen;

#ifndef POCE_SOURCE_DIR
#define POCE_SOURCE_DIR "."
#endif

namespace {

struct CorpusProgram {
  minic::TranslationUnit Unit;
  AnalysisResult Andersen;
  SteensgaardResult Steens;
  bool Ok = false;

  std::set<std::string> pts(const std::string &Name) const {
    auto Targets = Andersen.pointsTo(Name);
    return std::set<std::string>(Targets.begin(), Targets.end());
  }
};

std::unique_ptr<CorpusProgram> load(const std::string &FileName) {
  auto P = std::make_unique<CorpusProgram>();
  std::string Path = std::string(POCE_SOURCE_DIR) + "/examples/data/" +
                     FileName;
  std::ifstream In(Path);
  EXPECT_TRUE(In.good()) << "cannot open " << Path;
  if (!In.good())
    return P;
  std::stringstream Buffer;
  Buffer << In.rdbuf();
  std::vector<std::string> Errors;
  P->Ok = parseSource(Buffer.str(), P->Unit, &Errors, FileName);
  EXPECT_TRUE(P->Ok) << (Errors.empty() ? "?" : Errors[0]);
  if (!P->Ok)
    return P;
  ConstructorTable Constructors;
  P->Andersen = runAnalysis(
      P->Unit, Constructors,
      makeConfig(GraphForm::Inductive, CycleElim::Online));
  P->Steens = runSteensgaard(P->Unit);
  return P;
}

} // namespace

TEST(CorpusTest, LinkedListLibrary) {
  auto P = load("list.c");
  ASSERT_TRUE(P->Ok);
  // head holds heap cells from the single allocation site in cons().
  std::set<std::string> Head = P->pts("head");
  ASSERT_FALSE(Head.empty());
  bool HasHeap = false;
  for (const std::string &Target : Head)
    HasHeap |= Target.rfind("heap@", 0) == 0;
  EXPECT_TRUE(HasHeap);
  // The payload escape chain: pool addresses flow through push/cons into
  // cells, and back out through last_payload into main.p.
  std::set<std::string> Payload = P->pts("main.p");
  EXPECT_TRUE(Payload.count("pool0"));
  EXPECT_TRUE(Payload.count("pool1"));
  EXPECT_TRUE(Payload.count("pool2"));
}

TEST(CorpusTest, EventLoopCallbacks) {
  auto P = load("events.c");
  ASSERT_TRUE(P->Ok);
  // The indirect call in dispatch_all can reach all three handlers:
  // their state parameters receive all registered state pointers.
  for (const char *Handler : {"on_click.state", "on_key.state",
                              "on_tick.state"}) {
    std::set<std::string> State = P->pts(Handler);
    EXPECT_TRUE(State.count("clicks")) << Handler;
    EXPECT_TRUE(State.count("keys")) << Handler;
    EXPECT_TRUE(State.count("ticks")) << Handler;
  }
  // subscribe's handler parameter sees every handler, including the one
  // routed through pick()'s returns.
  std::set<std::string> Handlers = P->pts("subscribe.handler");
  EXPECT_TRUE(Handlers.count("on_click"));
  EXPECT_TRUE(Handlers.count("on_key"));
  EXPECT_TRUE(Handlers.count("on_tick"));
}

TEST(CorpusTest, InterpreterHeapTree) {
  auto P = load("calc.c");
  ASSERT_TRUE(P->Ok);
  // eval's parameter receives nodes from all three constructors.
  std::set<std::string> Nodes = P->pts("eval.e");
  unsigned HeapSites = 0;
  for (const std::string &Target : Nodes)
    if (Target.rfind("heap@", 0) == 0)
      ++HeapSites;
  EXPECT_GE(HeapSites, 3u);
  // The environment list threads through bind().
  EXPECT_FALSE(P->pts("env").empty());
}

TEST(CorpusTest, StringBuffers) {
  auto P = load("strings.c");
  ASSERT_TRUE(P->Ok);
  std::set<std::string> Cursor = P->pts("cursor");
  // cursor sees the static scratch buffer, the string literal (through
  // sb_skip_spaces), and the heap duplicate.
  EXPECT_TRUE(Cursor.count("scratch"));
  bool HasHeap = false, HasLiteral = false;
  for (const std::string &Target : Cursor) {
    HasHeap |= Target.rfind("heap@", 0) == 0;
    HasLiteral |= Target.rfind("str@", 0) == 0;
  }
  EXPECT_TRUE(HasHeap);
  EXPECT_TRUE(HasLiteral);
}

//===----------------------------------------------------------------------===//
// Cross-analysis and cross-configuration checks over the corpus
//===----------------------------------------------------------------------===//

class CorpusFileTest : public testing::TestWithParam<const char *> {};

TEST_P(CorpusFileTest, AndersenRefinesSteensgaard) {
  auto P = load(GetParam());
  ASSERT_TRUE(P->Ok);
  for (const auto &[Name, Targets] : P->Andersen.PointsTo) {
    auto It = P->Steens.PointsTo.find(Name);
    ASSERT_NE(It, P->Steens.PointsTo.end()) << Name;
    std::set<std::string> SteensSet(It->second.begin(), It->second.end());
    for (const std::string &Target : Targets)
      EXPECT_TRUE(SteensSet.count(Target)) << Name << " -> " << Target;
  }
}

TEST_P(CorpusFileTest, AllConfigurationsAgree) {
  auto P = load(GetParam());
  ASSERT_TRUE(P->Ok);
  ConstructorTable Constructors;
  SolverOptions Base = makeConfig(GraphForm::Inductive, CycleElim::Online);
  Oracle O = buildOracle(makeGenerator(P->Unit), Constructors, Base);
  std::map<std::string, std::vector<std::string>> Reference;
  bool HaveReference = false;
  for (GraphForm Form : {GraphForm::Standard, GraphForm::Inductive}) {
    for (CycleElim Elim : {CycleElim::None, CycleElim::Online,
                           CycleElim::Oracle, CycleElim::Periodic}) {
      AnalysisResult Result =
          runAnalysis(P->Unit, Constructors, makeConfig(Form, Elim),
                      Elim == CycleElim::Oracle ? &O : nullptr);
      if (!HaveReference) {
        Reference = std::move(Result.PointsTo);
        HaveReference = true;
      } else {
        EXPECT_EQ(Result.PointsTo, Reference)
            << makeConfig(Form, Elim).configName();
      }
    }
  }
}

INSTANTIATE_TEST_SUITE_P(Files, CorpusFileTest,
                         testing::Values("list.c", "events.c", "calc.c",
                                         "strings.c"),
                         [](const auto &Info) {
                           std::string Name = Info.param;
                           return Name.substr(0, Name.find('.'));
                         });
