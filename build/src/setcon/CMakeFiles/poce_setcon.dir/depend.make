# Empty dependencies file for poce_setcon.
# This may be replaced when dependencies are built.
