//===- tests/parallel_determinism_test.cpp - Parallel == sequential --------===//
//
// Part of the poce project.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The parallel least-solution pass and the batch-solve API advertise
/// bit-identical results for any lane count: same least-solution sets,
/// same final edges, and the same value in every SolverStats counter.
/// This test pins that contract across the examples/data corpus and
/// random constraint systems, over both graph forms, with and without
/// online elimination and difference propagation, at 1 vs 2 vs 8 lanes.
///
//===----------------------------------------------------------------------===//

#include "andersen/Andersen.h"
#include "setcon/ConstraintSolver.h"
#include "support/PRNG.h"
#include "workload/RandomConstraints.h"
#include "workload/Suite.h"

#include <gtest/gtest.h>

#include <fstream>
#include <sstream>
#include <string>
#include <vector>

using namespace poce;

#ifndef POCE_SOURCE_DIR
#define POCE_SOURCE_DIR "."
#endif

namespace {

void expectStatsEqual(const SolverStats &A, const SolverStats &B,
                      const std::string &Context) {
  EXPECT_EQ(A.VarsCreated, B.VarsCreated) << Context;
  EXPECT_EQ(A.OracleSubstitutions, B.OracleSubstitutions) << Context;
  EXPECT_EQ(A.InitialEdges, B.InitialEdges) << Context;
  EXPECT_EQ(A.DistinctSources, B.DistinctSources) << Context;
  EXPECT_EQ(A.DistinctSinks, B.DistinctSinks) << Context;
  EXPECT_EQ(A.Work, B.Work) << Context;
  EXPECT_EQ(A.RedundantAdds, B.RedundantAdds) << Context;
  EXPECT_EQ(A.SelfEdges, B.SelfEdges) << Context;
  EXPECT_EQ(A.VarsEliminated, B.VarsEliminated) << Context;
  EXPECT_EQ(A.CyclesCollapsed, B.CyclesCollapsed) << Context;
  EXPECT_EQ(A.CycleSearchSteps, B.CycleSearchSteps) << Context;
  EXPECT_EQ(A.CycleSearches, B.CycleSearches) << Context;
  EXPECT_EQ(A.PeriodicPasses, B.PeriodicPasses) << Context;
  EXPECT_EQ(A.Mismatches, B.Mismatches) << Context;
  EXPECT_EQ(A.ConstraintsProcessed, B.ConstraintsProcessed) << Context;
  EXPECT_EQ(A.LSUnionWords, B.LSUnionWords) << Context;
  EXPECT_EQ(A.DeltaPropagations, B.DeltaPropagations) << Context;
  EXPECT_EQ(A.PropagationsPruned, B.PropagationsPruned) << Context;
  EXPECT_EQ(A.Aborted, B.Aborted) << Context;
}

struct SolveSnapshot {
  SolverStats Stats;
  uint64_t FinalEdges = 0;
  std::vector<std::vector<ExprId>> LeastSolutions;
};

/// Solves one random system at \p Threads lanes and snapshots everything
/// the determinism contract covers.
SolveSnapshot solveRandom(const RandomConstraintShape &Shape,
                          SolverOptions Options, unsigned Threads) {
  Options.Threads = Threads;
  ConstructorTable Constructors;
  TermTable Terms(Constructors);
  ConstraintSolver Solver(Terms, Options);
  workload::emitRandomConstraints(Shape, Solver);
  Solver.finalize();

  SolveSnapshot Snap;
  Snap.Stats = Solver.stats();
  Snap.FinalEdges = Solver.countFinalEdges();
  Snap.LeastSolutions.reserve(Solver.numVars());
  for (VarId Var = 0; Var != Solver.numVars(); ++Var)
    Snap.LeastSolutions.push_back(Solver.leastSolution(Var));
  return Snap;
}

struct RandomCase {
  GraphForm Form;
  CycleElim Elim;
  bool DiffProp;
  uint32_t NumVars;
  uint32_t NumCons;
  uint64_t Seed;
};

class RandomDeterminismTest : public testing::TestWithParam<RandomCase> {};

TEST_P(RandomDeterminismTest, LaneCountIsInvisible) {
  const RandomCase &Case = GetParam();
  PRNG Rng(Case.Seed);
  RandomConstraintShape Shape = randomConstraintShape(
      Case.NumVars, Case.NumCons, 1.5 / Case.NumVars, Rng);

  SolverOptions Options = makeConfig(Case.Form, Case.Elim);
  Options.DiffProp = Case.DiffProp;

  SolveSnapshot Sequential = solveRandom(Shape, Options, 1);
  for (unsigned Threads : {2u, 8u}) {
    SolveSnapshot Parallel = solveRandom(Shape, Options, Threads);
    std::string Context = std::string(Options.configName()) +
                          (Case.DiffProp ? "+diff" : "") + " threads=" +
                          std::to_string(Threads);
    expectStatsEqual(Sequential.Stats, Parallel.Stats, Context);
    EXPECT_EQ(Sequential.FinalEdges, Parallel.FinalEdges) << Context;
    ASSERT_EQ(Sequential.LeastSolutions.size(),
              Parallel.LeastSolutions.size())
        << Context;
    for (size_t Var = 0; Var != Sequential.LeastSolutions.size(); ++Var)
      EXPECT_EQ(Sequential.LeastSolutions[Var],
                Parallel.LeastSolutions[Var])
          << Context << " var=" << Var;
  }
}

INSTANTIATE_TEST_SUITE_P(
    Configs, RandomDeterminismTest,
    testing::Values(
        RandomCase{GraphForm::Inductive, CycleElim::None, true, 800, 500, 7},
        RandomCase{GraphForm::Inductive, CycleElim::None, false, 800, 500,
                   7},
        RandomCase{GraphForm::Inductive, CycleElim::Online, true, 1200, 800,
                   11},
        RandomCase{GraphForm::Inductive, CycleElim::Online, false, 1200, 800,
                   11},
        RandomCase{GraphForm::Standard, CycleElim::None, true, 800, 500, 13},
        RandomCase{GraphForm::Standard, CycleElim::Online, true, 1200, 800,
                   17},
        RandomCase{GraphForm::Standard, CycleElim::Online, false, 1200, 800,
                   17}),
    [](const auto &Info) {
      const RandomCase &Case = Info.param;
      std::string Name =
          Case.Form == GraphForm::Inductive ? "IF" : "SF";
      Name += Case.Elim == CycleElim::Online ? "Online" : "Plain";
      Name += Case.DiffProp ? "Diff" : "Elem";
      return Name;
    });

//===----------------------------------------------------------------------===//
// Corpus end-to-end: runAnalysis with Options.Threads
//===----------------------------------------------------------------------===//

class CorpusDeterminismTest : public testing::TestWithParam<const char *> {};

TEST_P(CorpusDeterminismTest, AnalysisIdenticalAcrossLaneCounts) {
  std::string Path = std::string(POCE_SOURCE_DIR) + "/examples/data/" +
                     GetParam();
  std::ifstream In(Path);
  ASSERT_TRUE(In.good()) << Path;
  std::stringstream Buffer;
  Buffer << In.rdbuf();
  minic::TranslationUnit Unit;
  ASSERT_TRUE(andersen::parseSource(Buffer.str(), Unit));

  for (GraphForm Form : {GraphForm::Inductive, GraphForm::Standard}) {
    for (CycleElim Elim : {CycleElim::None, CycleElim::Online}) {
      SolverOptions Options = makeConfig(Form, Elim);
      ConstructorTable SeqCons, ParCons;
      Options.Threads = 1;
      andersen::AnalysisResult Sequential = andersen::runAnalysis(
          Unit, SeqCons, Options, nullptr, /*ExtractPointsTo=*/true);
      Options.Threads = 8;
      andersen::AnalysisResult Parallel = andersen::runAnalysis(
          Unit, ParCons, Options, nullptr, /*ExtractPointsTo=*/true);

      std::string Context = std::string(GetParam()) + " " +
                            Options.configName();
      expectStatsEqual(Sequential.Stats, Parallel.Stats, Context);
      EXPECT_EQ(Sequential.FinalEdges, Parallel.FinalEdges) << Context;
      EXPECT_EQ(Sequential.PointsTo, Parallel.PointsTo) << Context;
    }
  }
}

INSTANTIATE_TEST_SUITE_P(Corpus, CorpusDeterminismTest,
                         testing::Values("list.c", "events.c", "calc.c",
                                         "strings.c"),
                         [](const auto &Info) {
                           std::string Name = Info.param;
                           return Name.substr(0, Name.find('.'));
                         });

//===----------------------------------------------------------------------===//
// Batch solving: solveSuite lane count is invisible too
//===----------------------------------------------------------------------===//

TEST(BatchSolveTest, SuiteResultsIdenticalAcrossLaneCounts) {
  std::vector<workload::ProgramSpec> Specs = workload::paperSuite(0.02);
  ASSERT_FALSE(Specs.empty());
  SolverOptions Options = makeConfig(GraphForm::Inductive, CycleElim::Online);

  std::vector<workload::BatchSolveResult> Sequential =
      workload::solveSuite(Specs, Options, /*Threads=*/1,
                           /*ExtractPointsTo=*/true);
  std::vector<workload::BatchSolveResult> Parallel =
      workload::solveSuite(Specs, Options, /*Threads=*/3,
                           /*ExtractPointsTo=*/true);

  ASSERT_EQ(Sequential.size(), Specs.size());
  ASSERT_EQ(Parallel.size(), Specs.size());
  for (size_t I = 0; I != Specs.size(); ++I) {
    std::string Context = "entry " + Sequential[I].Spec.Name;
    EXPECT_EQ(Sequential[I].Ok, Parallel[I].Ok) << Context;
    EXPECT_EQ(Sequential[I].AstNodes, Parallel[I].AstNodes) << Context;
    expectStatsEqual(Sequential[I].Result.Stats, Parallel[I].Result.Stats,
                     Context);
    EXPECT_EQ(Sequential[I].Result.FinalEdges, Parallel[I].Result.FinalEdges)
        << Context;
    EXPECT_EQ(Sequential[I].Result.PointsTo, Parallel[I].Result.PointsTo)
        << Context;
  }
}

TEST(BatchSolveTest, OracleConfigBuildsPerEntryOracles) {
  // CycleElim::Oracle needs a per-entry witness oracle; solveSuite builds
  // them internally. Smoke-check it solves and eliminates nothing less
  // than the online runs do on at least one entry.
  std::vector<workload::ProgramSpec> Specs = workload::paperSuite(0.02);
  ASSERT_FALSE(Specs.empty());
  Specs.resize(std::min<size_t>(Specs.size(), 2));
  SolverOptions Options = makeConfig(GraphForm::Inductive, CycleElim::Oracle);
  std::vector<workload::BatchSolveResult> Results =
      workload::solveSuite(Specs, Options, /*Threads=*/2);
  ASSERT_EQ(Results.size(), Specs.size());
  for (const workload::BatchSolveResult &R : Results)
    EXPECT_TRUE(R.Ok) << R.Spec.Name;
}

} // namespace
