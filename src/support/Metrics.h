//===- support/Metrics.h - Process-wide metrics registry --------*- C++ -*-===//
//
// Part of the poce project.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// A process-wide registry of named counters, gauges, and fixed-log-bucket
/// latency histograms — the telemetry substrate every layer (solver, serve,
/// driver, bench) reports into and every exporter (the `metrics` serve
/// verb, --metrics-out JSON dumps, the micro_solver trajectory) reads out
/// of.
///
/// Design constraints, in order:
///
///  1. Hot-path increments are lock-free: every value is a relaxed
///     std::atomic<uint64_t>, so a counter bump or histogram record is one
///     atomic add with no fence — safe from any thread, and on the
///     single-threaded solver paths it costs the same as a plain add.
///  2. Reads are snapshot-consistent per metric: a histogram read copies
///     the bucket array and then reconciles count/sum, so an exporter never
///     renders a bucket total larger than the advertised count.
///  3. Registration is rare and locked: metric objects are created once
///     (named lookup under a mutex), then referenced forever — the
///     returned references are stable for the process lifetime, so hot
///     paths cache `static Counter &C = registry.counter(...)`.
///
/// Histograms use fixed base-2 log buckets: bucket 0 holds the value 0 and
/// bucket i >= 1 holds [2^(i-1), 2^i - 1]. Insertion is O(1) (a bit-width
/// computation indexes the bucket), and quantile estimation walks the
/// cumulative counts to the ceil-rank bucket and reports its upper bound —
/// an estimate q with exact <= q < 2*exact for any nonzero exact value.
/// This replaces scserved's sort-on-demand latency ring (O(64k log 64k)
/// per `counters` request) with O(1) insert and O(buckets) read.
///
//===----------------------------------------------------------------------===//

#ifndef POCE_SUPPORT_METRICS_H
#define POCE_SUPPORT_METRICS_H

#include <atomic>
#include <cmath>
#include <cstdint>
#include <map>
#include <memory>
#include <mutex>
#include <string>
#include <vector>

namespace poce {

/// A monotonically increasing event count (Prometheus `counter`). Callers
/// that mirror an externally maintained total at scrape time may also
/// set() it; the registry does not enforce monotonicity.
class Counter {
public:
  void inc(uint64_t N = 1) { Value.fetch_add(N, std::memory_order_relaxed); }
  void set(uint64_t N) { Value.store(N, std::memory_order_relaxed); }
  uint64_t value() const { return Value.load(std::memory_order_relaxed); }

private:
  std::atomic<uint64_t> Value{0};
};

/// A point-in-time measurement (Prometheus `gauge`).
class Gauge {
public:
  void set(uint64_t N) { Value.store(N, std::memory_order_relaxed); }
  void add(int64_t N) {
    Value.fetch_add(static_cast<uint64_t>(N), std::memory_order_relaxed);
  }
  uint64_t value() const { return Value.load(std::memory_order_relaxed); }

private:
  std::atomic<uint64_t> Value{0};
};

/// Read-side copy of a histogram (all loads relaxed, then reconciled so
/// the bucket sum never exceeds Count).
struct HistogramSnapshot {
  std::vector<uint64_t> Buckets; ///< Per-bucket counts (not cumulative).
  uint64_t Count = 0;
  uint64_t Sum = 0;
  uint64_t Max = 0;

  /// Ceil-rank quantile estimate: the upper bound of the bucket holding
  /// the ⌈P·Count⌉-th smallest sample (the Max for the overflow bucket).
  /// 0 when empty.
  uint64_t quantile(double P) const;
};

/// Fixed-log-bucket histogram with lock-free O(1) inserts. Values are
/// unitless u64s; by convention the poce_* histograms record microseconds.
class Histogram {
public:
  /// 40 base-2 buckets cover [0, 2^38) with the last bucket as overflow —
  /// in microseconds that is ~76 hours before precision degrades to "Max".
  static constexpr unsigned NumBuckets = 40;

  /// Index of the bucket holding \p Value: 0 for 0, else its bit width
  /// (clamped to the overflow bucket).
  static unsigned bucketIndex(uint64_t Value) {
    if (Value == 0)
      return 0;
    unsigned Width = 64 - static_cast<unsigned>(__builtin_clzll(Value));
    return Width < NumBuckets ? Width : NumBuckets - 1;
  }

  /// Inclusive upper bound of bucket \p Index (UINT64_MAX for overflow).
  static uint64_t bucketUpperBound(unsigned Index) {
    if (Index + 1 >= NumBuckets)
      return UINT64_MAX;
    return (uint64_t(1) << Index) - 1;
  }

  void record(uint64_t Value) {
    Buckets[bucketIndex(Value)].fetch_add(1, std::memory_order_relaxed);
    Sum.fetch_add(Value, std::memory_order_relaxed);
    uint64_t Prev = Max.load(std::memory_order_relaxed);
    while (Prev < Value &&
           !Max.compare_exchange_weak(Prev, Value,
                                      std::memory_order_relaxed))
      ;
  }

  /// Zeroes every bucket, the sum, and the max (atomics are not
  /// assignable, so this is the registry's reset primitive).
  void reset() {
    for (auto &B : Buckets)
      B.store(0, std::memory_order_relaxed);
    Sum.store(0, std::memory_order_relaxed);
    Max.store(0, std::memory_order_relaxed);
  }

  HistogramSnapshot snapshot() const;
  uint64_t count() const { return snapshot().Count; }

  /// Convenience: quantile of a fresh snapshot.
  uint64_t quantile(double P) const { return snapshot().quantile(P); }

private:
  std::atomic<uint64_t> Buckets[NumBuckets] = {};
  std::atomic<uint64_t> Sum{0};
  std::atomic<uint64_t> Max{0};
};

/// One named metric's values at snapshot time.
struct MetricSample {
  enum class Kind : uint8_t { Counter, Gauge, Histogram };
  std::string Name;
  std::string Help;
  Kind Type = Kind::Counter;
  uint64_t Value = 0;          ///< Counter/gauge value.
  HistogramSnapshot Histogram; ///< Filled for histograms only.
};

/// The registry. Usable as a local instance in tests; production code
/// shares the process-wide global().
class MetricsRegistry {
public:
  MetricsRegistry() = default;
  MetricsRegistry(const MetricsRegistry &) = delete;
  MetricsRegistry &operator=(const MetricsRegistry &) = delete;

  /// The process-wide registry (never destroyed: hot paths hold references
  /// into it through static locals, which may outlive file-scope statics).
  static MetricsRegistry &global();

  /// Looks up or creates a metric. Names must match the Prometheus charset
  /// [a-zA-Z_:][a-zA-Z0-9_:]* (violations are a fatal error — metric names
  /// are compile-time constants in practice). Looking up an existing name
  /// with a different metric kind is also fatal.
  Counter &counter(const std::string &Name, const std::string &Help = "");
  Gauge &gauge(const std::string &Name, const std::string &Help = "");
  Histogram &histogram(const std::string &Name, const std::string &Help = "");

  /// All registered metrics, sorted by name, values read at call time.
  std::vector<MetricSample> snapshot() const;

  /// Prometheus text exposition format: `# HELP` / `# TYPE` preamble per
  /// metric, `_bucket{le="..."}` cumulative series plus `_sum`/`_count`
  /// for histograms. Ends with a final newline (no `# EOF` marker; the
  /// serve layer appends one as its framing).
  std::string renderPrometheus() const;

  /// One JSON object: {"counters":{...},"gauges":{...},"histograms":
  /// {"name":{"count":..,"sum":..,"max":..,"p50":..,"p99":..}}}.
  std::string renderJson() const;

  /// Zeroes every registered value (registrations survive). Test/bench
  /// helper; concurrent writers may interleave, which is fine for both.
  void reset();

  /// Process-wide switch for optional hot-path phase timing (the solver's
  /// closure/cycle-search/LS timers). Off by default so pure solves pay
  /// only one relaxed load per batch; servers and traced runs turn it on.
  static bool timingEnabled() {
    return TimingOn.load(std::memory_order_relaxed);
  }
  static void setTimingEnabled(bool On) {
    TimingOn.store(On, std::memory_order_relaxed);
  }

private:
  struct Entry {
    MetricSample::Kind Kind;
    std::string Help;
    std::unique_ptr<Counter> C;
    std::unique_ptr<Gauge> G;
    std::unique_ptr<Histogram> H;
  };

  Entry &lookup(const std::string &Name, MetricSample::Kind Kind,
                const std::string &Help);

  mutable std::mutex Mutex;
  std::map<std::string, Entry> Entries;

  static std::atomic<bool> TimingOn;
};

/// Exact ceil-rank percentile over an already sorted sample vector: the
/// ⌈P·N⌉-th smallest value (clamped to the ends), 0 for an empty vector.
/// This is the bias-corrected replacement for scserved's old floor
/// nearest-rank (`P*size`), which over-reported p50 on small samples —
/// e.g. for N=2 it picked the larger element as the median.
uint64_t exactPercentile(const std::vector<uint64_t> &Sorted, double P);

} // namespace poce

#endif // POCE_SUPPORT_METRICS_H
