#!/usr/bin/env bash
# End-to-end smoke of constraint retraction: the `retract` verb over a
# real socket, kill -9 mid-retract with byte-identical warm recovery
# (the `!retract` WAL record is either torn-and-truncated or durable-and-
# replayed, never half-applied), and a follower replaying shipped
# retractions until checksum-verified convergence (`verify`).
#
# Usage: scripts/retract_smoke.sh [build-dir]   (default: build)
set -euo pipefail
cd "$(dirname "$0")/.."

BUILD_DIR=${1:-build}
SCSERVED="$BUILD_DIR/src/driver/scserved"
SCNETCAT="$BUILD_DIR/src/driver/scnetcat"
if [ ! -x "$SCSERVED" ] || [ ! -x "$SCNETCAT" ]; then
  cmake -B "$BUILD_DIR" -S .
  cmake --build "$BUILD_DIR" -j --target scserved scnetcat
fi

WORK=$(mktemp -d)
PRIM=""
FOL=""
cleanup() {
  [ -n "$PRIM" ] && kill -9 "$PRIM" 2> /dev/null || true
  [ -n "$FOL" ] && kill -9 "$FOL" 2> /dev/null || true
  rm -rf "$WORK"
}
trap cleanup EXIT

fail() {
  echo "FAIL: $*" >&2
  exit 1
}

PSOCK="$WORK/prim.sock" FSOCK="$WORK/fol.sock"
ncp() { "$SCNETCAT" --unix "$PSOCK" --retry-ms=10000; }
ncf() { "$SCNETCAT" --unix "$FSOCK" --retry-ms=10000; }
vsum() { grep -o 'checksum=[0-9a-f]*' || true; }

converge() {
  for _ in $(seq 400); do
    pv=$(printf 'verify\n' | ncp)
    fv=$(printf 'verify\n' | ncf)
    if [ -n "$pv" ] && [ "$pv" = "$fv" ]; then
      echo "$pv" | vsum
      return 0
    fi
    sleep 0.05
  done
  fail "primary and follower did not converge (primary: $pv follower: $fv)"
}

# Base snapshot: the solved swap system.
BASE="$WORK/base.snap"
"$SCSERVED" --config=if-online examples/data/swap.scs > "$WORK/base.out" << EOF
save $BASE
quit
EOF
grep -q "ok saved $BASE" "$WORK/base.out" || fail "could not create base snapshot"

#--- Retraction over a live socket ----------------------------------------

PSNAP="$WORK/prim.snap" PWAL="$WORK/prim.wal"
cp "$BASE" "$PSNAP"
"$SCSERVED" --snapshot="$PSNAP" --wal="$PWAL" --unix="$PSOCK" \
  > "$WORK/prim.out" 2> "$WORK/prim.err" &
PRIM=$!

printf 'add cons w0\nadd w0 <= P\npts P\n' | ncp > "$WORK/sock.add.out"
[ "$(grep -c '^ok added$' "$WORK/sock.add.out")" -eq 2 ] ||
  fail "socket: adds were not acknowledged"
grep -q 'w0' "$WORK/sock.add.out" ||
  fail "socket: added source did not reach pts"

printf 'retract w0 <= P\npts P\n' | ncp > "$WORK/sock.ret.out"
grep -q '^ok retracted$' "$WORK/sock.ret.out" ||
  fail "socket: retract was not acknowledged"
grep -q 'w0' "$WORK/sock.ret.out" &&
  fail "socket: retracted source still visible in pts"
# The seed swap solution is untouched by the retraction.
printf 'pts P\nalias P Q\n' | ncp > "$WORK/sock.q.out"
grep -q '^ok { nx, ny }$' "$WORK/sock.q.out" ||
  fail "socket: seed solution damaged by the retraction"
grep -q '^ok true$' "$WORK/sock.q.out" ||
  fail "socket: collapsed cycle P/Q lost by the retraction"
# Retracting twice is a clean error, and the server keeps serving.
printf 'retract w0 <= P\npts P\n' | ncp > "$WORK/sock.dup.out"
grep -q '^err not_found ' "$WORK/sock.dup.out" ||
  fail "socket: double retract did not answer err not_found"
grep -q '^ok { nx, ny }$' "$WORK/sock.dup.out" ||
  fail "socket: server stopped serving after the refused retract"
echo "retract_smoke: socket retract OK"

{ kill -9 "$PRIM" && wait "$PRIM"; } 2> /dev/null || true
PRIM=""

#--- kill -9 mid-retract, byte-identical warm recovery --------------------

# crash_scenario NAME FAILPOINTS REQUEST...
# Runs a stdin-mode server on a private copy of the base snapshot with
# FAILPOINTS armed, feeding REQUESTs until the crash; then proves warm
# recovery reconstructs exactly the state an oracle reaches by replaying
# the surviving WAL records (adds AND `!retract`s) by hand.
crash_scenario() {
  local name=$1 failpoints=$2
  shift 2
  local snap="$WORK/$name.snap" wal="$WORK/$name.wal"
  cp "$BASE" "$snap"
  printf '%s\n' "$@" > "$WORK/$name.req"

  set +e
  POCE_FAILPOINTS="$failpoints" "$SCSERVED" --snapshot="$snap" --wal="$wal" \
    < "$WORK/$name.req" > "$WORK/$name.out" 2> "$WORK/$name.err"
  local code=$?
  set -e
  [ "$code" -eq 137 ] || fail "$name: expected crash exit 137, got $code"

  "$SCSERVED" --dump-wal="$wal" \
    > "$WORK/$name.wal_lines" 2> "$WORK/$name.wal_err"

  # Warm recovery (snapshot + WAL replay), then snapshot the result.
  "$SCSERVED" --snapshot="$snap" --wal="$wal" > "$WORK/$name.rec.out" << EOF
save $WORK/$name.recovered.snap
quit
EOF
  grep -q "ok saved" "$WORK/$name.rec.out" ||
    fail "$name: recovered server could not snapshot"

  # Oracle: the bare base snapshot fed the dumped records as requests.
  {
    while IFS= read -r line; do
      case "$line" in
      "!retract "*) echo "retract ${line#!retract }" ;;
      *) echo "add $line" ;;
      esac
    done < "$WORK/$name.wal_lines"
    echo "save $WORK/$name.oracle.snap"
    echo "quit"
  } | "$SCSERVED" --snapshot="$snap" > "$WORK/$name.oracle.out"
  grep -q "ok saved" "$WORK/$name.oracle.out" ||
    fail "$name: oracle session failed"
  cmp -s "$WORK/$name.recovered.snap" "$WORK/$name.oracle.snap" ||
    fail "$name: recovered state differs from the snapshot+WAL oracle"
  echo "retract_smoke: $name OK (wal_lines=$(wc -l < "$WORK/$name.wal_lines"))"
}

# Crash between the two halves of the `!retract` record itself: a torn
# tail that replay must truncate — the retraction never half-applies, so
# recovery still shows the constraint live.
crash_scenario torn_retract "wal.append.mid=crash@3" \
  "add cons w0" "add w0 <= P" "retract w0 <= P"
grep -q '!retract' "$WORK/torn_retract.wal_lines" &&
  fail "torn_retract: the torn retract record survived replay"

# Crash after the retract record is durable (mid-append of a later add):
# the acknowledged `!retract` must be replayed on recovery.
crash_scenario durable_retract "wal.append.mid=crash@4" \
  "add cons w0" "add w0 <= P" "retract w0 <= P" "add cons w1"
grep -qxF -- '!retract w0 <= P' "$WORK/durable_retract.wal_lines" ||
  fail "durable_retract: acknowledged retract record lost from the WAL"
printf 'pts P\nquit\n' | "$SCSERVED" --snapshot="$WORK/durable_retract.snap" \
  --wal="$WORK/durable_retract.wal" > "$WORK/durable_retract.q.out"
grep -q 'w0' "$WORK/durable_retract.q.out" &&
  fail "durable_retract: recovery did not replay the retraction"

#--- Follower replays shipped retractions ---------------------------------

PSNAP="$WORK/repl_prim.snap" PWAL="$WORK/repl_prim.wal"
FSNAP="$WORK/repl_fol.snap" FWAL="$WORK/repl_fol.wal"
cp "$BASE" "$PSNAP"
"$SCSERVED" --snapshot="$PSNAP" --wal="$PWAL" --unix="$PSOCK" \
  > "$WORK/rprim.out" 2> "$WORK/rprim.err" &
PRIM=$!
"$SCSERVED" --snapshot="$FSNAP" --wal="$FWAL" --unix="$FSOCK" \
  --follow="$PSOCK" > "$WORK/rfol.out" 2> "$WORK/rfol.err" &
FOL=$!

printf 'add cons w0\nadd w0 <= P\n' | ncp > "$WORK/rw.out"
[ "$(grep -c '^ok added$' "$WORK/rw.out")" -eq 2 ] ||
  fail "replication: primary refused the adds"
SUM1=$(converge)
printf 'pts P\n' | ncf | grep -q 'w0' ||
  fail "replication: follower never saw the add"

# Retraction is a write: the follower refuses it, the primary ships it.
printf 'retract w0 <= P\n' | ncf > "$WORK/rro.out"
grep -q '^err read_only ' "$WORK/rro.out" ||
  fail "replication: follower accepted a retract"
printf 'retract w0 <= P\n' | ncp | grep -q '^ok retracted$' ||
  fail "replication: primary refused the retract"
SUM2=$(converge)
[ "$SUM1" != "$SUM2" ] ||
  fail "replication: checksum did not move across the retraction"
printf 'pts P\n' | ncf > "$WORK/rq.out"
grep -q 'w0' "$WORK/rq.out" &&
  fail "replication: follower still shows the retracted source"
grep -q '^ok { nx, ny }$' "$WORK/rq.out" ||
  fail "replication: follower seed solution damaged"
echo "retract_smoke: follower replay + convergence OK ($SUM2)"

# Graceful drain so the cleanup trap has nothing left to kill.
printf 'shutdown\n' | ncf > /dev/null || true
wait "$FOL" 2> /dev/null || true
FOL=""
printf 'shutdown\n' | ncp > /dev/null || true
wait "$PRIM" 2> /dev/null || true
PRIM=""

echo "retract_smoke: OK"
