//===- support/Statistic.cpp - Named counters -----------------------------===//
//
// Part of the poce project.
//
//===----------------------------------------------------------------------===//

#include "support/Statistic.h"

using namespace poce;

// Head of the singly linked registry. Statistics are static-storage
// objects whose constructors only link pointers, so registration order is
// irrelevant and there is no destruction hazard.
static Statistic *StatisticListHead = nullptr;

Statistic::Statistic(const char *Component, const char *Description)
    : Component(Component), Description(Description) {
  Next = StatisticListHead;
  StatisticListHead = this;
}

void poce::printAllStatistics(std::FILE *Out) {
  std::fprintf(Out, "=== poce statistics ===\n");
  for (Statistic *S = StatisticListHead; S; S = S->Next)
    if (S->Value)
      std::fprintf(Out, "%12llu %s - %s\n",
                   static_cast<unsigned long long>(S->Value), S->Component,
                   S->Description);
}

void poce::resetAllStatistics() {
  for (Statistic *S = StatisticListHead; S; S = S->Next)
    S->Value = 0;
}
