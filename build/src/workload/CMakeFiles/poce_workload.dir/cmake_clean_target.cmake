file(REMOVE_RECURSE
  "libpoce_workload.a"
)
