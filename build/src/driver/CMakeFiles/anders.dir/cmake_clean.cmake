file(REMOVE_RECURSE
  "CMakeFiles/anders.dir/anders.cpp.o"
  "CMakeFiles/anders.dir/anders.cpp.o.d"
  "anders"
  "anders.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/anders.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
