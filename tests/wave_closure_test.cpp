//===- tests/wave_closure_test.cpp - Wave closure equivalence --------------===//
//
// Part of the poce project.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// ClosureMode::Wave must be a pure scheduling change: identical least
/// solutions and final graphs to the worklist closure on every
/// configuration, and identical paper counters wherever the schedule is
/// provably irrelevant. Absent collapses, the multiset of (source, edge)
/// delivery attempts is schedule-independent, so Work / Edges /
/// RedundantAdds / InitialEdges match the worklist goldens bit for bit;
/// SF-Online on collapse-bearing inputs is interleaving-sensitive (the
/// same regime golden_counters_test.cpp already pins for DiffProp), and
/// those few pairs are pinned to their own wave goldens here so drift is
/// still caught. The wave-specific counters (WavePasses, LevelsPropagated,
/// WaveFallbacks) get corpus goldens of their own.
///
//===----------------------------------------------------------------------===//

#include "andersen/Andersen.h"
#include "setcon/ConstraintSolver.h"
#include "setcon/Oracle.h"
#include "workload/RandomConstraints.h"
#include "workload/Suite.h"

#include <gtest/gtest.h>

#include <fstream>
#include <map>
#include <set>
#include <sstream>
#include <string>

using namespace poce;
using namespace poce::andersen;

#ifndef POCE_SOURCE_DIR
#define POCE_SOURCE_DIR "."
#endif

namespace {

const char *const CorpusFiles[] = {"list.c", "events.c", "calc.c",
                                   "strings.c"};

const char *const ConfigNames[] = {"SF-Plain",  "SF-Online",  "SF-Oracle",
                                   "SF-Periodic", "IF-Plain", "IF-Online",
                                   "IF-Oracle", "IF-Periodic"};

SolverOptions configFor(const char *Name) {
  GraphForm Form =
      Name[0] == 'S' ? GraphForm::Standard : GraphForm::Inductive;
  std::string Elim = std::string(Name).substr(3);
  CycleElim E = Elim == "Plain"    ? CycleElim::None
                : Elim == "Online" ? CycleElim::Online
                : Elim == "Oracle" ? CycleElim::Oracle
                                   : CycleElim::Periodic;
  return makeConfig(Form, E);
}

bool parseCorpusFile(const char *File, minic::TranslationUnit &Unit) {
  std::string Path = std::string(POCE_SOURCE_DIR) + "/examples/data/" + File;
  std::ifstream In(Path);
  if (!In.good())
    return false;
  std::stringstream Buffer;
  Buffer << In.rdbuf();
  std::vector<std::string> Errors;
  return parseSource(Buffer.str(), Unit, &Errors, File);
}

/// The schedule-independent counters the seed goldens lock down.
struct CounterSix {
  uint64_t Work, Edges, VarsElim, Redundant, Initial, Collapsed;

  bool operator==(const CounterSix &O) const {
    return Work == O.Work && Edges == O.Edges && VarsElim == O.VarsElim &&
           Redundant == O.Redundant && Initial == O.Initial &&
           Collapsed == O.Collapsed;
  }
};

CounterSix sixOf(const AnalysisResult &R) {
  return {R.Stats.Work,          R.FinalEdges,
          R.Stats.VarsEliminated, R.Stats.RedundantAdds,
          R.Stats.InitialEdges,  R.Stats.CyclesCollapsed};
}

std::ostream &operator<<(std::ostream &OS, const CounterSix &C) {
  return OS << "{" << C.Work << ", " << C.Edges << ", " << C.VarsElim
            << ", " << C.Redundant << ", " << C.Initial << ", "
            << C.Collapsed << "}";
}

/// Wave goldens for the order-sensitive pairs: SF-Online with difference
/// propagation on inputs where cycles collapse. Everywhere else the wave
/// counters must equal the worklist run exactly.
struct WavePin {
  const char *File;
  const char *Config;
  bool DiffProp;
  CounterSix Six;
};

const WavePin WavePins[] = {
    // Solutions are identical regardless (checked unconditionally below);
    // these only lock the wave interleaving so drift is caught. On
    // events.c the wave schedule pairs fewer deliveries redundantly but
    // pays slightly more Work reaching the same 9 collapses; on calc.c
    // the deferred flushes starve the chain search of the two cycles the
    // eager schedule trips over (0 collapses, SF-Plain-equal counters);
    // on strings.c the batched deltas surface two cycles the eager
    // schedule never walks (2 collapses where the worklist finds none).
    {"events.c", "SF-Online", true, {484, 152, 9, 198, 39, 9}},
    {"calc.c", "SF-Online", true, {243, 215, 0, 28, 72, 0}},
    {"strings.c", "SF-Online", true, {115, 91, 2, 16, 29, 2}},
};

const WavePin *findPin(const char *File, const char *Config, bool DiffProp) {
  for (const WavePin &Pin : WavePins)
    if (std::string(Pin.File) == File && std::string(Pin.Config) == Config &&
        Pin.DiffProp == DiffProp)
      return &Pin;
  return nullptr;
}

/// Least solutions keyed by variable creation index (stable across
/// schedules and collapses), sources identified by constructor name.
using Signature = std::map<uint32_t, std::set<std::string>>;

Signature lsSignature(ConstraintSolver &Solver) {
  Signature Result;
  const TermTable &Terms = Solver.terms();
  for (uint32_t Creation = 0; Creation != Solver.numCreations(); ++Creation) {
    VarId Var = Solver.varOfCreation(Creation);
    std::set<std::string> Names;
    for (ExprId Term : Solver.leastSolution(Var)) {
      if (Terms.kind(Term) == ExprKind::Cons)
        Names.insert(Terms.constructors().signature(Terms.consOf(Term)).Name);
      else
        Names.insert("1");
    }
    Result[Creation] = std::move(Names);
  }
  return Result;
}

/// emitRandomConstraints with a hook run after every addConstraint, for
/// the incremental tests that interleave closure with construction.
template <typename HookFn>
void emitWithHook(const RandomConstraintShape &Shape,
                  ConstraintSolver &Solver, HookFn Hook) {
  TermTable &Terms = Solver.terms();
  ConstructorTable &Constructors = Terms.mutableConstructors();

  std::vector<ExprId> Vars;
  for (uint32_t I = 0; I != Shape.NumVars; ++I)
    Vars.push_back(Terms.var(Solver.freshVar("X" + std::to_string(I))));
  std::vector<ExprId> Sources;
  for (uint32_t I = 0; I != Shape.NumSources; ++I)
    Sources.push_back(
        Terms.cons(Constructors.getOrCreate("src" + std::to_string(I), {}),
                   {}));
  std::vector<ExprId> Sinks;
  for (uint32_t I = 0; I != Shape.NumSinks; ++I)
    Sinks.push_back(
        Terms.cons(Constructors.getOrCreate("snk" + std::to_string(I), {}),
                   {}));

  for (const auto &[From, To] : Shape.VarVar) {
    Solver.addConstraint(Vars[From], Vars[To]);
    Hook(Solver);
  }
  for (const auto &[Source, Var] : Shape.SourceVar) {
    Solver.addConstraint(Sources[Source], Vars[Var]);
    Hook(Solver);
  }
  for (const auto &[Var, Sink] : Shape.VarSink) {
    Solver.addConstraint(Vars[Var], Sinks[Sink]);
    Hook(Solver);
  }
}

std::vector<SolverOptions> allConfigs(uint64_t Seed) {
  return {
      makeConfig(GraphForm::Standard, CycleElim::None, Seed),
      makeConfig(GraphForm::Inductive, CycleElim::None, Seed),
      makeConfig(GraphForm::Standard, CycleElim::Oracle, Seed),
      makeConfig(GraphForm::Inductive, CycleElim::Oracle, Seed),
      makeConfig(GraphForm::Standard, CycleElim::Online, Seed),
      makeConfig(GraphForm::Inductive, CycleElim::Online, Seed),
      makeConfig(GraphForm::Standard, CycleElim::Periodic, Seed),
      makeConfig(GraphForm::Inductive, CycleElim::Periodic, Seed),
  };
}

} // namespace

//===----------------------------------------------------------------------===//
// Corpus: wave vs worklist, every configuration, both propagation paths
//===----------------------------------------------------------------------===//

class CorpusWaveTest : public testing::TestWithParam<const char *> {};

TEST_P(CorpusWaveTest, WaveMatchesWorklist) {
  const char *File = GetParam();
  minic::TranslationUnit Unit;
  ASSERT_TRUE(parseCorpusFile(File, Unit));

  ConstructorTable Constructors;
  SolverOptions Base = makeConfig(GraphForm::Inductive, CycleElim::Online);
  Oracle O = buildOracle(makeGenerator(Unit), Constructors, Base);

  for (const char *Config : ConfigNames) {
    for (bool DiffProp : {false, true}) {
      SolverOptions Options = configFor(Config);
      Options.DiffProp = DiffProp;
      const Oracle *WO = Options.Elim == CycleElim::Oracle ? &O : nullptr;

      Options.Closure = ClosureMode::Worklist;
      AnalysisResult Worklist = runAnalysis(Unit, Constructors, Options, WO);

      Options.Closure = ClosureMode::Wave;
      AnalysisResult Wave = runAnalysis(Unit, Constructors, Options, WO);

      // Solutions are identical regardless of interleaving.
      EXPECT_EQ(Wave.PointsTo, Worklist.PointsTo)
          << File << " " << Config << " diffprop=" << DiffProp;

      const WavePin *Pin = findPin(File, Config, DiffProp);
      CounterSix Expected = Pin ? Pin->Six : sixOf(Worklist);
      EXPECT_EQ(sixOf(Wave), Expected)
          << File << " " << Config << " diffprop=" << DiffProp
          << (Pin ? " (pinned)" : " (worklist parity)");

      // The worklist closure must never take a wave-only code path.
      EXPECT_EQ(Worklist.Stats.WavePasses, 0u) << File << " " << Config;
      EXPECT_EQ(Worklist.Stats.WaveFallbacks, 0u) << File << " " << Config;
    }
  }
}

INSTANTIATE_TEST_SUITE_P(Corpus, CorpusWaveTest,
                         testing::ValuesIn(CorpusFiles),
                         [](const auto &Info) {
                           std::string Name = Info.param;
                           return Name.substr(0, Name.find('.'));
                         });

//===----------------------------------------------------------------------===//
// Wave-counter goldens (SF-Plain with difference propagation: the config
// where every corpus file exercises multi-pass wave propagation)
//===----------------------------------------------------------------------===//

namespace {

struct WaveGolden {
  const char *File;
  uint64_t WavePasses, LevelsPropagated, WaveFallbacks;
};

// Recorded from the first wave implementation. WaveFallbacks under
// SF-Plain are intra-SCC deliveries (cycles stay in the graph and push
// sources backwards past the cursor), not collapse invalidations.
const WaveGolden WaveGoldens[] = {
    {"list.c", 4, 14, 5},
    {"events.c", 4, 11, 5},
    {"calc.c", 3, 15, 10},
    {"strings.c", 4, 22, 0},
};

} // namespace

class WaveCounterGoldenTest : public testing::TestWithParam<WaveGolden> {};

TEST_P(WaveCounterGoldenTest, SFPlainWaveCountersMatch) {
  const WaveGolden &G = GetParam();
  minic::TranslationUnit Unit;
  ASSERT_TRUE(parseCorpusFile(G.File, Unit));

  ConstructorTable Constructors;
  SolverOptions Options = makeConfig(GraphForm::Standard, CycleElim::None);
  Options.Closure = ClosureMode::Wave;
  AnalysisResult R = runAnalysis(Unit, Constructors, Options);

  EXPECT_EQ(R.Stats.WavePasses, G.WavePasses) << G.File;
  EXPECT_EQ(R.Stats.LevelsPropagated, G.LevelsPropagated) << G.File;
  EXPECT_EQ(R.Stats.WaveFallbacks, G.WaveFallbacks) << G.File;
}

INSTANTIATE_TEST_SUITE_P(Corpus, WaveCounterGoldenTest,
                         testing::ValuesIn(WaveGoldens),
                         [](const auto &Info) {
                           std::string Name = Info.param.File;
                           return Name.substr(0, Name.find('.'));
                         });

//===----------------------------------------------------------------------===//
// SoA layout is purely physical: identical counters with it on or off
//===----------------------------------------------------------------------===//

TEST(WaveSoATest, LayoutDoesNotChangeAnyCounter) {
  minic::TranslationUnit Unit;
  ASSERT_TRUE(parseCorpusFile("events.c", Unit));

  for (const char *Config : {"SF-Plain", "SF-Online", "IF-Online"}) {
    ConstructorTable ConstructorsA, ConstructorsB;
    SolverOptions Options = configFor(Config);
    Options.Closure = ClosureMode::Wave;

    Options.WaveSoA = true;
    AnalysisResult SoA = runAnalysis(Unit, ConstructorsA, Options);
    Options.WaveSoA = false;
    AnalysisResult Lists = runAnalysis(Unit, ConstructorsB, Options);

    EXPECT_EQ(SoA.PointsTo, Lists.PointsTo) << Config;
    EXPECT_EQ(sixOf(SoA), sixOf(Lists)) << Config;
    EXPECT_EQ(SoA.Stats.WavePasses, Lists.Stats.WavePasses) << Config;
    EXPECT_EQ(SoA.Stats.LevelsPropagated, Lists.Stats.LevelsPropagated)
        << Config;
    EXPECT_EQ(SoA.Stats.WaveFallbacks, Lists.Stats.WaveFallbacks) << Config;
    EXPECT_EQ(SoA.Stats.DeltaPropagations, Lists.Stats.DeltaPropagations)
        << Config;
  }
}

//===----------------------------------------------------------------------===//
// Random systems: solutions and final graphs agree, all configs, all
// thread counts
//===----------------------------------------------------------------------===//

struct RandomWaveCase {
  uint64_t Seed;
  uint32_t NumVars;
  uint32_t NumCons;
  double Density;
};

class RandomWaveTest : public testing::TestWithParam<RandomWaveCase> {};

TEST_P(RandomWaveTest, WaveMatchesWorklistOnRandomSystems) {
  const RandomWaveCase &Case = GetParam();
  PRNG Rng(Case.Seed);
  RandomConstraintShape Shape = randomConstraintShape(
      Case.NumVars, Case.NumCons, Case.Density / Case.NumVars, Rng);

  ConstructorTable Constructors;
  SolverOptions Base =
      makeConfig(GraphForm::Inductive, CycleElim::Online, Case.Seed);
  Oracle O =
      buildOracle(workload::makeRandomGenerator(Shape), Constructors, Base);

  for (const SolverOptions &Config : allConfigs(Case.Seed)) {
    const Oracle *WO = Config.Elim == CycleElim::Oracle ? &O : nullptr;

    SolverOptions WorklistOpts = Config;
    WorklistOpts.Closure = ClosureMode::Worklist;
    TermTable TermsA(Constructors);
    ConstraintSolver Reference(TermsA, WorklistOpts, WO);
    workload::emitRandomConstraints(Shape, Reference);
    Reference.finalize();
    Signature Expected = lsSignature(Reference);
    uint64_t ExpectedEdges = Reference.countFinalEdges();

    for (unsigned Threads : {1u, 2u, 8u}) {
      SolverOptions WaveOpts = Config;
      WaveOpts.Closure = ClosureMode::Wave;
      WaveOpts.Threads = Threads;
      TermTable TermsB(Constructors);
      ConstraintSolver Wave(TermsB, WaveOpts, WO);
      workload::emitRandomConstraints(Shape, Wave);
      Wave.finalize();

      EXPECT_EQ(lsSignature(Wave), Expected)
          << Config.configName() << " threads=" << Threads;
      EXPECT_EQ(Wave.countFinalEdges(), ExpectedEdges)
          << Config.configName() << " threads=" << Threads;
    }
  }
}

INSTANTIATE_TEST_SUITE_P(
    Shapes, RandomWaveTest,
    testing::Values(RandomWaveCase{21, 10, 6, 1.0},
                    RandomWaveCase{22, 30, 20, 2.0},
                    RandomWaveCase{23, 60, 40, 1.5},
                    RandomWaveCase{24, 100, 66, 1.0},
                    RandomWaveCase{25, 150, 100, 1.2},
                    RandomWaveCase{26, 40, 0, 2.0},
                    RandomWaveCase{27, 25, 16, 4.0}),
    [](const auto &Info) {
      return "seed" + std::to_string(Info.param.Seed) + "_n" +
             std::to_string(Info.param.NumVars);
    });

//===----------------------------------------------------------------------===//
// Incremental use: queries interleaved with adds re-close correctly
//===----------------------------------------------------------------------===//

TEST(WaveIncrementalTest, QueriesBetweenAddsSeeConsistentClosure) {
  PRNG Rng(77);
  RandomConstraintShape Shape = randomConstraintShape(60, 40, 2.0 / 60, Rng);

  ConstructorTable Constructors;
  SolverOptions Options = makeConfig(GraphForm::Standard, CycleElim::Online);

  // One-shot worklist reference.
  TermTable TermsA(Constructors);
  ConstraintSolver Reference(TermsA, Options);
  workload::emitRandomConstraints(Shape, Reference);
  Reference.finalize();
  Signature Expected = lsSignature(Reference);

  // Wave solver, forced closed after every single constraint: the maximal
  // amount of cache invalidation and re-leveling the design allows.
  SolverOptions WaveOpts = Options;
  WaveOpts.Closure = ClosureMode::Wave;
  TermTable TermsB(Constructors);
  ConstraintSolver Wave(TermsB, WaveOpts);
  uint32_t Step = 0;
  emitWithHook(Shape, Wave, [&](ConstraintSolver &S) {
    if (++Step % 3 == 0)
      S.ensureClosed();
  });
  Wave.finalize();
  EXPECT_EQ(lsSignature(Wave), Expected);
  EXPECT_EQ(Wave.countFinalEdges(), Reference.countFinalEdges());
}

//===----------------------------------------------------------------------===//
// setClosure mid-life: switching modes closes first and stays sound
//===----------------------------------------------------------------------===//

TEST(WaveIncrementalTest, SwitchingClosureModesMidStreamIsSound) {
  PRNG Rng(78);
  RandomConstraintShape Shape = randomConstraintShape(50, 34, 2.0 / 50, Rng);

  ConstructorTable Constructors;
  SolverOptions Options = makeConfig(GraphForm::Inductive, CycleElim::Online);

  TermTable TermsA(Constructors);
  ConstraintSolver Reference(TermsA, Options);
  workload::emitRandomConstraints(Shape, Reference);
  Reference.finalize();

  TermTable TermsB(Constructors);
  ConstraintSolver Mixed(TermsB, Options);
  uint32_t Step = 0;
  emitWithHook(Shape, Mixed, [&](ConstraintSolver &S) {
    if (++Step % 7 == 0)
      S.setClosure(Step % 14 == 0 ? ClosureMode::Worklist
                                  : ClosureMode::Wave);
  });
  Mixed.finalize();
  EXPECT_EQ(lsSignature(Mixed), lsSignature(Reference));
  EXPECT_EQ(Mixed.countFinalEdges(), Reference.countFinalEdges());
}
