//===- support/Format.h - Text tables and number formatting ----*- C++ -*-===//
//
// Part of the poce project.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Helpers for the bench harnesses: aligned text tables that mirror the
/// paper's tables, plus number formatting utilities.
///
//===----------------------------------------------------------------------===//

#ifndef POCE_SUPPORT_FORMAT_H
#define POCE_SUPPORT_FORMAT_H

#include <cstdint>
#include <cstdio>
#include <string>
#include <vector>

namespace poce {

/// Formats \p Value with fixed \p Decimals digits after the point.
std::string formatDouble(double Value, int Decimals);

/// Formats \p Value with thousands separators ("1,234,567").
std::string formatGrouped(uint64_t Value);

/// An aligned plain-text table. Columns are right-aligned except the
/// first, which is left-aligned (matching the paper's layout: benchmark
/// name first, numbers after).
class TextTable {
public:
  explicit TextTable(std::vector<std::string> Header);

  /// Appends a data row; must have as many cells as the header.
  void addRow(std::vector<std::string> Row);

  /// Renders the table with a separator line under the header.
  void print(std::FILE *Out = stdout) const;

private:
  std::vector<std::vector<std::string>> Rows; // Rows[0] is the header.
};

} // namespace poce

#endif // POCE_SUPPORT_FORMAT_H
