//===- andersen/ConstraintGen.cpp - Andersen constraint generation --------===//
//
// Part of the poce project.
//
//===----------------------------------------------------------------------===//

#include "andersen/ConstraintGen.h"

#include "support/Debug.h"
#include "support/ErrorHandling.h"

#include <cassert>

#define POCE_DEBUG_TYPE "andersen"

using namespace poce;
using namespace poce::andersen;
using namespace poce::minic;

ConstraintGenerator::ConstraintGenerator(ConstraintSolver &Solver)
    : Solver(Solver), Terms(Solver.terms()) {
  // ref(name, get, ~set): Section 3.1 of the paper.
  RefCons = Terms.mutableConstructors().getOrCreate(
      "ref", {Variance::Covariant, Variance::Covariant,
              Variance::Contravariant});
}

//===----------------------------------------------------------------------===//
// Locations and scopes
//===----------------------------------------------------------------------===//

LocationId ConstraintGenerator::createLocation(const std::string &Name,
                                               LocationKind Kind,
                                               bool IsArray) {
  // Qualified names are unique; shadowing in nested blocks appends a
  // uniquifier.
  std::string Unique = Name;
  while (NameIndex.count(Unique))
    Unique = Name + "#" + std::to_string(++NextLocalUniquifier);

  Location Loc;
  Loc.Name = Unique;
  Loc.Kind = Kind;
  Loc.IsArray = IsArray;
  Loc.Content = Solver.freshVar(Unique);

  ConsId NameCons = Terms.mutableConstructors().getOrCreate("@" + Unique, {});
  ExprId NameTerm = Terms.cons(NameCons, {});
  ExprId ContentVar = Terms.var(Loc.Content);
  Loc.RefTerm = Terms.cons(RefCons, {NameTerm, ContentVar, ContentVar});

  LocationId Id = static_cast<LocationId>(Locations.size());
  Locations.push_back(Loc);
  RefTermToLocation.insert(Loc.RefTerm, Id);
  NameIndex[Unique] = Id;

  // Arrays (and functions, handled by the lam constraint) contain
  // themselves: reading an array r-value yields the array location, which
  // models the decay of "a" to "&a[0]" field-insensitively.
  if (IsArray)
    Solver.addConstraint(Loc.RefTerm, ContentVar);
  return Id;
}

LocationId ConstraintGenerator::locationOfRefTerm(ExprId Term) const {
  const LocationId *Id = RefTermToLocation.lookup(Term);
  return Id ? *Id : NotFound;
}

LocationId
ConstraintGenerator::locationByName(const std::string &Name) const {
  auto It = NameIndex.find(Name);
  return It == NameIndex.end() ? NotFound : It->second;
}

LocationId ConstraintGenerator::lookupOrCreateIdent(const std::string &Name) {
  for (auto It = LocalScopes.rbegin(); It != LocalScopes.rend(); ++It) {
    auto Found = It->find(Name);
    if (Found != It->end())
      return Found->second;
  }
  auto Found = GlobalScope.find(Name);
  if (Found != GlobalScope.end())
    return Found->second;
  // Implicitly declared identifier (e.g. an external function used
  // without a prototype): create a global location on first use.
  LocationId Id = createLocation(Name, LocationKind::Global,
                                 /*IsArray=*/false);
  GlobalScope[Name] = Id;
  return Id;
}

void ConstraintGenerator::bindLocal(const std::string &Name, LocationId Loc) {
  assert(!LocalScopes.empty() && "local binding outside any scope!");
  LocalScopes.back()[Name] = Loc;
}

void ConstraintGenerator::pushScope() { LocalScopes.emplace_back(); }

void ConstraintGenerator::popScope() {
  assert(!LocalScopes.empty() && "scope underflow!");
  LocalScopes.pop_back();
}

//===----------------------------------------------------------------------===//
// Constraint helpers
//===----------------------------------------------------------------------===//

VarId ConstraintGenerator::freshVar(const char *Hint) {
  return Solver.freshVar(Hint);
}

VarId ConstraintGenerator::readInto(ExprId LValues) {
  // tau <= ref(1, T, ~0): by covariance the contents of every location in
  // tau flow into T.
  VarId T = freshVar("rd");
  ExprId Sink =
      Terms.cons(RefCons, {Terms.one(), Terms.var(T), Terms.zero()});
  Solver.addConstraint(LValues, Sink);
  return T;
}

ExprId ConstraintGenerator::rvalueOf(ExprId LValues) {
  if (LValues == Terms.zero())
    return Terms.zero();
  if (Terms.kind(LValues) == ExprKind::Cons &&
      Terms.consOf(LValues) == RefCons)
    return Terms.argsOf(LValues)[1]; // The "get" set of the known location.
  return Terms.var(readInto(LValues));
}

void ConstraintGenerator::writeInto(ExprId LValues, ExprId Value) {
  if (Value == Terms.zero() || LValues == Terms.zero())
    return;
  if (Terms.kind(LValues) == ExprKind::Cons &&
      Terms.consOf(LValues) == RefCons) {
    // Statically known single location: write directly into its "set"
    // domain (One for pseudo-locations, discharging the write).
    Solver.addConstraint(Value, Terms.argsOf(LValues)[2]);
    return;
  }
  // tau <= ref(1, 1, ~V): by contravariance V flows into the contents of
  // every location in tau.
  ExprId Sink = Terms.cons(RefCons, {Terms.one(), Terms.one(), Value});
  Solver.addConstraint(LValues, Sink);
}

ExprId ConstraintGenerator::wrapRValue(ExprId Value) {
  // A pseudo-location with contents V and an unconstrained set method:
  // reading it yields V; writing to it is discharged.
  return Terms.cons(RefCons, {Terms.zero(), Value, Terms.one()});
}

//===----------------------------------------------------------------------===//
// Functions
//===----------------------------------------------------------------------===//

ConstraintGenerator::FunctionInfo &
ConstraintGenerator::declareFunction(const FunctionDecl *FD) {
  auto It = Functions.find(FD->Name);
  if (It != Functions.end())
    return It->second;

  FunctionInfo Info;
  // Reuse a location created by an earlier implicit use of the name.
  auto Global = GlobalScope.find(FD->Name);
  if (Global != GlobalScope.end()) {
    Info.Loc = Global->second;
    Locations[Info.Loc].Kind = LocationKind::Function;
  } else {
    Info.Loc =
        createLocation(FD->Name, LocationKind::Function, /*IsArray=*/false);
    GlobalScope[FD->Name] = Info.Loc;
  }
  Info.Return = freshVar("ret");
  Info.Variadic = FD->Variadic;

  SmallVector<ExprId, 8> LamArgs;
  SmallVector<Variance, 8> LamVariance;
  for (size_t I = 0; I != FD->Params.size(); ++I) {
    const VarDecl *Param = FD->Params[I];
    std::string ParamName =
        FD->Name + "." +
        (Param->Name.empty() ? "p" + std::to_string(I) : Param->Name);
    bool IsArray = Param->TypeText.find("[]") != std::string::npos;
    LocationId ParamLoc =
        createLocation(ParamName, LocationKind::Param, IsArray);
    Info.Params.push_back(ParamLoc);
    LamArgs.push_back(Terms.var(Locations[ParamLoc].Content));
    LamVariance.push_back(Variance::Contravariant);
  }
  LamArgs.push_back(Terms.var(Info.Return));
  LamVariance.push_back(Variance::Covariant);

  ConsId LamCons = Terms.mutableConstructors().getOrCreate(
      "lam$" + std::to_string(FD->Params.size()), LamVariance);
  ExprId LamTerm = Terms.cons(LamCons, LamArgs);
  // The function's location contains its lam value, so reading the
  // function name (or a function pointer holding it) yields the lam. It
  // also contains itself (function designators decay to pointers), which
  // both makes pts(fp) report the function and lets (*fp)(...) find the
  // lam one indirection down.
  Solver.addConstraint(LamTerm, Terms.var(Locations[Info.Loc].Content));
  Solver.addConstraint(Locations[Info.Loc].RefTerm,
                       Terms.var(Locations[Info.Loc].Content));

  return Functions.emplace(FD->Name, std::move(Info)).first->second;
}

void ConstraintGenerator::generateFunctionBody(const FunctionDecl *FD) {
  FunctionInfo &Info = declareFunction(FD);
  Info.HasBody = true;
  const FunctionInfo *PreviousFunction = CurrentFunction;
  std::string PreviousName = CurrentFunctionName;
  CurrentFunction = &Info;
  CurrentFunctionName = FD->Name;

  pushScope();
  // Bind the definition's parameter names (which may differ from a
  // prototype's) to the canonical parameter locations.
  for (size_t I = 0; I != FD->Params.size() && I != Info.Params.size(); ++I)
    if (!FD->Params[I]->Name.empty())
      bindLocal(FD->Params[I]->Name, Info.Params[I]);
  generateStmt(FD->Body);
  popScope();

  CurrentFunction = PreviousFunction;
  CurrentFunctionName = std::move(PreviousName);
}

//===----------------------------------------------------------------------===//
// Declarations and statements
//===----------------------------------------------------------------------===//

void ConstraintGenerator::generateVarDecl(const VarDecl *VD, bool IsLocal) {
  if (VD->Name.empty())
    return; // Malformed input; the parser already diagnosed it.
  bool IsArray = VD->TypeText.find("[]") != std::string::npos;
  LocationId Loc;
  if (IsLocal) {
    Loc = createLocation(CurrentFunctionName + "." + VD->Name,
                         LocationKind::Local, IsArray);
    bindLocal(VD->Name, Loc);
  } else {
    // Globals: tentative definitions and extern declarations of the same
    // name share one location.
    auto It = GlobalScope.find(VD->Name);
    if (It != GlobalScope.end()) {
      Loc = It->second;
    } else {
      Loc = createLocation(VD->Name, LocationKind::Global, IsArray);
      GlobalScope[VD->Name] = Loc;
    }
  }
  if (VD->Init)
    generateInitInto(Loc, VD->Init);
}

void ConstraintGenerator::generateInitInto(LocationId Target,
                                           const Expr *Init) {
  // Brace initializers flow every leaf r-value into the (field-
  // insensitive) target location.
  if (const auto *List = dyn_cast<InitListExpr>(Init)) {
    for (const Expr *Element : List->Inits)
      generateInitInto(Target, Element);
    return;
  }
  ExprId Value = rvalueOf(generateExpr(Init));
  if (Value == Terms.zero())
    return;
  Solver.addConstraint(Value, Terms.var(Locations[Target].Content));
}

void ConstraintGenerator::generateStmt(const Stmt *S) {
  if (!S)
    return;
  switch (S->kind()) {
  case Node::Kind::Compound: {
    pushScope();
    for (const Stmt *Sub : cast<CompoundStmt>(S)->Body)
      generateStmt(Sub);
    popScope();
    return;
  }
  case Node::Kind::DeclStmt:
    for (const VarDecl *VD : cast<DeclStmt>(S)->Decls)
      generateVarDecl(VD, /*IsLocal=*/!LocalScopes.empty());
    return;
  case Node::Kind::ExprStmt:
    generateExpr(cast<ExprStmt>(S)->E);
    return;
  case Node::Kind::If: {
    const auto *If = cast<IfStmt>(S);
    generateExpr(If->Cond);
    generateStmt(If->Then);
    generateStmt(If->Else);
    return;
  }
  case Node::Kind::While: {
    const auto *While = cast<WhileStmt>(S);
    generateExpr(While->Cond);
    generateStmt(While->Body);
    return;
  }
  case Node::Kind::Do: {
    const auto *Do = cast<DoStmt>(S);
    generateStmt(Do->Body);
    generateExpr(Do->Cond);
    return;
  }
  case Node::Kind::For: {
    const auto *For = cast<ForStmt>(S);
    pushScope();
    generateStmt(For->Init);
    if (For->Cond)
      generateExpr(For->Cond);
    if (For->Inc)
      generateExpr(For->Inc);
    generateStmt(For->Body);
    popScope();
    return;
  }
  case Node::Kind::Return: {
    const auto *Return = cast<ReturnStmt>(S);
    if (Return->Value) {
      ExprId Value = rvalueOf(generateExpr(Return->Value));
      if (CurrentFunction && Value != Terms.zero())
        Solver.addConstraint(Value, Terms.var(CurrentFunction->Return));
    }
    return;
  }
  case Node::Kind::Switch: {
    const auto *Switch = cast<SwitchStmt>(S);
    generateExpr(Switch->Cond);
    generateStmt(Switch->Body);
    return;
  }
  case Node::Kind::Case: {
    const auto *Case = cast<CaseStmt>(S);
    if (Case->Value)
      generateExpr(Case->Value);
    generateStmt(Case->Sub);
    return;
  }
  case Node::Kind::Break:
  case Node::Kind::Continue:
  case Node::Kind::Null:
    return;
  default:
    poce_unreachable("non-statement node in statement position");
  }
}

//===----------------------------------------------------------------------===//
// Expressions
//===----------------------------------------------------------------------===//

ExprId ConstraintGenerator::generateExpr(const Expr *E) {
  switch (E->kind()) {
  case Node::Kind::IntLiteral:
  case Node::Kind::FloatLiteral:
  case Node::Kind::CharLiteral:
    return Terms.zero(); // Literals designate no locations.
  case Node::Kind::StringLiteral: {
    const auto *Str = cast<StringLiteralExpr>(E);
    LocationId Loc =
        createLocation("str@" + std::to_string(Str->LiteralId),
                       LocationKind::StringLit, /*IsArray=*/true);
    return Locations[Loc].RefTerm;
  }
  case Node::Kind::Ident: {
    LocationId Loc = lookupOrCreateIdent(cast<IdentExpr>(E)->Name);
    return Locations[Loc].RefTerm;
  }
  case Node::Kind::Unary:
    return generateUnary(cast<UnaryExpr>(E));
  case Node::Kind::Binary: {
    const auto *Bin = cast<BinaryExpr>(E);
    ExprId Lhs = generateExpr(Bin->Lhs);
    ExprId Rhs = generateExpr(Bin->Rhs);
    // The result may designate either operand's locations (pointer
    // arithmetic keeps pointees; comparisons add nothing harmful).
    if (Lhs == Terms.zero())
      return Rhs;
    if (Rhs == Terms.zero())
      return Lhs;
    VarId Union = freshVar("bin");
    Solver.addConstraint(Lhs, Terms.var(Union));
    Solver.addConstraint(Rhs, Terms.var(Union));
    return Terms.var(Union);
  }
  case Node::Kind::Assign: {
    const auto *Assign = cast<AssignExpr>(E);
    ExprId Lhs = generateExpr(Assign->Lhs);
    ExprId Rhs = generateExpr(Assign->Rhs);
    // (Asst): read the right-hand side's r-value, then store it into every
    // location the left-hand side designates.
    writeInto(Lhs, rvalueOf(Rhs));
    return Lhs;
  }
  case Node::Kind::Conditional: {
    const auto *Cond = cast<ConditionalExpr>(E);
    generateExpr(Cond->Cond);
    ExprId TrueSet = generateExpr(Cond->TrueExpr);
    ExprId FalseSet = generateExpr(Cond->FalseExpr);
    if (TrueSet == Terms.zero())
      return FalseSet;
    if (FalseSet == Terms.zero())
      return TrueSet;
    VarId Union = freshVar("cond");
    Solver.addConstraint(TrueSet, Terms.var(Union));
    Solver.addConstraint(FalseSet, Terms.var(Union));
    return Terms.var(Union);
  }
  case Node::Kind::Call:
    return generateCall(cast<CallExpr>(E));
  case Node::Kind::Index: {
    // e[i] is *(e + i).
    const auto *Index = cast<IndexExpr>(E);
    ExprId Base = generateExpr(Index->Base);
    ExprId Offset = generateExpr(Index->Index);
    ExprId Sum = Base;
    if (Base == Terms.zero()) {
      Sum = Offset;
    } else if (Offset != Terms.zero()) {
      VarId Union = freshVar("idx");
      Solver.addConstraint(Base, Terms.var(Union));
      Solver.addConstraint(Offset, Terms.var(Union));
      Sum = Terms.var(Union);
    }
    return rvalueOf(Sum);
  }
  case Node::Kind::Member: {
    const auto *Member = cast<MemberExpr>(E);
    ExprId Base = generateExpr(Member->Base);
    if (!Member->IsArrow)
      return Base; // Field-insensitive: e.f designates e's location.
    return rvalueOf(Base); // e->f is (*e).f.
  }
  case Node::Kind::Cast:
    return generateExpr(cast<CastExpr>(E)->Sub);
  case Node::Kind::Sizeof: {
    const auto *Sizeof = cast<SizeofExpr>(E);
    if (Sizeof->Sub)
      generateExpr(Sizeof->Sub);
    return Terms.zero();
  }
  case Node::Kind::Comma: {
    const auto *Comma = cast<CommaExpr>(E);
    generateExpr(Comma->Lhs);
    return generateExpr(Comma->Rhs);
  }
  case Node::Kind::InitList: {
    // Only reachable on malformed input; evaluate children for effects.
    for (const Expr *Element : cast<InitListExpr>(E)->Inits)
      generateExpr(Element);
    return Terms.zero();
  }
  default:
    poce_unreachable("non-expression node in expression position");
  }
}

ExprId ConstraintGenerator::generateUnary(const UnaryExpr *Unary) {
  switch (Unary->Op) {
  case UnaryOp::AddressOf: {
    // (Addr): &e is a pseudo-location whose contents are e's locations.
    ExprId Sub = generateExpr(Unary->Sub);
    return Terms.cons(RefCons, {Terms.zero(), Sub, Terms.one()});
  }
  case UnaryOp::Deref: {
    // (Deref): the locations of *e are the contents of e's locations.
    return rvalueOf(generateExpr(Unary->Sub));
  }
  case UnaryOp::Plus:
  case UnaryOp::Minus:
  case UnaryOp::Not:
  case UnaryOp::LogicalNot:
  case UnaryOp::PreInc:
  case UnaryOp::PreDec:
  case UnaryOp::PostInc:
  case UnaryOp::PostDec:
    // Arithmetic preserves the operand's designation (pointer arithmetic
    // stays within the abstract location).
    return generateExpr(Unary->Sub);
  }
  poce_unreachable("invalid unary operator");
}

bool ConstraintGenerator::isAllocatorName(const std::string &Name) const {
  return Name == "malloc" || Name == "calloc" || Name == "realloc" ||
         Name == "valloc" || Name == "xmalloc" || Name == "strdup";
}

ExprId ConstraintGenerator::generateCall(const CallExpr *Call) {
  // Allocation sites make fresh heap locations (one per syntactic site).
  // A mere prototype of malloc keeps its allocator meaning; only a
  // program-supplied definition overrides it.
  if (const auto *Ident = dyn_cast<IdentExpr>(Call->Callee)) {
    auto Fn = Functions.find(Ident->Name);
    bool DefinedInProgram = Fn != Functions.end() && Fn->second.HasBody;
    if (isAllocatorName(Ident->Name) && !DefinedInProgram) {
      for (const Expr *Arg : Call->Args)
        generateExpr(Arg);
      LocationId Heap =
          createLocation("heap@" + std::to_string(NextHeapId++),
                         LocationKind::Heap, /*IsArray=*/false);
      // The call's r-value is the heap location itself.
      return wrapRValue(Locations[Heap].RefTerm);
    }
  }

  ExprId Callee = generateExpr(Call->Callee);
  // Candidate function values: the contents of the callee's locations.
  // Direct calls f(...) read f's location, which holds the lam; calls
  // through pointers read the stored lam; (*fp)(...) finds it one step
  // further through the function location's self edge.
  ExprId Candidates = rvalueOf(Callee);

  SmallVector<ExprId, 8> SinkArgs;
  SmallVector<Variance, 8> SinkVariance;
  for (const Expr *Arg : Call->Args) {
    SinkArgs.push_back(rvalueOf(generateExpr(Arg)));
    SinkVariance.push_back(Variance::Contravariant);
  }
  VarId Ret = freshVar("call");
  SinkArgs.push_back(Terms.var(Ret));
  SinkVariance.push_back(Variance::Covariant);

  if (Candidates != Terms.zero()) {
    ConsId LamCons = Terms.mutableConstructors().getOrCreate(
        "lam$" + std::to_string(Call->Args.size()), SinkVariance);
    Solver.addConstraint(Candidates, Terms.cons(LamCons, SinkArgs));
  }
  return wrapRValue(Terms.var(Ret));
}

//===----------------------------------------------------------------------===//
// Driver
//===----------------------------------------------------------------------===//

void ConstraintGenerator::run(const TranslationUnit &Unit) {
  for (const Decl *D : Unit.Decls) {
    switch (D->kind()) {
    case Node::Kind::Var:
      generateVarDecl(cast<VarDecl>(D), /*IsLocal=*/false);
      break;
    case Node::Kind::Function: {
      const auto *FD = cast<FunctionDecl>(D);
      declareFunction(FD);
      if (FD->Body)
        generateFunctionBody(FD);
      break;
    }
    case Node::Kind::Record:
    case Node::Kind::Typedef:
    case Node::Kind::Enum:
      break; // Types carry no points-to constraints of their own.
    default:
      poce_unreachable("non-declaration node at top level");
    }
  }
}
