//===- bench/micro_solver.cpp - Microbenchmarks (google-benchmark) ---------===//
//
// Part of the poce project.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Microbenchmarks of the primitive operations that dominate constraint
/// resolution: hash-set membership, union-find, term interning, atomic
/// edge insertion and closure, online cycle detection/collapse, least
/// solution computation, and frontend throughput.
///
//===----------------------------------------------------------------------===//

#include "andersen/Andersen.h"
#include "minic/Lexer.h"
#include "minic/Parser.h"
#include "setcon/ConstraintSolver.h"
#include "support/DenseU64Set.h"
#include "support/PRNG.h"
#include "support/UnionFind.h"
#include "workload/ProgramGenerator.h"
#include "workload/RandomConstraints.h"

#include <benchmark/benchmark.h>

using namespace poce;

//===----------------------------------------------------------------------===//
// Support primitives
//===----------------------------------------------------------------------===//

static void BM_DenseSetInsert(benchmark::State &State) {
  PRNG Rng(1);
  std::vector<uint64_t> Keys(static_cast<size_t>(State.range(0)));
  for (uint64_t &Key : Keys)
    Key = Rng.nextU64() >> 1;
  for (auto _ : State) {
    DenseU64Set Set;
    for (uint64_t Key : Keys)
      benchmark::DoNotOptimize(Set.insert(Key));
  }
  State.SetItemsProcessed(State.iterations() * State.range(0));
}
BENCHMARK(BM_DenseSetInsert)->Arg(1000)->Arg(100000);

static void BM_DenseSetLookupHit(benchmark::State &State) {
  PRNG Rng(2);
  DenseU64Set Set;
  std::vector<uint64_t> Keys(100000);
  for (uint64_t &Key : Keys) {
    Key = Rng.nextU64() >> 1;
    Set.insert(Key);
  }
  size_t I = 0;
  for (auto _ : State) {
    benchmark::DoNotOptimize(Set.contains(Keys[I++ % Keys.size()]));
  }
}
BENCHMARK(BM_DenseSetLookupHit);

static void BM_UnionFind(benchmark::State &State) {
  const uint32_t N = static_cast<uint32_t>(State.range(0));
  PRNG Rng(3);
  for (auto _ : State) {
    UnionFind UF;
    UF.growTo(N);
    for (uint32_t I = 0; I != N; ++I)
      UF.unite(static_cast<uint32_t>(Rng.nextBelow(N)),
               static_cast<uint32_t>(Rng.nextBelow(N)));
    benchmark::DoNotOptimize(UF.find(0));
  }
  State.SetItemsProcessed(State.iterations() * N);
}
BENCHMARK(BM_UnionFind)->Arg(10000);

static void BM_TermInterning(benchmark::State &State) {
  for (auto _ : State) {
    ConstructorTable Constructors;
    TermTable Terms(Constructors);
    ConsId C = Constructors.getOrCreate(
        "c", {Variance::Covariant, Variance::Covariant});
    for (uint32_t I = 0; I != 1000; ++I)
      benchmark::DoNotOptimize(
          Terms.cons(C, {Terms.var(I), Terms.var(I / 2)}));
    // Second pass hits the intern cache.
    for (uint32_t I = 0; I != 1000; ++I)
      benchmark::DoNotOptimize(
          Terms.cons(C, {Terms.var(I), Terms.var(I / 2)}));
  }
  State.SetItemsProcessed(State.iterations() * 2000);
}
BENCHMARK(BM_TermInterning);

//===----------------------------------------------------------------------===//
// Solver operations
//===----------------------------------------------------------------------===//

static void BM_EdgeInsertionChain(benchmark::State &State) {
  // A source propagated down a long variable chain: one closure-driven
  // addition per edge.
  const uint32_t N = static_cast<uint32_t>(State.range(0));
  for (auto _ : State) {
    ConstructorTable Constructors;
    TermTable Terms(Constructors);
    ConstraintSolver Solver(Terms,
                            makeConfig(GraphForm::Inductive,
                                       CycleElim::None));
    ExprId S = Terms.cons(Constructors.getOrCreate("s", {}), {});
    std::vector<VarId> Vars;
    for (uint32_t I = 0; I != N; ++I)
      Vars.push_back(Solver.freshVar("v"));
    Solver.addConstraint(S, Terms.var(Vars[0]));
    for (uint32_t I = 0; I + 1 != N; ++I)
      Solver.addConstraint(Terms.var(Vars[I]), Terms.var(Vars[I + 1]));
    benchmark::DoNotOptimize(Solver.stats().Work);
  }
  State.SetItemsProcessed(State.iterations() * N);
}
BENCHMARK(BM_EdgeInsertionChain)->Arg(1000)->Arg(10000);

static void BM_OnlineDetectionOverhead(benchmark::State &State) {
  // Acyclic random insertions: measures the pure overhead of running the
  // partial chain search on every variable-variable insertion.
  const uint32_t N = 2000;
  PRNG Rng(7);
  std::vector<std::pair<uint32_t, uint32_t>> Edges;
  for (uint32_t I = 0; I != 4 * N; ++I) {
    uint32_t A = static_cast<uint32_t>(Rng.nextBelow(N));
    uint32_t B = static_cast<uint32_t>(Rng.nextBelow(N));
    if (A < B)
      Edges.push_back({A, B}); // Forward only: acyclic.
  }
  for (auto _ : State) {
    ConstructorTable Constructors;
    TermTable Terms(Constructors);
    ConstraintSolver Solver(Terms,
                            makeConfig(GraphForm::Inductive,
                                       CycleElim::Online));
    std::vector<VarId> Vars;
    for (uint32_t I = 0; I != N; ++I)
      Vars.push_back(Solver.freshVar("v"));
    for (auto [A, B] : Edges)
      Solver.addConstraint(Terms.var(Vars[A]), Terms.var(Vars[B]));
    benchmark::DoNotOptimize(Solver.stats().CycleSearchSteps);
  }
  State.SetItemsProcessed(State.iterations() * Edges.size());
}
BENCHMARK(BM_OnlineDetectionOverhead);

static void BM_CycleCollapse(benchmark::State &State) {
  // Insert rings that are detected and collapsed.
  const uint32_t N = 1000;
  for (auto _ : State) {
    ConstructorTable Constructors;
    TermTable Terms(Constructors);
    ConstraintSolver Solver(Terms,
                            makeConfig(GraphForm::Inductive,
                                       CycleElim::Online));
    std::vector<VarId> Vars;
    for (uint32_t I = 0; I != N; ++I)
      Vars.push_back(Solver.freshVar("v"));
    for (uint32_t Ring = 0; Ring + 10 <= N; Ring += 10) {
      for (uint32_t I = 0; I != 10; ++I)
        Solver.addConstraint(Terms.var(Vars[Ring + I]),
                             Terms.var(Vars[Ring + (I + 1) % 10]));
    }
    benchmark::DoNotOptimize(Solver.stats().VarsEliminated);
  }
}
BENCHMARK(BM_CycleCollapse);

static void BM_Compact(benchmark::State &State) {
  // Compaction cost after a collapse-heavy solve.
  PRNG Rng(13);
  RandomConstraintShape Shape =
      randomConstraintShape(3000, 2000, 2.0 / 3000, Rng);
  for (auto _ : State) {
    State.PauseTiming();
    ConstructorTable Constructors;
    TermTable Terms(Constructors);
    ConstraintSolver Solver(Terms, makeConfig(GraphForm::Inductive,
                                              CycleElim::Online));
    workload::emitRandomConstraints(Shape, Solver);
    State.ResumeTiming();
    benchmark::DoNotOptimize(Solver.compact());
  }
}
BENCHMARK(BM_Compact);

static void BM_LeastSolutionIF(benchmark::State &State) {
  PRNG Rng(11);
  RandomConstraintShape Shape =
      randomConstraintShape(2000, 1300, 1.0 / 2000, Rng);
  for (auto _ : State) {
    ConstructorTable Constructors;
    TermTable Terms(Constructors);
    ConstraintSolver Solver(Terms,
                            makeConfig(GraphForm::Inductive,
                                       CycleElim::Online));
    workload::emitRandomConstraints(Shape, Solver);
    Solver.finalize();
    benchmark::DoNotOptimize(Solver.leastSolution(0).size());
  }
}
BENCHMARK(BM_LeastSolutionIF);

//===----------------------------------------------------------------------===//
// Frontend and end-to-end
//===----------------------------------------------------------------------===//

static std::string &benchProgram() {
  static std::string Source = [] {
    workload::ProgramSpec Spec;
    Spec.Name = "micro";
    Spec.TargetAstNodes = 8000;
    Spec.Seed = 99;
    return workload::generateProgram(Spec);
  }();
  return Source;
}

static void BM_LexerThroughput(benchmark::State &State) {
  const std::string &Source = benchProgram();
  for (auto _ : State) {
    minic::Diagnostics Diags;
    minic::Lexer Lexer(Source, Diags);
    benchmark::DoNotOptimize(Lexer.lexAll().size());
  }
  State.SetBytesProcessed(State.iterations() * Source.size());
}
BENCHMARK(BM_LexerThroughput);

static void BM_ParserThroughput(benchmark::State &State) {
  const std::string &Source = benchProgram();
  for (auto _ : State) {
    minic::TranslationUnit Unit;
    andersen::parseSource(Source, Unit);
    benchmark::DoNotOptimize(Unit.numNodes());
  }
  State.SetBytesProcessed(State.iterations() * Source.size());
}
BENCHMARK(BM_ParserThroughput);

static void BM_EndToEndIFOnline(benchmark::State &State) {
  minic::TranslationUnit Unit;
  andersen::parseSource(benchProgram(), Unit);
  for (auto _ : State) {
    ConstructorTable Constructors;
    andersen::AnalysisResult Result = andersen::runAnalysis(
        Unit, Constructors,
        makeConfig(GraphForm::Inductive, CycleElim::Online), nullptr,
        /*ExtractPointsTo=*/false);
    benchmark::DoNotOptimize(Result.Stats.Work);
  }
}
BENCHMARK(BM_EndToEndIFOnline);
