//===- net/ReadView.h - RCU-published immutable query views -----*- C++ -*-===//
//
// Part of the poce project.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The read side of the socket server's concurrency story. A ReadView is
/// an *immutable* solved solver: built once from a GraphSnapshot byte
/// image (the same serialization `save` writes), settled with
/// materializeAllViews(), and then never mutated — every query goes
/// through ConstraintSolver's const read surface (repConst /
/// leastSolutionViewConst / aliasConst), which does no lazy closure, no
/// lazy finalize, and no union-find path compression. That makes a
/// published view shareable across any number of reader lanes with no
/// synchronization at all.
///
/// Publication is epoch/RCU-style: the single writer lane rebuilds a
/// fresh view after each accepted add batch and swaps it into the
/// ViewPublisher; readers acquire() a shared_ptr at the start of a wave
/// and keep querying that epoch even while the next one is being built.
/// Readers therefore never block on writers (the only shared state is
/// one pointer swap), and the writer never waits for readers (old epochs
/// are reclaimed by the last shared_ptr release). The round trip through
/// the snapshot format is deliberate: serialize→deserialize is the one
/// operation the repo already proves produces a semantically identical
/// solver (snapshot_test round-trip tests), so published answers are
/// bit-identical to the writer's own.
///
//===----------------------------------------------------------------------===//

#ifndef POCE_NET_READVIEW_H
#define POCE_NET_READVIEW_H

#include "serve/GraphSnapshot.h"
#include "setcon/ConstraintFile.h"
#include "support/Status.h"

#include <cstdint>
#include <memory>
#include <mutex>
#include <string>
#include <vector>

namespace poce {
namespace net {

/// One immutable epoch of the solved state. Every method is const and
/// thread-safe by construction (see file comment).
class ReadView {
public:
  /// Builds a view from a snapshot byte image: deserialize, settle every
  /// least-solution view, and adopt declarations so textual names
  /// resolve. \p Epoch is the publisher's sequence number for this view.
  static Expected<std::shared_ptr<const ReadView>>
  build(const std::vector<uint8_t> &SnapshotBytes, uint64_t Epoch);

  static constexpr uint32_t NotFound = ~0U;

  /// Resolves a variable name, or NotFound.
  uint32_t varOf(const std::string &Name) const;

  /// "ok { ... }" for `ls X`.
  std::string ls(uint32_t Var) const;

  /// "ok { ... }" for `pts X`.
  std::string pts(uint32_t Var) const;

  /// "ok true" / "ok false" for `alias X Y`.
  std::string alias(uint32_t X, uint32_t Y) const;

  /// The snapshot payload checksum this view was built from — the
  /// epoch's durable identity (matches what `save` would write).
  uint64_t checksum() const { return Checksum; }

  /// Publisher sequence number (0 = the startup view).
  uint64_t epoch() const { return Epoch; }

  const ConstraintSolver &solver() const { return *Bundle.Solver; }

private:
  ReadView() = default;

  serve::SolverBundle Bundle;
  ConstraintSystemFile System;
  uint64_t Checksum = 0;
  uint64_t Epoch = 0;
};

/// The one mutable cell of the read path: a mutex-guarded shared_ptr
/// swap. The mutex is held only for the pointer copy (never while
/// building or querying a view), so acquire() is wait-free for all
/// practical purposes and TSan-clean without requiring
/// std::atomic<std::shared_ptr>.
class ViewPublisher {
public:
  void publish(std::shared_ptr<const ReadView> View) {
    std::lock_guard<std::mutex> Lock(Mutex);
    Current = std::move(View);
  }

  std::shared_ptr<const ReadView> acquire() const {
    std::lock_guard<std::mutex> Lock(Mutex);
    return Current;
  }

private:
  mutable std::mutex Mutex;
  std::shared_ptr<const ReadView> Current;
};

} // namespace net
} // namespace poce

#endif // POCE_NET_READVIEW_H
