file(REMOVE_RECURSE
  "CMakeFiles/scsolve.dir/scsolve.cpp.o"
  "CMakeFiles/scsolve.dir/scsolve.cpp.o.d"
  "scsolve"
  "scsolve.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/scsolve.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
