file(REMOVE_RECURSE
  "CMakeFiles/poce_setcon.dir/ConstraintFile.cpp.o"
  "CMakeFiles/poce_setcon.dir/ConstraintFile.cpp.o.d"
  "CMakeFiles/poce_setcon.dir/ConstraintSolver.cpp.o"
  "CMakeFiles/poce_setcon.dir/ConstraintSolver.cpp.o.d"
  "CMakeFiles/poce_setcon.dir/Constructor.cpp.o"
  "CMakeFiles/poce_setcon.dir/Constructor.cpp.o.d"
  "CMakeFiles/poce_setcon.dir/Oracle.cpp.o"
  "CMakeFiles/poce_setcon.dir/Oracle.cpp.o.d"
  "CMakeFiles/poce_setcon.dir/Term.cpp.o"
  "CMakeFiles/poce_setcon.dir/Term.cpp.o.d"
  "libpoce_setcon.a"
  "libpoce_setcon.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/poce_setcon.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
