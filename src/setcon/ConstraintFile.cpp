//===- setcon/ConstraintFile.cpp - Textual constraint systems --------------===//
//
// Part of the poce project.
//
//===----------------------------------------------------------------------===//

#include "setcon/ConstraintFile.h"

#include <cassert>
#include <cctype>
#include <functional>
#include <sstream>

using namespace poce;

namespace {

/// Character-level cursor over one line.
struct LineCursor {
  const std::string &Line;
  size_t Pos = 0;

  void skipSpace() {
    while (Pos < Line.size() &&
           std::isspace(static_cast<unsigned char>(Line[Pos])))
      ++Pos;
  }

  bool atEnd() {
    skipSpace();
    return Pos >= Line.size() || Line[Pos] == '#';
  }

  bool eat(char C) {
    skipSpace();
    if (Pos < Line.size() && Line[Pos] == C) {
      ++Pos;
      return true;
    }
    return false;
  }

  bool eatArrowLE() {
    skipSpace();
    if (Pos + 1 < Line.size() && Line[Pos] == '<' && Line[Pos + 1] == '=') {
      Pos += 2;
      return true;
    }
    return false;
  }

  std::string word() {
    skipSpace();
    std::string Out;
    while (Pos < Line.size() &&
           (std::isalnum(static_cast<unsigned char>(Line[Pos])) ||
            Line[Pos] == '_' || Line[Pos] == '@' || Line[Pos] == '$' ||
            Line[Pos] == '.'))
      Out.push_back(Line[Pos++]);
    return Out;
  }
};

} // namespace

uint32_t ConstraintSystemFile::varIndex(const std::string &Name) const {
  auto It = VarIndexOf.find(Name);
  return It == VarIndexOf.end() ? NotFound : It->second;
}

bool ConstraintSystemFile::parse(const std::string &Text,
                                 std::string *ErrorOut) {
  VarNames.clear();
  VarIndexOf.clear();
  ConsDecls.clear();
  ConsIndexOf.clear();
  Constraints.clear();

  auto Fail = [&](unsigned LineNo, const std::string &Message) {
    if (ErrorOut)
      *ErrorOut = "line " + std::to_string(LineNo) + ": " + Message;
    return false;
  };

  // Recursive-descent expression parser over a cursor.
  std::function<bool(LineCursor &, FileExpr &, std::string &)> ParseExpr =
      [&](LineCursor &Cursor, FileExpr &Out, std::string &Error) -> bool {
    Cursor.skipSpace();
    std::string Name = Cursor.word();
    if (Name.empty()) {
      Error = "expected expression";
      return false;
    }
    if (Name == "0") {
      Out.K = FileExpr::Kind::Zero;
      return true;
    }
    if (Name == "1") {
      Out.K = FileExpr::Kind::One;
      return true;
    }
    auto Var = VarIndexOf.find(Name);
    if (Var != VarIndexOf.end()) {
      Out.K = FileExpr::Kind::Var;
      Out.VarIndex = Var->second;
      return true;
    }
    auto Cons = ConsIndexOf.find(Name);
    if (Cons == ConsIndexOf.end()) {
      Error = "undeclared name '" + Name + "'";
      return false;
    }
    Out.K = FileExpr::Kind::Apply;
    Out.ConsIndex = Cons->second;
    unsigned Arity =
        static_cast<unsigned>(ConsDecls[Cons->second].ArgVariance.size());
    if (Arity == 0) {
      // Optional empty parens on nullary constructors.
      if (Cursor.eat('(') && !Cursor.eat(')')) {
        Error = "nullary constructor '" + Name + "' applied to arguments";
        return false;
      }
      return true;
    }
    if (!Cursor.eat('(')) {
      Error = "constructor '" + Name + "' needs " + std::to_string(Arity) +
              " argument(s)";
      return false;
    }
    for (unsigned I = 0; I != Arity; ++I) {
      if (I && !Cursor.eat(',')) {
        Error = "expected ',' in arguments of '" + Name + "'";
        return false;
      }
      FileExpr Arg;
      if (!ParseExpr(Cursor, Arg, Error))
        return false;
      Out.Args.push_back(std::move(Arg));
    }
    if (!Cursor.eat(')')) {
      Error = "expected ')' after arguments of '" + Name + "'";
      return false;
    }
    return true;
  };

  std::istringstream In(Text);
  std::string Line;
  unsigned LineNo = 0;
  while (std::getline(In, Line)) {
    ++LineNo;
    LineCursor Cursor{Line};
    if (Cursor.atEnd())
      continue;

    size_t Mark = Cursor.Pos;
    std::string First = Cursor.word();
    if (First == "var") {
      while (!Cursor.atEnd()) {
        std::string Name = Cursor.word();
        if (Name.empty())
          return Fail(LineNo, "expected variable name");
        if (VarIndexOf.count(Name) || ConsIndexOf.count(Name) ||
            Name == "0" || Name == "1")
          return Fail(LineNo, "name '" + Name + "' already in use");
        VarIndexOf[Name] = static_cast<uint32_t>(VarNames.size());
        VarNames.push_back(Name);
      }
      continue;
    }
    if (First == "cons") {
      std::string Name = Cursor.word();
      if (Name.empty())
        return Fail(LineNo, "expected constructor name");
      if (VarIndexOf.count(Name) || ConsIndexOf.count(Name) ||
          Name == "0" || Name == "1")
        return Fail(LineNo, "name '" + Name + "' already in use");
      ConsDecl Decl;
      Decl.Name = Name;
      while (!Cursor.atEnd()) {
        if (Cursor.eat('+')) {
          Decl.ArgVariance.push_back(Variance::Covariant);
        } else if (Cursor.eat('-')) {
          Decl.ArgVariance.push_back(Variance::Contravariant);
        } else {
          return Fail(LineNo, "expected '+' or '-' variance marker");
        }
      }
      ConsIndexOf[Name] = static_cast<uint32_t>(ConsDecls.size());
      ConsDecls.push_back(std::move(Decl));
      continue;
    }

    // A constraint line: expr <= expr.
    Cursor.Pos = Mark;
    FileExpr Lhs, Rhs;
    std::string Error;
    if (!ParseExpr(Cursor, Lhs, Error))
      return Fail(LineNo, Error);
    if (!Cursor.eatArrowLE())
      return Fail(LineNo, "expected '<=' between expressions");
    if (!ParseExpr(Cursor, Rhs, Error))
      return Fail(LineNo, Error);
    if (!Cursor.atEnd())
      return Fail(LineNo, "unexpected trailing input");
    Constraints.push_back({std::move(Lhs), std::move(Rhs)});
  }
  return true;
}

ExprId ConstraintSystemFile::build(const FileExpr &E,
                                   ConstraintSolver &Solver,
                                   const std::vector<VarId> &Vars) const {
  TermTable &Terms = Solver.terms();
  switch (E.K) {
  case FileExpr::Kind::Zero:
    return Terms.zero();
  case FileExpr::Kind::One:
    return Terms.one();
  case FileExpr::Kind::Var:
    return Terms.var(Vars[E.VarIndex]);
  case FileExpr::Kind::Apply: {
    const ConsDecl &Decl = ConsDecls[E.ConsIndex];
    SmallVector<Variance, 4> Variances;
    Variances.append(Decl.ArgVariance.begin(), Decl.ArgVariance.end());
    ConsId Cons =
        Terms.mutableConstructors().getOrCreate(Decl.Name, Variances);
    SmallVector<ExprId, 4> Args;
    for (const FileExpr &Arg : E.Args)
      Args.push_back(build(Arg, Solver, Vars));
    return Terms.cons(Cons, Args);
  }
  }
  assert(false && "invalid file expression kind");
  return Terms.zero();
}

void ConstraintSystemFile::emit(ConstraintSolver &Solver) const {
  std::vector<VarId> Vars;
  Vars.reserve(VarNames.size());
  for (const std::string &Name : VarNames)
    Vars.push_back(Solver.freshVar(Name));
  for (const auto &[Lhs, Rhs] : Constraints)
    Solver.addConstraint(build(Lhs, Solver, Vars), build(Rhs, Solver, Vars));
}

GeneratorFn ConstraintSystemFile::generator() const {
  return [this](ConstraintSolver &Solver) { emit(Solver); };
}

std::string ConstraintSystemFile::exprToText(const FileExpr &E) const {
  switch (E.K) {
  case FileExpr::Kind::Zero:
    return "0";
  case FileExpr::Kind::One:
    return "1";
  case FileExpr::Kind::Var:
    return VarNames[E.VarIndex];
  case FileExpr::Kind::Apply: {
    std::string Out = ConsDecls[E.ConsIndex].Name;
    if (E.Args.empty())
      return Out;
    Out += "(";
    for (size_t I = 0; I != E.Args.size(); ++I) {
      if (I)
        Out += ", ";
      Out += exprToText(E.Args[I]);
    }
    return Out + ")";
  }
  }
  assert(false && "invalid file expression kind");
  return std::string();
}

std::string ConstraintSystemFile::str() const {
  std::string Out;
  if (!VarNames.empty()) {
    Out += "var";
    for (const std::string &Name : VarNames)
      Out += " " + Name;
    Out += "\n";
  }
  for (const ConsDecl &Decl : ConsDecls) {
    Out += "cons " + Decl.Name;
    for (Variance V : Decl.ArgVariance)
      Out += V == Variance::Covariant ? " +" : " -";
    Out += "\n";
  }
  for (const auto &[Lhs, Rhs] : Constraints)
    Out += exprToText(Lhs) + " <= " + exprToText(Rhs) + "\n";
  return Out;
}
