//===- setcon/Constructor.h - Constructor signatures ------------*- C++ -*-===//
//
// Part of the poce project.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Constructors of the set-constraint language (Section 2.1 of the paper).
/// Each constructor c has a unique signature giving its arity and the
/// variance of every argument: covariant arguments make c(...) grow as the
/// argument grows, contravariant arguments shrink it. Andersen's analysis
/// uses ref(l, get, set) with a contravariant third argument and lamN
/// constructors with contravariant parameters.
///
//===----------------------------------------------------------------------===//

#ifndef POCE_SETCON_CONSTRUCTOR_H
#define POCE_SETCON_CONSTRUCTOR_H

#include "support/SmallVector.h"
#include "support/StringInterner.h"

#include <cstdint>
#include <string>
#include <string_view>

namespace poce {

/// Variance of one constructor argument.
enum class Variance : uint8_t {
  Covariant,
  Contravariant,
};

/// Dense id of a registered constructor.
using ConsId = uint32_t;

/// Signature of a constructor: name plus per-argument variance.
struct ConstructorSignature {
  std::string Name;
  SmallVector<Variance, 4> ArgVariance;

  unsigned arity() const { return static_cast<unsigned>(ArgVariance.size()); }
};

/// Registry of constructors. Names are unique; re-registering a name with
/// the same signature returns the existing id, and re-registering with a
/// different signature is a fatal programming error.
class ConstructorTable {
public:
  /// Registers (or looks up) a constructor.
  ConsId getOrCreate(std::string_view Name,
                     const SmallVectorImpl<Variance> &ArgVariance);

  /// Convenience overload taking an initializer list of variances.
  ConsId getOrCreate(std::string_view Name,
                     std::initializer_list<Variance> ArgVariance);

  /// Returns the id of \p Name or NotFound.
  ConsId lookup(std::string_view Name) const;

  const ConstructorSignature &signature(ConsId Id) const;

  uint32_t size() const {
    return static_cast<uint32_t>(Signatures.size());
  }

  static constexpr ConsId NotFound = ~0U;

private:
  StringInterner Names;
  std::vector<ConstructorSignature> Signatures;
};

} // namespace poce

#endif // POCE_SETCON_CONSTRUCTOR_H
