#!/usr/bin/env sh
# Tier-1 verification (see ROADMAP.md): configure, build, run the full
# test suite, then the end-to-end serving harnesses (protocol smoke test,
# socket serving smoke, and crash-recovery/fault-injection) and the
# wave-closure and offline-preprocessing perf smoke tests. Extra
# arguments are passed to ctest.
set -eu

ROOT=$(CDPATH= cd -- "$(dirname -- "$0")/.." && pwd)
BUILD="$ROOT/build"

cmake -B "$BUILD" -S "$ROOT"
cmake --build "$BUILD" -j
(cd "$BUILD" && ctest --output-on-failure -j "$@")
"$ROOT/scripts/serve_smoke.sh" "$BUILD"
"$ROOT/scripts/net_smoke.sh" "$BUILD"
"$ROOT/scripts/repl_smoke.sh" "$BUILD"
"$ROOT/scripts/retract_smoke.sh" "$BUILD"
"$ROOT/scripts/crash_recovery.sh" "$BUILD"
"$ROOT/scripts/metrics_smoke.sh" "$BUILD"
"$ROOT/scripts/perf_smoke.sh" "$BUILD"
"$ROOT/scripts/preprocess_smoke.sh" "$BUILD"
