# Empty dependencies file for ext_closure_analysis.
# This may be replaced when dependencies are built.
