//===- minic/AST.h - MiniC abstract syntax tree -----------------*- C++ -*-===//
//
// Part of the poce project.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The MiniC AST: a closed node hierarchy with tag-based dispatch
/// (LLVM-style lightweight RTTI via node kinds). All nodes are owned by
/// the TranslationUnit's pool; raw pointers inside the tree are non-owning.
///
/// Andersen's analysis is flow-insensitive and field-insensitive, so the
/// AST keeps types as rendered strings for diagnostics and preserves only
/// the structure the analysis consumes: declarations, assignments,
/// address-of/dereference, calls, and initializers.
///
//===----------------------------------------------------------------------===//

#ifndef POCE_MINIC_AST_H
#define POCE_MINIC_AST_H

#include "minic/Token.h"
#include "support/Arena.h"

#include <cassert>
#include <string>
#include <type_traits>
#include <vector>

namespace poce {
namespace minic {

class Node {
public:
  /// Discriminator for the closed node hierarchy. Kinds are grouped so
  /// that classification predicates are range checks.
  enum class Kind : uint8_t {
    // Expressions.
    IntLiteral,
    FloatLiteral,
    CharLiteral,
    StringLiteral,
    Ident,
    Unary,
    Binary,
    Assign,
    Conditional,
    Call,
    Index,
    Member,
    Cast,
    Sizeof,
    Comma,
    InitList,
    ExprFirst = IntLiteral,
    ExprLast = InitList,

    // Statements.
    Compound,
    DeclStmt,
    ExprStmt,
    If,
    While,
    Do,
    For,
    Return,
    Break,
    Continue,
    Switch,
    Case,
    Null,
    StmtFirst = Compound,
    StmtLast = Null,

    // Declarations.
    Var,
    Function,
    Record,
    Typedef,
    Enum,
    DeclFirst = Var,
    DeclLast = Enum,
  };

  Kind kind() const { return NodeKind; }
  SourceLocation loc() const { return Loc; }

protected:
  Node(Kind NodeKind, SourceLocation Loc) : NodeKind(NodeKind), Loc(Loc) {}
  ~Node() = default;

private:
  Kind NodeKind;
  SourceLocation Loc;
};

//===----------------------------------------------------------------------===//
// Expressions
//===----------------------------------------------------------------------===//

class Expr : public Node {
public:
  static bool classof(const Node *N) {
    return N->kind() >= Kind::ExprFirst && N->kind() <= Kind::ExprLast;
  }

protected:
  Expr(Kind NodeKind, SourceLocation Loc) : Node(NodeKind, Loc) {}
};

class IntLiteralExpr : public Expr {
public:
  IntLiteralExpr(SourceLocation Loc, long long Value)
      : Expr(Kind::IntLiteral, Loc), Value(Value) {}
  long long Value;
  static bool classof(const Node *N) { return N->kind() == Kind::IntLiteral; }
};

class FloatLiteralExpr : public Expr {
public:
  FloatLiteralExpr(SourceLocation Loc, double Value)
      : Expr(Kind::FloatLiteral, Loc), Value(Value) {}
  double Value;
  static bool classof(const Node *N) {
    return N->kind() == Kind::FloatLiteral;
  }
};

class CharLiteralExpr : public Expr {
public:
  CharLiteralExpr(SourceLocation Loc, std::string Value)
      : Expr(Kind::CharLiteral, Loc), Value(std::move(Value)) {}
  std::string Value;
  static bool classof(const Node *N) {
    return N->kind() == Kind::CharLiteral;
  }
};

/// A string literal; each occurrence denotes a distinct abstract location.
class StringLiteralExpr : public Expr {
public:
  StringLiteralExpr(SourceLocation Loc, std::string Value, uint32_t LiteralId)
      : Expr(Kind::StringLiteral, Loc), Value(std::move(Value)),
        LiteralId(LiteralId) {}
  std::string Value;
  uint32_t LiteralId;
  static bool classof(const Node *N) {
    return N->kind() == Kind::StringLiteral;
  }
};

class IdentExpr : public Expr {
public:
  IdentExpr(SourceLocation Loc, std::string Name)
      : Expr(Kind::Ident, Loc), Name(std::move(Name)) {}
  std::string Name;
  static bool classof(const Node *N) { return N->kind() == Kind::Ident; }
};

enum class UnaryOp : uint8_t {
  AddressOf,
  Deref,
  Plus,
  Minus,
  Not,
  LogicalNot,
  PreInc,
  PreDec,
  PostInc,
  PostDec,
};

class UnaryExpr : public Expr {
public:
  UnaryExpr(SourceLocation Loc, UnaryOp Op, Expr *Sub)
      : Expr(Kind::Unary, Loc), Op(Op), Sub(Sub) {}
  UnaryOp Op;
  Expr *Sub;
  static bool classof(const Node *N) { return N->kind() == Kind::Unary; }
};

enum class BinaryOp : uint8_t {
  Add,
  Sub,
  Mul,
  Div,
  Rem,
  Shl,
  Shr,
  Lt,
  Gt,
  Le,
  Ge,
  Eq,
  Ne,
  And,
  Or,
  Xor,
  LogicalAnd,
  LogicalOr,
};

class BinaryExpr : public Expr {
public:
  BinaryExpr(SourceLocation Loc, BinaryOp Op, Expr *Lhs, Expr *Rhs)
      : Expr(Kind::Binary, Loc), Op(Op), Lhs(Lhs), Rhs(Rhs) {}
  BinaryOp Op;
  Expr *Lhs, *Rhs;
  static bool classof(const Node *N) { return N->kind() == Kind::Binary; }
};

enum class AssignOp : uint8_t {
  Assign,
  AddAssign,
  SubAssign,
  MulAssign,
  DivAssign,
  RemAssign,
  AndAssign,
  OrAssign,
  XorAssign,
  ShlAssign,
  ShrAssign,
};

class AssignExpr : public Expr {
public:
  AssignExpr(SourceLocation Loc, AssignOp Op, Expr *Lhs, Expr *Rhs)
      : Expr(Kind::Assign, Loc), Op(Op), Lhs(Lhs), Rhs(Rhs) {}
  AssignOp Op;
  Expr *Lhs, *Rhs;
  static bool classof(const Node *N) { return N->kind() == Kind::Assign; }
};

class ConditionalExpr : public Expr {
public:
  ConditionalExpr(SourceLocation Loc, Expr *Cond, Expr *TrueExpr,
                  Expr *FalseExpr)
      : Expr(Kind::Conditional, Loc), Cond(Cond), TrueExpr(TrueExpr),
        FalseExpr(FalseExpr) {}
  Expr *Cond, *TrueExpr, *FalseExpr;
  static bool classof(const Node *N) {
    return N->kind() == Kind::Conditional;
  }
};

class CallExpr : public Expr {
public:
  CallExpr(SourceLocation Loc, Expr *Callee, std::vector<Expr *> Args)
      : Expr(Kind::Call, Loc), Callee(Callee), Args(std::move(Args)) {}
  Expr *Callee;
  std::vector<Expr *> Args;
  static bool classof(const Node *N) { return N->kind() == Kind::Call; }
};

class IndexExpr : public Expr {
public:
  IndexExpr(SourceLocation Loc, Expr *Base, Expr *Index)
      : Expr(Kind::Index, Loc), Base(Base), Index(Index) {}
  Expr *Base, *Index;
  static bool classof(const Node *N) { return N->kind() == Kind::Index; }
};

class MemberExpr : public Expr {
public:
  MemberExpr(SourceLocation Loc, Expr *Base, std::string Member, bool IsArrow)
      : Expr(Kind::Member, Loc), Base(Base), Member(std::move(Member)),
        IsArrow(IsArrow) {}
  Expr *Base;
  std::string Member;
  bool IsArrow;
  static bool classof(const Node *N) { return N->kind() == Kind::Member; }
};

class CastExpr : public Expr {
public:
  CastExpr(SourceLocation Loc, std::string TypeText, Expr *Sub)
      : Expr(Kind::Cast, Loc), TypeText(std::move(TypeText)), Sub(Sub) {}
  std::string TypeText;
  Expr *Sub;
  static bool classof(const Node *N) { return N->kind() == Kind::Cast; }
};

/// sizeof(expr) or sizeof(type); Sub is null for the type form.
class SizeofExpr : public Expr {
public:
  SizeofExpr(SourceLocation Loc, Expr *Sub, std::string TypeText)
      : Expr(Kind::Sizeof, Loc), Sub(Sub), TypeText(std::move(TypeText)) {}
  Expr *Sub;
  std::string TypeText;
  static bool classof(const Node *N) { return N->kind() == Kind::Sizeof; }
};

class CommaExpr : public Expr {
public:
  CommaExpr(SourceLocation Loc, Expr *Lhs, Expr *Rhs)
      : Expr(Kind::Comma, Loc), Lhs(Lhs), Rhs(Rhs) {}
  Expr *Lhs, *Rhs;
  static bool classof(const Node *N) { return N->kind() == Kind::Comma; }
};

class InitListExpr : public Expr {
public:
  InitListExpr(SourceLocation Loc, std::vector<Expr *> Inits)
      : Expr(Kind::InitList, Loc), Inits(std::move(Inits)) {}
  std::vector<Expr *> Inits;
  static bool classof(const Node *N) { return N->kind() == Kind::InitList; }
};

//===----------------------------------------------------------------------===//
// Statements
//===----------------------------------------------------------------------===//

class Stmt : public Node {
public:
  static bool classof(const Node *N) {
    return N->kind() >= Kind::StmtFirst && N->kind() <= Kind::StmtLast;
  }

protected:
  Stmt(Kind NodeKind, SourceLocation Loc) : Node(NodeKind, Loc) {}
};

class VarDecl;

class CompoundStmt : public Stmt {
public:
  CompoundStmt(SourceLocation Loc, std::vector<Stmt *> Body)
      : Stmt(Kind::Compound, Loc), Body(std::move(Body)) {}
  std::vector<Stmt *> Body;
  static bool classof(const Node *N) { return N->kind() == Kind::Compound; }
};

class DeclStmt : public Stmt {
public:
  DeclStmt(SourceLocation Loc, std::vector<VarDecl *> Decls)
      : Stmt(Kind::DeclStmt, Loc), Decls(std::move(Decls)) {}
  std::vector<VarDecl *> Decls;
  static bool classof(const Node *N) { return N->kind() == Kind::DeclStmt; }
};

class ExprStmt : public Stmt {
public:
  ExprStmt(SourceLocation Loc, Expr *E) : Stmt(Kind::ExprStmt, Loc), E(E) {}
  Expr *E;
  static bool classof(const Node *N) { return N->kind() == Kind::ExprStmt; }
};

class IfStmt : public Stmt {
public:
  IfStmt(SourceLocation Loc, Expr *Cond, Stmt *Then, Stmt *Else)
      : Stmt(Kind::If, Loc), Cond(Cond), Then(Then), Else(Else) {}
  Expr *Cond;
  Stmt *Then, *Else; ///< Else may be null.
  static bool classof(const Node *N) { return N->kind() == Kind::If; }
};

class WhileStmt : public Stmt {
public:
  WhileStmt(SourceLocation Loc, Expr *Cond, Stmt *Body)
      : Stmt(Kind::While, Loc), Cond(Cond), Body(Body) {}
  Expr *Cond;
  Stmt *Body;
  static bool classof(const Node *N) { return N->kind() == Kind::While; }
};

class DoStmt : public Stmt {
public:
  DoStmt(SourceLocation Loc, Stmt *Body, Expr *Cond)
      : Stmt(Kind::Do, Loc), Body(Body), Cond(Cond) {}
  Stmt *Body;
  Expr *Cond;
  static bool classof(const Node *N) { return N->kind() == Kind::Do; }
};

class ForStmt : public Stmt {
public:
  ForStmt(SourceLocation Loc, Stmt *Init, Expr *Cond, Expr *Inc, Stmt *Body)
      : Stmt(Kind::For, Loc), Init(Init), Cond(Cond), Inc(Inc), Body(Body) {}
  Stmt *Init; ///< DeclStmt, ExprStmt, or null.
  Expr *Cond, *Inc; ///< May be null.
  Stmt *Body;
  static bool classof(const Node *N) { return N->kind() == Kind::For; }
};

class ReturnStmt : public Stmt {
public:
  ReturnStmt(SourceLocation Loc, Expr *Value)
      : Stmt(Kind::Return, Loc), Value(Value) {}
  Expr *Value; ///< May be null.
  static bool classof(const Node *N) { return N->kind() == Kind::Return; }
};

class BreakStmt : public Stmt {
public:
  explicit BreakStmt(SourceLocation Loc) : Stmt(Kind::Break, Loc) {}
  static bool classof(const Node *N) { return N->kind() == Kind::Break; }
};

class ContinueStmt : public Stmt {
public:
  explicit ContinueStmt(SourceLocation Loc) : Stmt(Kind::Continue, Loc) {}
  static bool classof(const Node *N) { return N->kind() == Kind::Continue; }
};

class SwitchStmt : public Stmt {
public:
  SwitchStmt(SourceLocation Loc, Expr *Cond, Stmt *Body)
      : Stmt(Kind::Switch, Loc), Cond(Cond), Body(Body) {}
  Expr *Cond;
  Stmt *Body;
  static bool classof(const Node *N) { return N->kind() == Kind::Switch; }
};

/// Case label (Value non-null) or default label (Value null), with the
/// labeled substatement.
class CaseStmt : public Stmt {
public:
  CaseStmt(SourceLocation Loc, Expr *Value, Stmt *Sub)
      : Stmt(Kind::Case, Loc), Value(Value), Sub(Sub) {}
  Expr *Value;
  Stmt *Sub;
  static bool classof(const Node *N) { return N->kind() == Kind::Case; }
};

class NullStmt : public Stmt {
public:
  explicit NullStmt(SourceLocation Loc) : Stmt(Kind::Null, Loc) {}
  static bool classof(const Node *N) { return N->kind() == Kind::Null; }
};

//===----------------------------------------------------------------------===//
// Declarations
//===----------------------------------------------------------------------===//

class Decl : public Node {
public:
  static bool classof(const Node *N) {
    return N->kind() >= Kind::DeclFirst && N->kind() <= Kind::DeclLast;
  }
  std::string Name;

protected:
  Decl(Kind NodeKind, SourceLocation Loc, std::string Name)
      : Node(NodeKind, Loc), Name(std::move(Name)) {}
};

/// A variable, parameter, or struct field. TypeText is the rendered
/// declaration type (for diagnostics only — the analysis is untyped).
class VarDecl : public Decl {
public:
  VarDecl(SourceLocation Loc, std::string Name, std::string TypeText,
          Expr *Init)
      : Decl(Kind::Var, Loc, std::move(Name)), TypeText(std::move(TypeText)),
        Init(Init) {}
  std::string TypeText;
  Expr *Init; ///< Scalar expression or InitListExpr; may be null.
  static bool classof(const Node *N) { return N->kind() == Kind::Var; }
};

class FunctionDecl : public Decl {
public:
  FunctionDecl(SourceLocation Loc, std::string Name,
               std::string ReturnTypeText, std::vector<VarDecl *> Params,
               bool Variadic, CompoundStmt *Body)
      : Decl(Kind::Function, Loc, std::move(Name)),
        ReturnTypeText(std::move(ReturnTypeText)), Params(std::move(Params)),
        Variadic(Variadic), Body(Body) {}
  std::string ReturnTypeText;
  std::vector<VarDecl *> Params;
  bool Variadic;
  CompoundStmt *Body; ///< Null for prototypes.
  static bool classof(const Node *N) { return N->kind() == Kind::Function; }
};

class RecordDecl : public Decl {
public:
  RecordDecl(SourceLocation Loc, std::string Tag, bool IsUnion,
             std::vector<VarDecl *> Fields)
      : Decl(Kind::Record, Loc, std::move(Tag)), IsUnion(IsUnion),
        Fields(std::move(Fields)) {}
  bool IsUnion;
  std::vector<VarDecl *> Fields;
  static bool classof(const Node *N) { return N->kind() == Kind::Record; }
};

class TypedefDecl : public Decl {
public:
  TypedefDecl(SourceLocation Loc, std::string Name, std::string TypeText)
      : Decl(Kind::Typedef, Loc, std::move(Name)),
        TypeText(std::move(TypeText)) {}
  std::string TypeText;
  static bool classof(const Node *N) { return N->kind() == Kind::Typedef; }
};

class EnumDecl : public Decl {
public:
  EnumDecl(SourceLocation Loc, std::string Tag,
           std::vector<std::string> Enumerators)
      : Decl(Kind::Enum, Loc, std::move(Tag)),
        Enumerators(std::move(Enumerators)) {}
  std::vector<std::string> Enumerators;
  static bool classof(const Node *N) { return N->kind() == Kind::Enum; }
};

//===----------------------------------------------------------------------===//
// isa / cast / dyn_cast
//===----------------------------------------------------------------------===//

template <typename To, typename From> bool isa(const From *N) {
  return To::classof(N);
}

template <typename To, typename From> To *cast(From *N) {
  assert(isa<To>(N) && "cast<> on node of wrong kind!");
  return static_cast<To *>(N);
}

template <typename To, typename From> const To *cast(const From *N) {
  assert(isa<To>(N) && "cast<> on node of wrong kind!");
  return static_cast<const To *>(N);
}

template <typename To, typename From> To *dyn_cast(From *N) {
  return isa<To>(N) ? static_cast<To *>(N) : nullptr;
}

template <typename To, typename From> const To *dyn_cast(const From *N) {
  return isa<To>(N) ? static_cast<const To *>(N) : nullptr;
}

//===----------------------------------------------------------------------===//
// TranslationUnit
//===----------------------------------------------------------------------===//

/// Owns every AST node of one parsed source file. Nodes live in a bump
/// arena — one pointer bump per node instead of a heap allocation — and
/// are released together when the unit dies. The tree is built once and
/// never edited node-by-node, the lifetime the arena is made for.
class TranslationUnit {
public:
  /// Places a node in the arena. Nodes have no virtual destructor (closed
  /// hierarchy, no vtables); nodes whose members need destruction are
  /// tracked and destroyed when the unit is, everything else is just
  /// dropped with the slabs.
  template <typename NodeT, typename... ArgTypes>
  NodeT *create(ArgTypes &&...Args) {
    NodeT *Raw = Pool.create<NodeT>(std::forward<ArgTypes>(Args)...);
    if constexpr (!std::is_trivially_destructible_v<NodeT>)
      NonTrivial.push_back({Raw, &destroyNode<NodeT>});
    ++NumNodes;
    return Raw;
  }

  ~TranslationUnit() {
    for (auto It = NonTrivial.rbegin(); It != NonTrivial.rend(); ++It)
      It->Destroy(It->N);
  }

  TranslationUnit() = default;
  TranslationUnit(const TranslationUnit &) = delete;
  TranslationUnit &operator=(const TranslationUnit &) = delete;

  std::vector<Decl *> Decls;

  /// Number of nodes allocated (the paper's "AST nodes" metric).
  uint64_t numNodes() const { return NumNodes; }

  /// Arena bytes backing the tree (observability for the bench tables).
  size_t poolBytes() const { return Pool.bytesAllocated(); }

private:
  template <typename NodeT> static void destroyNode(Node *N) {
    static_cast<NodeT *>(N)->~NodeT();
  }

  struct PendingDestructor {
    Node *N;
    void (*Destroy)(Node *);
  };

  Arena Pool{1 << 14};
  std::vector<PendingDestructor> NonTrivial;
  uint64_t NumNodes = 0;
};

/// Returns the name of \p Kind for diagnostics and test output.
const char *nodeKindName(Node::Kind Kind);

} // namespace minic
} // namespace poce

#endif // POCE_MINIC_AST_H
