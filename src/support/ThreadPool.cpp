//===- support/ThreadPool.cpp - Work-stealing thread pool ------------------===//
//
// Part of the poce project.
//
//===----------------------------------------------------------------------===//

#include "support/ThreadPool.h"

#include <algorithm>

using namespace poce;

unsigned ThreadPool::resolveThreads(unsigned Requested) {
  if (Requested)
    return Requested;
  unsigned Hardware = std::thread::hardware_concurrency();
  return Hardware ? Hardware : 1;
}

ThreadPool::ThreadPool(unsigned Lanes) : NumLanes(resolveThreads(Lanes)) {
  this->Lanes.reserve(NumLanes);
  for (unsigned I = 0; I != NumLanes; ++I)
    this->Lanes.push_back(std::make_unique<Lane>());
  Workers.reserve(NumLanes - 1);
  for (unsigned I = 1; I != NumLanes; ++I)
    Workers.emplace_back([this, I] { workerLoop(I); });
}

ThreadPool::~ThreadPool() {
  {
    std::lock_guard<std::mutex> Lock(WaveMutex);
    Stopping = true;
  }
  WaveStart.notify_all();
  for (std::thread &Worker : Workers)
    Worker.join();
}

uint64_t ThreadPool::numSteals() const {
  return Steals.load(std::memory_order_relaxed);
}

bool ThreadPool::grabChunk(unsigned LaneIdx, Chunk &Out) {
  // Own work first, newest chunk first (cache-warm end of the deque).
  {
    Lane &Own = *Lanes[LaneIdx];
    std::lock_guard<std::mutex> Lock(Own.Mutex);
    if (!Own.Deque.empty()) {
      Out = Own.Deque.back();
      Own.Deque.pop_back();
      return true;
    }
  }
  // Steal from the front of the other lanes' deques, starting just after
  // this lane so victims rotate instead of everyone hammering lane 0.
  for (unsigned Offset = 1; Offset != NumLanes; ++Offset) {
    Lane &Victim = *Lanes[(LaneIdx + Offset) % NumLanes];
    std::lock_guard<std::mutex> Lock(Victim.Mutex);
    if (!Victim.Deque.empty()) {
      Out = Victim.Deque.front();
      Victim.Deque.pop_front();
      Steals.fetch_add(1, std::memory_order_relaxed);
      return true;
    }
  }
  return false;
}

void ThreadPool::drainAsLane(unsigned LaneIdx) {
  Chunk C;
  while (grabChunk(LaneIdx, C)) {
    const std::function<void(size_t, size_t, unsigned)> *Fn;
    {
      std::lock_guard<std::mutex> Lock(WaveMutex);
      Fn = WaveFn;
    }
    try {
      (*Fn)(C.Begin, C.End, LaneIdx);
    } catch (...) {
      std::lock_guard<std::mutex> Lock(ErrorMutex);
      if (!FirstError)
        FirstError = std::current_exception();
    }
    std::lock_guard<std::mutex> Lock(WaveMutex);
    if (--ChunksRemaining == 0)
      WaveDone.notify_all();
  }
}

void ThreadPool::workerLoop(unsigned LaneIdx) {
  uint64_t SeenGeneration = 0;
  while (true) {
    {
      std::unique_lock<std::mutex> Lock(WaveMutex);
      WaveStart.wait(Lock, [&] {
        return Stopping ||
               (WaveGeneration != SeenGeneration && ChunksRemaining != 0);
      });
      if (Stopping)
        return;
      SeenGeneration = WaveGeneration;
    }
    drainAsLane(LaneIdx);
  }
}

void ThreadPool::parallelForChunks(
    size_t N, const std::function<void(size_t, size_t, unsigned)> &Fn,
    size_t Grain) {
  if (N == 0)
    return;
  if (Grain == 0)
    Grain = std::max<size_t>(1, N / (size_t(NumLanes) * 8));
  if (NumLanes == 1 || N <= Grain) {
    Fn(0, N, 0); // Inline: exceptions propagate directly.
    return;
  }

  size_t NumChunks = (N + Grain - 1) / Grain;
  // Publish the wave state before any chunk becomes grabbable: a worker
  // lingering from the previous wave may steal a chunk as soon as it is
  // pushed, and must observe the current WaveFn and a primed counter.
  {
    std::lock_guard<std::mutex> Lock(WaveMutex);
    WaveFn = &Fn;
    ChunksRemaining = NumChunks;
    ++WaveGeneration;
  }
  for (size_t I = 0; I != NumChunks; ++I) {
    Lane &Target = *Lanes[I % NumLanes];
    std::lock_guard<std::mutex> Lock(Target.Mutex);
    Target.Deque.push_back({I * Grain, std::min(N, (I + 1) * Grain)});
  }
  WaveStart.notify_all();

  drainAsLane(0);
  {
    std::unique_lock<std::mutex> Lock(WaveMutex);
    WaveDone.wait(Lock, [&] { return ChunksRemaining == 0; });
    WaveFn = nullptr;
  }

  std::exception_ptr Error;
  {
    std::lock_guard<std::mutex> Lock(ErrorMutex);
    Error = FirstError;
    FirstError = nullptr;
  }
  if (Error)
    std::rethrow_exception(Error);
}

void ThreadPool::parallelFor(size_t N,
                             const std::function<void(size_t, unsigned)> &Fn,
                             size_t Grain) {
  parallelForChunks(
      N,
      [&Fn](size_t Begin, size_t End, unsigned LaneIdx) {
        for (size_t I = Begin; I != End; ++I)
          Fn(I, LaneIdx);
      },
      Grain);
}
