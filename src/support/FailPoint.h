//===- support/FailPoint.h - Env-armed fault injection ----------*- C++ -*-===//
//
// Part of the poce project.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Named failpoints for fault-injection testing. Production code calls
/// FailPoint::hit("site.name") at the exact spot where a fault could
/// strike (before a write, between write and rename, inside the closure
/// loop) and acts on the returned mode:
///
///   Off    — nothing armed, proceed (the only mode in production)
///   Error  — simulate the operation failing; return an error Status
///   Short  — simulate a partial effect (site-specific: truncate the
///            write, then report failure)
///   Crash  — _exit(137) right here, simulating a SIGKILL at this
///            instruction; crash_recovery.sh uses this to prove warm
///            recovery from every torn state
///
/// Failpoints are armed via the POCE_FAILPOINTS environment variable (or
/// armSpec programmatically): a comma-separated list of
/// `name=mode[@N]` entries, where `@N` makes the failpoint fire on the
/// N-th hit only (1-based, default 1) and disarm afterwards. Example:
///
///   POCE_FAILPOINTS='wal.append.mid=crash@3,snapshot.save=error'
///
/// The disarmed fast path is one relaxed atomic load — safe to call from
/// the solver's closure loop.
///
//===----------------------------------------------------------------------===//

#ifndef POCE_SUPPORT_FAILPOINT_H
#define POCE_SUPPORT_FAILPOINT_H

#include "support/Status.h"

#include <atomic>
#include <cstdint>
#include <string>

namespace poce {

class FailPoint {
public:
  enum class Mode : uint8_t { Off, Error, Short, Crash };

  /// Reports what should happen at this hit of failpoint \p Name.
  /// Crash mode never returns: it prints the site to stderr and
  /// _exit(137)s (the SIGKILL exit status). A fired one-shot failpoint
  /// disarms itself.
  static Mode hit(const char *Name) {
    if (ArmedCount.load(std::memory_order_relaxed) == 0)
      return Mode::Off;
    return hitSlow(Name);
  }

  /// Arms failpoints from a `name=mode[@N],...` spec. Unknown modes or
  /// malformed entries return InvalidArgument and arm nothing.
  static Status armSpec(const std::string &Spec);

  /// Arms from the POCE_FAILPOINTS environment variable if set. Called
  /// once by drivers at startup. Malformed specs are fatal here (a typo
  /// in a fault-injection run must not silently test nothing).
  static void armFromEnv();

  static void disarmAll();

  /// Number of currently armed failpoints (for stats reporting).
  static size_t armedCount() {
    return static_cast<size_t>(ArmedCount.load(std::memory_order_relaxed));
  }

  /// Convenience: an Error-mode Status for site \p Name.
  static Status injectedError(const char *Name) {
    return Status::error(ErrorCode::IoError,
                         std::string("injected fault at failpoint '") + Name +
                             "'");
  }

private:
  static Mode hitSlow(const char *Name);

  static std::atomic<int> ArmedCount;
};

} // namespace poce

#endif // POCE_SUPPORT_FAILPOINT_H
