//===- tests/minic_parser_test.cpp - MiniC parser unit tests ---------------===//
//
// Part of the poce project.
//
//===----------------------------------------------------------------------===//

#include "minic/Lexer.h"
#include "minic/Parser.h"

#include <gtest/gtest.h>

using namespace poce;
using namespace poce::minic;

namespace {

struct ParseResult {
  TranslationUnit Unit;
  Diagnostics Diags{"test.c"};
  bool Ok = false;
};

std::unique_ptr<ParseResult> parse(const std::string &Source) {
  auto Result = std::make_unique<ParseResult>();
  Lexer L(Source, Result->Diags);
  Parser P(L.lexAll(), Result->Diags, Result->Unit);
  Result->Ok = P.parseTranslationUnit();
  return Result;
}

/// First declaration of the given kind, or null.
template <typename DeclT> const DeclT *firstDecl(const TranslationUnit &TU) {
  for (const Decl *D : TU.Decls)
    if (const auto *Typed = dyn_cast<DeclT>(D))
      return Typed;
  return nullptr;
}

} // namespace

//===----------------------------------------------------------------------===//
// Declarations
//===----------------------------------------------------------------------===//

TEST(ParserTest, GlobalVariables) {
  auto R = parse("int x; char *p; int a, *b, c[10];");
  ASSERT_TRUE(R->Ok) << R->Diags.errors().size();
  ASSERT_EQ(R->Unit.Decls.size(), 5u);
  EXPECT_EQ(R->Unit.Decls[0]->Name, "x");
  EXPECT_EQ(R->Unit.Decls[1]->Name, "p");
  EXPECT_EQ(R->Unit.Decls[2]->Name, "a");
  EXPECT_EQ(R->Unit.Decls[3]->Name, "b");
  EXPECT_EQ(R->Unit.Decls[4]->Name, "c");
  EXPECT_NE(cast<VarDecl>(R->Unit.Decls[4])->TypeText.find("[]"),
            std::string::npos);
}

TEST(ParserTest, GlobalInitializers) {
  auto R = parse("int x = 1; int *p = &x; int a[3] = {1, 2, 3};");
  ASSERT_TRUE(R->Ok);
  const auto *P = cast<VarDecl>(R->Unit.Decls[1]);
  ASSERT_NE(P->Init, nullptr);
  EXPECT_TRUE(isa<UnaryExpr>(P->Init));
  const auto *A = cast<VarDecl>(R->Unit.Decls[2]);
  ASSERT_NE(A->Init, nullptr);
  EXPECT_TRUE(isa<InitListExpr>(A->Init));
  EXPECT_EQ(cast<InitListExpr>(A->Init)->Inits.size(), 3u);
}

TEST(ParserTest, FunctionDefinitionAndPrototype) {
  auto R = parse("int add(int a, int b) { return a + b; }\n"
                 "void proto(char *s);\n"
                 "int noargs(void);\n");
  ASSERT_TRUE(R->Ok);
  const auto *Add = cast<FunctionDecl>(R->Unit.Decls[0]);
  EXPECT_EQ(Add->Name, "add");
  ASSERT_EQ(Add->Params.size(), 2u);
  EXPECT_EQ(Add->Params[0]->Name, "a");
  ASSERT_NE(Add->Body, nullptr);
  const auto *Proto = cast<FunctionDecl>(R->Unit.Decls[1]);
  EXPECT_EQ(Proto->Body, nullptr);
  ASSERT_EQ(Proto->Params.size(), 1u);
  const auto *NoArgs = cast<FunctionDecl>(R->Unit.Decls[2]);
  EXPECT_TRUE(NoArgs->Params.empty());
}

TEST(ParserTest, VariadicFunction) {
  auto R = parse("int printf(char *fmt, ...);");
  ASSERT_TRUE(R->Ok);
  const auto *F = cast<FunctionDecl>(R->Unit.Decls[0]);
  EXPECT_TRUE(F->Variadic);
  EXPECT_EQ(F->Params.size(), 1u);
}

TEST(ParserTest, FunctionPointerDeclarators) {
  auto R = parse("int (*fp)(int, char *);\n"
                 "int *(*table[4])(void);\n"
                 "int *returnsPointer(int x);\n");
  ASSERT_TRUE(R->Ok);
  // (*fp)(...) is a variable, not a function.
  EXPECT_TRUE(isa<VarDecl>(R->Unit.Decls[0]));
  EXPECT_EQ(R->Unit.Decls[0]->Name, "fp");
  EXPECT_TRUE(isa<VarDecl>(R->Unit.Decls[1]));
  EXPECT_EQ(R->Unit.Decls[1]->Name, "table");
  // returnsPointer is a function prototype despite the leading '*'.
  EXPECT_TRUE(isa<FunctionDecl>(R->Unit.Decls[2]));
}

TEST(ParserTest, StructDeclaration) {
  auto R = parse("struct node { struct node *next; int *data; };\n"
                 "struct node head;\n");
  ASSERT_TRUE(R->Ok);
  const auto *Record = firstDecl<RecordDecl>(R->Unit);
  ASSERT_NE(Record, nullptr);
  EXPECT_EQ(Record->Name, "node");
  ASSERT_EQ(Record->Fields.size(), 2u);
  EXPECT_EQ(Record->Fields[0]->Name, "next");
  EXPECT_FALSE(Record->IsUnion);
}

TEST(ParserTest, UnionAndBitfields) {
  auto R = parse("union u { int a : 4; char b; } g;");
  ASSERT_TRUE(R->Ok);
  const auto *Record = firstDecl<RecordDecl>(R->Unit);
  ASSERT_NE(Record, nullptr);
  EXPECT_TRUE(Record->IsUnion);
  EXPECT_EQ(Record->Fields.size(), 2u);
}

TEST(ParserTest, TypedefDisambiguation) {
  auto R = parse("typedef int myint;\n"
                 "typedef struct node { int x; } node_t;\n"
                 "myint g;\n"
                 "node_t *list;\n"
                 "int main(void) { myint local; node_t *p; local = 1; "
                 "p = list; return local; }\n");
  ASSERT_TRUE(R->Ok) << (R->Diags.hasErrors() ? R->Diags.errors()[0] : "");
  EXPECT_NE(firstDecl<TypedefDecl>(R->Unit), nullptr);
}

TEST(ParserTest, TypedefNameUsableAsVariableWithExplicitType) {
  // "int T;" declares a variable named like nothing special here.
  auto R = parse("typedef int T;\nint T2; T x;");
  ASSERT_TRUE(R->Ok);
}

TEST(ParserTest, EnumDeclaration) {
  auto R = parse("enum color { RED, GREEN = 3, BLUE };\nenum color c;");
  ASSERT_TRUE(R->Ok);
  const auto *Enum = firstDecl<EnumDecl>(R->Unit);
  ASSERT_NE(Enum, nullptr);
  EXPECT_EQ(Enum->Enumerators.size(), 3u);
  EXPECT_EQ(Enum->Enumerators[1], "GREEN");
}

TEST(ParserTest, StorageClassesAndQualifiers) {
  auto R = parse("static int x; extern char *p; const int k = 3;\n"
                 "static void helper(void) { }");
  ASSERT_TRUE(R->Ok);
  EXPECT_EQ(R->Unit.Decls.size(), 4u);
}

//===----------------------------------------------------------------------===//
// Statements
//===----------------------------------------------------------------------===//

namespace {
const CompoundStmt *bodyOf(const ParseResult &R) {
  const auto *F = firstDecl<FunctionDecl>(R.Unit);
  EXPECT_NE(F, nullptr);
  return F ? F->Body : nullptr;
}
} // namespace

TEST(ParserTest, ControlFlowStatements) {
  auto R = parse("void f(int n) {\n"
                 "  if (n) n = 1; else n = 2;\n"
                 "  while (n) n--;\n"
                 "  do { n++; } while (n < 10);\n"
                 "  for (n = 0; n < 5; n++) ;\n"
                 "  for (;;) break;\n"
                 "  switch (n) { case 1: n = 2; break; default: break; }\n"
                 "  return;\n"
                 "}");
  ASSERT_TRUE(R->Ok) << (R->Diags.hasErrors() ? R->Diags.errors()[0] : "");
  const CompoundStmt *Body = bodyOf(*R);
  ASSERT_NE(Body, nullptr);
  ASSERT_EQ(Body->Body.size(), 7u);
  EXPECT_TRUE(isa<IfStmt>(Body->Body[0]));
  EXPECT_TRUE(isa<WhileStmt>(Body->Body[1]));
  EXPECT_TRUE(isa<DoStmt>(Body->Body[2]));
  EXPECT_TRUE(isa<ForStmt>(Body->Body[3]));
  EXPECT_TRUE(isa<ForStmt>(Body->Body[4]));
  EXPECT_TRUE(isa<SwitchStmt>(Body->Body[5]));
  EXPECT_TRUE(isa<ReturnStmt>(Body->Body[6]));
}

TEST(ParserTest, LocalDeclarationsAndForInit) {
  auto R = parse("void f(void) {\n"
                 "  int x = 1, *p = &x;\n"
                 "  for (int i = 0; i < 3; i++) x += i;\n"
                 "}");
  ASSERT_TRUE(R->Ok);
  const CompoundStmt *Body = bodyOf(*R);
  ASSERT_EQ(Body->Body.size(), 2u);
  const auto *Decls = cast<DeclStmt>(Body->Body[0]);
  ASSERT_EQ(Decls->Decls.size(), 2u);
  const auto *For = cast<ForStmt>(Body->Body[1]);
  EXPECT_TRUE(isa<DeclStmt>(For->Init));
}

//===----------------------------------------------------------------------===//
// Expressions
//===----------------------------------------------------------------------===//

namespace {
/// Parses "void f(void) { return <expr>; }" and returns the expression.
std::pair<std::unique_ptr<ParseResult>, const Expr *>
parseExpr(const std::string &Source) {
  auto R = parse("int f(int a, int b, int c) { return " + Source + "; }");
  EXPECT_TRUE(R->Ok) << (R->Diags.hasErrors() ? R->Diags.errors()[0] : "");
  const CompoundStmt *Body = bodyOf(*R);
  const Expr *E = nullptr;
  if (Body && !Body->Body.empty())
    if (const auto *Ret = dyn_cast<ReturnStmt>(Body->Body[0]))
      E = Ret->Value;
  EXPECT_NE(E, nullptr);
  return {std::move(R), E};
}
} // namespace

TEST(ParserTest, PrecedenceMulOverAdd) {
  auto [R, E] = parseExpr("a + b * c");
  const auto *Add = cast<BinaryExpr>(E);
  EXPECT_EQ(Add->Op, BinaryOp::Add);
  EXPECT_EQ(cast<BinaryExpr>(Add->Rhs)->Op, BinaryOp::Mul);
}

TEST(ParserTest, LeftAssociativity) {
  auto [R, E] = parseExpr("a - b - c");
  const auto *Outer = cast<BinaryExpr>(E);
  EXPECT_EQ(Outer->Op, BinaryOp::Sub);
  EXPECT_TRUE(isa<BinaryExpr>(Outer->Lhs));
  EXPECT_TRUE(isa<IdentExpr>(Outer->Rhs));
}

TEST(ParserTest, AssignmentRightAssociative) {
  auto [R, E] = parseExpr("a = b = c");
  const auto *Outer = cast<AssignExpr>(E);
  EXPECT_TRUE(isa<AssignExpr>(Outer->Rhs));
  EXPECT_TRUE(isa<IdentExpr>(Outer->Lhs));
}

TEST(ParserTest, LogicalAndComparisonPrecedence) {
  auto [R, E] = parseExpr("a < b && b < c || c");
  const auto *Or = cast<BinaryExpr>(E);
  EXPECT_EQ(Or->Op, BinaryOp::LogicalOr);
  EXPECT_EQ(cast<BinaryExpr>(Or->Lhs)->Op, BinaryOp::LogicalAnd);
}

TEST(ParserTest, UnaryAndPostfix) {
  auto [R, E] = parseExpr("*&a + b[1] + c->f + a.g + -b + !c + ~a");
  EXPECT_TRUE(isa<BinaryExpr>(E));
  auto [R2, E2] = parseExpr("a++ + ++b");
  const auto *Add = cast<BinaryExpr>(E2);
  EXPECT_EQ(cast<UnaryExpr>(Add->Lhs)->Op, UnaryOp::PostInc);
  EXPECT_EQ(cast<UnaryExpr>(Add->Rhs)->Op, UnaryOp::PreInc);
}

TEST(ParserTest, CastVsParenExpr) {
  auto [R, E] = parseExpr("(int *)a");
  EXPECT_TRUE(isa<CastExpr>(E));
  auto [R2, E2] = parseExpr("(a)");
  EXPECT_TRUE(isa<IdentExpr>(E2));
  auto R3 = parse("typedef int T;\nint f(int a) { return (T)a; }");
  ASSERT_TRUE(R3->Ok);
}

TEST(ParserTest, SizeofForms) {
  auto [R, E] = parseExpr("sizeof(int *) + sizeof a");
  const auto *Add = cast<BinaryExpr>(E);
  const auto *SizeType = cast<SizeofExpr>(Add->Lhs);
  EXPECT_EQ(SizeType->Sub, nullptr);
  EXPECT_FALSE(SizeType->TypeText.empty());
  const auto *SizeExpr = cast<SizeofExpr>(Add->Rhs);
  EXPECT_NE(SizeExpr->Sub, nullptr);
}

TEST(ParserTest, ConditionalAndComma) {
  auto [R, E] = parseExpr("a ? b : (a, c)");
  const auto *Cond = cast<ConditionalExpr>(E);
  EXPECT_TRUE(isa<CommaExpr>(Cond->FalseExpr));
}

TEST(ParserTest, CallsAndNestedCalls) {
  auto R = parse("int g(int x) { return x; }\n"
                 "int f(void) { return g(g(1) + 2); }");
  ASSERT_TRUE(R->Ok);
}

TEST(ParserTest, FunctionPointerCallForms) {
  auto R = parse("int (*fp)(int);\n"
                 "int f(void) { return fp(1) + (*fp)(2); }");
  ASSERT_TRUE(R->Ok) << (R->Diags.hasErrors() ? R->Diags.errors()[0] : "");
}

TEST(ParserTest, StringConcatenation) {
  auto [R, E] = parseExpr("\"abc\" \"def\"");
  EXPECT_EQ(cast<StringLiteralExpr>(E)->Value, "abcdef");
}

//===----------------------------------------------------------------------===//
// Error handling and recovery
//===----------------------------------------------------------------------===//

TEST(ParserTest, ReportsMissingSemicolon) {
  auto R = parse("int x\nint y;");
  EXPECT_FALSE(R->Ok);
  EXPECT_GE(R->Diags.errorCount(), 1u);
}

TEST(ParserTest, RecoversAndFindsLaterErrors) {
  auto R = parse("int f(void) { return 1 +; }\n"
                 "int g(void) { return (; }\n");
  EXPECT_FALSE(R->Ok);
  EXPECT_GE(R->Diags.errorCount(), 2u);
}

TEST(ParserTest, MalformedInputNeverHangs) {
  // Pathological inputs must terminate.
  EXPECT_FALSE(parse("(((((")->Ok);
  EXPECT_FALSE(parse("int f( {{{{ ")->Ok);
  EXPECT_FALSE(parse("}}}}}")->Ok);
  EXPECT_FALSE(parse("int 5x;")->Ok);
}

TEST(ParserTest, NodeCountGrowsWithProgram) {
  auto Small = parse("int x;");
  auto Large = parse("int x; int f(int a) { return a + a * a; }");
  EXPECT_GT(Large->Unit.numNodes(), Small->Unit.numNodes());
}

//===----------------------------------------------------------------------===//
// Robustness: random garbage must terminate without crashing
//===----------------------------------------------------------------------===//

#include "support/PRNG.h"

class ParserFuzzTest : public testing::TestWithParam<uint64_t> {};

TEST_P(ParserFuzzTest, RandomTokenSoupTerminates) {
  // Random sequences of plausible C fragments: the parser must always
  // terminate (progress guarantees) and never crash, whatever the input.
  static const char *const Fragments[] = {
      "int",    "char",  "*",     "(",      ")",    "{",     "}",
      "[",      "]",     ";",     ",",      "=",    "+",     "->",
      "x",      "y",     "f",     "struct", "if",   "else",  "while",
      "return", "12",    "3.5",   "\"s\"",  "'c'",  "&",     "typedef",
      "...",    "sizeof", "enum", "case",   ":",    "?",     "++",
  };
  PRNG Rng(GetParam());
  std::string Source;
  unsigned Length = 20 + static_cast<unsigned>(Rng.nextBelow(300));
  for (unsigned I = 0; I != Length; ++I) {
    Source += Fragments[Rng.nextBelow(std::size(Fragments))];
    Source += " ";
  }
  auto R = parse(Source);
  // Outcome (accept/reject) is input-dependent; termination is the test.
  (void)R;
}

INSTANTIATE_TEST_SUITE_P(Seeds, ParserFuzzTest,
                         testing::Range<uint64_t>(1, 41));

TEST(ParserFuzzTest, RandomBytesTerminate) {
  PRNG Rng(0xfeed);
  for (int Trial = 0; Trial != 30; ++Trial) {
    std::string Source;
    unsigned Length = static_cast<unsigned>(Rng.nextBelow(400));
    for (unsigned I = 0; I != Length; ++I)
      Source.push_back(static_cast<char>(32 + Rng.nextBelow(95)));
    auto R = parse(Source);
    (void)R;
  }
}
