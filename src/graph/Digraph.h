//===- graph/Digraph.h - Simple directed graph ------------------*- C++ -*-===//
//
// Part of the poce project.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// A plain adjacency-list directed graph over dense uint32 node ids. Used
/// for SCC analysis of recorded constraint relations, for the random-graph
/// experiments of the analytical model, and for DOT rendering.
///
//===----------------------------------------------------------------------===//

#ifndef POCE_GRAPH_DIGRAPH_H
#define POCE_GRAPH_DIGRAPH_H

#include "support/DenseU64Set.h"

#include <cstdint>
#include <vector>

namespace poce {

/// Adjacency-list digraph. Nodes are 0..numNodes()-1; parallel edges are
/// coalesced.
class Digraph {
public:
  explicit Digraph(uint32_t NumNodes = 0) : Successors(NumNodes) {}

  uint32_t numNodes() const {
    return static_cast<uint32_t>(Successors.size());
  }
  uint64_t numEdges() const { return NumEdges; }

  /// Adds a node and returns its id.
  uint32_t addNode() {
    Successors.emplace_back();
    return numNodes() - 1;
  }

  void growTo(uint32_t NumNodes) {
    if (NumNodes > Successors.size())
      Successors.resize(NumNodes);
  }

  /// Adds edge From -> To if not already present; returns true if added.
  bool addEdge(uint32_t From, uint32_t To);

  bool hasEdge(uint32_t From, uint32_t To) const {
    return From < numNodes() &&
           EdgeSet.contains((static_cast<uint64_t>(From) << 32) | To);
  }

  const std::vector<uint32_t> &successors(uint32_t Node) const {
    return Successors[Node];
  }

  /// Returns the set of nodes reachable from \p Start (including Start).
  std::vector<uint32_t> reachableFrom(uint32_t Start) const;

  /// Returns a topological order, or an empty vector if the graph is
  /// cyclic.
  std::vector<uint32_t> topologicalOrder() const;

  bool isAcyclic() const {
    return numNodes() == 0 || !topologicalOrder().empty();
  }

private:
  std::vector<std::vector<uint32_t>> Successors;
  DenseU64Set EdgeSet;
  uint64_t NumEdges = 0;
};

} // namespace poce

#endif // POCE_GRAPH_DIGRAPH_H
