
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/bench/micro_solver.cpp" "bench/CMakeFiles/micro_solver.dir/micro_solver.cpp.o" "gcc" "bench/CMakeFiles/micro_solver.dir/micro_solver.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/workload/CMakeFiles/poce_workload.dir/DependInfo.cmake"
  "/root/repo/build/src/andersen/CMakeFiles/poce_andersen.dir/DependInfo.cmake"
  "/root/repo/build/src/model/CMakeFiles/poce_model.dir/DependInfo.cmake"
  "/root/repo/build/src/minic/CMakeFiles/poce_minic.dir/DependInfo.cmake"
  "/root/repo/build/src/setcon/CMakeFiles/poce_setcon.dir/DependInfo.cmake"
  "/root/repo/build/src/graph/CMakeFiles/poce_graph.dir/DependInfo.cmake"
  "/root/repo/build/src/support/CMakeFiles/poce_support.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
