//===- tests/preprocess_test.cpp - Offline preprocessing equivalence -------===//
//
// Part of the poce project.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The offline-preprocessing contract: PreprocessMode::Offline (HVN
/// pointer-equivalence labeling plus Nuutila SCC substitution before the
/// first closure) must leave every least solution bit-identical across
/// the whole schedule matrix — graph form x elimination strategy x
/// closure schedule x difference propagation x thread lanes — on both
/// the examples/data corpus and random constraint systems. The offline
/// counters are pinned to goldens on the corpus, and the cycle variables
/// caught offline plus online can never exceed the Oracle ground-truth
/// bound.
///
//===----------------------------------------------------------------------===//

#include "andersen/Andersen.h"
#include "setcon/ConstraintSolver.h"
#include "setcon/Oracle.h"
#include "setcon/Preprocess.h"
#include "workload/RandomConstraints.h"

#include <gtest/gtest.h>

#include <fstream>
#include <map>
#include <set>
#include <sstream>

using namespace poce;

#ifndef POCE_SOURCE_DIR
#define POCE_SOURCE_DIR "."
#endif

namespace {

/// Least solutions keyed by variable creation index, with sources
/// identified by constructor name (stable across configurations and
/// variable substitutions).
using Signature = std::map<uint32_t, std::set<std::string>>;

Signature lsSignature(ConstraintSolver &Solver) {
  Signature Result;
  const TermTable &Terms = Solver.terms();
  for (uint32_t Creation = 0; Creation != Solver.numCreations(); ++Creation) {
    VarId Var = Solver.varOfCreation(Creation);
    std::set<std::string> Names;
    for (ExprId Term : Solver.leastSolution(Var)) {
      if (Terms.kind(Term) == ExprKind::Cons)
        Names.insert(
            Terms.constructors().signature(Terms.consOf(Term)).Name);
      else
        Names.insert("1");
    }
    Result[Creation] = std::move(Names);
  }
  return Result;
}

bool parseCorpusFile(const char *File, minic::TranslationUnit &Unit) {
  std::string Path =
      std::string(POCE_SOURCE_DIR) + "/examples/data/" + File;
  std::ifstream In(Path);
  if (!In.good())
    return false;
  std::stringstream Buffer;
  Buffer << In.rdbuf();
  std::vector<std::string> Errors;
  return andersen::parseSource(Buffer.str(), Unit, &Errors, File);
}

/// The schedule matrix the pass must be agnostic to.
struct MatrixConfig {
  GraphForm Form;
  CycleElim Elim;
  ClosureMode Closure;
  bool DiffProp;
};

std::vector<MatrixConfig> matrixConfigs() {
  std::vector<MatrixConfig> Out;
  for (GraphForm Form : {GraphForm::Standard, GraphForm::Inductive})
    for (CycleElim Elim :
         {CycleElim::None, CycleElim::Online, CycleElim::Periodic})
      for (ClosureMode Closure : {ClosureMode::Worklist, ClosureMode::Wave})
        for (bool DiffProp : {true, false})
          Out.push_back({Form, Elim, Closure, DiffProp});
  return Out;
}

std::string matrixName(const MatrixConfig &M) {
  SolverOptions Options = makeConfig(M.Form, M.Elim);
  return Options.configName() +
         (M.Closure == ClosureMode::Wave ? "/wave" : "/worklist") +
         (M.DiffProp ? "/diffprop" : "/elementwise");
}

} // namespace

//===----------------------------------------------------------------------===//
// Random constraint systems across the full matrix
//===----------------------------------------------------------------------===//

class PreprocessRandomTest : public testing::TestWithParam<uint64_t> {};

TEST_P(PreprocessRandomTest, SolutionsBitIdenticalAcrossTheMatrix) {
  PRNG Rng(GetParam());
  // Degree 2.0 keeps the shapes past the giant-SCC threshold, so the
  // offline pass has real work on every seed.
  RandomConstraintShape Shape =
      randomConstraintShape(120, 80, 2.0 / 120, Rng);
  for (const MatrixConfig &M : matrixConfigs()) {
    Signature Reference;
    bool HaveReference = false;
    bool PassRan = false;
    for (PreprocessMode Pre :
         {PreprocessMode::None, PreprocessMode::Offline}) {
      ConstructorTable Constructors;
      TermTable Terms(Constructors);
      SolverOptions Options = makeConfig(M.Form, M.Elim, GetParam());
      Options.Closure = M.Closure;
      Options.DiffProp = M.DiffProp;
      Options.Preprocess = Pre;
      ConstraintSolver Solver(Terms, Options);
      workload::emitRandomConstraints(Shape, Solver);
      Solver.finalize();
      if (Pre == PreprocessMode::Offline && Solver.stats().HVNLabels != 0)
        PassRan = true;
      Signature Sig = lsSignature(Solver);
      if (!HaveReference) {
        Reference = std::move(Sig);
        HaveReference = true;
      } else {
        EXPECT_EQ(Sig, Reference) << matrixName(M);
      }
    }
    EXPECT_TRUE(PassRan) << matrixName(M);
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, PreprocessRandomTest,
                         testing::Range<uint64_t>(1, 9));

//===----------------------------------------------------------------------===//
// Thread lanes
//===----------------------------------------------------------------------===//

TEST(PreprocessThreadsTest, LaneCountInvariantWithPreprocessing) {
  PRNG Rng(77);
  RandomConstraintShape Shape =
      randomConstraintShape(300, 200, 2.0 / 300, Rng);
  Signature Reference;
  bool HaveReference = false;
  for (unsigned Threads : {1u, 2u, 8u}) {
    for (PreprocessMode Pre :
         {PreprocessMode::None, PreprocessMode::Offline}) {
      ConstructorTable Constructors;
      TermTable Terms(Constructors);
      SolverOptions Options =
          makeConfig(GraphForm::Inductive, CycleElim::Online);
      Options.Threads = Threads;
      Options.Preprocess = Pre;
      ConstraintSolver Solver(Terms, Options);
      workload::emitRandomConstraints(Shape, Solver);
      Solver.finalize();
      Signature Sig = lsSignature(Solver);
      if (!HaveReference) {
        Reference = std::move(Sig);
        HaveReference = true;
      } else {
        EXPECT_EQ(Sig, Reference)
            << Threads << " lanes, preprocess "
            << (Pre == PreprocessMode::Offline ? "offline" : "none");
      }
    }
  }
}

//===----------------------------------------------------------------------===//
// Corpus: points-to results across the matrix
//===----------------------------------------------------------------------===//

class PreprocessCorpusTest : public testing::TestWithParam<const char *> {};

TEST_P(PreprocessCorpusTest, PointsToIdenticalWithAndWithoutThePass) {
  minic::TranslationUnit Unit;
  ASSERT_TRUE(parseCorpusFile(GetParam(), Unit));
  ConstructorTable Constructors;
  for (const MatrixConfig &M : matrixConfigs()) {
    SolverOptions Options = makeConfig(M.Form, M.Elim);
    Options.Closure = M.Closure;
    Options.DiffProp = M.DiffProp;

    Options.Preprocess = PreprocessMode::None;
    andersen::AnalysisResult Without =
        andersen::runAnalysis(Unit, Constructors, Options, nullptr,
                              /*ExtractPointsTo=*/true);
    Options.Preprocess = PreprocessMode::Offline;
    andersen::AnalysisResult With =
        andersen::runAnalysis(Unit, Constructors, Options, nullptr,
                              /*ExtractPointsTo=*/true);
    EXPECT_EQ(With.PointsTo, Without.PointsTo)
        << GetParam() << " " << matrixName(M);
    EXPECT_FALSE(With.PointsTo.empty()) << GetParam();
    // The online search starts from a graph the offline pass already
    // shrank; it can never have to work harder than without the pass.
    EXPECT_LE(With.Stats.CycleSearches, Without.Stats.CycleSearches)
        << GetParam() << " " << matrixName(M);
  }
}

INSTANTIATE_TEST_SUITE_P(Corpus, PreprocessCorpusTest,
                         testing::Values("list.c", "events.c", "calc.c",
                                         "strings.c"),
                         [](const auto &Info) {
                           std::string Name = Info.param;
                           return Name.substr(0, Name.find('.'));
                         });

//===----------------------------------------------------------------------===//
// Golden offline counters on the corpus
//===----------------------------------------------------------------------===//

namespace {

struct OfflineGolden {
  const char *File;
  uint64_t OfflineVars, OfflineSCCs, HVNLabels;
};

// Recorded from IF-Online runs with PreprocessMode::Offline on the
// corpus. The counters are schedule-independent (the pass sees the same
// pending constraint set whatever the form or closure mode), so one row
// per file pins the pass itself. The corpus programs have acyclic
// pre-closure variable graphs — their cycles only emerge through
// closure-time decomposition — so the SCC counters are zero and the HVN
// labeling carries all the offline merging.
const OfflineGolden OfflineGoldens[] = {
    {"list.c", 0, 0, 46},
    {"events.c", 0, 0, 41},
    {"calc.c", 0, 0, 67},
    {"strings.c", 0, 0, 26},
};

} // namespace

class OfflineGoldenTest : public testing::TestWithParam<OfflineGolden> {};

TEST_P(OfflineGoldenTest, CountersMatchRecordedValues) {
  const OfflineGolden &G = GetParam();
  minic::TranslationUnit Unit;
  ASSERT_TRUE(parseCorpusFile(G.File, Unit));
  ConstructorTable Constructors;
  for (GraphForm Form : {GraphForm::Standard, GraphForm::Inductive}) {
    SolverOptions Options = makeConfig(Form, CycleElim::Online);
    Options.Preprocess = PreprocessMode::Offline;
    andersen::AnalysisResult Result =
        andersen::runAnalysis(Unit, Constructors, Options, nullptr,
                              /*ExtractPointsTo=*/false);
    EXPECT_EQ(Result.Stats.OfflineCollapsedVars, G.OfflineVars) << G.File;
    EXPECT_EQ(Result.Stats.OfflineSCCs, G.OfflineSCCs) << G.File;
    EXPECT_EQ(Result.Stats.HVNLabels, G.HVNLabels) << G.File;
  }
}

INSTANTIATE_TEST_SUITE_P(Corpus, OfflineGoldenTest,
                         testing::ValuesIn(OfflineGoldens),
                         [](const auto &Info) {
                           std::string Name = Info.param.File;
                           return Name.substr(0, Name.find('.'));
                         });

//===----------------------------------------------------------------------===//
// Oracle bound
//===----------------------------------------------------------------------===//

TEST(PreprocessOracleBoundTest, CaughtCycleVarsNeverExceedTheOracle) {
  // Random systems: every variable the offline pass substitutes and every
  // variable the online search collapses afterwards is a true cycle
  // variable, so together they can never exceed the perfect eliminator.
  for (uint64_t Seed : {1ULL, 2ULL, 3ULL, 4ULL, 5ULL}) {
    PRNG Rng(Seed);
    RandomConstraintShape Shape =
        randomConstraintShape(150, 100, 2.0 / 150, Rng);
    ConstructorTable Constructors;
    SolverOptions Base =
        makeConfig(GraphForm::Inductive, CycleElim::Online, Seed);
    Oracle Truth = buildOracle(workload::makeRandomGenerator(Shape),
                               Constructors, Base);
    for (GraphForm Form : {GraphForm::Standard, GraphForm::Inductive}) {
      TermTable Terms(Constructors);
      SolverOptions Options = makeConfig(Form, CycleElim::Online, Seed);
      Options.Preprocess = PreprocessMode::Offline;
      ConstraintSolver Solver(Terms, Options);
      workload::emitRandomConstraints(Shape, Solver);
      Solver.finalize();
      uint64_t Caught = Solver.stats().OfflineCollapsedVars +
                        Solver.stats().VarsEliminated;
      EXPECT_LE(Caught, Truth.eliminableVars()) << "seed " << Seed;
      // Collapse-bearing shape: the offline pass alone must catch at
      // least 20% of what the perfect eliminator would.
      ASSERT_GT(Truth.eliminableVars(), 0u) << "seed " << Seed;
      EXPECT_GE(Solver.stats().OfflineCollapsedVars * 5,
                Truth.eliminableVars())
          << "seed " << Seed;
    }
  }

  // Corpus programs through the Andersen pipeline.
  for (const char *File : {"list.c", "events.c", "calc.c", "strings.c"}) {
    minic::TranslationUnit Unit;
    ASSERT_TRUE(parseCorpusFile(File, Unit));
    ConstructorTable Constructors;
    SolverOptions Base = makeConfig(GraphForm::Inductive, CycleElim::Online);
    Oracle Truth =
        buildOracle(andersen::makeGenerator(Unit), Constructors, Base);
    SolverOptions Options = makeConfig(GraphForm::Inductive,
                                       CycleElim::Online);
    Options.Preprocess = PreprocessMode::Offline;
    andersen::AnalysisResult Result =
        andersen::runAnalysis(Unit, Constructors, Options, nullptr,
                              /*ExtractPointsTo=*/false);
    EXPECT_LE(Result.Stats.OfflineCollapsedVars +
                  Result.Stats.VarsEliminated,
              Truth.eliminableVars())
        << File;
  }
}

//===----------------------------------------------------------------------===//
// Deferral and replay semantics
//===----------------------------------------------------------------------===//

TEST(PreprocessSolverTest, PostClosureAddsStayOnlineAndAgree) {
  // SCC collapses are exact under post-closure additions — mutual
  // inclusion holds however the system grows — so a bulk load whose
  // offline merges are all SCC collapses must track a never-preprocessed
  // solver bit for bit through an incremental phase. Every variable gets
  // a distinct source so the HVN value numbering cannot merge
  // lookalikes.
  const uint32_t N = 12;
  auto solve = [&](PreprocessMode Pre, SolverStats *Stats) {
    ConstructorTable Constructors;
    TermTable Terms(Constructors);
    SolverOptions Options =
        makeConfig(GraphForm::Inductive, CycleElim::Online);
    Options.Preprocess = Pre;
    ConstraintSolver Solver(Terms, Options);
    std::vector<ExprId> Vars;
    for (uint32_t I = 0; I != N; ++I) {
      Vars.push_back(
          Terms.var(Solver.freshVar("X" + std::to_string(I))));
      Solver.addConstraint(
          Terms.cons(
              Constructors.getOrCreate("src" + std::to_string(I), {}), {}),
          Vars[I]);
    }
    // Bulk: a ring over 0..4 plus a chain feeding it.
    for (uint32_t I = 0; I != 5; ++I)
      Solver.addConstraint(Vars[I], Vars[(I + 1) % 5]);
    Solver.addConstraint(Vars[5], Vars[0]);
    Solver.addConstraint(Vars[6], Vars[5]);
    Solver.finalize(); // First closure: runs the pass when armed.
    uint64_t SCCsAfterBulk = Solver.stats().OfflineSCCs;
    // Incremental: a second ring over 7..9 joined into the first, plus a
    // fresh chain — all processed by the online machinery.
    Solver.addConstraint(Vars[7], Vars[8]);
    Solver.addConstraint(Vars[8], Vars[9]);
    Solver.addConstraint(Vars[9], Vars[7]);
    Solver.addConstraint(Vars[9], Vars[1]);
    Solver.addConstraint(Vars[10], Vars[7]);
    Solver.addConstraint(Vars[11], Vars[10]);
    Solver.finalize();
    // The pass ran exactly once: post-closure adds never re-trigger it.
    EXPECT_EQ(Solver.stats().OfflineSCCs, SCCsAfterBulk);
    if (Stats)
      *Stats = Solver.stats();
    return lsSignature(Solver);
  };

  SolverStats OfflineStats;
  Signature Without = solve(PreprocessMode::None, nullptr);
  Signature With = solve(PreprocessMode::Offline, &OfflineStats);
  EXPECT_EQ(With, Without);
  EXPECT_EQ(OfflineStats.OfflineSCCs, 1u);
  EXPECT_EQ(OfflineStats.OfflineCollapsedVars, 4u);
}

TEST(PreprocessSolverTest, IncrementalAddsOverApproximateMergedClasses) {
  // The HVN copy-chain and empty-class merges assume the deferred bulk
  // load is the complete program (the same whole-program assumption the
  // Oracle mode makes about its generator). Constraints added after the
  // first closure are still solved online, against the merged quotient
  // system: per variable the solutions can only over-approximate the
  // unmerged ground truth — extra flow into a merged class is shared,
  // flow is never lost.
  PRNG Rng(55);
  RandomConstraintShape Shape =
      randomConstraintShape(100, 66, 2.0 / 100, Rng);
  size_t Bulk = Shape.VarVar.size() * 7 / 10;

  auto solve = [&](PreprocessMode Pre) {
    ConstructorTable Constructors;
    TermTable Terms(Constructors);
    SolverOptions Options =
        makeConfig(GraphForm::Inductive, CycleElim::Online);
    Options.Preprocess = Pre;
    ConstraintSolver Solver(Terms, Options);
    std::vector<ExprId> Vars, Sources;
    for (uint32_t I = 0; I != Shape.NumVars; ++I)
      Vars.push_back(
          Terms.var(Solver.freshVar("X" + std::to_string(I))));
    for (uint32_t I = 0; I != Shape.NumSources; ++I)
      Sources.push_back(Terms.cons(
          Constructors.getOrCreate("src" + std::to_string(I), {}), {}));
    for (const auto &[Source, Var] : Shape.SourceVar)
      Solver.addConstraint(Sources[Source], Vars[Var]);
    for (size_t I = 0; I != Bulk; ++I)
      Solver.addConstraint(Vars[Shape.VarVar[I].first],
                           Vars[Shape.VarVar[I].second]);
    Solver.finalize();
    for (size_t I = Bulk; I != Shape.VarVar.size(); ++I)
      Solver.addConstraint(Vars[Shape.VarVar[I].first],
                           Vars[Shape.VarVar[I].second]);
    Solver.finalize();
    return lsSignature(Solver);
  };

  Signature Without = solve(PreprocessMode::None);
  Signature With = solve(PreprocessMode::Offline);
  ASSERT_EQ(With.size(), Without.size());
  for (const auto &[Creation, Names] : Without) {
    const std::set<std::string> &Merged = With[Creation];
    EXPECT_TRUE(std::includes(Merged.begin(), Merged.end(), Names.begin(),
                              Names.end()))
        << "variable " << Creation << " lost flow";
  }
}

TEST(PreprocessSolverTest, SetPreprocessArmsOnlyPristineSolvers) {
  ConstructorTable Constructors;
  // Pristine solver: setPreprocess arms the deferred bulk load.
  {
    TermTable Terms(Constructors);
    ConstraintSolver Solver(
        Terms, makeConfig(GraphForm::Inductive, CycleElim::Online));
    Solver.setPreprocess(PreprocessMode::Offline);
    VarId X = Solver.freshVar("X"), Y = Solver.freshVar("Y");
    ExprId Src = Terms.cons(
        Terms.mutableConstructors().getOrCreate("src", {}), {});
    Solver.addConstraint(Src, Terms.var(X));
    Solver.addConstraint(Terms.var(X), Terms.var(Y));
    Solver.addConstraint(Terms.var(Y), Terms.var(X));
    Solver.finalize();
    EXPECT_EQ(Solver.stats().OfflineCollapsedVars, 1u);
    EXPECT_EQ(Solver.stats().OfflineSCCs, 1u);
    EXPECT_EQ(lsSignature(Solver)[0], (std::set<std::string>{"src"}));
  }
  // A solver that already processed constraints must not defer: the
  // mode is recorded but the pass stays disarmed.
  {
    TermTable Terms(Constructors);
    ConstraintSolver Solver(
        Terms, makeConfig(GraphForm::Inductive, CycleElim::Online));
    VarId X = Solver.freshVar("X"), Y = Solver.freshVar("Y");
    Solver.addConstraint(Terms.var(X), Terms.var(Y));
    Solver.setPreprocess(PreprocessMode::Offline);
    Solver.addConstraint(Terms.var(Y), Terms.var(X));
    Solver.finalize();
    EXPECT_EQ(Solver.stats().OfflineSCCs, 0u);
    EXPECT_EQ(Solver.stats().HVNLabels, 0u);
  }
}

//===----------------------------------------------------------------------===//
// The pass in isolation
//===----------------------------------------------------------------------===//

TEST(OfflinePreprocessTest, CopyChainMergesIntoTheHead) {
  // src <= A, A <= B, B <= C: B and C are single-label copies of A, so
  // HVN merges all three; no SCC is involved.
  ConstructorTable Constructors;
  TermTable Terms(Constructors);
  ExprId Src = Terms.cons(Constructors.getOrCreate("src", {}), {});
  std::vector<std::pair<ExprId, ExprId>> Constraints = {
      {Src, Terms.var(0)},
      {Terms.var(0), Terms.var(1)},
      {Terms.var(1), Terms.var(2)},
  };
  OfflineEquivalence Eq = offlinePreprocess(
      Terms, Constraints, 3, [](VarId Var) { return uint64_t(Var); });
  EXPECT_EQ(Eq.SCCCollapsedVars, 0u);
  EXPECT_EQ(Eq.HVNMergedVars, 2u);
  ASSERT_EQ(Eq.Merges.size(), 2u);
  for (const auto &[Var, Witness] : Eq.Merges)
    EXPECT_EQ(Witness, 0u) << "var " << Var;
}

TEST(OfflinePreprocessTest, IndirectVarsKeepUniqueLabels) {
  // c(X) <= Y means closure can decompose fresh inflow into X, so X (and
  // any var under a constructor) must never be value-numbered together
  // with a lookalike.
  ConstructorTable Constructors;
  TermTable Terms(Constructors);
  ConsId C = Constructors.getOrCreate("c", {Variance::Covariant});
  ExprId Src = Terms.cons(Constructors.getOrCreate("src", {}), {});
  // src <= A, src <= B: identical label sets, but A sits under a
  // constructor on the left of a constraint.
  std::vector<std::pair<ExprId, ExprId>> Constraints = {
      {Src, Terms.var(0)},
      {Src, Terms.var(1)},
      {Terms.cons(C, {Terms.var(0)}), Terms.var(2)},
  };
  OfflineEquivalence Eq = offlinePreprocess(
      Terms, Constraints, 3, [](VarId Var) { return uint64_t(Var); });
  for (const auto &[Var, Witness] : Eq.Merges) {
    EXPECT_NE(Var, 0u);
    EXPECT_NE(Witness, 0u);
  }
}

TEST(OfflinePreprocessTest, ConstructedDecompositionFindsHiddenSCCs) {
  // c(X) <= c(Y) and c(Y) <= c(X) put X and Y in a pre-closure cycle
  // only visible through covariant decomposition.
  ConstructorTable Constructors;
  TermTable Terms(Constructors);
  ConsId C = Constructors.getOrCreate("c", {Variance::Covariant});
  std::vector<std::pair<ExprId, ExprId>> Constraints = {
      {Terms.cons(C, {Terms.var(0)}), Terms.cons(C, {Terms.var(1)})},
      {Terms.cons(C, {Terms.var(1)}), Terms.cons(C, {Terms.var(0)})},
  };
  OfflineEquivalence Eq = offlinePreprocess(
      Terms, Constraints, 2, [](VarId Var) { return uint64_t(Var); });
  EXPECT_EQ(Eq.SCCCollapsedVars, 1u);
  EXPECT_EQ(Eq.NontrivialSCCs, 1u);
}
