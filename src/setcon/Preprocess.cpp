//===- setcon/Preprocess.cpp - Offline HVN variable substitution ----------===//
//
// Part of the poce project.
//
//===----------------------------------------------------------------------===//

#include "setcon/Preprocess.h"

#include "graph/NuutilaSCC.h"
#include "support/DenseU64Set.h"

#include <algorithm>
#include <map>

using namespace poce;

namespace {

/// Marks every variable occurring at any depth inside the constructed term
/// \p Id as indirect. \p TermSeen deduplicates shared hash-consed subterms.
void markIndirectVars(const TermTable &Terms, ExprId Id,
                      std::vector<uint8_t> &TermSeen,
                      std::vector<uint8_t> &Indirect,
                      std::vector<ExprId> &Stack) {
  if (Terms.kind(Id) != ExprKind::Cons || TermSeen[Id])
    return;
  TermSeen[Id] = 1;
  Stack.push_back(Id);
  while (!Stack.empty()) {
    ExprId Term = Stack.back();
    Stack.pop_back();
    const ExprId *Args = Terms.argsOf(Term);
    for (unsigned I = 0, E = Terms.numArgs(Term); I != E; ++I) {
      ExprId Arg = Args[I];
      switch (Terms.kind(Arg)) {
      case ExprKind::Var:
        Indirect[Terms.varOf(Arg)] = 1;
        break;
      case ExprKind::Cons:
        if (!TermSeen[Arg]) {
          TermSeen[Arg] = 1;
          Stack.push_back(Arg);
        }
        break;
      case ExprKind::Zero:
      case ExprKind::One:
        break;
      }
    }
  }
}

} // namespace

OfflineEquivalence poce::offlinePreprocess(
    const TermTable &Terms,
    const std::vector<std::pair<ExprId, ExprId>> &Constraints,
    uint32_t NumVars, const std::function<uint64_t(VarId)> &OrderOf) {
  OfflineEquivalence Result;
  if (NumVars == 0 || Constraints.empty())
    return Result;

  // Dry resolution: mirror the solver's resolution rules (Figure 1) over
  // the input constraints without touching any solver state, collecting
  // the pre-closure variable-variable edges and the source terms flowing
  // into each variable. Constructor decomposition runs to fixpoint with a
  // visited-pair set, so nested matches like c(d(X)) <= c(d(Y)) surface
  // their X <= Y edges; mismatches are skipped silently (the replay counts
  // them through the normal path).
  Digraph G(NumVars);
  std::vector<std::vector<ExprId>> SourcesInto(NumVars);
  std::vector<uint8_t> Indirect(NumVars, 0);
  std::vector<uint8_t> TermSeen(Terms.size(), 0);
  std::vector<ExprId> MarkStack;

  DenseU64Set VisitedPairs;
  std::vector<std::pair<ExprId, ExprId>> Pending(Constraints.rbegin(),
                                                 Constraints.rend());
  while (!Pending.empty()) {
    auto [Lhs, Rhs] = Pending.back();
    Pending.pop_back();
    if (Lhs == Rhs)
      continue;
    ExprKind LhsKind = Terms.kind(Lhs);
    ExprKind RhsKind = Terms.kind(Rhs);
    if (LhsKind == ExprKind::Zero || RhsKind == ExprKind::One)
      continue;
    // Lhs != Rhs and neither trivial side is 0/1 here, so the packed key
    // is never 0 and never the reserved all-ones key.
    if (!VisitedPairs.insert((static_cast<uint64_t>(Lhs) << 32) | Rhs))
      continue;
    markIndirectVars(Terms, Lhs, TermSeen, Indirect, MarkStack);
    markIndirectVars(Terms, Rhs, TermSeen, Indirect, MarkStack);

    switch (LhsKind) {
    case ExprKind::Zero:
      break;
    case ExprKind::Var:
      if (RhsKind == ExprKind::Var)
        G.addEdge(Terms.varOf(Lhs), Terms.varOf(Rhs));
      // Var <= sink constrains nothing about the variable's solution; the
      // sink's embedded variables were marked indirect above.
      break;
    case ExprKind::One:
      if (RhsKind == ExprKind::Var)
        SourcesInto[Terms.varOf(Rhs)].push_back(Lhs);
      break; // 1 <= c(...) / 1 <= 0: mismatch.
    case ExprKind::Cons:
      if (RhsKind == ExprKind::Var) {
        SourcesInto[Terms.varOf(Rhs)].push_back(Lhs);
        break;
      }
      if (RhsKind == ExprKind::Zero || Terms.consOf(Lhs) != Terms.consOf(Rhs))
        break; // Mismatch.
      {
        const ConstructorSignature &Sig =
            Terms.constructors().signature(Terms.consOf(Lhs));
        const ExprId *LhsArgs = Terms.argsOf(Lhs);
        const ExprId *RhsArgs = Terms.argsOf(Rhs);
        for (unsigned I = 0; I != Sig.arity(); ++I) {
          if (Sig.ArgVariance[I] == Variance::Covariant)
            Pending.push_back({LhsArgs[I], RhsArgs[I]});
          else
            Pending.push_back({RhsArgs[I], LhsArgs[I]});
        }
      }
      break;
    }
  }

  // Condense with Nuutila's algorithm. Components come numbered in
  // reverse topological order — every condensation edge goes from a
  // higher component id to a lower one — so a descending sweep sees each
  // component after all of its predecessors. The labeling needs the
  // predecessor side, so invert the condensation's successor lists.
  SCCResult SCCs = computeSCCsNuutila(G);
  Digraph Cond = condense(G, SCCs);
  const uint32_t NumComps = SCCs.numComponents();
  std::vector<std::vector<uint32_t>> CompPreds(NumComps);
  for (uint32_t Comp = 0; Comp != NumComps; ++Comp)
    for (uint32_t Succ : Cond.successors(Comp))
      CompPreds[Succ].push_back(Comp);

  std::vector<uint8_t> CompIndirect(NumComps, 0);
  for (VarId Var = 0; Var != NumVars; ++Var)
    if (Indirect[Var])
      CompIndirect[SCCs.ComponentOf[Var]] = 1;
  for (const std::vector<uint32_t> &Component : SCCs.Components)
    if (Component.size() >= 2) {
      ++Result.NontrivialSCCs;
      Result.SCCCollapsedVars += Component.size() - 1;
    }

  // HVN labeling. Label 0 is reserved for "provably empty"; every other
  // label comes from one monotone counter so source-term labels, fresh
  // indirect labels, and value numbers never collide. A component's label
  // set is the sorted, deduplicated union of its nonempty predecessor
  // labels and its members' source-term labels; equal sets get equal
  // value numbers. Singleton sets collapse to their one label (the
  // component is a pure copy of that input), which is what lets copy
  // chains merge into their head.
  uint32_t NextLabel = 1;
  std::vector<uint32_t> SourceLabel(Terms.size(), 0);
  std::map<std::vector<uint32_t>, uint32_t> ValueNumber;
  std::vector<uint32_t> PE(NumComps, 0);
  std::vector<uint32_t> LabelSet;
  for (uint32_t Comp = NumComps; Comp-- > 0;) {
    if (CompIndirect[Comp]) {
      // New inflow can attach here during closure (constructor
      // decomposition); a unique fresh label keeps the component — and
      // anything downstream of it — distinguishable from every other.
      PE[Comp] = NextLabel++;
      continue;
    }
    LabelSet.clear();
    for (uint32_t Pred : CompPreds[Comp])
      if (PE[Pred])
        LabelSet.push_back(PE[Pred]);
    for (uint32_t Member : SCCs.Components[Comp])
      for (ExprId Source : SourcesInto[Member]) {
        uint32_t &Label = SourceLabel[Source];
        if (!Label)
          Label = NextLabel++;
        LabelSet.push_back(Label);
      }
    std::sort(LabelSet.begin(), LabelSet.end());
    LabelSet.erase(std::unique(LabelSet.begin(), LabelSet.end()),
                   LabelSet.end());
    if (LabelSet.empty())
      PE[Comp] = 0;
    else if (LabelSet.size() == 1)
      PE[Comp] = LabelSet[0];
    else {
      auto [It, Inserted] = ValueNumber.try_emplace(LabelSet, NextLabel);
      if (Inserted)
        ++NextLabel;
      PE[Comp] = It->second;
    }
  }

  // Group variables by label (members of one SCC share their component's
  // label, so cycle collapses fall out of the same grouping) and emit the
  // merges onto each class's order-minimal witness. std::map keeps the
  // directive order deterministic.
  std::map<uint32_t, std::vector<VarId>> Classes;
  for (VarId Var = 0; Var != NumVars; ++Var)
    Classes[PE[SCCs.ComponentOf[Var]]].push_back(Var);
  Result.Labels = Classes.size();
  for (auto &[Label, Members] : Classes) {
    if (Members.size() < 2)
      continue;
    VarId Witness = Members[0];
    for (VarId Var : Members)
      if (OrderOf(Var) < OrderOf(Witness) ||
          (OrderOf(Var) == OrderOf(Witness) && Var < Witness))
        Witness = Var;
    for (VarId Var : Members)
      if (Var != Witness)
        Result.Merges.push_back({Var, Witness});
  }
  Result.HVNMergedVars = Result.Merges.size() - Result.SCCCollapsedVars;
  return Result;
}
