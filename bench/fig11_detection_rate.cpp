//===- bench/fig11_detection_rate.cpp - Reproduction of Figure 11 ----------===//
//
// Part of the poce project.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Regenerates the paper's Figure 11: the fraction of cycle variables
/// found by partial online detection, for inductive and standard form,
/// measured against the oracle ground truth (variables a perfect
/// eliminator removes). The paper reports IF finding ~80% on average and
/// SF about half that (~40%) — the reason IF-Online outperforms
/// SF-Online.
///
//===----------------------------------------------------------------------===//

#include "BenchCommon.h"

using namespace poce;
using namespace poce::bench;

int main() {
  BenchEnv Env = BenchEnv::fromEnv();
  std::printf("=== Figure 11: fraction of cycle variables detected ===\n");
  Env.print();

  TextTable Table({"Benchmark", "Eliminable", "IF-found", "IF-rate",
                   "SF-found", "SF-rate"});
  double SumIF = 0, SumSF = 0;
  unsigned Counted = 0;
  for (auto &Entry : prepareSuite(Env)) {
    uint64_t Eliminable = Entry->oracle().eliminableVars();
    MeasuredRun IF =
        runConfig(*Entry, GraphForm::Inductive, CycleElim::Online, Env);
    MeasuredRun SF =
        runConfig(*Entry, GraphForm::Standard, CycleElim::Online, Env);
    double IFRate = Eliminable
                        ? 100.0 * IF.Result.Stats.VarsEliminated / Eliminable
                        : 0.0;
    double SFRate = Eliminable
                        ? 100.0 * SF.Result.Stats.VarsEliminated / Eliminable
                        : 0.0;
    if (Eliminable) {
      SumIF += IFRate;
      SumSF += SFRate;
      ++Counted;
    }
    Table.addRow({Entry->Program->Spec.Name, formatGrouped(Eliminable),
                  formatGrouped(IF.Result.Stats.VarsEliminated),
                  formatDouble(IFRate, 1) + "%",
                  formatGrouped(SF.Result.Stats.VarsEliminated),
                  formatDouble(SFRate, 1) + "%"});
  }
  Table.print();
  if (Counted)
    std::printf("\naverages: IF %.1f%%, SF %.1f%% "
                "(paper: IF ~80%%, SF ~40%%)\n",
                SumIF / Counted, SumSF / Counted);
  return 0;
}
