# Empty dependencies file for setcon_tests.
# This may be replaced when dependencies are built.
