# Empty dependencies file for scsolve.
# This may be replaced when dependencies are built.
