//===- bench/model_theorem51.cpp - Theorem 5.1 validation ------------------===//
//
// Part of the poce project.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Validates Theorem 5.1 three ways:
///   1. analytically — the exact series for E[X_SF]/E[X_IF] at p = 1/n,
///      m = 2n/3 approaches ~2.5 as n grows;
///   2. by Monte-Carlo path enumeration on small random graphs, checking
///      the series themselves;
///   3. by measurement — solving random constraint systems of the model's
///      shape with the real solver under perfect (oracle) elimination and
///      comparing the SF/IF work ratio. Work here counts atomic edge
///      additions plus source-to-sink constraint arrivals, matching the
///      model's (c, c') additions.
///
//===----------------------------------------------------------------------===//

#include "model/Model.h"
#include "setcon/ConstraintSolver.h"
#include "setcon/Oracle.h"
#include "support/Format.h"
#include "support/PRNG.h"
#include "workload/RandomConstraints.h"

#include <cstdio>

using namespace poce;

int main() {
  std::printf("=== Theorem 5.1: E[X_SF] / E[X_IF] -> ~2.5 "
              "(p = 1/n, m = 2n/3) ===\n\n");

  std::printf("(1) analytic series (with Section 5.3's closed-form "
              "approximations):\n");
  TextTable Analytic({"n", "E[X_SF]", "~approx", "E[X_IF]", "~approx",
                      "ratio"});
  for (uint64_t N : {50ULL, 200ULL, 1000ULL, 10000ULL, 100000ULL,
                     1000000ULL}) {
    uint64_t M = 2 * N / 3;
    double P = 1.0 / static_cast<double>(N);
    double SF = model::expectedAdditionsSF(N, M, P);
    double IF = model::expectedAdditionsIF(N, M, P);
    Analytic.addRow({formatGrouped(N), formatDouble(SF, 1),
                     formatDouble(model::approxAdditionsSF(N, M), 1),
                     formatDouble(IF, 1),
                     formatDouble(model::approxAdditionsIF(N, M), 1),
                     formatDouble(SF / IF, 3)});
  }
  Analytic.print();

  std::printf("\n(2) Monte-Carlo path enumeration (small n, 3000 trials):\n");
  TextTable MC({"n", "m", "sim SF", "exact SF", "sim IF", "exact IF"});
  PRNG Rng(0x51);
  for (uint64_t N : {5ULL, 7ULL, 9ULL}) {
    uint64_t M = 2 * N / 3;
    double P = 1.0 / static_cast<double>(N);
    model::SimulationResult Sim = model::simulateModel(N, M, P, 3000, Rng);
    MC.addRow({formatGrouped(N), formatGrouped(M),
               formatDouble(Sim.AdditionsSF, 2),
               formatDouble(model::expectedAdditionsSF(N, M, P), 2),
               formatDouble(Sim.AdditionsIF, 2),
               formatDouble(model::expectedAdditionsIF(N, M, P), 2)});
  }
  MC.print();

  std::printf("\n(3) measured on the real solver (oracle elimination, "
              "averaged over 5 seeds):\n");
  TextTable Measured({"n", "SF work", "IF work", "ratio"});
  for (uint32_t N : {300u, 1000u, 3000u}) {
    uint64_t TotalSF = 0, TotalIF = 0;
    for (uint64_t Seed = 1; Seed <= 5; ++Seed) {
      PRNG ShapeRng(Seed * 1000 + N);
      RandomConstraintShape Shape = randomConstraintShape(
          N, (2 * N) / 3, 1.0 / N, ShapeRng);
      ConstructorTable Constructors;
      SolverOptions Base =
          makeConfig(GraphForm::Inductive, CycleElim::Online, Seed);
      Oracle O = buildOracle(workload::makeRandomGenerator(Shape),
                             Constructors, Base);
      for (GraphForm Form : {GraphForm::Standard, GraphForm::Inductive}) {
        TermTable Terms(Constructors);
        ConstraintSolver Solver(Terms,
                                makeConfig(Form, CycleElim::Oracle, Seed),
                                &O);
        workload::emitRandomConstraints(Shape, Solver);
        Solver.finalize();
        // Atomic additions plus (c, c') arrivals (counted as mismatches
        // since sources and sinks are distinct constructors).
        uint64_t Work = Solver.stats().Work + Solver.stats().Mismatches;
        (Form == GraphForm::Standard ? TotalSF : TotalIF) += Work;
      }
    }
    Measured.addRow({formatGrouped(N), formatGrouped(TotalSF / 5),
                     formatGrouped(TotalIF / 5),
                     formatDouble(double(TotalSF) / double(TotalIF), 3)});
  }
  Measured.print();
  std::printf("\npaper: the model predicts ~2.5x; the paper measured 4.1x "
              "more work for SF on its benchmarks.\n");
  return 0;
}
