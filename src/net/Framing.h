//===- net/Framing.h - Newline framing over byte streams --------*- C++ -*-===//
//
// Part of the poce project.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The socket front end speaks the same newline-delimited verb protocol
/// as scserved's stdin mode, so framing is: bytes arrive in arbitrary
/// read() chunks, requests are complete lines. LineBuffer reassembles
/// them, strips an optional trailing '\r' (telnet-friendly), and
/// enforces the per-request size limit *streamingly* — an oversized line
/// is reported once (in stream order) and then discarded byte-by-byte up
/// to its newline, so one abusive request costs O(limit) memory, not
/// O(request), and the connection resynchronizes at the next line
/// instead of dying.
///
//===----------------------------------------------------------------------===//

#ifndef POCE_NET_FRAMING_H
#define POCE_NET_FRAMING_H

#include <cstddef>
#include <deque>
#include <string>
#include <utility>

namespace poce {
namespace net {

/// Reassembles newline-delimited requests from stream chunks.
class LineBuffer {
public:
  explicit LineBuffer(size_t MaxLine) : MaxLine(MaxLine) {}

  /// What next() extracted.
  enum class Item {
    None,      ///< No complete line buffered yet.
    Line,      ///< One request line (in \p Out).
    Oversized, ///< A line exceeded the limit and was discarded; its byte
               ///< length (without the newline) is in \p Out as decimal
               ///< text. Reported once per line, in stream order.
  };

  /// Appends one read() chunk.
  void append(const char *Data, size_t Len) {
    for (size_t I = 0; I != Len; ++I) {
      char C = Data[I];
      if (Discarding) {
        if (C == '\n') {
          Items.emplace_back(true, std::to_string(DiscardedLen));
          Discarding = false;
          DiscardedLen = 0;
        } else {
          ++DiscardedLen;
        }
        continue;
      }
      if (C == '\n') {
        if (!Cur.empty() && Cur.back() == '\r')
          Cur.pop_back();
        Items.emplace_back(false, std::move(Cur));
        Cur.clear();
        continue;
      }
      if (Cur.size() < MaxLine) {
        Cur.push_back(C);
        continue;
      }
      // Limit hit without a newline: flip to discard mode. The bytes
      // already accumulated are part of the oversized line; count them
      // so the report reflects what the client actually sent.
      Discarding = true;
      DiscardedLen = Cur.size() + 1;
      Cur.clear();
    }
  }

  /// Extracts the next item; call until it returns None.
  Item next(std::string &Out) {
    if (Items.empty())
      return Item::None;
    bool Oversized = Items.front().first;
    Out = std::move(Items.front().second);
    Items.pop_front();
    return Oversized ? Item::Oversized : Item::Line;
  }

  /// Bytes buffered toward an incomplete line (diagnostics/tests).
  size_t pendingBytes() const { return Cur.size(); }

private:
  std::deque<std::pair<bool, std::string>> Items; ///< (oversized, text).
  std::string Cur;          ///< The line being accumulated.
  size_t MaxLine;
  bool Discarding = false;  ///< Dropping up to the next '\n'.
  size_t DiscardedLen = 0;  ///< Bytes of the line being discarded.
};

} // namespace net
} // namespace poce

#endif // POCE_NET_FRAMING_H
