//===- serve/GraphSnapshot.h - Solved-graph persistence ---------*- C++ -*-===//
//
// Part of the poce project.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Binary persistence for a solved ConstraintSolver: the whole point of
/// online cycle elimination is that the closure is cheap enough to build
/// once and then serve from, so the serve layer saves the closed graph —
/// constructors and terms via the interner (replayed in id order, which
/// hash-consing makes deterministic), per-variable adjacency lists and
/// SparseBitVector term sets word-for-word, union-find forwarding
/// pointers (compressed), least-solution bitmaps, solver options, stats,
/// and the order RNG's mid-stream state — into a versioned, checksummed
/// little-endian file.
///
/// Round trips are bit-identical: save(load(save(S))) produces the same
/// bytes, and a loaded solver answers every query (and accepts further
/// constraints) exactly like the solver it was saved from. Loading never
/// trusts the input: the header validates magic/version/length/checksum,
/// and every count, id, enum, and bitmap in the payload is bounds-checked
/// before use, ending with the solver's own graph-invariant verification.
///
/// Oracle-eliminated solvers cannot be snapshotted (the Oracle instance
/// is external state the format cannot capture), nor can aborted solves.
///
//===----------------------------------------------------------------------===//

#ifndef POCE_SERVE_GRAPHSNAPSHOT_H
#define POCE_SERVE_GRAPHSNAPSHOT_H

#include "setcon/ConstraintSolver.h"
#include "support/Status.h"

#include <cstdint>
#include <memory>
#include <string>
#include <vector>

namespace poce {
namespace serve {

/// A solver plus the tables it borrows, with ownership in destruction
/// order (the solver references the term table, which references the
/// constructor table). load() fills one of these from a snapshot.
struct SolverBundle {
  std::unique_ptr<ConstructorTable> Constructors;
  std::unique_ptr<TermTable> Terms;
  std::unique_ptr<ConstraintSolver> Solver;
};

/// Serializer/deserializer for the snapshot format (all members static;
/// the class exists to be befriended by ConstraintSolver).
class GraphSnapshot {
public:
  /// Format identification. Version is bumped on any wire change; it is
  /// deliberately outside the checksum so that a version-skewed file
  /// reports as such rather than as corruption. Version 2 added the
  /// resource-budget options (DeadlineMs/MaxEdgeBudget/MaxMemBytes) and
  /// the abort-reason stat. Version 3 added the base-root provenance
  /// table (one tagged record per accepted constraint, so retraction
  /// works across a checkpoint) and the three retraction counters.
  static constexpr char Magic[8] = {'P', 'O', 'C', 'E',
                                    'S', 'N', 'A', 'P'};
  static constexpr uint32_t Version = 3;
  /// Header: magic(8) + version(4) + checksum(8) + payload length(8).
  static constexpr size_t HeaderSize = 28;

  /// Serializes \p Solver into \p Out (draining its worklist first).
  /// Fails (FailedPrecondition) for Oracle-eliminated configurations and
  /// aborted solves.
  static Status serialize(ConstraintSolver &Solver,
                          std::vector<uint8_t> &Out);

  /// serialize() + crash-safe write to \p Path (writeFileAtomic: temp
  /// file + fsync + rename + directory fsync), so a crash mid-save can
  /// never leave a truncated snapshot where a good one stood.
  static Status save(ConstraintSolver &Solver, const std::string &Path);

  /// Validates and reconstructs a snapshot into \p Bundle (replacing its
  /// contents). On failure returns Corruption/VersionSkew with an
  /// actionable message and leaves \p Bundle empty.
  static Status deserialize(const uint8_t *Data, size_t Size,
                            SolverBundle &Bundle);

  /// The payload checksum stored in a snapshot header (0 if \p Size is
  /// shorter than one). This is the snapshot's durable identity — the
  /// WAL stamps it as its base id so recovery can tell whether a log
  /// extends the snapshot beside it (see serve/Wal.h).
  static uint64_t payloadChecksum(const uint8_t *Data, size_t Size);

  /// Read \p Path + deserialize(). Failpoint: `snapshot.load` (error).
  /// On success \p ChecksumOut (if non-null) receives the file's
  /// payloadChecksum().
  static Status load(const std::string &Path, SolverBundle &Bundle,
                     uint64_t *ChecksumOut = nullptr);
};

} // namespace serve
} // namespace poce

#endif // POCE_SERVE_GRAPHSNAPSHOT_H
