//===- bench/ablation_sf_increasing.cpp - SF chain-direction ablation ------===//
//
// Part of the poce project.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Ablation from Section 4's discussion: standard-form detection normally
/// follows successor chains toward lower-ordered variables; the paper
/// notes that searching increasing chains raises the detection rate (they
/// measured 57%) but that the extra cost outweighs the benefit. This bench
/// measures detection counts, work, and time for decreasing, increasing,
/// and combined chain searches on a suite subset.
///
//===----------------------------------------------------------------------===//

#include "BenchCommon.h"

using namespace poce;
using namespace poce::bench;

int main() {
  BenchEnv Env = BenchEnv::fromEnv();
  // A subset keeps the three-way sweep affordable.
  if (!Env.MaxAst)
    Env.MaxAst = 20000;
  std::printf("=== Ablation: SF-Online chain-search direction ===\n");
  Env.print();

  TextTable Table({"Benchmark", "Mode", "Elim", "Rate", "Work", "Time(s)"});
  for (auto &Entry : prepareSuite(Env)) {
    uint64_t Eliminable = Entry->oracle().eliminableVars();
    for (SFChainMode Mode : {SFChainMode::Decreasing,
                             SFChainMode::Increasing, SFChainMode::Both}) {
      SolverOptions Options =
          makeConfig(GraphForm::Standard, CycleElim::Online);
      Options.SFChains = Mode;
      double Best = 0;
      SolverStats Stats;
      for (unsigned Repeat = 0; Repeat != Env.Repeats; ++Repeat) {
        TermTable Terms(Entry->Constructors);
        Timer T;
        ConstraintSolver Solver(Terms, Options);
        andersen::ConstraintGenerator Generator(Solver);
        Generator.run(Entry->Program->Unit);
        Solver.finalize();
        double Seconds = T.seconds();
        if (Repeat == 0 || Seconds < Best)
          Best = Seconds;
        Stats = Solver.stats();
      }
      const char *Name = Mode == SFChainMode::Decreasing ? "decreasing"
                         : Mode == SFChainMode::Increasing ? "increasing"
                                                           : "both";
      double Rate =
          Eliminable ? 100.0 * Stats.VarsEliminated / Eliminable : 0.0;
      Table.addRow({Entry->Program->Spec.Name, Name,
                    formatGrouped(Stats.VarsEliminated),
                    formatDouble(Rate, 1) + "%", formatGrouped(Stats.Work),
                    formatDouble(Best, 3)});
    }
  }
  Table.print();
  return 0;
}
