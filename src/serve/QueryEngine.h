//===- serve/QueryEngine.h - Queries over a warm solver ---------*- C++ -*-===//
//
// Part of the poce project.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Query layer over a solved ConstraintSolver (typically loaded from a
/// GraphSnapshot): `ls(x)` renders the least solution, `pts(x)` projects
/// it to points-to location tags, `alias(x,y)` intersects solution
/// bitmaps, and `addConstraint(line)` feeds new text constraints through
/// the solver's fully online closure — cycle elimination keeps running on
/// the warm graph, exactly as it would have during the original solve.
///
/// The engine owns its SolverBundle so it can make constraint batches
/// transactional against resource budgets: at construction (and at every
/// checkpointBase()) it captures a serialized base snapshot, and every
/// accepted constraint line is journaled. When an addition trips a budget
/// (deadline, edge, or memory — see SolverOptions) the closure aborts
/// mid-flight and leaves the graph half-propagated; the engine then rolls
/// back by rebuilding the bundle from the base snapshot and replaying the
/// journal with budgets disabled, which restores a state bit-identical to
/// the one before the offending line. The caller sees a clean
/// BudgetExceeded error and can keep querying.
///
/// Rendered views are kept in a bounded LRU cache keyed by (query kind,
/// representative). A cached view is valid iff the representative's
/// solver-side mutation epoch still matches the one sampled when the
/// view was built: the solver bumps a variable's epoch whenever its
/// least solution may have changed — on growth from additions AND on
/// shrinkage from retractions. (The scheme this replaced keyed validity
/// on the solution bitmap's population count, which is sound only under
/// monotone growth: a retraction followed by additions can return a
/// solution to a previous size with different members, and the stale
/// view would have been served. The epoch never repeats, so that trap
/// is closed.) Views whose solutions were untouched keep serving from
/// cache; stale ones are detected (and rebuilt) lazily on their next
/// hit. Collapses are handled by keying on the current representative:
/// a variable swallowed by a cycle simply resolves to its witness's
/// view. Rollback replaces the solver wholesale, so it clears the
/// cache.
///
//===----------------------------------------------------------------------===//

#ifndef POCE_SERVE_QUERYENGINE_H
#define POCE_SERVE_QUERYENGINE_H

#include "serve/GraphSnapshot.h"
#include "setcon/ConstraintFile.h"
#include "setcon/ConstraintSolver.h"
#include "support/LruCache.h"
#include "support/Status.h"

#include <cstdint>
#include <string>
#include <vector>

namespace poce {
namespace serve {

/// Pure rendering helpers shared by every query surface — the cached
/// QueryEngine views below, the network layer's immutable ReadViews
/// (net/ReadView.h), and the drivers' reply formatting. All of them are
/// const over the solver so they are safe on concurrently shared,
/// settled solvers.
namespace render {

/// The location tag of one constructed term: a nullary constructor's
/// name, the name of a nullary first argument (the ref(l, get, set)
/// shape Andersen's analysis uses), or the full rendering otherwise.
std::string locationTag(const ConstraintSolver &Solver, ExprId Term);

/// ls items: each term of \p Terms rendered as its term string.
std::vector<std::string> lsItems(const ConstraintSolver &Solver,
                                 const std::vector<ExprId> &Terms);

/// pts items: \p Terms projected to location tags, sorted and
/// deduplicated so responses are canonical.
std::vector<std::string> ptsItems(const ConstraintSolver &Solver,
                                  const std::vector<ExprId> &Terms);

/// "{ a, b }" set formatting shared by the stdin and socket reply paths.
std::string renderSet(const std::vector<std::string> &Items);

} // namespace render

class QueryEngine {
public:
  /// Query-layer counters (the solver's own stats stay separate and are
  /// exposed through solver().stats()).
  struct Counters {
    uint64_t Queries = 0;       ///< ls/pts/alias calls answered.
    uint64_t CacheHits = 0;     ///< Served from a still-valid cached view.
    uint64_t CacheMisses = 0;   ///< View built fresh (first touch).
    uint64_t StaleRebuilds = 0; ///< Cached view outgrown by additions.
    uint64_t Additions = 0;     ///< addConstraint lines accepted.
    uint64_t Retractions = 0;   ///< retractConstraint lines accepted.
    uint64_t BudgetAborts = 0;  ///< Mutations rejected by a budget breach.
    uint64_t Rollbacks = 0;     ///< Successful pre-batch state restores.
  };

  /// Takes ownership of \p Bundle, adopting its declarations so textual
  /// queries and constraints can reference every existing variable and
  /// constructor, and captures the rollback base snapshot. Check valid()
  /// (adoption fails on duplicate variable names). Base capture can fail
  /// without invalidating the engine (e.g. Oracle-eliminated solvers are
  /// not serializable); the engine then runs with rollback disarmed and
  /// budget breaches become unrecoverable for the batch.
  explicit QueryEngine(SolverBundle Bundle, size_t CacheCapacity = 256);

  bool valid() const { return Valid; }
  const std::string &initError() const { return InitError; }

  /// True when a budget abort can be rolled back (base snapshot captured).
  bool rollbackArmed() const { return RollbackArmed; }

  /// Resolves a variable name to its VarId, or NotFound.
  uint32_t varOf(const std::string &Name) const;
  static constexpr uint32_t NotFound = ~0U;

  /// The least solution of \p Var rendered as term strings (cached).
  const std::vector<std::string> &ls(VarId Var);

  /// The points-to projection of \p Var's least solution (cached): each
  /// term contributes its location tag — a nullary constructor's name, or
  /// the name of a nullary first argument (the ref(l, get, set) shape
  /// Andersen's analysis uses), or the full rendering otherwise.
  const std::vector<std::string> &pts(VarId Var);

  /// True if \p X and \p Y may alias: same representative after
  /// collapses, or intersecting least solutions.
  bool alias(VarId X, VarId Y);

  /// Feeds one line of the constraint-file format (declaration or
  /// constraint) through the online closure. Affected cached views are
  /// invalidated by the fingerprint check on their next access. On parse
  /// failure the graph is untouched; on a budget breach the engine rolls
  /// back to the pre-line state and returns BudgetExceeded (or Internal,
  /// if rollback itself is impossible — see rollbackArmed()).
  Status addConstraint(const std::string &Line);

  /// Dry-run of addConstraint(): parses and validates \p Line against
  /// the live system without mutating anything. A line that passes can
  /// only be rejected later by a resource-budget breach. Lets the server
  /// WAL-append only lines that are known to replay cleanly.
  Status checkConstraint(const std::string &Line) const;

  /// Retracts the constraint \p Line added earlier: the solver deletes
  /// its base edge and incrementally recomputes the affected cone
  /// (splitting collapsed cycle classes whose witness cycle lost an
  /// edge — see ConstraintSolver::retract). \p Line is canonicalized
  /// first, so whitespace and comments do not have to match the
  /// original text. NotFound when no live constraint matches;
  /// InvalidArgument for non-constraint lines. On a budget breach
  /// mid-recompute the engine rolls back to the pre-line state exactly
  /// as addConstraint does. Affected cached views invalidate through
  /// the mutation-epoch check on their next access — no cache flush.
  Status retractConstraint(const std::string &Line);

  /// Dry-run of retractConstraint(): canonicalizes \p Line and checks a
  /// live constraint matches, without mutating anything. Lets the
  /// server WAL-append only retractions that are known to apply. On
  /// success \p Canon (if given) receives the canonical text — the
  /// exact payload the WAL record must carry.
  Status checkRetract(const std::string &Line,
                      std::string *Canon = nullptr) const;

  /// Re-captures the rollback base from the current graph and clears the
  /// journal. Call after persisting a snapshot so the journal stays in
  /// lockstep with the on-disk WAL. Fails for non-serializable solvers
  /// (rollback stays armed on the previous base in that case).
  Status checkpointBase();

  /// Replaces the engine's entire state with the graph deserialized from
  /// \p Data — cache and journal cleared, rollback re-armed on the new
  /// base. The snapshot's recorded solver options are adopted wholesale
  /// (no live re-arm): a replication follower re-bootstrapping from its
  /// primary must end up bit-identical to it, down to the serialized
  /// option and counter words. Leaves the engine untouched on failure.
  Status resetFromSnapshot(const uint8_t *Data, size_t Size);

  /// Mutations accepted since the last checkpointBase(): constraint
  /// lines verbatim, retractions as `!retract <canonical line>` (the
  /// WAL record payload encoding — see serve/Wal.h).
  const std::vector<std::string> &journal() const { return AcceptedLines; }

  const Counters &counters() const { return Stats; }
  uint64_t cacheEvictions() const { return Cache.evictions(); }
  size_t cacheSize() const { return Cache.size(); }

  ConstraintSolver &solver() { return *Bundle.Solver; }
  const ConstraintSolver &solver() const { return *Bundle.Solver; }
  const ConstraintSystemFile &system() const { return System; }

private:
  enum class ViewKind : uint8_t { Ls, Pts };

  struct View {
    /// The representative's mutation epoch at build time; any change to
    /// its least solution since (growth or shrinkage) bumps the live
    /// epoch and invalidates the view.
    uint64_t Epoch;
    std::vector<std::string> Items;
  };

  const std::vector<std::string> &view(ViewKind Kind, VarId Var);

  /// Rebuilds the bundle from BaseBytes and replays AcceptedLines with
  /// budgets disabled (they were each within budget when first accepted;
  /// re-aborting mid-restore would lose the graph). Leaves the engine
  /// untouched on failure.
  Status rollback();

  SolverBundle Bundle;
  ConstraintSystemFile System;
  LruCache<uint64_t, View> Cache;
  Counters Stats;
  bool Valid = false;
  bool RollbackArmed = false;
  std::string InitError;
  std::vector<uint8_t> BaseBytes;          ///< Rollback base snapshot.
  std::vector<std::string> AcceptedLines;  ///< Journal since the base.
};

} // namespace serve
} // namespace poce

#endif // POCE_SERVE_QUERYENGINE_H
