//===- support/Timer.h - Wall-clock timing ----------------------*- C++ -*-===//
//
// Part of the poce project.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// A monotonic wall-clock timer used for the paper's timing measurements
/// (the paper reports best-of-three CPU seconds; we report best-of-N wall
/// seconds, see bench/).
///
//===----------------------------------------------------------------------===//

#ifndef POCE_SUPPORT_TIMER_H
#define POCE_SUPPORT_TIMER_H

#include <chrono>

namespace poce {

/// Monotonic stopwatch. Construction starts the clock.
class Timer {
public:
  Timer() : Start(Clock::now()) {}

  void reset() { Start = Clock::now(); }

  /// Seconds elapsed since construction or the last reset().
  double seconds() const {
    return std::chrono::duration<double>(Clock::now() - Start).count();
  }

  /// Milliseconds elapsed since construction or the last reset().
  double millis() const { return seconds() * 1e3; }

private:
  using Clock = std::chrono::steady_clock;
  Clock::time_point Start;
};

/// Runs \p F \p Repeats times and returns the fastest wall-clock seconds —
/// the paper's "best of three runs" methodology. Zero repeats returns 0.0
/// (never a negative sentinel: a mis-parsed --repeats=0 must not poison a
/// benchmark JSON with -1 timings).
template <typename Fn> double bestOfN(unsigned Repeats, Fn F) {
  double Best = -1.0;
  for (unsigned I = 0; I != Repeats; ++I) {
    Timer T;
    F();
    double Elapsed = T.seconds();
    if (Best < 0 || Elapsed < Best)
      Best = Elapsed;
  }
  return Best < 0 ? 0.0 : Best;
}

} // namespace poce

#endif // POCE_SUPPORT_TIMER_H
