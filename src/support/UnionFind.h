//===- support/UnionFind.h - Disjoint-set forest ----------------*- C++ -*-===//
//
// Part of the poce project.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// A disjoint-set forest with path compression. Unlike the classic
/// union-by-rank structure, the representative of a merged class is chosen
/// by the *caller*: the constraint solver must keep the lowest-ordered
/// variable of a collapsed cycle as the witness to preserve inductive form,
/// so unite(Child, Parent) always makes Parent the representative.
///
//===----------------------------------------------------------------------===//

#ifndef POCE_SUPPORT_UNIONFIND_H
#define POCE_SUPPORT_UNIONFIND_H

#include <cassert>
#include <cstdint>
#include <vector>

namespace poce {

/// Disjoint-set forest over dense uint32 ids with caller-chosen
/// representatives.
class UnionFind {
public:
  /// Adds a fresh singleton class and returns its id.
  uint32_t makeSet() {
    uint32_t Id = static_cast<uint32_t>(Parent.size());
    Parent.push_back(Id);
    return Id;
  }

  /// Grows the forest so ids [0, N) are valid singletons.
  void growTo(uint32_t N) {
    while (Parent.size() < N)
      makeSet();
  }

  uint32_t size() const { return static_cast<uint32_t>(Parent.size()); }

  /// Returns the representative of \p Id's class, compressing the path.
  uint32_t find(uint32_t Id) {
    assert(Id < Parent.size() && "find() id out of range!");
    uint32_t Root = Id;
    while (Parent[Root] != Root)
      Root = Parent[Root];
    // Path compression.
    while (Parent[Id] != Root) {
      uint32_t Next = Parent[Id];
      Parent[Id] = Root;
      Id = Next;
    }
    return Root;
  }

  /// Returns the representative without mutating the forest.
  uint32_t findConst(uint32_t Id) const {
    assert(Id < Parent.size() && "findConst() id out of range!");
    while (Parent[Id] != Id)
      Id = Parent[Id];
    return Id;
  }

  bool isRepresentative(uint32_t Id) const {
    assert(Id < Parent.size() && "isRepresentative() id out of range!");
    return Parent[Id] == Id;
  }

  /// Merges \p Child's class into \p Parent's class; the representative of
  /// \p ParentId's class becomes the representative of the union. Both
  /// arguments may be non-representatives. Returns false if the two ids
  /// were already in the same class.
  bool unite(uint32_t ChildId, uint32_t ParentId) {
    uint32_t ChildRoot = find(ChildId);
    uint32_t ParentRoot = find(ParentId);
    if (ChildRoot == ParentRoot)
      return false;
    Parent[ChildRoot] = ParentRoot;
    return true;
  }

  bool inSameSet(uint32_t A, uint32_t B) { return find(A) == find(B); }

  /// Detaches \p Id into its own singleton class. Constraint retraction
  /// uses this to dissolve a collapsed cycle whose witness lost an edge:
  /// the caller must reset *every* member of the class (members may be
  /// parent links on other members' paths, so resetting a strict subset
  /// would leave dangling parents pointing into the detached part).
  void reset(uint32_t Id) {
    assert(Id < Parent.size() && "reset() id out of range!");
    Parent[Id] = Id;
  }

private:
  std::vector<uint32_t> Parent;
};

} // namespace poce

#endif // POCE_SUPPORT_UNIONFIND_H
