//===- serve/GraphSnapshot.cpp - Solved-graph persistence -----------------===//
//
// Part of the poce project.
//
//===----------------------------------------------------------------------===//
//
// Wire layout (all integers little-endian; see docs/INTERNALS.md for the
// field table):
//
//   header   magic "POCESNAP" | u32 version | u64 fnv1a64(payload)
//            | u64 payload length
//   payload  options | counts | constructors | terms | variables
//            | forwarding | creations | seen-source/sink bitmaps
//            | recorded var-var pairs (all, initial) | inconsistencies
//            | periodic watermark | RNG state | stats
//            | finalized flag [+ LS bitmaps in inductive form]
//
// Terms are serialized by replaying the interner: ids are assigned in
// first-construction order, and a constructed term's arguments always
// have smaller ids, so writing entries in id order and re-interning them
// on load reproduces every id exactly (each replayed id is checked
// against its expected value, which also catches corrupted streams that
// alias two entries). Bitmaps are written element-by-element in the
// SparseBitVector's physical layout, making the round trip bit-identical
// rather than merely semantically equal.
//
//===----------------------------------------------------------------------===//

#include "serve/GraphSnapshot.h"

#include "support/ByteStream.h"
#include "support/FailPoint.h"
#include "support/Metrics.h"
#include "support/Trace.h"

#include <cstring>

using namespace poce;
using namespace poce::serve;

namespace {

/// Snapshot work is graph-sized (far past histogram-record cost), so the
/// records are unconditional, like the WAL's.
Histogram &serializeHistogram() {
  static Histogram &H = MetricsRegistry::global().histogram(
      "poce_snapshot_serialize_us",
      "Microseconds to serialize a solver graph (checkpoint capture)");
  return H;
}

Histogram &loadHistogram() {
  static Histogram &H = MetricsRegistry::global().histogram(
      "poce_snapshot_load_us",
      "Microseconds to read, verify, and rebuild a snapshot from disk");
  return H;
}

void writeBitmap(ByteWriter &W, const SparseBitVector &Bits) {
  W.u32(static_cast<uint32_t>(Bits.numElements()));
  Bits.forEachElement([&](uint32_t Index, const uint64_t Words[2]) {
    W.u32(Index);
    W.u64(Words[0]);
    W.u64(Words[1]);
  });
}

/// Reads one bitmap, enforcing the container invariants (strictly
/// ascending non-empty elements) plus \p MaxBitBound on the highest id.
bool readBitmap(ByteReader &R, SparseBitVector &Bits, uint32_t MaxBitBound,
                const char *What) {
  uint32_t NumElements;
  if (!R.u32(NumElements))
    return false;
  if (NumElements > R.remaining() / 20) {
    R.fail(std::string("implausible element count in ") + What);
    return false;
  }
  Bits.clear();
  for (uint32_t I = 0; I != NumElements; ++I) {
    uint32_t Index;
    uint64_t Words[2];
    if (!R.u32(Index) || !R.u64(Words[0]) || !R.u64(Words[1]))
      return false;
    uint32_t Top = Words[1] ? 64 + (63 - __builtin_clzll(Words[1]))
                   : Words[0] ? 63 - __builtin_clzll(Words[0])
                              : 0;
    uint64_t MaxId = static_cast<uint64_t>(Index) *
                         SparseBitVector::ElementBits +
                     Top;
    if ((Words[0] | Words[1]) && MaxId >= MaxBitBound) {
      R.fail(std::string("bit ") + std::to_string(MaxId) +
             " out of range in " + What);
      return false;
    }
    if (!Bits.appendElement(Index, Words)) {
      R.fail(std::string("malformed bitmap element in ") + What);
      return false;
    }
  }
  return true;
}

constexpr uint8_t MaxAbortReason =
    static_cast<uint8_t>(SolverStats::AbortReason::Injected);

void writeStats(ByteWriter &W, const SolverStats &S) {
  W.u64(S.VarsCreated);
  W.u64(S.OracleSubstitutions);
  W.u64(S.InitialEdges);
  W.u64(S.DistinctSources);
  W.u64(S.DistinctSinks);
  W.u64(S.Work);
  W.u64(S.RedundantAdds);
  W.u64(S.SelfEdges);
  W.u64(S.VarsEliminated);
  W.u64(S.CyclesCollapsed);
  W.u64(S.CycleSearchSteps);
  W.u64(S.CycleSearches);
  W.u64(S.PeriodicPasses);
  W.u64(S.Mismatches);
  W.u64(S.ConstraintsProcessed);
  W.u64(S.LSUnionWords);
  W.u64(S.DeltaPropagations);
  W.u64(S.PropagationsPruned);
  W.u64(S.Retractions);
  W.u64(S.ConeVarsRecomputed);
  W.u64(S.CollapsesSplit);
  W.u8(S.Aborted ? 1 : 0);
  W.u8(static_cast<uint8_t>(S.Abort));
}

bool readStats(ByteReader &R, SolverStats &S) {
  uint8_t Aborted = 0, Abort = 0;
  bool Ok = R.u64(S.VarsCreated) && R.u64(S.OracleSubstitutions) &&
            R.u64(S.InitialEdges) && R.u64(S.DistinctSources) &&
            R.u64(S.DistinctSinks) && R.u64(S.Work) &&
            R.u64(S.RedundantAdds) && R.u64(S.SelfEdges) &&
            R.u64(S.VarsEliminated) && R.u64(S.CyclesCollapsed) &&
            R.u64(S.CycleSearchSteps) && R.u64(S.CycleSearches) &&
            R.u64(S.PeriodicPasses) && R.u64(S.Mismatches) &&
            R.u64(S.ConstraintsProcessed) && R.u64(S.LSUnionWords) &&
            R.u64(S.DeltaPropagations) && R.u64(S.PropagationsPruned) &&
            R.u64(S.Retractions) && R.u64(S.ConeVarsRecomputed) &&
            R.u64(S.CollapsesSplit) && R.u8(Aborted) && R.u8(Abort);
  if (Ok && Abort > MaxAbortReason) {
    R.fail("abort reason out of range");
    return false;
  }
  S.Aborted = Aborted != 0;
  S.Abort = static_cast<SolverStats::AbortReason>(Abort);
  return Ok;
}

Status fail(ErrorCode Code, const std::string &Message) {
  return Status::error(Code, Message);
}

} // namespace

Status GraphSnapshot::serialize(ConstraintSolver &Solver,
                                std::vector<uint8_t> &Out) {
  if (Solver.Options.Elim == CycleElim::Oracle)
    return fail(ErrorCode::FailedPrecondition,
                "oracle-eliminated solvers cannot be snapshotted "
                "(the Oracle instance is external state)");
  Solver.ensureClosed();
  if (Solver.Stats.Aborted)
    return fail(ErrorCode::FailedPrecondition,
                "aborted solves cannot be snapshotted (" +
                    std::string(SolverStats::abortReasonName(
                        Solver.Stats.Abort)) +
                    " budget exceeded)");

  const uint64_t StartUs = trace::nowMicros();
  ByteWriter W;
  W.bytes(Magic, sizeof(Magic));
  W.u32(Version);
  size_t ChecksumAt = W.size();
  W.u64(0); // Checksum, patched below.
  size_t LengthAt = W.size();
  W.u64(0); // Payload length, patched below.

  const SolverOptions &O = Solver.Options;
  W.u8(static_cast<uint8_t>(O.Form));
  W.u8(static_cast<uint8_t>(O.Elim));
  W.u8(static_cast<uint8_t>(O.SFChains));
  W.u8(static_cast<uint8_t>(O.Order));
  W.u8(static_cast<uint8_t>(O.Mismatch));
  W.u64(O.Seed);
  W.u64(O.MaxWork);
  W.u64(O.PeriodicInterval);
  W.u8(O.RecordVarVar ? 1 : 0);
  W.u8(O.DiffProp ? 1 : 0);
  W.u32(O.Threads);
  W.u64(O.DeadlineMs);
  W.u64(O.MaxEdgeBudget);
  W.u64(O.MaxMemBytes);

  const TermTable &Terms = Solver.Terms;
  const ConstructorTable &Cons = Terms.constructors();
  uint32_t NumVars = Solver.numVars();
  W.u32(Cons.size());
  W.u32(Terms.size());
  W.u32(NumVars);
  W.u32(Solver.numCreations());

  for (ConsId Id = 0; Id != Cons.size(); ++Id) {
    const ConstructorSignature &Sig = Cons.signature(Id);
    W.str(Sig.Name);
    W.u32(Sig.arity());
    for (Variance V : Sig.ArgVariance)
      W.u8(static_cast<uint8_t>(V));
  }

  // Ids 0 and 1 are always the constants; replay starts at 2.
  for (ExprId Id = 2; Id != Terms.size(); ++Id) {
    ExprKind K = Terms.kind(Id);
    W.u8(static_cast<uint8_t>(K));
    if (K == ExprKind::Var) {
      W.u32(Terms.varOf(Id));
    } else {
      W.u32(Terms.consOf(Id));
      const ExprId *Args = Terms.argsOf(Id);
      for (unsigned I = 0; I != Terms.numArgs(Id); ++I)
        W.u32(Args[I]);
    }
  }

  for (VarId Var = 0; Var != NumVars; ++Var) {
    const ConstraintSolver::VarNode &Node = Solver.Vars[Var];
    W.str(Node.Name);
    W.u64(Node.Order);
    W.u32(Node.CreationIndex);
    W.u32(static_cast<uint32_t>(Node.Preds.size()));
    for (uint32_t Entry : Node.Preds)
      W.u32(Entry);
    W.u32(static_cast<uint32_t>(Node.Succs.size()));
    for (uint32_t Entry : Node.Succs)
      W.u32(Entry);
    writeBitmap(W, Node.PredTerms);
    writeBitmap(W, Node.SuccTerms);
    writeBitmap(W, Node.SrcDelta);
  }

  for (VarId Var = 0; Var != NumVars; ++Var)
    W.u32(Solver.Forwarding.findConst(Var));
  for (VarId Var : Solver.VarOfCreation)
    W.u32(Var);

  writeBitmap(W, Solver.SeenSources);
  writeBitmap(W, Solver.SeenSinks);

  auto WritePairs =
      [&](const std::vector<std::pair<uint32_t, uint32_t>> &Pairs) {
        W.u32(static_cast<uint32_t>(Pairs.size()));
        for (const auto &[Lhs, Rhs] : Pairs) {
          W.u32(Lhs);
          W.u32(Rhs);
        }
      };
  WritePairs(Solver.RecordedVarVar);
  WritePairs(Solver.RecordedInitialVarVar);

  W.u32(static_cast<uint32_t>(Solver.Inconsistencies.size()));
  for (const std::string &Message : Solver.Inconsistencies)
    W.str(Message);

  // Base-root provenance: one record per accepted constraint, in
  // acceptance order, so a reloaded solver can still retract by tag.
  W.u32(static_cast<uint32_t>(Solver.BaseRoots.size()));
  for (const ConstraintSolver::BaseRoot &Root : Solver.BaseRoots) {
    W.u32(Root.L);
    W.u32(Root.R);
    W.str(Root.Tag);
  }

  W.u64(Solver.NextPeriodicWork);
  uint64_t RngState[4];
  Solver.OrderRng.getState(RngState);
  for (uint64_t Word : RngState)
    W.u64(Word);
  writeStats(W, Solver.Stats);

  W.u8(Solver.Finalized ? 1 : 0);
  if (Solver.Finalized && O.Form == GraphForm::Inductive)
    for (VarId Var = 0; Var != NumVars; ++Var)
      writeBitmap(W, Solver.LSBits[Var]);

  size_t PayloadLen = W.size() - HeaderSize;
  W.patchU64(LengthAt, PayloadLen);
  W.patchU64(ChecksumAt,
             fnv1a64(W.buffer().data() + HeaderSize, PayloadLen));
  Out = W.take();
  serializeHistogram().record(trace::nowMicros() - StartUs);
  trace::complete("snapshot.serialize", StartUs);
  return Status();
}

Status GraphSnapshot::save(ConstraintSolver &Solver,
                           const std::string &Path) {
  if (FailPoint::hit("snapshot.save") == FailPoint::Mode::Error)
    return FailPoint::injectedError("snapshot.save");
  std::vector<uint8_t> Buffer;
  Status St = serialize(Solver, Buffer);
  if (!St.ok())
    return St;
  return writeFileAtomic(Path, Buffer);
}

Status GraphSnapshot::deserialize(const uint8_t *Data, size_t Size,
                                  SolverBundle &Bundle) {
  Bundle = SolverBundle();
  if (Size < HeaderSize)
    return fail(ErrorCode::Corruption,
                "truncated snapshot: " + std::to_string(Size) +
                    " byte(s), header alone needs " +
                    std::to_string(HeaderSize));
  if (std::memcmp(Data, Magic, sizeof(Magic)) != 0)
    return fail(ErrorCode::Corruption,
                "not a poce snapshot (bad magic); expected a file "
                "written by GraphSnapshot::save");

  ByteReader Header(Data + sizeof(Magic), HeaderSize - sizeof(Magic));
  uint32_t FileVersion = 0;
  uint64_t Checksum = 0, PayloadLen = 0;
  Header.u32(FileVersion);
  Header.u64(Checksum);
  Header.u64(PayloadLen);
  if (FileVersion != Version)
    return fail(ErrorCode::VersionSkew,
                "snapshot version " + std::to_string(FileVersion) +
                    " not supported by this build (expected " +
                    std::to_string(Version) +
                    "); re-save the snapshot with this build");
  if (PayloadLen != Size - HeaderSize)
    return fail(ErrorCode::Corruption,
                "truncated or padded snapshot: header declares " +
                    std::to_string(PayloadLen) + " payload byte(s) but " +
                    std::to_string(Size - HeaderSize) + " present");
  if (fnv1a64(Data + HeaderSize, PayloadLen) != Checksum)
    return fail(ErrorCode::Corruption,
                "snapshot checksum mismatch: the file is "
                "corrupted (or was edited); re-save it");

  ByteReader R(Data + HeaderSize, PayloadLen);
  auto Bail = [&](const std::string &Context) {
    Bundle = SolverBundle();
    return fail(ErrorCode::Corruption,
                "invalid snapshot payload (" + Context + "): " +
                    (R.failed() ? R.error() : "validation failed"));
  };

  SolverOptions O;
  uint8_t Form, Elim, SFChains, Order, Mismatch, RecordVarVar, DiffProp;
  uint32_t Threads = 1;
  if (!R.u8(Form) || !R.u8(Elim) || !R.u8(SFChains) || !R.u8(Order) ||
      !R.u8(Mismatch) || !R.u64(O.Seed) || !R.u64(O.MaxWork) ||
      !R.u64(O.PeriodicInterval) || !R.u8(RecordVarVar) ||
      !R.u8(DiffProp) || !R.u32(Threads) || !R.u64(O.DeadlineMs) ||
      !R.u64(O.MaxEdgeBudget) || !R.u64(O.MaxMemBytes))
    return Bail("options");
  if (Form > 1 || Elim > 3 || SFChains > 2 || Order > 2 || Mismatch > 1)
    return fail(ErrorCode::Corruption,
                "invalid snapshot payload (options): enum value "
                "out of range");
  O.Form = static_cast<GraphForm>(Form);
  O.Elim = static_cast<CycleElim>(Elim);
  O.SFChains = static_cast<SFChainMode>(SFChains);
  O.Order = static_cast<OrderKind>(Order);
  O.Mismatch = static_cast<MismatchPolicy>(Mismatch);
  O.RecordVarVar = RecordVarVar != 0;
  O.DiffProp = DiffProp != 0;
  O.Threads = Threads;
  if (O.Elim == CycleElim::Oracle)
    return fail(ErrorCode::Corruption,
                "snapshot claims an oracle-eliminated solver, "
                "which cannot be serialized");
  if (O.Elim == CycleElim::Periodic && O.PeriodicInterval == 0)
    return fail(ErrorCode::Corruption,
                "invalid snapshot payload (options): periodic "
                "elimination with zero interval");

  uint32_t NumCons, NumTerms, NumVars, NumCreations;
  if (!R.u32(NumCons) || !R.u32(NumTerms) || !R.u32(NumVars) ||
      !R.u32(NumCreations))
    return Bail("counts");
  // Every record costs at least one payload byte, so any count larger
  // than the remaining payload is corrupt — reject before allocating.
  if (NumCons > R.remaining() || NumTerms > R.remaining() + 2 ||
      NumVars > R.remaining() || NumCreations > R.remaining() / 4)
    return fail(ErrorCode::Corruption,
                "invalid snapshot payload (counts): implausibly large");
  if (NumTerms < 2)
    return fail(ErrorCode::Corruption,
                "invalid snapshot payload (counts): term table "
                "must hold the constants 0 and 1");
  if (NumCreations < NumVars)
    return fail(ErrorCode::Corruption,
                "invalid snapshot payload (counts): fewer "
                "creations than variables");

  Bundle.Constructors = std::make_unique<ConstructorTable>();
  Bundle.Terms = std::make_unique<TermTable>(*Bundle.Constructors);
  TermTable &Terms = *Bundle.Terms;

  for (ConsId Id = 0; Id != NumCons; ++Id) {
    std::string Name;
    uint32_t Arity;
    if (!R.str(Name) || !R.u32(Arity))
      return Bail("constructor table");
    if (Name.empty() || Arity > R.remaining())
      return Bail("constructor table");
    SmallVector<Variance, 4> Variances;
    for (uint32_t I = 0; I != Arity; ++I) {
      uint8_t V;
      if (!R.u8(V))
        return Bail("constructor table");
      if (V > 1) {
        R.fail("variance marker out of range");
        return Bail("constructor table");
      }
      Variances.push_back(static_cast<Variance>(V));
    }
    if (Bundle.Constructors->lookup(Name) != ConstructorTable::NotFound) {
      R.fail("duplicate constructor name '" + Name + "'");
      return Bail("constructor table");
    }
    ConsId Got = Bundle.Constructors->getOrCreate(Name, Variances);
    if (Got != Id) {
      R.fail("constructor replay id mismatch");
      return Bail("constructor table");
    }
  }

  for (ExprId Id = 2; Id != NumTerms; ++Id) {
    uint8_t Kind;
    if (!R.u8(Kind))
      return Bail("term table");
    ExprId Got;
    if (Kind == static_cast<uint8_t>(ExprKind::Var)) {
      uint32_t Var;
      if (!R.u32(Var))
        return Bail("term table");
      if (Var >= NumVars) {
        R.fail("variable id " + std::to_string(Var) + " out of range");
        return Bail("term table");
      }
      Got = Terms.var(Var);
    } else if (Kind == static_cast<uint8_t>(ExprKind::Cons)) {
      uint32_t Cons;
      if (!R.u32(Cons))
        return Bail("term table");
      if (Cons >= NumCons) {
        R.fail("constructor id " + std::to_string(Cons) + " out of range");
        return Bail("term table");
      }
      unsigned Arity = Bundle.Constructors->signature(Cons).arity();
      SmallVector<ExprId, 4> Args;
      for (unsigned I = 0; I != Arity; ++I) {
        uint32_t Arg;
        if (!R.u32(Arg))
          return Bail("term table");
        // Hash-consing interns arguments before the terms that use them.
        if (Arg >= Id) {
          R.fail("argument id " + std::to_string(Arg) +
                 " not smaller than its term");
          return Bail("term table");
        }
        Args.push_back(Arg);
      }
      Got = Terms.cons(Cons, Args);
    } else {
      R.fail("unknown term kind " + std::to_string(Kind));
      return Bail("term table");
    }
    if (Got != Id) {
      R.fail("term replay id mismatch (duplicate entry?)");
      return Bail("term table");
    }
  }

  Bundle.Solver = std::make_unique<ConstraintSolver>(Terms, O);
  ConstraintSolver &S = *Bundle.Solver;

  S.Vars.resize(NumVars);
  for (VarId Var = 0; Var != NumVars; ++Var) {
    ConstraintSolver::VarNode &Node = S.Vars[Var];
    uint32_t NumPreds, NumSuccs;
    if (!R.str(Node.Name) || !R.u64(Node.Order) ||
        !R.u32(Node.CreationIndex) || !R.u32(NumPreds))
      return Bail("variable records");
    if (Node.CreationIndex >= NumCreations) {
      R.fail("creation index out of range");
      return Bail("variable records");
    }
    auto ReadEntries = [&](std::vector<uint32_t> &List, DenseU64Set &VarSet,
                           uint32_t Count) {
      if (Count > R.remaining() / 4) {
        R.fail("implausible adjacency count");
        return false;
      }
      List.reserve(Count);
      for (uint32_t I = 0; I != Count; ++I) {
        uint32_t Entry;
        if (!R.u32(Entry))
          return false;
        uint32_t Payload = Entry & ~ConstraintSolver::TermTag;
        if (Entry & ConstraintSolver::TermTag) {
          if (Payload >= NumTerms || !Terms.isConstructed(Payload)) {
            R.fail("adjacency term ref out of range");
            return false;
          }
        } else {
          if (Payload >= NumVars) {
            R.fail("adjacency variable ref out of range");
            return false;
          }
          if (!VarSet.insert(Entry)) {
            R.fail("duplicate adjacency entry");
            return false;
          }
        }
        List.push_back(Entry);
      }
      return true;
    };
    if (!ReadEntries(Node.Preds, Node.PredVarSet, NumPreds))
      return Bail("variable records");
    if (!R.u32(NumSuccs))
      return Bail("variable records");
    if (!ReadEntries(Node.Succs, Node.SuccVarSet, NumSuccs))
      return Bail("variable records");
    if (!readBitmap(R, Node.PredTerms, NumTerms, "pred term set") ||
        !readBitmap(R, Node.SuccTerms, NumTerms, "succ term set") ||
        !readBitmap(R, Node.SrcDelta, NumTerms, "source delta set"))
      return Bail("variable records");
  }

  std::vector<uint32_t> RepOf(NumVars);
  for (VarId Var = 0; Var != NumVars; ++Var) {
    if (!R.u32(RepOf[Var]))
      return Bail("forwarding table");
    if (RepOf[Var] >= NumVars) {
      R.fail("representative out of range");
      return Bail("forwarding table");
    }
  }
  S.Forwarding.growTo(NumVars);
  for (VarId Var = 0; Var != NumVars; ++Var) {
    uint32_t Rep = RepOf[Var];
    if (Rep == Var)
      continue;
    // Representatives are self-mapped and, as collapse witnesses, carry
    // the lowest order index of their class.
    if (RepOf[Rep] != Rep || S.Vars[Rep].Order > S.Vars[Var].Order) {
      R.fail("forwarding table is not a compressed forest onto "
             "lowest-ordered witnesses");
      return Bail("forwarding table");
    }
    S.Forwarding.unite(Var, Rep);
  }

  S.VarOfCreation.resize(NumCreations);
  for (uint32_t C = 0; C != NumCreations; ++C) {
    if (!R.u32(S.VarOfCreation[C]))
      return Bail("creation table");
    if (S.VarOfCreation[C] >= NumVars) {
      R.fail("creation maps to missing variable");
      return Bail("creation table");
    }
  }
  for (VarId Var = 0; Var != NumVars; ++Var) {
    if (S.VarOfCreation[S.Vars[Var].CreationIndex] != Var) {
      R.fail("variable/creation tables disagree");
      return Bail("creation table");
    }
  }

  if (!readBitmap(R, S.SeenSources, NumTerms, "seen-source set") ||
      !readBitmap(R, S.SeenSinks, NumTerms, "seen-sink set"))
    return Bail("seen-term sets");

  auto ReadPairs = [&](std::vector<std::pair<uint32_t, uint32_t>> &Pairs,
                       DenseU64Set &Set, const char *What) {
    uint32_t Count;
    if (!R.u32(Count))
      return false;
    if (Count > R.remaining() / 8) {
      R.fail(std::string("implausible pair count in ") + What);
      return false;
    }
    Pairs.reserve(Count);
    for (uint32_t I = 0; I != Count; ++I) {
      uint32_t Lhs, Rhs;
      if (!R.u32(Lhs) || !R.u32(Rhs))
        return false;
      if (Lhs >= NumCreations || Rhs >= NumCreations) {
        R.fail(std::string("creation index out of range in ") + What);
        return false;
      }
      uint64_t Key = (static_cast<uint64_t>(Lhs) << 32) | Rhs;
      if (!Set.insert(Key)) {
        R.fail(std::string("duplicate pair in ") + What);
        return false;
      }
      Pairs.push_back({Lhs, Rhs});
    }
    return true;
  };
  if (!ReadPairs(S.RecordedVarVar, S.RecordedSet, "recorded constraints") ||
      !ReadPairs(S.RecordedInitialVarVar, S.RecordedInitialSet,
                 "recorded initial constraints"))
    return Bail("recorded constraints");

  uint32_t NumInconsistencies;
  if (!R.u32(NumInconsistencies))
    return Bail("inconsistency log");
  if (NumInconsistencies > R.remaining())
    return fail(ErrorCode::Corruption,
                "invalid snapshot payload (inconsistency log): "
                "implausibly large");
  S.Inconsistencies.resize(NumInconsistencies);
  for (std::string &Message : S.Inconsistencies)
    if (!R.str(Message))
      return Bail("inconsistency log");

  uint32_t NumRoots;
  if (!R.u32(NumRoots))
    return Bail("base roots");
  // 12 = the two expression ids plus a tag's length prefix: the floor
  // on a record's encoded size, making huge counts implausible.
  if (NumRoots > R.remaining() / 12)
    return fail(ErrorCode::Corruption,
                "invalid snapshot payload (base roots): "
                "implausibly large");
  S.BaseRoots.reserve(NumRoots);
  for (uint32_t I = 0; I != NumRoots; ++I) {
    ConstraintSolver::BaseRoot Root;
    if (!R.u32(Root.L) || !R.u32(Root.R) || !R.str(Root.Tag))
      return Bail("base roots");
    if (Root.L >= NumTerms || Root.R >= NumTerms) {
      R.fail("base-root expression id out of range");
      return Bail("base roots");
    }
    S.BaseRoots.push_back(std::move(Root));
  }

  uint64_t RngState[4];
  if (!R.u64(S.NextPeriodicWork) || !R.u64(RngState[0]) ||
      !R.u64(RngState[1]) || !R.u64(RngState[2]) || !R.u64(RngState[3]))
    return Bail("RNG state");
  S.OrderRng.setState(RngState);
  if (!readStats(R, S.Stats))
    return Bail("stats");
  if (S.Stats.Aborted)
    return fail(ErrorCode::Corruption,
                "invalid snapshot payload (stats): snapshot of "
                "an aborted solve");

  uint8_t Finalized;
  if (!R.u8(Finalized))
    return Bail("finalized flag");
  S.Finalized = Finalized != 0;
  if (S.Finalized) {
    if (O.Form == GraphForm::Inductive) {
      S.LSBits.resize(NumVars);
      for (VarId Var = 0; Var != NumVars; ++Var)
        if (!readBitmap(R, S.LSBits[Var], NumTerms, "least-solution set"))
          return Bail("least solutions");
    }
    S.LSView.assign(NumVars, {});
    S.LSViewBuilt.assign(NumVars, 0);
  }

  if (R.remaining() != 0)
    return fail(ErrorCode::Corruption,
                "invalid snapshot payload: " +
                    std::to_string(R.remaining()) +
                    " unconsumed byte(s) after the last field");
  if (R.failed())
    return Bail("payload");

  if (!S.verifyGraphInvariants()) {
    Bundle = SolverBundle();
    return fail(ErrorCode::Corruption,
                "snapshot violates the solver's graph "
                "invariants; refusing to serve from it");
  }
  return Status();
}

uint64_t GraphSnapshot::payloadChecksum(const uint8_t *Data, size_t Size) {
  if (Size < HeaderSize)
    return 0;
  const uint8_t *P = Data + sizeof(Magic) + 4;
  uint64_t Value = 0;
  for (int Shift = 0; Shift != 64; Shift += 8)
    Value |= static_cast<uint64_t>(*P++) << Shift;
  return Value;
}

Status GraphSnapshot::load(const std::string &Path, SolverBundle &Bundle,
                           uint64_t *ChecksumOut) {
  if (FailPoint::hit("snapshot.load") == FailPoint::Mode::Error)
    return FailPoint::injectedError("snapshot.load");
  const uint64_t StartUs = trace::nowMicros();
  std::vector<uint8_t> Buffer;
  std::string Error;
  if (!readFileBytes(Path, Buffer, &Error))
    return Status::error(ErrorCode::IoError, Error);
  Status St = deserialize(Buffer.data(), Buffer.size(), Bundle)
                  .withContext("loading '" + Path + "'");
  if (St.ok() && ChecksumOut)
    *ChecksumOut = payloadChecksum(Buffer.data(), Buffer.size());
  if (St.ok()) {
    loadHistogram().record(trace::nowMicros() - StartUs);
    trace::complete("snapshot.load", StartUs);
  }
  return St;
}
