file(REMOVE_RECURSE
  "CMakeFiles/ablation_periodic.dir/ablation_periodic.cpp.o"
  "CMakeFiles/ablation_periodic.dir/ablation_periodic.cpp.o.d"
  "ablation_periodic"
  "ablation_periodic.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ablation_periodic.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
