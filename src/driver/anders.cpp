//===- driver/anders.cpp - Points-to analysis command-line tool ------------===//
//
// Part of the poce project.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// anders: runs Andersen's points-to analysis over a MiniC source file (or
/// a generated synthetic benchmark) under any of the paper's solver
/// configurations, printing points-to sets and/or solver statistics.
///
/// Examples:
///   anders file.c                        # IF-Online, print points-to sets
///   anders --config=sf-plain --stats file.c
///   anders --synth=espresso --stats     # run on a generated benchmark
///   anders --dot file.c > graph.dot     # constraint graph (variables)
///
//===----------------------------------------------------------------------===//

#include "andersen/Andersen.h"
#include "graph/DotWriter.h"
#include "minic/Lexer.h"
#include "minic/Parser.h"
#include "minic/PrettyPrinter.h"
#include "setcon/Oracle.h"
#include "support/CommandLine.h"
#include "support/Format.h"
#include "support/Timer.h"
#include "workload/Suite.h"

#include <cstdio>
#include <fstream>
#include <sstream>

using namespace poce;

static bool parseConfig(const std::string &Name, SolverOptions &Options) {
  if (Name == "sf-plain")
    Options = makeConfig(GraphForm::Standard, CycleElim::None);
  else if (Name == "if-plain")
    Options = makeConfig(GraphForm::Inductive, CycleElim::None);
  else if (Name == "sf-online")
    Options = makeConfig(GraphForm::Standard, CycleElim::Online);
  else if (Name == "if-online")
    Options = makeConfig(GraphForm::Inductive, CycleElim::Online);
  else if (Name == "sf-oracle")
    Options = makeConfig(GraphForm::Standard, CycleElim::Oracle);
  else if (Name == "if-oracle")
    Options = makeConfig(GraphForm::Inductive, CycleElim::Oracle);
  else
    return false;
  return true;
}

int main(int Argc, char **Argv) {
  CommandLine Cmd("anders",
                  "Andersen's points-to analysis via inclusion constraints "
                  "(PLDI 1998 reproduction)");
  std::string Config = "if-online";
  std::string Closure = "worklist";
  std::string Preprocess = "none";
  std::string Synth;
  bool ShowStats = false, ShowPointsTo = false, EmitDot = false;
  bool DumpAst = false, EmitC = false, EmitConstraints = false;
  bool Json = false, PointsToDot = false, Batch = false;
  int64_t Seed = 0x706f6365;
  int64_t SynthSize = 5000;
  int64_t Threads = 1;
  double BatchScale = 0.1;
  Cmd.addString("config", &Config,
                "solver configuration: {sf,if}-{plain,online,oracle}");
  Cmd.addString("closure", &Closure,
                "closure schedule: worklist (eager) or wave (topo-ordered "
                "delta sweeps); solutions are identical");
  Cmd.addString("preprocess", &Preprocess,
                "pre-solve pass: none or offline (HVN + Nuutila SCC "
                "variable substitution); solutions are identical");
  Cmd.addString("synth", &Synth,
                "analyze a generated benchmark (name or 'custom')");
  Cmd.addInt("synth-size", &SynthSize, "target AST nodes for --synth=custom");
  Cmd.addInt("seed", &Seed, "variable-order seed");
  Cmd.addInt("threads", &Threads,
             "execution lanes: parallel least-solution pass, and with "
             "--batch concurrent suite inputs (0 = hardware)");
  Cmd.addFlag("batch", &Batch,
              "solve the whole generated suite (one row per benchmark)");
  Cmd.addDouble("batch-scale", &BatchScale,
                "size scale for --batch (default 0.1)");
  Cmd.addFlag("stats", &ShowStats, "print solver statistics");
  Cmd.addFlag("points-to", &ShowPointsTo, "print points-to sets");
  Cmd.addFlag("dot", &EmitDot, "emit the variable constraint graph as DOT");
  Cmd.addFlag("dump-ast", &DumpAst, "dump the parsed AST and exit");
  Cmd.addFlag("emit-c", &EmitC, "re-emit the parsed program as C and exit");
  Cmd.addFlag("emit-constraints", &EmitConstraints,
              "dump the solved constraint graph as text");
  Cmd.addFlag("json", &Json, "print statistics as JSON (implies --stats)");
  Cmd.addFlag("points-to-dot", &PointsToDot,
              "emit the points-to graph (Figure 5 style) as DOT");
  if (!Cmd.parse(Argc, Argv))
    return 1;

  SolverOptions Options;
  if (!parseConfig(Config, Options)) {
    std::fprintf(stderr, "anders: unknown configuration '%s'\n",
                 Config.c_str());
    return 1;
  }
  Options.Seed = static_cast<uint64_t>(Seed);
  Options.Threads = static_cast<unsigned>(Threads);
  if (Closure == "wave")
    Options.Closure = ClosureMode::Wave;
  else if (Closure != "worklist") {
    std::fprintf(stderr, "anders: unknown closure schedule '%s'\n",
                 Closure.c_str());
    return 1;
  }
  if (Preprocess == "offline")
    Options.Preprocess = PreprocessMode::Offline;
  else if (Preprocess != "none") {
    std::fprintf(stderr, "anders: unknown preprocess mode '%s'\n",
                 Preprocess.c_str());
    return 1;
  }
  if (Json)
    ShowStats = true;
  if (!ShowStats && !EmitDot && !PointsToDot)
    ShowPointsTo = true;

  if (Batch) {
    // Independent suite inputs solved concurrently; results are printed in
    // input order and are identical for any --threads value.
    Timer BatchTimer;
    std::vector<workload::BatchSolveResult> Runs = workload::solveSuite(
        workload::paperSuite(BatchScale), Options,
        static_cast<unsigned>(Threads));
    double Wall = BatchTimer.seconds();
    TextTable Table({"Benchmark", "AST", "Edges", "Work", "Eliminated",
                     "Entry(s)"});
    SolverStats Total;
    for (const workload::BatchSolveResult &Run : Runs) {
      if (!Run.Ok) {
        std::fprintf(stderr, "anders: benchmark '%s' failed to parse\n",
                     Run.Spec.Name.c_str());
        continue;
      }
      Total += Run.Result.Stats;
      Table.addRow({Run.Spec.Name, formatGrouped(Run.AstNodes),
                    formatGrouped(Run.Result.FinalEdges),
                    formatGrouped(Run.Result.Stats.Work),
                    formatGrouped(Run.Result.Stats.VarsEliminated),
                    formatDouble(Run.EntrySeconds, 3)});
    }
    Table.print();
    std::printf("\nconfig=%s threads=%lld scale=%.2f  total work=%s "
                "eliminated=%s  wall=%.3fs\n",
                Options.configName().c_str(), (long long)Threads, BatchScale,
                formatGrouped(Total.Work).c_str(),
                formatGrouped(Total.VarsEliminated).c_str(), Wall);
    return 0;
  }

  // Obtain the translation unit.
  std::unique_ptr<workload::PreparedProgram> Prepared;
  minic::TranslationUnit FileUnit;
  const minic::TranslationUnit *Unit = nullptr;
  std::string SourceName;

  if (!Synth.empty()) {
    workload::ProgramSpec Spec;
    Spec.Name = Synth;
    Spec.Seed = static_cast<uint64_t>(Seed);
    Spec.TargetAstNodes = static_cast<uint32_t>(SynthSize);
    if (Synth != "custom") {
      bool Found = false;
      for (const workload::ProgramSpec &Entry : workload::paperSuite()) {
        if (Entry.Name == Synth) {
          Spec = Entry;
          Found = true;
          break;
        }
      }
      if (!Found) {
        std::fprintf(stderr, "anders: unknown synthetic benchmark '%s'\n",
                     Synth.c_str());
        return 1;
      }
    }
    Prepared = workload::prepareProgram(Spec);
    if (!Prepared->Ok) {
      for (const std::string &Error : Prepared->Errors)
        std::fprintf(stderr, "%s\n", Error.c_str());
      return 1;
    }
    Unit = &Prepared->Unit;
    SourceName = Synth;
  } else {
    if (Cmd.positionals().size() != 1) {
      std::fprintf(stderr, "anders: expected exactly one input file "
                           "(or --synth); try --help\n");
      return 1;
    }
    SourceName = Cmd.positionals()[0];
    std::ifstream In(SourceName);
    if (!In) {
      std::fprintf(stderr, "anders: cannot open '%s'\n", SourceName.c_str());
      return 1;
    }
    std::stringstream Buffer;
    Buffer << In.rdbuf();
    std::vector<std::string> Errors;
    if (!andersen::parseSource(Buffer.str(), FileUnit, &Errors, SourceName)) {
      for (const std::string &Error : Errors)
        std::fprintf(stderr, "%s\n", Error.c_str());
      return 1;
    }
    Unit = &FileUnit;
  }

  if (DumpAst || EmitC) {
    if (DumpAst)
      std::fputs(minic::dumpAST(*Unit).c_str(), stdout);
    if (EmitC)
      std::fputs(minic::printUnit(*Unit).c_str(), stdout);
    return 0;
  }

  // Oracle configurations need the witness prediction first.
  ConstructorTable Constructors;
  Oracle WitnessOracle;
  const Oracle *OraclePtr = nullptr;
  if (Options.Elim == CycleElim::Oracle) {
    WitnessOracle =
        buildOracle(andersen::makeGenerator(*Unit), Constructors, Options);
    OraclePtr = &WitnessOracle;
  }

  Timer Total;
  andersen::AnalysisResult Result = andersen::runAnalysis(
      *Unit, Constructors, Options, OraclePtr, ShowPointsTo || PointsToDot);

  if (PointsToDot) {
    // Nodes are abstract locations; an edge x -> y means x may contain a
    // pointer to y (the paper's Figure 5).
    std::printf("digraph \"points-to\" {\n  node [shape=box, "
                "fontsize=10];\n");
    for (const auto &[Location, Targets] : Result.PointsTo) {
      if (Targets.empty())
        continue;
      for (const std::string &Target : Targets)
        std::printf("  \"%s\" -> \"%s\";\n", Location.c_str(),
                    Target.c_str());
    }
    std::printf("}\n");
  }

  if (EmitConstraints) {
    TermTable Terms(Constructors);
    ConstraintSolver Solver(Terms, Options, OraclePtr);
    andersen::ConstraintGenerator Generator(Solver);
    Generator.run(*Unit);
    Solver.finalize();
    std::fputs(Solver.dumpGraph().c_str(), stdout);
  }

  if (EmitDot) {
    TermTable Terms(Constructors);
    ConstraintSolver Solver(Terms, Options, OraclePtr);
    andersen::ConstraintGenerator Generator(Solver);
    Generator.run(*Unit);
    Digraph G = Solver.varVarDigraph();
    DotOptions DotOpts;
    DotOpts.GraphName = SourceName;
    DotOpts.ColorSCCs = true;
    DotOpts.Label = [&Solver](uint32_t Var) { return Solver.varName(Var); };
    std::fputs(writeDot(G, DotOpts).c_str(), stdout);
  }

  if (ShowPointsTo) {
    for (const auto &[Name, Targets] : Result.PointsTo) {
      if (Targets.empty())
        continue;
      std::printf("%s -> {", Name.c_str());
      for (size_t I = 0; I != Targets.size(); ++I)
        std::printf("%s%s", I ? ", " : " ", Targets[I].c_str());
      std::printf(" }\n");
    }
  }

  if (ShowStats && Json) {
    std::printf(
        "{\n"
        "  \"configuration\": \"%s\",\n"
        "  \"astNodes\": %llu,\n"
        "  \"locations\": %u,\n"
        "  \"setVariables\": %llu,\n"
        "  \"initialEdges\": %llu,\n"
        "  \"finalEdges\": %llu,\n"
        "  \"work\": %llu,\n"
        "  \"redundantAdds\": %llu,\n"
        "  \"varsEliminated\": %llu,\n"
        "  \"cyclesCollapsed\": %llu,\n"
        "  \"cycleSearchSteps\": %llu,\n"
        "  \"offlineCollapsedVars\": %llu,\n"
        "  \"offlineSCCs\": %llu,\n"
        "  \"hvnLabels\": %llu,\n"
        "  \"mismatches\": %llu,\n"
        "  \"aborted\": %s,\n"
        "  \"analysisSeconds\": %.6f\n"
        "}\n",
        Options.configName().c_str(),
        (unsigned long long)Unit->numNodes(), Result.NumLocations,
        (unsigned long long)Result.NumSetVars,
        (unsigned long long)Result.Stats.InitialEdges,
        (unsigned long long)Result.FinalEdges,
        (unsigned long long)Result.Stats.Work,
        (unsigned long long)Result.Stats.RedundantAdds,
        (unsigned long long)Result.Stats.VarsEliminated,
        (unsigned long long)Result.Stats.CyclesCollapsed,
        (unsigned long long)Result.Stats.CycleSearchSteps,
        (unsigned long long)Result.Stats.OfflineCollapsedVars,
        (unsigned long long)Result.Stats.OfflineSCCs,
        (unsigned long long)Result.Stats.HVNLabels,
        (unsigned long long)Result.Stats.Mismatches,
        Result.Stats.Aborted ? "true" : "false", Result.AnalysisSeconds);
  } else if (ShowStats) {
    std::printf("configuration:       %s\n", Options.configName().c_str());
    std::printf("AST nodes:           %s\n",
                formatGrouped(Unit->numNodes()).c_str());
    std::printf("abstract locations:  %s\n",
                formatGrouped(Result.NumLocations).c_str());
    std::printf("set variables:       %s\n",
                formatGrouped(Result.NumSetVars).c_str());
    std::printf("initial edges:       %s\n",
                formatGrouped(Result.Stats.InitialEdges).c_str());
    std::printf("final edges:         %s\n",
                formatGrouped(Result.FinalEdges).c_str());
    std::printf("work (edge adds):    %s\n",
                formatGrouped(Result.Stats.Work).c_str());
    std::printf("redundant adds:      %s\n",
                formatGrouped(Result.Stats.RedundantAdds).c_str());
    std::printf("vars eliminated:     %s\n",
                formatGrouped(Result.Stats.VarsEliminated).c_str());
    std::printf("cycles collapsed:    %s\n",
                formatGrouped(Result.Stats.CyclesCollapsed).c_str());
    std::printf("offline vars:        %s (%s SCCs, %s labels)\n",
                formatGrouped(Result.Stats.OfflineCollapsedVars).c_str(),
                formatGrouped(Result.Stats.OfflineSCCs).c_str(),
                formatGrouped(Result.Stats.HVNLabels).c_str());
    std::printf("analysis time:       %.3fs (total %.3fs)\n",
                Result.AnalysisSeconds, Total.seconds());
  }
  return 0;
}
