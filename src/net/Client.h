//===- net/Client.h - Blocking line-protocol client -------------*- C++ -*-===//
//
// Part of the poce project.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// A minimal blocking client for the serve protocol, shared by the
/// scnetcat driver, the loopback tests, and serve_bench: connect over
/// TCP or a Unix socket, send request lines, read reply lines. The
/// `metrics` verb's multi-line payload is handled by reading until its
/// "# EOF" trailer.
///
//===----------------------------------------------------------------------===//

#ifndef POCE_NET_CLIENT_H
#define POCE_NET_CLIENT_H

#include "support/Status.h"

#include <cstdint>
#include <string>
#include <vector>

namespace poce {
namespace net {

/// One blocking connection. Not thread-safe; give each client thread its
/// own instance.
class LineClient {
public:
  LineClient() = default;
  ~LineClient() { close(); }
  LineClient(const LineClient &) = delete;
  LineClient &operator=(const LineClient &) = delete;
  LineClient(LineClient &&Other) noexcept
      : Fd(Other.Fd), Pending(std::move(Other.Pending)) {
    Other.Fd = -1;
  }
  LineClient &operator=(LineClient &&Other) noexcept {
    if (this != &Other) {
      close();
      Fd = Other.Fd;
      Pending = std::move(Other.Pending);
      Other.Fd = -1;
    }
    return *this;
  }

  Status connectTcp(const std::string &HostPort);
  Status connectUnix(const std::string &Path);
  bool connected() const { return Fd >= 0; }

  /// Connect with jittered exponential backoff until success or
  /// \p DeadlineMs of total waiting has elapsed (so callers stop racing
  /// server startup with fixed sleeps). Delays start at ~25 ms, double
  /// up to ~1 s, and carry ±50% jitter from a deterministic LCG seeded
  /// with \p JitterSeed (0 picks a random seed). Returns the last
  /// connect error on deadline expiry.
  Status connectTcpWithBackoff(const std::string &HostPort,
                               uint64_t DeadlineMs, uint64_t JitterSeed = 0);
  Status connectUnixWithBackoff(const std::string &Path, uint64_t DeadlineMs,
                                uint64_t JitterSeed = 0);

  /// Sends \p Line plus the newline terminator (handles short writes).
  Status sendLine(const std::string &Line);

  /// Reads one reply line (without the newline). NotFound on a clean
  /// peer close with no buffered line; Timeout when a receive timeout
  /// (setRecvTimeoutMs) expires with no complete line.
  Status recvLine(std::string &Out);

  /// Returns a buffered complete line without blocking: consumes from
  /// Pending, topping it up with one non-blocking read first. False when
  /// no complete line is available yet.
  bool tryRecvLine(std::string &Out);

  /// Reads exactly \p Count raw bytes (buffered bytes first) into
  /// \p Out — the binary snapshot payload of a `replicate` bootstrap.
  Status recvBytes(size_t Count, std::vector<uint8_t> &Out);

  /// Arms SO_RCVTIMEO: a blocked recvLine returns ErrorCode::Timeout
  /// after \p Ms milliseconds, turning a tailing read loop into a tick
  /// (0 disarms). Applies to the current connection only.
  Status setRecvTimeoutMs(uint64_t Ms);

  /// sendLine + recvLine. For multi-line replies ("ok metrics") the
  /// whole payload, newline-joined, through the "# EOF" trailer.
  Status request(const std::string &Line, std::string &Reply);

  void close();
  int fd() const { return Fd; }

private:
  int Fd = -1;
  std::string Pending; ///< Bytes read past the last returned line.
};

} // namespace net
} // namespace poce

#endif // POCE_NET_CLIENT_H
