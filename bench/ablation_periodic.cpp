//===- bench/ablation_periodic.cpp - Online vs periodic elimination --------===//
//
// Part of the poce project.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Extension bench: the paper's introduction argues that prior work's
/// *periodic* simplification leaves a cost/benefit tuning problem ("one
/// problem is deciding the frequency at which to perform simplifications")
/// that online elimination removes. This bench implements periodic offline
/// SCC collapsing and sweeps its interval against IF-Online on a suite
/// subset: too-frequent passes pay repeated whole-graph Tarjan costs,
/// too-rare passes leave cyclic work in place, and no interval beats the
/// tuning-free online strategy.
///
//===----------------------------------------------------------------------===//

#include "BenchCommon.h"

using namespace poce;
using namespace poce::bench;

int main() {
  BenchEnv Env = BenchEnv::fromEnv();
  if (!Env.MaxAst)
    Env.MaxAst = 40000;
  std::printf("=== Ablation: IF-Online vs periodic offline elimination ===\n");
  Env.print();

  struct Strategy {
    const char *Name;
    CycleElim Elim;
    uint64_t Interval;
  };
  const Strategy Strategies[] = {
      {"online", CycleElim::Online, 0},
      {"periodic/2k", CycleElim::Periodic, 2000},
      {"periodic/20k", CycleElim::Periodic, 20000},
      {"periodic/200k", CycleElim::Periodic, 200000},
      {"plain", CycleElim::None, 0},
  };

  TextTable Table({"Benchmark", "Strategy", "Work", "Elim", "Passes",
                   "Time(s)"});
  for (auto &Entry : prepareSuite(Env)) {
    if (Entry->Program->AstNodes < 4000)
      continue; // Cycles only matter at scale; keep the table focused.
    for (const Strategy &S : Strategies) {
      SolverOptions Options = makeConfig(GraphForm::Inductive, S.Elim);
      if (S.Interval)
        Options.PeriodicInterval = S.Interval;
      if (S.Elim == CycleElim::None)
        Options.MaxWork = Env.PlainMaxWork;
      double Best = 0;
      SolverStats Stats;
      for (unsigned Repeat = 0; Repeat != Env.Repeats; ++Repeat) {
        TermTable Terms(Entry->Constructors);
        Timer T;
        ConstraintSolver Solver(Terms, Options);
        andersen::ConstraintGenerator Generator(Solver);
        Generator.run(Entry->Program->Unit);
        Solver.finalize();
        double Seconds = T.seconds();
        if (Repeat == 0 || Seconds < Best)
          Best = Seconds;
        Stats = Solver.stats();
        if (Stats.Aborted)
          break;
      }
      Table.addRow({Entry->Program->Spec.Name, S.Name,
                    capped(Stats.Work, Stats.Aborted),
                    formatGrouped(Stats.VarsEliminated),
                    formatGrouped(Stats.PeriodicPasses),
                    cappedTime(Best, Stats.Aborted)});
    }
  }
  Table.print();
  std::printf("\nOnline needs no frequency tuning; periodic pays either "
              "pass overhead (small intervals) or residual cyclic work "
              "(large intervals).\n");
  return 0;
}
