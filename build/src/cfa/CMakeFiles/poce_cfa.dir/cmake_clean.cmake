file(REMOVE_RECURSE
  "CMakeFiles/poce_cfa.dir/ClosureAnalysis.cpp.o"
  "CMakeFiles/poce_cfa.dir/ClosureAnalysis.cpp.o.d"
  "CMakeFiles/poce_cfa.dir/Lambda.cpp.o"
  "CMakeFiles/poce_cfa.dir/Lambda.cpp.o.d"
  "libpoce_cfa.a"
  "libpoce_cfa.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/poce_cfa.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
