//===- support/CommandLine.h - Minimal flag parsing -------------*- C++ -*-===//
//
// Part of the poce project.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// A small command-line parser for the tools, examples, and bench
/// harnesses. Supports --flag, --flag=value, --flag value, and positional
/// arguments, with generated --help text.
///
//===----------------------------------------------------------------------===//

#ifndef POCE_SUPPORT_COMMANDLINE_H
#define POCE_SUPPORT_COMMANDLINE_H

#include <cstdint>
#include <string>
#include <vector>

namespace poce {

/// Declarative command-line parser. Register options, then call parse().
class CommandLine {
public:
  CommandLine(std::string ToolName, std::string Overview)
      : ToolName(std::move(ToolName)), Overview(std::move(Overview)) {}

  /// Registers a boolean flag (--name enables it).
  void addFlag(const std::string &Name, bool *Storage,
               const std::string &Help);

  /// Registers a string option (--name=value or --name value).
  void addString(const std::string &Name, std::string *Storage,
                 const std::string &Help);

  /// Registers an integer option.
  void addInt(const std::string &Name, int64_t *Storage,
              const std::string &Help);

  /// Registers a double option.
  void addDouble(const std::string &Name, double *Storage,
                 const std::string &Help);

  /// Parses argv. Returns false (after printing a message) on malformed
  /// input; prints help and returns false if --help is present. Positional
  /// arguments are collected into positionals().
  bool parse(int Argc, const char *const *Argv);

  const std::vector<std::string> &positionals() const { return Positionals; }

  void printHelp() const;

private:
  enum class OptionKind { Flag, String, Int, Double };

  struct Option {
    std::string Name;
    OptionKind Kind;
    void *Storage;
    std::string Help;
  };

  const Option *findOption(const std::string &Name) const;
  bool applyValue(const Option &Opt, const std::string &Value);

  std::string ToolName;
  std::string Overview;
  std::vector<Option> Options;
  std::vector<std::string> Positionals;
};

} // namespace poce

#endif // POCE_SUPPORT_COMMANDLINE_H
