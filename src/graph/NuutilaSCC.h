//===- graph/NuutilaSCC.h - Nuutila's improved SCC algorithm ----*- C++ -*-===//
//
// Part of the poce project.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Nuutila's improved strongly-connected-components algorithm (Nuutila &
/// Soisalon-Soininen, IPL 1994), iterative. Compared with Tarjan's
/// algorithm it replaces the on-stack bookkeeping with an `inComponent`
/// array and only pushes potential non-root members onto the candidate
/// stack, so nodes in trivial components (the overwhelming majority of a
/// pre-solve constraint graph) never touch the stack at all. Used by the
/// offline preprocessing pass; produces the same SCCResult contract as
/// graph/TarjanSCC (components numbered in reverse topological order), so
/// the two are interchangeable and testable against each other.
///
//===----------------------------------------------------------------------===//

#ifndef POCE_GRAPH_NUUTILASCC_H
#define POCE_GRAPH_NUUTILASCC_H

#include "graph/TarjanSCC.h"

namespace poce {

/// Computes strongly connected components of \p G with Nuutila's improved
/// algorithm (iterative; safe for graphs with millions of nodes). The
/// component partition is identical to computeSCCs() and components are
/// numbered in reverse topological order of the condensation; only the
/// member order within a component may differ.
SCCResult computeSCCsNuutila(const Digraph &G);

} // namespace poce

#endif // POCE_GRAPH_NUUTILASCC_H
