# Empty dependencies file for poce_minic.
# This may be replaced when dependencies are built.
