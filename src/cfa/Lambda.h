//===- cfa/Lambda.h - Mini functional language ------------------*- C++ -*-===//
//
// Part of the poce project.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// A small call-by-value functional language for the closure-analysis
/// client (the paper's stated future work: "We plan to study the impact of
/// online cycle elimination on the performance of closure analysis").
///
///   e ::= x | n | fun x -> e | e1 e2 | let [rec] x = e1 in e2
///       | if0 e1 then e2 else e3 | e1 + e2 | e1 - e2 | (e)
///
/// `\x. e` is accepted as a synonym for `fun x -> e`. Application is left
/// associative and binds tighter than arithmetic. Every lambda gets a
/// label (L0, L1, ... in source order); closure analysis reports which
/// labels reach each application site.
///
//===----------------------------------------------------------------------===//

#ifndef POCE_CFA_LAMBDA_H
#define POCE_CFA_LAMBDA_H

#include <cstdint>
#include <memory>
#include <string>
#include <vector>

namespace poce {
namespace cfa {

/// One term of the language; nodes are owned by their LambdaProgram.
struct Term {
  enum class Kind : uint8_t { Var, Int, Lam, App, Let, If0, Binop };

  Kind K;
  std::string Name;   ///< Var: name; Lam: parameter; Let: binder.
  long long Value = 0; ///< Int.
  uint32_t LamLabel = 0; ///< Lam: source-order label.
  uint32_t AppSite = 0;  ///< App: source-order call-site id.
  bool Recursive = false; ///< Let: binder visible in its own definition.
  char Op = 0;            ///< Binop: '+' or '-'.
  Term *A = nullptr, *B = nullptr, *C = nullptr;
};

/// A parsed program: the term pool, the root, and label counts.
class LambdaProgram {
public:
  /// Parses \p Source; returns false and fills \p ErrorOut on failure.
  bool parse(const std::string &Source, std::string *ErrorOut = nullptr);

  const Term *root() const { return Root; }
  uint32_t numLambdas() const { return NumLambdas; }
  uint32_t numAppSites() const { return NumAppSites; }
  uint32_t numTerms() const { return static_cast<uint32_t>(Pool.size()); }

  /// Allocates a term (used by the parser and by programmatic builders).
  Term *make(Term::Kind K);

  /// Marks \p T as the program root (for programmatic construction).
  void setRoot(Term *T) { Root = T; }
  /// Assigns labels/app-site ids in a source-order walk (the parser does
  /// this automatically; call after programmatic construction).
  void assignLabels();

private:
  std::vector<std::unique_ptr<Term>> Pool;
  Term *Root = nullptr;
  uint32_t NumLambdas = 0;
  uint32_t NumAppSites = 0;
};

} // namespace cfa
} // namespace poce

#endif // POCE_CFA_LAMBDA_H
