file(REMOVE_RECURSE
  "libpoce_minic.a"
)
