# Empty compiler generated dependencies file for baseline_steensgaard.
# This may be replaced when dependencies are built.
