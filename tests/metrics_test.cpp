//===- tests/metrics_test.cpp - Metrics registry and trace spans ----------===//
//
// Part of the poce project.
//
//===----------------------------------------------------------------------===//
//
// The observability substrate: counter/gauge/histogram semantics, the
// log-bucket math and its quantile error bound against the exact
// ceil-rank percentile, the Prometheus and JSON renderings, and the
// Chrome trace-event collector.
//
//===----------------------------------------------------------------------===//

#include "support/Metrics.h"
#include "support/Trace.h"

#include "gtest/gtest.h"

#include <cstdio>
#include <fstream>
#include <random>
#include <sstream>
#include <thread>

using namespace poce;

namespace {

//===----------------------------------------------------------------------===//
// Exact ceil-rank percentile (the percentileMicros bugfix)
//===----------------------------------------------------------------------===//

TEST(PercentileTest, EmptyIsZero) {
  EXPECT_EQ(exactPercentile({}, 0.50), 0u);
  EXPECT_EQ(exactPercentile({}, 0.99), 0u);
}

TEST(PercentileTest, SingleSampleIsThatSample) {
  std::vector<uint64_t> One{42};
  EXPECT_EQ(exactPercentile(One, 0.50), 42u);
  EXPECT_EQ(exactPercentile(One, 0.99), 42u);
  EXPECT_EQ(exactPercentile(One, 0.0), 42u); // Rank clamps to 1.
}

TEST(PercentileTest, MedianOfTwoIsTheSmaller) {
  // ceil(0.5 * 2) = 1 -> the first element. The old floor nearest-rank
  // picked index 1 (the larger element), over-reporting p50 by up to the
  // full spread of the sample.
  std::vector<uint64_t> Two{10, 1000};
  EXPECT_EQ(exactPercentile(Two, 0.50), 10u);
  EXPECT_EQ(exactPercentile(Two, 0.99), 1000u);
}

TEST(PercentileTest, HundredSamplesHitTheCeilRank) {
  std::vector<uint64_t> Sorted(100);
  for (size_t I = 0; I != Sorted.size(); ++I)
    Sorted[I] = (I + 1) * 10; // 10, 20, ..., 1000.
  EXPECT_EQ(exactPercentile(Sorted, 0.50), 500u);  // ceil(50) = rank 50.
  EXPECT_EQ(exactPercentile(Sorted, 0.99), 990u);  // ceil(99) = rank 99.
  EXPECT_EQ(exactPercentile(Sorted, 1.0), 1000u);  // rank 100.
  EXPECT_EQ(exactPercentile(Sorted, 0.001), 10u);  // ceil(0.1) = rank 1.
}

//===----------------------------------------------------------------------===//
// Histogram bucket math
//===----------------------------------------------------------------------===//

TEST(HistogramTest, BucketIndexIsBitWidth) {
  EXPECT_EQ(Histogram::bucketIndex(0), 0u);
  EXPECT_EQ(Histogram::bucketIndex(1), 1u);
  EXPECT_EQ(Histogram::bucketIndex(2), 2u);
  EXPECT_EQ(Histogram::bucketIndex(3), 2u);
  EXPECT_EQ(Histogram::bucketIndex(4), 3u);
  EXPECT_EQ(Histogram::bucketIndex(1023), 10u);
  EXPECT_EQ(Histogram::bucketIndex(1024), 11u);
  EXPECT_EQ(Histogram::bucketIndex(UINT64_MAX),
            Histogram::NumBuckets - 1);
}

TEST(HistogramTest, BucketBoundsContainTheirValues) {
  // Every value v lands in a bucket whose upper bound is >= v and (for
  // v >= 1) < 2v — the invariant behind the quantile error bound.
  for (uint64_t V : {uint64_t(0), uint64_t(1), uint64_t(2), uint64_t(7),
                     uint64_t(1000), uint64_t(123456789)}) {
    unsigned Index = Histogram::bucketIndex(V);
    uint64_t Upper = Histogram::bucketUpperBound(Index);
    EXPECT_GE(Upper, V);
    if (V >= 1 && Upper != UINT64_MAX)
      EXPECT_LT(Upper, 2 * V);
    if (Index > 0)
      EXPECT_GT(V, Histogram::bucketUpperBound(Index - 1));
  }
}

TEST(HistogramTest, CountSumMaxAndEmptyQuantile) {
  Histogram H;
  EXPECT_EQ(H.quantile(0.50), 0u);
  H.record(5);
  H.record(9);
  H.record(0);
  HistogramSnapshot Snap = H.snapshot();
  EXPECT_EQ(Snap.Count, 3u);
  EXPECT_EQ(Snap.Sum, 14u);
  EXPECT_EQ(Snap.Max, 9u);
}

TEST(HistogramTest, QuantileWithinTwoTimesExact) {
  // The parity contract with the removed sort-the-ring percentiles: for
  // any sample set, the histogram estimate q of percentile P satisfies
  // exact <= q < 2 * exact (exact >= 1).
  std::mt19937_64 Rng(7);
  Histogram H;
  std::vector<uint64_t> Samples;
  for (int I = 0; I != 5000; ++I) {
    // Latency-shaped: mostly small with a heavy tail.
    uint64_t V = 1 + (Rng() % 100);
    if (Rng() % 50 == 0)
      V = 1000 + (Rng() % 100000);
    Samples.push_back(V);
    H.record(V);
  }
  std::sort(Samples.begin(), Samples.end());
  for (double P : {0.50, 0.90, 0.99, 1.0}) {
    uint64_t Exact = exactPercentile(Samples, P);
    uint64_t Estimate = H.quantile(P);
    EXPECT_GE(Estimate, Exact) << "P=" << P;
    EXPECT_LT(Estimate, 2 * Exact) << "P=" << P;
  }
}

TEST(HistogramTest, MaxCapsTheTopQuantile) {
  Histogram H;
  H.record(1000); // Bucket [512, 1023]: upper bound 1023.
  EXPECT_EQ(H.quantile(1.0), 1000u); // min(1023, Max) = the exact max.
}

TEST(HistogramTest, ConcurrentRecordsAllLand) {
  Histogram H;
  constexpr int PerThread = 20000;
  std::vector<std::thread> Threads;
  for (int T = 0; T != 4; ++T)
    Threads.emplace_back([&H] {
      for (int I = 0; I != PerThread; ++I)
        H.record(static_cast<uint64_t>(I % 1024));
    });
  for (std::thread &T : Threads)
    T.join();
  HistogramSnapshot Snap = H.snapshot();
  EXPECT_EQ(Snap.Count, 4u * PerThread);
  EXPECT_EQ(Snap.Max, 1023u);
}

//===----------------------------------------------------------------------===//
// Registry
//===----------------------------------------------------------------------===//

TEST(MetricsRegistryTest, CountersGaugesAndLookupStability) {
  MetricsRegistry R;
  Counter &C = R.counter("poce_test_events_total", "events");
  C.inc();
  C.inc(4);
  EXPECT_EQ(C.value(), 5u);
  // Same name returns the same object.
  EXPECT_EQ(&R.counter("poce_test_events_total"), &C);

  Gauge &G = R.gauge("poce_test_depth", "depth");
  G.set(7);
  G.add(-2);
  EXPECT_EQ(G.value(), 5u);

  std::vector<MetricSample> Snap = R.snapshot();
  ASSERT_EQ(Snap.size(), 2u);
  // std::map iteration: name-sorted.
  EXPECT_EQ(Snap[0].Name, "poce_test_depth");
  EXPECT_EQ(Snap[1].Name, "poce_test_events_total");
}

TEST(MetricsRegistryTest, ResetZeroesValuesKeepsRegistrations) {
  MetricsRegistry R;
  R.counter("c").inc(3);
  R.gauge("g").set(9);
  R.histogram("h").record(100);
  R.reset();
  EXPECT_EQ(R.counter("c").value(), 0u);
  EXPECT_EQ(R.gauge("g").value(), 0u);
  EXPECT_EQ(R.histogram("h").count(), 0u);
  EXPECT_EQ(R.snapshot().size(), 3u);
}

TEST(MetricsRegistryTest, TimingToggleRoundTrips) {
  bool Was = MetricsRegistry::timingEnabled();
  MetricsRegistry::setTimingEnabled(true);
  EXPECT_TRUE(MetricsRegistry::timingEnabled());
  MetricsRegistry::setTimingEnabled(false);
  EXPECT_FALSE(MetricsRegistry::timingEnabled());
  MetricsRegistry::setTimingEnabled(Was);
}

//===----------------------------------------------------------------------===//
// Renderers
//===----------------------------------------------------------------------===//

/// Structural lint of the Prometheus text format: every non-comment line
/// is `name[{label}] value`, every series has a preceding # TYPE, and
/// histogram bucket counts are cumulative ending in +Inf == _count.
void lintPrometheus(const std::string &Text) {
  std::istringstream In(Text);
  std::string Line;
  std::string LastTyped;
  uint64_t LastCumulative = 0;
  bool SawInf = false;
  uint64_t InfValue = 0;
  while (std::getline(In, Line)) {
    ASSERT_FALSE(Line.empty()) << "blank line in exposition";
    if (Line.rfind("# TYPE ", 0) == 0) {
      std::istringstream Fields(Line);
      std::string Hash, Type, Name, Kind;
      Fields >> Hash >> Type >> Name >> Kind;
      EXPECT_TRUE(Kind == "counter" || Kind == "gauge" ||
                  Kind == "histogram")
          << Line;
      LastTyped = Name;
      LastCumulative = 0;
      SawInf = false;
      continue;
    }
    if (Line.rfind("#", 0) == 0)
      continue; // HELP or other comment.
    size_t Space = Line.find_last_of(' ');
    ASSERT_NE(Space, std::string::npos) << Line;
    std::string Series = Line.substr(0, Space);
    std::string Value = Line.substr(Space + 1);
    EXPECT_FALSE(Value.empty()) << Line;
    for (char C : Value)
      EXPECT_TRUE(C >= '0' && C <= '9') << Line;
    std::string Base = Series.substr(0, Series.find('{'));
    // Strip histogram suffixes to match against the # TYPE name.
    for (const char *Suffix : {"_bucket", "_sum", "_count"}) {
      size_t At = Base.rfind(Suffix);
      if (At != std::string::npos &&
          At + std::string(Suffix).size() == Base.size() &&
          Base.substr(0, At) == LastTyped)
        Base = Base.substr(0, At);
    }
    EXPECT_EQ(Base, LastTyped) << "series without preceding # TYPE: "
                               << Line;
    if (Series.find("_bucket{") != std::string::npos) {
      uint64_t Count = std::stoull(Value);
      EXPECT_GE(Count, LastCumulative) << "non-cumulative bucket: " << Line;
      LastCumulative = Count;
      if (Series.find("le=\"+Inf\"") != std::string::npos) {
        SawInf = true;
        InfValue = Count;
      }
    }
    if (Series.size() > 6 &&
        Series.compare(Series.size() - 6, 6, "_count") == 0 && SawInf)
      EXPECT_EQ(std::stoull(Value), InfValue)
          << "_count != +Inf bucket: " << Line;
  }
}

TEST(MetricsRegistryTest, PrometheusRenderingLints) {
  MetricsRegistry R;
  R.counter("poce_test_ops_total", "ops").inc(12);
  R.gauge("poce_test_live", "live vars").set(34);
  Histogram &H = R.histogram("poce_test_lat_us", "latency");
  for (uint64_t V : {1, 5, 9, 100, 4000})
    H.record(V);
  std::string Text = R.renderPrometheus();
  EXPECT_NE(Text.find("# TYPE poce_test_ops_total counter"),
            std::string::npos);
  EXPECT_NE(Text.find("# TYPE poce_test_lat_us histogram"),
            std::string::npos);
  EXPECT_NE(Text.find("poce_test_lat_us_bucket{le=\"+Inf\"} 5"),
            std::string::npos);
  EXPECT_NE(Text.find("poce_test_lat_us_sum 4115"), std::string::npos);
  EXPECT_NE(Text.find("poce_test_lat_us_count 5"), std::string::npos);
  lintPrometheus(Text);
}

TEST(MetricsRegistryTest, JsonRenderingHasAllSections) {
  MetricsRegistry R;
  R.counter("c").inc(2);
  R.gauge("g").set(3);
  R.histogram("h").record(7);
  std::string Json = R.renderJson();
  EXPECT_NE(Json.find("\"counters\": {\"c\": 2}"), std::string::npos);
  EXPECT_NE(Json.find("\"gauges\": {\"g\": 3}"), std::string::npos);
  EXPECT_NE(Json.find("\"h\": {\"count\": 1, \"sum\": 7, \"max\": 7"),
            std::string::npos);
}

//===----------------------------------------------------------------------===//
// Trace spans
//===----------------------------------------------------------------------===//

TEST(TraceTest, DisarmedSpansAreFree) {
  ASSERT_FALSE(trace::enabled());
  uint64_t Before = trace::eventCount();
  {
    trace::Span S("never.recorded");
    trace::instant("also.never");
  }
  EXPECT_EQ(trace::eventCount(), Before);
}

TEST(TraceTest, ArmedSpansLandInChromeJson) {
  std::string Path = ::testing::TempDir() + "poce_trace_test.json";
  trace::arm(Path);
  {
    trace::Span S("test.span");
    volatile int Sink = 0;
    for (int I = 0; I != 1000; ++I)
      Sink = Sink + I;
  }
  trace::instant("test.instant");
  EXPECT_GE(trace::eventCount(), 2u);
  trace::disarm(); // Flushes and clears.
  EXPECT_FALSE(trace::enabled());

  std::ifstream In(Path);
  ASSERT_TRUE(In.good());
  std::stringstream Buffer;
  Buffer << In.rdbuf();
  std::string Json = Buffer.str();
  EXPECT_NE(Json.find("\"traceEvents\""), std::string::npos);
  EXPECT_NE(Json.find("\"name\": \"test.span\""), std::string::npos);
  EXPECT_NE(Json.find("\"ph\": \"X\""), std::string::npos);
  EXPECT_NE(Json.find("\"name\": \"test.instant\""), std::string::npos);
  EXPECT_NE(Json.find("\"ph\": \"i\""), std::string::npos);
  std::remove(Path.c_str());
}

} // namespace
