# Empty compiler generated dependencies file for model_theorem52.
# This may be replaced when dependencies are built.
