//===- bench/fig8_elim_scaling.cpp - Reproduction of Figure 8 --------------===//
//
// Part of the poce project.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Regenerates the paper's Figure 8 as a data series: analysis time vs AST
/// nodes for the online and oracle configurations. Expected ordering of
/// curves, fastest first: IF-Oracle, SF-Oracle, IF-Online, SF-Online —
/// with IF-Online staying close to its oracle bound.
///
//===----------------------------------------------------------------------===//

#include "BenchCommon.h"

using namespace poce;
using namespace poce::bench;

int main() {
  BenchEnv Env = BenchEnv::fromEnv();
  std::printf(
      "=== Figure 8: analysis time with online/oracle elimination ===\n");
  Env.print();

  std::vector<std::string> Header = {"Benchmark",    "AST",
                                     "IF-Oracle(s)", "SF-Oracle(s)",
                                     "IF-Online(s)", "SF-Online(s)",
                                     "IFon/IForacle"};
  appendHotPathHeaders(Header, "SFon", "IFon");
  TextTable Table(std::move(Header));
  double SumRatio = 0;
  unsigned NumRatios = 0;
  for (auto &Entry : prepareSuite(Env)) {
    MeasuredRun IFOracle =
        runConfig(*Entry, GraphForm::Inductive, CycleElim::Oracle, Env);
    MeasuredRun SFOracle =
        runConfig(*Entry, GraphForm::Standard, CycleElim::Oracle, Env);
    MeasuredRun IFOnline =
        runConfig(*Entry, GraphForm::Inductive, CycleElim::Online, Env);
    MeasuredRun SFOnline =
        runConfig(*Entry, GraphForm::Standard, CycleElim::Online, Env);
    double Ratio =
        IFOnline.BestSeconds / std::max(IFOracle.BestSeconds, 1e-9);
    SumRatio += Ratio;
    ++NumRatios;
    std::vector<std::string> Row = {Entry->Program->Spec.Name,
                                    formatGrouped(Entry->Program->AstNodes),
                                    formatDouble(IFOracle.BestSeconds, 3),
                                    formatDouble(SFOracle.BestSeconds, 3),
                                    formatDouble(IFOnline.BestSeconds, 3),
                                    formatDouble(SFOnline.BestSeconds, 3),
                                    formatDouble(Ratio, 2)};
    appendHotPathCells(Row, SFOnline, IFOnline);
    Table.addRow(std::move(Row));
  }
  Table.print();
  if (NumRatios)
    std::printf("\nIF-Online runs within %.2fx of the perfect-elimination "
                "bound on average (paper: \"comes close\").\n",
                SumRatio / NumRatios);
  return 0;
}
