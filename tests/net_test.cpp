//===- tests/net_test.cpp - Socket front end over loopback ----------------===//
//
// Part of the poce project.
//
//===----------------------------------------------------------------------===//
//
// The network serving layer, tested end to end over real sockets: framing
// units (chunk reassembly, streaming size limit), address parsing, the
// padded lane-accumulator layout, protocol byte-compatibility with the
// stdin loop, and the concurrency contract — readers querying while a
// writer streams adds always observe a fully-published view (prefix-closed
// answer sets, monotone epochs per connection) and a connection that saw
// `ok added` observes its constraint in every later query
// (read-your-writes via ack-after-publish).
//
// Everything here runs under scripts/tsan.sh: the loop thread, the writer
// lane, the read-wave pool, and the client threads must be data-race
// free.
//
//===----------------------------------------------------------------------===//

#include "net/Client.h"
#include "net/Framing.h"
#include "net/LaneStats.h"
#include "net/Replication.h"
#include "net/Server.h"
#include "net/Socket.h"
#include "serve/ServerCore.h"
#include "support/PRNG.h"

#include "gtest/gtest.h"

#include <atomic>
#include <chrono>
#include <cstdio>
#include <memory>
#include <set>
#include <string>
#include <thread>
#include <vector>

using namespace poce;
using namespace poce::net;

namespace {

//===----------------------------------------------------------------------===//
// Framing
//===----------------------------------------------------------------------===//

std::vector<std::pair<LineBuffer::Item, std::string>> drain(LineBuffer &B) {
  std::vector<std::pair<LineBuffer::Item, std::string>> Out;
  std::string Text;
  for (;;) {
    LineBuffer::Item Kind = B.next(Text);
    if (Kind == LineBuffer::Item::None)
      return Out;
    Out.emplace_back(Kind, Text);
  }
}

TEST(NetFramingTest, ReassemblesAcrossArbitraryChunks) {
  LineBuffer B(/*MaxLine=*/64);
  const std::string Stream = "ls P\r\npts Q\nalias X Y\n";
  // Feed one byte at a time — the worst read() chunking possible.
  for (char C : Stream)
    B.append(&C, 1);
  auto Items = drain(B);
  ASSERT_EQ(Items.size(), 3u);
  EXPECT_EQ(Items[0].second, "ls P"); // \r stripped
  EXPECT_EQ(Items[1].second, "pts Q");
  EXPECT_EQ(Items[2].second, "alias X Y");
  EXPECT_EQ(B.pendingBytes(), 0u);
}

TEST(NetFramingTest, PartialLineStaysPending) {
  LineBuffer B(64);
  B.append("incompl", 7);
  std::string Text;
  EXPECT_EQ(B.next(Text), LineBuffer::Item::None);
  EXPECT_EQ(B.pendingBytes(), 7u);
  B.append("ete\n", 4);
  EXPECT_EQ(B.next(Text), LineBuffer::Item::Line);
  EXPECT_EQ(Text, "incomplete");
}

TEST(NetFramingTest, OversizedReportedInStreamOrder) {
  LineBuffer B(/*MaxLine=*/8);
  std::string Big(20, 'x');
  std::string Stream = "short\n" + Big + "\nafter\n";
  B.append(Stream.data(), Stream.size());
  auto Items = drain(B);
  ASSERT_EQ(Items.size(), 3u);
  EXPECT_EQ(Items[0].first, LineBuffer::Item::Line);
  EXPECT_EQ(Items[0].second, "short");
  EXPECT_EQ(Items[1].first, LineBuffer::Item::Oversized);
  EXPECT_EQ(Items[1].second, "20"); // full byte length, sans newline
  EXPECT_EQ(Items[2].first, LineBuffer::Item::Line);
  EXPECT_EQ(Items[2].second, "after"); // resynced at the next newline
}

TEST(NetFramingTest, LimitBoundaryIsInclusive) {
  LineBuffer B(/*MaxLine=*/8);
  B.append("12345678\n123456789\n", 19);
  auto Items = drain(B);
  ASSERT_EQ(Items.size(), 2u);
  EXPECT_EQ(Items[0].first, LineBuffer::Item::Line); // exactly 8: accepted
  EXPECT_EQ(Items[0].second, "12345678");
  EXPECT_EQ(Items[1].first, LineBuffer::Item::Oversized); // 9: rejected
  EXPECT_EQ(Items[1].second, "9");
}

TEST(NetFramingTest, OversizedAccumulatesAcrossChunks) {
  LineBuffer B(/*MaxLine=*/4);
  std::string Big(100, 'y');
  for (char C : Big)
    B.append(&C, 1);
  B.append("\nok\n", 4);
  auto Items = drain(B);
  ASSERT_EQ(Items.size(), 2u);
  EXPECT_EQ(Items[0].first, LineBuffer::Item::Oversized);
  EXPECT_EQ(Items[0].second, "100");
  EXPECT_EQ(Items[1].second, "ok");
}

//===----------------------------------------------------------------------===//
// Address parsing
//===----------------------------------------------------------------------===//

TEST(NetSocketTest, ParseHostPort) {
  std::string Host;
  uint16_t Port = 0;
  EXPECT_TRUE(parseHostPort("127.0.0.1:7075", Host, Port).ok());
  EXPECT_EQ(Host, "127.0.0.1");
  EXPECT_EQ(Port, 7075);

  EXPECT_TRUE(parseHostPort(":0", Host, Port).ok()); // any-host, ephemeral
  EXPECT_EQ(Host, "");
  EXPECT_EQ(Port, 0);

  EXPECT_FALSE(parseHostPort("noport", Host, Port).ok());
  EXPECT_FALSE(parseHostPort("h:", Host, Port).ok());
  EXPECT_FALSE(parseHostPort("h:abc", Host, Port).ok());
  EXPECT_FALSE(parseHostPort("h:99999", Host, Port).ok());
}

//===----------------------------------------------------------------------===//
// Lane accumulator layout
//===----------------------------------------------------------------------===//

// The contract the read lanes rely on: adjacent slots never share a cache
// line, so plain (non-atomic) per-lane writes are both correct (the wave
// barrier orders them) and fast (no false sharing).
static_assert(cacheAlignedLayoutOk<LaneAccum>,
              "LaneAccum slots must be cache-line aligned and padded");
static_assert(sizeof(CacheAligned<LaneAccum>) % CacheLineBytes == 0,
              "padding must round the slot to whole cache lines");

TEST(NetLaneStatsTest, SlotsDoNotShareCacheLines) {
  LaneAccumSlots Slots(4);
  for (size_t I = 0; I + 1 < Slots.size(); ++I) {
    auto *A = reinterpret_cast<const char *>(&Slots[I].Value);
    auto *B = reinterpret_cast<const char *>(&Slots[I + 1].Value);
    EXPECT_GE(static_cast<size_t>(B - A), CacheLineBytes);
    EXPECT_EQ(reinterpret_cast<uintptr_t>(A) % CacheLineBytes, 0u);
  }
}

//===----------------------------------------------------------------------===//
// Loopback server harness
//===----------------------------------------------------------------------===//

const char *SwapText = R"(
cons ref + + -
cons nx
cons ny
var X Y P Q T
ref(nx, X, X) <= P
ref(ny, Y, Y) <= Q
P <= T
Q <= P
T <= Q
)";

/// An in-process socket-mode server on an ephemeral loopback port (or a
/// Unix socket), with its event loop on a background thread.
struct LoopbackServer {
  std::unique_ptr<serve::ServerCore> Core;
  std::unique_ptr<NetServer> Server;
  std::thread Loop;
  std::string Error;
  int ExitCode = -1;
  bool Joined = false;

  explicit LoopbackServer(const std::string &Text,
                          NetServerOptions NetOpts = {},
                          serve::ServerCoreConfig CoreCfg = {}) {
    serve::SolverBundle Bundle;
    Bundle.Constructors = std::make_unique<ConstructorTable>();
    Bundle.Terms = std::make_unique<TermTable>(*Bundle.Constructors);
    Bundle.Solver = std::make_unique<ConstraintSolver>(
        *Bundle.Terms, makeConfig(GraphForm::Inductive, CycleElim::Online));
    ConstraintSystemFile System;
    Status Parsed = System.parse(Text);
    if (!Parsed) {
      Error = Parsed.toString();
      return;
    }
    System.emit(*Bundle.Solver);
    Bundle.Solver->materializeAllViews();

    Core = std::make_unique<serve::ServerCore>(std::move(Bundle),
                                               /*CacheCapacity=*/64, CoreCfg);
    if (!Core->valid()) {
      Error = Core->initError();
      return;
    }
    Status Recovered = Core->recover(/*SnapBase=*/0);
    if (!Recovered) {
      Error = Recovered.toString();
      return;
    }

    if (NetOpts.TcpSpec.empty() && NetOpts.UnixPath.empty())
      NetOpts.TcpSpec = "127.0.0.1:0";
    if (NetOpts.Lanes == 0)
      NetOpts.Lanes = 2;
    Server = std::make_unique<NetServer>(*Core, NetOpts);
    Status Ready = Server->init();
    if (!Ready) {
      Error = Ready.toString();
      Server.reset();
      return;
    }
    Loop = std::thread([this] { ExitCode = Server->run(); });
  }

  ~LoopbackServer() { stop(); }

  /// Graceful stop (idempotent); returns run()'s exit code.
  int stop() {
    if (Loop.joinable()) {
      NetServer::requestStop();
      Loop.join();
      Joined = true;
    }
    return ExitCode;
  }

  LineClient client() {
    LineClient C;
    Status Connected =
        C.connectTcp("127.0.0.1:" + std::to_string(Server->tcpPort()));
    EXPECT_TRUE(Connected.ok()) << Connected.toString();
    return C;
  }
};

std::string ask(LineClient &C, const std::string &Line) {
  std::string Reply;
  Status Got = C.request(Line, Reply);
  EXPECT_TRUE(Got.ok()) << Line << ": " << Got.toString();
  return Reply;
}

/// Parses "ok { a, b, c }" into the element set.
std::set<std::string> parseSet(const std::string &Reply) {
  std::set<std::string> Out;
  size_t Open = Reply.find('{'), Close = Reply.rfind('}');
  if (Open == std::string::npos || Close == std::string::npos ||
      Close <= Open)
    return Out;
  std::string Body = Reply.substr(Open + 1, Close - Open - 1);
  size_t Pos = 0;
  while (Pos < Body.size()) {
    size_t Comma = Body.find(',', Pos);
    std::string Item = Body.substr(
        Pos, Comma == std::string::npos ? std::string::npos : Comma - Pos);
    size_t First = Item.find_first_not_of(' ');
    size_t Last = Item.find_last_not_of(' ');
    if (First != std::string::npos)
      Out.insert(Item.substr(First, Last - First + 1));
    Pos = Comma == std::string::npos ? Body.size() : Comma + 1;
  }
  return Out;
}

//===----------------------------------------------------------------------===//
// Protocol over sockets
//===----------------------------------------------------------------------===//

TEST(NetServerTest, ProtocolMatchesStdinMode) {
  LoopbackServer S(SwapText);
  ASSERT_TRUE(S.Error.empty()) << S.Error;
  LineClient C = S.client();

  EXPECT_EQ(ask(C, "pts P"), "ok { nx, ny }");
  EXPECT_EQ(ask(C, "alias P Q"), "ok true");
  EXPECT_EQ(ask(C, "alias X Y"), "ok false");
  EXPECT_EQ(ask(C, "ls nosuch"), "err not_found unknown variable 'nosuch'");
  EXPECT_EQ(ask(C, "frobnicate"),
            "err invalid_argument unknown verb 'frobnicate'; try help");
  std::string Help = ask(C, "help");
  EXPECT_NE(Help.find("shutdown"), std::string::npos);
  std::string Stats = ask(C, "stats");
  EXPECT_EQ(Stats.rfind("ok config=IF-Online", 0), 0u) << Stats;

  std::string Metrics = ask(C, "metrics");
  EXPECT_EQ(Metrics.rfind("ok metrics", 0), 0u);
  EXPECT_NE(Metrics.find("poce_net_queries_total"), std::string::npos);
  EXPECT_NE(Metrics.find("poce_net_lane0_queries"), std::string::npos);
  std::string Trailer = "# EOF";
  ASSERT_GE(Metrics.size(), Trailer.size());
  EXPECT_EQ(Metrics.substr(Metrics.size() - Trailer.size()), Trailer);

  EXPECT_EQ(ask(C, "quit"), "ok bye");
  std::string Dead;
  EXPECT_FALSE(C.recvLine(Dead).ok()); // server closed after the goodbye
  EXPECT_EQ(S.stop(), 0);
}

TEST(NetServerTest, PipelinedRequestsAnswerInOrder) {
  LoopbackServer S(SwapText);
  ASSERT_TRUE(S.Error.empty()) << S.Error;
  LineClient C = S.client();

  // Fire the whole batch before reading anything: per-connection FIFO
  // must hold even when queries and writer verbs interleave.
  ASSERT_TRUE(C.sendLine("pts P").ok());
  ASSERT_TRUE(C.sendLine("add cons zz").ok());
  ASSERT_TRUE(C.sendLine("alias P Q").ok());
  ASSERT_TRUE(C.sendLine("stats").ok());
  ASSERT_TRUE(C.sendLine("pts Q").ok());

  std::string R;
  ASSERT_TRUE(C.recvLine(R).ok());
  EXPECT_EQ(R, "ok { nx, ny }");
  ASSERT_TRUE(C.recvLine(R).ok());
  EXPECT_EQ(R, "ok added");
  ASSERT_TRUE(C.recvLine(R).ok());
  EXPECT_EQ(R, "ok true");
  ASSERT_TRUE(C.recvLine(R).ok());
  EXPECT_EQ(R.rfind("ok config=", 0), 0u) << R;
  ASSERT_TRUE(C.recvLine(R).ok());
  EXPECT_EQ(R, "ok { nx, ny }");
  EXPECT_EQ(S.stop(), 0);
}

TEST(NetServerTest, OversizedRequestResyncsConnection) {
  NetServerOptions Opts;
  Opts.MaxRequest = 64;
  LoopbackServer S(SwapText, Opts);
  ASSERT_TRUE(S.Error.empty()) << S.Error;
  LineClient C = S.client();

  std::string Big(200, 'q');
  EXPECT_EQ(ask(C, Big), "err too_large request is 200 bytes; limit is 64");
  // The connection survived and resynchronized at the newline.
  EXPECT_EQ(ask(C, "alias X Y"), "ok false");
  EXPECT_EQ(S.stop(), 0);
}

TEST(NetServerTest, ReadYourWrites) {
  LoopbackServer S("cons a\nvar V\na <= V\n");
  ASSERT_TRUE(S.Error.empty()) << S.Error;
  LineClient C = S.client();

  EXPECT_EQ(parseSet(ask(C, "ls V")), std::set<std::string>{"a"});
  EXPECT_EQ(ask(C, "add cons b"), "ok added");
  EXPECT_EQ(ask(C, "add b <= V"), "ok added");
  // Ack-after-publish: the `ok added` above means the next query — on any
  // connection — already sees b.
  EXPECT_EQ(parseSet(ask(C, "ls V")), (std::set<std::string>{"a", "b"}));
  LineClient Other = S.client();
  EXPECT_EQ(parseSet(ask(Other, "ls V")), (std::set<std::string>{"a", "b"}));
  EXPECT_EQ(S.stop(), 0);
}

TEST(NetServerTest, WriterRejectionsDoNotDisturbViews) {
  LoopbackServer S("cons a\nvar V\na <= V\n");
  ASSERT_TRUE(S.Error.empty()) << S.Error;
  LineClient C = S.client();

  std::string R = ask(C, "add undeclared <= V");
  EXPECT_EQ(R.rfind("err ", 0), 0u) << R;
  EXPECT_EQ(parseSet(ask(C, "ls V")), std::set<std::string>{"a"});
  EXPECT_EQ(S.stop(), 0);
}

TEST(NetServerTest, IdleConnectionsAreClosed) {
  NetServerOptions Opts;
  Opts.IdleTimeoutMs = 100;
  LoopbackServer S(SwapText, Opts);
  ASSERT_TRUE(S.Error.empty()) << S.Error;
  LineClient C = S.client();
  EXPECT_EQ(ask(C, "alias X Y"), "ok false"); // live connections serve
  std::string Dead;
  // recvLine blocks until the sweep (<=100ms cadence) closes us.
  EXPECT_FALSE(C.recvLine(Dead).ok());
  EXPECT_EQ(S.stop(), 0);
}

TEST(NetServerTest, ShutdownVerbDrainsAndExitsZero) {
  LoopbackServer S(SwapText);
  ASSERT_TRUE(S.Error.empty()) << S.Error;
  LineClient C = S.client();
  EXPECT_EQ(ask(C, "shutdown"), "ok shutting_down");
  S.Loop.join();
  S.Joined = true;
  EXPECT_EQ(S.ExitCode, 0);
  // The listener is gone: fresh connections are refused.
  LineClient After;
  EXPECT_FALSE(
      After.connectTcp("127.0.0.1:" + std::to_string(S.Server->tcpPort()))
          .ok());
}

TEST(NetServerTest, ServesUnixDomainSockets) {
  std::string Path = ::testing::TempDir() + "poce_net_test.sock";
  NetServerOptions Opts;
  Opts.UnixPath = Path;
  LoopbackServer S(SwapText, Opts);
  ASSERT_TRUE(S.Error.empty()) << S.Error;
  LineClient C;
  ASSERT_TRUE(C.connectUnix(Path).ok());
  EXPECT_EQ(ask(C, "pts P"), "ok { nx, ny }");
  EXPECT_EQ(ask(C, "quit"), "ok bye");
  EXPECT_EQ(S.stop(), 0);
  // Graceful exit unlinks the socket path.
  LineClient After;
  EXPECT_FALSE(After.connectUnix(Path).ok());
}

//===----------------------------------------------------------------------===//
// Concurrency: readers vs the writer lane
//===----------------------------------------------------------------------===//

// The central serving invariant. A writer connection streams adds that
// grow `ls V` one element at a time (s1, s2, ...), asserting
// read-your-writes after every ack. Reader connections hammer `ls V`
// concurrently and assert every answer is a *fully-published* state:
// the set is exactly {s1..sj} for some j (prefix-closed — a torn or
// unpublished view would leak a gap), and j never decreases on one
// connection (views only move forward).
TEST(NetServerTest, ConcurrentReadersSeeOnlyPublishedViews) {
  LoopbackServer S("cons s0\nvar V\ns0 <= V\n");
  ASSERT_TRUE(S.Error.empty()) << S.Error;

  constexpr int NumAdds = 30;
  constexpr int NumReaders = 3;
  std::atomic<bool> WriterDone{false};
  std::atomic<int> Failures{0};

  std::thread WriterThread([&] {
    LineClient W = S.client();
    for (int K = 1; K <= NumAdds; ++K) {
      std::string Name = "s" + std::to_string(K);
      if (ask(W, "add cons " + Name) != "ok added" ||
          ask(W, "add " + Name + " <= V") != "ok added") {
        ++Failures;
        break;
      }
      // Read-your-writes: the ack above implies visibility here.
      std::set<std::string> Set = parseSet(ask(W, "ls V"));
      if (!Set.count(Name))
        ++Failures;
    }
    WriterDone.store(true, std::memory_order_release);
  });

  std::vector<std::thread> Readers;
  for (int R = 0; R != NumReaders; ++R) {
    Readers.emplace_back([&] {
      LineClient C = S.client();
      size_t PrevCount = 0;
      while (!WriterDone.load(std::memory_order_acquire)) {
        std::set<std::string> Set = parseSet(ask(C, "ls V"));
        // Prefix-closed: seeing sK implies seeing every earlier sI.
        size_t MaxIndex = 0;
        for (const std::string &Name : Set) {
          if (Name.size() < 2 || Name[0] != 's') {
            ++Failures;
            return;
          }
          MaxIndex = std::max(
              MaxIndex, static_cast<size_t>(std::stoul(Name.substr(1))));
        }
        if (Set.size() != MaxIndex + 1) { // {s0..sMax} exactly
          ++Failures;
          return;
        }
        // Monotone: published epochs only move forward.
        if (Set.size() < PrevCount) {
          ++Failures;
          return;
        }
        PrevCount = Set.size();
      }
    });
  }

  WriterThread.join();
  for (std::thread &T : Readers)
    T.join();
  EXPECT_EQ(Failures.load(), 0);

  // Converged state: every element landed.
  LineClient C = S.client();
  EXPECT_EQ(parseSet(ask(C, "ls V")).size(),
            static_cast<size_t>(NumAdds) + 1);
  EXPECT_EQ(S.stop(), 0);
}

//===----------------------------------------------------------------------===//
// Client connect backoff
//===----------------------------------------------------------------------===//

// The satellite contract for scripts: a connect with backoff outwaits a
// listener that appears late, so harnesses stop racing server startup
// with fixed sleeps.
TEST(NetClientTest, ConnectBackoffOutwaitsLateListener) {
  std::string Path = ::testing::TempDir() + "poce_net_backoff.sock";
  std::remove(Path.c_str());
  std::atomic<int> ListenFd{-1};
  std::thread Late([&] {
    std::this_thread::sleep_for(std::chrono::milliseconds(150));
    Expected<int> Fd = listenUnix(Path);
    ASSERT_TRUE(Fd.ok()) << Fd.status();
    ListenFd.store(*Fd, std::memory_order_release);
  });
  LineClient C;
  EXPECT_TRUE(
      C.connectUnixWithBackoff(Path, /*DeadlineMs=*/10000, /*JitterSeed=*/7)
          .ok());
  Late.join();
  C.close();
  closeFd(ListenFd.load(std::memory_order_acquire));
  std::remove(Path.c_str());

  // And the deadline is honored when nobody ever listens.
  LineClient Never;
  Status Refused = Never.connectUnixWithBackoff(
      ::testing::TempDir() + "poce_net_noone.sock", /*DeadlineMs=*/200,
      /*JitterSeed=*/7);
  EXPECT_FALSE(Refused.ok());
  EXPECT_NE(Refused.message().find("retries exhausted"), std::string::npos);
}

//===----------------------------------------------------------------------===//
// Replication: WAL shipping, catch-up, promote
//===----------------------------------------------------------------------===//

std::string replTempPath(const std::string &Name) {
  std::string Path = ::testing::TempDir() + "poce_net_repl_" + Name;
  std::remove(Path.c_str());
  return Path;
}

/// A primary/follower pair over loopback TCP: both cores carry their own
/// snapshot/WAL pair (the replicated unit), the follower's NetServer is
/// ReadOnly, and a ReplicationClient tails the primary.
struct ReplPair {
  std::unique_ptr<LoopbackServer> Primary;
  std::unique_ptr<LoopbackServer> Follower;
  std::unique_ptr<ReplicationClient> Repl;

  explicit ReplPair(const std::string &Tag, uint64_t CheckpointEvery = 0,
                    uint64_t HeartbeatMs = 500) {
    serve::ServerCoreConfig PrimCfg;
    PrimCfg.SnapshotPath = replTempPath(Tag + "_prim.snap");
    PrimCfg.WalPath = replTempPath(Tag + "_prim.wal");
    PrimCfg.CheckpointEvery = CheckpointEvery;
    NetServerOptions PrimOpts;
    PrimOpts.HeartbeatMs = HeartbeatMs;
    Primary = std::make_unique<LoopbackServer>(SwapText, PrimOpts, PrimCfg);
    if (!Primary->Error.empty())
      return;

    serve::ServerCoreConfig FolCfg;
    FolCfg.SnapshotPath = replTempPath(Tag + "_fol.snap");
    FolCfg.WalPath = replTempPath(Tag + "_fol.wal");
    NetServerOptions FolOpts;
    FolOpts.ReadOnly = true;
    // The follower's initial text is irrelevant: a (0, 0) cursor makes
    // the first handshake bootstrap it from the primary's snapshot.
    Follower = std::make_unique<LoopbackServer>("cons seedonly\n", FolOpts,
                                                FolCfg);
    if (!Follower->Error.empty())
      return;

    ReplicationClient::Options ReplOpts;
    ReplOpts.TcpSpec =
        "127.0.0.1:" + std::to_string(Primary->Server->tcpPort());
    ReplOpts.TickMs = 50;
    ReplOpts.JitterSeed = 11;
    Repl = std::make_unique<ReplicationClient>(*Follower->Server,
                                               std::move(ReplOpts));
    Repl->start();
  }

  ~ReplPair() {
    if (Repl)
      Repl->stop();
  }

  /// Polls `verify` on both sides until the full reply lines (checksum,
  /// base, and record count) match; false on timeout.
  bool converge(uint64_t TimeoutMs = 10000) {
    LineClient P = Primary->client();
    LineClient F = Follower->client();
    for (uint64_t Waited = 0; Waited < TimeoutMs; Waited += 20) {
      if (ask(P, "verify") == ask(F, "verify"))
        return true;
      std::this_thread::sleep_for(std::chrono::milliseconds(20));
    }
    return false;
  }
};

TEST(NetReplicationTest, FollowerBootstrapsTailsAndRejectsWrites) {
  // checkpoint-every=3 makes the primary rebase mid-stream, so the tail
  // exercises both `r` records and a live `rebase` event.
  ReplPair Pair("boot", /*CheckpointEvery=*/3);
  ASSERT_TRUE(Pair.Primary && Pair.Primary->Error.empty())
      << (Pair.Primary ? Pair.Primary->Error : "no primary");
  ASSERT_TRUE(Pair.Follower && Pair.Follower->Error.empty())
      << (Pair.Follower ? Pair.Follower->Error : "no follower");

  LineClient P = Pair.Primary->client();
  for (int K = 0; K != 5; ++K) {
    EXPECT_EQ(ask(P, "add cons w" + std::to_string(K)), "ok added");
    EXPECT_EQ(ask(P, "add w" + std::to_string(K) + " <= P"), "ok added");
  }
  ASSERT_TRUE(Pair.converge());

  // The follower answers queries from its own views — byte-identically.
  LineClient F = Pair.Follower->client();
  EXPECT_EQ(ask(F, "pts P"), ask(P, "pts P"));
  EXPECT_EQ(parseSet(ask(F, "pts P")).count("nx"), 1u);
  EXPECT_EQ(parseSet(ask(F, "pts P")).count("w4"), 1u);

  // Writes are refused with the dedicated code until a promote.
  std::string Refused = ask(F, "add cons nope");
  EXPECT_EQ(Refused.rfind("err read_only ", 0), 0u) << Refused;
  Refused = ask(F, "checkpoint");
  EXPECT_EQ(Refused.rfind("err read_only ", 0), 0u) << Refused;

  // New records after convergence still flow.
  EXPECT_EQ(ask(P, "add cons late"), "ok added");
  EXPECT_EQ(ask(P, "add late <= P"), "ok added");
  ASSERT_TRUE(Pair.converge());
  EXPECT_EQ(parseSet(ask(F, "pts P")).count("late"), 1u);
}

// Satellite regression: the idle sweep must not reap a quiet tailing
// replica (LongLived exemption) while still reaping plain idle clients.
TEST(NetReplicationTest, LongLivedReplicaConnSurvivesIdleSweep) {
  serve::ServerCoreConfig CoreCfg;
  CoreCfg.SnapshotPath = replTempPath("idle_prim.snap");
  CoreCfg.WalPath = replTempPath("idle_prim.wal");
  NetServerOptions Opts;
  Opts.IdleTimeoutMs = 100;
  Opts.HeartbeatMs = 50;
  LoopbackServer S(SwapText, Opts, CoreCfg);
  ASSERT_TRUE(S.Error.empty()) << S.Error;

  // A replica connection: raw `replicate` handshake, then silence — it
  // only ever receives. It must outlive several sweep periods, fed by
  // heartbeats.
  LineClient R = S.client();
  ASSERT_TRUE(R.sendLine("replicate 0 0").ok());
  std::string Header;
  ASSERT_TRUE(R.recvLine(Header).ok());
  ASSERT_EQ(Header.rfind("ok snapshot ", 0), 0u) << Header;
  size_t SizeAt = Header.rfind(' ');
  std::vector<uint8_t> Snap;
  ASSERT_TRUE(
      R.recvBytes(std::stoull(Header.substr(SizeAt + 1)), Snap).ok());

  // A plain client goes idle at the same time and is reaped.
  LineClient Idle = S.client();
  EXPECT_EQ(ask(Idle, "alias X Y"), "ok false");
  std::string Dead;
  EXPECT_FALSE(Idle.recvLine(Dead).ok());

  // By now several idle timeouts have passed; the replica still receives
  // heartbeats (hb lines, possibly after an empty separator line).
  unsigned Heartbeats = 0;
  std::string Line;
  while (Heartbeats < 3) {
    ASSERT_TRUE(R.recvLine(Line).ok())
        << "replica connection was reaped by the idle sweep";
    if (Line.rfind("hb ", 0) == 0)
      ++Heartbeats;
  }
  EXPECT_EQ(S.stop(), 0);
}

TEST(NetReplicationTest, PromoteFlipsWritableAndStopsTail) {
  ReplPair Pair("promote");
  ASSERT_TRUE(Pair.Primary && Pair.Primary->Error.empty());
  ASSERT_TRUE(Pair.Follower && Pair.Follower->Error.empty());

  LineClient P = Pair.Primary->client();
  EXPECT_EQ(ask(P, "add cons pre"), "ok added");
  EXPECT_EQ(ask(P, "add pre <= P"), "ok added");
  ASSERT_TRUE(Pair.converge());

  // Promote is only legal on a follower.
  std::string OnPrimary = ask(P, "promote");
  EXPECT_EQ(OnPrimary.rfind("err failed_precondition ", 0), 0u) << OnPrimary;

  LineClient F = Pair.Follower->client();
  std::string Promoted = ask(F, "promote");
  EXPECT_EQ(Promoted.rfind("ok promoted base=", 0), 0u) << Promoted;
  EXPECT_FALSE(Pair.Follower->Server->readOnly());
  EXPECT_EQ(ask(F, "promote"), "err failed_precondition already promoted");

  // Writable now, with its own re-stamped WAL lineage.
  EXPECT_EQ(ask(F, "add cons own"), "ok added");
  EXPECT_EQ(ask(F, "add own <= P"), "ok added");
  EXPECT_EQ(parseSet(ask(F, "pts P")).count("own"), 1u);
  EXPECT_EQ(parseSet(ask(F, "pts P")).count("pre"), 1u);

  // The old tail is dead: records written to the old primary no longer
  // flow (the promoted server refuses replicated applies even if a stray
  // stream survives).
  Pair.Repl->stop();
  EXPECT_EQ(ask(P, "add cons postsplit"), "ok added");
  std::this_thread::sleep_for(std::chrono::milliseconds(100));
  EXPECT_EQ(parseSet(ask(F, "pts P")).count("postsplit"), 0u);
}

// Chained replication is out of scope and must be refused loudly, not
// silently accepted.
TEST(NetReplicationTest, FollowerRefusesReplicateHandshake) {
  ReplPair Pair("chain");
  ASSERT_TRUE(Pair.Primary && Pair.Primary->Error.empty());
  ASSERT_TRUE(Pair.Follower && Pair.Follower->Error.empty());
  ASSERT_TRUE(Pair.converge());

  LineClient F = Pair.Follower->client();
  ASSERT_TRUE(F.sendLine("replicate 0 0").ok());
  std::string Reply;
  ASSERT_TRUE(F.recvLine(Reply).ok());
  EXPECT_EQ(Reply.rfind("err failed_precondition ", 0), 0u) << Reply;
  EXPECT_NE(Reply.find("chained replication"), std::string::npos) << Reply;
}

// Regression: `verify` must judge convergence by answer identity, not
// serialized-byte identity. A follower started the way `scserved
// --follow` starts one — cold bootstrap to disk, GraphSnapshot::load,
// materializeAllViews, recover — replays the WAL tail onto a
// deserialized graph and can collapse cycles onto different (equally
// valid) representatives than the live-solved primary, so the two
// serialized byte streams never match while every answer does; a
// byte-level checksum kept such a pair "diverged" forever. The workload
// mirrors bench/repl_bench.cpp at small scale, where this was first
// caught.
TEST(NetReplicationTest, VerifyConvergesAcrossRepresentationDivergence) {
  const uint32_t Vars = 24, Cons = 18, Records = 12;
  PRNG Base(0x706f6365u);
  std::string Text = "cons ref + + -\n";
  for (uint32_t L = 0; L != 6; ++L)
    Text += "cons l" + std::to_string(L) + "\n";
  for (uint32_t V = 0; V != Vars; ++V)
    Text += "var v" + std::to_string(V) + "\n";
  for (uint32_t C = 0; C != Cons; ++C) {
    uint32_t A = static_cast<uint32_t>(Base.nextBelow(Vars));
    uint32_t B = static_cast<uint32_t>(Base.nextBelow(Vars));
    if (Base.nextBelow(3) == 0)
      Text += "ref(l" + std::to_string(Base.nextBelow(6)) + ", v" +
              std::to_string(A) + ", v" + std::to_string(A) + ") <= v" +
              std::to_string(B) + "\n";
    else
      Text += "v" + std::to_string(A) + " <= v" + std::to_string(B) + "\n";
  }

  serve::ServerCoreConfig PrimCfg;
  PrimCfg.SnapshotPath = replTempPath("canon_prim.snap");
  PrimCfg.WalPath = replTempPath("canon_prim.wal");
  LoopbackServer Prim(Text, {}, PrimCfg);
  ASSERT_TRUE(Prim.Error.empty()) << Prim.Error;
  LineClient P = Prim.client();

  // All records land before the follower exists; the mid-stream
  // checkpoint makes its bootstrap a serialize of live-solved state
  // with a post-checkpoint record tail still to replay.
  PRNG AddRng(0x706f6366u);
  for (uint32_t K = 0; K != Records; ++K) {
    std::string Line;
    if (K % 2 == 0)
      Line = "cons a" + std::to_string(K);
    else if (K % 8 == 3)
      Line = "v" + std::to_string(AddRng.nextBelow(Vars)) + " <= v" +
             std::to_string(AddRng.nextBelow(Vars));
    else
      Line = "a" + std::to_string(K - 1) + " <= v" +
             std::to_string(AddRng.nextBelow(Vars));
    EXPECT_EQ(ask(P, "add " + Line), "ok added");
    if (K == Records / 2)
      EXPECT_EQ(ask(P, "checkpoint").rfind("ok ", 0), 0u);
  }

  // The follower, exactly as the scserved driver builds one.
  std::string FolSnap = replTempPath("canon_fol.snap");
  std::string PrimSpec =
      "127.0.0.1:" + std::to_string(Prim.Server->tcpPort());
  Status Boot = ReplicationClient::coldBootstrap(
      PrimSpec, /*UnixPath=*/"", FolSnap, /*DeadlineMs=*/10000);
  ASSERT_TRUE(Boot.ok()) << Boot.toString();
  serve::SolverBundle FolBundle;
  uint64_t FolBase = 0;
  Status Loaded = serve::GraphSnapshot::load(FolSnap, FolBundle, &FolBase);
  ASSERT_TRUE(Loaded.ok()) << Loaded.toString();
  FolBundle.Solver->materializeAllViews();
  serve::ServerCoreConfig FolCfg;
  FolCfg.SnapshotPath = FolSnap;
  FolCfg.WalPath = replTempPath("canon_fol.wal");
  serve::ServerCore FolCore(std::move(FolBundle), /*CacheCapacity=*/64,
                            FolCfg);
  ASSERT_TRUE(FolCore.valid()) << FolCore.initError();
  Status Recovered = FolCore.recover(FolBase);
  ASSERT_TRUE(Recovered.ok()) << Recovered.toString();
  NetServerOptions FolOpts;
  FolOpts.TcpSpec = "127.0.0.1:0";
  FolOpts.Lanes = 2;
  FolOpts.ReadOnly = true;
  NetServer FolServer(FolCore, FolOpts);
  ReplicationClient::Options ReplOpts;
  ReplOpts.TcpSpec = PrimSpec;
  ReplOpts.InitialBase = FolCore.walBaseId();
  ReplOpts.InitialSeq = FolCore.walRecords();
  ReplOpts.TickMs = 50;
  ReplOpts.JitterSeed = 23;
  ReplicationClient Repl(FolServer, std::move(ReplOpts));
  ASSERT_TRUE(FolServer.init().ok());
  std::thread FolLoop([&] { FolServer.run(); });
  Repl.start();

  LineClient F;
  ASSERT_TRUE(
      F.connectTcp("127.0.0.1:" + std::to_string(FolServer.tcpPort()))
          .ok());
  bool Converged = false;
  for (int Waited = 0; Waited < 10000; Waited += 20) {
    if (ask(P, "verify") == ask(F, "verify")) {
      Converged = true;
      break;
    }
    std::this_thread::sleep_for(std::chrono::milliseconds(20));
  }
  EXPECT_TRUE(Converged) << "verify never matched: primary '"
                         << ask(P, "verify") << "' follower '"
                         << ask(F, "verify") << "'";
  for (uint32_t V = 0; V < Vars; V += 5) {
    std::string Name = "v" + std::to_string(V);
    EXPECT_EQ(parseSet(ask(F, "ls " + Name)),
              parseSet(ask(P, "ls " + Name)))
        << Name;
  }
  Repl.stop();
  ask(F, "shutdown");
  FolLoop.join();
}

//===----------------------------------------------------------------------===//
// Strict wire-integer parsing and retraction over sockets
//===----------------------------------------------------------------------===//

// Satellite regression: the old parsers called strtoull directly, which
// silently accepts "-1" (wrapping to UINT64_MAX) and leading whitespace.
// A replica handshaking with `replicate -1 -1` used to be treated as a
// cursor at the end of the log instead of being refused.
TEST(NetParseTest, StrictIntegerParsing) {
  uint64_t V = 0;

  EXPECT_TRUE(parseHexU64("0", V)) << "plain zero";
  EXPECT_EQ(V, 0u);
  EXPECT_TRUE(parseHexU64("1f", V));
  EXPECT_EQ(V, 0x1fu);
  EXPECT_TRUE(parseHexU64("ffffffffffffffff", V));
  EXPECT_EQ(V, UINT64_MAX);
  EXPECT_TRUE(parseDecU64("42", V));
  EXPECT_EQ(V, 42u);
  EXPECT_TRUE(parseDecU64("18446744073709551615", V));
  EXPECT_EQ(V, UINT64_MAX);

  // The strtoull traps: sign prefixes and whitespace must be refused.
  EXPECT_FALSE(parseHexU64("-1", V));
  EXPECT_FALSE(parseDecU64("-1", V));
  EXPECT_FALSE(parseDecU64("+7", V));
  EXPECT_FALSE(parseDecU64(" 7", V));
  EXPECT_FALSE(parseHexU64(" f", V));
  EXPECT_FALSE(parseHexU64("\t0", V));

  // Trailing junk, empties, and non-digits.
  EXPECT_FALSE(parseDecU64("7x", V));
  EXPECT_FALSE(parseHexU64("12 ", V));
  EXPECT_FALSE(parseDecU64("", V));
  EXPECT_FALSE(parseHexU64("", V));
  EXPECT_FALSE(parseHexU64("g1", V));
  EXPECT_FALSE(parseDecU64("12a", V));

  // Overflow is an error, not a silent clamp to ULLONG_MAX.
  EXPECT_FALSE(parseDecU64("18446744073709551616", V));
  EXPECT_FALSE(parseHexU64("10000000000000000", V));
}

TEST(NetServerTest, MalformedReplicateHandshakeIsRefused) {
  serve::ServerCoreConfig CoreCfg;
  CoreCfg.SnapshotPath = replTempPath("malformed.snap");
  CoreCfg.WalPath = replTempPath("malformed.wal");
  LoopbackServer S(SwapText, {}, CoreCfg);
  ASSERT_TRUE(S.Error.empty()) << S.Error;

  const char *Bad[] = {"replicate -1 -1", "replicate g0 0", "replicate 5 5x",
                       "replicate 0 +1"};
  for (const char *Line : Bad) {
    LineClient C = S.client();
    std::string Reply = ask(C, Line);
    EXPECT_EQ(Reply.rfind("err invalid_argument ", 0), 0u)
        << Line << " -> " << Reply;
  }

  // A well-formed cursor on the same server still handshakes.
  LineClient Good = S.client();
  ASSERT_TRUE(Good.sendLine("replicate 0 0").ok());
  std::string Header;
  ASSERT_TRUE(Good.recvLine(Header).ok());
  EXPECT_EQ(Header.rfind("ok snapshot ", 0), 0u) << Header;
}

TEST(NetReplicationTest, RetractReplicatesAndConverges) {
  ReplPair Pair("retract");
  ASSERT_TRUE(Pair.Primary && Pair.Primary->Error.empty())
      << (Pair.Primary ? Pair.Primary->Error : "no primary");
  ASSERT_TRUE(Pair.Follower && Pair.Follower->Error.empty())
      << (Pair.Follower ? Pair.Follower->Error : "no follower");

  LineClient P = Pair.Primary->client();
  EXPECT_EQ(ask(P, "add cons w0"), "ok added");
  EXPECT_EQ(ask(P, "add w0 <= P"), "ok added");
  ASSERT_TRUE(Pair.converge());

  LineClient F = Pair.Follower->client();
  EXPECT_EQ(parseSet(ask(F, "pts P")).count("w0"), 1u);

  // Retraction is a write: the follower refuses it.
  std::string Refused = ask(F, "retract w0 <= P");
  EXPECT_EQ(Refused.rfind("err read_only ", 0), 0u) << Refused;

  // On the primary it lands, ships through the tail, and `verify` stays
  // the convergence oracle across the deletion.
  EXPECT_EQ(ask(P, "retract w0 <= P"), "ok retracted");
  EXPECT_EQ(ask(P, "retract w0 <= P"),
            "err not_found no live constraint 'w0 <= P' to retract");
  ASSERT_TRUE(Pair.converge());
  EXPECT_EQ(parseSet(ask(F, "pts P")).count("w0"), 0u);
  EXPECT_EQ(ask(F, "pts P"), ask(P, "pts P"));

  // The cycle P/Q/T from the seed text is untouched by the retraction.
  EXPECT_EQ(ask(F, "alias P Q"), "ok true");
}

} // namespace
