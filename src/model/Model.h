//===- model/Model.h - Analytical model of Section 5 ------------*- C++ -*-===//
//
// Part of the poce project.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The paper's analytical model of edge additions in random constraint
/// graphs (Section 5). Graphs have n variable nodes and m source/sink
/// nodes; every legal edge exists independently with probability p; the
/// variable order is a uniformly random permutation; only additions
/// through simple paths are counted (perfect cycle elimination, matching
/// the *-Oracle configurations).
///
/// Expected additions, standard form (Section 5.1):
///   E[X_SF(c,X)]  = sum_{i=1}^{n-1} C(n-1,i) i! p^{i+1}
///   E[X_SF(c,c')] = sum_{i=1}^{n}   C(n,i)   i! p^{i+1}
///   E[X_SF] = m n E[X_SF(c,X)] + m(m-1) E[X_SF(c,c')]
///
/// Expected additions, inductive form (Section 5.2, using Lemma 5.3's
/// per-path probabilities 2/(l(l-1)), 1/(l-1), and 1 for paths with l
/// nodes):
///   E[X_IF(X1,X2)] = sum_{i=1}^{n-2} C(n-2,i) i! p^{i+1} * 2/((i+2)(i+1))
///   E[X_IF(X,c)]   = sum_{i=1}^{n-1} C(n-1,i) i! p^{i+1} * 1/(i+1)
///   E[X_IF(c,c')]  = sum_{i=1}^{n}   C(n,i)   i! p^{i+1}
///   E[X_IF] = m(m-1) E[X_IF(c,c')] + 2mn E[X_IF(X,c)]
///           + n(n-1) E[X_IF(X1,X2)]
///
/// Expected nodes reachable along predecessor chains (Section 5.4):
///   E[R_X] <= sum_{i=1}^{n-1} C(n-1,i) i! p^i / (i+1)!
///          <  (e^k - 1 - k)/k          for p = k/n.
///
/// Theorem 5.1: at p = 1/n and m/n = 2/3 the SF/IF ratio approaches ~2.5.
/// Theorem 5.2: at p = 2/n, E[R_X] < 2.2.
///
//===----------------------------------------------------------------------===//

#ifndef POCE_MODEL_MODEL_H
#define POCE_MODEL_MODEL_H

#include "support/PRNG.h"

#include <cstdint>

namespace poce {
namespace model {

/// Exact (numerically summed) expected edge additions for standard form.
double expectedAdditionsSF(uint64_t N, uint64_t M, double P);

/// Exact expected edge additions for inductive form.
double expectedAdditionsIF(uint64_t N, uint64_t M, double P);

/// Exact expected number of variables reachable along predecessor chains
/// from a fixed variable.
double expectedReachable(uint64_t N, double P);

/// Closed-form bound (e^k - 1 - k)/k of Theorem 5.2 for p = k/n.
double reachableClosedForm(double K);

/// Section 5.3's closed-form approximations at p = 1/n (via equation (2),
/// sum C(n,i) i! n^-i ~ sqrt(pi n / 2)):
///   E[X_SF] ~ m (sqrt(pi n / 2) - 1) + (m(m-1)/n) sqrt(pi n / 2)
double approxAdditionsSF(uint64_t N, uint64_t M);
///   E[X_IF] ~ (m(m-1)/n) sqrt(pi n / 2) + 2 m ln n + n
double approxAdditionsIF(uint64_t N, uint64_t M);

/// Theorem 5.1's ratio E[X_SF]/E[X_IF] at p = 1/n, m = 2n/3.
double theorem51Ratio(uint64_t N);

/// Monte-Carlo estimates of the same quantities by sampling random graphs
/// and enumerating simple paths with the model's addition conditions.
/// Intended for small N (path enumeration is exponential); validates the
/// formulas in tests and in the model bench.
struct SimulationResult {
  double AdditionsSF = 0;
  double AdditionsIF = 0;
  double Reachable = 0;
};
SimulationResult simulateModel(uint64_t N, uint64_t M, double P,
                               unsigned Trials, PRNG &Rng);

} // namespace model
} // namespace poce

#endif // POCE_MODEL_MODEL_H
