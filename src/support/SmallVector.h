//===- support/SmallVector.h - Vector with inline storage -------*- C++ -*-===//
//
// Part of the poce project.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// A vector that stores its first N elements inline, avoiding heap
/// allocation for small sizes. Modeled on llvm::SmallVector; APIs follow
/// std::vector. Pass SmallVectorImpl<T>& in interfaces so callers can pick
/// any inline size.
///
//===----------------------------------------------------------------------===//

#ifndef POCE_SUPPORT_SMALLVECTOR_H
#define POCE_SUPPORT_SMALLVECTOR_H

#include <algorithm>
#include <cassert>
#include <cstddef>
#include <cstdlib>
#include <cstring>
#include <initializer_list>
#include <iterator>
#include <memory>
#include <new>
#include <type_traits>
#include <utility>

namespace poce {

/// Size-erased base of SmallVector. Holds the heap/inline buffer pointer and
/// size/capacity bookkeeping; all mutation logic lives here so that code
/// using SmallVectorImpl<T>& does not depend on the inline element count.
template <typename T> class SmallVectorImpl {
public:
  using value_type = T;
  using size_type = size_t;
  using iterator = T *;
  using const_iterator = const T *;
  using reference = T &;
  using const_reference = const T &;

  SmallVectorImpl(const SmallVectorImpl &) = delete;

  iterator begin() { return Data; }
  iterator end() { return Data + Size; }
  const_iterator begin() const { return Data; }
  const_iterator end() const { return Data + Size; }

  size_t size() const { return Size; }
  size_t capacity() const { return Capacity; }
  bool empty() const { return Size == 0; }

  reference operator[](size_t I) {
    assert(I < Size && "SmallVector index out of range!");
    return Data[I];
  }
  const_reference operator[](size_t I) const {
    assert(I < Size && "SmallVector index out of range!");
    return Data[I];
  }

  reference front() {
    assert(!empty() && "front() on empty SmallVector!");
    return Data[0];
  }
  const_reference front() const {
    assert(!empty() && "front() on empty SmallVector!");
    return Data[0];
  }
  reference back() {
    assert(!empty() && "back() on empty SmallVector!");
    return Data[Size - 1];
  }
  const_reference back() const {
    assert(!empty() && "back() on empty SmallVector!");
    return Data[Size - 1];
  }

  T *data() { return Data; }
  const T *data() const { return Data; }

  void push_back(const T &V) {
    if (Size == Capacity)
      grow(Size + 1);
    new (Data + Size) T(V);
    ++Size;
  }
  void push_back(T &&V) {
    if (Size == Capacity)
      grow(Size + 1);
    new (Data + Size) T(std::move(V));
    ++Size;
  }

  template <typename... ArgTypes> reference emplace_back(ArgTypes &&...Args) {
    if (Size == Capacity)
      grow(Size + 1);
    new (Data + Size) T(std::forward<ArgTypes>(Args)...);
    return Data[Size++];
  }

  void pop_back() {
    assert(!empty() && "pop_back() on empty SmallVector!");
    --Size;
    Data[Size].~T();
  }

  /// Removes the last element and returns it by value.
  T pop_back_val() {
    T Result = std::move(back());
    pop_back();
    return Result;
  }

  void clear() {
    destroyRange(Data, Data + Size);
    Size = 0;
  }

  void resize(size_t N) {
    if (N < Size) {
      destroyRange(Data + N, Data + Size);
    } else if (N > Size) {
      if (N > Capacity)
        grow(N);
      for (size_t I = Size; I != N; ++I)
        new (Data + I) T();
    }
    Size = N;
  }

  void resize(size_t N, const T &V) {
    if (N < Size) {
      destroyRange(Data + N, Data + Size);
    } else if (N > Size) {
      if (N > Capacity)
        grow(N);
      for (size_t I = Size; I != N; ++I)
        new (Data + I) T(V);
    }
    Size = N;
  }

  void reserve(size_t N) {
    if (N > Capacity)
      grow(N);
  }

  void assign(size_t N, const T &V) {
    clear();
    resize(N, V);
  }

  template <typename It> void append(It First, It Last) {
    size_t N = static_cast<size_t>(std::distance(First, Last));
    reserve(Size + N);
    for (; First != Last; ++First)
      push_back(*First);
  }

  void append(std::initializer_list<T> IL) { append(IL.begin(), IL.end()); }

  /// Erases the element at \p Pos, shifting later elements down. Returns an
  /// iterator to the element after the erased one.
  iterator erase(iterator Pos) {
    assert(Pos >= begin() && Pos < end() && "erase() out of range!");
    std::move(Pos + 1, end(), Pos);
    pop_back();
    return Pos;
  }

  iterator erase(iterator First, iterator Last) {
    assert(First >= begin() && Last <= end() && First <= Last &&
           "erase() range invalid!");
    iterator NewEnd = std::move(Last, end(), First);
    destroyRange(NewEnd, end());
    Size = static_cast<size_t>(NewEnd - begin());
    return First;
  }

  iterator insert(iterator Pos, const T &V) {
    size_t Idx = static_cast<size_t>(Pos - begin());
    assert(Idx <= Size && "insert() out of range!");
    push_back(V); // may reallocate; recompute Pos
    std::rotate(begin() + Idx, end() - 1, end());
    return begin() + Idx;
  }

  bool operator==(const SmallVectorImpl &RHS) const {
    return Size == RHS.Size && std::equal(begin(), end(), RHS.begin());
  }
  bool operator!=(const SmallVectorImpl &RHS) const { return !(*this == RHS); }

  SmallVectorImpl &operator=(const SmallVectorImpl &RHS) {
    if (this == &RHS)
      return *this;
    clear();
    append(RHS.begin(), RHS.end());
    return *this;
  }

protected:
  SmallVectorImpl(T *InlineData, size_t InlineCapacity)
      : Data(InlineData), Size(0), Capacity(InlineCapacity),
        InlineBuffer(InlineData) {}

  ~SmallVectorImpl() {
    destroyRange(Data, Data + Size);
    if (!isInline())
      std::free(Data);
  }

  bool isInline() const { return Data == InlineBuffer; }

  void grow(size_t MinCapacity) {
    size_t NewCapacity = std::max<size_t>(Capacity ? Capacity * 2 : 4,
                                          MinCapacity);
    T *NewData = static_cast<T *>(std::malloc(NewCapacity * sizeof(T)));
    if (!NewData)
      std::abort();
    if constexpr (std::is_trivially_copyable_v<T>) {
      if (Size)
        std::memcpy(static_cast<void *>(NewData), Data, Size * sizeof(T));
    } else {
      std::uninitialized_move(Data, Data + Size, NewData);
      destroyRange(Data, Data + Size);
    }
    if (!isInline())
      std::free(Data);
    Data = NewData;
    Capacity = NewCapacity;
  }

  static void destroyRange(T *First, T *Last) {
    if constexpr (!std::is_trivially_destructible_v<T>)
      for (; First != Last; ++First)
        First->~T();
  }

  T *Data;
  size_t Size;
  size_t Capacity;
  T *InlineBuffer;
};

/// A vector holding up to \p N elements without heap allocation.
template <typename T, unsigned N = 8>
class SmallVector : public SmallVectorImpl<T> {
public:
  SmallVector() : SmallVectorImpl<T>(reinterpret_cast<T *>(Storage), N) {}

  SmallVector(std::initializer_list<T> IL) : SmallVector() {
    this->append(IL.begin(), IL.end());
  }

  SmallVector(const SmallVector &RHS) : SmallVector() {
    this->append(RHS.begin(), RHS.end());
  }

  SmallVector(const SmallVectorImpl<T> &RHS) : SmallVector() {
    this->append(RHS.begin(), RHS.end());
  }

  SmallVector(SmallVector &&RHS) : SmallVector() {
    for (T &V : RHS)
      this->push_back(std::move(V));
    RHS.clear();
  }

  SmallVector &operator=(const SmallVector &RHS) {
    SmallVectorImpl<T>::operator=(RHS);
    return *this;
  }

  SmallVector &operator=(const SmallVectorImpl<T> &RHS) {
    SmallVectorImpl<T>::operator=(RHS);
    return *this;
  }

  SmallVector &operator=(SmallVector &&RHS) {
    if (this == &RHS)
      return *this;
    this->clear();
    for (T &V : RHS)
      this->push_back(std::move(V));
    RHS.clear();
    return *this;
  }

private:
  alignas(T) unsigned char Storage[sizeof(T) * N];
};

} // namespace poce

#endif // POCE_SUPPORT_SMALLVECTOR_H
