//===- minic/Diagnostics.h - Frontend diagnostics ---------------*- C++ -*-===//
//
// Part of the poce project.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Error collection for the MiniC frontend. Messages follow tool style
/// (lowercase first word, no trailing period) and carry source locations.
///
//===----------------------------------------------------------------------===//

#ifndef POCE_MINIC_DIAGNOSTICS_H
#define POCE_MINIC_DIAGNOSTICS_H

#include "minic/Token.h"

#include <cstdio>
#include <string>
#include <vector>

namespace poce {
namespace minic {

/// Collects frontend errors; parsing continues after errors where
/// possible so multiple problems surface in one run.
class Diagnostics {
public:
  explicit Diagnostics(std::string FileName = "<input>")
      : FileName(std::move(FileName)) {}

  void error(SourceLocation Loc, const std::string &Message);

  bool hasErrors() const { return !Errors.empty(); }
  unsigned errorCount() const { return static_cast<unsigned>(Errors.size()); }
  const std::vector<std::string> &errors() const { return Errors; }

  /// Prints all collected errors to \p Out.
  void printAll(std::FILE *Out = stderr) const;

private:
  std::string FileName;
  std::vector<std::string> Errors;
};

} // namespace minic
} // namespace poce

#endif // POCE_MINIC_DIAGNOSTICS_H
