//===- bench/ablation_offline.cpp - Offline vs online vs hybrid elimination ===//
//
// Part of the poce project.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Extension bench: the offline-preprocessing ablation. For each graph
/// form (SF/IF) and online strategy (None/Online/Periodic) the same
/// cycle-heavy random constraint system is solved with and without
/// PreprocessMode::Offline (HVN pointer-equivalence labeling plus Nuutila
/// SCC substitution before the first closure), and the cycle variables
/// each layer catches are tabulated against the Oracle ground-truth bound
/// (the perfect eliminator of the paper's *-Oracle experiments):
///
///   OffVars    variables substituted by the offline SCC pass
///   OnVars     variables collapsed by online/periodic search afterwards
///   Caught     OffVars + OnVars, never above the Oracle bound
///   Oracle%    Caught as a percentage of Oracle::eliminableVars()
///
/// The preprocess=offline rows with Elim=None isolate the pure offline
/// strategy; with Elim=Online/Periodic they are the hybrid cascade the
/// tentpole ships. Least-solution checksums are asserted identical
/// between the pass-on and pass-off runs of every configuration; a
/// divergence, a Caught value above the Oracle bound, or an offline catch
/// below 20% of the bound on a collapse-bearing shape aborts with an
/// error.
///
//===----------------------------------------------------------------------===//

#include "BenchCommon.h"
#include "setcon/ConstraintSolver.h"
#include "workload/RandomConstraints.h"

using namespace poce;
using namespace poce::bench;

namespace {

/// emitRandomConstraints with a selectable order (the library emitter is
/// pinned to edges-first).
void emitOrdered(const RandomConstraintShape &Shape, ConstraintSolver &Solver,
                 bool FactsFirst) {
  TermTable &Terms = Solver.terms();
  ConstructorTable &Constructors = Terms.mutableConstructors();
  std::vector<ExprId> Vars, Sources, Sinks;
  for (uint32_t I = 0; I != Shape.NumVars; ++I)
    Vars.push_back(Terms.var(Solver.freshVar("X" + std::to_string(I))));
  for (uint32_t I = 0; I != Shape.NumSources; ++I)
    Sources.push_back(Terms.cons(
        Constructors.getOrCreate("src" + std::to_string(I), {}), {}));
  for (uint32_t I = 0; I != Shape.NumSinks; ++I)
    Sinks.push_back(Terms.cons(
        Constructors.getOrCreate("snk" + std::to_string(I), {}), {}));
  auto emitFacts = [&] {
    for (const auto &[Source, Var] : Shape.SourceVar)
      Solver.addConstraint(Sources[Source], Vars[Var]);
    for (const auto &[Var, Sink] : Shape.VarSink)
      Solver.addConstraint(Vars[Var], Sinks[Sink]);
  };
  auto emitEdges = [&] {
    for (const auto &[From, To] : Shape.VarVar)
      Solver.addConstraint(Vars[From], Vars[To]);
  };
  if (FactsFirst) {
    emitFacts();
    emitEdges();
  } else {
    emitEdges();
    emitFacts();
  }
}

struct RunResult {
  double BestSeconds = 0;
  SolverStats Stats;
  size_t SolutionBits = 0;
};

RunResult runVariant(const RandomConstraintShape &Shape, bool FactsFirst,
                     GraphForm Form, CycleElim Elim, PreprocessMode Pre,
                     unsigned Repeats) {
  RunResult Out;
  for (unsigned Repeat = 0; Repeat != Repeats; ++Repeat) {
    ConstructorTable Constructors;
    TermTable Terms(Constructors);
    SolverOptions Options = makeConfig(Form, Elim);
    Options.Preprocess = Pre;
    Timer T;
    ConstraintSolver Solver(Terms, Options);
    emitOrdered(Shape, Solver, FactsFirst);
    Solver.finalize();
    size_t Bits = 0;
    for (VarId Var = 0; Var != Solver.numVars(); ++Var)
      Bits += Solver.leastSolution(Var).size();
    double Seconds = T.seconds();
    if (Repeat == 0 || Seconds < Out.BestSeconds)
      Out.BestSeconds = Seconds;
    Out.Stats = Solver.stats();
    Out.SolutionBits = Bits;
  }
  return Out;
}

} // namespace

int main() {
  BenchEnv Env = BenchEnv::fromEnv();
  std::printf("=== Ablation: offline vs online vs hybrid cycle "
              "elimination ===\n");
  Env.print();

  struct ShapeSpec {
    const char *Name;
    uint32_t NumVars, NumCons;
    double Degree;
    uint64_t Seed;
    bool FactsFirst;
  };
  // Out-degree 2.0 puts both shapes past the giant-SCC threshold of a
  // random digraph, so the pre-closure graph carries a large collapsible
  // component — the inputs the offline pass exists for.
  const ShapeSpec Shapes[] = {
      {"cascade", 4000, 2600, 2.0, 105, /*FactsFirst=*/false},
      {"bulkload", 6000, 4000, 2.0, 101, /*FactsFirst=*/true},
  };
  const struct {
    const char *Name;
    GraphForm Form;
    CycleElim Elim;
  } Configs[] = {
      {"SF-Plain", GraphForm::Standard, CycleElim::None},
      {"SF-Online", GraphForm::Standard, CycleElim::Online},
      {"SF-Periodic", GraphForm::Standard, CycleElim::Periodic},
      {"IF-Plain", GraphForm::Inductive, CycleElim::None},
      {"IF-Online", GraphForm::Inductive, CycleElim::Online},
      {"IF-Periodic", GraphForm::Inductive, CycleElim::Periodic},
  };

  TextTable Table({"Shape", "Config", "Preprocess", "Time(s)", "Work",
                   "OffVars", "OnVars", "Caught", "Oracle%", "HVN",
                   "Searches"});
  bool Failed = false;
  for (const ShapeSpec &Spec : Shapes) {
    PRNG Rng(Spec.Seed);
    uint32_t NumVars = std::max<uint32_t>(
        8, static_cast<uint32_t>(Spec.NumVars * Env.Scale));
    uint32_t NumCons = std::max<uint32_t>(
        4, static_cast<uint32_t>(Spec.NumCons * Env.Scale));
    RandomConstraintShape Shape =
        randomConstraintShape(NumVars, NumCons, Spec.Degree / NumVars, Rng);

    // Ground truth for this shape. Creation indices and the discovered
    // constraint relation depend only on the emission sequence, so one
    // oracle serves every configuration.
    ConstructorTable OracleConstructors;
    Oracle Truth = buildOracle(
        [&](ConstraintSolver &Solver) {
          emitOrdered(Shape, Solver, Spec.FactsFirst);
        },
        OracleConstructors, makeConfig(GraphForm::Inductive,
                                       CycleElim::Online));
    uint64_t Bound = Truth.eliminableVars();
    uint64_t OfflineCaught = 0;

    for (const auto &Config : Configs) {
      size_t ReferenceBits = 0;
      bool HaveReference = false;
      for (PreprocessMode Pre :
           {PreprocessMode::None, PreprocessMode::Offline}) {
        RunResult R = runVariant(Shape, Spec.FactsFirst, Config.Form,
                                 Config.Elim, Pre, Env.Repeats);
        const char *PreName =
            Pre == PreprocessMode::Offline ? "offline" : "none";
        if (!HaveReference) {
          ReferenceBits = R.SolutionBits;
          HaveReference = true;
        } else if (R.SolutionBits != ReferenceBits) {
          std::fprintf(stderr,
                       "error: %s %s %s: solution checksum diverged "
                       "(%zu vs %zu)\n",
                       Spec.Name, Config.Name, PreName, R.SolutionBits,
                       ReferenceBits);
          Failed = true;
        }
        uint64_t Caught =
            R.Stats.OfflineCollapsedVars + R.Stats.VarsEliminated;
        if (Caught > Bound) {
          std::fprintf(stderr,
                       "error: %s %s %s: caught %llu cycle variables, "
                       "above the Oracle bound %llu\n",
                       Spec.Name, Config.Name, PreName,
                       (unsigned long long)Caught,
                       (unsigned long long)Bound);
          Failed = true;
        }
        if (Pre == PreprocessMode::Offline)
          OfflineCaught = R.Stats.OfflineCollapsedVars;
        Table.addRow({Spec.Name, Config.Name, PreName,
                      formatDouble(R.BestSeconds, 3),
                      formatGrouped(R.Stats.Work),
                      formatGrouped(R.Stats.OfflineCollapsedVars),
                      formatGrouped(R.Stats.VarsEliminated),
                      formatGrouped(Caught),
                      Bound ? formatDouble(100.0 * Caught / Bound, 1)
                            : std::string("-"),
                      formatGrouped(R.Stats.HVNLabels),
                      formatGrouped(R.Stats.CycleSearches)});
      }
    }
    if (Bound > 0 && OfflineCaught * 5 < Bound) {
      std::fprintf(stderr,
                   "error: %s: offline pass caught %llu of %llu "
                   "eliminable variables (< 20%% of the Oracle bound)\n",
                   Spec.Name, (unsigned long long)OfflineCaught,
                   (unsigned long long)Bound);
      Failed = true;
    }
  }
  Table.print();
  std::printf("\nThe offline pass substitutes away the pre-closure SCCs "
              "before any propagation happens, so the plain "
              "configurations inherit most of the Oracle's win without a "
              "single online chain search; the hybrid rows show the "
              "online search reduced to mopping up the cycles only "
              "closure exposes. Compare the Searches column between the "
              "none and offline rows of the Online configurations.\n");
  return Failed ? 1 : 0;
}
