# Empty compiler generated dependencies file for poce_workload.
# This may be replaced when dependencies are built.
