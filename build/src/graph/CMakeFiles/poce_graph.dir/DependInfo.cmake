
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/graph/Digraph.cpp" "src/graph/CMakeFiles/poce_graph.dir/Digraph.cpp.o" "gcc" "src/graph/CMakeFiles/poce_graph.dir/Digraph.cpp.o.d"
  "/root/repo/src/graph/DotWriter.cpp" "src/graph/CMakeFiles/poce_graph.dir/DotWriter.cpp.o" "gcc" "src/graph/CMakeFiles/poce_graph.dir/DotWriter.cpp.o.d"
  "/root/repo/src/graph/RandomGraph.cpp" "src/graph/CMakeFiles/poce_graph.dir/RandomGraph.cpp.o" "gcc" "src/graph/CMakeFiles/poce_graph.dir/RandomGraph.cpp.o.d"
  "/root/repo/src/graph/TarjanSCC.cpp" "src/graph/CMakeFiles/poce_graph.dir/TarjanSCC.cpp.o" "gcc" "src/graph/CMakeFiles/poce_graph.dir/TarjanSCC.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/support/CMakeFiles/poce_support.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
