# Empty dependencies file for poce_cfa.
# This may be replaced when dependencies are built.
