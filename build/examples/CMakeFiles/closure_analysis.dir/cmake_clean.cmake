file(REMOVE_RECURSE
  "CMakeFiles/closure_analysis.dir/closure_analysis.cpp.o"
  "CMakeFiles/closure_analysis.dir/closure_analysis.cpp.o.d"
  "closure_analysis"
  "closure_analysis.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/closure_analysis.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
