//===- serve/Telemetry.cpp - Server-side telemetry rendering --------------===//
//
// Part of the poce project.
//
//===----------------------------------------------------------------------===//

#include "serve/Telemetry.h"

#include "serve/QueryEngine.h"

using namespace poce;
using namespace poce::serve;

namespace poce {
namespace serve {
namespace telemetry {

Histogram &queryLatencyHistogram() {
  static Histogram &H = MetricsRegistry::global().histogram(
      "poce_query_latency_us",
      "End-to-end microseconds per ls/pts/alias request");
  return H;
}

Histogram &checkpointHistogram() {
  static Histogram &H = MetricsRegistry::global().histogram(
      "poce_checkpoint_us",
      "Microseconds per checkpoint (snapshot write + WAL reset)");
  return H;
}

std::string buildStatsReply(const QueryEngine &Engine,
                            const ServerCounters &Server) {
  const SolverStats &S = Engine.solver().stats();
  const QueryEngine::Counters &C = Engine.counters();
  return "ok config=" + Engine.solver().options().configName() +
         " vars=" + std::to_string(S.VarsCreated) +
         " live=" + std::to_string(Engine.solver().numLiveVars()) +
         " work=" + std::to_string(S.Work) +
         " cycles_collapsed=" + std::to_string(S.CyclesCollapsed) +
         " vars_eliminated=" + std::to_string(S.VarsEliminated) +
         " offline_vars=" + std::to_string(S.OfflineCollapsedVars) +
         " hvn_labels=" + std::to_string(S.HVNLabels) +
         " budget_aborts=" + std::to_string(C.BudgetAborts) +
         " rollbacks=" + std::to_string(C.Rollbacks) +
         " retractions=" + std::to_string(S.Retractions) +
         " cone_vars=" + std::to_string(S.ConeVarsRecomputed) +
         " collapses_split=" + std::to_string(S.CollapsesSplit) +
         " wal_replayed=" + std::to_string(Server.WalReplayed) +
         " checkpoints=" + std::to_string(Server.Checkpoints) +
         " wal_records=" + std::to_string(Server.WalRecords) +
         " wal_bytes=" + std::to_string(Server.WalBytes);
}

std::string buildCountersReply(const QueryEngine &Engine,
                               const Histogram &Latency) {
  const QueryEngine::Counters &C = Engine.counters();
  HistogramSnapshot Snap = Latency.snapshot();
  return "ok queries=" + std::to_string(C.Queries) +
         " hits=" + std::to_string(C.CacheHits) +
         " misses=" + std::to_string(C.CacheMisses) +
         " stale=" + std::to_string(C.StaleRebuilds) +
         " additions=" + std::to_string(C.Additions) +
         " evictions=" + std::to_string(Engine.cacheEvictions()) +
         " p50_us=" + std::to_string(Snap.quantile(0.50)) +
         " p99_us=" + std::to_string(Snap.quantile(0.99));
}

void exportServeMetrics(MetricsRegistry &Registry, const QueryEngine &Engine,
                        const ServerCounters &Server) {
  const QueryEngine::Counters &C = Engine.counters();
  auto Set = [&Registry](const char *Name, const char *Help, uint64_t Value) {
    Registry.counter(Name, Help).set(Value);
  };
  Set("poce_query_requests_total", "ls/pts/alias queries answered",
      C.Queries);
  Set("poce_query_cache_hits_total", "Queries served from a valid view",
      C.CacheHits);
  Set("poce_query_cache_misses_total", "Views built on first touch",
      C.CacheMisses);
  Set("poce_query_cache_stale_total", "Cached views outgrown and rebuilt",
      C.StaleRebuilds);
  Set("poce_query_cache_evictions_total", "Views dropped by LRU pressure",
      Engine.cacheEvictions());
  Set("poce_serve_additions_total", "Constraint lines accepted",
      C.Additions);
  Set("poce_serve_budget_aborts_total", "Additions rejected by a budget",
      C.BudgetAborts);
  Set("poce_serve_rollbacks_total", "Pre-batch state restores",
      C.Rollbacks);
  Set("poce_serve_wal_replayed_total", "WAL lines replayed at startup",
      Server.WalReplayed);
  Set("poce_serve_wal_skipped_total", "Stale WAL lines skipped at startup",
      Server.WalSkipped);
  Set("poce_serve_checkpoints_total", "Checkpoints completed",
      Server.Checkpoints);
  Registry.gauge("poce_serve_wal_records", "Records in the open WAL")
      .set(Server.WalRecords);
  Registry.gauge("poce_serve_wal_bytes", "Bytes in the open WAL")
      .set(Server.WalBytes);
  Registry
      .gauge("poce_query_cache_size", "Views currently held by the LRU")
      .set(Engine.cacheSize());
}

std::string buildMetricsReply(MetricsRegistry &Registry, QueryEngine &Engine,
                              const ServerCounters &Server) {
  Engine.solver().stats().exportTo(Registry);
  exportServeMetrics(Registry, Engine, Server);
  return "ok metrics\n" + Registry.renderPrometheus() + "# EOF";
}

} // namespace telemetry
} // namespace serve
} // namespace poce
