//===- examples/points_to.cpp - Andersen's analysis on a C program ---------===//
//
// Part of the poce project.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Runs the paper's case study end to end: parse a C program (an embedded
/// sample, or a file given as argv[1]), generate inclusion constraints for
/// Andersen's points-to analysis, solve under all six configurations of
/// the paper's Table 4, and print the (identical) points-to sets plus the
/// per-configuration cost.
///
/// Build & run:  ./build/examples/points_to [file.c]
///
//===----------------------------------------------------------------------===//

#include "andersen/Andersen.h"
#include "andersen/Steensgaard.h"
#include "setcon/Oracle.h"
#include "support/Format.h"

#include <cstdio>
#include <fstream>
#include <sstream>

using namespace poce;

static const char *const SampleProgram = R"(
/* A miniature program with the pointer idioms the paper's benchmarks
   exercise: double pointers, a swap kernel, a linked list, and a call
   through a function pointer. */
extern void *malloc(unsigned long n);

struct node { struct node *next; int *data; };

int x, y;
int *gp;
struct node *head;

void swap(int **a, int **b) { int *t = *a; *a = *b; *b = t; }

int *pick(int *p, int *q) { return x ? p : q; }

int *(*chooser)(int *, int *);

int main(void) {
  int *p = &x;
  int *q = &y;
  swap(&p, &q);
  chooser = pick;
  gp = chooser(p, q);

  struct node *n = (struct node *)malloc(sizeof(struct node));
  n->data = gp;
  n->next = head;
  head = n;
  return 0;
}
)";

int main(int Argc, char **Argv) {
  std::string Source = SampleProgram;
  std::string Name = "<sample>";
  if (Argc > 1) {
    std::ifstream In(Argv[1]);
    if (!In) {
      std::fprintf(stderr, "points_to: cannot open '%s'\n", Argv[1]);
      return 1;
    }
    std::stringstream Buffer;
    Buffer << In.rdbuf();
    Source = Buffer.str();
    Name = Argv[1];
  }

  minic::TranslationUnit Unit;
  std::vector<std::string> Errors;
  if (!andersen::parseSource(Source, Unit, &Errors, Name)) {
    for (const std::string &Error : Errors)
      std::fprintf(stderr, "%s\n", Error.c_str());
    return 1;
  }
  std::printf("parsed %s: %llu AST nodes\n\n", Name.c_str(),
              (unsigned long long)Unit.numNodes());

  // The oracle configurations need the witness prediction up front.
  ConstructorTable Constructors;
  SolverOptions Base = makeConfig(GraphForm::Inductive, CycleElim::Online);
  Oracle WitnessOracle =
      buildOracle(andersen::makeGenerator(Unit), Constructors, Base);

  const std::pair<GraphForm, CycleElim> Configs[] = {
      {GraphForm::Standard, CycleElim::None},
      {GraphForm::Inductive, CycleElim::None},
      {GraphForm::Standard, CycleElim::Oracle},
      {GraphForm::Inductive, CycleElim::Oracle},
      {GraphForm::Standard, CycleElim::Online},
      {GraphForm::Inductive, CycleElim::Online},
  };

  TextTable Costs({"Config", "Edges", "Work", "Eliminated", "Time(ms)"});
  andersen::AnalysisResult Reference;
  bool HaveReference = false;
  for (auto [Form, Elim] : Configs) {
    SolverOptions Options = makeConfig(Form, Elim);
    andersen::AnalysisResult Result = andersen::runAnalysis(
        Unit, Constructors, Options,
        Elim == CycleElim::Oracle ? &WitnessOracle : nullptr);
    Costs.addRow({Options.configName(), formatGrouped(Result.FinalEdges),
                  formatGrouped(Result.Stats.Work),
                  formatGrouped(Result.Stats.VarsEliminated),
                  formatDouble(Result.AnalysisSeconds * 1e3, 2)});
    if (!HaveReference) {
      Reference = std::move(Result);
      HaveReference = true;
    } else if (Result.PointsTo != Reference.PointsTo) {
      std::fprintf(stderr,
                   "error: %s disagrees with the reference points-to sets\n",
                   Options.configName().c_str());
      return 1;
    }
  }

  std::printf("points-to sets (identical across all six configurations):\n");
  for (const auto &[Location, Targets] : Reference.PointsTo) {
    if (Targets.empty())
      continue;
    std::printf("  %-12s -> {", Location.c_str());
    for (size_t I = 0; I != Targets.size(); ++I)
      std::printf("%s%s", I ? ", " : " ", Targets[I].c_str());
    std::printf(" }\n");
  }
  std::printf("\nper-configuration cost:\n");
  Costs.print();

  // The unification-based baseline of the paper's Section 6 comparison.
  andersen::SteensgaardResult Steens = andersen::runSteensgaard(Unit);
  std::printf("\nSteensgaard (unification) for contrast — faster but "
              "coarser, e.g. gp:\n");
  auto PrintSet = [](const char *Tag,
                     const std::vector<std::string> &Targets) {
    std::printf("  %-10s gp -> {", Tag);
    for (size_t I = 0; I != Targets.size(); ++I)
      std::printf("%s%s", I ? ", " : " ", Targets[I].c_str());
    std::printf(" }\n");
  };
  PrintSet("Andersen:", Reference.pointsTo("gp"));
  PrintSet("Steensgaard:", Steens.pointsTo("gp"));
  return 0;
}
