//===- tests/minic_lexer_test.cpp - MiniC lexer unit tests -----------------===//
//
// Part of the poce project.
//
//===----------------------------------------------------------------------===//

#include "minic/Lexer.h"

#include <gtest/gtest.h>

using namespace poce;
using namespace poce::minic;

namespace {

std::vector<Token> lex(const std::string &Source,
                       unsigned ExpectedErrors = 0) {
  Diagnostics Diags("test.c");
  Lexer L(Source, Diags);
  std::vector<Token> Tokens = L.lexAll();
  EXPECT_EQ(Diags.errorCount(), ExpectedErrors) << Source;
  return Tokens;
}

std::vector<TokenKind> kinds(const std::string &Source) {
  std::vector<TokenKind> Result;
  for (const Token &Tok : lex(Source))
    Result.push_back(Tok.Kind);
  return Result;
}

} // namespace

TEST(LexerTest, EmptyInput) {
  auto Tokens = lex("");
  ASSERT_EQ(Tokens.size(), 1u);
  EXPECT_EQ(Tokens[0].Kind, TokenKind::EndOfFile);
}

TEST(LexerTest, IdentifiersAndKeywords) {
  auto Tokens = lex("int foo while whilex _bar x123");
  EXPECT_EQ(Tokens[0].Kind, TokenKind::KwInt);
  EXPECT_EQ(Tokens[1].Kind, TokenKind::Identifier);
  EXPECT_EQ(Tokens[1].Text, "foo");
  EXPECT_EQ(Tokens[2].Kind, TokenKind::KwWhile);
  EXPECT_EQ(Tokens[3].Kind, TokenKind::Identifier);
  EXPECT_EQ(Tokens[3].Text, "whilex");
  EXPECT_EQ(Tokens[4].Text, "_bar");
  EXPECT_EQ(Tokens[5].Text, "x123");
}

TEST(LexerTest, IntegerLiterals) {
  auto Tokens = lex("0 42 0x1F 017 100u 5L 7UL");
  for (int I = 0; I != 7; ++I)
    EXPECT_EQ(Tokens[I].Kind, TokenKind::IntLiteral) << I;
  EXPECT_EQ(Tokens[2].Text, "0x1F");
  EXPECT_EQ(Tokens[4].Text, "100u");
}

TEST(LexerTest, FloatLiterals) {
  auto Tokens = lex("1.5 2.0e10 3e-2 1.5f 7");
  EXPECT_EQ(Tokens[0].Kind, TokenKind::FloatLiteral);
  EXPECT_EQ(Tokens[1].Kind, TokenKind::FloatLiteral);
  EXPECT_EQ(Tokens[2].Kind, TokenKind::FloatLiteral);
  EXPECT_EQ(Tokens[3].Kind, TokenKind::FloatLiteral);
  EXPECT_EQ(Tokens[4].Kind, TokenKind::IntLiteral);
}

TEST(LexerTest, DotAfterNumberVsMember) {
  // "1.x" should not swallow the dot into the number.
  auto Kinds = kinds("a.b 1 . 2.5");
  EXPECT_EQ(Kinds[0], TokenKind::Identifier);
  EXPECT_EQ(Kinds[1], TokenKind::Dot);
  EXPECT_EQ(Kinds[2], TokenKind::Identifier);
  EXPECT_EQ(Kinds[3], TokenKind::IntLiteral);
  EXPECT_EQ(Kinds[4], TokenKind::Dot);
  EXPECT_EQ(Kinds[5], TokenKind::FloatLiteral);
}

TEST(LexerTest, StringAndCharLiterals) {
  auto Tokens = lex(R"("hello" "with\n" 'a' '\0' '\\')");
  EXPECT_EQ(Tokens[0].Kind, TokenKind::StringLiteral);
  EXPECT_EQ(Tokens[0].Text, "hello");
  EXPECT_EQ(Tokens[1].Text, "with\n");
  EXPECT_EQ(Tokens[2].Kind, TokenKind::CharLiteral);
  EXPECT_EQ(Tokens[2].Text, "a");
  EXPECT_EQ(Tokens[3].Text, std::string(1, '\0'));
  EXPECT_EQ(Tokens[4].Text, "\\");
}

TEST(LexerTest, UnterminatedLiteralsReportErrors) {
  lex("\"abc", 1);
  lex("'a", 1);
  lex("/* no end", 1);
}

TEST(LexerTest, Comments) {
  auto Kinds = kinds("a // line comment\n b /* block\n comment */ c");
  ASSERT_EQ(Kinds.size(), 4u);
  EXPECT_EQ(Kinds[0], TokenKind::Identifier);
  EXPECT_EQ(Kinds[1], TokenKind::Identifier);
  EXPECT_EQ(Kinds[2], TokenKind::Identifier);
}

TEST(LexerTest, PreprocessorLinesSkipped) {
  auto Tokens = lex("#include <stdio.h>\nint x;\n#define FOO 1\nchar c;");
  EXPECT_EQ(Tokens[0].Kind, TokenKind::KwInt);
  EXPECT_EQ(Tokens[3].Kind, TokenKind::KwChar);
}

TEST(LexerTest, MultiCharOperators) {
  auto Kinds = kinds("<<= >>= << >> <= >= == != && || ++ -- -> ... += &=");
  std::vector<TokenKind> Expected = {
      TokenKind::LessLessEqual, TokenKind::GreaterGreaterEqual,
      TokenKind::LessLess,      TokenKind::GreaterGreater,
      TokenKind::LessEqual,     TokenKind::GreaterEqual,
      TokenKind::EqualEqual,    TokenKind::ExclaimEqual,
      TokenKind::AmpAmp,        TokenKind::PipePipe,
      TokenKind::PlusPlus,      TokenKind::MinusMinus,
      TokenKind::Arrow,         TokenKind::Ellipsis,
      TokenKind::PlusEqual,     TokenKind::AmpEqual,
      TokenKind::EndOfFile};
  EXPECT_EQ(Kinds, Expected);
}

TEST(LexerTest, MaximalMunchAmbiguities) {
  auto Kinds = kinds("a+++b a--->x");
  // a ++ + b ; a -- -> x
  std::vector<TokenKind> Expected = {
      TokenKind::Identifier, TokenKind::PlusPlus,   TokenKind::Plus,
      TokenKind::Identifier, TokenKind::Identifier, TokenKind::MinusMinus,
      TokenKind::Arrow,      TokenKind::Identifier, TokenKind::EndOfFile};
  EXPECT_EQ(Kinds, Expected);
}

TEST(LexerTest, SourceLocations) {
  auto Tokens = lex("int x;\n  char y;");
  EXPECT_EQ(Tokens[0].Loc.Line, 1u);
  EXPECT_EQ(Tokens[0].Loc.Column, 1u);
  EXPECT_EQ(Tokens[1].Loc.Column, 5u);
  EXPECT_EQ(Tokens[3].Loc.Line, 2u);
  EXPECT_EQ(Tokens[3].Loc.Column, 3u);
}

TEST(LexerTest, UnexpectedCharacterRecovered) {
  auto Tokens = lex("a @ b", 1);
  EXPECT_EQ(Tokens.size(), 3u); // a, b, EOF: '@' reported and skipped.
}

TEST(LexerTest, AdjacentStringConcatenationIsParserSide) {
  auto Tokens = lex("\"a\" \"b\"");
  EXPECT_EQ(Tokens[0].Kind, TokenKind::StringLiteral);
  EXPECT_EQ(Tokens[1].Kind, TokenKind::StringLiteral);
}
