//===- setcon/ConstraintSolver.h - Inclusion constraint solver --*- C++ -*-===//
//
// Part of the poce project.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The online inclusion-constraint solver at the heart of the paper.
///
/// Constraints L <= R are rewritten to atomic form by the resolution rules
/// R of Figure 1 and stored as edges of a constraint graph whose nodes are
/// variables, sources (constructed terms left of an inclusion), and sinks
/// (constructed terms right of an inclusion). The graph is closed under the
/// local rule
///
///     L in pred(X),  R in succ(X)   ==>   L <= R
///
/// applied eagerly at every edge insertion. Variable-variable edges are
/// represented according to the configured GraphForm:
///
///  * Standard form (SF): X <= Y is always a successor edge of X; sources
///    propagate forward and pred lists hold sources only, so the closed
///    graph contains the least solution explicitly.
///  * Inductive form (IF): X <= Y is a predecessor edge of Y if
///    o(X) < o(Y) under a fixed (random) total order o(.), and a successor
///    edge of X otherwise. The least solution is computed afterwards by
///    LS(Y) = {c | c in pred(Y)} ∪ ⋃_{X in pred(Y)} LS(X).
///
/// With CycleElim::Online, every variable-variable insertion runs the
/// paper's partial cycle detection (Figure 3): a depth-first search along
/// predecessor chains (respectively successor chains restricted to
/// decreasing order for SF) for a chain closing a cycle with the new edge.
/// Detected cycles are collapsed onto the lowest-ordered witness through
/// forwarding pointers (union-find), re-adding the collapsed variables'
/// edges to the witness.
///
/// Set-heavy state — the source/sink term sets attached to each variable
/// and the least solutions — is held in SparseBitVector bitmaps:
/// membership is a word probe, and standard-form source flow uses batched
/// difference propagation (only the delta of newly arrived sources is
/// pushed along successor edges, with word-level unions whose changed flag
/// prunes fully redundant deliveries). See docs/INTERNALS.md, "Set
/// representation and difference propagation".
///
/// With SolverOptions::Threads > 1 the least-solution post-pass runs as a
/// level-parallel wavefront over the collapsed representative graph and
/// solution views are materialized concurrently; solutions and every
/// counter stay bit-identical to the sequential pass (see
/// docs/INTERNALS.md, "Parallel execution layer").
///
//===----------------------------------------------------------------------===//

#ifndef POCE_SETCON_CONSTRAINTSOLVER_H
#define POCE_SETCON_CONSTRAINTSOLVER_H

#include "graph/Digraph.h"
#include "setcon/SolverOptions.h"
#include "setcon/SolverStats.h"
#include "setcon/Term.h"
#include "support/Arena.h"
#include "support/DenseU64Set.h"
#include "support/PRNG.h"
#include "support/SparseBitVector.h"
#include "support/UnionFind.h"

#include <string>
#include <string_view>
#include <vector>

namespace poce {

class Oracle;
class ThreadPool;

namespace serve {
class GraphSnapshot;
} // namespace serve

/// Online solver for one system of inclusion constraints.
class ConstraintSolver {
public:
  /// Creates a solver over \p Terms. If \p WitnessOracle is non-null and
  /// the configuration uses CycleElim::Oracle, fresh-variable requests are
  /// answered with SCC witnesses (perfect cycle elimination).
  ConstraintSolver(TermTable &Terms, SolverOptions Options,
                   const Oracle *WitnessOracle = nullptr);

  //===--------------------------------------------------------------------===
  // Constraint generation interface
  //===--------------------------------------------------------------------===

  /// Creates a fresh set variable (or returns its SCC witness under an
  /// oracle). \p Name is kept for diagnostics.
  VarId freshVar(std::string_view Name);

  /// Returns the expression denoting \p Var.
  ExprId varExpr(VarId Var) { return Terms.var(Var); }

  /// One top-level input constraint, kept as retraction provenance: the
  /// expressions as added plus the canonical text tag of the input line
  /// that produced it (empty for untagged API adds). BaseRoots is the
  /// exact replay set — a fresh solver fed every BaseRoot in order
  /// computes the same solutions — which is what retract() rebuilds the
  /// affected cone from.
  struct BaseRoot {
    ExprId L, R;
    std::string Tag;
  };

  /// Adds the constraint L <= R. Under ClosureMode::Worklist every
  /// consequence is processed eagerly before returning (the solver is
  /// fully online); under ClosureMode::Wave the constraint is deferred
  /// until a solution or graph observer forces ensureClosed().
  ///
  /// \p Tag names the input line this constraint came from (canonical
  /// rendered text); retract(Tag) removes it later. Internal replays
  /// (collapse re-adds, offline replays, retraction rebuilds) never pass
  /// through here, so each accepted input is recorded exactly once.
  void addConstraint(ExprId L, ExprId R, std::string Tag = "");

  /// Removes the first base constraint recorded with \p Tag and repairs
  /// the graph incrementally: the affected cone — every variable whose
  /// state may depend on the retracted constraint — is identified,
  /// reset, and rebuilt by replaying the surviving base constraints that
  /// mention it, while the untouched remainder of the graph stays in
  /// place. Collapsed-cycle classes inside the cone are split back into
  /// singletons unless their witness cycle provably survives among the
  /// direct surviving constraints (offline HVN-merged classes always
  /// split: they have no online witness cycle). Returns false if no base
  /// constraint carries \p Tag or the solver has already aborted.
  ///
  /// Afterwards, solutions are bit-identical to a fresh solve of the
  /// surviving constraints (the correctness oracle the retraction tests
  /// enforce). Per-batch budgets apply to the replay exactly as they do
  /// to addConstraint; on abort the graph is structurally valid but not
  /// a closure — callers roll back, as for an aborted add.
  bool retract(const std::string &Tag);

  /// True if some recorded base constraint carries \p Tag (the dry-run
  /// check servers use before WAL-logging a retraction).
  bool hasRootTag(const std::string &Tag) const;

  /// The recorded base constraints in input order.
  const std::vector<BaseRoot> &baseRoots() const { return BaseRoots; }

  /// Mutation epoch of \p Var's least solution: bumped whenever the
  /// solution bitmap of the representative may have changed (grown by an
  /// add, shrunk or regrown by a retraction). A cached view keyed on
  /// (representative, epoch) is valid iff both still match — unlike a
  /// popcount fingerprint, the epoch cannot collide when a retraction
  /// shrinks and regrows a solution to the same size with different
  /// members. Returns 0 for ids never bumped.
  uint64_t mutationEpoch(VarId Var) const {
    return Var < MutEpochs.size() ? MutEpochs[Var] : 0;
  }

  /// Completes the closure of everything added so far. A no-op in
  /// worklist mode (addConstraint already closed eagerly); in wave mode
  /// this drains the deferred constraints and runs topologically ordered
  /// difference-propagation sweeps to the fixpoint. Every solution query
  /// and graph observer calls this, so callers only need it to bound
  /// *when* the wave work happens (e.g. for timing).
  void ensureClosed();

  TermTable &terms() { return Terms; }
  const TermTable &terms() const { return Terms; }

  //===--------------------------------------------------------------------===
  // Solutions
  //===--------------------------------------------------------------------===

  /// Computes least solutions for all variables. Idempotent; implied by
  /// leastSolution(). Adding constraints afterwards invalidates the cached
  /// solutions, which are recomputed on the next query.
  void finalize();

  /// The least solution of \p Var: the sorted set of constructed source
  /// terms (by ExprId) contained in every solution's value for Var. The
  /// solution is held as a bitvector; the sorted vector view is
  /// materialized lazily per representative and cached until the next
  /// constraint addition.
  const std::vector<ExprId> &leastSolution(VarId Var);

  /// The least solution of \p Var as a bitmap (no materialization).
  const SparseBitVector &leastSolutionBits(VarId Var);

  //===--------------------------------------------------------------------===
  // Concurrent read surface
  //===--------------------------------------------------------------------===
  //
  // The accessors below are genuinely const: no lazy closure, no lazy
  // finalize, no union-find path compression — so a solver that has been
  // fully settled with materializeAllViews() can be shared read-only
  // across threads with no synchronization at all. This is the contract
  // the network layer's published ReadViews rely on (see net/ReadView.h):
  // the writer settles a solver once, publishes it behind a shared_ptr,
  // and any number of reader lanes query it concurrently. Calling them on
  // an unsettled solver is a programming error (asserted).

  /// True once finalize() has settled the solutions (materializeAllViews()
  /// additionally builds every sorted view, which leastSolutionViewConst
  /// asserts per representative): the precondition of the *Const
  /// accessors below.
  bool readShareable() const {
    return Finalized && LSView.size() == numVars();
  }

  /// Representative lookup without path compression (single const hop on
  /// the pre-compressed forwarding chains finalize() leaves behind).
  VarId repConst(VarId Var) const { return Forwarding.findConst(Var); }

  /// leastSolutionBits() without the lazy finalize.
  const SparseBitVector &leastSolutionBitsConst(VarId Var) const;

  /// leastSolution() without the lazy finalize or view materialization;
  /// requires materializeAllViews() to have built every view.
  const std::vector<ExprId> &leastSolutionViewConst(VarId Var) const;

  /// alias query (same representative or intersecting solutions) on the
  /// const surface.
  bool aliasConst(VarId X, VarId Y) const;

  /// Recomputes all least solutions with the pre-bitvector algorithm
  /// (vector concatenation + sort + unique over the adjacency lists).
  /// Retained as an independent oracle for the equivalence tests; the
  /// result is indexed by VarId and filled for live representatives only.
  std::vector<std::vector<ExprId>> referenceLeastSolutions();

  //===--------------------------------------------------------------------===
  // Introspection (tests, benches, oracle construction)
  //===--------------------------------------------------------------------===

  const SolverOptions &options() const { return Options; }
  const SolverStats &stats() const { return Stats; }

  /// Current representative of \p Var's equality class.
  VarId rep(VarId Var) { return Forwarding.find(Var); }

  /// True if \p Var has not been collapsed into another variable.
  bool isLive(VarId Var) const { return Forwarding.isRepresentative(Var); }

  /// Order index o(Var) used by the inductive form and chain searches.
  uint64_t orderOf(VarId Var) const { return Vars[Var].Order; }

  uint32_t numVars() const { return static_cast<uint32_t>(Vars.size()); }
  uint32_t numLiveVars() const;
  const std::string &varName(VarId Var) const { return Vars[Var].Name; }

  /// Total fresh-variable requests (creation indices are 0..N-1).
  uint32_t numCreations() const {
    return static_cast<uint32_t>(VarOfCreation.size());
  }
  /// The variable answering creation index \p CreationIndex.
  VarId varOfCreation(uint32_t CreationIndex) const {
    return VarOfCreation[CreationIndex];
  }
  /// Creation index of variable \p Var.
  uint32_t creationIndexOf(VarId Var) const {
    return Vars[Var].CreationIndex;
  }

  /// With SolverOptions::RecordVarVar, every distinct variable-variable
  /// constraint in creation-index space (used for ground-truth SCCs and
  /// oracle construction).
  const std::vector<std::pair<uint32_t, uint32_t>> &recordedVarVar() const {
    return RecordedVarVar;
  }

  /// The subset of recorded variable-variable constraints that stem
  /// directly from input constraints (the initial graph, pre-closure).
  const std::vector<std::pair<uint32_t, uint32_t>> &
  recordedInitialVarVar() const {
    return RecordedInitialVarVar;
  }

  /// Structural mismatches collected under MismatchPolicy::Collect.
  const std::vector<std::string> &inconsistencies() const {
    return Inconsistencies;
  }

  /// Counts distinct edges in the current graph (live variables only,
  /// entries resolved through forwarding) — the paper's "Edges" column.
  uint64_t countFinalEdges();

  /// Checks the representation invariants the least-solution pass relies
  /// on: in inductive form every live variable's predecessor entries
  /// resolve to strictly lower-ordered representatives; in standard form
  /// predecessor lists contain source terms only. Returns false on the
  /// first violation (the invariant the IF ascending pass asserts).
  bool verifyGraphInvariants();

  /// Projects the current variable-variable graph (edges between live
  /// representatives) for SCC analysis and visualization.
  Digraph varVarDigraph();

  /// Number of variables reachable from \p Var along predecessor chains
  /// (Theorem 5.2 measurement).
  uint64_t countPredChainReachable(VarId Var);

  /// Renders \p Id with variable names for diagnostics.
  std::string exprStr(ExprId Id) const;

  /// Rewrites every live variable's adjacency lists, resolving entries
  /// through forwarding pointers and dropping duplicates and self
  /// references that collapses left behind. Purely an internal
  /// maintenance operation: solutions and counters are unaffected (except
  /// that subsequent redundant-addition counts drop). Returns the number
  /// of entries removed.
  uint64_t compact();

  /// Serializes the current graph as human-readable text: one line per
  /// live variable with its order index and resolved predecessor and
  /// successor entries. Intended for debugging and golden tests.
  std::string dumpGraph();

  /// Finalizes (if needed) and builds every live representative's sorted
  /// solution view, using Options.Threads lanes when > 1. The serve layer
  /// calls this after loading a snapshot so that first queries do not pay
  /// materialization cost; results are identical for any lane count.
  void materializeAllViews();

  /// Overrides the thread-count option. Threads only affects wall-clock
  /// (solutions and counters are bit-identical for any value), so a
  /// snapshot loader may freely retarget it to the serving machine.
  void setThreads(unsigned Threads) { Options.Threads = Threads; }

  /// Overrides the closure-scheduling mode (and the wave layout toggle).
  /// Closes any deferred work first so no queued constraint is stranded
  /// by a Wave -> Worklist switch; the completed closure is the same
  /// under either mode, so snapshot loaders may retarget freely.
  void setClosure(ClosureMode Mode, bool SoA = true) {
    ensureClosed();
    Options.Closure = Mode;
    Options.WaveSoA = SoA;
  }

  /// Overrides the preprocessing mode. Closes any deferred work first, so
  /// on a warm solver (a snapshot loader re-arming options, or a mode
  /// switch after constraints were added) the option is recorded without
  /// re-running the pass: the offline analysis is only sound on a pristine
  /// solver, and incremental adds always take the online path. Arming
  /// Offline on a pristine solver defers the initial bulk load until the
  /// first ensureClosed().
  void setPreprocess(PreprocessMode Mode) {
    ensureClosed();
    Options.Preprocess = Mode;
    PreprocessDone = Mode != PreprocessMode::Offline || numVars() != 0 ||
                     Stats.ConstraintsProcessed != 0;
  }

  /// Overrides the per-batch resource budgets (0 = unlimited each). Like
  /// setThreads, budgets never change what a successful solve computes —
  /// only whether an in-flight batch is aborted — so servers and recovery
  /// paths may retarget them freely after loading a snapshot.
  void setBudgets(uint64_t DeadlineMs, uint64_t MaxEdgeBudget,
                  uint64_t MaxMemBytes) {
    Options.DeadlineMs = DeadlineMs;
    Options.MaxEdgeBudget = MaxEdgeBudget;
    Options.MaxMemBytes = MaxMemBytes;
  }

private:
  /// The snapshot serializer reads and reconstructs the private graph
  /// state (adjacency lists, bitmaps, forwarding pointers) word-for-word.
  friend class serve::GraphSnapshot;

  //===--------------------------------------------------------------------===
  // Graph node references
  //===--------------------------------------------------------------------===

  /// Adjacency entries are 32-bit tagged references: variables carry their
  /// VarId, constructed terms their ExprId with the top bit set.
  static constexpr uint32_t TermTag = 0x80000000U;
  static uint32_t varRef(VarId Var) { return Var; }
  static uint32_t termRef(ExprId Term) { return Term | TermTag; }
  static bool isTermRef(uint32_t Ref) { return Ref & TermTag; }
  static uint32_t payloadOf(uint32_t Ref) { return Ref & ~TermTag; }

  struct VarNode {
    std::string Name;
    uint64_t Order = 0;
    uint32_t CreationIndex = 0;
    /// Adjacency in insertion order (tagged refs). Drives pairing order,
    /// chain searches, collapse re-adding, and dumps.
    std::vector<uint32_t> Preds, Succs;
    /// Dedup sets for variable entries (raw refs as written, which may go
    /// stale after collapses — matching the list contents).
    DenseU64Set PredVarSet, SuccVarSet;
    /// Bitmaps of the term entries (source ExprIds on the pred side, sink
    /// ExprIds on the succ side). Membership, least solutions, and edge
    /// counting all read these instead of hashing.
    SparseBitVector PredTerms, SuccTerms;
    /// Standard-form difference propagation: sources that arrived since
    /// the last flush and still await delivery to the successor edges.
    /// Always a subset of PredTerms; empty outside SF diff-prop.
    SparseBitVector SrcDelta;
    uint32_t VisitEpoch = 0;
  };

  struct WorkItem {
    ExprId Lhs, Rhs;
    bool Derived;
    /// SF difference propagation: flush Vars[Lhs].SrcDelta along the
    /// successor edges instead of resolving Lhs <= Rhs.
    bool FlushDelta;
  };

  //===--------------------------------------------------------------------===
  // Resolution and closure
  //===--------------------------------------------------------------------===

  /// The closure entry point addConstraint delegates to after recording
  /// provenance: defers to PreRoots/RootQueue or drains eagerly. Internal
  /// replays (offline pass, retraction rebuild) call this directly so the
  /// provenance log records each accepted input exactly once.
  void processRoot(ExprId Lhs, ExprId Rhs);

  void drainWorklist();
  void resolve(ExprId Lhs, ExprId Rhs, bool Derived);
  void handleMismatch(ExprId Lhs, ExprId Rhs);

  //===--------------------------------------------------------------------===
  // Offline preprocessing (PreprocessMode::Offline)
  //===--------------------------------------------------------------------===

  /// True while the initial bulk load is still being deferred for the
  /// offline pass: addConstraint parks constraints in PreRoots instead of
  /// processing them.
  bool offlinePending() const {
    return Options.Preprocess == PreprocessMode::Offline && !PreprocessDone;
  }

  /// Runs the offline HVN + Nuutila SCC analysis over the deferred
  /// constraints, applies the resulting merges through the union-find,
  /// and replays the deferred constraints through the normal online path
  /// (per-root worklist drains, or the wave root queue — matching the
  /// schedule addConstraint would have produced). Runs at most once, at
  /// the first ensureClosed().
  void runOfflinePass();

  //===--------------------------------------------------------------------===
  // Wave closure (ClosureMode::Wave)
  //===--------------------------------------------------------------------===

  bool waveMode() const { return Options.Closure == ClosureMode::Wave; }

  /// Wave-mode drain: alternates a structural phase (deferred roots and
  /// derived items through the eager worklist discipline — derived items
  /// LIFO, the next root only when the worklist is empty, so the item
  /// schedule matches worklist mode exactly) with propagation sweeps that
  /// flush the accumulated source deltas in topological order.
  void drainWave();

  /// One topologically ordered sweep over the pending source deltas: a
  /// deterministic min-heap on the cached topological position pops each
  /// variable only after every delta reachable from earlier positions has
  /// landed, so acyclic regions flush exactly once per sweep. Deliveries
  /// that land at or before the cursor (a cycle formed after the order was
  /// cached) count as WaveFallbacks and simply re-enter the heap — the
  /// worklist-granularity fallback the paper's online discipline needs.
  void runWavePass();

  /// (Re)builds the cached topological order: Tarjan-condense the live
  /// variable graph, level the condensation Kahn-style, assign each live
  /// representative a unique position sorted by (level, order index), and
  /// — under Options.WaveSoA — lay the successor rows out as CSR arrays in
  /// position order with targets pre-resolved through forwarding.
  void buildWaveOrder();

  /// Drops the cached order/CSR. Called on any structural change the
  /// cache bakes in: variable creation, variable-variable edge insertion,
  /// collapses, and compact().
  void invalidateWaveOrder() { WaveOrderValid = false; }

  void insertVarVar(VarId Lhs, VarId Rhs, bool Derived);
  void insertSourceVar(ExprId Source, VarId Var, bool Derived);
  void insertVarSink(VarId Var, ExprId Sink, bool Derived);

  /// Inserts NodeRef \p Entry into the pred (or succ) side of live
  /// variable \p Owner, generating closure pairings; returns false if the
  /// edge was already present.
  bool insertPred(VarId Owner, uint32_t Entry, bool Derived);
  bool insertSucc(VarId Owner, uint32_t Entry, bool Derived);

  /// True if this solve batches standard-form source flow.
  bool sfDiffProp() const {
    return Options.Form == GraphForm::Standard && Options.DiffProp;
  }

  /// Schedules a SrcDelta flush for \p Var unless one is already pending.
  void scheduleFlush(VarId Var);

  /// Delivers the pending source delta of \p Var along its successor
  /// edges (batched for variable successors, element-wise resolution for
  /// sink successors).
  void flushDelta(VarId Var);

  /// Batched arrival of the source set \p Batch at live variable
  /// \p Target: word-level union into the target's source bitmap with
  /// work accounting identical to element-wise insertion.
  void deliverSources(VarId Target, const SparseBitVector &Batch);

  ExprId exprOfRef(uint32_t Ref);
  void enqueue(ExprId Lhs, ExprId Rhs, bool Derived);
  void countWork();
  /// Batched equivalent of \p N countWork() calls.
  void countWorkBatch(uint64_t N);

  /// Marks the solve aborted for \p Reason and clears the worklist; the
  /// partially closed graph stays structurally valid but is not a closure
  /// of the input — callers (QueryEngine) roll back to the pre-batch
  /// state.
  void abortSolve(SolverStats::AbortReason Reason);
  /// Captures the batch baselines (start time, start Work) at the top of
  /// a top-level drain.
  void beginBatchBudgets();
  /// Closure-loop budget check: deadline every ~64 items, memory every
  /// ~4096, edge budget every item. Also hosts the `solver.step` (crash)
  /// and `solver.budget` (forced-breach) failpoints.
  void checkBatchBudgets();

  //===--------------------------------------------------------------------===
  // Cycle detection and elimination
  //===--------------------------------------------------------------------===

  /// Chain-search direction/representation variants.
  enum class ChainKind {
    Pred,           ///< IF: predecessor chains.
    Succ,           ///< IF: successor chains.
    SuccDecreasing, ///< SF: successor edges toward lower order.
    SuccIncreasing, ///< SF: successor edges toward higher order.
  };

  /// Runs partial detection for the new constraint Lhs <= Rhs; on success
  /// collapses the cycle and returns true.
  bool detectAndCollapse(VarId Lhs, VarId Rhs);

  /// DFS from \p Start along \p Kind chains looking for \p Target; fills
  /// \p Path with the chain (Start first) when found.
  bool searchChain(VarId Start, VarId Target, ChainKind Kind,
                   std::vector<VarId> &Path);

  /// Collapses the distinct live variables in \p Cycle onto the
  /// lowest-ordered witness and re-enqueues their constraints.
  void collapseCycle(const std::vector<VarId> &Cycle);

  /// Offline pass for CycleElim::Periodic: Tarjan over the current
  /// variable graph, collapsing every non-trivial SCC.
  void runPeriodicPass();

  void recordVarVar(VarId Lhs, VarId Rhs, bool Derived);

  //===--------------------------------------------------------------------===
  // Constraint retraction
  //===--------------------------------------------------------------------===

  /// Appends every variable occurring in \p Expr's term tree to \p Out.
  void collectExprVars(ExprId Expr, std::vector<VarId> &Out) const;

  /// Computes the retraction cone for the removed root L <= R: the set of
  /// variables whose graph state may depend on it. Seeds with the root's
  /// mentioned variables, then closes under (a) class wholeness, (b)
  /// forward flow along variable-variable edges, (c) variables occurring
  /// in terms a cone variable holds, and (d) variables holding terms that
  /// mention a cone variable (their pairings re-derive the cone's edges).
  /// On return \p ConeVar flags every affected raw VarId and
  /// \p MentionsCone flags every ExprId whose tree mentions one.
  void computeRetractionCone(ExprId RootL, ExprId RootR,
                             std::vector<uint8_t> &ConeVar,
                             std::vector<uint8_t> &MentionsCone);

  /// True if the surviving direct variable-variable base constraints
  /// still strongly connect every member of the collapsed class listed
  /// in \p Members — the cheap certificate that the class's witness
  /// cycle survives the retraction and the collapse may stay.
  bool classCycleSurvives(const std::vector<VarId> &Members);

  /// Marks the least-solution epoch of \p Var (raw id) as changed.
  void bumpEpoch(VarId Var) {
    if (MutEpochs.size() < Vars.size())
      MutEpochs.resize(Vars.size(), 0);
    ++MutEpochs[Var];
  }

  //===--------------------------------------------------------------------===
  // Least solution
  //===--------------------------------------------------------------------===

  void computeLeastSolutionIF();
  /// Wavefront evaluation of the same recurrence: Kahn levels over the
  /// collapsed (acyclic) representative graph, then per-level parallel
  /// word-level unions — each level's variables only read solutions
  /// completed by earlier levels and only write their own bitmap.
  /// Produces bit-identical LSBits and counters to the sequential pass.
  void computeLeastSolutionIFParallel(ThreadPool &Pool);
  /// Builds every live representative's sorted solution view concurrently
  /// (the per-variable work standard form leaves for query time; the
  /// parallel finalize front-loads it for both forms).
  void materializeAllSolutions(ThreadPool &Pool);
  void invalidateSolutions();
  /// Builds (or returns) the cached sorted-vector view of \p Rep's least
  /// solution bitmap.
  const std::vector<ExprId> &materializeLS(VarId Rep);

  TermTable &Terms;
  SolverOptions Options;
  const Oracle *WitnessOracle;
  PRNG OrderRng;

  std::vector<VarNode> Vars;
  UnionFind Forwarding;
  std::vector<VarId> VarOfCreation;

  /// Retraction provenance: every top-level input constraint in input
  /// order (see BaseRoot). Not touched by internal replays.
  std::vector<BaseRoot> BaseRoots;
  /// Per raw VarId least-solution mutation epochs (see mutationEpoch),
  /// lazily grown by bumpEpoch. Standard form bumps eagerly at every
  /// source-bitmap growth (PredTerms is the solution); inductive form
  /// bumps in finalize() by comparing fresh LSBits against PrevLSBits,
  /// because an eager bump at an upstream variable cannot see which
  /// downstream solutions its sources reach. Both retraction paths bump
  /// every cone member explicitly (a shrink produces no growth events).
  /// Never serialized: a snapshot reload conservatively restarts at 0 and
  /// the query cache restarts empty with it.
  std::vector<uint64_t> MutEpochs;
  /// Inductive form: the LSBits of the last finalized state, moved aside
  /// by invalidateSolutions so the next finalize() can diff solutions and
  /// bump the epochs of exactly the variables that changed.
  std::vector<SparseBitVector> PrevLSBits;

  std::vector<WorkItem> Worklist;
  bool Draining = false;
  /// Offline preprocessing: input constraints deferred by addConstraint
  /// until the first ensureClosed() runs the pass and replays them.
  std::vector<std::pair<ExprId, ExprId>> PreRoots;
  /// False only while an armed offline pass still awaits its first
  /// closure; set (and kept) true once the pass ran, so every later
  /// constraint takes the online path.
  bool PreprocessDone = true;
  uint64_t NextPeriodicWork = 0;
  uint32_t CurrentEpoch = 0;

  /// Wave mode: input constraints deferred by addConstraint, consumed
  /// FIFO (input order) by drainWave.
  std::vector<WorkItem> RootQueue;
  /// Wave mode: variables whose SrcDelta went empty -> nonempty and await
  /// a flush (the wave-mode stand-in for FlushDelta worklist items).
  std::vector<VarId> PendingWave;
  /// Heap scratch of runWavePass, keyed by WaveIndex.
  std::vector<VarId> WaveHeap;
  /// Cached topological order of the live variable graph. WaveLevel is the
  /// Kahn level of the variable's condensation component; WaveIndex a
  /// unique position sorted by (level, order index), UINT32_MAX for dead
  /// variables. Valid only while WaveOrderValid.
  bool WaveOrderValid = false;
  std::vector<uint32_t> WaveLevel;
  std::vector<uint32_t> WaveIndex;
  /// CSR successor rows in WaveIndex position order (Options.WaveSoA):
  /// row for position P is WaveEdges[WaveRowStart[P] .. WaveRowStart[P+1])
  /// of tagged refs with variable targets pre-resolved to representatives.
  /// Arena-backed; rebuilt with the order, reset() reuses the slabs.
  Arena WaveArena{1 << 16};
  uint32_t *WaveRowStart = nullptr;
  uint32_t *WaveEdges = nullptr;
  size_t WaveNumPositions = 0;
  /// Sweep state: position of the variable being flushed, so deliveries
  /// against the order can be counted as fallbacks.
  bool InWavePass = false;
  uint32_t WaveCursor = 0;

  /// Per-batch budget baselines, valid while Draining. BatchDeadlineNs is
  /// an absolute steady-clock deadline in nanoseconds (0 = none);
  /// BatchStartWork anchors the MaxEdgeBudget delta; BatchTicks throttles
  /// the clock and /proc reads.
  uint64_t BatchDeadlineNs = 0;
  uint64_t BatchStartWork = 0;
  uint64_t BatchTicks = 0;

  /// Scratch bitmaps reused by flushDelta/insertSucc to avoid per-flush
  /// allocations.
  SparseBitVector DeltaScratch, OldSrcScratch;

  SparseBitVector SeenSources, SeenSinks;
  DenseU64Set RecordedSet, RecordedInitialSet;
  std::vector<std::pair<uint32_t, uint32_t>> RecordedVarVar;
  std::vector<std::pair<uint32_t, uint32_t>> RecordedInitialVarVar;
  std::vector<std::string> Inconsistencies;

  bool Finalized = false;
  /// Inductive-form least solutions per VarId (unused entries empty).
  /// Standard form reads PredTerms directly instead.
  std::vector<SparseBitVector> LSBits;
  /// Lazily materialized sorted views of the solution bitmaps.
  std::vector<std::vector<ExprId>> LSView;
  std::vector<uint8_t> LSViewBuilt;

  SolverStats Stats;
};

} // namespace poce

#endif // POCE_SETCON_CONSTRAINTSOLVER_H
