//===- support/Statistic.h - Named counters ---------------------*- C++ -*-===//
//
// Part of the poce project.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Lightweight named statistics counters in the spirit of llvm::Statistic.
/// A Statistic registers itself in a global registry on first use; tools
/// can dump all counters with printAllStatistics(). Counters are intended
/// for single-threaded use, matching the solver.
///
//===----------------------------------------------------------------------===//

#ifndef POCE_SUPPORT_STATISTIC_H
#define POCE_SUPPORT_STATISTIC_H

#include <cstdint>
#include <cstdio>

namespace poce {

/// A named monotonic counter. Define one per interesting event:
/// \code
///   static Statistic NumCollapsed("setcon", "Variables collapsed");
///   ++NumCollapsed;
/// \endcode
class Statistic {
public:
  Statistic(const char *Component, const char *Description);

  Statistic &operator++() {
    ++Value;
    return *this;
  }
  Statistic &operator+=(uint64_t N) {
    Value += N;
    return *this;
  }
  uint64_t value() const { return Value; }
  void reset() { Value = 0; }

  const char *component() const { return Component; }
  const char *description() const { return Description; }

private:
  friend void printAllStatistics(std::FILE *Out);
  friend void resetAllStatistics();

  const char *Component;
  const char *Description;
  uint64_t Value = 0;
  Statistic *Next = nullptr;
};

/// Prints every registered counter to \p Out (default stderr).
void printAllStatistics(std::FILE *Out = stderr);

/// Zeroes every registered counter; used between benchmark runs.
void resetAllStatistics();

} // namespace poce

#endif // POCE_SUPPORT_STATISTIC_H
