# Empty dependencies file for poce_model.
# This may be replaced when dependencies are built.
