//===- support/Status.h - Recoverable error values --------------*- C++ -*-===//
//
// Part of the poce project.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Status and Expected<T>: recoverable errors as values.
///
/// Everything a production server can hit at runtime — malformed input,
/// unwritable paths, corrupt snapshots, exhausted budgets — must surface
/// as a returned Status the caller can handle, not a process exit.
/// reportFatalError/poce_unreachable remain only for true invariant
/// violations (bugs), never for bad input or bad environment.
///
/// A Status carries a machine-readable ErrorCode (whose snake_case name
/// doubles as the wire code in scserved's `err <code> <detail>` replies)
/// plus a human-readable message. withContext() prepends caller context
/// as the error propagates up, so the final message reads outermost to
/// innermost like a one-line backtrace.
///
//===----------------------------------------------------------------------===//

#ifndef POCE_SUPPORT_STATUS_H
#define POCE_SUPPORT_STATUS_H

#include <ostream>
#include <string>
#include <utility>

namespace poce {

/// Machine-readable failure taxonomy. Names (errorCodeName) are stable:
/// they are the wire codes of the serve protocol.
enum class ErrorCode : uint8_t {
  Ok = 0,
  InvalidArgument,    ///< Caller passed something structurally wrong.
  ParseError,         ///< Text input failed to parse (constraint lines).
  IoError,            ///< open/read/write/fsync/rename failed.
  Corruption,         ///< Stored bytes fail checksum/bounds/invariants.
  VersionSkew,        ///< Valid container, unsupported format version.
  WalVersion,         ///< WAL format newer than this binary understands.
  NotFound,           ///< Named entity does not exist.
  TooLarge,           ///< Request exceeds a configured size limit.
  BudgetExceeded,     ///< Deadline/edge/memory budget breached mid-solve.
  FailedPrecondition, ///< Operation not legal in the current state.
  ReadOnly,           ///< Write refused: this server is a follower.
  Timeout,            ///< A blocking call hit its configured time limit.
  Internal,           ///< Invariant held by code, not input, was violated.
};

inline const char *errorCodeName(ErrorCode Code) {
  switch (Code) {
  case ErrorCode::Ok:
    return "ok";
  case ErrorCode::InvalidArgument:
    return "invalid_argument";
  case ErrorCode::ParseError:
    return "parse_error";
  case ErrorCode::IoError:
    return "io_error";
  case ErrorCode::Corruption:
    return "corruption";
  case ErrorCode::VersionSkew:
    return "version_skew";
  case ErrorCode::WalVersion:
    return "wal_version";
  case ErrorCode::NotFound:
    return "not_found";
  case ErrorCode::TooLarge:
    return "too_large";
  case ErrorCode::BudgetExceeded:
    return "budget_exceeded";
  case ErrorCode::FailedPrecondition:
    return "failed_precondition";
  case ErrorCode::ReadOnly:
    return "read_only";
  case ErrorCode::Timeout:
    return "timeout";
  case ErrorCode::Internal:
    return "internal";
  }
  return "internal";
}

class Status {
public:
  /// Default-constructed Status is success.
  Status() = default;

  static Status error(ErrorCode Code, std::string Message) {
    Status St;
    St.Code_ = Code == ErrorCode::Ok ? ErrorCode::Internal : Code;
    St.Message_ = std::move(Message);
    return St;
  }

  bool ok() const { return Code_ == ErrorCode::Ok; }
  explicit operator bool() const { return ok(); }

  ErrorCode code() const { return Code_; }
  const std::string &message() const { return Message_; }

  /// Returns a copy with \p What prepended to the message, keeping the
  /// code. No-op on success.
  Status withContext(const std::string &What) const {
    if (ok())
      return *this;
    return error(Code_, What + ": " + Message_);
  }

  /// "<code>: <message>" for logs, or "ok".
  std::string toString() const {
    if (ok())
      return "ok";
    return std::string(errorCodeName(Code_)) + ": " + Message_;
  }

  /// "<code> <message>" — the serve protocol's `err` reply body.
  std::string wire() const {
    if (ok())
      return "ok";
    return std::string(errorCodeName(Code_)) + " " + Message_;
  }

private:
  ErrorCode Code_ = ErrorCode::Ok;
  std::string Message_;
};

inline std::ostream &operator<<(std::ostream &OS, const Status &St) {
  return OS << St.toString();
}

/// A value or the Status explaining why there is none. Minimal variant:
/// value() must not be called on a failed Expected (checked, fatal).
template <typename T> class Expected {
public:
  Expected(T Value) : Value_(std::move(Value)), HasValue_(true) {}

  Expected(Status St) : Status_(std::move(St)), HasValue_(false) {
    if (Status_.ok())
      Status_ = Status::error(ErrorCode::Internal,
                              "Expected constructed from ok Status");
  }

  bool ok() const { return HasValue_; }
  explicit operator bool() const { return ok(); }

  /// The error (success Status when a value is present).
  const Status &status() const { return Status_; }

  T &value() { return Value_; }
  const T &value() const { return Value_; }
  T &operator*() { return Value_; }
  const T &operator*() const { return Value_; }
  T *operator->() { return &Value_; }
  const T *operator->() const { return &Value_; }

private:
  T Value_{};
  Status Status_;
  bool HasValue_;
};

} // namespace poce

#endif // POCE_SUPPORT_STATUS_H
