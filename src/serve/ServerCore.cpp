//===- serve/ServerCore.cpp - Writer-side serving pipeline ----------------===//
//
// Part of the poce project.
//
//===----------------------------------------------------------------------===//

#include "serve/ServerCore.h"

#include "serve/GraphSnapshot.h"
#include "support/ByteStream.h"
#include "support/FailPoint.h"
#include "support/Trace.h"

#include <algorithm>
#include <cstdio>
#include <sstream>

using namespace poce;
using namespace poce::serve;

Request poce::serve::parseRequest(const std::string &Line) {
  Request Req;
  std::istringstream In(Line);
  In >> Req.Verb >> Req.Arg1 >> Req.Arg2;
  size_t VerbEnd = Line.find(Req.Verb);
  if (VerbEnd != std::string::npos) {
    size_t RestAt = VerbEnd + Req.Verb.size();
    while (RestAt < Line.size() && Line[RestAt] == ' ')
      ++RestAt;
    Req.Rest = Line.substr(RestAt);
  }
  return Req;
}

ServerCore::ServerCore(SolverBundle Bundle, size_t CacheCapacity,
                       ServerCoreConfig InConfig)
    : Engine(std::move(Bundle), CacheCapacity), Config(std::move(InConfig)) {}

Status ServerCore::recover(uint64_t SnapBase) {
  if (walArmed()) {
    Expected<WalContents> Recovered = WriteAheadLog::replay(Config.WalPath);
    if (!Recovered.ok())
      return Recovered.status();
    if (!Recovered->HeaderIntact) {
      std::fprintf(stderr,
                   "scserved: note: WAL '%s' has a torn header (crash "
                   "during creation); no record was acknowledged, "
                   "starting it over\n",
                   Config.WalPath.c_str());
    } else if (Recovered->BaseId != SnapBase && !Recovered->Lines.empty()) {
      // A checkpoint crashed between the snapshot rename and the WAL
      // reset: every record in the log is already contained in the
      // renamed snapshot. Replaying them would double-apply (and fail on
      // re-declarations), so skip the log and re-stamp it below.
      WalSkipped = Recovered->Lines.size();
      std::fprintf(stderr,
                   "scserved: note: WAL '%s' is stale (base id %llx does "
                   "not match the snapshot's %llx; an interrupted "
                   "checkpoint left it behind); skipping %llu line(s) "
                   "already contained in the snapshot\n",
                   Config.WalPath.c_str(),
                   static_cast<unsigned long long>(Recovered->BaseId),
                   static_cast<unsigned long long>(SnapBase),
                   static_cast<unsigned long long>(WalSkipped));
    } else {
      // Budgets off for replay: each line fit its budget when first
      // accepted, and a snapshot saved with budgets armed must not
      // re-abort here.
      Engine.solver().setBudgets(0, 0, 0);
      constexpr size_t PrefixLen = sizeof(WalRetractPrefix) - 1;
      for (const std::string &ReplayLine : Recovered->Lines) {
        // A `!retract <line>` record undoes the earlier record whose
        // payload is <line>; everything else is an accepted constraint.
        Status Applied =
            ReplayLine.compare(0, PrefixLen, WalRetractPrefix) == 0
                ? Engine.retractConstraint(ReplayLine.substr(PrefixLen))
                : Engine.addConstraint(ReplayLine);
        if (!Applied)
          return Applied.withContext("WAL replay failed (log does not "
                                     "extend this snapshot?)");
        ++WalReplayed;
      }
    }
    Status Opened = Wal.open(Config.WalPath, SnapBase);
    if (!Opened)
      return Opened;
  }
  Engine.solver().setBudgets(Config.DeadlineMs, Config.EdgeBudget,
                             Config.MaxMemBytes);
  // Budgets configured after recovery apply to every subsequent add; the
  // rollback base must reflect the recovered (not the loaded) graph.
  if (WalReplayed) {
    Status Checkpointed = Engine.checkpointBase();
    if (!Checkpointed)
      return Checkpointed;
  }
  return Status();
}

uint64_t ServerCore::snapshotFileChecksum(const std::string &Path) {
  std::vector<uint8_t> Bytes;
  std::string Error;
  if (!readFileBytes(Path, Bytes, &Error))
    return 0;
  return GraphSnapshot::payloadChecksum(Bytes.data(), Bytes.size());
}

Status ServerCore::serializeState(std::vector<uint8_t> &Bytes,
                                  uint64_t *ChecksumOut) {
  Bytes.clear();
  Status Serialized = GraphSnapshot::serialize(Engine.solver(), Bytes);
  if (!Serialized)
    return Serialized;
  if (ChecksumOut)
    *ChecksumOut = GraphSnapshot::payloadChecksum(Bytes.data(), Bytes.size());
  return Status();
}

uint64_t ServerCore::canonicalChecksum() {
  const ConstraintSolver &Solver = Engine.solver();
  uint32_t NumVars = Solver.numVars();
  std::vector<std::string> Lines;
  Lines.reserve(NumVars);
  for (uint32_t V = 0; V != NumVars; ++V) {
    // Copy before sorting: ls() hands back a reference into the view
    // cache, and item order follows internal term ids, which legitimately
    // differ across a serialize/load round trip.
    std::vector<std::string> Items = Engine.ls(V);
    std::sort(Items.begin(), Items.end());
    std::string Line = Solver.varName(V);
    Line += '=';
    for (const std::string &Item : Items) {
      Line += Item;
      Line += ',';
    }
    Lines.push_back(std::move(Line));
  }
  // Sorted so the hash is independent of variable-id assignment order.
  std::sort(Lines.begin(), Lines.end());
  uint64_t Hash = 14695981039346656037ULL;
  for (const std::string &Line : Lines) {
    Hash = fnv1a64(reinterpret_cast<const uint8_t *>(Line.data()),
                   Line.size(), Hash);
    uint8_t Sep = '\n';
    Hash = fnv1a64(&Sep, 1, Hash);
  }
  return Hash;
}

Status ServerCore::saveSnapshot(const std::string &Path, size_t &SizeOut,
                                uint64_t &ChecksumOut) {
  if (FailPoint::hit("snapshot.save") != FailPoint::Mode::Off)
    return FailPoint::injectedError("snapshot.save");
  std::vector<uint8_t> Bytes;
  Status Serialized = GraphSnapshot::serialize(Engine.solver(), Bytes);
  if (!Serialized)
    return Serialized;
  SizeOut = Bytes.size();
  ChecksumOut = GraphSnapshot::payloadChecksum(Bytes.data(), Bytes.size());
  return writeFileAtomic(Path, Bytes);
}

void ServerCore::disableWal(const std::string &Why) {
  if (!Wal.isOpen())
    return;
  std::fprintf(stderr,
               "scserved: disabling WAL '%s' (%s); add/checkpoint are "
               "refused until restart, which recovers cleanly\n",
               Config.WalPath.c_str(), Why.c_str());
  Wal.close();
}

Status ServerCore::doCheckpoint(const std::string &Path) {
  if (walDegraded())
    return Status::error(ErrorCode::FailedPrecondition,
                         "WAL is disabled after a failed checkpoint; "
                         "restart to recover");
  const uint64_t StartUs = trace::nowMicros();
  size_t Bytes = 0;
  uint64_t NewBase = 0;
  Status Saved = saveSnapshot(Path, Bytes, NewBase);
  if (!Saved) {
    // writeFileAtomic can fail after the rename (directory fsync): if
    // the new snapshot actually landed, the WAL no longer extends the
    // base under our feet.
    if (NewBase != 0 && snapshotFileChecksum(Path) == NewBase)
      disableWal("the new snapshot was renamed into place but the "
                 "checkpoint failed");
    return Saved.withContext("checkpoint");
  }
  // The new snapshot is durable; the crash window between here and the
  // WAL reset is covered by the base id (recovery sees the mismatch
  // and skips the stale log), and the failpoint lets the harness land
  // exactly inside it.
  Status St;
  if (FailPoint::hit("checkpoint.before_wal_reset") != FailPoint::Mode::Off)
    St = FailPoint::injectedError("checkpoint.before_wal_reset");
  if (St.ok() && Wal.isOpen())
    St = Wal.reset(NewBase);
  if (!St.ok()) {
    disableWal("the snapshot was checkpointed but the WAL reset "
               "failed: " +
               St.message());
    return St.withContext("checkpoint");
  }
  if (Wal.isOpen() && Repl.OnRebase)
    Repl.OnRebase(NewBase);
  // A checkpointBase failure is benign for durability: the engine just
  // keeps its older rollback base plus the full journal, which still
  // restores the current state; the WAL stays live.
  Status Based = Engine.checkpointBase();
  if (!Based)
    return Based.withContext("checkpoint");
  ++Checkpoints;
  AddsSinceCheckpoint = 0;
  telemetry::checkpointHistogram().record(trace::nowMicros() - StartUs);
  trace::complete("serve.checkpoint", StartUs);
  return Status();
}

Status ServerCore::checkpoint(const std::string &Path) {
  std::string Target = Path.empty() ? Config.SnapshotPath : Path;
  if (Target.empty())
    return Status::error(ErrorCode::InvalidArgument,
                         "checkpoint needs a path (no --snapshot)");
  return doCheckpoint(Target);
}

Expected<uint64_t> ServerCore::save(const std::string &Path) {
  size_t Bytes = 0;
  uint64_t Checksum = 0;
  Status Saved = saveSnapshot(Path, Bytes, Checksum);
  if (!Saved)
    return Saved;
  // Saving over the startup snapshot (under whatever spelling of its
  // path) makes the open WAL stale: every record is contained in the
  // file just written. Promote the save to a checkpoint so restart
  // and the live server agree on what the WAL extends.
  if (Wal.isOpen() && !Config.SnapshotPath.empty() &&
      snapshotFileChecksum(Config.SnapshotPath) == Checksum) {
    Status Reset = Wal.reset(Checksum);
    if (!Reset) {
      disableWal("the save replaced the startup snapshot but the "
                 "WAL reset failed: " +
                 Reset.message());
      return Reset.withContext("save");
    }
    if (Repl.OnRebase)
      Repl.OnRebase(Checksum);
    Status Based = Engine.checkpointBase();
    if (!Based)
      return Based.withContext("save");
    ++Checkpoints;
    AddsSinceCheckpoint = 0;
  }
  return static_cast<uint64_t>(Bytes);
}

Status ServerCore::addLine(const std::string &Line) {
  if (Line.empty())
    return Status::error(ErrorCode::InvalidArgument,
                         "add needs a constraint-file line");
  if (walDegraded())
    return Status::error(ErrorCode::FailedPrecondition,
                         "WAL is disabled after a failed "
                         "checkpoint; restart to recover");
  // Validation before durability, durability before application: a
  // line reaches the WAL only after a dry-run parse proves it would
  // apply cleanly (so a crash right after the fsync can never leave
  // an unreplayable line durable), and once the append returns, a
  // crash at any later point leaves the line in the WAL, so
  // `ok added` implies it survives recovery. The only post-append
  // rejection left is a budget breach, whose line is erased again so
  // the log only ever contains accepted lines.
  Status Checked = Engine.checkConstraint(Line);
  if (!Checked)
    return Checked;
  uint64_t WalMark = Wal.sizeBytes();
  if (Wal.isOpen()) {
    Status Logged = Wal.append(Line);
    if (!Logged)
      return Logged;
  }
  Status Added = Engine.addConstraint(Line);
  if (!Added) {
    if (Wal.isOpen()) {
      Status Undone = Wal.truncateTo(WalMark);
      if (!Undone)
        return Undone.withContext("unlogging rejected add");
    }
    return Added;
  }
  ++AddsSinceCheckpoint;
  if (Wal.isOpen() && Repl.OnRecord)
    Repl.OnRecord(Wal.records() - 1, Line);
  if (Config.CheckpointEvery > 0 &&
      AddsSinceCheckpoint >= Config.CheckpointEvery) {
    Status Done = doCheckpoint(Config.SnapshotPath);
    if (!Done)
      // The add itself succeeded and is durable; surface the
      // checkpoint failure without un-acking it.
      std::fprintf(stderr, "scserved: auto-checkpoint failed: %s\n",
                   Done.toString().c_str());
  }
  return Status();
}

Status ServerCore::retractLine(const std::string &Line) {
  if (Line.empty())
    return Status::error(ErrorCode::InvalidArgument,
                         "retract needs a constraint line");
  if (walDegraded())
    return Status::error(ErrorCode::FailedPrecondition,
                         "WAL is disabled after a failed "
                         "checkpoint; restart to recover");
  // Same contract as addLine: validate (canonicalize + match a live
  // constraint) before durability, durability before application. The
  // WAL carries the canonical text so recovery retracts exactly the
  // tag the solver recorded, however the client spelled the line.
  std::string Canon;
  Status Checked = Engine.checkRetract(Line, &Canon);
  if (!Checked)
    return Checked;
  const std::string Record = WalRetractPrefix + Canon;
  uint64_t WalMark = Wal.sizeBytes();
  if (Wal.isOpen()) {
    Status Logged = Wal.append(Record);
    if (!Logged)
      return Logged;
  }
  Status Done = Engine.retractConstraint(Canon);
  if (!Done) {
    if (Wal.isOpen()) {
      Status Undone = Wal.truncateTo(WalMark);
      if (!Undone)
        return Undone.withContext("unlogging rejected retraction");
    }
    return Done;
  }
  ++AddsSinceCheckpoint;
  if (Wal.isOpen() && Repl.OnRecord)
    Repl.OnRecord(Wal.records() - 1, Record);
  if (Config.CheckpointEvery > 0 &&
      AddsSinceCheckpoint >= Config.CheckpointEvery) {
    Status Saved = doCheckpoint(Config.SnapshotPath);
    if (!Saved)
      std::fprintf(stderr, "scserved: auto-checkpoint failed: %s\n",
                   Saved.toString().c_str());
  }
  return Status();
}

Status ServerCore::buildReplicateStream(uint64_t FollowerBase,
                                        uint64_t FollowerSeq,
                                        std::string &Reply, uint64_t &NextSeq,
                                        bool &SnapshotShipped) {
  SnapshotShipped = false;
  if (!walArmed() || Config.SnapshotPath.empty())
    return Status::error(ErrorCode::FailedPrecondition,
                         "replication needs --snapshot and --wal on the "
                         "primary");
  if (walDegraded())
    return Status::error(ErrorCode::FailedPrecondition,
                         "WAL is disabled after a failed checkpoint; "
                         "restart to recover");
  if (FailPoint::hit("repl.ship") != FailPoint::Mode::Off)
    return FailPoint::injectedError("repl.ship");
  // The disk snapshot must embody the WAL's base id before either arm
  // makes sense: a fresh .scs start has no snapshot file yet, and a
  // replaced file would ship bytes the log does not extend. A checkpoint
  // brings the pair in sync atomically (and re-stamps the base id, which
  // followers see as a rebase). Base id 0 always checkpoints first: it
  // stamps a fresh-.scs base, not a content identity, so two servers
  // both at 0 could still hold arbitrarily different states — a
  // follower's (0, 0) cursor must never read as a matching tail.
  if (Wal.baseId() == 0 ||
      snapshotFileChecksum(Config.SnapshotPath) != Wal.baseId()) {
    Status Synced = doCheckpoint(Config.SnapshotPath);
    if (!Synced)
      return Synced.withContext("replicate: syncing the disk snapshot");
  }
  const uint64_t Base = Wal.baseId();
  const uint64_t Records = Wal.records();
  const bool Tail = FollowerBase == Base && FollowerSeq <= Records;
  const uint64_t From = Tail ? FollowerSeq : 0;

  std::vector<std::string> Lines;
  if (Records > From) {
    // The live WriteAheadLog keeps offsets, not payloads; its own file is
    // the canonical copy (every record is written before it is acked).
    Expected<WalContents> Contents = WriteAheadLog::replay(Config.WalPath);
    if (!Contents.ok())
      return Contents.status().withContext("replicate: reading the live "
                                           "WAL");
    if (Contents->BaseId != Base || Contents->Lines.size() < Records)
      return Status::error(ErrorCode::Internal,
                           "live WAL disagrees with its own file");
    Lines.assign(Contents->Lines.begin() + static_cast<ptrdiff_t>(From),
                 Contents->Lines.begin() + static_cast<ptrdiff_t>(Records));
  }

  if (Tail) {
    Reply = "ok tail " + hexId(Base) + " " + std::to_string(From);
  } else {
    std::vector<uint8_t> Bytes;
    std::string Error;
    if (!readFileBytes(Config.SnapshotPath, Bytes, &Error))
      return Status::error(ErrorCode::IoError,
                           "replicate: reading the disk snapshot: " + Error);
    if (GraphSnapshot::payloadChecksum(Bytes.data(), Bytes.size()) != Base)
      return Status::error(ErrorCode::Internal,
                           "disk snapshot changed under the replicate "
                           "handshake");
    Reply = "ok snapshot " + hexId(Base) + " " + std::to_string(Bytes.size());
    Reply += '\n';
    Reply.append(reinterpret_cast<const char *>(Bytes.data()), Bytes.size());
    SnapshotShipped = true;
  }
  for (size_t I = 0; I != Lines.size(); ++I)
    Reply += "\nr " + std::to_string(From + I) + " " + Lines[I];
  NextSeq = Records;
  return Status();
}

Status ServerCore::applyReplicated(const std::string &Line) {
  if (Line.empty())
    return Status::error(ErrorCode::InvalidArgument,
                         "replicated record is empty");
  if (!Wal.isOpen())
    return Status::error(ErrorCode::FailedPrecondition,
                         "follower WAL is not open");
  if (FailPoint::hit("repl.apply") != FailPoint::Mode::Off)
    return FailPoint::injectedError("repl.apply");
  // Same pipeline as addLine/retractLine — validate, append + fsync,
  // apply — except budgets are off around the apply: the record fit the
  // primary's budgets when it was first accepted, and a follower that
  // re-aborts it has diverged, not been protected.
  constexpr size_t PrefixLen = sizeof(WalRetractPrefix) - 1;
  const bool IsRetract = Line.compare(0, PrefixLen, WalRetractPrefix) == 0;
  const std::string Payload = IsRetract ? Line.substr(PrefixLen) : Line;
  Status Checked = IsRetract ? Engine.checkRetract(Payload)
                             : Engine.checkConstraint(Payload);
  if (!Checked)
    return Checked.withContext("replicated line rejected");
  uint64_t WalMark = Wal.sizeBytes();
  Status Logged = Wal.append(Line);
  if (!Logged)
    return Logged;
  Engine.solver().setBudgets(0, 0, 0);
  Status Added = IsRetract ? Engine.retractConstraint(Payload)
                           : Engine.addConstraint(Payload);
  Engine.solver().setBudgets(Config.DeadlineMs, Config.EdgeBudget,
                             Config.MaxMemBytes);
  if (!Added) {
    Status Undone = Wal.truncateTo(WalMark);
    if (!Undone)
      return Undone.withContext("unlogging rejected replicated line");
    return Added;
  }
  ++AddsSinceCheckpoint;
  if (Repl.OnRecord)
    Repl.OnRecord(Wal.records() - 1, Line);
  return Status();
}

Status ServerCore::replicaRebase(uint64_t ExpectedBase) {
  Status Done = doCheckpoint(Config.SnapshotPath);
  if (!Done)
    return Done.withContext("follower checkpoint at rebase");
  if (Wal.baseId() != ExpectedBase)
    return Status::error(ErrorCode::Corruption,
                         "diverged from the primary: local checkpoint "
                         "base " +
                             hexId(Wal.baseId()) +
                             " != announced base " + hexId(ExpectedBase));
  return Status();
}

Status ServerCore::rebootstrap(const std::vector<uint8_t> &Bytes,
                               uint64_t Base) {
  if (!walArmed() || Config.SnapshotPath.empty())
    return Status::error(ErrorCode::FailedPrecondition,
                         "bootstrap needs --snapshot and --wal");
  if (GraphSnapshot::payloadChecksum(Bytes.data(), Bytes.size()) != Base)
    return Status::error(ErrorCode::Corruption,
                         "shipped snapshot does not match the advertised "
                         "base id " +
                             hexId(Base));
  Status Reset = Engine.resetFromSnapshot(Bytes.data(), Bytes.size());
  if (!Reset)
    return Reset.withContext("bootstrap");
  Status Written = writeFileAtomic(Config.SnapshotPath, Bytes);
  if (!Written)
    return Written.withContext("persisting the bootstrap snapshot");
  Wal.close();
  Status Opened = Wal.open(Config.WalPath, Base);
  if (!Opened)
    return Opened.withContext("re-opening the follower WAL");
  // open() keeps records whose base happens to match; they predate this
  // bootstrap, so truncate to an empty log at the new base.
  Status Stamped = Wal.reset(Base);
  if (!Stamped)
    return Stamped.withContext("re-stamping the follower WAL");
  AddsSinceCheckpoint = 0;
  if (Repl.OnRebase)
    Repl.OnRebase(Base);
  return Status();
}

Expected<uint64_t> ServerCore::promote() {
  Status Done = checkpoint(std::string());
  if (!Done)
    return Done.withContext("promote");
  return Wal.baseId();
}

telemetry::ServerCounters ServerCore::counters() const {
  telemetry::ServerCounters S;
  S.WalReplayed = WalReplayed;
  S.WalSkipped = WalSkipped;
  S.Checkpoints = Checkpoints;
  S.WalRecords = Wal.records();
  S.WalBytes = Wal.sizeBytes();
  return S;
}

Status ServerCore::dumpMetricsTo(const std::string &Path) {
  MetricsRegistry &R = MetricsRegistry::global();
  Engine.solver().stats().exportTo(R);
  telemetry::exportServeMetrics(R, Engine, counters());
  std::string Json = R.renderJson() + "\n";
  std::vector<uint8_t> Bytes(Json.begin(), Json.end());
  return writeFileAtomic(Path, Bytes);
}

bool ServerCore::handleWriterVerb(const Request &Req, std::string &Reply) {
  auto Err = [&Reply](const Status &St) { Reply = "err " + St.wire(); };
  if (Req.Verb == "stats") {
    Reply = statsReply();
    return true;
  }
  if (Req.Verb == "counters") {
    Reply = countersReply();
    return true;
  }
  if (Req.Verb == "metrics") {
    Reply = metricsReply();
    return true;
  }
  if (Req.Verb == "save") {
    if (Req.Arg1.empty()) {
      Err(Status::error(ErrorCode::InvalidArgument, "save needs a path"));
      return true;
    }
    Expected<uint64_t> Bytes = save(Req.Arg1);
    if (!Bytes.ok()) {
      Err(Bytes.status());
      return true;
    }
    Reply = "ok saved " + Req.Arg1 + " (" + std::to_string(*Bytes) +
            " bytes)";
    return true;
  }
  if (Req.Verb == "checkpoint") {
    Status Done = checkpoint(Req.Arg1);
    if (!Done) {
      Err(Done);
      return true;
    }
    Reply = "ok checkpoint " +
            (Req.Arg1.empty() ? Config.SnapshotPath : Req.Arg1);
    return true;
  }
  if (Req.Verb == "add") {
    Status Added = addLine(Req.Rest);
    if (!Added) {
      Err(Added);
      return true;
    }
    Reply = "ok added";
    return true;
  }
  if (Req.Verb == "retract") {
    Status Done = retractLine(Req.Rest);
    if (!Done) {
      Err(Done);
      return true;
    }
    Reply = "ok retracted";
    return true;
  }
  if (Req.Verb == "verify") {
    // Consistency check across a replication pair: both sides hash every
    // variable's rendered least solution (canonicalChecksum) and compare.
    // Serialized bytes would be the wrong signal here — see the method
    // comment in ServerCore.h.
    Reply = "ok verify checksum=" + hexId(canonicalChecksum()) +
            " base=" + hexId(Wal.baseId()) +
            " records=" + std::to_string(Wal.records());
    return true;
  }
  if (Req.Verb == "shutdown") {
    // Graceful drain: the caller stops its loop; every acknowledged add
    // is already fsynced, so closing the WAL is the whole flush.
    ShutdownSeen = true;
    shutdownDrain();
    Reply = "ok shutting_down";
    return true;
  }
  return false;
}
