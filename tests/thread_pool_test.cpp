//===- tests/thread_pool_test.cpp - Work-stealing pool tests ---------------===//
//
// Part of the poce project.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Tests of the work-stealing thread pool that drives the parallel
/// least-solution pass and batch solving: complete coverage of the index
/// space, stealing under skewed per-lane loads, exception propagation,
/// pool reuse across many waves, and the parallelForLevels barrier.
///
//===----------------------------------------------------------------------===//

#include "support/ThreadPool.h"

#include <gtest/gtest.h>

#include <algorithm>
#include <atomic>
#include <chrono>
#include <mutex>
#include <numeric>
#include <stdexcept>
#include <thread>
#include <vector>

using namespace poce;

namespace {

TEST(ThreadPoolTest, ResolveThreads) {
  EXPECT_GE(ThreadPool::resolveThreads(0), 1u);
  EXPECT_EQ(ThreadPool::resolveThreads(1), 1u);
  EXPECT_EQ(ThreadPool::resolveThreads(3), 3u);
}

TEST(ThreadPoolTest, SingleLaneRunsInline) {
  ThreadPool Pool(1);
  EXPECT_EQ(Pool.numLanes(), 1u);
  std::vector<int> Hits(100, 0);
  Pool.parallelFor(Hits.size(), [&](size_t I, unsigned Lane) {
    EXPECT_EQ(Lane, 0u);
    ++Hits[I];
  });
  for (int Hit : Hits)
    EXPECT_EQ(Hit, 1);
  EXPECT_EQ(Pool.numSteals(), 0u);
}

TEST(ThreadPoolTest, EveryIndexVisitedExactlyOnce) {
  ThreadPool Pool(4);
  const size_t N = 10000;
  std::vector<std::atomic<int>> Hits(N);
  Pool.parallelFor(N, [&](size_t I, unsigned Lane) {
    EXPECT_LT(Lane, Pool.numLanes());
    Hits[I].fetch_add(1, std::memory_order_relaxed);
  });
  for (const std::atomic<int> &Hit : Hits)
    EXPECT_EQ(Hit.load(), 1);
}

TEST(ThreadPoolTest, ChunksCoverRangeWithoutOverlap) {
  ThreadPool Pool(3);
  const size_t N = 997; // Prime: exercises the ragged final chunk.
  std::vector<std::atomic<int>> Hits(N);
  Pool.parallelForChunks(
      N,
      [&](size_t Begin, size_t End, unsigned) {
        ASSERT_LE(Begin, End);
        ASSERT_LE(End, N);
        for (size_t I = Begin; I != End; ++I)
          Hits[I].fetch_add(1, std::memory_order_relaxed);
      },
      /*Grain=*/10);
  for (const std::atomic<int> &Hit : Hits)
    EXPECT_EQ(Hit.load(), 1);
}

TEST(ThreadPoolTest, StealsUnderSkewedLoad) {
  // Chunks are dealt round-robin, so with Grain=1 every index I lands on
  // lane I % numLanes. Making lane 1's tasks slow forces the other lanes
  // to run dry and steal from it.
  ThreadPool Pool(4);
  ASSERT_EQ(Pool.numLanes(), 4u);
  const size_t N = 64;
  std::atomic<size_t> Done{0};
  Pool.parallelFor(
      N,
      [&](size_t I, unsigned) {
        if (I % 4 == 1)
          std::this_thread::sleep_for(std::chrono::milliseconds(2));
        Done.fetch_add(1, std::memory_order_relaxed);
      },
      /*Grain=*/1);
  EXPECT_EQ(Done.load(), N);
  EXPECT_GT(Pool.numSteals(), 0u);
}

TEST(ThreadPoolTest, ExceptionPropagatesAndPoolStaysUsable) {
  ThreadPool Pool(4);
  EXPECT_THROW(
      Pool.parallelFor(
          100,
          [&](size_t I, unsigned) {
            if (I == 13)
              throw std::runtime_error("boom");
          },
          /*Grain=*/1),
      std::runtime_error);

  // The failed wave must not poison the pool.
  std::atomic<size_t> Done{0};
  Pool.parallelFor(100, [&](size_t, unsigned) {
    Done.fetch_add(1, std::memory_order_relaxed);
  });
  EXPECT_EQ(Done.load(), 100u);
}

TEST(ThreadPoolTest, ReuseAcrossManyWaves) {
  ThreadPool Pool(3);
  const size_t N = 64;
  std::vector<std::atomic<uint64_t>> Sums(N);
  for (unsigned Wave = 0; Wave != 100; ++Wave) {
    Pool.parallelFor(N, [&](size_t I, unsigned) {
      Sums[I].fetch_add(I + 1, std::memory_order_relaxed);
    });
  }
  for (size_t I = 0; I != N; ++I)
    EXPECT_EQ(Sums[I].load(), 100 * (I + 1));
}

TEST(ThreadPoolTest, LevelsRunWithBarrierBetween) {
  // Every item of level L checks that ALL of level L-1 finished first —
  // the property the wavefront least-solution pass depends on.
  ThreadPool Pool(4);
  std::vector<std::vector<int>> Levels = {
      std::vector<int>(40, 0), std::vector<int>(1, 1),
      std::vector<int>(17, 2), std::vector<int>(33, 3)};
  std::vector<std::atomic<size_t>> DonePerLevel(Levels.size());
  std::atomic<bool> OrderViolated{false};
  Pool.parallelForLevels(
      Levels,
      [&](int Level, unsigned) {
        if (Level > 0 &&
            DonePerLevel[Level - 1].load(std::memory_order_acquire) !=
                Levels[Level - 1].size())
          OrderViolated.store(true, std::memory_order_relaxed);
        DonePerLevel[Level].fetch_add(1, std::memory_order_release);
      },
      /*Grain=*/1);
  EXPECT_FALSE(OrderViolated.load());
  for (size_t L = 0; L != Levels.size(); ++L)
    EXPECT_EQ(DonePerLevel[L].load(), Levels[L].size());
}

TEST(ThreadPoolTest, DegenerateLevelsRunInlineOnCaller) {
  // Long dependency chains produce many empty and size-1 levels; those
  // must run inline on the calling thread as lane 0 (no wave dispatch),
  // interleaved correctly with full levels, and their exceptions must
  // propagate directly.
  ThreadPool Pool(4);
  std::vector<std::vector<int>> Levels = {
      std::vector<int>(1, 0), {},         std::vector<int>(1, 2),
      std::vector<int>(25, 3), {},        std::vector<int>(1, 5)};
  const std::thread::id Caller = std::this_thread::get_id();
  std::vector<int> Visited;
  std::mutex VisitedMutex;
  bool SingletonOffCaller = false;
  Pool.parallelForLevels(
      Levels,
      [&](int Level, unsigned Lane) {
        if (Levels[Level].size() == 1) {
          if (Lane != 0 || std::this_thread::get_id() != Caller)
            SingletonOffCaller = true;
        }
        std::lock_guard<std::mutex> Lock(VisitedMutex);
        Visited.push_back(Level);
      },
      /*Grain=*/1);
  EXPECT_FALSE(SingletonOffCaller);
  ASSERT_EQ(Visited.size(), 28u);
  // Level order is preserved across the mix of inline and dispatched
  // levels (the barrier property restricted to this schedule).
  EXPECT_TRUE(std::is_sorted(Visited.begin(), Visited.end()));

  EXPECT_THROW(
      Pool.parallelForLevels(
          std::vector<std::vector<int>>{std::vector<int>(1, 7)},
          [&](int, unsigned) { throw std::runtime_error("singleton"); }),
      std::runtime_error);
  // The pool survives an inline throw and still runs full waves.
  std::atomic<int> Hits{0};
  Pool.parallelFor(16, [&](size_t, unsigned) { Hits.fetch_add(1); });
  EXPECT_EQ(Hits.load(), 16);
}

TEST(ThreadPoolTest, EmptyAndTinyRanges) {
  ThreadPool Pool(4);
  Pool.parallelFor(0, [&](size_t, unsigned) { FAIL(); });
  std::atomic<int> Hits{0};
  Pool.parallelFor(1, [&](size_t I, unsigned) {
    EXPECT_EQ(I, 0u);
    Hits.fetch_add(1);
  });
  EXPECT_EQ(Hits.load(), 1);
}

} // namespace
