# Empty dependencies file for table3_online.
# This may be replaced when dependencies are built.
