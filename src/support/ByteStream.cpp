//===- support/ByteStream.cpp - Bounds-checked binary IO ------------------===//
//
// Part of the poce project.
//
//===----------------------------------------------------------------------===//

#include "support/ByteStream.h"

#include <cstdio>

namespace poce {

uint64_t fnv1a64(const uint8_t *Data, size_t Size, uint64_t Seed) {
  uint64_t Hash = Seed;
  for (size_t I = 0; I != Size; ++I) {
    Hash ^= Data[I];
    Hash *= 0x100000001b3ULL;
  }
  return Hash;
}

void ByteWriter::patchU64(size_t Offset, uint64_t Value) {
  for (int Shift = 0; Shift != 64; Shift += 8)
    Buffer[Offset + static_cast<size_t>(Shift / 8)] =
        static_cast<uint8_t>(Value >> Shift);
}

bool ByteReader::take(size_t N, const char *What) {
  if (Failed)
    return false;
  if (Size - Pos < N) {
    Failed = true;
    Error = std::string("truncated input: need ") + std::to_string(N) +
            " byte(s) for " + What + " at offset " + std::to_string(Pos) +
            " but only " + std::to_string(Size - Pos) + " remain";
    return false;
  }
  return true;
}

bool ByteReader::u8(uint8_t &Out) {
  if (!take(1, "u8"))
    return false;
  Out = Data[Pos++];
  return true;
}

bool ByteReader::u32(uint32_t &Out) {
  if (!take(4, "u32"))
    return false;
  uint32_t Value = 0;
  for (int Shift = 0; Shift != 32; Shift += 8)
    Value |= static_cast<uint32_t>(Data[Pos++]) << Shift;
  Out = Value;
  return true;
}

bool ByteReader::u64(uint64_t &Out) {
  if (!take(8, "u64"))
    return false;
  uint64_t Value = 0;
  for (int Shift = 0; Shift != 64; Shift += 8)
    Value |= static_cast<uint64_t>(Data[Pos++]) << Shift;
  Out = Value;
  return true;
}

bool ByteReader::str(std::string &Out) {
  uint32_t Length;
  if (!u32(Length))
    return false;
  if (!take(Length, "string body"))
    return false;
  Out.assign(reinterpret_cast<const char *>(Data + Pos), Length);
  Pos += Length;
  return true;
}

void ByteReader::fail(const std::string &Reason) {
  if (Failed)
    return;
  Failed = true;
  Error = Reason + " (at offset " + std::to_string(Pos) + ")";
}

bool writeFileBytes(const std::string &Path,
                    const std::vector<uint8_t> &Buffer,
                    std::string *ErrorOut) {
  std::FILE *File = std::fopen(Path.c_str(), "wb");
  if (!File) {
    if (ErrorOut)
      *ErrorOut = "cannot open '" + Path + "' for writing";
    return false;
  }
  size_t Written =
      Buffer.empty() ? 0 : std::fwrite(Buffer.data(), 1, Buffer.size(), File);
  bool Ok = std::fclose(File) == 0 && Written == Buffer.size();
  if (!Ok && ErrorOut)
    *ErrorOut = "short write to '" + Path + "'";
  return Ok;
}

bool readFileBytes(const std::string &Path, std::vector<uint8_t> &Buffer,
                   std::string *ErrorOut) {
  std::FILE *File = std::fopen(Path.c_str(), "rb");
  if (!File) {
    if (ErrorOut)
      *ErrorOut = "cannot open '" + Path + "' for reading";
    return false;
  }
  Buffer.clear();
  uint8_t Chunk[65536];
  size_t Got;
  while ((Got = std::fread(Chunk, 1, sizeof(Chunk), File)) > 0)
    Buffer.insert(Buffer.end(), Chunk, Chunk + Got);
  bool Ok = std::ferror(File) == 0;
  std::fclose(File);
  if (!Ok && ErrorOut)
    *ErrorOut = "read error on '" + Path + "'";
  return Ok;
}

} // namespace poce
