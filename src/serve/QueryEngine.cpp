//===- serve/QueryEngine.cpp - Queries over a warm solver -----------------===//
//
// Part of the poce project.
//
//===----------------------------------------------------------------------===//

#include "serve/QueryEngine.h"

#include <algorithm>

using namespace poce;
using namespace poce::serve;

QueryEngine::QueryEngine(ConstraintSolver &Solver, size_t CacheCapacity)
    : Solver(Solver), Cache(CacheCapacity) {
  Valid = System.adoptDeclarations(Solver, &InitError);
}

uint32_t QueryEngine::varOf(const std::string &Name) const {
  uint32_t Index = System.varIndex(Name);
  if (Index == ConstraintSystemFile::NotFound ||
      Index >= Solver.numCreations())
    return NotFound;
  return Solver.varOfCreation(Index);
}

std::string QueryEngine::locationTag(ExprId Term) const {
  const TermTable &Terms = Solver.terms();
  if (Terms.kind(Term) == ExprKind::Cons) {
    const ConstructorTable &Cons = Terms.constructors();
    ConsId C = Terms.consOf(Term);
    if (Cons.signature(C).arity() == 0)
      return Cons.signature(C).Name;
    // ref(l, get, set)-shaped terms: the first argument is the location
    // name constructor.
    ExprId First = Terms.argsOf(Term)[0];
    if (Terms.kind(First) == ExprKind::Cons &&
        Cons.signature(Terms.consOf(First)).arity() == 0)
      return Cons.signature(Terms.consOf(First)).Name;
  }
  return Solver.exprStr(Term);
}

const std::vector<std::string> &QueryEngine::view(ViewKind Kind, VarId Var) {
  ++Stats.Queries;
  VarId Rep = Solver.rep(Var);
  const SparseBitVector &Bits = Solver.leastSolutionBits(Rep);
  size_t Fingerprint = Bits.count();
  uint64_t Key =
      (static_cast<uint64_t>(static_cast<uint8_t>(Kind)) << 32) | Rep;
  if (View *Cached = Cache.get(Key)) {
    if (Cached->Fingerprint == Fingerprint) {
      ++Stats.CacheHits;
      return Cached->Items;
    }
    ++Stats.StaleRebuilds;
  } else {
    ++Stats.CacheMisses;
  }

  View Fresh;
  Fresh.Fingerprint = Fingerprint;
  if (Kind == ViewKind::Ls) {
    for (ExprId Term : Solver.leastSolution(Rep))
      Fresh.Items.push_back(Solver.exprStr(Term));
  } else {
    // Projection to tags can fold several terms onto one location; keep
    // the output sorted and deduplicated so responses are canonical.
    for (ExprId Term : Solver.leastSolution(Rep))
      Fresh.Items.push_back(locationTag(Term));
    std::sort(Fresh.Items.begin(), Fresh.Items.end());
    Fresh.Items.erase(std::unique(Fresh.Items.begin(), Fresh.Items.end()),
                      Fresh.Items.end());
  }
  Cache.put(Key, std::move(Fresh));
  return Cache.get(Key)->Items;
}

const std::vector<std::string> &QueryEngine::ls(VarId Var) {
  return view(ViewKind::Ls, Var);
}

const std::vector<std::string> &QueryEngine::pts(VarId Var) {
  return view(ViewKind::Pts, Var);
}

bool QueryEngine::alias(VarId X, VarId Y) {
  ++Stats.Queries;
  if (Solver.rep(X) == Solver.rep(Y))
    return true;
  return Solver.leastSolutionBits(X).intersects(Solver.leastSolutionBits(Y));
}

bool QueryEngine::addConstraint(const std::string &Line,
                                std::string *ErrorOut) {
  if (!System.addLine(Line, Solver, ErrorOut))
    return false;
  ++Stats.Additions;
  return true;
}
