file(REMOVE_RECURSE
  "CMakeFiles/fig10_if_vs_sf.dir/fig10_if_vs_sf.cpp.o"
  "CMakeFiles/fig10_if_vs_sf.dir/fig10_if_vs_sf.cpp.o.d"
  "fig10_if_vs_sf"
  "fig10_if_vs_sf.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig10_if_vs_sf.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
