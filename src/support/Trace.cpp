//===- support/Trace.cpp - Chrome trace-event spans -----------------------===//
//
// Part of the poce project.
//
//===----------------------------------------------------------------------===//

#include "support/Trace.h"

#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <mutex>
#include <vector>

#include <unistd.h>

using namespace poce;

namespace {

struct Event {
  const char *Name;
  uint64_t TsUs;
  uint64_t DurUs; ///< 0 duration + Instant flag renders as an instant.
  uint32_t Tid;
  bool Instant;
};

/// Collector state behind one mutex. Span emission is batch-granular
/// (closure drains, WAL fsyncs, checkpoints), so contention is nil; the
/// hot gate is the lock-free Armed flag in the header.
struct Collector {
  std::mutex Mutex;
  std::vector<Event> Events;
  std::string Path;
  uint64_t Dropped = 0;
  /// Bounds the buffer so a pathological run cannot swallow the heap:
  /// ~1M events is ~40 MB and far beyond what the viewer renders well.
  static constexpr size_t MaxEvents = 1 << 20;
};

Collector &collector() {
  static Collector *C = new Collector();
  return *C;
}

uint32_t threadTraceId() {
  static std::atomic<uint32_t> NextTid{1};
  thread_local uint32_t Tid = NextTid.fetch_add(1);
  return Tid;
}

std::chrono::steady_clock::time_point traceEpoch() {
  static const std::chrono::steady_clock::time_point Epoch =
      std::chrono::steady_clock::now();
  return Epoch;
}

void writeFileLocked(Collector &C) {
  if (C.Path.empty())
    return;
  std::FILE *File = std::fopen(C.Path.c_str(), "w");
  if (!File) {
    std::fprintf(stderr, "poce-trace: cannot open '%s' for writing\n",
                 C.Path.c_str());
    return;
  }
  std::fprintf(File, "{\"displayTimeUnit\": \"ms\", \"traceEvents\": [\n");
  const long Pid = static_cast<long>(::getpid());
  for (size_t I = 0; I != C.Events.size(); ++I) {
    const Event &E = C.Events[I];
    if (E.Instant)
      std::fprintf(File,
                   "{\"name\": \"%s\", \"ph\": \"i\", \"s\": \"g\", "
                   "\"pid\": %ld, \"tid\": %u, \"ts\": %llu}%s\n",
                   E.Name, Pid, E.Tid,
                   static_cast<unsigned long long>(E.TsUs),
                   I + 1 == C.Events.size() ? "" : ",");
    else
      std::fprintf(File,
                   "{\"name\": \"%s\", \"ph\": \"X\", \"pid\": %ld, "
                   "\"tid\": %u, \"ts\": %llu, \"dur\": %llu}%s\n",
                   E.Name, Pid, E.Tid,
                   static_cast<unsigned long long>(E.TsUs),
                   static_cast<unsigned long long>(E.DurUs),
                   I + 1 == C.Events.size() ? "" : ",");
  }
  std::fprintf(File, "]}\n");
  std::fclose(File);
  if (C.Dropped)
    std::fprintf(stderr,
                 "poce-trace: dropped %llu events past the %zu-event "
                 "buffer; the trace is a prefix\n",
                 static_cast<unsigned long long>(C.Dropped),
                 Collector::MaxEvents);
}

void atExitFlush() { trace::disarm(); }

void push(Event E) {
  Collector &C = collector();
  std::lock_guard<std::mutex> Lock(C.Mutex);
  if (C.Events.size() >= Collector::MaxEvents) {
    ++C.Dropped;
    return;
  }
  C.Events.push_back(E);
}

/// File-scope initializer: POCE_TRACE works in every binary that links
/// poce_support, with no per-main arming call.
struct EnvInit {
  EnvInit() { trace::armFromEnv(); }
} EnvInitializer;

} // namespace

namespace poce {
namespace trace {

namespace detail {
std::atomic<bool> Armed{false};
} // namespace detail

uint64_t nowMicros() {
  return static_cast<uint64_t>(
      std::chrono::duration_cast<std::chrono::microseconds>(
          std::chrono::steady_clock::now() - traceEpoch())
          .count());
}

void arm(const std::string &Path) {
  Collector &C = collector();
  {
    std::lock_guard<std::mutex> Lock(C.Mutex);
    if (!C.Path.empty() && C.Path != Path)
      writeFileLocked(C); // Flush the previous destination first.
    if (C.Path != Path) {
      C.Events.clear();
      C.Dropped = 0;
    }
    C.Path = Path;
  }
  static std::once_flag AtExitOnce;
  std::call_once(AtExitOnce, [] { std::atexit(atExitFlush); });
  (void)traceEpoch(); // Pin ts=0 before the first span.
  detail::Armed.store(true, std::memory_order_relaxed);
}

void armFromEnv() {
  if (const char *Path = std::getenv("POCE_TRACE"))
    if (*Path)
      arm(Path);
}

void disarm() {
  if (!enabled())
    return;
  detail::Armed.store(false, std::memory_order_relaxed);
  Collector &C = collector();
  std::lock_guard<std::mutex> Lock(C.Mutex);
  writeFileLocked(C);
  C.Events.clear();
  C.Path.clear();
  C.Dropped = 0;
}

uint64_t eventCount() {
  Collector &C = collector();
  std::lock_guard<std::mutex> Lock(C.Mutex);
  return C.Events.size();
}

void complete(const char *Name, uint64_t StartUs) {
  if (!enabled())
    return;
  uint64_t End = nowMicros();
  push({Name, StartUs, End > StartUs ? End - StartUs : 0, threadTraceId(),
        /*Instant=*/false});
}

void instant(const char *Name) {
  if (!enabled())
    return;
  push({Name, nowMicros(), 0, threadTraceId(), /*Instant=*/true});
}

} // namespace trace
} // namespace poce
