//===- serve/ServerCore.cpp - Writer-side serving pipeline ----------------===//
//
// Part of the poce project.
//
//===----------------------------------------------------------------------===//

#include "serve/ServerCore.h"

#include "serve/GraphSnapshot.h"
#include "support/ByteStream.h"
#include "support/FailPoint.h"
#include "support/Trace.h"

#include <cstdio>
#include <sstream>

using namespace poce;
using namespace poce::serve;

Request poce::serve::parseRequest(const std::string &Line) {
  Request Req;
  std::istringstream In(Line);
  In >> Req.Verb >> Req.Arg1 >> Req.Arg2;
  size_t VerbEnd = Line.find(Req.Verb);
  if (VerbEnd != std::string::npos) {
    size_t RestAt = VerbEnd + Req.Verb.size();
    while (RestAt < Line.size() && Line[RestAt] == ' ')
      ++RestAt;
    Req.Rest = Line.substr(RestAt);
  }
  return Req;
}

ServerCore::ServerCore(SolverBundle Bundle, size_t CacheCapacity,
                       ServerCoreConfig InConfig)
    : Engine(std::move(Bundle), CacheCapacity), Config(std::move(InConfig)) {}

Status ServerCore::recover(uint64_t SnapBase) {
  if (walArmed()) {
    Expected<WalContents> Recovered = WriteAheadLog::replay(Config.WalPath);
    if (!Recovered.ok())
      return Recovered.status();
    if (!Recovered->HeaderIntact) {
      std::fprintf(stderr,
                   "scserved: note: WAL '%s' has a torn header (crash "
                   "during creation); no record was acknowledged, "
                   "starting it over\n",
                   Config.WalPath.c_str());
    } else if (Recovered->BaseId != SnapBase && !Recovered->Lines.empty()) {
      // A checkpoint crashed between the snapshot rename and the WAL
      // reset: every record in the log is already contained in the
      // renamed snapshot. Replaying them would double-apply (and fail on
      // re-declarations), so skip the log and re-stamp it below.
      WalSkipped = Recovered->Lines.size();
      std::fprintf(stderr,
                   "scserved: note: WAL '%s' is stale (base id %llx does "
                   "not match the snapshot's %llx; an interrupted "
                   "checkpoint left it behind); skipping %llu line(s) "
                   "already contained in the snapshot\n",
                   Config.WalPath.c_str(),
                   static_cast<unsigned long long>(Recovered->BaseId),
                   static_cast<unsigned long long>(SnapBase),
                   static_cast<unsigned long long>(WalSkipped));
    } else {
      // Budgets off for replay: each line fit its budget when first
      // accepted, and a snapshot saved with budgets armed must not
      // re-abort here.
      Engine.solver().setBudgets(0, 0, 0);
      for (const std::string &ReplayLine : Recovered->Lines) {
        Status Applied = Engine.addConstraint(ReplayLine);
        if (!Applied)
          return Applied.withContext("WAL replay failed (log does not "
                                     "extend this snapshot?)");
        ++WalReplayed;
      }
    }
    Status Opened = Wal.open(Config.WalPath, SnapBase);
    if (!Opened)
      return Opened;
  }
  Engine.solver().setBudgets(Config.DeadlineMs, Config.EdgeBudget,
                             Config.MaxMemBytes);
  // Budgets configured after recovery apply to every subsequent add; the
  // rollback base must reflect the recovered (not the loaded) graph.
  if (WalReplayed) {
    Status Checkpointed = Engine.checkpointBase();
    if (!Checkpointed)
      return Checkpointed;
  }
  return Status();
}

uint64_t ServerCore::snapshotFileChecksum(const std::string &Path) {
  std::vector<uint8_t> Bytes;
  std::string Error;
  if (!readFileBytes(Path, Bytes, &Error))
    return 0;
  return GraphSnapshot::payloadChecksum(Bytes.data(), Bytes.size());
}

Status ServerCore::serializeState(std::vector<uint8_t> &Bytes,
                                  uint64_t *ChecksumOut) {
  Bytes.clear();
  Status Serialized = GraphSnapshot::serialize(Engine.solver(), Bytes);
  if (!Serialized)
    return Serialized;
  if (ChecksumOut)
    *ChecksumOut = GraphSnapshot::payloadChecksum(Bytes.data(), Bytes.size());
  return Status();
}

Status ServerCore::saveSnapshot(const std::string &Path, size_t &SizeOut,
                                uint64_t &ChecksumOut) {
  if (FailPoint::hit("snapshot.save") != FailPoint::Mode::Off)
    return FailPoint::injectedError("snapshot.save");
  std::vector<uint8_t> Bytes;
  Status Serialized = GraphSnapshot::serialize(Engine.solver(), Bytes);
  if (!Serialized)
    return Serialized;
  SizeOut = Bytes.size();
  ChecksumOut = GraphSnapshot::payloadChecksum(Bytes.data(), Bytes.size());
  return writeFileAtomic(Path, Bytes);
}

void ServerCore::disableWal(const std::string &Why) {
  if (!Wal.isOpen())
    return;
  std::fprintf(stderr,
               "scserved: disabling WAL '%s' (%s); add/checkpoint are "
               "refused until restart, which recovers cleanly\n",
               Config.WalPath.c_str(), Why.c_str());
  Wal.close();
}

Status ServerCore::doCheckpoint(const std::string &Path) {
  if (walDegraded())
    return Status::error(ErrorCode::FailedPrecondition,
                         "WAL is disabled after a failed checkpoint; "
                         "restart to recover");
  const uint64_t StartUs = trace::nowMicros();
  size_t Bytes = 0;
  uint64_t NewBase = 0;
  Status Saved = saveSnapshot(Path, Bytes, NewBase);
  if (!Saved) {
    // writeFileAtomic can fail after the rename (directory fsync): if
    // the new snapshot actually landed, the WAL no longer extends the
    // base under our feet.
    if (NewBase != 0 && snapshotFileChecksum(Path) == NewBase)
      disableWal("the new snapshot was renamed into place but the "
                 "checkpoint failed");
    return Saved.withContext("checkpoint");
  }
  // The new snapshot is durable; the crash window between here and the
  // WAL reset is covered by the base id (recovery sees the mismatch
  // and skips the stale log), and the failpoint lets the harness land
  // exactly inside it.
  Status St;
  if (FailPoint::hit("checkpoint.before_wal_reset") != FailPoint::Mode::Off)
    St = FailPoint::injectedError("checkpoint.before_wal_reset");
  if (St.ok() && Wal.isOpen())
    St = Wal.reset(NewBase);
  if (!St.ok()) {
    disableWal("the snapshot was checkpointed but the WAL reset "
               "failed: " +
               St.message());
    return St.withContext("checkpoint");
  }
  // A checkpointBase failure is benign for durability: the engine just
  // keeps its older rollback base plus the full journal, which still
  // restores the current state; the WAL stays live.
  Status Based = Engine.checkpointBase();
  if (!Based)
    return Based.withContext("checkpoint");
  ++Checkpoints;
  AddsSinceCheckpoint = 0;
  telemetry::checkpointHistogram().record(trace::nowMicros() - StartUs);
  trace::complete("serve.checkpoint", StartUs);
  return Status();
}

Status ServerCore::checkpoint(const std::string &Path) {
  std::string Target = Path.empty() ? Config.SnapshotPath : Path;
  if (Target.empty())
    return Status::error(ErrorCode::InvalidArgument,
                         "checkpoint needs a path (no --snapshot)");
  return doCheckpoint(Target);
}

Expected<uint64_t> ServerCore::save(const std::string &Path) {
  size_t Bytes = 0;
  uint64_t Checksum = 0;
  Status Saved = saveSnapshot(Path, Bytes, Checksum);
  if (!Saved)
    return Saved;
  // Saving over the startup snapshot (under whatever spelling of its
  // path) makes the open WAL stale: every record is contained in the
  // file just written. Promote the save to a checkpoint so restart
  // and the live server agree on what the WAL extends.
  if (Wal.isOpen() && !Config.SnapshotPath.empty() &&
      snapshotFileChecksum(Config.SnapshotPath) == Checksum) {
    Status Reset = Wal.reset(Checksum);
    if (!Reset) {
      disableWal("the save replaced the startup snapshot but the "
                 "WAL reset failed: " +
                 Reset.message());
      return Reset.withContext("save");
    }
    Status Based = Engine.checkpointBase();
    if (!Based)
      return Based.withContext("save");
    ++Checkpoints;
    AddsSinceCheckpoint = 0;
  }
  return static_cast<uint64_t>(Bytes);
}

Status ServerCore::addLine(const std::string &Line) {
  if (Line.empty())
    return Status::error(ErrorCode::InvalidArgument,
                         "add needs a constraint-file line");
  if (walDegraded())
    return Status::error(ErrorCode::FailedPrecondition,
                         "WAL is disabled after a failed "
                         "checkpoint; restart to recover");
  // Validation before durability, durability before application: a
  // line reaches the WAL only after a dry-run parse proves it would
  // apply cleanly (so a crash right after the fsync can never leave
  // an unreplayable line durable), and once the append returns, a
  // crash at any later point leaves the line in the WAL, so
  // `ok added` implies it survives recovery. The only post-append
  // rejection left is a budget breach, whose line is erased again so
  // the log only ever contains accepted lines.
  Status Checked = Engine.checkConstraint(Line);
  if (!Checked)
    return Checked;
  uint64_t WalMark = Wal.sizeBytes();
  if (Wal.isOpen()) {
    Status Logged = Wal.append(Line);
    if (!Logged)
      return Logged;
  }
  Status Added = Engine.addConstraint(Line);
  if (!Added) {
    if (Wal.isOpen()) {
      Status Undone = Wal.truncateTo(WalMark);
      if (!Undone)
        return Undone.withContext("unlogging rejected add");
    }
    return Added;
  }
  ++AddsSinceCheckpoint;
  if (Config.CheckpointEvery > 0 &&
      AddsSinceCheckpoint >= Config.CheckpointEvery) {
    Status Done = doCheckpoint(Config.SnapshotPath);
    if (!Done)
      // The add itself succeeded and is durable; surface the
      // checkpoint failure without un-acking it.
      std::fprintf(stderr, "scserved: auto-checkpoint failed: %s\n",
                   Done.toString().c_str());
  }
  return Status();
}

telemetry::ServerCounters ServerCore::counters() const {
  telemetry::ServerCounters S;
  S.WalReplayed = WalReplayed;
  S.WalSkipped = WalSkipped;
  S.Checkpoints = Checkpoints;
  S.WalRecords = Wal.records();
  S.WalBytes = Wal.sizeBytes();
  return S;
}

Status ServerCore::dumpMetricsTo(const std::string &Path) {
  MetricsRegistry &R = MetricsRegistry::global();
  Engine.solver().stats().exportTo(R);
  telemetry::exportServeMetrics(R, Engine, counters());
  std::string Json = R.renderJson() + "\n";
  std::vector<uint8_t> Bytes(Json.begin(), Json.end());
  return writeFileAtomic(Path, Bytes);
}

bool ServerCore::handleWriterVerb(const Request &Req, std::string &Reply) {
  auto Err = [&Reply](const Status &St) { Reply = "err " + St.wire(); };
  if (Req.Verb == "stats") {
    Reply = statsReply();
    return true;
  }
  if (Req.Verb == "counters") {
    Reply = countersReply();
    return true;
  }
  if (Req.Verb == "metrics") {
    Reply = metricsReply();
    return true;
  }
  if (Req.Verb == "save") {
    if (Req.Arg1.empty()) {
      Err(Status::error(ErrorCode::InvalidArgument, "save needs a path"));
      return true;
    }
    Expected<uint64_t> Bytes = save(Req.Arg1);
    if (!Bytes.ok()) {
      Err(Bytes.status());
      return true;
    }
    Reply = "ok saved " + Req.Arg1 + " (" + std::to_string(*Bytes) +
            " bytes)";
    return true;
  }
  if (Req.Verb == "checkpoint") {
    Status Done = checkpoint(Req.Arg1);
    if (!Done) {
      Err(Done);
      return true;
    }
    Reply = "ok checkpoint " +
            (Req.Arg1.empty() ? Config.SnapshotPath : Req.Arg1);
    return true;
  }
  if (Req.Verb == "add") {
    Status Added = addLine(Req.Rest);
    if (!Added) {
      Err(Added);
      return true;
    }
    Reply = "ok added";
    return true;
  }
  if (Req.Verb == "shutdown") {
    // Graceful drain: the caller stops its loop; every acknowledged add
    // is already fsynced, so closing the WAL is the whole flush.
    ShutdownSeen = true;
    shutdownDrain();
    Reply = "ok shutting_down";
    return true;
  }
  return false;
}
