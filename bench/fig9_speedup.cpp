//===- bench/fig9_speedup.cpp - Reproduction of Figure 9 -------------------===//
//
// Part of the poce project.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Regenerates the paper's Figure 9: total speedup of the paper's approach
/// over standard implementations (IF-Online vs SF-Plain) and the speedup
/// from online cycle elimination alone (SF-Online vs SF-Plain), plotted
/// against the absolute SF-Plain execution time. Expected shape: speedups
/// grow with problem size; for very small programs the elimination
/// overhead can outweigh the benefit.
///
//===----------------------------------------------------------------------===//

#include "BenchCommon.h"

using namespace poce;
using namespace poce::bench;

int main() {
  BenchEnv Env = BenchEnv::fromEnv();
  std::printf("=== Figure 9: speedup over the standard implementation ===\n");
  Env.print();

  std::vector<std::string> Header = {"Benchmark", "SF-Plain(s)",
                                     "IF-Online(s)", "SF-Online(s)",
                                     "IFon/SFp", "SFon/SFp"};
  appendHotPathHeaders(Header, "SFon", "IFon");
  TextTable Table(std::move(Header));
  for (auto &Entry : prepareSuite(Env)) {
    MeasuredRun SFPlain =
        runConfig(*Entry, GraphForm::Standard, CycleElim::None, Env);
    MeasuredRun IFOnline =
        runConfig(*Entry, GraphForm::Inductive, CycleElim::Online, Env);
    MeasuredRun SFOnline =
        runConfig(*Entry, GraphForm::Standard, CycleElim::Online, Env);
    std::string Prefix = SFPlain.Capped ? ">" : "";
    std::vector<std::string> Row = {
        Entry->Program->Spec.Name,
        cappedTime(SFPlain.BestSeconds, SFPlain.Capped),
        formatDouble(IFOnline.BestSeconds, 3),
        formatDouble(SFOnline.BestSeconds, 3),
        Prefix + formatDouble(SFPlain.BestSeconds /
                                  std::max(IFOnline.BestSeconds, 1e-9),
                              1),
        Prefix + formatDouble(SFPlain.BestSeconds /
                                  std::max(SFOnline.BestSeconds, 1e-9),
                              1)};
    appendHotPathCells(Row, SFOnline, IFOnline);
    Table.addRow(std::move(Row));
  }
  Table.print();
  std::printf("\nPlot: speedup (y) against SF-Plain time (x). \">\" marks "
              "lower bounds where SF-Plain hit the work cap.\n");
  return 0;
}
