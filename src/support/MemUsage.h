//===- support/MemUsage.h - Process memory introspection --------*- C++ -*-===//
//
// Part of the poce project.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// currentRSSBytes(): the process resident set size, used by the
/// solver's MaxMemBytes budget check. Reads /proc/self/statm on Linux;
/// returns 0 (= unknown, never breaches a budget) elsewhere, so memory
/// budgets degrade to no-ops on platforms without the counter rather
/// than aborting valid work.
///
//===----------------------------------------------------------------------===//

#ifndef POCE_SUPPORT_MEMUSAGE_H
#define POCE_SUPPORT_MEMUSAGE_H

#include <cstdint>
#include <cstdio>

#if defined(__linux__)
#include <unistd.h>
#endif

namespace poce {

inline uint64_t currentRSSBytes() {
#if defined(__linux__)
  std::FILE *File = std::fopen("/proc/self/statm", "r");
  if (!File)
    return 0;
  unsigned long long SizePages = 0, RSSPages = 0;
  int Fields = std::fscanf(File, "%llu %llu", &SizePages, &RSSPages);
  std::fclose(File);
  if (Fields != 2)
    return 0;
  long PageSize = ::sysconf(_SC_PAGESIZE);
  if (PageSize <= 0)
    return 0;
  return static_cast<uint64_t>(RSSPages) * static_cast<uint64_t>(PageSize);
#else
  return 0;
#endif
}

} // namespace poce

#endif // POCE_SUPPORT_MEMUSAGE_H
