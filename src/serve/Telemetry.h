//===- serve/Telemetry.h - Server-side telemetry rendering ------*- C++ -*-===//
//
// Part of the poce project.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The serve layer's telemetry surface, factored out of scserved's request
/// loop so the reply builders are unit-testable without a process: the
/// query-latency and checkpoint histograms, the registry export of solver
/// and engine counters, and the `stats` / `counters` / `metrics` reply
/// strings. scserved formats every telemetry reply through these
/// functions; tests call them directly against a local registry.
///
/// Reply-format compatibility: `stats` and `counters` keep the key=value
/// single-line shape the smoke tests grep (`cycles_collapsed=`,
/// `budget_aborts=`, `p99_us=`). `counters` percentiles now come from the
/// O(1)-insert log-bucket histogram instead of sorting a 64k latency ring
/// per request; the estimate q satisfies exact <= q < 2*exact.
///
//===----------------------------------------------------------------------===//

#ifndef POCE_SERVE_TELEMETRY_H
#define POCE_SERVE_TELEMETRY_H

#include "support/Metrics.h"

#include <cstdint>
#include <string>

namespace poce {
namespace serve {

class QueryEngine;

namespace telemetry {

/// Server-loop counters that live outside the QueryEngine (WAL and
/// checkpoint state owned by scserved's main loop).
struct ServerCounters {
  uint64_t WalReplayed = 0;
  uint64_t WalSkipped = 0;
  uint64_t Checkpoints = 0;
  uint64_t WalRecords = 0;
  uint64_t WalBytes = 0;
};

/// End-to-end latency of one ls/pts/alias request
/// (poce_query_latency_us in the global registry).
Histogram &queryLatencyHistogram();

/// Wall time of one checkpoint: snapshot write + WAL reset + base
/// recapture (poce_checkpoint_us in the global registry).
Histogram &checkpointHistogram();

/// The `stats` verb's reply line (starts with "ok ").
std::string buildStatsReply(const QueryEngine &Engine,
                            const ServerCounters &Server);

/// The `counters` verb's reply line (starts with "ok "), reading p50/p99
/// from \p Latency.
std::string buildCountersReply(const QueryEngine &Engine,
                               const Histogram &Latency);

/// Mirrors the engine's query counters and the server-loop counters into
/// \p Registry (poce_query_* / poce_serve_* series). Observe-only, like
/// SolverStats::exportTo.
void exportServeMetrics(MetricsRegistry &Registry, const QueryEngine &Engine,
                        const ServerCounters &Server);

/// The `metrics` verb's full reply: an "ok metrics" header line, the
/// Prometheus text exposition of \p Registry (after exporting the solver
/// and serve counters into it), and a final "# EOF" line so clients of
/// the one-line protocol know where the multi-line payload ends.
std::string buildMetricsReply(MetricsRegistry &Registry, QueryEngine &Engine,
                              const ServerCounters &Server);

} // namespace telemetry
} // namespace serve
} // namespace poce

#endif // POCE_SERVE_TELEMETRY_H
