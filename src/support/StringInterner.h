//===- support/StringInterner.h - String uniquing ---------------*- C++ -*-===//
//
// Part of the poce project.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Interns strings to dense 32-bit ids with stable storage. Identifiers in
/// MiniC sources and constructor names in the solver are compared by id.
///
//===----------------------------------------------------------------------===//

#ifndef POCE_SUPPORT_STRINGINTERNER_H
#define POCE_SUPPORT_STRINGINTERNER_H

#include <cstdint>
#include <string>
#include <string_view>
#include <unordered_map>
#include <vector>

namespace poce {

/// Maps strings to dense ids and back. Ids are assigned in first-seen
/// order, so interning the same sequence of strings always yields the same
/// ids — important for reproducible experiments.
class StringInterner {
public:
  /// Returns the id for \p Str, interning it if new.
  uint32_t intern(std::string_view Str);

  /// Returns the id for \p Str, or NotFound if it was never interned.
  uint32_t lookup(std::string_view Str) const;

  /// Returns the string for a previously returned id.
  const std::string &str(uint32_t Id) const;

  uint32_t size() const { return static_cast<uint32_t>(Strings.size()); }

  static constexpr uint32_t NotFound = ~0U;

private:
  std::unordered_map<std::string, uint32_t> Ids;
  std::vector<const std::string *> Strings;
};

} // namespace poce

#endif // POCE_SUPPORT_STRINGINTERNER_H
