//===- bench/table3_online.cpp - Reproduction of Table 3 -------------------===//
//
// Part of the poce project.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Regenerates the paper's Table 3: edges, work, time, and the number of
/// variables eliminated through online cycle detection for SF-Online and
/// IF-Online. The "Elim" columns against the oracle ground truth feed
/// Figure 11's detection rates.
///
//===----------------------------------------------------------------------===//

#include "BenchCommon.h"

using namespace poce;
using namespace poce::bench;

int main() {
  BenchEnv Env = BenchEnv::fromEnv();
  std::printf("=== Table 3: SF-Online and IF-Online ===\n");
  Env.print();

  TextTable Table({"Benchmark", "AST", "SF-Edges", "SF-Work", "SF-Elim",
                   "SF-s", "IF-Edges", "IF-Work", "IF-Elim", "IF-s",
                   "Eliminable"});

  for (auto &Entry : prepareSuite(Env)) {
    std::vector<std::string> Row = {Entry->Program->Spec.Name,
                                    formatGrouped(Entry->Program->AstNodes)};
    for (GraphForm Form : {GraphForm::Standard, GraphForm::Inductive}) {
      MeasuredRun Run = runConfig(*Entry, Form, CycleElim::Online, Env);
      Row.push_back(formatGrouped(Run.Result.FinalEdges));
      Row.push_back(formatGrouped(Run.Result.Stats.Work));
      Row.push_back(formatGrouped(Run.Result.Stats.VarsEliminated));
      Row.push_back(formatDouble(Run.BestSeconds, 3));
    }
    Row.push_back(formatGrouped(Entry->oracle().eliminableVars()));
    Table.addRow(std::move(Row));
  }
  Table.print();
  std::printf("\n\"Eliminable\" is the oracle ground truth: variables a "
              "perfect eliminator removes.\n");
  return 0;
}
