file(REMOVE_RECURSE
  "CMakeFiles/poce_andersen.dir/Andersen.cpp.o"
  "CMakeFiles/poce_andersen.dir/Andersen.cpp.o.d"
  "CMakeFiles/poce_andersen.dir/ConstraintGen.cpp.o"
  "CMakeFiles/poce_andersen.dir/ConstraintGen.cpp.o.d"
  "CMakeFiles/poce_andersen.dir/Steensgaard.cpp.o"
  "CMakeFiles/poce_andersen.dir/Steensgaard.cpp.o.d"
  "libpoce_andersen.a"
  "libpoce_andersen.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/poce_andersen.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
