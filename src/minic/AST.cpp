//===- minic/AST.cpp - MiniC abstract syntax tree --------------------------===//
//
// Part of the poce project.
//
//===----------------------------------------------------------------------===//

#include "minic/AST.h"

using namespace poce;
using namespace poce::minic;

const char *poce::minic::nodeKindName(Node::Kind Kind) {
  switch (Kind) {
  case Node::Kind::IntLiteral:
    return "IntLiteral";
  case Node::Kind::FloatLiteral:
    return "FloatLiteral";
  case Node::Kind::CharLiteral:
    return "CharLiteral";
  case Node::Kind::StringLiteral:
    return "StringLiteral";
  case Node::Kind::Ident:
    return "Ident";
  case Node::Kind::Unary:
    return "Unary";
  case Node::Kind::Binary:
    return "Binary";
  case Node::Kind::Assign:
    return "Assign";
  case Node::Kind::Conditional:
    return "Conditional";
  case Node::Kind::Call:
    return "Call";
  case Node::Kind::Index:
    return "Index";
  case Node::Kind::Member:
    return "Member";
  case Node::Kind::Cast:
    return "Cast";
  case Node::Kind::Sizeof:
    return "Sizeof";
  case Node::Kind::Comma:
    return "Comma";
  case Node::Kind::InitList:
    return "InitList";
  case Node::Kind::Compound:
    return "Compound";
  case Node::Kind::DeclStmt:
    return "DeclStmt";
  case Node::Kind::ExprStmt:
    return "ExprStmt";
  case Node::Kind::If:
    return "If";
  case Node::Kind::While:
    return "While";
  case Node::Kind::Do:
    return "Do";
  case Node::Kind::For:
    return "For";
  case Node::Kind::Return:
    return "Return";
  case Node::Kind::Break:
    return "Break";
  case Node::Kind::Continue:
    return "Continue";
  case Node::Kind::Switch:
    return "Switch";
  case Node::Kind::Case:
    return "Case";
  case Node::Kind::Null:
    return "Null";
  case Node::Kind::Var:
    return "Var";
  case Node::Kind::Function:
    return "Function";
  case Node::Kind::Record:
    return "Record";
  case Node::Kind::Typedef:
    return "Typedef";
  case Node::Kind::Enum:
    return "Enum";
  }
  return "Unknown";
}
