# Empty dependencies file for poce_graph.
# This may be replaced when dependencies are built.
