//===- tests/retract_test.cpp - Constraint retraction ----------------------===//
//
// Part of the poce project.
//
//===----------------------------------------------------------------------===//
//
// The retraction correctness oracle: after any sequence of adds and
// retracts, the solver's rendered least solutions must be identical to a
// fresh solve of the surviving input lines — across graph form, cycle
// elimination, closure schedule, and preprocessing combos. Solutions are
// compared as rendered text because the incremental solver's TermTable
// still interns terms of retracted lines, so raw ExprIds differ from a
// fresh solver's.
//
//===----------------------------------------------------------------------===//

#include "setcon/ConstraintFile.h"
#include "setcon/ConstraintSolver.h"
#include "support/PRNG.h"

#include <gtest/gtest.h>

#include <algorithm>
#include <string>
#include <vector>

using namespace poce;

namespace {

/// One solver + system pair fed from textual lines (the tagged path the
/// serve layer uses, so retraction by line text works).
struct FileHarness {
  ConstructorTable Constructors;
  TermTable Terms;
  ConstraintSolver Solver;
  ConstraintSystemFile System;

  explicit FileHarness(SolverOptions Options)
      : Terms(Constructors), Solver(Terms, Options) {}

  void add(const std::string &Line) {
    Status St = System.addLine(Line, Solver);
    ASSERT_TRUE(St.ok()) << "line '" << Line << "': " << St.toString();
  }

  bool retract(const std::string &Line) {
    std::string Canon;
    Status St = System.canonicalizeConstraint(Line, Solver, Canon);
    EXPECT_TRUE(St.ok()) << St.toString();
    bool Removed = Solver.retract(Canon);
    if (Removed)
      EXPECT_TRUE(System.removeConstraint(Canon));
    return Removed;
  }

  /// Rendered least solution of every declared variable, each sorted by
  /// text (ExprId spaces differ between incremental and fresh solvers).
  std::vector<std::vector<std::string>> solutions() {
    std::vector<std::vector<std::string>> Out;
    for (uint32_t I = 0; I != Solver.numCreations(); ++I) {
      VarId Var = Solver.varOfCreation(I);
      std::vector<std::string> Rendered;
      for (ExprId Term : Solver.leastSolution(Var))
        Rendered.push_back(Solver.exprStr(Term));
      std::sort(Rendered.begin(), Rendered.end());
      Out.push_back(std::move(Rendered));
    }
    return Out;
  }
};

std::vector<std::vector<std::string>>
freshSolutions(SolverOptions Options, const std::vector<std::string> &Decls,
               const std::vector<std::string> &Lines) {
  FileHarness Fresh(Options);
  for (const std::string &Line : Decls)
    Fresh.add(Line);
  for (const std::string &Line : Lines)
    Fresh.add(Line);
  return Fresh.solutions();
}

/// The configuration sweep the oracle runs over: SF/IF x None/Online x
/// Worklist/Wave x None/Offline preprocessing.
std::vector<SolverOptions> sweepConfigs(uint64_t Seed) {
  std::vector<SolverOptions> Configs;
  for (GraphForm Form : {GraphForm::Standard, GraphForm::Inductive})
    for (CycleElim Elim : {CycleElim::None, CycleElim::Online})
      for (ClosureMode Closure : {ClosureMode::Worklist, ClosureMode::Wave})
        for (PreprocessMode Pre :
             {PreprocessMode::None, PreprocessMode::Offline}) {
          SolverOptions Options = makeConfig(Form, Elim, Seed);
          Options.Closure = Closure;
          Options.Preprocess = Pre;
          Configs.push_back(Options);
        }
  return Configs;
}

} // namespace

//===----------------------------------------------------------------------===//
// Basic semantics
//===----------------------------------------------------------------------===//

TEST(RetractTest, ChainRetractionDropsDownstreamSources) {
  for (GraphForm Form : {GraphForm::Standard, GraphForm::Inductive}) {
    FileHarness H(makeConfig(Form, CycleElim::Online));
    H.add("var a b c d");
    H.add("cons s");
    H.add("s <= a");
    H.add("a <= b");
    H.add("b <= c");
    H.add("c <= d");
    EXPECT_EQ(H.solutions(),
              (std::vector<std::vector<std::string>>{
                  {"s"}, {"s"}, {"s"}, {"s"}}));

    ASSERT_TRUE(H.retract("b <= c"));
    EXPECT_EQ(H.solutions(),
              (std::vector<std::vector<std::string>>{
                  {"s"}, {"s"}, {}, {}}));
    EXPECT_TRUE(H.Solver.verifyGraphInvariants());

    // Re-adding the line restores the original solutions.
    H.add("b <= c");
    EXPECT_EQ(H.solutions(),
              (std::vector<std::vector<std::string>>{
                  {"s"}, {"s"}, {"s"}, {"s"}}));
  }
}

TEST(RetractTest, UnknownTagIsRejected) {
  FileHarness H(makeConfig(GraphForm::Inductive, CycleElim::Online));
  H.add("var a b");
  H.add("a <= b");
  EXPECT_FALSE(H.Solver.retract("b <= a"));
  EXPECT_TRUE(H.Solver.hasRootTag("a <= b"));
  EXPECT_FALSE(H.Solver.hasRootTag("b <= a"));
  EXPECT_EQ(H.Solver.stats().Retractions, 0u);
}

TEST(RetractTest, DuplicateLineRetractsOneInstance) {
  FileHarness H(makeConfig(GraphForm::Standard, CycleElim::Online));
  H.add("var a b");
  H.add("cons s");
  H.add("s <= a");
  H.add("a <= b");
  H.add("a <= b"); // Duplicate: one retraction must leave the edge alive.
  ASSERT_TRUE(H.retract("a <= b"));
  EXPECT_EQ(H.solutions(),
            (std::vector<std::vector<std::string>>{{"s"}, {"s"}}));
  ASSERT_TRUE(H.retract("a <= b"));
  EXPECT_EQ(H.solutions(),
            (std::vector<std::vector<std::string>>{{"s"}, {}}));
  EXPECT_FALSE(H.retract("a <= b"));
}

TEST(RetractTest, ConstructedTermRetraction) {
  // Retracting a source term feeding a decomposition must unwind the
  // derived edges the decomposition produced.
  for (GraphForm Form : {GraphForm::Standard, GraphForm::Inductive}) {
    FileHarness H(makeConfig(Form, CycleElim::Online));
    H.add("var p x y");
    H.add("cons s");
    H.add("cons ref + -");
    H.add("s <= x");
    H.add("ref(x, y) <= p");
    H.add("p <= ref(1, y)");  // Write through p: x's contents reach y...
    H.add("p <= ref(y, 0)");  // ...and read back out of p into y.
    auto Before = H.solutions();
    ASSERT_EQ(Before[2], std::vector<std::string>{"s"}); // y saw s.

    ASSERT_TRUE(H.retract("ref(x, y) <= p"));
    auto After = H.solutions();
    EXPECT_EQ(After[1], std::vector<std::string>{"s"}); // x keeps s.
    EXPECT_EQ(After[2], std::vector<std::string>{});    // y lost it.
    EXPECT_EQ(After,
              freshSolutions(H.Solver.options(),
                             {"var p x y", "cons s", "cons ref + -"},
                             {"s <= x", "p <= ref(1, y)", "p <= ref(y, 0)"}));
  }
}

//===----------------------------------------------------------------------===//
// Collapse maintenance
//===----------------------------------------------------------------------===//

TEST(RetractTest, BrokenCycleSplitsCollapse) {
  FileHarness H(makeConfig(GraphForm::Inductive, CycleElim::Online));
  H.add("var a b c");
  H.add("cons s");
  H.add("s <= a");
  H.add("a <= b");
  H.add("b <= c");
  H.add("c <= a");
  H.Solver.ensureClosed();
  ASSERT_EQ(H.Solver.stats().CyclesCollapsed, 1u);
  EXPECT_EQ(H.solutions(),
            (std::vector<std::vector<std::string>>{{"s"}, {"s"}, {"s"}}));

  ASSERT_TRUE(H.retract("b <= c"));
  EXPECT_EQ(H.Solver.stats().CollapsesSplit, 1u);
  EXPECT_EQ(H.Solver.stats().Retractions, 1u);
  EXPECT_EQ(H.Solver.stats().ConeVarsRecomputed, 3u);
  EXPECT_EQ(H.solutions(),
            (std::vector<std::vector<std::string>>{{"s"}, {"s"}, {}}));
  EXPECT_TRUE(H.Solver.verifyGraphInvariants());
}

TEST(RetractTest, SurvivingCycleStaysCollapsed) {
  // The class's witness cycle survives the retraction of an unrelated
  // constraint that still pulls the class into the cone.
  FileHarness H(makeConfig(GraphForm::Inductive, CycleElim::Online));
  H.add("var a b");
  H.add("cons s");
  H.add("cons t");
  H.add("a <= b");
  H.add("b <= a");
  H.add("s <= a");
  H.add("t <= a");
  H.Solver.ensureClosed();
  ASSERT_EQ(H.Solver.stats().CyclesCollapsed, 1u);

  ASSERT_TRUE(H.retract("t <= a"));
  EXPECT_EQ(H.Solver.stats().CollapsesSplit, 0u);
  // Still one class: both names resolve to the same representative.
  EXPECT_EQ(H.Solver.rep(0), H.Solver.rep(1));
  EXPECT_EQ(H.solutions(),
            (std::vector<std::vector<std::string>>{{"s"}, {"s"}}));
}

TEST(RetractTest, GoldenChainConeCounters) {
  // s <= a <= b <= c <= d; retracting a <= b seeds {a, b} and the
  // forward closure pulls in c and d: exactly four cone variables, no
  // collapse involved.
  FileHarness H(makeConfig(GraphForm::Standard, CycleElim::Online));
  H.add("var a b c d");
  H.add("cons s");
  H.add("s <= a");
  H.add("a <= b");
  H.add("b <= c");
  H.add("c <= d");
  H.Solver.ensureClosed();
  ASSERT_TRUE(H.retract("a <= b"));
  EXPECT_EQ(H.Solver.stats().Retractions, 1u);
  EXPECT_EQ(H.Solver.stats().ConeVarsRecomputed, 4u);
  EXPECT_EQ(H.Solver.stats().CollapsesSplit, 0u);
}

TEST(RetractTest, OfflineMergedClassFallsBackToConeRecompute) {
  // Under offline preprocessing an HVN copy chain is merged without any
  // witness cycle; retracting the line that feeds it must split the
  // merged class and still match a fresh offline solve of the survivors.
  SolverOptions Options = makeConfig(GraphForm::Inductive, CycleElim::Online);
  Options.Preprocess = PreprocessMode::Offline;
  FileHarness H(Options);
  std::vector<std::string> Decls = {"var a b c", "cons s"};
  std::vector<std::string> Lines = {"s <= a", "a <= b", "b <= c"};
  for (const std::string &Line : Decls)
    H.add(Line);
  for (const std::string &Line : Lines)
    H.add(Line);
  (void)H.solutions(); // Forces the offline pass + closure.

  ASSERT_TRUE(H.retract("a <= b"));
  Lines.erase(std::find(Lines.begin(), Lines.end(), "a <= b"));
  EXPECT_EQ(H.solutions(), freshSolutions(Options, Decls, Lines));
  EXPECT_GE(H.Solver.stats().ConeVarsRecomputed, 1u);
}

//===----------------------------------------------------------------------===//
// Mutation epochs (the cache-invariant the serve layer keys on)
//===----------------------------------------------------------------------===//

TEST(RetractTest, EpochAdvancesOnShrinkThenRegrowToSamePopcount) {
  // The popcount trap: {sa} and {sb} have the same population count but
  // different members. The mutation epoch must distinguish all three
  // states so a cached view can never be served stale.
  for (GraphForm Form : {GraphForm::Standard, GraphForm::Inductive}) {
    FileHarness H(makeConfig(Form, CycleElim::Online));
    H.add("var x");
    H.add("cons sa");
    H.add("cons sb");
    H.add("sa <= x");
    (void)H.solutions();
    VarId Rep = H.Solver.rep(H.Solver.varOfCreation(0));
    uint64_t E1 = H.Solver.mutationEpoch(Rep);

    ASSERT_TRUE(H.retract("sa <= x"));
    (void)H.solutions();
    uint64_t E2 = H.Solver.mutationEpoch(Rep);
    EXPECT_NE(E1, E2);

    H.add("sb <= x");
    (void)H.solutions();
    uint64_t E3 = H.Solver.mutationEpoch(Rep);
    EXPECT_NE(E2, E3);
    EXPECT_NE(E1, E3);
  }
}

//===----------------------------------------------------------------------===//
// Randomized oracle across the full configuration sweep
//===----------------------------------------------------------------------===//

namespace {

/// Deterministic random corpus in canonical line text (the generator
/// writes tags exactly as exprToText renders them).
struct RandomSystem {
  std::vector<std::string> Decls;
  std::vector<std::string> Lines;
};

RandomSystem makeRandomSystem(uint64_t Seed, uint32_t NumVars,
                              uint32_t NumLines) {
  PRNG Rng(Seed * 7919 + 17);
  RandomSystem Out;
  std::string VarDecl = "var";
  for (uint32_t I = 0; I != NumVars; ++I)
    VarDecl += " v" + std::to_string(I);
  Out.Decls.push_back(VarDecl);
  for (int I = 0; I != 4; ++I)
    Out.Decls.push_back("cons s" + std::to_string(I));
  Out.Decls.push_back("cons ref + -");

  auto V = [&] { return "v" + std::to_string(Rng.nextBelow(NumVars)); };
  auto S = [&] { return "s" + std::to_string(Rng.nextBelow(4)); };
  for (uint32_t I = 0; I != NumLines; ++I) {
    switch (Rng.nextBelow(5)) {
    case 0:
      Out.Lines.push_back(V() + " <= " + V());
      break;
    case 1:
      Out.Lines.push_back(S() + " <= " + V());
      break;
    case 2:
      Out.Lines.push_back("ref(" + V() + ", " + V() + ") <= " + V());
      break;
    case 3: // Write through a pointer.
      Out.Lines.push_back(V() + " <= ref(1, " + V() + ")");
      break;
    case 4: // Read out of a pointer.
      Out.Lines.push_back(V() + " <= ref(" + V() + ", 0)");
      break;
    }
  }
  return Out;
}

} // namespace

class RetractSweepTest : public testing::TestWithParam<uint64_t> {};

TEST_P(RetractSweepTest, RetractionMatchesFreshSolveOfSurvivors) {
  uint64_t Seed = GetParam();
  RandomSystem Sys = makeRandomSystem(Seed, /*NumVars=*/20, /*NumLines=*/50);

  for (const SolverOptions &Options : sweepConfigs(Seed)) {
    FileHarness H(Options);
    for (const std::string &Line : Sys.Decls)
      H.add(Line);
    for (const std::string &Line : Sys.Lines)
      H.add(Line);
    (void)H.solutions(); // Settle (and run any offline pass) before retracts.

    std::vector<std::string> Survivors = Sys.Lines;
    PRNG Rng(Seed * 31 + 7);
    for (int Round = 0; Round != 6 && !Survivors.empty(); ++Round) {
      size_t Victim = Rng.nextBelow(static_cast<uint32_t>(Survivors.size()));
      std::string Line = Survivors[Victim];
      Survivors.erase(Survivors.begin() + Victim);
      ASSERT_TRUE(H.retract(Line))
          << "config " << Options.configName() << " line '" << Line << "'";
      ASSERT_TRUE(H.Solver.verifyGraphInvariants());
      EXPECT_EQ(H.solutions(),
                freshSolutions(Options, Sys.Decls, Survivors))
          << "config " << Options.configName() << " closure "
          << (Options.Closure == ClosureMode::Wave ? "wave" : "worklist")
          << " preprocess "
          << (Options.Preprocess == PreprocessMode::Offline ? "offline"
                                                            : "none")
          << " after retracting '" << Line << "'";
    }
    EXPECT_EQ(H.Solver.stats().Retractions,
              std::min<uint64_t>(6, Sys.Lines.size()));
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, RetractSweepTest,
                         testing::Range<uint64_t>(1, 6));
