//===- examples/model_explorer.cpp - Exploring the analytical model --------===//
//
// Part of the poce project.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Explores Section 5's analytical model interactively: prints the
/// expected-work curves for standard vs inductive form across graph sizes,
/// the Theorem 5.1 ratio as n grows, and the Theorem 5.2 reachable-set
/// bound as density k varies — the quantities that explain *why* inductive
/// form wins and why partial online detection is cheap.
///
/// Build & run:  ./build/examples/model_explorer
///
//===----------------------------------------------------------------------===//

#include "model/Model.h"
#include "support/Format.h"

#include <cstdio>

using namespace poce;

int main() {
  std::printf("Expected edge additions on random constraint graphs\n");
  std::printf("(p = 1/n, m = 2n/3; the paper's initial-graph density)\n\n");
  TextTable Work({"n", "E[X_SF]", "E[X_IF]", "SF/IF"});
  for (uint64_t N : {100ULL, 1000ULL, 10000ULL, 100000ULL, 1000000ULL}) {
    uint64_t M = 2 * N / 3;
    double P = 1.0 / static_cast<double>(N);
    double SF = model::expectedAdditionsSF(N, M, P);
    double IF = model::expectedAdditionsIF(N, M, P);
    Work.addRow({formatGrouped(N), formatDouble(SF, 0), formatDouble(IF, 0),
                 formatDouble(SF / IF, 3)});
  }
  Work.print();
  std::printf("\nTheorem 5.1: the ratio approaches ~2.5 — standard form "
              "does ~2.5x the work of inductive form.\n\n");

  std::printf("Expected variables reachable by a chain search "
              "(Theorem 5.2)\n");
  std::printf("(final-graph density p = k/n; the paper's benchmarks have "
              "k ~ 2)\n\n");
  TextTable Reach({"k", "E[R_X] (n=100000)", "closed form (e^k-1-k)/k"});
  for (double K : {0.5, 1.0, 1.5, 2.0, 2.5, 3.0, 4.0, 6.0}) {
    Reach.addRow({formatDouble(K, 1),
                  formatDouble(model::expectedReachable(100000, K / 100000.0),
                               3),
                  formatDouble(model::reachableClosedForm(K), 3)});
  }
  Reach.print();
  std::printf("\nAt k = 2 a chain search visits ~2.2 variables on average "
              "— that is why online detection costs only constant time per "
              "edge. Past k ~ 4 the cost climbs steeply: the method relies "
              "on sparse graphs.\n");
  return 0;
}
