//===- minic/PrettyPrinter.cpp - AST rendering ------------------------------===//
//
// Part of the poce project.
//
//===----------------------------------------------------------------------===//

#include "minic/PrettyPrinter.h"

#include "support/ErrorHandling.h"

using namespace poce;
using namespace poce::minic;

//===----------------------------------------------------------------------===//
// Declaration type normalization
//===----------------------------------------------------------------------===//

namespace {

/// Splits a rendered declaration type ("int *[]", "struct node *") into a
/// base type, pointer depth, and array dimension count, producing source
/// text that parses back to an analysis-equivalent declaration. Function
/// deriving ("(fn)") is normalized to a pointer: the analysis only
/// distinguishes array-ness and (separately tracked) function-ness.
struct NormalizedType {
  std::string Base;
  unsigned Pointers = 0;
  unsigned ArrayDims = 0;
};

NormalizedType normalizeType(const std::string &TypeText) {
  NormalizedType Result;
  size_t Pos = 0;
  // The base runs until the first deriving token.
  while (Pos < TypeText.size() && TypeText[Pos] != '*' &&
         TypeText[Pos] != '[' && TypeText[Pos] != '(')
    Result.Base.push_back(TypeText[Pos++]);
  while (!Result.Base.empty() && Result.Base.back() == ' ')
    Result.Base.pop_back();
  for (; Pos < TypeText.size(); ++Pos) {
    if (TypeText[Pos] == '*')
      ++Result.Pointers;
    else if (TypeText[Pos] == '[')
      ++Result.ArrayDims;
    else if (TypeText[Pos] == '(')
      ++Result.Pointers; // Grouping/function deriving: a pointer suffices.
  }
  if (Result.Base.empty())
    Result.Base = "int";
  return Result;
}

std::string declToSource(const std::string &Name,
                         const std::string &TypeText) {
  NormalizedType Type = normalizeType(TypeText);
  std::string Out = Type.Base + " ";
  for (unsigned I = 0; I != Type.Pointers; ++I)
    Out += "*";
  Out += Name;
  for (unsigned I = 0; I != Type.ArrayDims; ++I)
    Out += "[1]";
  return Out;
}

std::string indentBy(unsigned Indent) { return std::string(Indent, ' '); }

} // namespace

//===----------------------------------------------------------------------===//
// Expressions
//===----------------------------------------------------------------------===//

static const char *binaryOpSpelling(BinaryOp Op) {
  switch (Op) {
  case BinaryOp::Add:
    return "+";
  case BinaryOp::Sub:
    return "-";
  case BinaryOp::Mul:
    return "*";
  case BinaryOp::Div:
    return "/";
  case BinaryOp::Rem:
    return "%";
  case BinaryOp::Shl:
    return "<<";
  case BinaryOp::Shr:
    return ">>";
  case BinaryOp::Lt:
    return "<";
  case BinaryOp::Gt:
    return ">";
  case BinaryOp::Le:
    return "<=";
  case BinaryOp::Ge:
    return ">=";
  case BinaryOp::Eq:
    return "==";
  case BinaryOp::Ne:
    return "!=";
  case BinaryOp::And:
    return "&";
  case BinaryOp::Or:
    return "|";
  case BinaryOp::Xor:
    return "^";
  case BinaryOp::LogicalAnd:
    return "&&";
  case BinaryOp::LogicalOr:
    return "||";
  }
  poce_unreachable("invalid binary operator");
}

static const char *assignOpSpelling(AssignOp Op) {
  switch (Op) {
  case AssignOp::Assign:
    return "=";
  case AssignOp::AddAssign:
    return "+=";
  case AssignOp::SubAssign:
    return "-=";
  case AssignOp::MulAssign:
    return "*=";
  case AssignOp::DivAssign:
    return "/=";
  case AssignOp::RemAssign:
    return "%=";
  case AssignOp::AndAssign:
    return "&=";
  case AssignOp::OrAssign:
    return "|=";
  case AssignOp::XorAssign:
    return "^=";
  case AssignOp::ShlAssign:
    return "<<=";
  case AssignOp::ShrAssign:
    return ">>=";
  }
  poce_unreachable("invalid assignment operator");
}

static std::string escapeString(const std::string &Value) {
  std::string Out;
  for (char C : Value) {
    switch (C) {
    case '\n':
      Out += "\\n";
      break;
    case '\t':
      Out += "\\t";
      break;
    case '\r':
      Out += "\\r";
      break;
    case '\0':
      Out += "\\0";
      break;
    case '"':
      Out += "\\\"";
      break;
    case '\\':
      Out += "\\\\";
      break;
    default:
      Out.push_back(C);
    }
  }
  return Out;
}

std::string poce::minic::printExpr(const Expr *E) {
  switch (E->kind()) {
  case Node::Kind::IntLiteral:
    return std::to_string(cast<IntLiteralExpr>(E)->Value);
  case Node::Kind::FloatLiteral:
    return std::to_string(cast<FloatLiteralExpr>(E)->Value);
  case Node::Kind::CharLiteral: {
    const auto *Char = cast<CharLiteralExpr>(E);
    return "'" + escapeString(Char->Value) + "'";
  }
  case Node::Kind::StringLiteral:
    return "\"" + escapeString(cast<StringLiteralExpr>(E)->Value) + "\"";
  case Node::Kind::Ident:
    return cast<IdentExpr>(E)->Name;
  case Node::Kind::Unary: {
    const auto *Unary = cast<UnaryExpr>(E);
    std::string Sub = printExpr(Unary->Sub);
    switch (Unary->Op) {
    case UnaryOp::AddressOf:
      return "(&" + Sub + ")";
    case UnaryOp::Deref:
      return "(*" + Sub + ")";
    case UnaryOp::Plus:
      return "(+" + Sub + ")";
    case UnaryOp::Minus:
      return "(-" + Sub + ")";
    case UnaryOp::Not:
      return "(~" + Sub + ")";
    case UnaryOp::LogicalNot:
      return "(!" + Sub + ")";
    case UnaryOp::PreInc:
      return "(++" + Sub + ")";
    case UnaryOp::PreDec:
      return "(--" + Sub + ")";
    case UnaryOp::PostInc:
      return "(" + Sub + "++)";
    case UnaryOp::PostDec:
      return "(" + Sub + "--)";
    }
    poce_unreachable("invalid unary operator");
  }
  case Node::Kind::Binary: {
    const auto *Binary = cast<BinaryExpr>(E);
    return "(" + printExpr(Binary->Lhs) + " " +
           binaryOpSpelling(Binary->Op) + " " + printExpr(Binary->Rhs) + ")";
  }
  case Node::Kind::Assign: {
    const auto *Assign = cast<AssignExpr>(E);
    return "(" + printExpr(Assign->Lhs) + " " +
           assignOpSpelling(Assign->Op) + " " + printExpr(Assign->Rhs) + ")";
  }
  case Node::Kind::Conditional: {
    const auto *Cond = cast<ConditionalExpr>(E);
    return "(" + printExpr(Cond->Cond) + " ? " + printExpr(Cond->TrueExpr) +
           " : " + printExpr(Cond->FalseExpr) + ")";
  }
  case Node::Kind::Call: {
    const auto *Call = cast<CallExpr>(E);
    std::string Out = printExpr(Call->Callee) + "(";
    for (size_t I = 0; I != Call->Args.size(); ++I) {
      if (I)
        Out += ", ";
      Out += printExpr(Call->Args[I]);
    }
    return Out + ")";
  }
  case Node::Kind::Index: {
    const auto *Index = cast<IndexExpr>(E);
    return printExpr(Index->Base) + "[" + printExpr(Index->Index) + "]";
  }
  case Node::Kind::Member: {
    const auto *Member = cast<MemberExpr>(E);
    return printExpr(Member->Base) + (Member->IsArrow ? "->" : ".") +
           Member->Member;
  }
  case Node::Kind::Cast: {
    const auto *Cast = cast<CastExpr>(E);
    NormalizedType Type = normalizeType(Cast->TypeText);
    std::string Text = Type.Base;
    for (unsigned I = 0; I != Type.Pointers + Type.ArrayDims; ++I)
      Text += "*";
    return "((" + Text + ")" + printExpr(Cast->Sub) + ")";
  }
  case Node::Kind::Sizeof: {
    const auto *Sizeof = cast<SizeofExpr>(E);
    if (Sizeof->Sub)
      return "sizeof(" + printExpr(Sizeof->Sub) + ")";
    NormalizedType Type = normalizeType(Sizeof->TypeText);
    std::string Text = Type.Base;
    for (unsigned I = 0; I != Type.Pointers + Type.ArrayDims; ++I)
      Text += "*";
    return "sizeof(" + Text + ")";
  }
  case Node::Kind::Comma: {
    const auto *Comma = cast<CommaExpr>(E);
    return "(" + printExpr(Comma->Lhs) + ", " + printExpr(Comma->Rhs) + ")";
  }
  case Node::Kind::InitList: {
    const auto *List = cast<InitListExpr>(E);
    std::string Out = "{";
    for (size_t I = 0; I != List->Inits.size(); ++I) {
      if (I)
        Out += ", ";
      Out += printExpr(List->Inits[I]);
    }
    return Out + "}";
  }
  default:
    poce_unreachable("non-expression node");
  }
}

//===----------------------------------------------------------------------===//
// Statements and declarations
//===----------------------------------------------------------------------===//

static std::string printVarDecl(const VarDecl *Var) {
  std::string Out = declToSource(Var->Name, Var->TypeText);
  if (Var->Init)
    Out += " = " + printExpr(Var->Init);
  return Out + ";";
}

std::string poce::minic::printStmt(const Stmt *S, unsigned Indent) {
  std::string Pad = indentBy(Indent);
  switch (S->kind()) {
  case Node::Kind::Compound: {
    std::string Out = Pad + "{\n";
    for (const Stmt *Sub : cast<CompoundStmt>(S)->Body)
      Out += printStmt(Sub, Indent + 2);
    return Out + Pad + "}\n";
  }
  case Node::Kind::DeclStmt: {
    std::string Out;
    for (const VarDecl *Var : cast<DeclStmt>(S)->Decls)
      Out += Pad + printVarDecl(Var) + "\n";
    return Out;
  }
  case Node::Kind::ExprStmt:
    return Pad + printExpr(cast<ExprStmt>(S)->E) + ";\n";
  case Node::Kind::If: {
    const auto *If = cast<IfStmt>(S);
    std::string Out = Pad + "if (" + printExpr(If->Cond) + ")\n" +
                      printStmt(If->Then, Indent + 2);
    if (If->Else)
      Out += Pad + "else\n" + printStmt(If->Else, Indent + 2);
    return Out;
  }
  case Node::Kind::While: {
    const auto *While = cast<WhileStmt>(S);
    return Pad + "while (" + printExpr(While->Cond) + ")\n" +
           printStmt(While->Body, Indent + 2);
  }
  case Node::Kind::Do: {
    const auto *Do = cast<DoStmt>(S);
    return Pad + "do\n" + printStmt(Do->Body, Indent + 2) + Pad +
           "while (" + printExpr(Do->Cond) + ");\n";
  }
  case Node::Kind::For: {
    const auto *For = cast<ForStmt>(S);
    std::string Init;
    if (For->Init) {
      // Inline the initializer without its trailing newline/indent.
      std::string InitText = printStmt(For->Init, 0);
      while (!InitText.empty() &&
             (InitText.back() == '\n' || InitText.back() == ' '))
        InitText.pop_back();
      Init = InitText;
    } else {
      Init = ";";
    }
    return Pad + "for (" + Init + " " +
           (For->Cond ? printExpr(For->Cond) : std::string()) + "; " +
           (For->Inc ? printExpr(For->Inc) : std::string()) + ")\n" +
           printStmt(For->Body, Indent + 2);
  }
  case Node::Kind::Return: {
    const auto *Return = cast<ReturnStmt>(S);
    if (Return->Value)
      return Pad + "return " + printExpr(Return->Value) + ";\n";
    return Pad + "return;\n";
  }
  case Node::Kind::Break:
    return Pad + "break;\n";
  case Node::Kind::Continue:
    return Pad + "continue;\n";
  case Node::Kind::Switch: {
    const auto *Switch = cast<SwitchStmt>(S);
    return Pad + "switch (" + printExpr(Switch->Cond) + ")\n" +
           printStmt(Switch->Body, Indent + 2);
  }
  case Node::Kind::Case: {
    const auto *Case = cast<CaseStmt>(S);
    std::string Label =
        Case->Value ? "case " + printExpr(Case->Value) + ":" : "default:";
    return Pad + Label + "\n" + printStmt(Case->Sub, Indent + 2);
  }
  case Node::Kind::Null:
    return Pad + ";\n";
  default:
    poce_unreachable("non-statement node");
  }
}

std::string poce::minic::printUnit(const TranslationUnit &Unit) {
  std::string Out;
  for (const Decl *D : Unit.Decls) {
    switch (D->kind()) {
    case Node::Kind::Var:
      Out += printVarDecl(cast<VarDecl>(D)) + "\n";
      break;
    case Node::Kind::Function: {
      const auto *Fn = cast<FunctionDecl>(D);
      NormalizedType Return = normalizeType(Fn->ReturnTypeText);
      Out += Return.Base + " ";
      for (unsigned I = 0; I != Return.Pointers + Return.ArrayDims; ++I)
        Out += "*";
      Out += Fn->Name + "(";
      if (Fn->Params.empty() && !Fn->Variadic)
        Out += "void";
      for (size_t I = 0; I != Fn->Params.size(); ++I) {
        if (I)
          Out += ", ";
        Out += declToSource(Fn->Params[I]->Name, Fn->Params[I]->TypeText);
      }
      if (Fn->Variadic)
        Out += ", ...";
      Out += ")";
      if (Fn->Body) {
        Out += "\n" + printStmt(Fn->Body, 0);
      } else {
        Out += ";\n";
      }
      break;
    }
    case Node::Kind::Record: {
      const auto *Record = cast<RecordDecl>(D);
      Out += std::string(Record->IsUnion ? "union " : "struct ") +
             Record->Name + " {\n";
      for (const VarDecl *Field : Record->Fields)
        Out += "  " + printVarDecl(Field) + "\n";
      Out += "};\n";
      break;
    }
    case Node::Kind::Typedef: {
      const auto *Typedef = cast<TypedefDecl>(D);
      Out += "typedef " + declToSource(Typedef->Name, Typedef->TypeText) +
             ";\n";
      break;
    }
    case Node::Kind::Enum: {
      const auto *Enum = cast<EnumDecl>(D);
      Out += "enum " + Enum->Name + " {";
      for (size_t I = 0; I != Enum->Enumerators.size(); ++I) {
        if (I)
          Out += ",";
        Out += " " + Enum->Enumerators[I];
      }
      Out += " };\n";
      break;
    }
    default:
      poce_unreachable("non-declaration node at top level");
    }
  }
  return Out;
}

//===----------------------------------------------------------------------===//
// Structural dump
//===----------------------------------------------------------------------===//

namespace {

class Dumper {
public:
  std::string run(const TranslationUnit &Unit) {
    for (const Decl *D : Unit.Decls)
      dumpDecl(D, 0);
    return std::move(Out);
  }

private:
  void lineAt(unsigned Indent, const std::string &Text) {
    Out += indentBy(Indent) + Text + "\n";
  }

  void dumpDecl(const Decl *D, unsigned Indent) {
    std::string Header = std::string(nodeKindName(D->kind())) + " '" +
                         D->Name + "'";
    if (const auto *Var = dyn_cast<VarDecl>(D)) {
      lineAt(Indent, Header + " : " + Var->TypeText);
      if (Var->Init)
        dumpExpr(Var->Init, Indent + 2);
      return;
    }
    if (const auto *Fn = dyn_cast<FunctionDecl>(D)) {
      lineAt(Indent, Header + (Fn->Body ? "" : " (prototype)"));
      for (const VarDecl *Param : Fn->Params)
        dumpDecl(Param, Indent + 2);
      if (Fn->Body)
        dumpStmt(Fn->Body, Indent + 2);
      return;
    }
    if (const auto *Record = dyn_cast<RecordDecl>(D)) {
      lineAt(Indent, Header);
      for (const VarDecl *Field : Record->Fields)
        dumpDecl(Field, Indent + 2);
      return;
    }
    lineAt(Indent, Header);
  }

  void dumpStmt(const Stmt *S, unsigned Indent) {
    lineAt(Indent, nodeKindName(S->kind()));
    switch (S->kind()) {
    case Node::Kind::Compound:
      for (const Stmt *Sub : cast<CompoundStmt>(S)->Body)
        dumpStmt(Sub, Indent + 2);
      return;
    case Node::Kind::DeclStmt:
      for (const VarDecl *Var : cast<DeclStmt>(S)->Decls)
        dumpDecl(Var, Indent + 2);
      return;
    case Node::Kind::ExprStmt:
      dumpExpr(cast<ExprStmt>(S)->E, Indent + 2);
      return;
    case Node::Kind::If: {
      const auto *If = cast<IfStmt>(S);
      dumpExpr(If->Cond, Indent + 2);
      dumpStmt(If->Then, Indent + 2);
      if (If->Else)
        dumpStmt(If->Else, Indent + 2);
      return;
    }
    case Node::Kind::While: {
      dumpExpr(cast<WhileStmt>(S)->Cond, Indent + 2);
      dumpStmt(cast<WhileStmt>(S)->Body, Indent + 2);
      return;
    }
    case Node::Kind::Do: {
      dumpStmt(cast<DoStmt>(S)->Body, Indent + 2);
      dumpExpr(cast<DoStmt>(S)->Cond, Indent + 2);
      return;
    }
    case Node::Kind::For: {
      const auto *For = cast<ForStmt>(S);
      if (For->Init)
        dumpStmt(For->Init, Indent + 2);
      if (For->Cond)
        dumpExpr(For->Cond, Indent + 2);
      if (For->Inc)
        dumpExpr(For->Inc, Indent + 2);
      dumpStmt(For->Body, Indent + 2);
      return;
    }
    case Node::Kind::Return:
      if (cast<ReturnStmt>(S)->Value)
        dumpExpr(cast<ReturnStmt>(S)->Value, Indent + 2);
      return;
    case Node::Kind::Switch:
      dumpExpr(cast<SwitchStmt>(S)->Cond, Indent + 2);
      dumpStmt(cast<SwitchStmt>(S)->Body, Indent + 2);
      return;
    case Node::Kind::Case: {
      const auto *Case = cast<CaseStmt>(S);
      if (Case->Value)
        dumpExpr(Case->Value, Indent + 2);
      dumpStmt(Case->Sub, Indent + 2);
      return;
    }
    default:
      return;
    }
  }

  void dumpExpr(const Expr *E, unsigned Indent) {
    std::string Detail;
    if (const auto *Int = dyn_cast<IntLiteralExpr>(E))
      Detail = " " + std::to_string(Int->Value);
    else if (const auto *Ident = dyn_cast<IdentExpr>(E))
      Detail = " '" + Ident->Name + "'";
    else if (const auto *Member = dyn_cast<MemberExpr>(E))
      Detail = std::string(" ") + (Member->IsArrow ? "->" : ".") +
               Member->Member;
    else if (const auto *Str = dyn_cast<StringLiteralExpr>(E))
      Detail = " \"" + escapeString(Str->Value) + "\"";
    lineAt(Indent, std::string(nodeKindName(E->kind())) + Detail);
    switch (E->kind()) {
    case Node::Kind::Unary:
      dumpExpr(cast<UnaryExpr>(E)->Sub, Indent + 2);
      return;
    case Node::Kind::Binary:
      dumpExpr(cast<BinaryExpr>(E)->Lhs, Indent + 2);
      dumpExpr(cast<BinaryExpr>(E)->Rhs, Indent + 2);
      return;
    case Node::Kind::Assign:
      dumpExpr(cast<AssignExpr>(E)->Lhs, Indent + 2);
      dumpExpr(cast<AssignExpr>(E)->Rhs, Indent + 2);
      return;
    case Node::Kind::Conditional:
      dumpExpr(cast<ConditionalExpr>(E)->Cond, Indent + 2);
      dumpExpr(cast<ConditionalExpr>(E)->TrueExpr, Indent + 2);
      dumpExpr(cast<ConditionalExpr>(E)->FalseExpr, Indent + 2);
      return;
    case Node::Kind::Call: {
      dumpExpr(cast<CallExpr>(E)->Callee, Indent + 2);
      for (const Expr *Arg : cast<CallExpr>(E)->Args)
        dumpExpr(Arg, Indent + 2);
      return;
    }
    case Node::Kind::Index:
      dumpExpr(cast<IndexExpr>(E)->Base, Indent + 2);
      dumpExpr(cast<IndexExpr>(E)->Index, Indent + 2);
      return;
    case Node::Kind::Member:
      dumpExpr(cast<MemberExpr>(E)->Base, Indent + 2);
      return;
    case Node::Kind::Cast:
      dumpExpr(cast<CastExpr>(E)->Sub, Indent + 2);
      return;
    case Node::Kind::Sizeof:
      if (cast<SizeofExpr>(E)->Sub)
        dumpExpr(cast<SizeofExpr>(E)->Sub, Indent + 2);
      return;
    case Node::Kind::Comma:
      dumpExpr(cast<CommaExpr>(E)->Lhs, Indent + 2);
      dumpExpr(cast<CommaExpr>(E)->Rhs, Indent + 2);
      return;
    case Node::Kind::InitList:
      for (const Expr *Init : cast<InitListExpr>(E)->Inits)
        dumpExpr(Init, Indent + 2);
      return;
    default:
      return;
    }
  }

  std::string Out;
};

} // namespace

std::string poce::minic::dumpAST(const TranslationUnit &Unit) {
  return Dumper().run(Unit);
}
