/* An event loop with callback registration through function pointers —
   the dispatch pattern that makes call-graph construction depend on
   points-to analysis. */

extern void *malloc(unsigned long n);

typedef void (*handler_t)(int *state);

struct subscription {
  handler_t handler;
  int *state;
  struct subscription *next;
};

struct subscription *subscribers;
int clicks, keys, ticks;

void on_click(int *state) { *state = *state + 1; }
void on_key(int *state) { *state = *state + 2; }
void on_tick(int *state) { *state = 0; }

void subscribe(handler_t handler, int *state) {
  struct subscription *sub =
      (struct subscription *)malloc(sizeof(struct subscription));
  sub->handler = handler;
  sub->state = state;
  sub->next = subscribers;
  subscribers = sub;
}

void dispatch_all(void) {
  struct subscription *cur = subscribers;
  while (cur) {
    cur->handler(cur->state);
    cur = cur->next;
  }
}

handler_t pick(int which) {
  switch (which) {
  case 0:
    return on_click;
  case 1:
    return on_key;
  default:
    return on_tick;
  }
}

int main(void) {
  subscribe(on_click, &clicks);
  subscribe(on_key, &keys);
  subscribe(pick(2), &ticks);
  dispatch_all();
  return 0;
}
