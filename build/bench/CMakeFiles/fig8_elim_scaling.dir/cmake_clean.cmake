file(REMOVE_RECURSE
  "CMakeFiles/fig8_elim_scaling.dir/fig8_elim_scaling.cpp.o"
  "CMakeFiles/fig8_elim_scaling.dir/fig8_elim_scaling.cpp.o.d"
  "fig8_elim_scaling"
  "fig8_elim_scaling.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig8_elim_scaling.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
