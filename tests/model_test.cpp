//===- tests/model_test.cpp - Analytical model unit tests ------------------===//
//
// Part of the poce project.
//
//===----------------------------------------------------------------------===//

#include "model/Model.h"

#include <gtest/gtest.h>

#include <cmath>

using namespace poce;
using namespace poce::model;

TEST(ModelTest, TinyGraphByHand) {
  // n = 2, m = 1, only paths c -> X1 -> X2 etc. For SF:
  // E[X_SF(c,X)] = C(1,1) 1! p^2 = p^2; with mn = 2 such edges, plus
  // E[X_SF(c,c')] = 0 since m = 1.
  double P = 0.5;
  double Expected = 2 * (P * P);
  EXPECT_NEAR(expectedAdditionsSF(2, 1, P), Expected, 1e-12);
}

TEST(ModelTest, SFExceedsIF) {
  for (uint64_t N : {100ULL, 1000ULL, 10000ULL}) {
    uint64_t M = 2 * N / 3;
    double P = 1.0 / static_cast<double>(N);
    EXPECT_GT(expectedAdditionsSF(N, M, P), expectedAdditionsIF(N, M, P));
  }
}

TEST(ModelTest, Theorem51RatioApproaches2Point5) {
  // The paper: asymptotically E[X_SF]/E[X_IF] is about 2.5 at p = 1/n,
  // m/n = 2/3.
  double Ratio = theorem51Ratio(1000000);
  EXPECT_GT(Ratio, 2.0);
  EXPECT_LT(Ratio, 3.0);
  // The ratio grows toward its limit.
  EXPECT_GT(theorem51Ratio(100000), theorem51Ratio(1000) * 0.8);
}

TEST(ModelTest, Theorem52BoundAtK2) {
  // E[R_X] < (e^2 - 1 - 2)/2 ~ 2.19 at p = 2/n.
  double Bound = reachableClosedForm(2.0);
  EXPECT_NEAR(Bound, 2.194, 0.01);
  double Series = expectedReachable(100000, 2.0 / 100000.0);
  EXPECT_LE(Series, Bound + 1e-9);
  EXPECT_GT(Series, Bound * 0.95); // The series converges to the bound.
}

TEST(ModelTest, ClosedFormApproximationsTrackTheSeries) {
  // Section 5.3: at p = 1/n the closed forms approximate the exact series
  // within a modest factor for large n (they drop lower-order terms).
  for (uint64_t N : {10000ULL, 100000ULL, 1000000ULL}) {
    uint64_t M = 2 * N / 3;
    double P = 1.0 / static_cast<double>(N);
    double ExactSF = expectedAdditionsSF(N, M, P);
    double ApproxSF = approxAdditionsSF(N, M);
    EXPECT_GT(ApproxSF, ExactSF * 0.5);
    EXPECT_LT(ApproxSF, ExactSF * 2.0);
    double ExactIF = expectedAdditionsIF(N, M, P);
    double ApproxIF = approxAdditionsIF(N, M);
    EXPECT_GT(ApproxIF, ExactIF * 0.5);
    EXPECT_LT(ApproxIF, ExactIF * 2.0);
  }
}

TEST(ModelTest, ApproximateRatioAlsoApproaches2Point5) {
  double Ratio = approxAdditionsSF(1000000, 666666) /
                 approxAdditionsIF(1000000, 666666);
  EXPECT_NEAR(Ratio, 2.5, 0.25);
}

TEST(ModelTest, ReachableGrowsSharplyWithDensity) {
  double AtK2 = reachableClosedForm(2.0);
  double AtK6 = reachableClosedForm(6.0);
  EXPECT_GT(AtK6, AtK2 * 10); // "climbs sharply" past sparse densities.
}

TEST(ModelTest, SeriesMonotoneInP) {
  EXPECT_LT(expectedAdditionsSF(1000, 600, 0.0005),
            expectedAdditionsSF(1000, 600, 0.001));
  EXPECT_LT(expectedAdditionsIF(1000, 600, 0.0005),
            expectedAdditionsIF(1000, 600, 0.001));
  EXPECT_LT(expectedReachable(1000, 0.0005), expectedReachable(1000, 0.002));
}

TEST(ModelTest, DegenerateSizes) {
  EXPECT_EQ(expectedReachable(1, 0.5), 0.0);
  EXPECT_EQ(expectedAdditionsSF(1, 0, 0.5), 0.0);
  EXPECT_GE(expectedAdditionsIF(2, 1, 0.5), 0.0);
}

//===----------------------------------------------------------------------===//
// Monte-Carlo validation of the closed-form series
//===----------------------------------------------------------------------===//

struct MCCase {
  uint64_t N, M;
  double P;
};

class ModelSimulationTest : public testing::TestWithParam<MCCase> {};

TEST_P(ModelSimulationTest, SimulationMatchesSeries) {
  const MCCase &Case = GetParam();
  PRNG Rng(Case.N * 1000 + Case.M);
  SimulationResult Sim =
      simulateModel(Case.N, Case.M, Case.P, /*Trials=*/4000, Rng);
  double ExactSF = expectedAdditionsSF(Case.N, Case.M, Case.P);
  double ExactIF = expectedAdditionsIF(Case.N, Case.M, Case.P);
  double ExactReach = expectedReachable(Case.N, Case.P);
  // 4000 trials: expect agreement within ~10% (plus slack for tiny
  // absolute values).
  EXPECT_NEAR(Sim.AdditionsSF, ExactSF, std::max(0.05, ExactSF * 0.12));
  EXPECT_NEAR(Sim.AdditionsIF, ExactIF, std::max(0.05, ExactIF * 0.12));
  // The reachable series is an upper bound (it counts chains, not nodes),
  // tight for sparse graphs.
  EXPECT_LE(Sim.Reachable, ExactReach * 1.12 + 0.05);
  EXPECT_GE(Sim.Reachable, ExactReach * 0.6 - 0.05);
}

INSTANTIATE_TEST_SUITE_P(
    Cases, ModelSimulationTest,
    testing::Values(MCCase{5, 3, 0.2}, MCCase{6, 4, 1.0 / 6},
                    MCCase{8, 5, 1.0 / 8}, MCCase{8, 5, 2.0 / 8},
                    MCCase{10, 6, 1.0 / 10}),
    [](const auto &Info) {
      return "n" + std::to_string(Info.param.N) + "m" +
             std::to_string(Info.param.M) + "p" +
             std::to_string(int(Info.param.P * 1000));
    });
