
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/setcon/ConstraintFile.cpp" "src/setcon/CMakeFiles/poce_setcon.dir/ConstraintFile.cpp.o" "gcc" "src/setcon/CMakeFiles/poce_setcon.dir/ConstraintFile.cpp.o.d"
  "/root/repo/src/setcon/ConstraintSolver.cpp" "src/setcon/CMakeFiles/poce_setcon.dir/ConstraintSolver.cpp.o" "gcc" "src/setcon/CMakeFiles/poce_setcon.dir/ConstraintSolver.cpp.o.d"
  "/root/repo/src/setcon/Constructor.cpp" "src/setcon/CMakeFiles/poce_setcon.dir/Constructor.cpp.o" "gcc" "src/setcon/CMakeFiles/poce_setcon.dir/Constructor.cpp.o.d"
  "/root/repo/src/setcon/Oracle.cpp" "src/setcon/CMakeFiles/poce_setcon.dir/Oracle.cpp.o" "gcc" "src/setcon/CMakeFiles/poce_setcon.dir/Oracle.cpp.o.d"
  "/root/repo/src/setcon/Term.cpp" "src/setcon/CMakeFiles/poce_setcon.dir/Term.cpp.o" "gcc" "src/setcon/CMakeFiles/poce_setcon.dir/Term.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/support/CMakeFiles/poce_support.dir/DependInfo.cmake"
  "/root/repo/build/src/graph/CMakeFiles/poce_graph.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
