file(REMOVE_RECURSE
  "libpoce_cfa.a"
)
