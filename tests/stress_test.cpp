//===- tests/stress_test.cpp - Scale and edge-case stress tests ------------===//
//
// Part of the poce project.
//
//===----------------------------------------------------------------------===//

#include "setcon/ConstraintSolver.h"
#include "setcon/Oracle.h"
#include "support/PRNG.h"

#include <gtest/gtest.h>

using namespace poce;

namespace {

struct SolverHarness {
  ConstructorTable Constructors;
  TermTable Terms;
  ConstraintSolver Solver;

  explicit SolverHarness(SolverOptions Options)
      : Terms(Constructors), Solver(Terms, Options) {}

  VarId var(const std::string &Name) { return Solver.freshVar(Name); }
  ExprId v(VarId Var) { return Terms.var(Var); }
  ExprId source(const std::string &Name) {
    return Terms.cons(Constructors.getOrCreate(Name, {}), {});
  }
};

} // namespace

//===----------------------------------------------------------------------===//
// Deep structures: everything must be iterative or depth-bounded
//===----------------------------------------------------------------------===//

TEST(StressTest, VeryLongChainBothForms) {
  const uint32_t N = 100000;
  for (GraphForm Form : {GraphForm::Standard, GraphForm::Inductive}) {
    SolverHarness H(makeConfig(Form, CycleElim::Online));
    ExprId S = H.source("s");
    VarId First = H.var("v0");
    H.Solver.addConstraint(S, H.v(First));
    VarId Prev = First;
    for (uint32_t I = 1; I != N; ++I) {
      VarId Next = H.var("v" + std::to_string(I));
      H.Solver.addConstraint(H.v(Prev), H.v(Next));
      Prev = Next;
    }
    // The least solution pass over a 100k-deep pred chain must not
    // recurse.
    EXPECT_EQ(H.Solver.leastSolution(Prev), std::vector<ExprId>{S});
  }
}

TEST(StressTest, VeryLongCycleCollapses) {
  // A single 50k-cycle: online detection collapses progressively as the
  // ring closes; the result is one live variable... or at least a heavily
  // collapsed class with correct solutions.
  const uint32_t N = 50000;
  SolverHarness H(makeConfig(GraphForm::Inductive, CycleElim::Online));
  std::vector<VarId> Vars;
  for (uint32_t I = 0; I != N; ++I)
    Vars.push_back(H.var("r" + std::to_string(I)));
  ExprId S = H.source("s");
  H.Solver.addConstraint(S, H.v(Vars[0]));
  for (uint32_t I = 0; I != N; ++I)
    H.Solver.addConstraint(H.v(Vars[I]), H.v(Vars[(I + 1) % N]));
  H.Solver.finalize();
  // Every ring member sees the source.
  EXPECT_EQ(H.Solver.leastSolution(Vars[N / 2]), std::vector<ExprId>{S});
  EXPECT_EQ(H.Solver.leastSolution(Vars[N - 1]), std::vector<ExprId>{S});
}

TEST(StressTest, WideFanoutNode) {
  // One variable with tens of thousands of predecessors and successors;
  // pairing is quadratic in principle but bounded by distinct sources
  // here.
  const uint32_t Width = 20000;
  SolverHarness H(makeConfig(GraphForm::Standard, CycleElim::None));
  VarId Hub = H.var("hub");
  ExprId S = H.source("s");
  H.Solver.addConstraint(S, H.v(Hub));
  std::vector<VarId> Outs;
  for (uint32_t I = 0; I != Width; ++I) {
    VarId Out = H.var("o" + std::to_string(I));
    H.Solver.addConstraint(H.v(Hub), H.v(Out));
    Outs.push_back(Out);
  }
  H.Solver.finalize();
  EXPECT_EQ(H.Solver.leastSolution(Outs[Width - 1]),
            std::vector<ExprId>{S});
  EXPECT_EQ(H.Solver.stats().RedundantAdds, 0u);
}

TEST(StressTest, DeepTermNesting) {
  // Decomposition recursion is bounded by term depth; make sure a
  // several-hundred-deep term works.
  SolverHarness H(makeConfig(GraphForm::Inductive, CycleElim::None));
  ConsId C = H.Constructors.getOrCreate("c", {Variance::Covariant});
  VarId X = H.var("X"), Y = H.var("Y");
  ExprId S = H.source("s");
  H.Solver.addConstraint(S, H.v(X));
  ExprId Lhs = H.v(X), Rhs = H.v(Y);
  for (int I = 0; I != 500; ++I) {
    Lhs = H.Terms.cons(C, {Lhs});
    Rhs = H.Terms.cons(C, {Rhs});
  }
  H.Solver.addConstraint(Lhs, Rhs);
  EXPECT_EQ(H.Solver.leastSolution(Y), std::vector<ExprId>{S});
}

//===----------------------------------------------------------------------===//
// Abort-state behavior
//===----------------------------------------------------------------------===//

TEST(StressTest, AbortedSolverStaysUsable) {
  SolverOptions Options = makeConfig(GraphForm::Standard, CycleElim::None);
  Options.MaxWork = 50;
  SolverHarness H(Options);
  std::vector<VarId> Vars;
  for (int I = 0; I != 30; ++I)
    Vars.push_back(H.var("v" + std::to_string(I)));
  for (int I = 0; I != 10; ++I)
    H.Solver.addConstraint(H.source("s" + std::to_string(I)),
                           H.v(Vars[0]));
  for (int I = 0; I + 1 != 30; ++I)
    H.Solver.addConstraint(H.v(Vars[I]), H.v(Vars[I + 1]));
  ASSERT_TRUE(H.Solver.stats().Aborted);
  // Queries on an aborted solver return partial but well-formed data.
  H.Solver.finalize();
  EXPECT_NO_FATAL_FAILURE(H.Solver.leastSolution(Vars[29]));
  EXPECT_NO_FATAL_FAILURE(H.Solver.countFinalEdges());
  EXPECT_NO_FATAL_FAILURE(H.Solver.varVarDigraph());
}

//===----------------------------------------------------------------------===//
// Randomized invariants at moderate scale
//===----------------------------------------------------------------------===//

class RandomStressTest : public testing::TestWithParam<uint64_t> {};

TEST_P(RandomStressTest, MixedConstraintSoup) {
  // Random mixture of all three constraint kinds, decompositions, and
  // both 0/1 constants; solutions must agree between SF-Plain and
  // IF-Online (the strongest pairing: different form AND elimination).
  uint64_t Seed = GetParam();
  auto Run = [&](SolverOptions Options) {
    SolverHarness H(Options);
    PRNG Rng(Seed * 1009);
    ConsId Ref = H.Constructors.getOrCreate(
        "ref", {Variance::Covariant, Variance::Contravariant});
    const uint32_t N = 60;
    std::vector<VarId> Vars;
    for (uint32_t I = 0; I != N; ++I)
      Vars.push_back(H.var("v" + std::to_string(I)));
    std::vector<ExprId> Sources;
    for (int I = 0; I != 10; ++I)
      Sources.push_back(H.source("s" + std::to_string(I)));

    for (int I = 0; I != 300; ++I) {
      switch (Rng.nextBelow(6)) {
      case 0:
        H.Solver.addConstraint(H.v(Vars[Rng.nextBelow(N)]),
                               H.v(Vars[Rng.nextBelow(N)]));
        break;
      case 1:
        H.Solver.addConstraint(Sources[Rng.nextBelow(10)],
                               H.v(Vars[Rng.nextBelow(N)]));
        break;
      case 2: // ref term as source.
        H.Solver.addConstraint(
            H.Terms.cons(Ref, {H.v(Vars[Rng.nextBelow(N)]),
                               H.v(Vars[Rng.nextBelow(N)])}),
            H.v(Vars[Rng.nextBelow(N)]));
        break;
      case 3: // Read sink.
        H.Solver.addConstraint(
            H.v(Vars[Rng.nextBelow(N)]),
            H.Terms.cons(Ref, {H.v(Vars[Rng.nextBelow(N)]),
                               H.Terms.zero()}));
        break;
      case 4: // Write sink.
        H.Solver.addConstraint(
            H.v(Vars[Rng.nextBelow(N)]),
            H.Terms.cons(Ref, {H.Terms.one(),
                               H.v(Vars[Rng.nextBelow(N)])}));
        break;
      case 5:
        H.Solver.addConstraint(H.Terms.zero(), H.v(Vars[Rng.nextBelow(N)]));
        break;
      }
    }
    H.Solver.finalize();
    std::vector<std::vector<std::string>> Solutions;
    for (VarId Var : Vars) {
      std::vector<std::string> Names;
      for (ExprId Term : H.Solver.leastSolution(Var)) {
        if (H.Terms.kind(Term) == ExprKind::Cons &&
            H.Constructors.signature(H.Terms.consOf(Term)).arity() == 0)
          Names.push_back(
              H.Constructors.signature(H.Terms.consOf(Term)).Name);
        else
          Names.push_back(H.Solver.exprStr(Term));
      }
      std::sort(Names.begin(), Names.end());
      Solutions.push_back(std::move(Names));
    }
    return Solutions;
  };

  auto SFPlain = Run(makeConfig(GraphForm::Standard, CycleElim::None, Seed));
  auto IFOnline =
      Run(makeConfig(GraphForm::Inductive, CycleElim::Online, Seed));
  EXPECT_EQ(SFPlain, IFOnline);
}

INSTANTIATE_TEST_SUITE_P(Seeds, RandomStressTest,
                         testing::Range<uint64_t>(1, 16));
