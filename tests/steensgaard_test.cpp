//===- tests/steensgaard_test.cpp - Unification baseline unit tests --------===//
//
// Part of the poce project.
//
//===----------------------------------------------------------------------===//

#include "andersen/Andersen.h"
#include "andersen/Steensgaard.h"
#include "workload/Suite.h"

#include <gtest/gtest.h>

#include <set>

using namespace poce;
using namespace poce::andersen;

namespace {

struct Analyzed {
  minic::TranslationUnit Unit;
  SteensgaardResult Steens;
  bool Ok = false;

  std::set<std::string> pts(const std::string &Name) const {
    auto Targets = Steens.pointsTo(Name);
    return std::set<std::string>(Targets.begin(), Targets.end());
  }
};

std::unique_ptr<Analyzed> analyze(const std::string &Source) {
  auto A = std::make_unique<Analyzed>();
  std::vector<std::string> Errors;
  A->Ok = parseSource(Source, A->Unit, &Errors);
  EXPECT_TRUE(A->Ok) << (Errors.empty() ? "?" : Errors[0]);
  if (A->Ok)
    A->Steens = runSteensgaard(A->Unit);
  return A;
}

using Set = std::set<std::string>;

} // namespace

TEST(SteensgaardTest, SimpleAddressOf) {
  auto A = analyze("int x; int *p;\n"
                   "int main(void) { p = &x; return 0; }");
  EXPECT_EQ(A->pts("p"), (Set{"x"}));
  EXPECT_TRUE(A->pts("x").empty());
}

TEST(SteensgaardTest, CopyUnifiesTargets) {
  // The classic precision loss: after p = &x; q = &y; r = p; r = q;
  // unification merges x and y's classes, so p "points to" both.
  auto A = analyze("int x, y; int *p, *q, *r;\n"
                   "int main(void) { p = &x; q = &y; r = p; r = q; "
                   "return 0; }");
  EXPECT_EQ(A->pts("p"), (Set{"x", "y"}));
  EXPECT_EQ(A->pts("q"), (Set{"x", "y"}));
  EXPECT_EQ(A->pts("r"), (Set{"x", "y"}));
}

TEST(SteensgaardTest, IndependentPointersStaySeparate) {
  auto A = analyze("int x, y; int *p, *q;\n"
                   "int main(void) { p = &x; q = &y; return 0; }");
  EXPECT_EQ(A->pts("p"), (Set{"x"}));
  EXPECT_EQ(A->pts("q"), (Set{"y"}));
}

TEST(SteensgaardTest, StoreAndLoadThroughPointer) {
  auto A = analyze("int x; int *p, *q; int **pp;\n"
                   "int main(void) { pp = &p; *pp = &x; q = *pp; "
                   "return 0; }");
  EXPECT_TRUE(A->pts("pp").count("p"));
  EXPECT_TRUE(A->pts("p").count("x"));
  EXPECT_TRUE(A->pts("q").count("x"));
}

TEST(SteensgaardTest, FunctionsAndReturns) {
  auto A = analyze("int x;\n"
                   "int *id(int *p) { return p; }\n"
                   "int *q;\n"
                   "int main(void) { q = id(&x); return 0; }");
  EXPECT_TRUE(A->pts("id.p").count("x"));
  EXPECT_TRUE(A->pts("q").count("x"));
}

TEST(SteensgaardTest, FunctionPointers) {
  auto A = analyze("int x;\n"
                   "int *f(int *p) { return p; }\n"
                   "int *(*fp)(int *);\n"
                   "int *r;\n"
                   "int main(void) { fp = f; r = fp(&x); return 0; }");
  EXPECT_TRUE(A->pts("fp").count("f"));
  EXPECT_TRUE(A->pts("r").count("x"));
}

TEST(SteensgaardTest, MallocSites) {
  auto A = analyze("extern void *malloc(unsigned long);\n"
                   "int *p, *q;\n"
                   "int main(void) { p = (int *)malloc(4); "
                   "q = (int *)malloc(4); return 0; }");
  EXPECT_EQ(A->pts("p").size(), 1u);
  EXPECT_EQ(A->pts("q").size(), 1u);
  // The two sites stay separate (nothing forced their unification).
  EXPECT_NE(*A->pts("p").begin(), *A->pts("q").begin());
}

TEST(SteensgaardTest, SwapMergesBothPointers) {
  auto A = analyze(
      "int x, y; int *p, *q;\n"
      "void swap(int **a, int **b) { int *t = *a; *a = *b; *b = t; }\n"
      "int main(void) { p = &x; q = &y; swap(&p, &q); return 0; }");
  EXPECT_EQ(A->pts("p"), (Set{"x", "y"}));
  EXPECT_EQ(A->pts("q"), (Set{"x", "y"}));
}

TEST(SteensgaardTest, RecursiveStructuresTerminate) {
  auto A = analyze(
      "extern void *malloc(unsigned long);\n"
      "struct node { struct node *next; int *data; };\n"
      "struct node *head;\n"
      "int main(void) {\n"
      "  struct node *n = (struct node *)malloc(16);\n"
      "  n->next = head;\n"
      "  head = n;\n"
      "  head = head->next;\n"
      "  return 0;\n"
      "}");
  EXPECT_FALSE(A->pts("head").empty());
}

TEST(SteensgaardTest, StatsPopulated) {
  auto A = analyze("int x; int *p; int main(void) { p = &x; return 0; }");
  EXPECT_GT(A->Steens.NumLocations, 2u);
  EXPECT_GE(A->Steens.NumCells, A->Steens.NumLocations);
  EXPECT_GE(A->Steens.AnalysisSeconds, 0.0);
}

//===----------------------------------------------------------------------===//
// The precision relationship that motivates the whole paper
//===----------------------------------------------------------------------===//

namespace {

/// True if Andersen's points-to sets are contained in Steensgaard's for
/// every location both analyses know (Andersen refines Steensgaard).
void expectAndersenRefinesSteensgaard(const minic::TranslationUnit &Unit) {
  ConstructorTable Constructors;
  AnalysisResult Andersen = runAnalysis(
      Unit, Constructors, makeConfig(GraphForm::Inductive, CycleElim::Online));
  SteensgaardResult Steens = runSteensgaard(Unit);

  uint64_t AndersenTotal = 0, SteensTotal = 0;
  for (const auto &[Name, Targets] : Andersen.PointsTo) {
    auto SteensIt = Steens.PointsTo.find(Name);
    ASSERT_NE(SteensIt, Steens.PointsTo.end())
        << "location " << Name << " missing from Steensgaard";
    std::set<std::string> SteensSet(SteensIt->second.begin(),
                                    SteensIt->second.end());
    for (const std::string &Target : Targets)
      EXPECT_TRUE(SteensSet.count(Target))
          << Name << " -> " << Target
          << " found by Andersen but not Steensgaard";
    AndersenTotal += Targets.size();
    SteensTotal += SteensIt->second.size();
  }
  EXPECT_LE(AndersenTotal, SteensTotal);
}

} // namespace

class SteensgaardRefinementTest : public testing::TestWithParam<uint64_t> {};

TEST_P(SteensgaardRefinementTest, AndersenSubsetOfSteensgaard) {
  workload::ProgramSpec Spec;
  Spec.Name = "refine";
  Spec.TargetAstNodes = 1500;
  Spec.Seed = GetParam() * 7;
  auto Program = workload::prepareProgram(Spec);
  ASSERT_TRUE(Program->Ok);
  expectAndersenRefinesSteensgaard(Program->Unit);
}

INSTANTIATE_TEST_SUITE_P(Seeds, SteensgaardRefinementTest,
                         testing::Range<uint64_t>(1, 9));

TEST(SteensgaardRefinementTest, PrecisionGapIsReal) {
  // On the classic example Andersen is strictly more precise.
  const char *Source = "int x, y; int *p, *q, *r;\n"
                       "int main(void) { p = &x; q = &y; r = p; r = q; "
                       "return 0; }";
  minic::TranslationUnit Unit;
  ASSERT_TRUE(parseSource(Source, Unit));
  ConstructorTable Constructors;
  AnalysisResult Andersen = runAnalysis(
      Unit, Constructors, makeConfig(GraphForm::Inductive, CycleElim::Online));
  SteensgaardResult Steens = runSteensgaard(Unit);
  EXPECT_EQ(Andersen.pointsTo("p"), std::vector<std::string>{"x"});
  EXPECT_EQ(Steens.pointsTo("p"), (std::vector<std::string>{"x", "y"}));
}
