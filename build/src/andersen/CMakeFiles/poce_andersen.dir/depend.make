# Empty dependencies file for poce_andersen.
# This may be replaced when dependencies are built.
