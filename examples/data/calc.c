/* A tiny expression interpreter: a tagged tree built on the heap, a
   recursive evaluator, and an environment threaded by pointer — the
   recursive-descent shape of the paper's compiler benchmarks. */

extern void *malloc(unsigned long n);

enum kind { K_NUM, K_ADD, K_MUL, K_VAR };

struct expr {
  int kind;
  int value;
  char name;
  struct expr *lhs;
  struct expr *rhs;
};

struct binding {
  char name;
  int value;
  struct binding *next;
};

struct binding *env;

struct expr *mk_num(int value) {
  struct expr *e = (struct expr *)malloc(sizeof(struct expr));
  e->kind = K_NUM;
  e->value = value;
  return e;
}

struct expr *mk_bin(int kind, struct expr *lhs, struct expr *rhs) {
  struct expr *e = (struct expr *)malloc(sizeof(struct expr));
  e->kind = kind;
  e->lhs = lhs;
  e->rhs = rhs;
  return e;
}

struct expr *mk_var(char name) {
  struct expr *e = (struct expr *)malloc(sizeof(struct expr));
  e->kind = K_VAR;
  e->name = name;
  return e;
}

void bind(char name, int value) {
  struct binding *b = (struct binding *)malloc(sizeof(struct binding));
  b->name = name;
  b->value = value;
  b->next = env;
  env = b;
}

int lookup(char name) {
  for (struct binding *b = env; b; b = b->next)
    if (b->name == name)
      return b->value;
  return 0;
}

int eval(struct expr *e) {
  switch (e->kind) {
  case K_NUM:
    return e->value;
  case K_ADD:
    return eval(e->lhs) + eval(e->rhs);
  case K_MUL:
    return eval(e->lhs) * eval(e->rhs);
  case K_VAR:
    return lookup(e->name);
  }
  return 0;
}

int main(void) {
  bind('x', 3);
  bind('y', 4);
  /* (x + 2) * y */
  struct expr *tree =
      mk_bin(K_MUL, mk_bin(K_ADD, mk_var('x'), mk_num(2)), mk_var('y'));
  return eval(tree);
}
