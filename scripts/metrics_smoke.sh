#!/usr/bin/env bash
# End-to-end smoke test of the observability layer: start scserved with
# --metrics-out and POCE_TRACE armed, exercise queries/adds/checkpoints,
# then check (1) the `metrics` verb emits Prometheus series for every
# layer (solver, cache, WAL, latency histogram) framed by "# EOF",
# (2) the JSON metrics dump landed and parses structurally, and (3) the
# Chrome trace file holds the expected spans.
#
# Usage: scripts/metrics_smoke.sh [build-dir]   (default: build)
set -euo pipefail
cd "$(dirname "$0")/.."

BUILD_DIR=${1:-build}
SCSERVED="$BUILD_DIR/src/driver/scserved"
if [ ! -x "$SCSERVED" ]; then
  cmake -B "$BUILD_DIR" -S .
  cmake --build "$BUILD_DIR" -j --target scserved
fi

WORK=$(mktemp -d)
trap 'rm -rf "$WORK"' EXIT
SNAP="$WORK/metrics.snap"
WAL="$WORK/metrics.wal"
DUMP="$WORK/metrics.json"
TRACE="$WORK/trace.json"

check() { # check <file> <pattern>...
  local file=$1
  shift
  for pattern in "$@"; do
    if ! grep -qF -- "$pattern" "$file"; then
      echo "FAIL: expected '$pattern' in $file:" >&2
      cat "$file" >&2
      exit 1
    fi
  done
}

# Solve, query, add through the WAL, checkpoint, and scrape. The metrics
# dump fires every 2 requests and once more at exit.
"$SCSERVED" --config=if-online --wal="$WAL" \
  --metrics-out="$DUMP" --metrics-every=2 \
  examples/data/swap.scs > "$WORK/s1.out" 2> "$WORK/s1.err" << EOF
pts P
pts Q
alias P Q
add var M1
add P <= M1
save $SNAP
checkpoint $SNAP
metrics
quit
EOF

# (1) Prometheus exposition from the `metrics` verb.
check "$WORK/s1.out" \
  "ok metrics" \
  "# TYPE poce_solver_work gauge" \
  "poce_solver_cycles_collapsed" \
  "# TYPE poce_query_latency_us histogram" \
  "poce_query_latency_us_bucket{le=\"+Inf\"}" \
  "poce_query_latency_us_count" \
  "poce_query_requests_total" \
  "poce_query_cache_misses_total" \
  "# TYPE poce_wal_append_us histogram" \
  "poce_wal_append_us_count" \
  "poce_checkpoint_us_count" \
  "poce_snapshot_serialize_us_count" \
  "# EOF"

# The latency histogram must have counted the three queries.
LAT_COUNT=$(grep "^poce_query_latency_us_count" "$WORK/s1.out" | awk '{print $2}')
[ "$LAT_COUNT" -ge 3 ] || {
  echo "FAIL: expected >=3 latency samples, got '$LAT_COUNT'" >&2
  exit 1
}

# (2) The JSON dump landed with all three sections.
[ -s "$DUMP" ] || { echo "FAIL: --metrics-out dump missing" >&2; exit 1; }
check "$DUMP" '"counters"' '"gauges"' '"histograms"' \
  '"poce_query_latency_us"' '"p50"' '"p99"'

# (3) POCE_TRACE produces Chrome trace-event JSON with serve spans.
POCE_TRACE="$TRACE" "$SCSERVED" --snapshot="$SNAP" > "$WORK/s2.out" << EOF
pts P
pts M1
quit
EOF
[ -s "$TRACE" ] || { echo "FAIL: POCE_TRACE wrote nothing" >&2; exit 1; }
check "$TRACE" '"traceEvents"' '"serve.query"' '"snapshot.load"' '"ph": "X"'

echo "metrics_smoke: OK"
