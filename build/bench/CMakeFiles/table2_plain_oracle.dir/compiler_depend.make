# Empty compiler generated dependencies file for table2_plain_oracle.
# This may be replaced when dependencies are built.
