//===- setcon/Oracle.cpp - Perfect cycle elimination oracle ---------------===//
//
// Part of the poce project.
//
//===----------------------------------------------------------------------===//

#include "setcon/Oracle.h"

#include "graph/TarjanSCC.h"
#include "setcon/ConstraintSolver.h"
#include "support/Debug.h"

#include <algorithm>

#define POCE_DEBUG_TYPE "oracle"

using namespace poce;

Oracle Oracle::fromClasses(UnionFind &Classes) {
  Oracle Result;
  uint32_t N = Classes.size();
  Result.WitnessOf.resize(N);

  // The witness of each class is its smallest creation index, so it exists
  // by the time any other member is requested.
  constexpr uint32_t None = ~0U;
  std::vector<uint32_t> WitnessOfRoot(N, None);
  std::vector<uint32_t> SizeOfRoot(N, 0);
  for (uint32_t I = 0; I != N; ++I) {
    uint32_t Root = Classes.find(I);
    if (WitnessOfRoot[Root] == None)
      WitnessOfRoot[Root] = I;
    Result.WitnessOf[I] = WitnessOfRoot[Root];
    ++SizeOfRoot[Root];
  }
  for (uint32_t I = 0; I != N; ++I) {
    if (!Classes.isRepresentative(I) || SizeOfRoot[I] < 2)
      continue;
    ++Result.NontrivialClasses;
    Result.VarsInNontrivial += SizeOfRoot[I];
    Result.MaxClass = std::max(Result.MaxClass, SizeOfRoot[I]);
  }
  return Result;
}

Oracle poce::buildOracle(const GeneratorFn &Generate,
                         ConstructorTable &Constructors,
                         const SolverOptions &BaseOptions,
                         unsigned MaxIterations) {
  UnionFind Classes;
  std::vector<std::pair<uint32_t, uint32_t>> AllEdges;
  Oracle Current;

  for (unsigned Iteration = 0; Iteration != MaxIterations; ++Iteration) {
    // Pass 1 runs IF-Online (it both discovers constraints and keeps the
    // run fast); later passes verify the oracle and catch residual cycles.
    SolverOptions Options = BaseOptions;
    Options.Form = GraphForm::Inductive;
    Options.Elim = Iteration == 0 ? CycleElim::Online : CycleElim::Oracle;
    Options.RecordVarVar = true;

    TermTable Terms(Constructors);
    ConstraintSolver Solver(Terms, Options,
                            Iteration == 0 ? nullptr : &Current);
    Generate(Solver);
    // Derived constraints are recorded during closure; under wave closure
    // the generator's adds are still deferred at this point.
    Solver.ensureClosed();

    Classes.growTo(Solver.numCreations());
    const auto &Recorded = Solver.recordedVarVar();
    AllEdges.insert(AllEdges.end(), Recorded.begin(), Recorded.end());

    // SCCs of (all recorded constraints + known equalities) are the
    // equality classes implied so far.
    uint32_t N = Classes.size();
    Digraph G(N);
    for (uint32_t I = 0; I != N; ++I) {
      uint32_t Root = Classes.find(I);
      if (Root != I) {
        G.addEdge(I, Root);
        G.addEdge(Root, I);
      }
    }
    for (const auto &[From, To] : AllEdges)
      G.addEdge(From, To);

    SCCResult SCCs = computeSCCs(G);
    bool Changed = false;
    for (const auto &Component : SCCs.Components) {
      if (Component.size() < 2)
        continue;
      for (size_t I = 1; I != Component.size(); ++I)
        Changed |= Classes.unite(Component[I], Component[0]);
    }
    Current = Oracle::fromClasses(Classes);

    POCE_DEBUG(std::fprintf(
        stderr,
        "[oracle] pass %u: %u creations, %zu constraints, %u classes%s\n",
        Iteration, N, AllEdges.size(), Current.numNontrivialClasses(),
        Changed ? " (changed)" : " (stable)"));

    // A pass after the last change verifies stability.
    if (Iteration > 0 && !Changed)
      break;
  }
  return Current;
}
