file(REMOVE_RECURSE
  "CMakeFiles/poce_workload.dir/ProgramGenerator.cpp.o"
  "CMakeFiles/poce_workload.dir/ProgramGenerator.cpp.o.d"
  "CMakeFiles/poce_workload.dir/RandomConstraints.cpp.o"
  "CMakeFiles/poce_workload.dir/RandomConstraints.cpp.o.d"
  "CMakeFiles/poce_workload.dir/Suite.cpp.o"
  "CMakeFiles/poce_workload.dir/Suite.cpp.o.d"
  "libpoce_workload.a"
  "libpoce_workload.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/poce_workload.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
