//===- bench/ext_closure_analysis.cpp - Future work: closure analysis ------===//
//
// Part of the poce project.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Extension bench for the paper's closing sentence: "We plan to study the
/// impact of online cycle elimination on the performance of closure
/// analysis in future work." Runs 0CFA over synthetic higher-order
/// programs (recursive combinator chains) of growing size under the four
/// non-oracle configurations, checking whether the points-to findings
/// carry over: cycles from recursion dominate, IF-Online wins, and SF
/// detects fewer cycles.
///
//===----------------------------------------------------------------------===//

#include "cfa/ClosureAnalysis.h"
#include "support/Format.h"
#include "support/Timer.h"

#include <cstdio>

using namespace poce;
using namespace poce::cfa;

int main() {
  std::printf("=== Extension: online cycle elimination for closure "
              "analysis (0CFA) ===\n\n");

  TextTable Table({"Groups", "Terms", "SFp-Work", "SFp-s", "IFp-Work",
                   "IFp-s", "SFon-Work", "SFon-Elim", "IFon-Work",
                   "IFon-Elim", "IFon-s"});
  for (uint32_t Groups : {50u, 150u, 400u, 1000u}) {
    std::string Source = generateLambdaProgram(Groups, Groups * 17 + 1);
    LambdaProgram Program;
    std::string Error;
    if (!Program.parse(Source, &Error)) {
      std::fprintf(stderr, "generator bug: %s\n", Error.c_str());
      return 1;
    }

    ConstructorTable Constructors;
    struct Cell {
      uint64_t Work = 0;
      uint64_t Eliminated = 0;
      double Seconds = 0;
    };
    auto Run = [&](GraphForm Form, CycleElim Elim) {
      SolverOptions Options = makeConfig(Form, Elim);
      Options.MaxWork = 200000000;
      Timer T;
      CFAResult Result = runClosureAnalysis(Program, Constructors, Options);
      Cell Measured;
      Measured.Work = Result.Stats.Work;
      Measured.Eliminated = Result.Stats.VarsEliminated;
      Measured.Seconds = T.seconds();
      return Measured;
    };
    Cell SFPlain = Run(GraphForm::Standard, CycleElim::None);
    Cell IFPlain = Run(GraphForm::Inductive, CycleElim::None);
    Cell SFOnline = Run(GraphForm::Standard, CycleElim::Online);
    Cell IFOnline = Run(GraphForm::Inductive, CycleElim::Online);

    Table.addRow({formatGrouped(Groups), formatGrouped(Program.numTerms()),
                  formatGrouped(SFPlain.Work), formatDouble(SFPlain.Seconds, 3),
                  formatGrouped(IFPlain.Work), formatDouble(IFPlain.Seconds, 3),
                  formatGrouped(SFOnline.Work),
                  formatGrouped(SFOnline.Eliminated),
                  formatGrouped(IFOnline.Work),
                  formatGrouped(IFOnline.Eliminated),
                  formatDouble(IFOnline.Seconds, 3)});
  }
  Table.print();
  std::printf("\nThe points-to findings carry over: recursion-driven "
              "cycles dominate plain runs and IF-Online stays cheap.\n");
  return 0;
}
