//===- bench/micro_solver.cpp - Microbenchmarks (google-benchmark) ---------===//
//
// Part of the poce project.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Microbenchmarks of the primitive operations that dominate constraint
/// resolution: hash-set membership, sparse-bitvector unions, union-find,
/// term interning, atomic edge insertion and closure, difference
/// propagation, online cycle detection/collapse, least solution
/// computation, and frontend throughput.
///
/// Run with no arguments (or the usual google-benchmark flags) for the
/// microbenchmark suite. Run with --emit_trajectory[=path] to instead
/// A/B the bitvector/difference-propagation hot paths against the seed
/// algorithms on large random constraint systems and record the result as
/// JSON (default path: BENCH_micro_solver.json). Trajectory mode honors
/// POCE_BENCH_SCALE and POCE_BENCH_REPEATS (best-of-N, default 3).
///
//===----------------------------------------------------------------------===//

#include "andersen/Andersen.h"
#include "minic/Lexer.h"
#include "minic/Parser.h"
#include "setcon/ConstraintSolver.h"
#include "support/DenseU64Set.h"
#include "support/PRNG.h"
#include "support/SparseBitVector.h"
#include "support/Timer.h"
#include "support/UnionFind.h"
#include "workload/ProgramGenerator.h"
#include "workload/RandomConstraints.h"

#include <benchmark/benchmark.h>

#include <cstdio>
#include <cstring>
#include <string>

using namespace poce;

//===----------------------------------------------------------------------===//
// Support primitives
//===----------------------------------------------------------------------===//

static void BM_DenseSetInsert(benchmark::State &State) {
  PRNG Rng(1);
  std::vector<uint64_t> Keys(static_cast<size_t>(State.range(0)));
  for (uint64_t &Key : Keys)
    Key = Rng.nextU64() >> 1;
  for (auto _ : State) {
    DenseU64Set Set;
    for (uint64_t Key : Keys)
      benchmark::DoNotOptimize(Set.insert(Key));
  }
  State.SetItemsProcessed(State.iterations() * State.range(0));
}
BENCHMARK(BM_DenseSetInsert)->Arg(1000)->Arg(100000);

static void BM_DenseSetLookupHit(benchmark::State &State) {
  PRNG Rng(2);
  DenseU64Set Set;
  std::vector<uint64_t> Keys(100000);
  for (uint64_t &Key : Keys) {
    Key = Rng.nextU64() >> 1;
    Set.insert(Key);
  }
  size_t I = 0;
  for (auto _ : State) {
    benchmark::DoNotOptimize(Set.contains(Keys[I++ % Keys.size()]));
  }
}
BENCHMARK(BM_DenseSetLookupHit);

static void BM_SparseBitVectorSet(benchmark::State &State) {
  // Clustered id space, like hash-consed ExprIds.
  PRNG Rng(21);
  std::vector<uint32_t> Ids(static_cast<size_t>(State.range(0)));
  for (uint32_t &Id : Ids)
    Id = static_cast<uint32_t>(Rng.nextBelow(4 * Ids.size()));
  for (auto _ : State) {
    SparseBitVector S;
    for (uint32_t Id : Ids)
      benchmark::DoNotOptimize(S.testAndSet(Id));
  }
  State.SetItemsProcessed(State.iterations() * State.range(0));
}
BENCHMARK(BM_SparseBitVectorSet)->Arg(1000)->Arg(100000);

static void BM_SparseBitVectorUnion(benchmark::State &State) {
  // Word-level union of partially overlapping sets — the inner loop of
  // both difference propagation and the least-solution pass.
  PRNG Rng(22);
  const size_t N = static_cast<size_t>(State.range(0));
  SparseBitVector Base, Incoming;
  for (size_t I = 0; I != N; ++I) {
    Base.set(static_cast<uint32_t>(Rng.nextBelow(8 * N)));
    Incoming.set(static_cast<uint32_t>(Rng.nextBelow(8 * N)));
  }
  for (auto _ : State) {
    SparseBitVector S;
    S.unionWith(Base);
    uint64_t Words = 0;
    benchmark::DoNotOptimize(S.unionWith(Incoming, &Words));
    benchmark::DoNotOptimize(Words);
  }
  State.SetItemsProcessed(State.iterations() * 2 * N);
}
BENCHMARK(BM_SparseBitVectorUnion)->Arg(1000)->Arg(50000);

static void BM_UnionFind(benchmark::State &State) {
  const uint32_t N = static_cast<uint32_t>(State.range(0));
  PRNG Rng(3);
  for (auto _ : State) {
    UnionFind UF;
    UF.growTo(N);
    for (uint32_t I = 0; I != N; ++I)
      UF.unite(static_cast<uint32_t>(Rng.nextBelow(N)),
               static_cast<uint32_t>(Rng.nextBelow(N)));
    benchmark::DoNotOptimize(UF.find(0));
  }
  State.SetItemsProcessed(State.iterations() * N);
}
BENCHMARK(BM_UnionFind)->Arg(10000);

static void BM_TermInterning(benchmark::State &State) {
  for (auto _ : State) {
    ConstructorTable Constructors;
    TermTable Terms(Constructors);
    ConsId C = Constructors.getOrCreate(
        "c", {Variance::Covariant, Variance::Covariant});
    for (uint32_t I = 0; I != 1000; ++I)
      benchmark::DoNotOptimize(
          Terms.cons(C, {Terms.var(I), Terms.var(I / 2)}));
    // Second pass hits the intern cache.
    for (uint32_t I = 0; I != 1000; ++I)
      benchmark::DoNotOptimize(
          Terms.cons(C, {Terms.var(I), Terms.var(I / 2)}));
  }
  State.SetItemsProcessed(State.iterations() * 2000);
}
BENCHMARK(BM_TermInterning);

//===----------------------------------------------------------------------===//
// Solver operations
//===----------------------------------------------------------------------===//

static void BM_EdgeInsertionChain(benchmark::State &State) {
  // A source propagated down a long variable chain: one closure-driven
  // addition per edge.
  const uint32_t N = static_cast<uint32_t>(State.range(0));
  for (auto _ : State) {
    ConstructorTable Constructors;
    TermTable Terms(Constructors);
    ConstraintSolver Solver(Terms,
                            makeConfig(GraphForm::Inductive,
                                       CycleElim::None));
    ExprId S = Terms.cons(Constructors.getOrCreate("s", {}), {});
    std::vector<VarId> Vars;
    for (uint32_t I = 0; I != N; ++I)
      Vars.push_back(Solver.freshVar("v"));
    Solver.addConstraint(S, Terms.var(Vars[0]));
    for (uint32_t I = 0; I + 1 != N; ++I)
      Solver.addConstraint(Terms.var(Vars[I]), Terms.var(Vars[I + 1]));
    benchmark::DoNotOptimize(Solver.stats().Work);
  }
  State.SetItemsProcessed(State.iterations() * N);
}
BENCHMARK(BM_EdgeInsertionChain)->Arg(1000)->Arg(10000);

static void BM_SFClosure(benchmark::State &State) {
  // Standard-form closure over a random system; Arg(1) uses batched
  // difference propagation, Arg(0) the element-wise seed scheme. The gap
  // between the two is the win from delta-only pushes.
  PRNG Rng(17);
  RandomConstraintShape Shape =
      randomConstraintShape(3000, 2000, 2.0 / 3000, Rng);
  SolverOptions Options = makeConfig(GraphForm::Standard, CycleElim::None);
  Options.DiffProp = State.range(0) != 0;
  for (auto _ : State) {
    ConstructorTable Constructors;
    TermTable Terms(Constructors);
    ConstraintSolver Solver(Terms, Options);
    workload::emitRandomConstraints(Shape, Solver);
    benchmark::DoNotOptimize(Solver.stats().Work);
  }
  State.SetItemsProcessed(State.iterations() * Shape.VarVar.size());
}
BENCHMARK(BM_SFClosure)->Arg(0)->Arg(1);

static void BM_OnlineDetectionOverhead(benchmark::State &State) {
  // Acyclic random insertions: measures the pure overhead of running the
  // partial chain search on every variable-variable insertion.
  const uint32_t N = 2000;
  PRNG Rng(7);
  std::vector<std::pair<uint32_t, uint32_t>> Edges;
  for (uint32_t I = 0; I != 4 * N; ++I) {
    uint32_t A = static_cast<uint32_t>(Rng.nextBelow(N));
    uint32_t B = static_cast<uint32_t>(Rng.nextBelow(N));
    if (A < B)
      Edges.push_back({A, B}); // Forward only: acyclic.
  }
  for (auto _ : State) {
    ConstructorTable Constructors;
    TermTable Terms(Constructors);
    ConstraintSolver Solver(Terms,
                            makeConfig(GraphForm::Inductive,
                                       CycleElim::Online));
    std::vector<VarId> Vars;
    for (uint32_t I = 0; I != N; ++I)
      Vars.push_back(Solver.freshVar("v"));
    for (auto [A, B] : Edges)
      Solver.addConstraint(Terms.var(Vars[A]), Terms.var(Vars[B]));
    benchmark::DoNotOptimize(Solver.stats().CycleSearchSteps);
  }
  State.SetItemsProcessed(State.iterations() * Edges.size());
}
BENCHMARK(BM_OnlineDetectionOverhead);

static void BM_CycleCollapse(benchmark::State &State) {
  // Insert rings that are detected and collapsed.
  const uint32_t N = 1000;
  for (auto _ : State) {
    ConstructorTable Constructors;
    TermTable Terms(Constructors);
    ConstraintSolver Solver(Terms,
                            makeConfig(GraphForm::Inductive,
                                       CycleElim::Online));
    std::vector<VarId> Vars;
    for (uint32_t I = 0; I != N; ++I)
      Vars.push_back(Solver.freshVar("v"));
    for (uint32_t Ring = 0; Ring + 10 <= N; Ring += 10) {
      for (uint32_t I = 0; I != 10; ++I)
        Solver.addConstraint(Terms.var(Vars[Ring + I]),
                             Terms.var(Vars[Ring + (I + 1) % 10]));
    }
    benchmark::DoNotOptimize(Solver.stats().VarsEliminated);
  }
}
BENCHMARK(BM_CycleCollapse);

static void BM_Compact(benchmark::State &State) {
  // Compaction cost after a collapse-heavy solve.
  PRNG Rng(13);
  RandomConstraintShape Shape =
      randomConstraintShape(3000, 2000, 2.0 / 3000, Rng);
  for (auto _ : State) {
    State.PauseTiming();
    ConstructorTable Constructors;
    TermTable Terms(Constructors);
    ConstraintSolver Solver(Terms, makeConfig(GraphForm::Inductive,
                                              CycleElim::Online));
    workload::emitRandomConstraints(Shape, Solver);
    State.ResumeTiming();
    benchmark::DoNotOptimize(Solver.compact());
  }
}
BENCHMARK(BM_Compact);

static void BM_LeastSolutionIF(benchmark::State &State) {
  // Arg(1) is the bitvector pass (word-level unions plus lazy views for
  // every variable); Arg(0) replays the seed's vector concat+sort+unique
  // algorithm via the retained reference oracle.
  PRNG Rng(11);
  RandomConstraintShape Shape =
      randomConstraintShape(2000, 1300, 1.0 / 2000, Rng);
  const bool Bitvector = State.range(0) != 0;
  for (auto _ : State) {
    State.PauseTiming();
    ConstructorTable Constructors;
    TermTable Terms(Constructors);
    ConstraintSolver Solver(Terms,
                            makeConfig(GraphForm::Inductive,
                                       CycleElim::Online));
    workload::emitRandomConstraints(Shape, Solver);
    State.ResumeTiming();
    size_t Total = 0;
    if (Bitvector) {
      Solver.finalize();
      for (VarId Var = 0; Var != Solver.numVars(); ++Var)
        Total += Solver.leastSolution(Var).size();
    } else {
      for (const std::vector<ExprId> &LS : Solver.referenceLeastSolutions())
        Total += LS.size();
    }
    benchmark::DoNotOptimize(Total);
  }
}
BENCHMARK(BM_LeastSolutionIF)->Arg(0)->Arg(1);

//===----------------------------------------------------------------------===//
// Frontend and end-to-end
//===----------------------------------------------------------------------===//

static std::string &benchProgram() {
  static std::string Source = [] {
    workload::ProgramSpec Spec;
    Spec.Name = "micro";
    Spec.TargetAstNodes = 8000;
    Spec.Seed = 99;
    return workload::generateProgram(Spec);
  }();
  return Source;
}

static void BM_LexerThroughput(benchmark::State &State) {
  const std::string &Source = benchProgram();
  for (auto _ : State) {
    minic::Diagnostics Diags;
    minic::Lexer Lexer(Source, Diags);
    benchmark::DoNotOptimize(Lexer.lexAll().size());
  }
  State.SetBytesProcessed(State.iterations() * Source.size());
}
BENCHMARK(BM_LexerThroughput);

static void BM_ParserThroughput(benchmark::State &State) {
  const std::string &Source = benchProgram();
  for (auto _ : State) {
    minic::TranslationUnit Unit;
    andersen::parseSource(Source, Unit);
    benchmark::DoNotOptimize(Unit.numNodes());
  }
  State.SetBytesProcessed(State.iterations() * Source.size());
}
BENCHMARK(BM_ParserThroughput);

static void BM_EndToEndIFOnline(benchmark::State &State) {
  minic::TranslationUnit Unit;
  andersen::parseSource(benchProgram(), Unit);
  for (auto _ : State) {
    ConstructorTable Constructors;
    andersen::AnalysisResult Result = andersen::runAnalysis(
        Unit, Constructors,
        makeConfig(GraphForm::Inductive, CycleElim::Online), nullptr,
        /*ExtractPointsTo=*/false);
    benchmark::DoNotOptimize(Result.Stats.Work);
  }
}
BENCHMARK(BM_EndToEndIFOnline);

//===----------------------------------------------------------------------===//
// Trajectory mode: --emit_trajectory[=path]
//===----------------------------------------------------------------------===//

namespace {

struct TrajectoryConfig {
  const char *Name;
  GraphForm Form;
  CycleElim Elim;
  uint32_t NumVars;
  uint32_t NumCons;
  double Degree; ///< Expected out-degree; edge probability is Degree/NumVars.
  uint64_t Seed;
  /// Emission order. facts_first loads every source/sink constraint before
  /// any variable-variable edge, so each new edge ships the accumulated
  /// source set as one word-level batch (the bulk-load pattern difference
  /// propagation is built for). edges_first is the cascade worst case: the
  /// graph exists before any source arrives and every delta has size one.
  bool FactsFirst;
};

/// Like workload::emitRandomConstraints but with a selectable constraint
/// order (the library emitter is pinned to edges-first for the golden
/// tests).
void emitShapeOrdered(const RandomConstraintShape &Shape,
                      ConstraintSolver &Solver, bool FactsFirst) {
  TermTable &Terms = Solver.terms();
  ConstructorTable &Constructors = Terms.mutableConstructors();
  std::vector<ExprId> Vars, Sources, Sinks;
  Vars.reserve(Shape.NumVars);
  for (uint32_t I = 0; I != Shape.NumVars; ++I)
    Vars.push_back(Terms.var(Solver.freshVar("X" + std::to_string(I))));
  Sources.reserve(Shape.NumSources);
  for (uint32_t I = 0; I != Shape.NumSources; ++I)
    Sources.push_back(Terms.cons(
        Constructors.getOrCreate("src" + std::to_string(I), {}), {}));
  Sinks.reserve(Shape.NumSinks);
  for (uint32_t I = 0; I != Shape.NumSinks; ++I)
    Sinks.push_back(Terms.cons(
        Constructors.getOrCreate("snk" + std::to_string(I), {}), {}));

  auto emitFacts = [&] {
    for (const auto &[Source, Var] : Shape.SourceVar)
      Solver.addConstraint(Sources[Source], Vars[Var]);
    for (const auto &[Var, Sink] : Shape.VarSink)
      Solver.addConstraint(Vars[Var], Sinks[Sink]);
  };
  auto emitEdges = [&] {
    for (const auto &[From, To] : Shape.VarVar)
      Solver.addConstraint(Vars[From], Vars[To]);
  };
  if (FactsFirst) {
    emitFacts();
    emitEdges();
  } else {
    emitEdges();
    emitFacts();
  }
}

/// One A/B measurement: the optimized paths (difference propagation plus
/// bitvector least solutions) against the seed algorithms (element-wise
/// propagation plus the retained reference least-solution pass).
struct TrajectoryResult {
  double WallSeconds = 0;         ///< Optimized paths, best of N.
  double BaselineSeconds = 0;     ///< Seed-style paths, best of N.
  uint64_t Work = 0;
  uint64_t Edges = 0;
  uint64_t LSUnionWords = 0;
  uint64_t DeltaPropagations = 0;
  uint64_t PropagationsPruned = 0;
  size_t SolutionBits = 0; ///< Sink to keep the LS queries observable.
};

TrajectoryResult measureTrajectory(const TrajectoryConfig &Config,
                                   unsigned Repeats) {
  PRNG Rng(Config.Seed);
  RandomConstraintShape Shape = randomConstraintShape(
      Config.NumVars, Config.NumCons,
      Config.Degree / std::max<uint32_t>(Config.NumVars, 1), Rng);

  TrajectoryResult Out;
  auto solve = [&](bool Optimized) {
    ConstructorTable Constructors;
    TermTable Terms(Constructors);
    SolverOptions Options = makeConfig(Config.Form, Config.Elim, Config.Seed);
    Options.DiffProp = Optimized;
    ConstraintSolver Solver(Terms, Options);
    emitShapeOrdered(Shape, Solver, Config.FactsFirst);
    size_t Total = 0;
    if (Optimized) {
      Solver.finalize();
      for (VarId Var = 0; Var != Solver.numVars(); ++Var)
        Total += Solver.leastSolution(Var).size();
      Out.Work = Solver.stats().Work;
      Out.Edges = Solver.countFinalEdges();
      Out.LSUnionWords = Solver.stats().LSUnionWords;
      Out.DeltaPropagations = Solver.stats().DeltaPropagations;
      Out.PropagationsPruned = Solver.stats().PropagationsPruned;
    } else {
      for (const std::vector<ExprId> &LS : Solver.referenceLeastSolutions())
        Total += LS.size();
    }
    Out.SolutionBits = Total;
  };

  Out.WallSeconds = bestOfN(Repeats, [&] { solve(true); });
  Out.BaselineSeconds = bestOfN(Repeats, [&] { solve(false); });
  return Out;
}

int emitTrajectory(const std::string &Path) {
  double Scale = 1.0;
  if (const char *Env = std::getenv("POCE_BENCH_SCALE"))
    Scale = std::atof(Env);
  if (Scale <= 0)
    Scale = 1.0;
  unsigned Repeats = 3;
  if (const char *Env = std::getenv("POCE_BENCH_REPEATS"))
    Repeats = std::max(1, std::atoi(Env));

  const TrajectoryConfig Configs[] = {
      {"sf_plain", GraphForm::Standard, CycleElim::None, 6000, 4000, 2.0, 101,
       /*FactsFirst=*/true},
      {"sf_online", GraphForm::Standard, CycleElim::Online, 6000, 4000, 2.0,
       102, /*FactsFirst=*/true},
      {"sf_cascade", GraphForm::Standard, CycleElim::None, 4000, 2600, 2.0,
       105, /*FactsFirst=*/false},
      {"if_plain", GraphForm::Inductive, CycleElim::None, 4000, 2600, 1.2,
       103, /*FactsFirst=*/false},
      {"if_online", GraphForm::Inductive, CycleElim::Online, 6000, 4000, 1.5,
       104, /*FactsFirst=*/false},
  };

  std::FILE *File = std::fopen(Path.c_str(), "w");
  if (!File) {
    std::fprintf(stderr, "error: cannot open '%s' for writing\n",
                 Path.c_str());
    return 1;
  }

  std::fprintf(File, "{\n  \"bench\": \"micro_solver\",\n"
                     "  \"mode\": \"emit_trajectory\",\n"
                     "  \"repeats\": %u,\n  \"scale\": %.2f,\n"
                     "  \"entries\": [\n",
               Repeats, Scale);
  std::printf("=== micro_solver trajectory (best of %u) ===\n", Repeats);

  bool First = true;
  for (const TrajectoryConfig &Base : Configs) {
    TrajectoryConfig Config = Base;
    Config.NumVars = std::max<uint32_t>(
        8, static_cast<uint32_t>(Config.NumVars * Scale));
    Config.NumCons = std::max<uint32_t>(
        4, static_cast<uint32_t>(Config.NumCons * Scale));
    TrajectoryResult R = measureTrajectory(Config, Repeats);
    double Speedup = R.BaselineSeconds / std::max(R.WallSeconds, 1e-9);
    SolverOptions Named = makeConfig(Config.Form, Config.Elim);

    std::fprintf(
        File,
        "%s    {\"name\": \"%s\", \"config\": \"%s\", \"order\": \"%s\", "
        "\"vars\": %u, \"cons\": %u,\n"
        "     \"wall_s\": %.6f, \"wall_s_baseline\": %.6f, "
        "\"speedup\": %.2f,\n"
        "     \"work\": %llu, \"edges\": %llu, \"ls_union_words\": %llu,\n"
        "     \"delta_propagations\": %llu, \"propagations_pruned\": %llu,\n"
        "     \"solution_bits\": %llu}",
        First ? "" : ",\n", Config.Name, Named.configName().c_str(),
        Config.FactsFirst ? "facts_first" : "edges_first", Config.NumVars,
        Config.NumCons, R.WallSeconds, R.BaselineSeconds,
        Speedup, (unsigned long long)R.Work, (unsigned long long)R.Edges,
        (unsigned long long)R.LSUnionWords,
        (unsigned long long)R.DeltaPropagations,
        (unsigned long long)R.PropagationsPruned,
        (unsigned long long)R.SolutionBits);
    First = false;

    std::printf("%-10s %-10s vars=%-6u wall=%.3fs baseline=%.3fs "
                "speedup=%.2fx work=%llu edges=%llu\n",
                Config.Name, Named.configName().c_str(), Config.NumVars,
                R.WallSeconds, R.BaselineSeconds, Speedup,
                (unsigned long long)R.Work, (unsigned long long)R.Edges);
  }

  std::fprintf(File, "\n  ]\n}\n");
  std::fclose(File);
  std::printf("wrote %s\n", Path.c_str());
  return 0;
}

} // namespace

int main(int argc, char **argv) {
  for (int I = 1; I != argc; ++I) {
    const char *Arg = argv[I];
    if (std::strcmp(Arg, "--emit_trajectory") == 0)
      return emitTrajectory("BENCH_micro_solver.json");
    if (std::strncmp(Arg, "--emit_trajectory=", 18) == 0)
      return emitTrajectory(Arg + 18);
  }
  benchmark::Initialize(&argc, argv);
  if (benchmark::ReportUnrecognizedArguments(argc, argv))
    return 1;
  benchmark::RunSpecifiedBenchmarks();
  benchmark::Shutdown();
  return 0;
}
