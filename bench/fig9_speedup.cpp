//===- bench/fig9_speedup.cpp - Reproduction of Figure 9 -------------------===//
//
// Part of the poce project.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Regenerates the paper's Figure 9: total speedup of the paper's approach
/// over standard implementations (IF-Online vs SF-Plain) and the speedup
/// from online cycle elimination alone (SF-Online vs SF-Plain), plotted
/// against the absolute SF-Plain execution time. Expected shape: speedups
/// grow with problem size; for very small programs the elimination
/// overhead can outweigh the benefit.
///
//===----------------------------------------------------------------------===//

#include "BenchCommon.h"

using namespace poce;
using namespace poce::bench;

int main() {
  BenchEnv Env = BenchEnv::fromEnv();
  std::printf("=== Figure 9: speedup over the standard implementation ===\n");
  Env.print();

  TextTable Table({"Benchmark", "SF-Plain(s)", "IF-Online(s)",
                   "SF-Online(s)", "IFon/SFp", "SFon/SFp",
                   "SFon-DeltaProps", "SFon-Pruned", "IFon-LSwords"});
  for (auto &Entry : prepareSuite(Env)) {
    MeasuredRun SFPlain =
        runConfig(*Entry, GraphForm::Standard, CycleElim::None, Env);
    MeasuredRun IFOnline =
        runConfig(*Entry, GraphForm::Inductive, CycleElim::Online, Env);
    MeasuredRun SFOnline =
        runConfig(*Entry, GraphForm::Standard, CycleElim::Online, Env);
    std::string Prefix = SFPlain.Capped ? ">" : "";
    Table.addRow(
        {Entry->Program->Spec.Name,
         cappedTime(SFPlain.BestSeconds, SFPlain.Capped),
         formatDouble(IFOnline.BestSeconds, 3),
         formatDouble(SFOnline.BestSeconds, 3),
         Prefix + formatDouble(SFPlain.BestSeconds /
                                   std::max(IFOnline.BestSeconds, 1e-9),
                               1),
         Prefix + formatDouble(SFPlain.BestSeconds /
                                   std::max(SFOnline.BestSeconds, 1e-9),
                               1),
         formatGrouped(SFOnline.Result.Stats.DeltaPropagations),
         formatGrouped(SFOnline.Result.Stats.PropagationsPruned),
         formatGrouped(IFOnline.Result.Stats.LSUnionWords)});
  }
  Table.print();
  std::printf("\nPlot: speedup (y) against SF-Plain time (x). \">\" marks "
              "lower bounds where SF-Plain hit the work cap.\n");
  return 0;
}
