//===- tests/solver_test.cpp - Constraint solver unit tests ----------------===//
//
// Part of the poce project.
//
//===----------------------------------------------------------------------===//

#include "setcon/ConstraintSolver.h"

#include <gtest/gtest.h>

using namespace poce;

namespace {

/// A small harness owning the tables a test solver needs.
struct SolverHarness {
  ConstructorTable Constructors;
  TermTable Terms;
  ConstraintSolver Solver;

  explicit SolverHarness(SolverOptions Options)
      : Terms(Constructors), Solver(Terms, Options) {}

  VarId var(const char *Name) { return Solver.freshVar(Name); }
  ExprId v(VarId Var) { return Terms.var(Var); }
  ExprId source(const char *Name) {
    return Terms.cons(Constructors.getOrCreate(Name, {}), {});
  }
  /// Sorted least solution of Var as source ExprIds.
  std::vector<ExprId> ls(VarId Var) { return Solver.leastSolution(Var); }
};

SolverOptions sfPlain() {
  return makeConfig(GraphForm::Standard, CycleElim::None);
}
SolverOptions ifPlain() {
  return makeConfig(GraphForm::Inductive, CycleElim::None);
}

} // namespace

//===----------------------------------------------------------------------===//
// Basic closure and least solutions
//===----------------------------------------------------------------------===//

class FormTest : public testing::TestWithParam<SolverOptions> {};

TEST_P(FormTest, SourcePropagatesAlongChain) {
  SolverHarness H(GetParam());
  VarId X = H.var("X"), Y = H.var("Y"), Z = H.var("Z");
  ExprId C = H.source("c");
  H.Solver.addConstraint(C, H.v(X));
  H.Solver.addConstraint(H.v(X), H.v(Y));
  H.Solver.addConstraint(H.v(Y), H.v(Z));
  EXPECT_EQ(H.ls(Z), std::vector<ExprId>{C});
  EXPECT_EQ(H.ls(Y), std::vector<ExprId>{C});
  EXPECT_EQ(H.ls(X), std::vector<ExprId>{C});
}

TEST_P(FormTest, EdgeAddedBeforeSourceStillPropagates) {
  SolverHarness H(GetParam());
  VarId X = H.var("X"), Y = H.var("Y");
  ExprId C = H.source("c");
  H.Solver.addConstraint(H.v(X), H.v(Y)); // Edge first,
  H.Solver.addConstraint(C, H.v(X));      // source second.
  EXPECT_EQ(H.ls(Y), std::vector<ExprId>{C});
}

TEST_P(FormTest, DiamondMergesSources) {
  SolverHarness H(GetParam());
  VarId A = H.var("A"), B = H.var("B"), C = H.var("C"), D = H.var("D");
  ExprId S1 = H.source("s1"), S2 = H.source("s2");
  H.Solver.addConstraint(S1, H.v(A));
  H.Solver.addConstraint(S2, H.v(B));
  H.Solver.addConstraint(H.v(A), H.v(C));
  H.Solver.addConstraint(H.v(B), H.v(C));
  H.Solver.addConstraint(H.v(C), H.v(D));
  std::vector<ExprId> Expected = {S1, S2};
  std::sort(Expected.begin(), Expected.end());
  EXPECT_EQ(H.ls(D), Expected);
  EXPECT_EQ(H.ls(C), Expected);
  EXPECT_TRUE(H.ls(A).size() == 1 && H.ls(B).size() == 1);
}

TEST_P(FormTest, NoBackwardsFlow) {
  SolverHarness H(GetParam());
  VarId X = H.var("X"), Y = H.var("Y");
  ExprId C = H.source("c");
  H.Solver.addConstraint(H.v(X), H.v(Y));
  H.Solver.addConstraint(C, H.v(Y));
  EXPECT_TRUE(H.ls(X).empty());
  EXPECT_EQ(H.ls(Y), std::vector<ExprId>{C});
}

TEST_P(FormTest, ZeroAndOneRules) {
  SolverHarness H(GetParam());
  VarId X = H.var("X");
  // 0 <= X and X <= 1 are discharged without creating edges.
  H.Solver.addConstraint(H.Terms.zero(), H.v(X));
  H.Solver.addConstraint(H.v(X), H.Terms.one());
  EXPECT_TRUE(H.ls(X).empty());
  EXPECT_EQ(H.Solver.stats().Mismatches, 0u);
  EXPECT_EQ(H.Solver.stats().Work, 0u);
}

TEST_P(FormTest, OneAsSourceAppearsInLS) {
  SolverHarness H(GetParam());
  VarId X = H.var("X"), Y = H.var("Y");
  H.Solver.addConstraint(H.Terms.one(), H.v(X));
  H.Solver.addConstraint(H.v(X), H.v(Y));
  EXPECT_EQ(H.ls(Y), std::vector<ExprId>{H.Terms.one()});
}

TEST_P(FormTest, ReflexiveConstraintIsFree) {
  SolverHarness H(GetParam());
  VarId X = H.var("X");
  H.Solver.addConstraint(H.v(X), H.v(X));
  EXPECT_EQ(H.Solver.stats().Work, 0u);
}

INSTANTIATE_TEST_SUITE_P(Forms, FormTest,
                         testing::Values(sfPlain(), ifPlain()),
                         [](const auto &Info) {
                           return Info.param.Form == GraphForm::Standard
                                      ? "SF"
                                      : "IF";
                         });

//===----------------------------------------------------------------------===//
// Resolution rules (decomposition, variance, mismatches)
//===----------------------------------------------------------------------===//

TEST(ResolutionTest, CovariantDecomposition) {
  SolverHarness H(ifPlain());
  ConsId C = H.Constructors.getOrCreate("c", {Variance::Covariant});
  VarId X = H.var("X"), Y = H.var("Y");
  ExprId S = H.source("s");
  H.Solver.addConstraint(S, H.v(X));
  // c(X) <= c(Y)  ==>  X <= Y.
  H.Solver.addConstraint(H.Terms.cons(C, {H.v(X)}),
                         H.Terms.cons(C, {H.v(Y)}));
  EXPECT_EQ(H.ls(Y), std::vector<ExprId>{S});
}

TEST(ResolutionTest, ContravariantDecompositionFlipsDirection) {
  SolverHarness H(ifPlain());
  ConsId C = H.Constructors.getOrCreate("c", {Variance::Contravariant});
  VarId X = H.var("X"), Y = H.var("Y");
  ExprId S = H.source("s");
  H.Solver.addConstraint(S, H.v(Y));
  // c(~X) <= c(~Y)  ==>  Y <= X.
  H.Solver.addConstraint(H.Terms.cons(C, {H.v(X)}),
                         H.Terms.cons(C, {H.v(Y)}));
  EXPECT_EQ(H.ls(X), std::vector<ExprId>{S});
  EXPECT_TRUE(H.ls(Y).size() == 1);
}

TEST(ResolutionTest, MixedVarianceRefLikeConstructor) {
  SolverHarness H(ifPlain());
  ConsId Ref = H.Constructors.getOrCreate(
      "ref", {Variance::Covariant, Variance::Contravariant});
  VarId Get = H.var("Get"), T = H.var("T"), U = H.var("U");
  ExprId S = H.source("s");
  // Read: ref(Get, ~Get) <= ref(T, ~0) gives Get <= T.
  H.Solver.addConstraint(S, H.v(Get));
  H.Solver.addConstraint(
      H.Terms.cons(Ref, {H.v(Get), H.v(Get)}),
      H.Terms.cons(Ref, {H.v(T), H.Terms.zero()}));
  EXPECT_EQ(H.ls(T), std::vector<ExprId>{S});
  // Write: ref(Get, ~Get) <= ref(1, ~U) gives U <= Get.
  ExprId S2 = H.source("s2");
  H.Solver.addConstraint(S2, H.v(U));
  H.Solver.addConstraint(H.Terms.cons(Ref, {H.v(Get), H.v(Get)}),
                         H.Terms.cons(Ref, {H.Terms.one(), H.v(U)}));
  std::vector<ExprId> GetLS = H.ls(Get);
  EXPECT_TRUE(std::find(GetLS.begin(), GetLS.end(), S2) != GetLS.end());
}

TEST(ResolutionTest, ConstructorMismatchIsCountedAndIgnored) {
  SolverHarness H(ifPlain());
  ExprId A = H.source("a");
  ExprId B = H.source("b");
  VarId X = H.var("X");
  H.Solver.addConstraint(A, H.v(X));
  H.Solver.addConstraint(H.v(X), B); // Sink b; pairing a <= b mismatches.
  EXPECT_EQ(H.Solver.stats().Mismatches, 1u);
  EXPECT_TRUE(H.Solver.inconsistencies().empty()); // Ignore policy.
}

TEST(ResolutionTest, MismatchCollectPolicyRecords) {
  SolverOptions Options = ifPlain();
  Options.Mismatch = MismatchPolicy::Collect;
  SolverHarness H(Options);
  VarId X = H.var("X");
  H.Solver.addConstraint(H.source("a"), H.v(X));
  H.Solver.addConstraint(H.v(X), H.source("b"));
  ASSERT_EQ(H.Solver.inconsistencies().size(), 1u);
  EXPECT_NE(H.Solver.inconsistencies()[0].find("a"), std::string::npos);
  EXPECT_NE(H.Solver.inconsistencies()[0].find("b"), std::string::npos);
}

TEST(ResolutionTest, OneIntoConstructedIsMismatch) {
  SolverHarness H(ifPlain());
  VarId X = H.var("X");
  H.Solver.addConstraint(H.Terms.one(), H.v(X));
  H.Solver.addConstraint(H.v(X), H.source("c"));
  EXPECT_EQ(H.Solver.stats().Mismatches, 1u);
}

TEST(ResolutionTest, ArityMismatchBetweenFamilies) {
  SolverHarness H(ifPlain());
  ConsId Lam1 = H.Constructors.getOrCreate("lam$1", {Variance::Covariant});
  ConsId Lam2 = H.Constructors.getOrCreate(
      "lam$2", {Variance::Covariant, Variance::Covariant});
  VarId X = H.var("X"), Y = H.var("Y");
  H.Solver.addConstraint(H.Terms.cons(Lam1, {H.v(X)}), H.v(Y));
  H.Solver.addConstraint(
      H.v(Y), H.Terms.cons(Lam2, {H.v(X), H.v(X)}));
  EXPECT_EQ(H.Solver.stats().Mismatches, 1u);
}

TEST(ResolutionTest, NestedDecomposition) {
  SolverHarness H(ifPlain());
  ConsId C = H.Constructors.getOrCreate("c", {Variance::Covariant});
  VarId X = H.var("X"), Y = H.var("Y");
  ExprId S = H.source("s");
  H.Solver.addConstraint(S, H.v(X));
  // c(c(X)) <= c(c(Y))  ==>  X <= Y.
  H.Solver.addConstraint(H.Terms.cons(C, {H.Terms.cons(C, {H.v(X)})}),
                         H.Terms.cons(C, {H.Terms.cons(C, {H.v(Y)})}));
  EXPECT_EQ(H.ls(Y), std::vector<ExprId>{S});
}

//===----------------------------------------------------------------------===//
// Work accounting
//===----------------------------------------------------------------------===//

TEST(WorkTest, TreeHasNoRedundantAdds) {
  SolverHarness H(sfPlain());
  VarId A = H.var("A"), B = H.var("B"), C = H.var("C");
  H.Solver.addConstraint(H.source("s"), H.v(A));
  H.Solver.addConstraint(H.v(A), H.v(B));
  H.Solver.addConstraint(H.v(A), H.v(C));
  H.Solver.finalize();
  EXPECT_EQ(H.Solver.stats().RedundantAdds, 0u);
  EXPECT_EQ(H.Solver.stats().SelfEdges, 0u);
}

TEST(WorkTest, ParallelPathsCauseRedundantAddsInSF) {
  // The paper's Figure 2: k sources into X, l parallel paths X -> Yi -> Z.
  SolverHarness H(sfPlain());
  const int K = 3, L = 4;
  VarId X = H.var("X"), Z = H.var("Z");
  std::vector<ExprId> Sources;
  for (int I = 0; I != K; ++I) {
    Sources.push_back(H.source(("s" + std::to_string(I)).c_str()));
    H.Solver.addConstraint(Sources.back(), H.v(X));
  }
  for (int I = 0; I != L; ++I) {
    VarId Y = H.var(("Y" + std::to_string(I)).c_str());
    H.Solver.addConstraint(H.v(X), H.v(Y));
    H.Solver.addConstraint(H.v(Y), H.v(Z));
  }
  H.Solver.finalize();
  // Each source is added to Z along each of the L paths; L-1 of those are
  // redundant per source.
  EXPECT_EQ(H.Solver.stats().RedundantAdds,
            static_cast<uint64_t>(K) * (L - 1));
  std::vector<ExprId> Expected = Sources;
  std::sort(Expected.begin(), Expected.end());
  EXPECT_EQ(H.ls(Z), Expected);
}

TEST(WorkTest, InitialEdgesCountsOnlyInputConstraints) {
  SolverHarness H(sfPlain());
  VarId X = H.var("X"), Y = H.var("Y");
  H.Solver.addConstraint(H.source("s"), H.v(X)); // 1 initial edge.
  H.Solver.addConstraint(H.v(X), H.v(Y));        // 1 initial edge.
  // The derived addition s <= Y is not an initial edge.
  H.Solver.finalize();
  EXPECT_EQ(H.Solver.stats().InitialEdges, 2u);
  EXPECT_EQ(H.Solver.stats().Work, 3u);
}

TEST(WorkTest, DistinctSourceAndSinkCounts) {
  SolverHarness H(sfPlain());
  VarId X = H.var("X"), Y = H.var("Y");
  ExprId S = H.source("s");
  H.Solver.addConstraint(S, H.v(X));
  H.Solver.addConstraint(S, H.v(Y)); // Same source, second variable.
  H.Solver.addConstraint(H.v(X), H.source("t"));
  EXPECT_EQ(H.Solver.stats().DistinctSources, 1u);
  EXPECT_EQ(H.Solver.stats().DistinctSinks, 1u);
}

TEST(WorkTest, MaxWorkAborts) {
  SolverOptions Options = sfPlain();
  Options.MaxWork = 10;
  SolverHarness H(Options);
  // A quadratic-ish system that needs more than 10 additions.
  std::vector<VarId> Vars;
  for (int I = 0; I != 10; ++I)
    Vars.push_back(H.var(("V" + std::to_string(I)).c_str()));
  for (int I = 0; I != 5; ++I)
    H.Solver.addConstraint(H.source(("s" + std::to_string(I)).c_str()),
                           H.v(Vars[0]));
  for (int I = 0; I + 1 != 10; ++I)
    H.Solver.addConstraint(H.v(Vars[I]), H.v(Vars[I + 1]));
  EXPECT_TRUE(H.Solver.stats().Aborted);
  EXPECT_LE(H.Solver.stats().Work, 12u); // Stops promptly after the bound.
}

//===----------------------------------------------------------------------===//
// Graph introspection
//===----------------------------------------------------------------------===//

TEST(IntrospectionTest, FinalEdgesCountsDistinctEdges) {
  SolverHarness H(sfPlain());
  VarId X = H.var("X"), Y = H.var("Y");
  H.Solver.addConstraint(H.source("s"), H.v(X));
  H.Solver.addConstraint(H.v(X), H.v(Y));
  H.Solver.finalize();
  // Edges: s in pred(X), Y in succ(X), s in pred(Y).
  EXPECT_EQ(H.Solver.countFinalEdges(), 3u);
}

TEST(IntrospectionTest, VarVarDigraphDirections) {
  SolverHarness H(ifPlain());
  VarId X = H.var("X"), Y = H.var("Y"), Z = H.var("Z");
  H.Solver.addConstraint(H.v(X), H.v(Y));
  H.Solver.addConstraint(H.v(Y), H.v(Z));
  Digraph G = H.Solver.varVarDigraph();
  EXPECT_TRUE(G.hasEdge(X, Y));
  EXPECT_TRUE(G.hasEdge(Y, Z));
  EXPECT_FALSE(G.hasEdge(Y, X));
}

TEST(IntrospectionTest, RecordedVarVarInCreationIndexSpace) {
  SolverOptions Options = ifPlain();
  Options.RecordVarVar = true;
  SolverHarness H(Options);
  VarId X = H.var("X"), Y = H.var("Y");
  H.Solver.addConstraint(H.v(X), H.v(Y));
  H.Solver.addConstraint(H.v(X), H.v(Y)); // Duplicate: recorded once.
  ASSERT_EQ(H.Solver.recordedVarVar().size(), 1u);
  EXPECT_EQ(H.Solver.recordedVarVar()[0],
            std::make_pair(H.Solver.creationIndexOf(X),
                           H.Solver.creationIndexOf(Y)));
  EXPECT_EQ(H.Solver.recordedInitialVarVar().size(), 1u);
}

TEST(IntrospectionTest, OrderKindsAssignExpectedOrders) {
  SolverOptions Creation = ifPlain();
  Creation.Order = OrderKind::Creation;
  SolverHarness H(Creation);
  VarId A = H.var("A"), B = H.var("B");
  EXPECT_LT(H.Solver.orderOf(A), H.Solver.orderOf(B));

  SolverOptions Reverse = ifPlain();
  Reverse.Order = OrderKind::ReverseCreation;
  SolverHarness H2(Reverse);
  VarId C = H2.var("C"), D = H2.var("D");
  EXPECT_GT(H2.Solver.orderOf(C), H2.Solver.orderOf(D));
}

TEST(IntrospectionTest, PredChainReachableCountsChains) {
  SolverOptions Options = ifPlain();
  Options.Order = OrderKind::Creation;
  SolverHarness H(Options);
  // With creation order, A < B < C; edges A <= B <= C become pred edges.
  VarId A = H.var("A"), B = H.var("B"), C = H.var("C");
  H.Solver.addConstraint(H.v(A), H.v(B));
  H.Solver.addConstraint(H.v(B), H.v(C));
  EXPECT_EQ(H.Solver.countPredChainReachable(C), 2u);
  EXPECT_EQ(H.Solver.countPredChainReachable(B), 1u);
  EXPECT_EQ(H.Solver.countPredChainReachable(A), 0u);
}

//===----------------------------------------------------------------------===//
// Maintenance: compact() and dumpGraph()
//===----------------------------------------------------------------------===//

TEST(MaintenanceTest, CompactPreservesSolutionsAndEdges) {
  SolverOptions Options =
      makeConfig(GraphForm::Inductive, CycleElim::Online, 17);
  SolverHarness H(Options);
  // A cyclic system leaves stale forwarded entries behind.
  std::vector<VarId> Vars;
  for (int I = 0; I != 12; ++I)
    Vars.push_back(H.var(("V" + std::to_string(I)).c_str()));
  ExprId S = H.source("s");
  H.Solver.addConstraint(S, H.v(Vars[0]));
  for (int I = 0; I != 12; ++I)
    H.Solver.addConstraint(H.v(Vars[I]), H.v(Vars[(I + 1) % 12]));
  for (int I = 0; I != 12; I += 3)
    H.Solver.addConstraint(H.v(Vars[(I + 5) % 12]), H.v(Vars[I]));
  H.Solver.finalize();

  uint64_t EdgesBefore = H.Solver.countFinalEdges();
  std::vector<std::vector<ExprId>> Before;
  for (VarId Var : Vars)
    Before.push_back(H.Solver.leastSolution(Var));

  H.Solver.compact();
  EXPECT_EQ(H.Solver.countFinalEdges(), EdgesBefore);
  for (size_t I = 0; I != Vars.size(); ++I)
    EXPECT_EQ(H.Solver.leastSolution(Vars[I]), Before[I]);
  // A second compaction finds nothing left to remove.
  EXPECT_EQ(H.Solver.compact(), 0u);
}

TEST(MaintenanceTest, CompactOnCleanGraphIsNoop) {
  SolverHarness H(makeConfig(GraphForm::Standard, CycleElim::None));
  VarId X = H.var("X"), Y = H.var("Y");
  H.Solver.addConstraint(H.source("s"), H.v(X));
  H.Solver.addConstraint(H.v(X), H.v(Y));
  EXPECT_EQ(H.Solver.compact(), 0u);
}

TEST(MaintenanceTest, DumpGraphShowsResolvedStructure) {
  SolverHarness H(makeConfig(GraphForm::Standard, CycleElim::None));
  VarId X = H.var("alpha"), Y = H.var("beta");
  H.Solver.addConstraint(H.source("s"), H.v(X));
  H.Solver.addConstraint(H.v(X), H.v(Y));
  H.Solver.finalize();
  std::string Dump = H.Solver.dumpGraph();
  EXPECT_NE(Dump.find("var alpha"), std::string::npos);
  EXPECT_NE(Dump.find("var beta"), std::string::npos);
  EXPECT_NE(Dump.find("pred: s"), std::string::npos);
  EXPECT_NE(Dump.find("succ: beta"), std::string::npos);
}
