//===- support/Metrics.cpp - Process-wide metrics registry ----------------===//
//
// Part of the poce project.
//
//===----------------------------------------------------------------------===//

#include "support/Metrics.h"

#include "support/ErrorHandling.h"

#include <algorithm>
#include <cstdio>

using namespace poce;

std::atomic<bool> MetricsRegistry::TimingOn{false};

//===----------------------------------------------------------------------===//
// Histogram reads
//===----------------------------------------------------------------------===//

HistogramSnapshot Histogram::snapshot() const {
  HistogramSnapshot Snap;
  Snap.Buckets.resize(NumBuckets);
  for (unsigned I = 0; I != NumBuckets; ++I)
    Snap.Buckets[I] = Buckets[I].load(std::memory_order_relaxed);
  for (uint64_t B : Snap.Buckets)
    Snap.Count += B;
  Snap.Sum = Sum.load(std::memory_order_relaxed);
  Snap.Max = Max.load(std::memory_order_relaxed);
  return Snap;
}

uint64_t HistogramSnapshot::quantile(double P) const {
  if (Count == 0)
    return 0;
  double Scaled = P * static_cast<double>(Count);
  uint64_t Rank = static_cast<uint64_t>(std::ceil(Scaled));
  if (Rank < 1)
    Rank = 1;
  if (Rank > Count)
    Rank = Count;
  uint64_t Cumulative = 0;
  for (size_t I = 0; I != Buckets.size(); ++I) {
    Cumulative += Buckets[I];
    if (Cumulative >= Rank) {
      uint64_t Upper = Histogram::bucketUpperBound(static_cast<unsigned>(I));
      // The overflow bucket has no finite bound; Max is exact for it when
      // it holds the histogram's largest samples.
      return Upper == UINT64_MAX ? Max : std::min(Upper, Max);
    }
  }
  return Max;
}

//===----------------------------------------------------------------------===//
// Registry
//===----------------------------------------------------------------------===//

MetricsRegistry &MetricsRegistry::global() {
  static MetricsRegistry *Registry = new MetricsRegistry();
  return *Registry;
}

static bool validMetricName(const std::string &Name) {
  if (Name.empty())
    return false;
  auto Head = [](char C) {
    return (C >= 'a' && C <= 'z') || (C >= 'A' && C <= 'Z') || C == '_' ||
           C == ':';
  };
  if (!Head(Name[0]))
    return false;
  for (char C : Name)
    if (!Head(C) && !(C >= '0' && C <= '9'))
      return false;
  return true;
}

MetricsRegistry::Entry &MetricsRegistry::lookup(const std::string &Name,
                                                MetricSample::Kind Kind,
                                                const std::string &Help) {
  if (!validMetricName(Name))
    reportFatalError("invalid metric name '" + Name +
                     "' (want [a-zA-Z_:][a-zA-Z0-9_:]*)");
  std::lock_guard<std::mutex> Lock(Mutex);
  auto It = Entries.find(Name);
  if (It != Entries.end()) {
    if (It->second.Kind != Kind)
      reportFatalError("metric '" + Name +
                       "' re-registered with a different kind");
    return It->second;
  }
  Entry &E = Entries[Name];
  E.Kind = Kind;
  E.Help = Help;
  switch (Kind) {
  case MetricSample::Kind::Counter:
    E.C = std::make_unique<Counter>();
    break;
  case MetricSample::Kind::Gauge:
    E.G = std::make_unique<Gauge>();
    break;
  case MetricSample::Kind::Histogram:
    E.H = std::make_unique<Histogram>();
    break;
  }
  return E;
}

Counter &MetricsRegistry::counter(const std::string &Name,
                                  const std::string &Help) {
  return *lookup(Name, MetricSample::Kind::Counter, Help).C;
}

Gauge &MetricsRegistry::gauge(const std::string &Name,
                              const std::string &Help) {
  return *lookup(Name, MetricSample::Kind::Gauge, Help).G;
}

Histogram &MetricsRegistry::histogram(const std::string &Name,
                                      const std::string &Help) {
  return *lookup(Name, MetricSample::Kind::Histogram, Help).H;
}

std::vector<MetricSample> MetricsRegistry::snapshot() const {
  std::lock_guard<std::mutex> Lock(Mutex);
  std::vector<MetricSample> Out;
  Out.reserve(Entries.size());
  for (const auto &[Name, E] : Entries) {
    MetricSample Sample;
    Sample.Name = Name;
    Sample.Help = E.Help;
    Sample.Type = E.Kind;
    switch (E.Kind) {
    case MetricSample::Kind::Counter:
      Sample.Value = E.C->value();
      break;
    case MetricSample::Kind::Gauge:
      Sample.Value = E.G->value();
      break;
    case MetricSample::Kind::Histogram:
      Sample.Histogram = E.H->snapshot();
      break;
    }
    Out.push_back(std::move(Sample));
  }
  return Out; // std::map iteration is already name-sorted.
}

void MetricsRegistry::reset() {
  std::lock_guard<std::mutex> Lock(Mutex);
  for (auto &[Name, E] : Entries) {
    (void)Name;
    switch (E.Kind) {
    case MetricSample::Kind::Counter:
      E.C->set(0);
      break;
    case MetricSample::Kind::Gauge:
      E.G->set(0);
      break;
    case MetricSample::Kind::Histogram:
      E.H->reset();
      break;
    }
  }
}

//===----------------------------------------------------------------------===//
// Renderers
//===----------------------------------------------------------------------===//

std::string MetricsRegistry::renderPrometheus() const {
  std::string Out;
  char Buf[160];
  for (const MetricSample &S : snapshot()) {
    if (!S.Help.empty())
      Out += "# HELP " + S.Name + " " + S.Help + "\n";
    switch (S.Type) {
    case MetricSample::Kind::Counter:
      Out += "# TYPE " + S.Name + " counter\n";
      std::snprintf(Buf, sizeof(Buf), "%s %llu\n", S.Name.c_str(),
                    static_cast<unsigned long long>(S.Value));
      Out += Buf;
      break;
    case MetricSample::Kind::Gauge:
      Out += "# TYPE " + S.Name + " gauge\n";
      std::snprintf(Buf, sizeof(Buf), "%s %llu\n", S.Name.c_str(),
                    static_cast<unsigned long long>(S.Value));
      Out += Buf;
      break;
    case MetricSample::Kind::Histogram: {
      Out += "# TYPE " + S.Name + " histogram\n";
      uint64_t Cumulative = 0;
      for (size_t I = 0; I != S.Histogram.Buckets.size(); ++I) {
        // Empty buckets below the first occupied one still render (the
        // Prometheus format wants a stable bucket schema), but interior
        // runs of zeros compress to nothing extra anyway at 40 buckets.
        Cumulative += S.Histogram.Buckets[I];
        uint64_t Upper = Histogram::bucketUpperBound(static_cast<unsigned>(I));
        if (Upper == UINT64_MAX)
          std::snprintf(Buf, sizeof(Buf), "%s_bucket{le=\"+Inf\"} %llu\n",
                        S.Name.c_str(),
                        static_cast<unsigned long long>(Cumulative));
        else
          std::snprintf(Buf, sizeof(Buf), "%s_bucket{le=\"%llu\"} %llu\n",
                        S.Name.c_str(),
                        static_cast<unsigned long long>(Upper),
                        static_cast<unsigned long long>(Cumulative));
        Out += Buf;
      }
      std::snprintf(Buf, sizeof(Buf), "%s_sum %llu\n%s_count %llu\n",
                    S.Name.c_str(),
                    static_cast<unsigned long long>(S.Histogram.Sum),
                    S.Name.c_str(),
                    static_cast<unsigned long long>(S.Histogram.Count));
      Out += Buf;
      break;
    }
    }
  }
  return Out;
}

std::string MetricsRegistry::renderJson() const {
  std::string Counters, Gauges, Histograms;
  char Buf[256];
  for (const MetricSample &S : snapshot()) {
    switch (S.Type) {
    case MetricSample::Kind::Counter:
      std::snprintf(Buf, sizeof(Buf), "%s\"%s\": %llu",
                    Counters.empty() ? "" : ", ", S.Name.c_str(),
                    static_cast<unsigned long long>(S.Value));
      Counters += Buf;
      break;
    case MetricSample::Kind::Gauge:
      std::snprintf(Buf, sizeof(Buf), "%s\"%s\": %llu",
                    Gauges.empty() ? "" : ", ", S.Name.c_str(),
                    static_cast<unsigned long long>(S.Value));
      Gauges += Buf;
      break;
    case MetricSample::Kind::Histogram:
      std::snprintf(
          Buf, sizeof(Buf),
          "%s\"%s\": {\"count\": %llu, \"sum\": %llu, \"max\": %llu, "
          "\"p50\": %llu, \"p99\": %llu}",
          Histograms.empty() ? "" : ", ", S.Name.c_str(),
          static_cast<unsigned long long>(S.Histogram.Count),
          static_cast<unsigned long long>(S.Histogram.Sum),
          static_cast<unsigned long long>(S.Histogram.Max),
          static_cast<unsigned long long>(S.Histogram.quantile(0.50)),
          static_cast<unsigned long long>(S.Histogram.quantile(0.99)));
      Histograms += Buf;
      break;
    }
  }
  return "{\"counters\": {" + Counters + "}, \"gauges\": {" + Gauges +
         "}, \"histograms\": {" + Histograms + "}}";
}

//===----------------------------------------------------------------------===//
// Exact percentiles
//===----------------------------------------------------------------------===//

uint64_t poce::exactPercentile(const std::vector<uint64_t> &Sorted,
                               double P) {
  if (Sorted.empty())
    return 0;
  double Scaled = P * static_cast<double>(Sorted.size());
  uint64_t Rank = static_cast<uint64_t>(std::ceil(Scaled));
  if (Rank < 1)
    Rank = 1;
  if (Rank > Sorted.size())
    Rank = Sorted.size();
  return Sorted[Rank - 1];
}
