//===- tests/cfa_test.cpp - Closure analysis unit tests --------------------===//
//
// Part of the poce project.
//
//===----------------------------------------------------------------------===//

#include "cfa/ClosureAnalysis.h"

#include <gtest/gtest.h>

using namespace poce;
using namespace poce::cfa;

namespace {

struct Analyzed {
  LambdaProgram Program;
  ConstructorTable Constructors;
  CFAResult Result;
  bool Ok = false;
};

std::unique_ptr<Analyzed>
analyze(const std::string &Source,
        SolverOptions Options = makeConfig(GraphForm::Inductive,
                                           CycleElim::Online)) {
  auto A = std::make_unique<Analyzed>();
  std::string Error;
  A->Ok = A->Program.parse(Source, &Error);
  EXPECT_TRUE(A->Ok) << Error;
  if (A->Ok)
    A->Result = runClosureAnalysis(A->Program, A->Constructors, Options);
  return A;
}

using Labels = std::vector<uint32_t>;

} // namespace

//===----------------------------------------------------------------------===//
// Parser
//===----------------------------------------------------------------------===//

TEST(LambdaParserTest, BasicForms) {
  LambdaProgram P;
  EXPECT_TRUE(P.parse("\\x. x"));
  EXPECT_EQ(P.numLambdas(), 1u);
  EXPECT_TRUE(P.parse("fun x -> x x"));
  EXPECT_EQ(P.numAppSites(), 1u);
  EXPECT_TRUE(P.parse("let f = \\x. x in f f"));
  EXPECT_TRUE(P.parse("let rec f = \\x. f x in f"));
  EXPECT_TRUE(P.parse("if0 1 then \\x. x else \\y. y"));
  EXPECT_TRUE(P.parse("1 + 2 - 3"));
  EXPECT_TRUE(P.parse("(\\x. x) (\\y. y)"));
  EXPECT_TRUE(P.parse("-- comment\n42"));
}

TEST(LambdaParserTest, ApplicationIsLeftAssociativeAndTight) {
  LambdaProgram P;
  // f a b parses as (f a) b: two app sites.
  ASSERT_TRUE(P.parse("let f = \\x. \\y. x in f f f"));
  EXPECT_EQ(P.numAppSites(), 2u);
  // f 1 + g 2: applications bind tighter than '+'.
  ASSERT_TRUE(P.parse("let f = \\x. x in f 1 + f 2"));
  EXPECT_EQ(P.numAppSites(), 2u);
}

TEST(LambdaParserTest, Errors) {
  LambdaProgram P;
  std::string Error;
  EXPECT_FALSE(P.parse("let x = in x", &Error));
  EXPECT_FALSE(P.parse("\\", &Error));
  EXPECT_FALSE(P.parse("(1", &Error));
  EXPECT_FALSE(P.parse("1 2 extra )", &Error));
  EXPECT_FALSE(P.parse("let in = 3 in in", &Error));
  EXPECT_FALSE(Error.empty());
}

TEST(LambdaParserTest, LabelsAreSourceOrdered) {
  LambdaProgram P;
  ASSERT_TRUE(P.parse("(\\a. a) (\\b. b)"));
  EXPECT_EQ(P.numLambdas(), 2u);
  EXPECT_EQ(P.numAppSites(), 1u);
}

//===----------------------------------------------------------------------===//
// Analysis
//===----------------------------------------------------------------------===//

TEST(CFATest, IdentityApplication) {
  // (\a. a) (\b. b): the only call site applies L0.
  auto A = analyze("(\\a. a) (\\b. b)");
  EXPECT_EQ(A->Result.targetsOf(0), (Labels{0}));
}

TEST(CFATest, LetBoundClosure) {
  auto A = analyze("let f = \\x. x in f 1");
  EXPECT_EQ(A->Result.targetsOf(0), (Labels{0}));
}

TEST(CFATest, HigherOrderFlowsThroughParameter) {
  // apply = \f. f 0 ; apply id: the inner site f 0 applies id (L1).
  auto A = analyze("let apply = \\f. f 0 in apply (\\y. y)");
  // Site ids in source order: "f 0" is site 0, "apply (\y.y)" is site 1.
  EXPECT_EQ(A->Result.targetsOf(0), (Labels{1}));
  EXPECT_EQ(A->Result.targetsOf(1), (Labels{0}));
}

TEST(CFATest, MonovarianceMergesCallers) {
  // 0CFA is monovariant: both uses of apply merge in f.
  auto A = analyze("let apply = \\f. f 0 in\n"
                   "let r1 = apply (\\a. a) in\n"
                   "let r2 = apply (\\b. b) in r1");
  EXPECT_EQ(A->Result.targetsOf(0), (Labels{1, 2}));
}

TEST(CFATest, ConditionalMergesBranches) {
  auto A = analyze("(if0 1 then \\a. a else \\b. b) 7");
  EXPECT_EQ(A->Result.targetsOf(0), (Labels{0, 1}));
}

TEST(CFATest, RecursionCreatesCyclesAndStillSolves) {
  auto A = analyze("let rec loop = \\f. if0 f 0 then f else loop f in\n"
                   "loop (\\x. x)");
  // "f 0" applies the argument closure; "loop f" and "loop (\x.x)" apply
  // the recursive binding (L0).
  EXPECT_EQ(A->Result.targetsOf(0), (Labels{1}));
  EXPECT_EQ(A->Result.targetsOf(1), (Labels{0}));
  EXPECT_EQ(A->Result.targetsOf(2), (Labels{0}));
}

TEST(CFATest, SelfApplicationOmega) {
  // (\x. x x) (\y. y y): sites in preorder are the outer application
  // (site 0), "x x" (site 1), and "y y" (site 2). The outer site applies
  // L0; x and y are both bound to L1, so the inner sites apply L1 — and
  // the analysis terminates despite the self-application.
  auto A = analyze("(\\x. x x) (\\y. y y)");
  EXPECT_EQ(A->Result.targetsOf(0), (Labels{0}));
  EXPECT_EQ(A->Result.targetsOf(1), (Labels{1}));
  EXPECT_EQ(A->Result.targetsOf(2), (Labels{1}));
}

TEST(CFATest, NumbersCarryNoClosures) {
  auto A = analyze("let f = \\x. x in (f 1) 2");
  // Preorder sites: "(f 1) 2" is site 0, "f 1" is site 1. The inner call
  // applies f; the outer applies whatever f returns — its argument, the
  // number 1 — so no closures reach it.
  EXPECT_EQ(A->Result.targetsOf(0), (Labels{}));
  EXPECT_EQ(A->Result.targetsOf(1), (Labels{0}));
}

TEST(CFATest, UnboundVariablesReported) {
  auto A = analyze("ghost 1");
  ASSERT_EQ(A->Result.UnboundVariables.size(), 1u);
  EXPECT_EQ(A->Result.UnboundVariables[0], "ghost");
  EXPECT_EQ(A->Result.targetsOf(0), (Labels{}));
}

TEST(CFATest, LetNonRecDoesNotSeeItself) {
  // Non-recursive let: the bound expression's 'f' is unbound.
  auto A = analyze("let f = \\x. f x in f");
  EXPECT_EQ(A->Result.UnboundVariables.size(), 1u);
}

//===----------------------------------------------------------------------===//
// Configuration equivalence and cycle statistics
//===----------------------------------------------------------------------===//

class CFAEquivalenceTest : public testing::TestWithParam<uint32_t> {};

TEST_P(CFAEquivalenceTest, AllConfigsAgreeOnSyntheticPrograms) {
  std::string Source = generateLambdaProgram(GetParam(), GetParam() * 11);
  LambdaProgram Program;
  std::string Error;
  ASSERT_TRUE(Program.parse(Source, &Error)) << Error << "\n" << Source;

  ConstructorTable Constructors;
  SolverOptions Base = makeConfig(GraphForm::Inductive, CycleElim::Online);
  Oracle O = buildOracle(makeGenerator(Program), Constructors, Base);

  const std::pair<GraphForm, CycleElim> Configs[] = {
      {GraphForm::Standard, CycleElim::None},
      {GraphForm::Inductive, CycleElim::None},
      {GraphForm::Standard, CycleElim::Online},
      {GraphForm::Inductive, CycleElim::Online},
      {GraphForm::Standard, CycleElim::Oracle},
      {GraphForm::Inductive, CycleElim::Oracle},
      {GraphForm::Inductive, CycleElim::Periodic},
  };
  std::map<uint32_t, std::vector<uint32_t>> Reference;
  bool HaveReference = false;
  for (auto [Form, Elim] : Configs) {
    CFAResult Result = runClosureAnalysis(
        Program, Constructors, makeConfig(Form, Elim),
        Elim == CycleElim::Oracle ? &O : nullptr);
    if (!HaveReference) {
      Reference = std::move(Result.CallTargets);
      HaveReference = true;
    } else {
      EXPECT_EQ(Result.CallTargets, Reference)
          << makeConfig(Form, Elim).configName();
    }
  }
  EXPECT_FALSE(Reference.empty());
}

INSTANTIATE_TEST_SUITE_P(Sizes, CFAEquivalenceTest,
                         testing::Values(2u, 8u, 25u),
                         [](const auto &Info) {
                           return "groups" + std::to_string(Info.param);
                         });

TEST(CFATest, RecursiveWorkloadsHaveCycles) {
  std::string Source = generateLambdaProgram(20, 7);
  LambdaProgram Program;
  ASSERT_TRUE(Program.parse(Source));
  ConstructorTable Constructors;
  CFAResult Online = runClosureAnalysis(
      Program, Constructors, makeConfig(GraphForm::Inductive,
                                        CycleElim::Online));
  EXPECT_GT(Online.Stats.VarsEliminated, 0u);
  CFAResult Plain = runClosureAnalysis(
      Program, Constructors, makeConfig(GraphForm::Inductive,
                                        CycleElim::None));
  EXPECT_LE(Online.Stats.Work, Plain.Stats.Work);
}
