#!/usr/bin/env bash
# Builds the serve subsystem under AddressSanitizer and runs the
# snapshot, query-engine, WAL, and fault-injection tests plus the
# scserved end-to-end smoke and crash-recovery scripts.
#
# The snapshot loader and the WAL replayer consume untrusted bytes, so
# every bounds bug in them is memory-unsafe by definition; this script is
# the check that the byte-flip/truncation fuzzing in snapshot_test.cpp
# and the torn-tail/failpoint cases in fault_test.cpp really exercise
# clean failure paths. Uses a dedicated build directory so the
# instrumented build never mixes with the normal one.
#
# Usage: scripts/asan.sh [extra ctest args...]
set -euo pipefail
cd "$(dirname "$0")/.."

BUILD_DIR=build-asan
cmake -B "$BUILD_DIR" -S . -DPOCE_SANITIZE=address
cmake --build "$BUILD_DIR" -j --target serve_tests core_tests scserved \
  scsolve scnetcat
(cd "$BUILD_DIR" && ctest --output-on-failure \
  -R '(Snapshot|QueryEngine|LruCache|ByteStream|Wal|FailPoint|Status|Expected|Budget|WarmRecovery|Metrics|Histogram|Percentile|Trace|Telemetry)' \
  "$@")
scripts/serve_smoke.sh "$BUILD_DIR"
# The socket layer parses untrusted network bytes (framing, size limits)
# — run its end-to-end smoke under ASan too.
scripts/net_smoke.sh "$BUILD_DIR"
# Replication ships raw snapshot bytes and WAL records over that same
# socket layer and replays them into a live engine — bootstrap, catch-up,
# kill -9 failover, and promote all under ASan.
scripts/repl_smoke.sh "$BUILD_DIR"
# Retraction rewrites live graph state in place (cone scrub + replay) and
# appends a new WAL record kind — its torn-record and replay paths are
# exactly the untrusted-byte surface this script exists for.
scripts/retract_smoke.sh "$BUILD_DIR"
scripts/crash_recovery.sh "$BUILD_DIR"
scripts/metrics_smoke.sh "$BUILD_DIR"
# The offline pass rewrites the constraint stream before the solver sees
# it — run its equivalence smoke under ASan so every index the
# substitution map hands back is bounds-checked in anger.
scripts/preprocess_smoke.sh "$BUILD_DIR"
