//===- graph/Digraph.cpp - Simple directed graph ---------------------------===//
//
// Part of the poce project.
//
//===----------------------------------------------------------------------===//

#include "graph/Digraph.h"

#include <cassert>

using namespace poce;

bool Digraph::addEdge(uint32_t From, uint32_t To) {
  assert(From < numNodes() && To < numNodes() && "edge endpoint out of range!");
  uint64_t Key = (static_cast<uint64_t>(From) << 32) | To;
  if (!EdgeSet.insert(Key))
    return false;
  Successors[From].push_back(To);
  ++NumEdges;
  return true;
}

std::vector<uint32_t> Digraph::reachableFrom(uint32_t Start) const {
  assert(Start < numNodes() && "start node out of range!");
  std::vector<bool> Visited(numNodes(), false);
  std::vector<uint32_t> Stack = {Start};
  std::vector<uint32_t> Result;
  Visited[Start] = true;
  while (!Stack.empty()) {
    uint32_t Node = Stack.back();
    Stack.pop_back();
    Result.push_back(Node);
    for (uint32_t Succ : Successors[Node]) {
      if (Visited[Succ])
        continue;
      Visited[Succ] = true;
      Stack.push_back(Succ);
    }
  }
  return Result;
}

std::vector<uint32_t> Digraph::topologicalOrder() const {
  std::vector<uint32_t> InDegree(numNodes(), 0);
  for (uint32_t Node = 0; Node != numNodes(); ++Node)
    for (uint32_t Succ : Successors[Node])
      ++InDegree[Succ];

  std::vector<uint32_t> Ready;
  for (uint32_t Node = 0; Node != numNodes(); ++Node)
    if (InDegree[Node] == 0)
      Ready.push_back(Node);

  std::vector<uint32_t> Order;
  Order.reserve(numNodes());
  while (!Ready.empty()) {
    uint32_t Node = Ready.back();
    Ready.pop_back();
    Order.push_back(Node);
    for (uint32_t Succ : Successors[Node])
      if (--InDegree[Succ] == 0)
        Ready.push_back(Succ);
  }
  if (Order.size() != numNodes())
    return {}; // Cyclic.
  return Order;
}
