//===- graph/DotWriter.h - Graphviz output ----------------------*- C++ -*-===//
//
// Part of the poce project.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Renders a Digraph (or a constraint graph via its Digraph projection) to
/// Graphviz DOT text, with optional node labels and SCC cluster coloring.
///
//===----------------------------------------------------------------------===//

#ifndef POCE_GRAPH_DOTWRITER_H
#define POCE_GRAPH_DOTWRITER_H

#include "graph/Digraph.h"
#include "graph/TarjanSCC.h"

#include <functional>
#include <string>

namespace poce {

/// Options controlling DOT rendering.
struct DotOptions {
  std::string GraphName = "poce";
  /// Optional node labeler; defaults to the node id.
  std::function<std::string(uint32_t)> Label;
  /// When true, nodes of a non-trivial SCC share a fill color.
  bool ColorSCCs = false;
};

/// Renders \p G as DOT text.
std::string writeDot(const Digraph &G, const DotOptions &Options = {});

} // namespace poce

#endif // POCE_GRAPH_DOTWRITER_H
