//===- andersen/Andersen.h - Points-to analysis driver ----------*- C++ -*-===//
//
// Part of the poce project.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// High-level driver for Andersen's points-to analysis: runs constraint
/// generation and resolution under any of the paper's six configurations
/// (Table 4), optionally extracting the points-to graph from the least
/// solution, and exposes the measurements the evaluation section reports.
///
//===----------------------------------------------------------------------===//

#ifndef POCE_ANDERSEN_ANDERSEN_H
#define POCE_ANDERSEN_ANDERSEN_H

#include "andersen/ConstraintGen.h"
#include "minic/AST.h"
#include "setcon/Oracle.h"
#include "setcon/SolverOptions.h"
#include "setcon/SolverStats.h"

#include <map>
#include <set>
#include <string>
#include <vector>

namespace poce {
namespace andersen {

/// Result of one analysis run.
struct AnalysisResult {
  /// Solver measurements (the paper's Edges / Work / eliminated columns
  /// come from here and from FinalEdges).
  SolverStats Stats;
  /// Distinct edges in the final constraint graph.
  uint64_t FinalEdges = 0;
  /// Abstract locations discovered (variables, functions, heap, strings).
  uint32_t NumLocations = 0;
  /// Total set variables created by generation and resolution.
  uint64_t NumSetVars = 0;
  /// Seconds spent generating + solving + computing the least solution
  /// (parsing excluded, matching the paper's methodology).
  double AnalysisSeconds = 0;

  /// Points-to sets by location name (filled when ExtractPointsTo is set):
  /// location -> sorted names of locations it may point to.
  std::map<std::string, std::vector<std::string>> PointsTo;

  /// Structural inconsistencies (empty under MismatchPolicy::Ignore).
  std::vector<std::string> Inconsistencies;

  /// Convenience lookup; returns an empty set for unknown names.
  std::vector<std::string> pointsTo(const std::string &Name) const {
    auto It = PointsTo.find(Name);
    return It == PointsTo.end() ? std::vector<std::string>() : It->second;
  }
};

/// Runs Andersen's analysis over \p Unit with configuration \p Options.
/// \p Constructors is shared across runs so constructor ids stay stable.
/// \p WitnessOracle must be supplied iff Options.Elim is Oracle.
/// When \p ExtractPointsTo is false the least solution is still computed
/// (the paper's timings include it) but not materialized into name sets.
AnalysisResult runAnalysis(const minic::TranslationUnit &Unit,
                           ConstructorTable &Constructors,
                           const SolverOptions &Options,
                           const Oracle *WitnessOracle = nullptr,
                           bool ExtractPointsTo = true);

/// Adapts a translation unit to the oracle builder's generator interface.
GeneratorFn makeGenerator(const minic::TranslationUnit &Unit);

/// Parses MiniC source text; returns true on success.
bool parseSource(const std::string &Source, minic::TranslationUnit &Unit,
                 std::vector<std::string> *ErrorsOut = nullptr,
                 const std::string &FileName = "<input>");

} // namespace andersen
} // namespace poce

#endif // POCE_ANDERSEN_ANDERSEN_H
