//===- minic/Diagnostics.cpp - Frontend diagnostics -----------------------===//
//
// Part of the poce project.
//
//===----------------------------------------------------------------------===//

#include "minic/Diagnostics.h"

using namespace poce;
using namespace poce::minic;

void Diagnostics::error(SourceLocation Loc, const std::string &Message) {
  Errors.push_back(FileName + ":" + Loc.str() + ": error: " + Message);
}

void Diagnostics::printAll(std::FILE *Out) const {
  for (const std::string &Error : Errors)
    std::fprintf(Out, "%s\n", Error.c_str());
}
