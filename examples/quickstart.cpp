//===- examples/quickstart.cpp - Set-constraint solver in five minutes -----===//
//
// Part of the poce project.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Quickstart for the core library: declare constructors, create set
/// variables, add inclusion constraints, and read least solutions — first
/// in standard form, then in inductive form with online cycle elimination.
///
/// Build & run:  ./build/examples/quickstart
///
//===----------------------------------------------------------------------===//

#include "setcon/ConstraintSolver.h"

#include <cstdio>

using namespace poce;

int main() {
  //===------------------------------------------------------------------===//
  // 1. A constructor table defines the term language. Constructors have
  //    per-argument variance; here a covariant pairing constructor and two
  //    nullary constants.
  //===------------------------------------------------------------------===//
  ConstructorTable Constructors;
  ConsId Pair = Constructors.getOrCreate(
      "pair", {Variance::Covariant, Variance::Covariant});
  ConsId A = Constructors.getOrCreate("a", {});
  ConsId B = Constructors.getOrCreate("b", {});

  //===------------------------------------------------------------------===//
  // 2. Terms are hash-consed in a TermTable; a solver processes
  //    constraints online against it.
  //===------------------------------------------------------------------===//
  TermTable Terms(Constructors);
  ConstraintSolver Solver(Terms,
                          makeConfig(GraphForm::Standard, CycleElim::None));

  VarId X = Solver.freshVar("X");
  VarId Y = Solver.freshVar("Y");
  VarId Z = Solver.freshVar("Z");

  ExprId TermA = Terms.cons(A, {});
  ExprId TermB = Terms.cons(B, {});

  // a <= X,  pair(X, b) <= Y is not atomic — but X <= Y and Y <= Z are:
  Solver.addConstraint(TermA, Terms.var(X));
  Solver.addConstraint(Terms.var(X), Terms.var(Y));
  Solver.addConstraint(Terms.var(Y), Terms.var(Z));
  Solver.addConstraint(TermB, Terms.var(Y));

  // Structural constraints decompose by variance:
  // pair(X, X) <= pair(Z, Z) adds X <= Z (twice; once redundantly).
  Solver.addConstraint(Terms.cons(Pair, {Terms.var(X), Terms.var(X)}),
                       Terms.cons(Pair, {Terms.var(Z), Terms.var(Z)}));

  std::printf("least solution of Z:");
  for (ExprId Source : Solver.leastSolution(Z))
    std::printf(" %s", Solver.exprStr(Source).c_str());
  std::printf("\n");

  //===------------------------------------------------------------------===//
  // 3. Cyclic constraints force all variables on the cycle to be equal.
  //    With inductive form + online elimination the cycle is collapsed the
  //    moment it appears.
  //===------------------------------------------------------------------===//
  TermTable Terms2(Constructors);
  ConstraintSolver Online(
      Terms2, makeConfig(GraphForm::Inductive, CycleElim::Online));
  VarId P = Online.freshVar("P");
  VarId Q = Online.freshVar("Q");
  VarId R = Online.freshVar("R");
  Online.addConstraint(Terms2.cons(A, {}), Terms2.var(P));
  Online.addConstraint(Terms2.var(P), Terms2.var(Q));
  Online.addConstraint(Terms2.var(Q), Terms2.var(R));
  Online.addConstraint(Terms2.var(R), Terms2.var(P)); // Closes the cycle.

  const SolverStats &Stats = Online.stats();
  std::printf("cycle demo: %llu of 2 collapsible variables eliminated in "
              "%llu collapse(s), %llu edge additions\n",
              (unsigned long long)Stats.VarsEliminated,
              (unsigned long long)Stats.CyclesCollapsed,
              (unsigned long long)Stats.Work);
  std::printf("(detection is *partial*: inductive form guarantees at least "
              "a two-cycle of every SCC is found;\n the rest is caught as "
              "later constraints arrive — solutions are identical either "
              "way)\n");
  std::printf("least solutions are equal: %s\n",
              Online.leastSolution(P) == Online.leastSolution(Q) &&
                      Online.leastSolution(Q) == Online.leastSolution(R)
                  ? "yes"
                  : "no");
  std::printf("least solution of R:");
  for (ExprId Source : Online.leastSolution(R))
    std::printf(" %s", Online.exprStr(Source).c_str());
  std::printf("\n");
  return 0;
}
