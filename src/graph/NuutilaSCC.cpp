//===- graph/NuutilaSCC.cpp - Nuutila's improved SCC algorithm ------------===//
//
// Part of the poce project.
//
//===----------------------------------------------------------------------===//

#include "graph/NuutilaSCC.h"

#include <cassert>

using namespace poce;

// Nuutila's first improvement over Tarjan: track the candidate root of each
// node directly (Root) instead of a low-link index, and mark finished
// components in an inComponent array. Only nodes that are *not* roots of
// their component are pushed onto the candidate stack, so for the common
// mostly-acyclic inputs the stack stays near-empty where Tarjan's holds
// every open node. When a root finishes, exactly the stacked candidates
// with a larger DFS index belong to its component.
SCCResult poce::computeSCCsNuutila(const Digraph &G) {
  const uint32_t N = G.numNodes();
  constexpr uint32_t Unvisited = ~0U;

  SCCResult Result;
  Result.ComponentOf.assign(N, Unvisited);

  std::vector<uint32_t> Index(N, Unvisited);
  std::vector<uint32_t> Root(N, 0);
  std::vector<uint8_t> InComponent(N, 0);
  std::vector<uint32_t> Candidates; // non-root members awaiting their root
  uint32_t NextIndex = 0;

  // Explicit DFS frames: (node, position in its successor list).
  struct Frame {
    uint32_t Node;
    uint32_t SuccPos;
  };
  std::vector<Frame> CallStack;

  for (uint32_t Start = 0; Start != N; ++Start) {
    if (Index[Start] != Unvisited)
      continue;
    Index[Start] = NextIndex++;
    Root[Start] = Start;
    CallStack.push_back({Start, 0});

    while (!CallStack.empty()) {
      Frame &Top = CallStack.back();
      const auto &Succs = G.successors(Top.Node);
      if (Top.SuccPos < Succs.size()) {
        uint32_t Succ = Succs[Top.SuccPos++];
        if (Index[Succ] == Unvisited) {
          Index[Succ] = NextIndex++;
          Root[Succ] = Succ;
          CallStack.push_back({Succ, 0});
        } else if (!InComponent[Succ] &&
                   Index[Root[Succ]] < Index[Root[Top.Node]]) {
          Root[Top.Node] = Root[Succ];
        }
        continue;
      }

      // All successors explored. Either this node is the root of a now
      // complete component, or it awaits its root on the candidate stack.
      uint32_t Node = Top.Node;
      CallStack.pop_back();
      if (Root[Node] == Node) {
        uint32_t ComponentId = Result.numComponents();
        Result.Components.emplace_back();
        std::vector<uint32_t> &Members = Result.Components.back();
        while (!Candidates.empty() &&
               Index[Candidates.back()] > Index[Node]) {
          uint32_t Member = Candidates.back();
          Candidates.pop_back();
          InComponent[Member] = 1;
          Result.ComponentOf[Member] = ComponentId;
          Members.push_back(Member);
        }
        InComponent[Node] = 1;
        Result.ComponentOf[Node] = ComponentId;
        Members.push_back(Node);
      } else {
        Candidates.push_back(Node);
      }
      if (!CallStack.empty()) {
        uint32_t Parent = CallStack.back().Node;
        if (!InComponent[Node] &&
            Index[Root[Node]] < Index[Root[Parent]])
          Root[Parent] = Root[Node];
      }
    }
  }
  assert(Candidates.empty() && "candidate left without a component");
  return Result;
}
