//===- net/Socket.h - Listener and connector helpers ------------*- C++ -*-===//
//
// Part of the poce project.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Thin Status-returning wrappers over the BSD socket calls the serving
/// layer uses: TCP and Unix-domain listeners (non-blocking, CLOEXEC,
/// SO_REUSEADDR), blocking client connectors for the test/bench/cat
/// drivers, and the non-blocking toggle the epoll loop applies to
/// accepted connections. IPv4 only — the serving story is localhost and
/// Unix sockets; anything fancier belongs behind a real proxy.
///
//===----------------------------------------------------------------------===//

#ifndef POCE_NET_SOCKET_H
#define POCE_NET_SOCKET_H

#include "support/Status.h"

#include <cstdint>
#include <string>

namespace poce {
namespace net {

/// Splits "host:port" (host may be empty = 0.0.0.0). Port 0 is allowed
/// for listeners (ephemeral; read back with localPort()).
Status parseHostPort(const std::string &Spec, std::string &Host,
                     uint16_t &Port);

/// Non-blocking TCP listener on \p Spec ("host:port"); returns the fd.
Expected<int> listenTcp(const std::string &Spec, int Backlog = 128);

/// Non-blocking Unix-domain listener on \p Path (an existing socket file
/// at the path is unlinked first — the caller owns the name).
Expected<int> listenUnix(const std::string &Path, int Backlog = 128);

/// The port a TCP listener actually bound (resolves port 0).
Expected<uint16_t> localPort(int Fd);

/// Blocking TCP client connection to \p Spec ("host:port").
Expected<int> connectTcp(const std::string &Spec);

/// Blocking Unix-domain client connection to \p Path.
Expected<int> connectUnix(const std::string &Path);

/// O_NONBLOCK on/off.
Status setNonBlocking(int Fd, bool On = true);

/// close() ignoring EINTR; no-op for negative fds.
void closeFd(int Fd);

} // namespace net
} // namespace poce

#endif // POCE_NET_SOCKET_H
