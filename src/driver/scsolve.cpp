//===- driver/scsolve.cpp - Standalone constraint solver tool --------------===//
//
// Part of the poce project.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// scsolve: solves a textual inclusion-constraint system (.scs file, see
/// setcon/ConstraintFile.h) under any configuration and prints least
/// solutions, statistics, or the solved graph.
///
/// Examples:
///   scsolve system.scs                      # least solutions, IF-Online
///   scsolve --config=sf-plain --stats system.scs
///   scsolve --dump system.scs               # solved constraint graph
///   scsolve --echo system.scs               # normalized re-print
///
//===----------------------------------------------------------------------===//

#include "setcon/ConstraintFile.h"
#include "setcon/Oracle.h"
#include "support/CommandLine.h"
#include "support/Format.h"

#include <cstdio>
#include <fstream>
#include <sstream>

using namespace poce;

static bool parseConfig(const std::string &Name, SolverOptions &Options) {
  if (Name == "sf-plain")
    Options = makeConfig(GraphForm::Standard, CycleElim::None);
  else if (Name == "if-plain")
    Options = makeConfig(GraphForm::Inductive, CycleElim::None);
  else if (Name == "sf-online")
    Options = makeConfig(GraphForm::Standard, CycleElim::Online);
  else if (Name == "if-online")
    Options = makeConfig(GraphForm::Inductive, CycleElim::Online);
  else if (Name == "sf-oracle")
    Options = makeConfig(GraphForm::Standard, CycleElim::Oracle);
  else if (Name == "if-oracle")
    Options = makeConfig(GraphForm::Inductive, CycleElim::Oracle);
  else if (Name == "if-periodic")
    Options = makeConfig(GraphForm::Inductive, CycleElim::Periodic);
  else
    return false;
  return true;
}

int main(int Argc, char **Argv) {
  CommandLine Cmd("scsolve",
                  "standalone inclusion-constraint solver (PLDI 1998 "
                  "reproduction)");
  std::string Config = "if-online";
  std::string Closure = "worklist";
  std::string Preprocess = "none";
  bool ShowStats = false, Dump = false, Echo = false;
  int64_t Seed = 0x706f6365;
  int64_t Threads = 1;
  Cmd.addString("config", &Config,
                "{sf,if}-{plain,online,oracle} or if-periodic");
  Cmd.addString("closure", &Closure,
                "closure schedule: worklist (eager) or wave (topo-ordered "
                "delta sweeps); solutions are identical");
  Cmd.addString("preprocess", &Preprocess,
                "pre-solve pass: none or offline (HVN + Nuutila SCC "
                "variable substitution); solutions are identical");
  Cmd.addInt("seed", &Seed, "variable-order seed");
  Cmd.addInt("threads", &Threads,
             "execution lanes for the least-solution pass (0 = hardware); "
             "solutions are identical for any value");
  Cmd.addFlag("stats", &ShowStats, "print solver statistics");
  Cmd.addFlag("dump", &Dump, "dump the solved constraint graph");
  Cmd.addFlag("echo", &Echo, "re-print the parsed system and exit");
  if (!Cmd.parse(Argc, Argv))
    return 1;

  if (Cmd.positionals().size() != 1) {
    std::fprintf(stderr, "scsolve: expected exactly one input file; "
                         "try --help\n");
    return 1;
  }
  std::ifstream In(Cmd.positionals()[0]);
  if (!In) {
    std::fprintf(stderr, "scsolve: cannot open '%s'\n",
                 Cmd.positionals()[0].c_str());
    return 1;
  }
  std::stringstream Buffer;
  Buffer << In.rdbuf();

  ConstraintSystemFile System;
  Status Parsed = System.parse(Buffer.str());
  if (!Parsed) {
    std::fprintf(stderr, "scsolve: %s: %s\n", Cmd.positionals()[0].c_str(),
                 Parsed.toString().c_str());
    return 1;
  }
  if (Echo) {
    std::fputs(System.str().c_str(), stdout);
    return 0;
  }

  SolverOptions Options;
  if (!parseConfig(Config, Options)) {
    std::fprintf(stderr, "scsolve: unknown configuration '%s'\n",
                 Config.c_str());
    return 1;
  }
  Options.Seed = static_cast<uint64_t>(Seed);
  Options.Threads = static_cast<unsigned>(Threads);
  if (Closure == "wave")
    Options.Closure = ClosureMode::Wave;
  else if (Closure != "worklist") {
    std::fprintf(stderr, "scsolve: unknown closure schedule '%s'\n",
                 Closure.c_str());
    return 1;
  }
  if (Preprocess == "offline")
    Options.Preprocess = PreprocessMode::Offline;
  else if (Preprocess != "none") {
    std::fprintf(stderr, "scsolve: unknown preprocess mode '%s'\n",
                 Preprocess.c_str());
    return 1;
  }

  ConstructorTable Constructors;
  Oracle WitnessOracle;
  const Oracle *OraclePtr = nullptr;
  if (Options.Elim == CycleElim::Oracle) {
    WitnessOracle = buildOracle(System.generator(), Constructors, Options);
    OraclePtr = &WitnessOracle;
  }

  TermTable Terms(Constructors);
  ConstraintSolver Solver(Terms, Options, OraclePtr);
  System.emit(Solver);
  Solver.finalize();

  if (Dump) {
    std::fputs(Solver.dumpGraph().c_str(), stdout);
  } else if (!ShowStats) {
    // Default: least solutions of the declared variables.
    for (uint32_t I = 0; I != System.varNames().size(); ++I) {
      VarId Var = Solver.varOfCreation(I);
      std::printf("%s = {", System.varNames()[I].c_str());
      bool FirstTerm = true;
      for (ExprId Term : Solver.leastSolution(Var)) {
        std::printf("%s %s", FirstTerm ? "" : ",",
                    Solver.exprStr(Term).c_str());
        FirstTerm = false;
      }
      std::printf(" }\n");
    }
  }

  if (ShowStats) {
    const SolverStats &Stats = Solver.stats();
    std::printf("configuration:    %s\n", Options.configName().c_str());
    std::printf("variables:        %s (%s live)\n",
                formatGrouped(Stats.VarsCreated).c_str(),
                formatGrouped(Solver.numLiveVars()).c_str());
    std::printf("constraints:      %s\n",
                formatGrouped(System.numConstraints()).c_str());
    std::printf("final edges:      %s\n",
                formatGrouped(Solver.countFinalEdges()).c_str());
    std::printf("work:             %s\n",
                formatGrouped(Stats.Work).c_str());
    std::printf("redundant adds:   %s\n",
                formatGrouped(Stats.RedundantAdds).c_str());
    std::printf("vars eliminated:  %s\n",
                formatGrouped(Stats.VarsEliminated).c_str());
    std::printf("cycle searches:   %s\n",
                formatGrouped(Stats.CycleSearches).c_str());
    std::printf("offline vars:     %s\n",
                formatGrouped(Stats.OfflineCollapsedVars).c_str());
    std::printf("offline sccs:     %s\n",
                formatGrouped(Stats.OfflineSCCs).c_str());
    std::printf("hvn labels:       %s\n",
                formatGrouped(Stats.HVNLabels).c_str());
    std::printf("mismatches:       %s\n",
                formatGrouped(Stats.Mismatches).c_str());
    std::printf("delta props:      %s\n",
                formatGrouped(Stats.DeltaPropagations).c_str());
    std::printf("wave passes:      %s\n",
                formatGrouped(Stats.WavePasses).c_str());
  }
  return 0;
}
