file(REMOVE_RECURSE
  "CMakeFiles/model_theorem51.dir/model_theorem51.cpp.o"
  "CMakeFiles/model_theorem51.dir/model_theorem51.cpp.o.d"
  "model_theorem51"
  "model_theorem51.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/model_theorem51.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
