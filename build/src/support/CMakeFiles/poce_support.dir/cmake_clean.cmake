file(REMOVE_RECURSE
  "CMakeFiles/poce_support.dir/CommandLine.cpp.o"
  "CMakeFiles/poce_support.dir/CommandLine.cpp.o.d"
  "CMakeFiles/poce_support.dir/Debug.cpp.o"
  "CMakeFiles/poce_support.dir/Debug.cpp.o.d"
  "CMakeFiles/poce_support.dir/ErrorHandling.cpp.o"
  "CMakeFiles/poce_support.dir/ErrorHandling.cpp.o.d"
  "CMakeFiles/poce_support.dir/Format.cpp.o"
  "CMakeFiles/poce_support.dir/Format.cpp.o.d"
  "CMakeFiles/poce_support.dir/Statistic.cpp.o"
  "CMakeFiles/poce_support.dir/Statistic.cpp.o.d"
  "CMakeFiles/poce_support.dir/StringInterner.cpp.o"
  "CMakeFiles/poce_support.dir/StringInterner.cpp.o.d"
  "CMakeFiles/poce_support.dir/Timer.cpp.o"
  "CMakeFiles/poce_support.dir/Timer.cpp.o.d"
  "libpoce_support.a"
  "libpoce_support.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/poce_support.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
