//===- cfa/ClosureAnalysis.cpp - 0CFA via inclusion constraints ------------===//
//
// Part of the poce project.
//
//===----------------------------------------------------------------------===//

#include "cfa/ClosureAnalysis.h"

#include "support/DenseU64Map.h"
#include "support/ErrorHandling.h"
#include "support/PRNG.h"
#include "support/Timer.h"

#include <algorithm>

using namespace poce;
using namespace poce::cfa;

namespace {

/// Walks the term tree, emitting constraints.
class Generator {
public:
  explicit Generator(ConstraintSolver &Solver)
      : Solver(Solver), Terms(Solver.terms()) {
    FunCons = Terms.mutableConstructors().getOrCreate(
        "fun", {Variance::Covariant, Variance::Contravariant,
                Variance::Covariant});
  }

  void run(const LambdaProgram &Program) { walk(Program.root()); }

  /// Lambda label of a source fun term, or ~0u.
  uint32_t labelOfTerm(ExprId Term) const {
    const uint32_t *Label = TermToLabel.lookup(Term);
    return Label ? *Label : ~0U;
  }

  /// Application site -> the set variable holding the callee's closures.
  const std::vector<std::pair<uint32_t, VarId>> &callSites() const {
    return CallSites;
  }

  const std::vector<std::string> &unbound() const { return Unbound; }

private:
  /// Returns the set variable for the values of \p T.
  VarId walk(const Term *T) {
    switch (T->K) {
    case Term::Kind::Int: {
      // Integers carry no closures.
      return Solver.freshVar("int");
    }
    case Term::Kind::Var: {
      VarId Result = Solver.freshVar(T->Name + "@use");
      for (auto It = Scopes.rbegin(); It != Scopes.rend(); ++It) {
        if (It->first == T->Name) {
          Solver.addConstraint(Terms.var(It->second), Terms.var(Result));
          return Result;
        }
      }
      Unbound.push_back(T->Name);
      return Result; // Empty set: unbound names denote nothing.
    }
    case Term::Kind::Lam: {
      VarId Param = Solver.freshVar(T->Name);
      Scopes.push_back({T->Name, Param});
      VarId Body = walk(T->A);
      Scopes.pop_back();
      ConsId LabelCons = Terms.mutableConstructors().getOrCreate(
          "L" + std::to_string(T->LamLabel), {});
      ExprId Lam = Terms.cons(FunCons, {Terms.cons(LabelCons, {}),
                                        Terms.var(Param), Terms.var(Body)});
      TermToLabel.insert(Lam, T->LamLabel);
      VarId Result = Solver.freshVar("lam");
      Solver.addConstraint(Lam, Terms.var(Result));
      return Result;
    }
    case Term::Kind::App: {
      VarId Callee = walk(T->A);
      VarId Arg = walk(T->B);
      VarId Result = Solver.freshVar("app");
      // X_f <= fun(1, ~X_a, Result).
      ExprId Sink = Terms.cons(
          FunCons, {Terms.one(), Terms.var(Arg), Terms.var(Result)});
      Solver.addConstraint(Terms.var(Callee), Sink);
      CallSites.push_back({T->AppSite, Callee});
      return Result;
    }
    case Term::Kind::Let: {
      VarId Binder = Solver.freshVar(T->Name);
      if (T->Recursive) {
        Scopes.push_back({T->Name, Binder});
        VarId Bound = walk(T->A);
        Solver.addConstraint(Terms.var(Bound), Terms.var(Binder));
        VarId Body = walk(T->B);
        Scopes.pop_back();
        return Body;
      }
      VarId Bound = walk(T->A);
      Solver.addConstraint(Terms.var(Bound), Terms.var(Binder));
      Scopes.push_back({T->Name, Binder});
      VarId Body = walk(T->B);
      Scopes.pop_back();
      return Body;
    }
    case Term::Kind::If0: {
      walk(T->A);
      VarId Then = walk(T->B);
      VarId Else = walk(T->C);
      VarId Result = Solver.freshVar("if0");
      Solver.addConstraint(Terms.var(Then), Terms.var(Result));
      Solver.addConstraint(Terms.var(Else), Terms.var(Result));
      return Result;
    }
    case Term::Kind::Binop: {
      walk(T->A);
      walk(T->B);
      return Solver.freshVar("arith"); // Numbers: no closures.
    }
    }
    poce_unreachable("invalid term kind");
  }

  ConstraintSolver &Solver;
  TermTable &Terms;
  ConsId FunCons;
  std::vector<std::pair<std::string, VarId>> Scopes;
  DenseU64Map<uint32_t> TermToLabel;
  std::vector<std::pair<uint32_t, VarId>> CallSites;
  std::vector<std::string> Unbound;
};

} // namespace

CFAResult poce::cfa::runClosureAnalysis(const LambdaProgram &Program,
                                        ConstructorTable &Constructors,
                                        const SolverOptions &Options,
                                        const Oracle *WitnessOracle) {
  CFAResult Result;
  Timer T;
  TermTable Terms(Constructors);
  ConstraintSolver Solver(Terms, Options, WitnessOracle);
  Generator Gen(Solver);
  Gen.run(Program);
  Solver.finalize();

  for (const auto &[AppSite, Callee] : Gen.callSites()) {
    std::vector<uint32_t> Labels;
    for (ExprId Term : Solver.leastSolution(Callee)) {
      uint32_t Label = Gen.labelOfTerm(Term);
      if (Label != ~0U)
        Labels.push_back(Label);
    }
    std::sort(Labels.begin(), Labels.end());
    Labels.erase(std::unique(Labels.begin(), Labels.end()), Labels.end());
    Result.CallTargets.emplace(AppSite, std::move(Labels));
  }
  Result.UnboundVariables = Gen.unbound();
  Result.Stats = Solver.stats();
  Result.FinalEdges = Solver.countFinalEdges();
  Result.AnalysisSeconds = T.seconds();
  return Result;
}

GeneratorFn poce::cfa::makeGenerator(const LambdaProgram &Program) {
  return [&Program](ConstraintSolver &Solver) {
    Generator Gen(Solver);
    Gen.run(Program);
  };
}

//===----------------------------------------------------------------------===//
// Synthetic workload
//===----------------------------------------------------------------------===//

std::string poce::cfa::generateLambdaProgram(uint32_t NumGroups,
                                             uint64_t Seed) {
  PRNG Rng(Seed ^ 0xcfacfacfULL);
  std::string Out = "-- synthetic closure-analysis workload\n"
                    "let id = \\x. x in\n"
                    "let compose = \\f. \\g. \\x. f (g x) in\n"
                    "let twice = \\f. \\x. f (f x) in\n";

  std::vector<std::string> Known = {"id", "compose", "twice"};
  auto Pick = [&]() -> const std::string & {
    return Known[Rng.nextBelow(Known.size())];
  };

  for (uint32_t Group = 0; Group != NumGroups; ++Group) {
    std::string G = std::to_string(Group);
    // A self-recursive dispatcher that threads closures through itself —
    // every such binding is a cycle in the constraint graph.
    Out += "let rec loop" + G + " = \\f. if0 f 0 then f else loop" + G +
           " (" + Pick() + " f) in\n";
    Known.push_back("loop" + G);
    // A combinator mixing earlier groups' closures.
    Out += "let mix" + G + " = \\h. compose (" + Pick() + ") (twice h) in\n";
    Known.push_back("mix" + G);
    // Drive both with a mixture of closures and numbers.
    Out += "let use" + G + " = (mix" + G + " (loop" + G + " " + Pick() +
           ")) " + std::to_string(Rng.nextBelow(100)) + " in\n";
    Known.push_back("use" + G);
  }

  Out += "id ";
  Out += Known[Rng.nextBelow(Known.size())];
  Out += "\n";
  return Out;
}
