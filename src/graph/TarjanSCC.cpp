//===- graph/TarjanSCC.cpp - Strongly connected components ----------------===//
//
// Part of the poce project.
//
//===----------------------------------------------------------------------===//

#include "graph/TarjanSCC.h"

#include <algorithm>
#include <cassert>

using namespace poce;

uint32_t SCCResult::numNodesInNontrivialSCCs() const {
  uint32_t Count = 0;
  for (const auto &Component : Components)
    if (Component.size() >= 2)
      Count += static_cast<uint32_t>(Component.size());
  return Count;
}

uint32_t SCCResult::maxComponentSize() const {
  uint32_t Max = 0;
  for (const auto &Component : Components)
    Max = std::max(Max, static_cast<uint32_t>(Component.size()));
  return Max;
}

uint32_t SCCResult::numNontrivialSCCs() const {
  uint32_t Count = 0;
  for (const auto &Component : Components)
    if (Component.size() >= 2)
      ++Count;
  return Count;
}

SCCResult poce::computeSCCs(const Digraph &G) {
  const uint32_t N = G.numNodes();
  constexpr uint32_t Unvisited = ~0U;

  SCCResult Result;
  Result.ComponentOf.assign(N, Unvisited);

  std::vector<uint32_t> Index(N, Unvisited);
  std::vector<uint32_t> LowLink(N, 0);
  std::vector<bool> OnStack(N, false);
  std::vector<uint32_t> Stack;
  uint32_t NextIndex = 0;

  // Explicit DFS frames: (node, position in its successor list).
  struct Frame {
    uint32_t Node;
    uint32_t SuccPos;
  };
  std::vector<Frame> CallStack;

  for (uint32_t Root = 0; Root != N; ++Root) {
    if (Index[Root] != Unvisited)
      continue;
    CallStack.push_back({Root, 0});
    Index[Root] = LowLink[Root] = NextIndex++;
    Stack.push_back(Root);
    OnStack[Root] = true;

    while (!CallStack.empty()) {
      Frame &Top = CallStack.back();
      const auto &Succs = G.successors(Top.Node);
      if (Top.SuccPos < Succs.size()) {
        uint32_t Succ = Succs[Top.SuccPos++];
        if (Index[Succ] == Unvisited) {
          Index[Succ] = LowLink[Succ] = NextIndex++;
          Stack.push_back(Succ);
          OnStack[Succ] = true;
          CallStack.push_back({Succ, 0});
        } else if (OnStack[Succ]) {
          LowLink[Top.Node] = std::min(LowLink[Top.Node], Index[Succ]);
        }
        continue;
      }

      // All successors explored: maybe pop a component, then return.
      uint32_t Node = Top.Node;
      CallStack.pop_back();
      if (!CallStack.empty()) {
        uint32_t Parent = CallStack.back().Node;
        LowLink[Parent] = std::min(LowLink[Parent], LowLink[Node]);
      }
      if (LowLink[Node] == Index[Node]) {
        uint32_t ComponentId = Result.numComponents();
        Result.Components.emplace_back();
        while (true) {
          uint32_t Member = Stack.back();
          Stack.pop_back();
          OnStack[Member] = false;
          Result.ComponentOf[Member] = ComponentId;
          Result.Components.back().push_back(Member);
          if (Member == Node)
            break;
        }
      }
    }
  }
  return Result;
}

Digraph poce::condense(const Digraph &G, const SCCResult &SCCs) {
  Digraph Condensed(SCCs.numComponents());
  for (uint32_t Node = 0; Node != G.numNodes(); ++Node) {
    uint32_t From = SCCs.ComponentOf[Node];
    for (uint32_t Succ : G.successors(Node)) {
      uint32_t To = SCCs.ComponentOf[Succ];
      if (From != To)
        Condensed.addEdge(From, To);
    }
  }
  return Condensed;
}
