//===- tests/oracle_test.cpp - Oracle construction unit tests --------------===//
//
// Part of the poce project.
//
//===----------------------------------------------------------------------===//

#include "graph/TarjanSCC.h"
#include "setcon/ConstraintSolver.h"
#include "setcon/Oracle.h"
#include "workload/RandomConstraints.h"

#include <gtest/gtest.h>

using namespace poce;

namespace {

/// A deterministic generator building a fixed cyclic system:
///   s <= A,  A <= B <= C <= A (3-cycle),  C <= D.
void fixedCyclicSystem(ConstraintSolver &Solver) {
  TermTable &Terms = Solver.terms();
  VarId A = Solver.freshVar("A");
  VarId B = Solver.freshVar("B");
  VarId C = Solver.freshVar("C");
  VarId D = Solver.freshVar("D");
  ExprId S = Terms.cons(Terms.mutableConstructors().getOrCreate("s", {}), {});
  Solver.addConstraint(S, Terms.var(A));
  Solver.addConstraint(Terms.var(A), Terms.var(B));
  Solver.addConstraint(Terms.var(B), Terms.var(C));
  Solver.addConstraint(Terms.var(C), Terms.var(A));
  Solver.addConstraint(Terms.var(C), Terms.var(D));
}

} // namespace

TEST(OracleTest, FixedSystemClassesAndWitnesses) {
  ConstructorTable Constructors;
  SolverOptions Options = makeConfig(GraphForm::Inductive, CycleElim::Online);
  Oracle O = buildOracle(fixedCyclicSystem, Constructors, Options);
  // Creation indices: A=0, B=1, C=2, D=3; {A,B,C} is one class.
  EXPECT_EQ(O.witness(0), 0u);
  EXPECT_EQ(O.witness(1), 0u);
  EXPECT_EQ(O.witness(2), 0u);
  EXPECT_EQ(O.witness(3), 3u);
  EXPECT_EQ(O.numNontrivialClasses(), 1u);
  EXPECT_EQ(O.varsInNontrivialClasses(), 3u);
  EXPECT_EQ(O.maxClassSize(), 3u);
  EXPECT_EQ(O.eliminableVars(), 2u);
}

TEST(OracleTest, WitnessIsIdentityBeyondKnownCreations) {
  ConstructorTable Constructors;
  SolverOptions Options = makeConfig(GraphForm::Inductive, CycleElim::Online);
  Oracle O = buildOracle(fixedCyclicSystem, Constructors, Options);
  EXPECT_EQ(O.witness(1000), 1000u);
}

TEST(OracleTest, OracleRunCollapsesNothingAndSubstitutes) {
  ConstructorTable Constructors;
  SolverOptions Base = makeConfig(GraphForm::Inductive, CycleElim::Online);
  Oracle O = buildOracle(fixedCyclicSystem, Constructors, Base);

  SolverOptions OracleOptions =
      makeConfig(GraphForm::Inductive, CycleElim::Oracle);
  TermTable Terms(Constructors);
  ConstraintSolver Solver(Terms, OracleOptions, &O);
  fixedCyclicSystem(Solver);
  Solver.finalize();
  EXPECT_EQ(Solver.stats().VarsEliminated, 0u);
  EXPECT_EQ(Solver.stats().OracleSubstitutions, 2u); // B and C.
  EXPECT_EQ(Solver.stats().VarsCreated, 2u);         // A (witness) and D.
  EXPECT_TRUE(Solver.varVarDigraph().isAcyclic());
}

class OracleRandomTest : public testing::TestWithParam<uint64_t> {};

TEST_P(OracleRandomTest, OracleGraphsAreAcyclic) {
  PRNG Rng(GetParam());
  RandomConstraintShape Shape =
      randomConstraintShape(60, 40, 2.0 / 60.0, Rng);
  ConstructorTable Constructors;
  SolverOptions Base =
      makeConfig(GraphForm::Inductive, CycleElim::Online, GetParam());
  Oracle O =
      buildOracle(workload::makeRandomGenerator(Shape), Constructors, Base);

  for (GraphForm Form : {GraphForm::Standard, GraphForm::Inductive}) {
    SolverOptions Options = makeConfig(Form, CycleElim::Oracle, GetParam());
    TermTable Terms(Constructors);
    ConstraintSolver Solver(Terms, Options, &O);
    workload::emitRandomConstraints(Shape, Solver);
    Solver.finalize();
    EXPECT_EQ(Solver.stats().VarsEliminated, 0u);
    EXPECT_TRUE(Solver.varVarDigraph().isAcyclic())
        << "form " << (Form == GraphForm::Standard ? "SF" : "IF");
  }
}

TEST_P(OracleRandomTest, OnlineEliminationIsBoundedByOracleGroundTruth) {
  PRNG Rng(GetParam() * 91);
  RandomConstraintShape Shape =
      randomConstraintShape(80, 50, 2.0 / 80.0, Rng);
  ConstructorTable Constructors;
  SolverOptions Base =
      makeConfig(GraphForm::Inductive, CycleElim::Online, GetParam());
  Oracle O =
      buildOracle(workload::makeRandomGenerator(Shape), Constructors, Base);

  for (GraphForm Form : {GraphForm::Standard, GraphForm::Inductive}) {
    SolverOptions Options = makeConfig(Form, CycleElim::Online, GetParam());
    TermTable Terms(Constructors);
    ConstraintSolver Solver(Terms, Options);
    workload::emitRandomConstraints(Shape, Solver);
    Solver.finalize();
    // A partial eliminator can never remove more variables than a perfect
    // one.
    EXPECT_LE(Solver.stats().VarsEliminated, O.eliminableVars());
    // Collapsed groups must be subsets of true equality classes.
    for (uint32_t Var = 0; Var != Solver.numVars(); ++Var) {
      VarId Rep = Solver.rep(Var);
      if (Rep == Var)
        continue;
      EXPECT_EQ(O.witness(Solver.creationIndexOf(Var)),
                O.witness(Solver.creationIndexOf(Rep)))
          << "collapse merged variables outside a true SCC";
    }
  }
}

TEST_P(OracleRandomTest, OracleClassesMatchTarjanOnRecordedRelation) {
  PRNG Rng(GetParam() * 3 + 1);
  RandomConstraintShape Shape =
      randomConstraintShape(50, 30, 2.5 / 50.0, Rng);
  ConstructorTable Constructors;
  SolverOptions Base =
      makeConfig(GraphForm::Inductive, CycleElim::Online, GetParam());
  Oracle O =
      buildOracle(workload::makeRandomGenerator(Shape), Constructors, Base);

  // Independent ground truth: SCCs of the *initial* variable-variable
  // relation must be refinements of the oracle's classes (closure only
  // adds constraints).
  Digraph Initial(Shape.NumVars);
  for (auto [From, To] : Shape.VarVar)
    Initial.addEdge(From, To);
  SCCResult SCCs = computeSCCs(Initial);
  for (const auto &Component : SCCs.Components) {
    for (size_t I = 1; I < Component.size(); ++I)
      EXPECT_EQ(O.witness(Component[I]), O.witness(Component[0]));
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, OracleRandomTest,
                         testing::Range<uint64_t>(1, 13));
