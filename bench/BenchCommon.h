//===- bench/BenchCommon.h - Shared benchmark harness code ------*- C++ -*-===//
//
// Part of the poce project.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Shared plumbing for the table/figure reproduction benches: environment
/// knobs, suite preparation, and measured configuration runs.
///
/// Environment variables:
///   POCE_BENCH_SCALE    scale factor on benchmark sizes   (default 1.0)
///   POCE_BENCH_MAXAST   skip benchmarks above this size   (default 0 = all)
///   POCE_BENCH_REPEATS  timing repeats, best-of-N         (default 1;
///                       the paper reports best of 3)
///   POCE_BENCH_MAXWORK  abort cap on plain (no-elimination) runs
///                       (default 150000000; 0 = unlimited). Runs that hit
///                       the cap are reported with a ">" prefix, like the
///                       paper's oracle runs that "failed" on three
///                       programs.
///   POCE_BENCH_THREADS  execution lanes for suite preparation and the
///                       thread-scaling entries (default 1; 0 = one per
///                       hardware thread). Measured solves themselves stay
///                       sequential so per-config timings remain
///                       comparable.
///
//===----------------------------------------------------------------------===//

#ifndef POCE_BENCH_BENCHCOMMON_H
#define POCE_BENCH_BENCHCOMMON_H

#include "andersen/Andersen.h"
#include "setcon/Oracle.h"
#include "support/Format.h"
#include "support/ThreadPool.h"
#include "support/Timer.h"
#include "workload/Suite.h"

#include <cstdio>
#include <cstdlib>
#include <ctime>
#include <fstream>
#include <memory>
#include <sstream>
#include <string>
#include <vector>

namespace poce {
namespace bench {

struct BenchEnv {
  double Scale = 1.0;
  uint32_t MaxAst = 0;
  unsigned Repeats = 1;
  uint64_t PlainMaxWork = 150000000;
  unsigned Threads = 1;

  static BenchEnv fromEnv() {
    BenchEnv Env;
    if (const char *Scale = std::getenv("POCE_BENCH_SCALE"))
      Env.Scale = std::atof(Scale);
    if (const char *MaxAst = std::getenv("POCE_BENCH_MAXAST"))
      Env.MaxAst = static_cast<uint32_t>(std::atoll(MaxAst));
    if (const char *Repeats = std::getenv("POCE_BENCH_REPEATS"))
      Env.Repeats = static_cast<unsigned>(std::atoi(Repeats));
    if (const char *MaxWork = std::getenv("POCE_BENCH_MAXWORK"))
      Env.PlainMaxWork = static_cast<uint64_t>(std::atoll(MaxWork));
    if (const char *Threads = std::getenv("POCE_BENCH_THREADS"))
      Env.Threads = static_cast<unsigned>(std::atoi(Threads));
    if (Env.Repeats < 1)
      Env.Repeats = 1;
    Env.Threads = ThreadPool::resolveThreads(Env.Threads);
    return Env;
  }

  void print() const {
    std::string MaxAstNote =
        MaxAst ? " max-ast=" + std::to_string(MaxAst) : std::string();
    std::printf("# scale=%.2f repeats=%u plain-work-cap=%llu threads=%u%s\n",
                Scale, Repeats, (unsigned long long)PlainMaxWork, Threads,
                MaxAstNote.c_str());
  }
};

/// One prepared suite entry, with its oracle (built lazily).
struct SuiteEntry {
  std::unique_ptr<workload::PreparedProgram> Program;
  ConstructorTable Constructors;
  Oracle WitnessOracle;
  bool OracleBuilt = false;

  const Oracle &oracle() {
    if (!OracleBuilt) {
      SolverOptions Base =
          makeConfig(GraphForm::Inductive, CycleElim::Online);
      WitnessOracle = buildOracle(
          andersen::makeGenerator(Program->Unit), Constructors, Base);
      OracleBuilt = true;
    }
    return WitnessOracle;
  }
};

inline std::vector<std::unique_ptr<SuiteEntry>>
prepareSuite(const BenchEnv &Env) {
  std::vector<workload::ProgramSpec> Specs =
      workload::paperSuite(Env.Scale, Env.MaxAst);
  // Generation + parsing of the suite inputs are independent pure
  // functions of each spec; prepare them concurrently when the env asks
  // for threads. Entry order (and everything downstream) is unaffected.
  std::vector<std::unique_ptr<SuiteEntry>> Prepared(Specs.size());
  ThreadPool Pool(Env.Threads);
  Pool.parallelFor(
      Specs.size(),
      [&](size_t I, unsigned) {
        Prepared[I] = std::make_unique<SuiteEntry>();
        Prepared[I]->Program = workload::prepareProgram(Specs[I]);
      },
      /*Grain=*/1);

  std::vector<std::unique_ptr<SuiteEntry>> Entries;
  for (std::unique_ptr<SuiteEntry> &Entry : Prepared) {
    if (!Entry->Program->Ok) {
      std::fprintf(stderr, "warning: benchmark '%s' failed to parse; "
                           "skipping\n",
                   Entry->Program->Spec.Name.c_str());
      continue;
    }
    Entries.push_back(std::move(Entry));
  }
  return Entries;
}

/// One measured run: analysis result of the last repeat plus the best
/// wall-clock seconds over all repeats.
struct MeasuredRun {
  andersen::AnalysisResult Result;
  double BestSeconds = 0;
  bool Capped = false; ///< The work cap stopped the run early.
};

inline MeasuredRun runConfig(SuiteEntry &Entry, GraphForm Form,
                             CycleElim Elim, const BenchEnv &Env) {
  SolverOptions Options = makeConfig(Form, Elim);
  if (Elim == CycleElim::None)
    Options.MaxWork = Env.PlainMaxWork;
  const Oracle *WitnessOracle =
      Elim == CycleElim::Oracle ? &Entry.oracle() : nullptr;

  MeasuredRun Run;
  for (unsigned Repeat = 0; Repeat != Env.Repeats; ++Repeat) {
    Run.Result = andersen::runAnalysis(Entry.Program->Unit,
                                       Entry.Constructors, Options,
                                       WitnessOracle,
                                       /*ExtractPointsTo=*/false);
    double Seconds = Run.Result.AnalysisSeconds;
    if (Repeat == 0 || Seconds < Run.BestSeconds)
      Run.BestSeconds = Seconds;
    if (Run.Result.Stats.Aborted)
      break; // No point repeating a capped run.
  }
  Run.Capped = Run.Result.Stats.Aborted;
  return Run;
}

/// Formats a capped value with a ">" marker.
inline std::string capped(uint64_t Value, bool Capped) {
  return (Capped ? ">" : "") + formatGrouped(Value);
}
inline std::string cappedTime(double Seconds, bool Capped) {
  return (Capped ? ">" : "") + formatDouble(Seconds, 3);
}

/// The figure benches all report the same three bitvector hot-path
/// counters — the SF run's difference-propagation pair and the IF run's
/// least-solution union words (SolverStats::hotPathCounters order). These
/// two helpers build the header and data cells so the column list lives
/// in one place.
inline void appendHotPathHeaders(std::vector<std::string> &Header,
                                 const std::string &SFTag,
                                 const std::string &IFTag) {
  auto Counters = SolverStats().hotPathCounters();
  Header.push_back(SFTag + "-" + Counters[0].Label);
  Header.push_back(SFTag + "-" + Counters[1].Label);
  Header.push_back(IFTag + "-" + Counters[2].Label);
}

inline void appendHotPathCells(std::vector<std::string> &Row,
                               const MeasuredRun &SF, const MeasuredRun &IF) {
  auto SFCounters = SF.Result.Stats.hotPathCounters();
  auto IFCounters = IF.Result.Stats.hotPathCounters();
  Row.push_back(capped(SFCounters[0].Value, SF.Capped));
  Row.push_back(capped(SFCounters[1].Value, SF.Capped));
  Row.push_back(capped(IFCounters[2].Value, IF.Capped));
}

/// Returns the prior runs of the trajectory JSON at \p Path as the inner
/// text of its "runs" array (comma-joined objects, no brackets), or ""
/// when the file is missing/empty. A pre-runs-format file (top-level
/// "entries") is kept verbatim as the first run. Shared by every bench
/// that appends timestamped runs to a trajectory file.
inline std::string readPriorRuns(const std::string &Path) {
  std::ifstream In(Path);
  if (!In)
    return "";
  std::stringstream Buffer;
  Buffer << In.rdbuf();
  std::string Old = Buffer.str();

  auto trim = [](std::string S) {
    size_t B = S.find_first_not_of(" \t\r\n");
    size_t E = S.find_last_not_of(" \t\r\n");
    return B == std::string::npos ? std::string() : S.substr(B, E - B + 1);
  };

  size_t RunsPos = Old.find("\"runs\"");
  if (RunsPos != std::string::npos) {
    size_t Open = Old.find('[', RunsPos);
    size_t Close = Old.rfind(']');
    if (Open == std::string::npos || Close == std::string::npos ||
        Close <= Open)
      return "";
    return trim(Old.substr(Open + 1, Close - Open - 1));
  }
  if (Old.find("\"entries\"") != std::string::npos)
    return trim(Old); // Flat single-run format: migrate as the first run.
  return "";
}

/// UTC timestamp for trajectory run records.
inline std::string utcTimestamp() {
  char Out[32];
  std::time_t Now = std::time(nullptr);
  std::strftime(Out, sizeof(Out), "%Y-%m-%dT%H:%M:%SZ", std::gmtime(&Now));
  return Out;
}

} // namespace bench
} // namespace poce

#endif // POCE_BENCH_BENCHCOMMON_H
