//===- net/Socket.cpp - Listener and connector helpers --------------------===//
//
// Part of the poce project.
//
//===----------------------------------------------------------------------===//

#include "net/Socket.h"

#include <arpa/inet.h>
#include <cerrno>
#include <cstring>
#include <fcntl.h>
#include <netinet/in.h>
#include <sys/socket.h>
#include <sys/un.h>
#include <unistd.h>

using namespace poce;
using namespace poce::net;

namespace {

Status errnoStatus(const std::string &What) {
  return Status::error(ErrorCode::IoError,
                       What + ": " + std::strerror(errno));
}

Expected<int> newSocket(int Domain) {
  int Fd = ::socket(Domain, SOCK_STREAM | SOCK_CLOEXEC, 0);
  if (Fd < 0)
    return errnoStatus("socket");
  return Fd;
}

/// Builds a sockaddr_in for \p Spec; empty host binds INADDR_ANY.
Status makeInetAddr(const std::string &Spec, sockaddr_in &Addr) {
  std::string Host;
  uint16_t Port = 0;
  Status Parsed = parseHostPort(Spec, Host, Port);
  if (!Parsed)
    return Parsed;
  std::memset(&Addr, 0, sizeof(Addr));
  Addr.sin_family = AF_INET;
  Addr.sin_port = htons(Port);
  if (Host.empty() || Host == "*") {
    Addr.sin_addr.s_addr = htonl(INADDR_ANY);
  } else if (Host == "localhost") {
    Addr.sin_addr.s_addr = htonl(INADDR_LOOPBACK);
  } else if (::inet_pton(AF_INET, Host.c_str(), &Addr.sin_addr) != 1) {
    return Status::error(ErrorCode::InvalidArgument,
                         "cannot parse IPv4 address '" + Host + "'");
  }
  return Status();
}

Status makeUnixAddr(const std::string &Path, sockaddr_un &Addr) {
  if (Path.empty() || Path.size() >= sizeof(Addr.sun_path))
    return Status::error(ErrorCode::InvalidArgument,
                         "unix socket path must be 1.." +
                             std::to_string(sizeof(Addr.sun_path) - 1) +
                             " bytes: '" + Path + "'");
  std::memset(&Addr, 0, sizeof(Addr));
  Addr.sun_family = AF_UNIX;
  std::memcpy(Addr.sun_path, Path.c_str(), Path.size() + 1);
  return Status();
}

} // namespace

Status poce::net::parseHostPort(const std::string &Spec, std::string &Host,
                                uint16_t &Port) {
  size_t Colon = Spec.rfind(':');
  if (Colon == std::string::npos)
    return Status::error(ErrorCode::InvalidArgument,
                         "expected host:port, got '" + Spec + "'");
  Host = Spec.substr(0, Colon);
  const std::string PortText = Spec.substr(Colon + 1);
  if (PortText.empty() ||
      PortText.find_first_not_of("0123456789") != std::string::npos)
    return Status::error(ErrorCode::InvalidArgument,
                         "bad port in '" + Spec + "'");
  unsigned long Value = std::strtoul(PortText.c_str(), nullptr, 10);
  if (Value > 65535)
    return Status::error(ErrorCode::InvalidArgument,
                         "port out of range in '" + Spec + "'");
  Port = static_cast<uint16_t>(Value);
  return Status();
}

Expected<int> poce::net::listenTcp(const std::string &Spec, int Backlog) {
  sockaddr_in Addr;
  Status Parsed = makeInetAddr(Spec, Addr);
  if (!Parsed)
    return Parsed;
  Expected<int> Fd = newSocket(AF_INET);
  if (!Fd.ok())
    return Fd;
  int One = 1;
  ::setsockopt(*Fd, SOL_SOCKET, SO_REUSEADDR, &One, sizeof(One));
  if (::bind(*Fd, reinterpret_cast<sockaddr *>(&Addr), sizeof(Addr)) < 0) {
    Status St = errnoStatus("bind " + Spec);
    closeFd(*Fd);
    return St;
  }
  if (::listen(*Fd, Backlog) < 0) {
    Status St = errnoStatus("listen " + Spec);
    closeFd(*Fd);
    return St;
  }
  Status NonBlock = setNonBlocking(*Fd);
  if (!NonBlock) {
    closeFd(*Fd);
    return NonBlock;
  }
  return Fd;
}

Expected<int> poce::net::listenUnix(const std::string &Path, int Backlog) {
  sockaddr_un Addr;
  Status Parsed = makeUnixAddr(Path, Addr);
  if (!Parsed)
    return Parsed;
  // The name is ours: a leftover socket file from a previous run would
  // make bind fail with EADDRINUSE even though nobody is listening.
  ::unlink(Path.c_str());
  Expected<int> Fd = newSocket(AF_UNIX);
  if (!Fd.ok())
    return Fd;
  if (::bind(*Fd, reinterpret_cast<sockaddr *>(&Addr), sizeof(Addr)) < 0) {
    Status St = errnoStatus("bind " + Path);
    closeFd(*Fd);
    return St;
  }
  if (::listen(*Fd, Backlog) < 0) {
    Status St = errnoStatus("listen " + Path);
    closeFd(*Fd);
    return St;
  }
  Status NonBlock = setNonBlocking(*Fd);
  if (!NonBlock) {
    closeFd(*Fd);
    return NonBlock;
  }
  return Fd;
}

Expected<uint16_t> poce::net::localPort(int Fd) {
  sockaddr_in Addr;
  socklen_t Len = sizeof(Addr);
  if (::getsockname(Fd, reinterpret_cast<sockaddr *>(&Addr), &Len) < 0)
    return errnoStatus("getsockname");
  return static_cast<uint16_t>(ntohs(Addr.sin_port));
}

Expected<int> poce::net::connectTcp(const std::string &Spec) {
  sockaddr_in Addr;
  Status Parsed = makeInetAddr(Spec, Addr);
  if (!Parsed)
    return Parsed;
  if (Addr.sin_addr.s_addr == htonl(INADDR_ANY))
    Addr.sin_addr.s_addr = htonl(INADDR_LOOPBACK);
  Expected<int> Fd = newSocket(AF_INET);
  if (!Fd.ok())
    return Fd;
  while (::connect(*Fd, reinterpret_cast<sockaddr *>(&Addr),
                   sizeof(Addr)) < 0) {
    if (errno == EINTR)
      continue;
    Status St = errnoStatus("connect " + Spec);
    closeFd(*Fd);
    return St;
  }
  return Fd;
}

Expected<int> poce::net::connectUnix(const std::string &Path) {
  sockaddr_un Addr;
  Status Parsed = makeUnixAddr(Path, Addr);
  if (!Parsed)
    return Parsed;
  Expected<int> Fd = newSocket(AF_UNIX);
  if (!Fd.ok())
    return Fd;
  while (::connect(*Fd, reinterpret_cast<sockaddr *>(&Addr),
                   sizeof(Addr)) < 0) {
    if (errno == EINTR)
      continue;
    Status St = errnoStatus("connect " + Path);
    closeFd(*Fd);
    return St;
  }
  return Fd;
}

Status poce::net::setNonBlocking(int Fd, bool On) {
  int Flags = ::fcntl(Fd, F_GETFL, 0);
  if (Flags < 0)
    return errnoStatus("fcntl(F_GETFL)");
  int Want = On ? (Flags | O_NONBLOCK) : (Flags & ~O_NONBLOCK);
  if (Want != Flags && ::fcntl(Fd, F_SETFL, Want) < 0)
    return errnoStatus("fcntl(F_SETFL)");
  return Status();
}

void poce::net::closeFd(int Fd) {
  if (Fd < 0)
    return;
  while (::close(Fd) < 0 && errno == EINTR)
    ;
}
