//===- workload/RandomConstraints.h - Random constraint systems -*- C++ -*-===//
//
// Part of the poce project.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Feeds the random constraint systems of the analytical model (Section 5)
/// into a solver: n variables, m constructed nodes split into sources and
/// sinks, each legal edge present with probability p. Sources and sinks
/// are distinct nullary constructors, so source-to-sink flows count as
/// structural mismatches, mirroring the model's (c, c') edge additions.
///
//===----------------------------------------------------------------------===//

#ifndef POCE_WORKLOAD_RANDOMCONSTRAINTS_H
#define POCE_WORKLOAD_RANDOMCONSTRAINTS_H

#include "graph/RandomGraph.h"
#include "setcon/ConstraintSolver.h"
#include "setcon/Oracle.h"

namespace poce {
namespace workload {

/// Emits \p Shape's constraints into \p Solver in a deterministic order
/// (all variables first, then variable-variable, source-variable, and
/// variable-sink constraints).
void emitRandomConstraints(const RandomConstraintShape &Shape,
                           ConstraintSolver &Solver);

/// Generator adapter for buildOracle().
GeneratorFn makeRandomGenerator(const RandomConstraintShape &Shape);

} // namespace workload
} // namespace poce

#endif // POCE_WORKLOAD_RANDOMCONSTRAINTS_H
